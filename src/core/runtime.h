#pragma once
// The IoBT runtime: the paper's Figure-1 loop in one object.
//
//   discover -> characterize -> synthesize (commander's intent in, composite
//   asset + assurance out) -> execute with adaptive reflexes (modality
//   switching, re-synthesis on loss) -> learn (trust refinement feeding the
//   next synthesis).
//
// Runtime owns the simulation substrate (kernel, network, world), the
// shared services (discovery, characterization, trust), and the mission
// lifecycle. It is the public API the examples and the end-to-end bench
// (E12) program against.
//
// Checkpointing: the substrate (Network, World, AttackInjector) registers
// with the kernel's CheckpointRegistry; the services are scenario-layer
// closures over it and are NOT participants. To branch a Runtime-driven
// scenario, build a fresh Runtime with the same config (the same scenario
// code path), then restore the snapshot into it — the rebuild-then-restore
// pattern of DESIGN.md §S3. Service-internal state that must survive a
// restore belongs in a service-owned Checkpointable.

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "adapt/monitor.h"
#include "flow/placement.h"
#include "track/tracker.h"
#include "adapt/perception.h"
#include "adapt/reflex.h"
#include "discovery/characterize.h"
#include "discovery/service.h"
#include "net/dispatcher.h"
#include "security/attacks.h"
#include "security/trust.h"
#include "synthesis/composer.h"
#include "things/population.h"
#include "things/world.h"

namespace iobt::core {

struct RuntimeConfig {
  sim::Rect area{{0, 0}, {2000, 2000}};
  std::uint64_t seed = 1;
  /// Edge-of-range loss shaping (see net::ChannelModel).
  double channel_edge_exponent = 2.0;
  double channel_max_edge_loss = 0.25;
  sim::Duration world_tick = sim::Duration::seconds(1.0);
  /// How many blue collector assets run discovery (0 = all eligible).
  std::size_t max_collectors = 3;
};

using MissionId = std::size_t;

struct MissionStatus {
  std::string name;
  bool feasible = false;
  std::size_t member_count = 0;
  synthesis::Assurance assurance;
  /// Sliding-window mission quality: fraction of active in-area targets
  /// detected and reported to the sink in the last window.
  double quality = 0.0;
  things::Modality active_modality = things::Modality::kCamera;
  std::size_t modality_switches = 0;
  std::size_t repairs = 0;
  /// Analytics service plan: critical-path latency of the mission's
  /// detection-processing dataflow placed onto member compute (flow/),
  /// and whether a feasible placement exists at all.
  double service_latency_s = 0.0;
  bool service_placed = false;
  /// Track-level picture maintained by the sink-side fusion engine.
  std::size_t confirmed_tracks = 0;
  /// Mean distance from each in-area ground-truth target to its nearest
  /// confirmed track (m; capped at 100). 0 when no targets in area.
  double tracking_error_m = 0.0;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- Substrate access ---------------------------------------------------

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *net_; }
  things::World& world() { return *world_; }
  net::Dispatcher& dispatcher() { return *disp_; }
  security::TrustRegistry& trust() { return trust_; }
  security::AttackInjector& attacks() { return *attacks_; }
  discovery::DiscoveryService* discovery() { return discovery_.get(); }

  // --- Setup ----------------------------------------------------------------

  /// Builds the asset population.
  std::vector<things::AssetId> populate(const things::PopulationConfig& cfg);

  /// Starts world ticks, discovery, and characterization. Call after
  /// populate() and before launching missions.
  void start(discovery::DiscoveryConfig discovery_cfg = {});

  // --- Mission lifecycle ------------------------------------------------------

  struct MissionOptions {
    synthesis::Solver solver = synthesis::Solver::kGreedy;
    /// Recruit from the discovery directory (operational) or from ground
    /// truth (oracle; for ablations).
    bool use_directory = true;
    /// Enable the reflex layer (modality switching + re-synthesis).
    bool reflexes = true;
    /// Exclusive recruitment: members are reserved for this mission and
    /// invisible to later launches (§II: multiple concurrent missions
    /// "possibly competing for resources"). Non-exclusive missions share.
    bool exclusive = true;
    sim::Duration sense_period = sim::Duration::seconds(5.0);
    /// Mission quality window (sweeps) for the quality metric.
    std::size_t quality_window = 4;
  };

  /// Synthesizes a composite for `goal` and starts executing it. Returns
  /// nullopt if no sink asset exists (empty population).
  std::optional<MissionId> launch_mission(const synthesis::Goal& goal,
                                          MissionOptions options);
  std::optional<MissionId> launch_mission(const synthesis::Goal& goal) {
    return launch_mission(goal, MissionOptions{});
  }

  MissionStatus mission_status(MissionId id) const;
  std::size_t mission_count() const { return missions_.size(); }

  /// Advances virtual time.
  void run_for(sim::Duration d) { sim_.run_for(d); }
  void run_until(sim::SimTime t) { sim_.run_until(t); }

 private:
  struct Mission {
    synthesis::Goal goal;
    synthesis::MissionSpec spec;
    MissionOptions options;
    std::unique_ptr<synthesis::Composer> composer;
    synthesis::Composite composite;
    std::unique_ptr<adapt::ModalitySwitcher> switcher;
    things::AssetId sink = 0;
    /// Sink-side fusion: detections (positions + source trust) feed a
    /// multi-target tracker stepped once per sweep.
    track::MultiTargetTracker tracker;
    std::vector<track::Detection> pending_detections;
    flow::Placement service;
    // Quality tracking: per-sweep sets of detected target ids arriving at
    // the sink.
    std::vector<std::vector<things::TargetId>> window;
    double quality = 0.0;
    std::size_t repairs = 0;
    std::size_t sweep_index = 0;
  };

  void mission_sweep(MissionId id);
  void maybe_repair(MissionId id);
  std::optional<things::AssetId> pick_sink() const;
  std::vector<synthesis::Candidate> recruitment_pool(const Mission& m) const;
  /// Hop count from `from` to `sink` on the current connectivity graph.
  /// The full hop-distance vector is cached keyed on (sink, topology
  /// epoch), so sorting a recruitment pool costs one BFS instead of one
  /// per candidate; any topology change invalidates via the epoch.
  int hops_to_sink(net::NodeId from, net::NodeId sink) const;

  RuntimeConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<things::World> world_;
  std::unique_ptr<net::Dispatcher> disp_;
  security::TrustRegistry trust_;
  std::unique_ptr<security::AttackInjector> attacks_;
  std::unique_ptr<discovery::DiscoveryService> discovery_;
  std::unique_ptr<discovery::CharacterizationService> characterization_;
  std::vector<std::unique_ptr<Mission>> missions_;
  /// Assets currently held by exclusive missions.
  std::set<things::AssetId> reserved_;
  /// hops_to_sink cache: BFS distances from sink_hops_sink_, valid while
  /// the network's topology epoch stays at sink_hops_epoch_.
  mutable std::vector<int> sink_hops_;
  mutable net::NodeId sink_hops_sink_ = 0;
  mutable std::uint64_t sink_hops_epoch_ = 0;
  mutable bool sink_hops_valid_ = false;
  bool started_ = false;
};

}  // namespace iobt::core
