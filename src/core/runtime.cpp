#include "core/runtime.h"

#include <algorithm>
#include <set>

#include "trace/trace.h"

namespace iobt::core {

namespace {
constexpr const char* kMissionReport = "mission.report";

/// Payload of member->sink detection reports: the noisy estimated
/// positions drive track fusion; the ground-truth ids ride along for
/// scoring only.
struct DetectionReport {
  things::AssetId member = 0;
  std::vector<things::TargetId> targets;
  std::vector<sim::Vec2> positions;
  /// Coarse per-report noise estimate: long-range IoBT sensors are noisy
  /// (position error grows toward the edge of range; see things/sensors).
  double measurement_sigma = 15.0;
};
}  // namespace

Runtime::Runtime(RuntimeConfig config) : cfg_(config) {
  sim::Rng root(cfg_.seed);
  net_ = std::make_unique<net::Network>(
      sim_, net::ChannelModel(cfg_.channel_edge_exponent, cfg_.channel_max_edge_loss),
      root.child("net"));
  world_ = std::make_unique<things::World>(sim_, *net_, cfg_.area, root.child("world"));
  disp_ = std::make_unique<net::Dispatcher>(*net_);
  attacks_ = std::make_unique<security::AttackInjector>(*world_);
}

Runtime::~Runtime() = default;

std::vector<things::AssetId> Runtime::populate(const things::PopulationConfig& cfg) {
  sim::Rng pop_rng = sim::Rng(cfg_.seed).child("population");
  return things::build_population(*world_, cfg, pop_rng);
}

void Runtime::start(discovery::DiscoveryConfig discovery_cfg) {
  if (started_) return;
  started_ = true;
  world_->start(cfg_.world_tick);

  // Collectors: blue assets with an RF-spectrum sensor or big fixed
  // infrastructure, capped at max_collectors.
  std::vector<things::AssetId> collectors;
  for (const auto& a : world_->assets()) {
    if (a.affiliation != things::Affiliation::kBlue) continue;
    const bool eligible = a.has_sensor(things::Modality::kRfSpectrum) ||
                          a.device_class == things::DeviceClass::kEdgeServer ||
                          a.device_class == things::DeviceClass::kVehicle;
    if (!eligible) continue;
    collectors.push_back(a.id);
    if (cfg_.max_collectors > 0 && collectors.size() >= cfg_.max_collectors) break;
  }
  if (collectors.empty() && world_->asset_count() > 0) {
    collectors.push_back(world_->assets().front().id);
  }
  if (!collectors.empty()) {
    discovery_ = std::make_unique<discovery::DiscoveryService>(*world_, *disp_,
                                                               collectors, discovery_cfg);
    discovery_->start();
    discovery::CharacterizationConfig ccfg;
    ccfg.challenge_period = sim::Duration::seconds(5.0);
    ccfg.challenges_per_tick = 4;  // trust must accrue on mission timescales
    characterization_ = std::make_unique<discovery::CharacterizationService>(
        *world_, *disp_, *discovery_, trust_, collectors.front(), ccfg);
    characterization_->start();
  }
}

std::optional<things::AssetId> Runtime::pick_sink() const {
  // The sink is the blue asset with the most compute (edge server in any
  // realistic population).
  std::optional<things::AssetId> best;
  double best_flops = -1.0;
  for (const auto& a : world_->assets()) {
    if (a.affiliation != things::Affiliation::kBlue || !world_->asset_live(a.id)) {
      continue;
    }
    if (a.compute.flops > best_flops) {
      best_flops = a.compute.flops;
      best = a.id;
    }
  }
  return best;
}

int Runtime::hops_to_sink(net::NodeId from, net::NodeId sink) const {
  const std::uint64_t epoch = net_->topology_epoch();
  if (!sink_hops_valid_ || sink_hops_sink_ != sink || sink_hops_epoch_ != epoch) {
    sink_hops_ = net_->connectivity().hop_distances(sink);
    sink_hops_sink_ = sink;
    sink_hops_epoch_ = epoch;
    sink_hops_valid_ = true;
  }
  return from < sink_hops_.size() ? sink_hops_[from] : -1;
}

std::vector<synthesis::Candidate> Runtime::recruitment_pool(const Mission& m) const {
  if (!m.options.use_directory || !discovery_) {
    auto pool = synthesis::candidates_from_world(*world_, &trust_);
    if (m.options.exclusive) {
      std::erase_if(pool, [this](const synthesis::Candidate& c) {
        return reserved_.count(c.asset) > 0;
      });
    }
    return pool;
  }
  // Operational path: only what discovery knows, described by its claims,
  // weighted by earned trust.
  std::vector<synthesis::Candidate> out;
  for (const auto& [id, e] : discovery_->directory().entries()) {
    if (e.standing() == discovery::Standing::kSuspect) continue;
    if (!world_->asset_live(id)) continue;  // liveness is observable (probes)
    if (m.options.exclusive && reserved_.count(id)) continue;  // held elsewhere
    synthesis::Candidate c;
    c.asset = id;
    c.position = e.last_position;
    c.sensors = e.claimed_sensors;
    const things::Asset& truth = world_->asset(id);
    // Actuators/compute are advertised truthfully by cooperative devices;
    // the directory stores sensing claims, so take the rest from the
    // device's own advertisement channel (== its real profile here).
    c.actuators = truth.actuators;
    c.compute = truth.compute;
    c.trust = trust_.score(id);
    c.certified = e.claimed_class.has_value() &&
                  *e.claimed_class != things::DeviceClass::kSmartphone &&
                  *e.claimed_class != things::DeviceClass::kHuman;
    c.cost = 1.0;
    out.push_back(std::move(c));
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(out.begin(), out.end(),
            [](const synthesis::Candidate& a, const synthesis::Candidate& b) {
              return a.asset < b.asset;
            });
  return out;
}

std::optional<MissionId> Runtime::launch_mission(const synthesis::Goal& goal,
                                                 MissionOptions options) {
  const auto sink = pick_sink();
  if (!sink) return std::nullopt;

  auto m = std::make_unique<Mission>();
  m->goal = goal;
  m->spec = synthesis::derive_spec(goal);
  m->options = options;
  m->sink = *sink;

  auto pool = recruitment_pool(*m);
  const net::NodeId sink_node = world_->asset(*sink).node;
  auto pool_copy = pool;  // composer owns its candidates; keep for hops fn
  m->composer = std::make_unique<synthesis::Composer>(
      m->spec, std::move(pool),
      [this, pool_copy, sink_node](std::size_t i) {
        return hops_to_sink(world_->asset(pool_copy[i].asset).node, sink_node);
      });
  m->composite = m->composer->compose(options.solver);

  // Modality preference: the first sensing requirement's modality first,
  // then every other modality present among members (the redundancy
  // synthesis provisioned).
  std::vector<things::Modality> ranked;
  if (!m->spec.sensing.empty()) ranked.push_back(m->spec.sensing.front().modality);
  for (const auto aid : m->composite.member_assets) {
    for (const auto& s : world_->asset(aid).sensors) {
      if (std::find(ranked.begin(), ranked.end(), s.modality) == ranked.end()) {
        ranked.push_back(s.modality);
      }
    }
  }
  if (ranked.empty()) ranked.push_back(things::Modality::kCamera);
  m->switcher = std::make_unique<adapt::ModalitySwitcher>(ranked);

  // Plan the mission's analytics dataflow (goals -> means, functional
  // half): sensing members are the sources, the sink runs the display, and
  // the heavy operators land wherever member compute allows. The resulting
  // critical-path latency is part of the mission's assurance story.
  {
    std::size_t sensing_members = 0;
    flow::PlacementProblem prob;
    for (const auto aid : m->composite.member_assets) {
      if (!world_->asset(aid).sensors.empty() && sensing_members < 8) {
        ++sensing_members;
      }
    }
    if (sensing_members > 0) {
      prob.graph = flow::make_tracking_service(sensing_members, 0.5);
      std::vector<net::NodeId> host_nodes;
      std::size_t pinned_sources = 0;
      for (const auto aid : m->composite.member_assets) {
        const auto& asset = world_->asset(aid);
        prob.hosts.push_back({static_cast<flow::HostId>(prob.hosts.size()),
                              asset.compute.flops});
        host_nodes.push_back(asset.node);
        if (!asset.sensors.empty() && pinned_sources < sensing_members) {
          prob.pinned.push_back(
              {static_cast<flow::OperatorId>(pinned_sources),
               static_cast<flow::HostId>(prob.hosts.size() - 1)});
          ++pinned_sources;
        }
      }
      // The sink host (mission sink asset) joins last.
      prob.hosts.push_back({static_cast<flow::HostId>(prob.hosts.size()),
                            world_->asset(*sink).compute.flops});
      host_nodes.push_back(sink_node);
      prob.pinned.push_back(
          {static_cast<flow::OperatorId>(sensing_members + 3),
           static_cast<flow::HostId>(prob.hosts.size() - 1)});
      prob.hops = flow::host_hops_from_topology(net_->connectivity(), host_nodes);
      m->service = flow::place(prob);
    }
  }

  // Sink-side report collector.
  const MissionId id = missions_.size();
  disp_->on(sink_node, std::string(kMissionReport) + "." + std::to_string(id),
            [this, id](const net::Message& msg) {
              const auto& rep = std::any_cast<const DetectionReport&>(msg.payload);
              Mission& mm = *missions_[id];
              if (mm.window.empty()) return;
              auto& cur = mm.window.back();
              cur.insert(cur.end(), rep.targets.begin(), rep.targets.end());
              // Queue positions for the next tracker step, weighted by the
              // reporting member's earned trust.
              const double trust = trust_.score(rep.member);
              for (const auto& p : rep.positions) {
                mm.pending_detections.push_back(
                    {p, rep.measurement_sigma, trust});
              }
            });

  if (options.exclusive) {
    for (const auto aid : m->composite.member_assets) reserved_.insert(aid);
  }
  missions_.push_back(std::move(m));

  // Execution loop.
  sim_.schedule_every(
      options.sense_period,
      [this, id]() {
        mission_sweep(id);
        return true;
      },
      sim_.intern("mission.sweep"));
  return id;
}

void Runtime::mission_sweep(MissionId id) {
  // The sweep is the runtime's adaptive loop: sense, score quality, and
  // run the two reflexes (modality switch, repair). One span per sweep.
  trace::Tracer& tr = sim_.tracer();
  trace::Span sweep_span(tr.enabled() ? &tr : nullptr, "adapt.mission.sweep",
                         "adapt");
  Mission& m = *missions_[id];
  m.window.emplace_back();
  if (m.window.size() > m.options.quality_window) m.window.erase(m.window.begin());
  ++m.sweep_index;

  const things::Modality modality = m.switcher->current();
  const net::NodeId sink_node = world_->asset(m.sink).node;

  double sweep_detections = 0.0;
  for (const auto aid : m.composite.member_assets) {
    if (!world_->asset_live(aid)) continue;
    const auto obs = world_->sense(aid, modality);
    if (obs.empty()) continue;
    DetectionReport rep;
    rep.member = aid;
    for (const auto& o : obs) {
      if (o.truth_target) {
        rep.targets.push_back(*o.truth_target);
        rep.positions.push_back(o.position);
      }
    }
    sweep_detections += static_cast<double>(rep.targets.size());
    net::Message msg;
    msg.kind = std::string(kMissionReport) + "." + std::to_string(id);
    msg.size_bytes = 32 + 8 * obs.size();
    msg.payload = std::move(rep);
    net_->route_and_send(world_->asset(aid).node, sink_node, std::move(msg));
  }

  // Reflex 1: modality switching on yield collapse. The switcher can only
  // compare modalities it has yield data for, so every sweep we also run
  // one low-duty exploration sweep on a rotating alternate modality
  // (feeding the switcher only — no reports, no bandwidth).
  if (m.options.reflexes) {
    const auto alternates = m.switcher->alternates();
    if (!alternates.empty()) {
      const things::Modality probe =
          alternates[m.sweep_index % alternates.size()];
      double probe_detections = 0.0;
      for (const auto aid : m.composite.member_assets) {
        if (!world_->asset_live(aid)) continue;
        for (const auto& o : world_->sense(aid, probe)) {
          if (o.truth_target) probe_detections += 1.0;
        }
      }
      m.switcher->feed(probe, probe_detections);
    }
    m.switcher->feed(modality, sweep_detections);
  }

  // Quality metric: unique in-area targets reported to the sink over the
  // window vs active in-area targets. Lags one sweep (reports in flight).
  std::set<things::TargetId> reported;
  for (const auto& sweep : m.window) {
    reported.insert(sweep.begin(), sweep.end());
  }
  std::size_t in_area = 0, found = 0;
  for (const auto& t : world_->targets()) {
    if (!t.active || !m.goal.area.contains(t.position)) continue;
    ++in_area;
    if (reported.count(t.id)) ++found;
  }
  m.quality = in_area == 0 ? 1.0
                           : static_cast<double>(found) / static_cast<double>(in_area);

  // Track fusion: step the sink-side tracker with everything that arrived
  // since the last sweep.
  m.tracker.step(m.options.sense_period.to_seconds(), m.pending_detections);
  m.pending_detections.clear();

  // Reflex 2: re-synthesis when members died.
  if (m.options.reflexes) maybe_repair(id);
}

void Runtime::maybe_repair(MissionId id) {
  Mission& m = *missions_[id];
  bool member_down = false;
  for (const auto aid : m.composite.member_assets) {
    member_down |= !world_->asset_live(aid);
  }
  if (!member_down) return;
  // Exclude EVERY currently-dead candidate, not just dead members —
  // otherwise repair happily recruits other casualties and the mission
  // thrashes through a graveyard one sweep at a time.
  std::vector<std::uint32_t> dead;
  for (const auto& c : m.composer->candidates()) {
    if (!world_->asset_live(c.asset)) dead.push_back(c.asset);
  }
  if (m.options.exclusive) {
    for (const auto aid : m.composite.member_assets) reserved_.erase(aid);
  }
  {
    // Reflex 2 on the timeline: the adapt-layer span wraps the synthesis
    // repair span it triggers.
    trace::Tracer& tr = sim_.tracer();
    trace::Span span(tr.enabled() ? &tr : nullptr, "adapt.mission.repair",
                     "adapt");
    m.composite = m.composer->repair(m.composite, dead);
  }
  if (m.options.exclusive) {
    for (const auto aid : m.composite.member_assets) reserved_.insert(aid);
  }
  ++m.repairs;
}

MissionStatus Runtime::mission_status(MissionId id) const {
  const Mission& m = *missions_.at(id);
  MissionStatus s;
  s.name = m.spec.name;
  s.feasible = m.composite.assurance.meets_spec;
  s.member_count = m.composite.member_assets.size();
  s.assurance = m.composite.assurance;
  s.quality = m.quality;
  s.active_modality = m.switcher->current();
  s.modality_switches = m.switcher->switch_count();
  s.repairs = m.repairs;
  s.service_latency_s = m.service.critical_path_latency_s;
  s.service_placed = m.service.feasible;
  s.confirmed_tracks = m.tracker.confirmed_count();
  std::vector<sim::Vec2> truth;
  for (const auto& t : world_->targets()) {
    if (t.active && m.goal.area.contains(t.position)) truth.push_back(t.position);
  }
  s.tracking_error_m = truth.empty() ? 0.0 : m.tracker.tracking_error(truth);
  return s;
}

}  // namespace iobt::core
