#pragma once
// The asset: one battlefield "thing". Holds ground-truth attributes (class,
// affiliation, capabilities, reliability) that scenario generators set and
// that algorithms must *infer* through the network — never read directly.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/message.h"
#include "things/capability.h"
#include "things/energy.h"
#include "things/mobility.h"

namespace iobt::things {

using AssetId = std::uint32_t;

/// Traffic/emission profile used by passive discovery and side-channel
/// detection (§III-A: "discovery of gray/red nodes using side channel
/// emanations"). Red assets typically don't answer probes but still leak
/// RF emissions.
struct EmissionProfile {
  /// If > 0, the asset emits a beacon frame every this many seconds.
  double beacon_period_s = 0.0;
  /// Whether the asset answers active discovery probes.
  bool responds_to_probe = true;
  /// Rate of incidental RF side-channel emanations (per second) detectable
  /// by RF-spectrum sensors even when the asset is silent at the protocol
  /// level.
  double side_channel_rate_hz = 0.1;
};

/// The cold per-asset record: identity, capabilities, and ground-truth
/// attributes that change rarely (if ever) after construction. The HOT
/// per-tick state — liveness, energy, mobility — lives in World's
/// structure-of-arrays slabs, keyed by AssetId, so the tick sweep over
/// 100k+ assets touches densely packed field arrays instead of striding
/// over full records. Accessors: World::asset_alive / energy / mobility.
struct Asset {
  AssetId id = 0;
  DeviceClass device_class = DeviceClass::kSensorMote;
  Affiliation affiliation = Affiliation::kBlue;  // ground truth
  net::NodeId node = 0;                          // network endpoint

  std::vector<SenseCapability> sensors;
  std::vector<ActuateCapability> actuators;
  ComputeProfile compute;
  EmissionProfile emissions;

  /// For human assets: probability that a claim the human makes is correct
  /// (the social-sensing reliability parameter, refs [1-4]); ground truth.
  double report_reliability = 1.0;

  bool has_sensor(Modality m) const {
    return sensor(m) != nullptr;
  }
  const SenseCapability* sensor(Modality m) const {
    for (const auto& s : sensors) {
      if (s.modality == m) return &s;
    }
    return nullptr;
  }
  bool has_actuator(ActuationKind k) const {
    for (const auto& a : actuators) {
      if (a.kind == k) return true;
    }
    return false;
  }
};

/// Construction-time asset description: the cold record plus the initial
/// hot state World will move into its slabs. Scenario generators build
/// one of these per asset and hand it to World::add_asset; assets always
/// start alive. Keeping the spec a distinct type makes any stale read of
/// hot fields through a stored Asset a compile error instead of a silent
/// wrong answer.
struct AssetSpec : Asset {
  EnergyModel energy;
  /// Mobility strategy; null means stationary.
  std::shared_ptr<MobilityModel> mobility;
};

}  // namespace iobt::things
