#include "things/sensors.h"

#include <algorithm>
#include <cmath>

namespace iobt::things {

double detection_probability(const SenseCapability& cap, double distance_m) {
  if (distance_m > cap.range_m || cap.range_m <= 0.0) return 0.0;
  const double frac = distance_m / cap.range_m;
  return std::clamp(cap.quality * (1.0 - frac * frac), 0.0, cap.quality);
}

double position_noise_stddev(const SenseCapability& cap, double distance_m) {
  const double frac = cap.range_m > 0.0 ? std::min(1.0, distance_m / cap.range_m) : 1.0;
  return 1.0 + frac * 0.1 * cap.range_m;
}

std::vector<Observation> sense_targets(
    const Asset& asset, const SenseCapability& cap, sim::Vec2 asset_position,
    const std::vector<std::pair<TargetId, sim::Vec2>>& targets, sim::SimTime now,
    sim::Rect area, sim::Rng& rng) {
  std::vector<Observation> out;
  for (const auto& [tid, tpos] : targets) {
    const double d = sim::distance(asset_position, tpos);
    const double p = detection_probability(cap, d);
    if (p <= 0.0 || !rng.bernoulli(p)) continue;
    const double sigma = position_noise_stddev(cap, d);
    Observation obs;
    obs.sensor = asset.id;
    obs.modality = cap.modality;
    obs.time = now;
    obs.position = area.clamp({tpos.x + rng.normal(0.0, sigma),
                               tpos.y + rng.normal(0.0, sigma)});
    obs.confidence = p;
    obs.truth_target = tid;
    out.push_back(obs);
  }
  // False positives: a spurious detection somewhere within sensing range.
  if (rng.bernoulli(cap.false_positive_rate)) {
    const double r = cap.range_m * std::sqrt(rng.uniform());
    const double theta = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    Observation obs;
    obs.sensor = asset.id;
    obs.modality = cap.modality;
    obs.time = now;
    obs.position = area.clamp(
        {asset_position.x + r * std::cos(theta), asset_position.y + r * std::sin(theta)});
    obs.confidence = cap.quality * 0.5;
    obs.truth_target = std::nullopt;
    out.push_back(obs);
  }
  return out;
}

}  // namespace iobt::things
