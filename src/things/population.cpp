#include "things/population.h"

namespace iobt::things {

PopulationConfig small_team_config() {
  PopulationConfig c;
  c.sensor_motes = 8;
  c.wearables = 4;
  c.smartphones = 6;
  c.drones = 3;
  c.ground_robots = 2;
  c.vehicles = 2;
  c.edge_servers = 1;
  c.humans = 4;
  return c;
}

PopulationConfig company_config() {
  PopulationConfig c;
  c.tags = 40;
  c.sensor_motes = 80;
  c.wearables = 40;
  c.smartphones = 60;
  c.drones = 20;
  c.ground_robots = 15;
  c.vehicles = 20;
  c.edge_servers = 5;
  c.humans = 20;
  return c;
}

PopulationConfig urban_scenario_config(std::size_t scale) {
  PopulationConfig c;
  c.tags = 10 * scale;
  c.sensor_motes = 25 * scale;
  c.wearables = 10 * scale;
  c.smartphones = 30 * scale;
  c.drones = 6 * scale;
  c.ground_robots = 4 * scale;
  c.vehicles = 6 * scale;
  c.edge_servers = 2 * scale;
  c.humans = 7 * scale;
  return c;
}

net::RadioProfile radio_for_class(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kTag: return {.range_m = 80, .data_rate_bps = 2.5e5, .base_loss = 0.03};
    case DeviceClass::kSensorMote:
      return {.range_m = 150, .data_rate_bps = 2.5e5, .base_loss = 0.02};
    case DeviceClass::kWearable:
      return {.range_m = 120, .data_rate_bps = 1e6, .base_loss = 0.02};
    case DeviceClass::kSmartphone:
      return {.range_m = 200, .data_rate_bps = 5e6, .base_loss = 0.02};
    case DeviceClass::kDrone: return {.range_m = 600, .data_rate_bps = 1e7, .base_loss = 0.01};
    case DeviceClass::kGroundRobot:
      return {.range_m = 300, .data_rate_bps = 5e6, .base_loss = 0.02};
    case DeviceClass::kVehicle:
      return {.range_m = 800, .data_rate_bps = 2e7, .base_loss = 0.01};
    case DeviceClass::kEdgeServer:
      return {.range_m = 1000, .data_rate_bps = 1e8, .base_loss = 0.005};
    case DeviceClass::kHuman:
      // Humans communicate via a carried radio/phone.
      return {.range_m = 200, .data_rate_bps = 1e6, .base_loss = 0.02};
  }
  return {};
}

namespace {

/// Per-class battery (joules). <= 0 means effectively unlimited.
double battery_for_class(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kTag: return 200.0;
    case DeviceClass::kSensorMote: return 2'000.0;
    case DeviceClass::kWearable: return 5'000.0;
    case DeviceClass::kSmartphone: return 20'000.0;
    case DeviceClass::kDrone: return 100'000.0;
    case DeviceClass::kGroundRobot: return 300'000.0;
    case DeviceClass::kVehicle: return 0.0;
    case DeviceClass::kEdgeServer: return 0.0;
    case DeviceClass::kHuman: return 20'000.0;  // their carried device
  }
  return 0.0;
}

ComputeProfile compute_for_class(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kTag: return {.flops = 1e6, .memory_bytes = 1e5, .storage_bytes = 1e6};
    case DeviceClass::kSensorMote:
      return {.flops = 1e7, .memory_bytes = 1e6, .storage_bytes = 1e7};
    case DeviceClass::kWearable:
      return {.flops = 1e8, .memory_bytes = 6.4e7, .storage_bytes = 1e9};
    case DeviceClass::kSmartphone:
      return {.flops = 5e9, .memory_bytes = 4e9, .storage_bytes = 6.4e10};
    case DeviceClass::kDrone:
      return {.flops = 2e10, .memory_bytes = 8e9, .storage_bytes = 1.28e11};
    case DeviceClass::kGroundRobot:
      return {.flops = 5e10, .memory_bytes = 1.6e10, .storage_bytes = 5e11};
    case DeviceClass::kVehicle:
      return {.flops = 1e11, .memory_bytes = 3.2e10, .storage_bytes = 1e12};
    case DeviceClass::kEdgeServer:
      return {.flops = 1e13, .memory_bytes = 2.56e11, .storage_bytes = 1e13};
    case DeviceClass::kHuman:
      return {.flops = 5e9, .memory_bytes = 4e9, .storage_bytes = 6.4e10};
  }
  return {};
}

}  // namespace

AssetSpec make_asset_template(DeviceClass cls, Affiliation aff, sim::Rng& rng) {
  AssetSpec a;
  a.device_class = cls;
  a.affiliation = aff;
  a.compute = compute_for_class(cls);
  a.energy = EnergyModel(battery_for_class(cls));

  switch (cls) {
    case DeviceClass::kTag:
      a.sensors.push_back({Modality::kOccupancy, 30.0, 0.85, 0.02});
      a.emissions = {.beacon_period_s = 60.0, .responds_to_probe = true,
                     .side_channel_rate_hz = 0.02};
      break;
    case DeviceClass::kSensorMote: {
      // Mix of seismic / acoustic / chemical motes.
      const std::size_t pick = rng.categorical({0.4, 0.4, 0.2});
      const Modality m = pick == 0 ? Modality::kSeismic
                         : pick == 1 ? Modality::kAcoustic
                                     : Modality::kChemical;
      a.sensors.push_back({m, 200.0, 0.8, 0.02});
      a.emissions = {.beacon_period_s = 30.0, .responds_to_probe = true,
                     .side_channel_rate_hz = 0.05};
      break;
    }
    case DeviceClass::kWearable:
      a.sensors.push_back({Modality::kPhysiological, 1.0, 0.95, 0.005});
      a.sensors.push_back({Modality::kAcoustic, 50.0, 0.6, 0.03});
      a.emissions = {.beacon_period_s = 10.0, .responds_to_probe = true,
                     .side_channel_rate_hz = 0.2};
      break;
    case DeviceClass::kSmartphone:
      a.sensors.push_back({Modality::kCamera, 120.0, 0.75, 0.03});
      a.sensors.push_back({Modality::kAcoustic, 60.0, 0.65, 0.03});
      a.emissions = {.beacon_period_s = 15.0, .responds_to_probe = true,
                     .side_channel_rate_hz = 0.5};
      break;
    case DeviceClass::kDrone:
      a.sensors.push_back({Modality::kCamera, 400.0, 0.9, 0.02});
      a.sensors.push_back({Modality::kRadar, 600.0, 0.85, 0.02});
      a.sensors.push_back({Modality::kLidar, 300.0, 0.92, 0.01});
      a.actuators.push_back({ActuationKind::kRelay, 600.0});
      a.actuators.push_back({ActuationKind::kVehicle, 0.0});
      a.emissions = {.beacon_period_s = 5.0, .responds_to_probe = true,
                     .side_channel_rate_hz = 1.0};
      break;
    case DeviceClass::kGroundRobot:
      a.sensors.push_back({Modality::kCamera, 150.0, 0.85, 0.02});
      a.sensors.push_back({Modality::kLidar, 150.0, 0.9, 0.01});
      a.actuators.push_back({ActuationKind::kVehicle, 0.0});
      a.actuators.push_back({ActuationKind::kSignage, 30.0});
      a.emissions = {.beacon_period_s = 5.0, .responds_to_probe = true,
                     .side_channel_rate_hz = 0.8};
      break;
    case DeviceClass::kVehicle:
      a.sensors.push_back({Modality::kRadar, 500.0, 0.88, 0.02});
      a.sensors.push_back({Modality::kRfSpectrum, 800.0, 0.8, 0.05});
      a.actuators.push_back({ActuationKind::kRelay, 800.0});
      a.actuators.push_back({ActuationKind::kVehicle, 0.0});
      a.emissions = {.beacon_period_s = 5.0, .responds_to_probe = true,
                     .side_channel_rate_hz = 1.5};
      break;
    case DeviceClass::kEdgeServer:
      a.sensors.push_back({Modality::kRfSpectrum, 1000.0, 0.9, 0.02});
      a.emissions = {.beacon_period_s = 5.0, .responds_to_probe = true,
                     .side_channel_rate_hz = 2.0};
      break;
    case DeviceClass::kHuman:
      // Humans "sense" what they can see/hear and report claims.
      a.sensors.push_back({Modality::kCamera, 80.0, 0.7, 0.05});
      a.sensors.push_back({Modality::kAcoustic, 120.0, 0.6, 0.05});
      a.emissions = {.beacon_period_s = 20.0, .responds_to_probe = true,
                     .side_channel_rate_hz = 0.3};
      break;
  }

  // Adversary-controlled assets hide from active discovery (§III-A) but
  // still leak side-channel emanations.
  if (aff == Affiliation::kRed) {
    a.emissions.responds_to_probe = false;
    a.emissions.beacon_period_s = 0.0;
  }
  return a;
}

namespace {

std::shared_ptr<MobilityModel> mobility_for_class(DeviceClass cls, sim::Rect area,
                                                  sim::Rng& rng, bool mobile) {
  if (!mobile) return nullptr;
  switch (cls) {
    case DeviceClass::kDrone:
      return std::make_shared<RandomWaypoint>(area, 15.0, 2.0, rng.child("mob"));
    case DeviceClass::kGroundRobot:
      return std::make_shared<GridPatrol>(area, 100.0, 2.0, rng.child("mob"));
    case DeviceClass::kVehicle:
      return std::make_shared<GridPatrol>(area, 100.0, 8.0, rng.child("mob"));
    case DeviceClass::kSmartphone:
    case DeviceClass::kHuman:
    case DeviceClass::kWearable:
      return std::make_shared<RandomWaypoint>(area, 1.4, 30.0, rng.child("mob"));
    default:
      return nullptr;
  }
}

Affiliation draw_ambient_affiliation(const PopulationConfig& cfg, sim::Rng& rng) {
  const double u = rng.uniform();
  if (u < cfg.red_fraction) return Affiliation::kRed;
  if (u < cfg.red_fraction + cfg.gray_fraction) return Affiliation::kGray;
  return Affiliation::kBlue;
}

}  // namespace

std::vector<AssetId> build_population(World& world, const PopulationConfig& cfg,
                                      sim::Rng& rng) {
  std::vector<AssetId> created;
  created.reserve(cfg.total());

  struct ClassCount {
    DeviceClass cls;
    std::size_t n;
    bool ambient;  // affiliation drawn from the red/gray mix
  };
  const ClassCount plan[] = {
      {DeviceClass::kTag, cfg.tags, true},
      {DeviceClass::kSensorMote, cfg.sensor_motes, true},
      {DeviceClass::kWearable, cfg.wearables, false},
      {DeviceClass::kSmartphone, cfg.smartphones, true},
      {DeviceClass::kDrone, cfg.drones, false},
      {DeviceClass::kGroundRobot, cfg.ground_robots, false},
      {DeviceClass::kVehicle, cfg.vehicles, false},
      {DeviceClass::kEdgeServer, cfg.edge_servers, false},
      {DeviceClass::kHuman, cfg.humans, true},
  };

  const sim::Rect area = world.area();
  for (const auto& [cls, n, ambient] : plan) {
    for (std::size_t i = 0; i < n; ++i) {
      sim::Rng item_rng = rng.child(sim::fnv1a(to_string(cls)) ^ i);
      const Affiliation aff =
          ambient ? draw_ambient_affiliation(cfg, item_rng) : Affiliation::kBlue;
      AssetSpec a = make_asset_template(cls, aff, item_rng);
      if (cls == DeviceClass::kHuman) {
        if (aff == Affiliation::kRed) {
          a.report_reliability = 1.0 - cfg.red_lie_probability;
        } else {
          a.report_reliability =
              item_rng.uniform(cfg.human_reliability_min, cfg.human_reliability_max);
        }
      }
      const bool mobile = item_rng.bernoulli(cfg.mobile_fraction);
      a.mobility = mobility_for_class(cls, area, item_rng, mobile);
      const sim::Vec2 pos = {item_rng.uniform(area.min.x, area.max.x),
                             item_rng.uniform(area.min.y, area.max.y)};
      created.push_back(world.add_asset(std::move(a), pos, radio_for_class(cls)));
    }
  }
  return created;
}

}  // namespace iobt::things
