#include "things/capability.h"

namespace iobt::things {

std::string to_string(Affiliation a) {
  switch (a) {
    case Affiliation::kBlue: return "blue";
    case Affiliation::kRed: return "red";
    case Affiliation::kGray: return "gray";
  }
  return "unknown";
}

std::string to_string(Modality m) {
  switch (m) {
    case Modality::kCamera: return "camera";
    case Modality::kSeismic: return "seismic";
    case Modality::kAcoustic: return "acoustic";
    case Modality::kRadar: return "radar";
    case Modality::kLidar: return "lidar";
    case Modality::kOccupancy: return "occupancy";
    case Modality::kRfSpectrum: return "rf_spectrum";
    case Modality::kChemical: return "chemical";
    case Modality::kPhysiological: return "physiological";
  }
  return "unknown";
}

std::string to_string(ActuationKind a) {
  switch (a) {
    case ActuationKind::kRelay: return "relay";
    case ActuationKind::kSignage: return "signage";
    case ActuationKind::kDoorLock: return "door_lock";
    case ActuationKind::kDemolition: return "demolition";
    case ActuationKind::kVehicle: return "vehicle";
  }
  return "unknown";
}

std::string to_string(DeviceClass c) {
  switch (c) {
    case DeviceClass::kTag: return "tag";
    case DeviceClass::kSensorMote: return "sensor_mote";
    case DeviceClass::kWearable: return "wearable";
    case DeviceClass::kSmartphone: return "smartphone";
    case DeviceClass::kDrone: return "drone";
    case DeviceClass::kGroundRobot: return "ground_robot";
    case DeviceClass::kVehicle: return "vehicle";
    case DeviceClass::kEdgeServer: return "edge_server";
    case DeviceClass::kHuman: return "human";
  }
  return "unknown";
}

}  // namespace iobt::things
