#pragma once
// Population generation: builds a heterogeneous blue/red/gray asset mix
// with class-typical capabilities ("extreme heterogeneity", §II) and
// registers it with a World. This is the synthetic stand-in for a real
// deployed force plus the surrounding civilian device population.

#include <cstddef>

#include "things/world.h"

namespace iobt::things {

/// How many of each device class to create, and the affiliation mix for
/// classes that can belong to anyone (smartphones, sensor motes, humans).
struct PopulationConfig {
  std::size_t tags = 0;
  std::size_t sensor_motes = 0;
  std::size_t wearables = 0;
  std::size_t smartphones = 0;
  std::size_t drones = 0;
  std::size_t ground_robots = 0;
  std::size_t vehicles = 0;
  std::size_t edge_servers = 0;
  std::size_t humans = 0;

  /// Fraction of the "ambient" classes (smartphones, motes, humans) that
  /// are red (adversary-controlled) and gray (neutral). The rest are blue.
  double red_fraction = 0.05;
  double gray_fraction = 0.25;

  /// Human report reliability is drawn uniform in [min, max] for blue/gray
  /// humans; red humans lie with probability red_lie_probability.
  double human_reliability_min = 0.6;
  double human_reliability_max = 0.95;
  double red_lie_probability = 0.8;

  /// Fraction of mobile classes that actually move.
  double mobile_fraction = 0.7;

  std::size_t total() const {
    return tags + sensor_motes + wearables + smartphones + drones + ground_robots +
           vehicles + edge_servers + humans;
  }
};

/// Convenience mixes used by tests, examples, and benches.
PopulationConfig small_team_config();          // ~30 assets
PopulationConfig company_config();             // ~300 assets
PopulationConfig urban_scenario_config(std::size_t scale);  // scale * ~100

/// Creates the population inside `world` (positions uniform over the
/// world's area). Returns the created AssetIds in creation order.
std::vector<AssetId> build_population(World& world, const PopulationConfig& cfg,
                                      sim::Rng& rng);

/// Class-typical asset templates (capabilities, energy, radio). Exposed so
/// tests can build single assets.
AssetSpec make_asset_template(DeviceClass cls, Affiliation aff, sim::Rng& rng);
net::RadioProfile radio_for_class(DeviceClass cls);

}  // namespace iobt::things
