#pragma once
// The capability vocabulary shared by assets (what a thing can do) and
// mission requirements (what a mission needs). Keeping both sides in one
// typed vocabulary is what makes goals->means reasoning (synthesis) a
// typed reduction rather than string matching — see DESIGN.md §5.

#include <array>
#include <cstdint>
#include <string>

namespace iobt::things {

/// Ownership/allegiance of an asset. This is *ground truth* known to the
/// scenario generator; algorithms must infer it (discovery, trust).
enum class Affiliation : std::uint8_t { kBlue, kRed, kGray };

std::string to_string(Affiliation a);

/// Sensing modalities named in the paper (§III: "from tiny occupancy
/// sensors to drones with three-dimensional Radar and LiDar sensors";
/// §IV-B: "seismic sensing may be used when smoke or other phenomena
/// render visual tracking unreliable").
enum class Modality : std::uint8_t {
  kCamera,
  kSeismic,
  kAcoustic,
  kRadar,
  kLidar,
  kOccupancy,
  kRfSpectrum,
  kChemical,
  kPhysiological,  // soldier-state monitoring (§II)
};
inline constexpr std::size_t kModalityCount = 9;
inline constexpr std::array<Modality, kModalityCount> kAllModalities = {
    Modality::kCamera,    Modality::kSeismic,  Modality::kAcoustic,
    Modality::kRadar,     Modality::kLidar,    Modality::kOccupancy,
    Modality::kRfSpectrum, Modality::kChemical, Modality::kPhysiological,
};

std::string to_string(Modality m);

/// One sensing capability an asset carries.
struct SenseCapability {
  Modality modality = Modality::kCamera;
  /// Detection range, meters.
  double range_m = 100.0;
  /// Probability of detecting an in-range event at point-blank distance;
  /// decays with distance (see sensors.h).
  double quality = 0.9;
  /// False positive rate per observation window.
  double false_positive_rate = 0.01;
};

/// Actuation classes from the paper's examples (§VI: demolition charges
/// that withhold near humans; evacuation route signage; relays).
enum class ActuationKind : std::uint8_t {
  kRelay,        // communications relay
  kSignage,      // route marking / crowd direction
  kDoorLock,     // infrastructure control
  kDemolition,   // safety-interlocked charge (§VI example)
  kVehicle,      // mobility as actuation (repositioning)
};

std::string to_string(ActuationKind a);

struct ActuateCapability {
  ActuationKind kind = ActuationKind::kRelay;
  double range_m = 10.0;
};

/// Compute/storage capability. Spans "small on-board compute devices to
/// powerful edge clouds with GPUs" (§III).
struct ComputeProfile {
  double flops = 1e8;          // sustained floating-point throughput
  double memory_bytes = 64e6;  // working memory
  double storage_bytes = 1e9;  // persistent storage
};

/// Hardware classes of battlefield things (§II: "sensors, actuators,
/// devices (computers, weapons, vehicles, robots, human-wearables, etc)").
enum class DeviceClass : std::uint8_t {
  kTag,          // disposable unattended sensor tag
  kSensorMote,   // fixed sensor node
  kWearable,     // human-worn device
  kSmartphone,   // gray-civilian commodity device
  kDrone,        // aerial, mobile, radar/lidar-capable
  kGroundRobot,  // mobile ground actuator/sensor platform
  kVehicle,      // manned vehicle with strong radio/compute
  kEdgeServer,   // fixed edge cloud
  kHuman,        // a human information source / decision agent
};
inline constexpr std::size_t kDeviceClassCount = 9;

std::string to_string(DeviceClass c);

}  // namespace iobt::things
