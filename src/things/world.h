#pragma once
// The World: ground truth for one scenario.
//
// Owns the asset population and the targets (entities missions want to
// track/protect), advances mobility on a fixed tick, mirrors positions
// into the Network, drains idle energy, and takes depleted or destroyed
// assets offline. Algorithms observe the world only through the network
// and through sense() — never by reading ground truth.

#include <functional>
#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/checkpoint.h"
#include "sim/geometry.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "things/asset.h"
#include "things/sensors.h"

namespace iobt::things {

/// Environmental sensing disruption (smoke, dust, weather, optical
/// dazzling): while active, sensors of `modality` whose platform is inside
/// `region` lose `severity` of their quality. This is the physical-layer
/// counterpart of RF jamming — §IV-B's "smoke or other phenomena render
/// visual tracking unreliable".
struct SensingDisruption {
  Modality modality = Modality::kCamera;
  sim::Rect region;
  sim::SimTime start;
  sim::SimTime end = sim::SimTime::max();
  /// Fraction of sensor quality removed, in [0, 1].
  double severity = 1.0;

  bool active_at(sim::SimTime t) const { return t >= start && t < end; }
};

/// A ground-truth entity of interest (insurgent group, civilian cluster,
/// vehicle convoy, hazard) that sensors can detect.
struct Target {
  TargetId id = 0;
  sim::Vec2 position;
  std::shared_ptr<MobilityModel> mobility;
  /// Labels targets for mission semantics ("civilian", "hostile", ...).
  std::string kind;
  bool active = true;
};

class World : public sim::SerializableCheckpointable {
 public:
  World(sim::Simulator& simulator, net::Network& network, sim::Rect area, sim::Rng rng);
  ~World() override;

  sim::Rect area() const { return area_; }
  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return net_; }
  const net::Network& network() const { return net_; }

  // --- Population -------------------------------------------------------

  /// Registers an asset from its spec: creates its network endpoint at
  /// `position` with `radio` on network `layer` (ground by default, so
  /// flat-world callers never mention layers), assigns ids, moves the
  /// spec's hot state (energy, mobility; assets start alive) into the SoA
  /// slabs, and returns the AssetId. The stored record's `node` and `id`
  /// fields are filled in.
  AssetId add_asset(AssetSpec spec, sim::Vec2 position, net::RadioProfile radio,
                    net::LayerId layer = net::kLayerGround);

  /// The cold per-asset record (identity, capabilities, ground truth).
  /// Hot per-tick state lives in slabs behind asset_alive / energy /
  /// mobility below.
  Asset& asset(AssetId id) { return assets_.at(id); }
  const Asset& asset(AssetId id) const { return assets_.at(id); }
  std::size_t asset_count() const { return assets_.size(); }
  const std::vector<Asset>& assets() const { return assets_; }

  // --- Hot state slabs (parallel to assets_ by AssetId) ------------------

  /// Raw liveness flag: false once destroyed. See asset_live for the
  /// "alive AND not energy-depleted" predicate services use.
  bool asset_alive(AssetId id) const { return alive_.at(id) != 0; }
  EnergyModel& energy(AssetId id) { return energy_.at(id); }
  const EnergyModel& energy(AssetId id) const { return energy_.at(id); }
  const std::shared_ptr<MobilityModel>& mobility(AssetId id) const {
    return mobility_.at(id);
  }
  void set_mobility(AssetId id, std::shared_ptr<MobilityModel> m) {
    mobility_.at(id) = std::move(m);
  }

  sim::Vec2 asset_position(AssetId id) const { return net_.position(assets_.at(id).node); }

  /// The asset owning a network endpoint (every node is created by
  /// add_asset, so the mapping is total for valid ids).
  AssetId asset_of_node(net::NodeId node) const { return node_to_asset_.at(node); }

  /// Kills an asset (adversary capture/strike or energy depletion): takes
  /// the network node down and marks it dead. Fires on_asset_down hooks.
  void destroy_asset(AssetId id);
  /// Live = alive and energy not depleted.
  bool asset_live(AssetId id) const;
  std::size_t live_asset_count() const;

  /// Hook invoked whenever an asset goes down (failure, attack, energy).
  void on_asset_down(std::function<void(AssetId)> fn) {
    down_hooks_.push_back(std::move(fn));
  }

  /// Hook invoked whenever an asset is added — services use this to
  /// install firmware on late arrivals (e.g. Sybils injected mid-run).
  void on_asset_added(std::function<void(AssetId)> fn) {
    added_hooks_.push_back(std::move(fn));
  }

  // --- Targets ----------------------------------------------------------

  TargetId add_target(sim::Vec2 position, std::shared_ptr<MobilityModel> mobility,
                      std::string kind);
  Target& target(TargetId id) { return targets_.at(id); }
  const Target& target(TargetId id) const { return targets_.at(id); }
  const std::vector<Target>& targets() const { return targets_; }
  std::vector<std::pair<TargetId, sim::Vec2>> active_target_positions() const;

  // --- Simulation loop --------------------------------------------------

  /// Starts the mobility/energy tick (default 1 s of virtual time).
  void start(sim::Duration tick = sim::Duration::seconds(1.0));

  /// One sensing sweep by `asset_id` with its `modality` sensor. Returns
  /// empty if the asset is down or lacks the modality. Drains energy.
  /// Active sensing disruptions degrade the effective sensor quality.
  std::vector<Observation> sense(AssetId asset_id, Modality modality);

  /// Registers an environmental sensing disruption (smoke, weather, ...).
  void add_sensing_disruption(SensingDisruption d) {
    disruptions_.push_back(d);
  }
  const std::vector<SensingDisruption>& sensing_disruptions() const {
    return disruptions_;
  }

  /// All observations a full sweep over every live blue asset produces.
  std::vector<Observation> sense_all(Modality modality);

  sim::Rng& rng() { return rng_; }

  // --- Checkpointing ----------------------------------------------------
  // POD model state (cold asset records, hot slabs with cloned mobility,
  // targets, disruptions,
  // node index, rng, tick cursor) round-trips through the Snapshot; the
  // down/added hooks do NOT — they belong to the live service stack, and
  // restore() never fires them (the metrics/service state those hooks
  // produced is restored by the services' own participants).

  std::string_view checkpoint_key() const override { return "things.world"; }
  void save(sim::Snapshot& snap, const std::string& key) const override;
  void restore(const sim::Snapshot& snap, const std::string& key,
               sim::RestoreArmer& armer) override;
  /// Wire persistence (sim/wire.h). Mobility models cross the wire through
  /// an alias table spanning assets AND targets, so pointer sharing — which
  /// is state (clone_memoized preserves it in-memory) — survives the disk
  /// round trip too.
  bool encode_state(const sim::Snapshot& snap, const std::string& key,
                    sim::WireWriter& w) const override;
  bool decode_state(sim::Snapshot& snap, const std::string& key,
                    sim::WireReader& r) const override;

 private:
  struct CheckpointState {
    std::vector<Asset> assets;             // cold records
    // Hot slabs, parallel to assets.
    std::vector<std::uint8_t> alive;
    std::vector<EnergyModel> energy;
    std::vector<std::shared_ptr<MobilityModel>> mobility;  // deep-cloned
    std::vector<AssetId> node_to_asset;
    std::vector<Target> targets;           // mobility deep-cloned
    std::vector<SensingDisruption> disruptions;
    sim::Rng rng;
    bool started = false;
    sim::Duration tick_period;
    sim::SimTime next_tick_at;
    std::uint64_t tick_seq = 0;  // original FIFO seq of the armed tick
  };

  void install_transmit_hook();
  void arm_tick();
  void run_tick();
  void tick(double dt_s);

  sim::Simulator& sim_;
  net::Network& net_;
  sim::Rect area_;
  sim::Rng rng_;
  std::vector<Asset> assets_;
  /// Hot per-tick state as structure-of-arrays slabs parallel to assets_:
  /// the tick sweep (liveness check, idle drain, depletion test, mobility
  /// step) walks flat field arrays instead of striding over full records,
  /// which is what keeps a 100k+ asset world inside cache.
  std::vector<std::uint8_t> alive_;  // 0/1; vector<bool> costs a shift per access
  std::vector<EnergyModel> energy_;
  std::vector<std::shared_ptr<MobilityModel>> mobility_;
  /// node -> owning asset, maintained by add_asset (the transmit-energy
  /// hook and node-keyed queries are O(1), including for late arrivals).
  std::vector<AssetId> node_to_asset_;
  std::vector<Target> targets_;
  std::vector<SensingDisruption> disruptions_;
  std::vector<std::function<void(AssetId)>> down_hooks_;
  std::vector<std::function<void(AssetId)>> added_hooks_;
  bool started_ = false;
  /// Mobility/energy tick as a self-managed schedule_at chain (instead of
  /// schedule_every) so the checkpoint layer can cancel and re-arm it.
  sim::Duration tick_period_;
  sim::SimTime next_tick_at_;
  sim::EventId tick_event_ = sim::kNoEvent;
  sim::TagId tick_tag_ = sim::kUntagged;
};

}  // namespace iobt::things
