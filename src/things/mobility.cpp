#include "things/mobility.h"

#include <cmath>

#include "sim/wire.h"

namespace iobt::things {

RandomWaypoint::RandomWaypoint(sim::Rect area, double speed_mps, double pause_s,
                               sim::Rng rng)
    : area_(area), speed_(speed_mps), pause_s_(pause_s), rng_(rng) {}

sim::Vec2 RandomWaypoint::step(sim::Vec2 current, double dt_s) {
  while (dt_s > 0.0) {
    if (pause_left_ > 0.0) {
      const double used = std::min(pause_left_, dt_s);
      pause_left_ -= used;
      dt_s -= used;
      continue;
    }
    if (!has_target_) {
      target_ = {rng_.uniform(area_.min.x, area_.max.x),
                 rng_.uniform(area_.min.y, area_.max.y)};
      has_target_ = true;
    }
    const double dist = sim::distance(current, target_);
    const double reach = speed_ * dt_s;
    if (reach >= dist) {
      current = target_;
      has_target_ = false;
      pause_left_ = pause_s_;
      dt_s -= speed_ > 0.0 ? dist / speed_ : dt_s;
    } else {
      current = current + (target_ - current).normalized() * reach;
      dt_s = 0.0;
    }
  }
  return area_.clamp(current);
}

GridPatrol::GridPatrol(sim::Rect area, double block_m, double speed_mps, sim::Rng rng)
    : area_(area), block_m_(block_m), speed_(speed_mps), rng_(rng) {
  heading_ = {1.0, 0.0};
  until_turn_m_ = block_m_;
}

void GridPatrol::pick_heading(sim::Vec2 at) {
  // Choose among the four street directions, excluding ones that would
  // immediately leave the area.
  static constexpr sim::Vec2 kDirs[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  std::vector<double> weights(4, 1.0);
  for (int i = 0; i < 4; ++i) {
    const sim::Vec2 probe = at + kDirs[i] * block_m_;
    if (!area_.contains(probe)) weights[static_cast<std::size_t>(i)] = 0.0;
  }
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    heading_ = (area_.center() - at).normalized();
    return;
  }
  heading_ = kDirs[rng_.categorical(weights)];
}

sim::Vec2 GridPatrol::step(sim::Vec2 current, double dt_s) {
  double travel = speed_ * dt_s;
  while (travel > 0.0) {
    if (until_turn_m_ <= 0.0) {
      pick_heading(current);
      until_turn_m_ = block_m_;
    }
    const double leg = std::min(travel, until_turn_m_);
    const sim::Vec2 next = area_.clamp(current + heading_ * leg);
    const double moved = sim::distance(current, next);
    current = next;
    travel -= leg;
    if (moved + 1e-9 < leg) {
      // The clamp ate part of the leg: the heading points out of the area
      // and the patrol is pinned at the boundary. Crediting the full leg
      // here used to burn whole blocks standing still — turn immediately
      // instead. (Progress is otherwise debited as `leg`, not `moved`:
      // the two differ only by sqrt round-off, and an inexact debit
      // leaves a ~1e-13 residue that the loop would then grind through
      // in femtometer-sized legs.)
      until_turn_m_ = 0.0;
    } else {
      until_turn_m_ -= leg;
    }
  }
  return current;
}

sim::Vec2 SeekPoint::step(sim::Vec2 current, double dt_s) {
  const double dist = sim::distance(current, goal_);
  const double reach = speed_ * dt_s;
  if (reach >= dist) return goal_;
  return current + (goal_ - current).normalized() * reach;
}

// --- Wire encode/decode (checkpoint persistence) ---------------------------

void Stationary::encode(sim::WireWriter&) const {}

void RandomWaypoint::encode(sim::WireWriter& w) const {
  w.rect(area_).f64(speed_).f64(pause_s_).rng(rng_).vec2(target_)
      .boolean(has_target_).f64(pause_left_);
}

std::shared_ptr<RandomWaypoint> RandomWaypoint::decode(sim::WireReader& r) {
  const sim::Rect area = r.rect();
  const double speed = r.f64();
  const double pause_s = r.f64();
  auto m = std::make_shared<RandomWaypoint>(area, speed, pause_s, r.rng());
  m->target_ = r.vec2();
  m->has_target_ = r.boolean();
  m->pause_left_ = r.f64();
  return m;
}

void GridPatrol::encode(sim::WireWriter& w) const {
  w.rect(area_).f64(block_m_).f64(speed_).rng(rng_).vec2(heading_)
      .f64(until_turn_m_);
}

std::shared_ptr<GridPatrol> GridPatrol::decode(sim::WireReader& r) {
  const sim::Rect area = r.rect();
  const double block_m = r.f64();
  const double speed = r.f64();
  auto m = std::make_shared<GridPatrol>(area, block_m, speed, r.rng());
  m->heading_ = r.vec2();
  m->until_turn_m_ = r.f64();
  return m;
}

void SeekPoint::encode(sim::WireWriter& w) const {
  w.vec2(goal_).f64(speed_);
}

void encode_model(sim::WireWriter& w, const MobilityModel& m) {
  w.u64(static_cast<std::uint64_t>(m.kind()));
  m.encode(w);
}

std::shared_ptr<MobilityModel> decode_model(sim::WireReader& r) {
  switch (r.u64()) {
    case static_cast<std::uint64_t>(MobilityModel::Kind::kStationary):
      return r.ok() ? std::make_shared<Stationary>() : nullptr;
    case static_cast<std::uint64_t>(MobilityModel::Kind::kRandomWaypoint): {
      auto m = RandomWaypoint::decode(r);
      return r.ok() ? std::shared_ptr<MobilityModel>(std::move(m)) : nullptr;
    }
    case static_cast<std::uint64_t>(MobilityModel::Kind::kGridPatrol): {
      auto m = GridPatrol::decode(r);
      return r.ok() ? std::shared_ptr<MobilityModel>(std::move(m)) : nullptr;
    }
    case static_cast<std::uint64_t>(MobilityModel::Kind::kSeekPoint): {
      // Locals pin the read order (argument evaluation order is unspecified).
      const sim::Vec2 goal = r.vec2();
      const double speed = r.f64();
      auto m = std::make_shared<SeekPoint>(goal, speed);
      return r.ok() ? std::shared_ptr<MobilityModel>(std::move(m)) : nullptr;
    }
    default:
      return nullptr;
  }
}

}  // namespace iobt::things
