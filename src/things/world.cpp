#include "things/world.h"

#include <cassert>

namespace iobt::things {

World::World(sim::Simulator& simulator, net::Network& network, sim::Rect area,
             sim::Rng rng)
    : sim_(simulator), net_(network), area_(area), rng_(rng) {}

AssetId World::add_asset(Asset asset, sim::Vec2 position, net::RadioProfile radio) {
  const auto id = static_cast<AssetId>(assets_.size());
  asset.id = id;
  asset.node = net_.add_node(position, radio);
  // Keep the node->asset index current for every arrival, not just the
  // population present at start(): assets recruited mid-run must pay
  // transmit energy too.
  if (node_to_asset_.size() <= asset.node) node_to_asset_.resize(asset.node + 1, 0);
  node_to_asset_[asset.node] = id;
  assets_.push_back(std::move(asset));
  for (const auto& hook : added_hooks_) hook(id);
  return id;
}

void World::destroy_asset(AssetId id) {
  Asset& a = assets_.at(id);
  if (!a.alive) return;
  a.alive = false;
  net_.set_node_up(a.node, false);
  for (const auto& hook : down_hooks_) hook(id);
}

bool World::asset_live(AssetId id) const {
  const Asset& a = assets_.at(id);
  return a.alive && !a.energy.depleted();
}

std::size_t World::live_asset_count() const {
  std::size_t n = 0;
  for (const Asset& a : assets_) {
    if (a.alive && !a.energy.depleted()) ++n;
  }
  return n;
}

TargetId World::add_target(sim::Vec2 position, std::shared_ptr<MobilityModel> mobility,
                           std::string kind) {
  const auto id = static_cast<TargetId>(targets_.size());
  targets_.push_back(Target{id, position, std::move(mobility), std::move(kind), true});
  return id;
}

std::vector<std::pair<TargetId, sim::Vec2>> World::active_target_positions() const {
  std::vector<std::pair<TargetId, sim::Vec2>> out;
  out.reserve(targets_.size());
  for (const Target& t : targets_) {
    if (t.active) out.push_back({t.id, t.position});
  }
  return out;
}

void World::start(sim::Duration period) {
  assert(!started_ && "World::start called twice");
  started_ = true;

  // Charge transmit energy to the owning asset, via the node->asset index
  // (maintained by add_asset, so late arrivals are covered) — the
  // per-frame hook is O(1).
  net_.set_transmit_hook([this](net::NodeId node, std::size_t bytes) {
    if (node < node_to_asset_.size()) {
      assets_[node_to_asset_[node]].energy.drain_tx(bytes);
    }
  });

  const double dt_s = period.to_seconds();
  sim_.schedule_every(
      period,
      [this, dt_s]() {
        tick(dt_s);
        return true;
      },
      sim_.intern("world.tick"));
}

void World::tick(double dt_s) {
  // destroy_asset fires down-hooks that may add_asset (recruit a
  // replacement) and reallocate assets_, so never hold a reference across
  // it: iterate by index and re-fetch. The count is snapshotted so assets
  // recruited mid-tick start ticking on the next tick.
  const std::size_t count = assets_.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (!assets_[i].alive) continue;
    assets_[i].energy.drain_idle(dt_s);
    if (assets_[i].energy.depleted()) {
      destroy_asset(static_cast<AssetId>(i));
      continue;
    }
    Asset& a = assets_[i];
    if (a.mobility) {
      const sim::Vec2 from = net_.position(a.node);
      const sim::Vec2 to = area_.clamp(a.mobility->step(from, dt_s));
      if (!(to == from)) net_.set_position(a.node, to);
    }
  }
  for (Target& t : targets_) {
    if (t.active && t.mobility) t.position = area_.clamp(t.mobility->step(t.position, dt_s));
  }
}

std::vector<Observation> World::sense(AssetId asset_id, Modality modality) {
  Asset& a = assets_.at(asset_id);
  if (!asset_live(asset_id)) return {};
  const SenseCapability* cap = a.sensor(modality);
  if (!cap) return {};
  a.energy.drain_sense();
  sim::Rng sensor_rng = rng_.child(0xABCD0000ULL + asset_id).child(
      static_cast<std::uint64_t>(sim_.now().nanos()));
  const sim::Vec2 at = net_.position(a.node);
  // Environmental disruptions degrade the effective sensor quality while
  // the platform sits inside an affected region.
  SenseCapability effective = *cap;
  for (const auto& d : disruptions_) {
    if (d.modality == modality && d.active_at(sim_.now()) && d.region.contains(at)) {
      effective.quality *= (1.0 - d.severity);
    }
  }
  return sense_targets(a, effective, at, active_target_positions(), sim_.now(),
                       area_, sensor_rng);
}

std::vector<Observation> World::sense_all(Modality modality) {
  std::vector<Observation> out;
  for (const Asset& a : assets_) {
    if (a.affiliation != Affiliation::kBlue) continue;
    auto obs = sense(a.id, modality);
    out.insert(out.end(), obs.begin(), obs.end());
  }
  return out;
}

}  // namespace iobt::things
