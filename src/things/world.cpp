#include "things/world.h"

#include <cassert>
#include <map>

namespace iobt::things {

namespace {

/// Clones a mobility model once per distinct source object: assets that
/// share a model before save share the clone after restore (aliasing is
/// part of the model state — a shared Rng stream must stay shared).
std::shared_ptr<MobilityModel> clone_memoized(
    const std::shared_ptr<MobilityModel>& m,
    std::map<const MobilityModel*, std::shared_ptr<MobilityModel>>& memo) {
  if (!m) return nullptr;
  auto it = memo.find(m.get());
  if (it != memo.end()) return it->second;
  auto clone = m->clone();
  memo.emplace(m.get(), clone);
  return clone;
}

}  // namespace

World::World(sim::Simulator& simulator, net::Network& network, sim::Rect area,
             sim::Rng rng)
    : sim_(simulator), net_(network), area_(area), rng_(rng) {
  tick_tag_ = sim_.intern("world.tick");
  sim_.checkpoint().register_participant(this);
}

World::~World() {
  sim_.cancel(tick_event_);
  sim_.checkpoint().unregister(this);
}

AssetId World::add_asset(AssetSpec spec, sim::Vec2 position, net::RadioProfile radio,
                         net::LayerId layer) {
  const auto id = static_cast<AssetId>(assets_.size());
  spec.id = id;
  spec.node = net_.add_node(position, radio, layer);
  // Keep the node->asset index current for every arrival, not just the
  // population present at start(): assets recruited mid-run must pay
  // transmit energy too.
  if (node_to_asset_.size() <= spec.node) node_to_asset_.resize(spec.node + 1, 0);
  node_to_asset_[spec.node] = id;
  // Hot state peels off into the slabs; the cold record is the Asset
  // subobject that remains.
  alive_.push_back(1);
  energy_.push_back(spec.energy);
  mobility_.push_back(std::move(spec.mobility));
  assets_.push_back(std::move(static_cast<Asset&>(spec)));
  // Hooks may register further hooks (a service bootstrapping another) and
  // reallocate the vector: index with a snapshotted count, never iterators.
  const std::size_t hook_count = added_hooks_.size();
  for (std::size_t h = 0; h < hook_count; ++h) added_hooks_[h](id);
  return id;
}

void World::destroy_asset(AssetId id) {
  // Idempotence guard: overlapping attacks (node_kill + mass_kill on the
  // same asset) and re-entrant kills from down-hooks fire the hooks once.
  if (!alive_.at(id)) return;
  alive_[id] = 0;
  net_.set_node_up(assets_[id].node, false);
  // Down-hooks may destroy further assets or add hooks; snapshot the count
  // and index (same reasoning as add_asset).
  const std::size_t hook_count = down_hooks_.size();
  for (std::size_t h = 0; h < hook_count; ++h) down_hooks_[h](id);
}

bool World::asset_live(AssetId id) const {
  return alive_.at(id) != 0 && !energy_[id].depleted();
}

std::size_t World::live_asset_count() const {
  // A pure slab sweep: two flat arrays, no cold-record striding.
  std::size_t n = 0;
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i] && !energy_[i].depleted()) ++n;
  }
  return n;
}

TargetId World::add_target(sim::Vec2 position, std::shared_ptr<MobilityModel> mobility,
                           std::string kind) {
  const auto id = static_cast<TargetId>(targets_.size());
  targets_.push_back(Target{id, position, std::move(mobility), std::move(kind), true});
  return id;
}

std::vector<std::pair<TargetId, sim::Vec2>> World::active_target_positions() const {
  std::vector<std::pair<TargetId, sim::Vec2>> out;
  out.reserve(targets_.size());
  for (const Target& t : targets_) {
    if (t.active) out.push_back({t.id, t.position});
  }
  return out;
}

void World::install_transmit_hook() {
  // Charge transmit energy to the owning asset, via the node->asset index
  // (maintained by add_asset, so late arrivals are covered) — the
  // per-frame hook is O(1).
  net_.set_transmit_hook([this](net::NodeId node, std::size_t bytes) {
    if (node < node_to_asset_.size()) {
      energy_[node_to_asset_[node]].drain_tx(bytes);
    }
  });
}

void World::start(sim::Duration period) {
  assert(!started_ && "World::start called twice");
  started_ = true;
  install_transmit_hook();
  tick_period_ = period;
  next_tick_at_ = sim_.now() + period;
  arm_tick();
}

void World::arm_tick() {
  tick_event_ = sim_.schedule_at(next_tick_at_, [this] { run_tick(); }, tick_tag_);
}

void World::run_tick() {
  // Body first, then re-arm — the same seq ordering schedule_every gave:
  // everything the tick schedules precedes the next tick's event.
  tick_event_ = sim::kNoEvent;
  tick(tick_period_.to_seconds());
  next_tick_at_ = next_tick_at_ + tick_period_;
  arm_tick();
}

void World::tick(double dt_s) {
  // destroy_asset fires down-hooks that may add_asset (recruit a
  // replacement) and reallocate assets_, so never hold a reference across
  // it: iterate by index and re-fetch. The count is snapshotted so assets
  // recruited mid-tick start ticking on the next tick.
  // The hot sweep runs on the slabs: liveness + energy are flat arrays,
  // and the cold record is only touched for its node id when a mobile
  // asset actually moves.
  const std::size_t count = assets_.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (!alive_[i]) continue;
    energy_[i].drain_idle(dt_s);
    if (energy_[i].depleted()) {
      destroy_asset(static_cast<AssetId>(i));
      continue;
    }
    if (mobility_[i]) {
      const net::NodeId node = assets_[i].node;
      const sim::Vec2 from = net_.position(node);
      const sim::Vec2 to = area_.clamp(mobility_[i]->step(from, dt_s));
      if (!(to == from)) net_.set_position(node, to);
    }
  }
  for (Target& t : targets_) {
    if (t.active && t.mobility) t.position = area_.clamp(t.mobility->step(t.position, dt_s));
  }
}

std::vector<Observation> World::sense(AssetId asset_id, Modality modality) {
  Asset& a = assets_.at(asset_id);
  if (!asset_live(asset_id)) return {};
  const SenseCapability* cap = a.sensor(modality);
  if (!cap) return {};
  energy_[asset_id].drain_sense();
  sim::Rng sensor_rng = rng_.child(0xABCD0000ULL + asset_id).child(
      static_cast<std::uint64_t>(sim_.now().nanos()));
  const sim::Vec2 at = net_.position(a.node);
  // Environmental disruptions degrade the effective sensor quality while
  // the platform sits inside an affected region.
  SenseCapability effective = *cap;
  for (const auto& d : disruptions_) {
    if (d.modality == modality && d.active_at(sim_.now()) && d.region.contains(at)) {
      effective.quality *= (1.0 - d.severity);
    }
  }
  return sense_targets(a, effective, at, active_target_positions(), sim_.now(),
                       area_, sensor_rng);
}

void World::save(sim::Snapshot& snap, const std::string& key) const {
  CheckpointState st;
  std::map<const MobilityModel*, std::shared_ptr<MobilityModel>> memo;
  st.assets = assets_;
  st.alive = alive_;
  st.energy = energy_;
  st.mobility.reserve(mobility_.size());
  for (const auto& m : mobility_) st.mobility.push_back(clone_memoized(m, memo));
  st.targets = targets_;
  for (Target& t : st.targets) t.mobility = clone_memoized(t.mobility, memo);
  st.node_to_asset = node_to_asset_;
  st.disruptions = disruptions_;
  st.rng = rng_;
  st.started = started_;
  st.tick_period = tick_period_;
  st.next_tick_at = next_tick_at_;
  st.tick_seq = sim_.pending_seq(tick_event_);
  snap.put(key, std::move(st));
}

void World::restore(const sim::Snapshot& snap, const std::string& key,
                    sim::RestoreArmer& armer) {
  const auto& st = snap.get<CheckpointState>(key);
  sim_.cancel(tick_event_);
  tick_event_ = sim::kNoEvent;
  // Clone OUT of the snapshot (never adopt its pointers): the snapshot
  // stays immutable so it can seed many branches, and each branch's
  // mobility advances independently.
  std::map<const MobilityModel*, std::shared_ptr<MobilityModel>> memo;
  assets_ = st.assets;
  alive_ = st.alive;
  energy_ = st.energy;
  mobility_.clear();
  mobility_.reserve(st.mobility.size());
  for (const auto& m : st.mobility) mobility_.push_back(clone_memoized(m, memo));
  targets_ = st.targets;
  for (Target& t : targets_) t.mobility = clone_memoized(t.mobility, memo);
  node_to_asset_ = st.node_to_asset;
  disruptions_ = st.disruptions;
  rng_ = st.rng;
  started_ = st.started;
  tick_period_ = st.tick_period;
  next_tick_at_ = st.next_tick_at;
  if (started_) {
    // A fresh branch stack may not have had start() called; (re)installing
    // the hook is idempotent on an in-place rewind.
    install_transmit_hook();
    if (st.tick_seq != 0) {
      armer.rearm(next_tick_at_, st.tick_seq, [this] { run_tick(); }, tick_tag_,
                  &tick_event_);
    }
  } else {
    net_.set_transmit_hook({});
  }
}

std::vector<Observation> World::sense_all(Modality modality) {
  std::vector<Observation> out;
  for (const Asset& a : assets_) {
    if (a.affiliation != Affiliation::kBlue) continue;
    auto obs = sense(a.id, modality);
    out.insert(out.end(), obs.begin(), obs.end());
  }
  return out;
}

}  // namespace iobt::things
