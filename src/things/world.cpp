#include "things/world.h"

#include <cassert>
#include <map>

#include "sim/wire.h"

namespace iobt::things {

namespace {

/// Clones a mobility model once per distinct source object: assets that
/// share a model before save share the clone after restore (aliasing is
/// part of the model state — a shared Rng stream must stay shared).
std::shared_ptr<MobilityModel> clone_memoized(
    const std::shared_ptr<MobilityModel>& m,
    std::map<const MobilityModel*, std::shared_ptr<MobilityModel>>& memo) {
  if (!m) return nullptr;
  auto it = memo.find(m.get());
  if (it != memo.end()) return it->second;
  auto clone = m->clone();
  memo.emplace(m.get(), clone);
  return clone;
}

}  // namespace

World::World(sim::Simulator& simulator, net::Network& network, sim::Rect area,
             sim::Rng rng)
    : sim_(simulator), net_(network), area_(area), rng_(rng) {
  tick_tag_ = sim_.intern("world.tick");
  sim_.checkpoint().register_participant(this);
}

World::~World() {
  sim_.cancel(tick_event_);
  sim_.checkpoint().unregister(this);
}

AssetId World::add_asset(AssetSpec spec, sim::Vec2 position, net::RadioProfile radio,
                         net::LayerId layer) {
  const auto id = static_cast<AssetId>(assets_.size());
  spec.id = id;
  spec.node = net_.add_node(position, radio, layer);
  // Keep the node->asset index current for every arrival, not just the
  // population present at start(): assets recruited mid-run must pay
  // transmit energy too.
  if (node_to_asset_.size() <= spec.node) node_to_asset_.resize(spec.node + 1, 0);
  node_to_asset_[spec.node] = id;
  // Hot state peels off into the slabs; the cold record is the Asset
  // subobject that remains.
  alive_.push_back(1);
  energy_.push_back(spec.energy);
  mobility_.push_back(std::move(spec.mobility));
  assets_.push_back(std::move(static_cast<Asset&>(spec)));
  // Hooks may register further hooks (a service bootstrapping another) and
  // reallocate the vector: index with a snapshotted count, never iterators.
  const std::size_t hook_count = added_hooks_.size();
  for (std::size_t h = 0; h < hook_count; ++h) added_hooks_[h](id);
  return id;
}

void World::destroy_asset(AssetId id) {
  // Idempotence guard: overlapping attacks (node_kill + mass_kill on the
  // same asset) and re-entrant kills from down-hooks fire the hooks once.
  if (!alive_.at(id)) return;
  alive_[id] = 0;
  net_.set_node_up(assets_[id].node, false);
  // Down-hooks may destroy further assets or add hooks; snapshot the count
  // and index (same reasoning as add_asset).
  const std::size_t hook_count = down_hooks_.size();
  for (std::size_t h = 0; h < hook_count; ++h) down_hooks_[h](id);
}

bool World::asset_live(AssetId id) const {
  return alive_.at(id) != 0 && !energy_[id].depleted();
}

std::size_t World::live_asset_count() const {
  // A pure slab sweep: two flat arrays, no cold-record striding.
  std::size_t n = 0;
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i] && !energy_[i].depleted()) ++n;
  }
  return n;
}

TargetId World::add_target(sim::Vec2 position, std::shared_ptr<MobilityModel> mobility,
                           std::string kind) {
  const auto id = static_cast<TargetId>(targets_.size());
  targets_.push_back(Target{id, position, std::move(mobility), std::move(kind), true});
  return id;
}

std::vector<std::pair<TargetId, sim::Vec2>> World::active_target_positions() const {
  std::vector<std::pair<TargetId, sim::Vec2>> out;
  out.reserve(targets_.size());
  for (const Target& t : targets_) {
    if (t.active) out.push_back({t.id, t.position});
  }
  return out;
}

void World::install_transmit_hook() {
  // Charge transmit energy to the owning asset, via the node->asset index
  // (maintained by add_asset, so late arrivals are covered) — the
  // per-frame hook is O(1).
  net_.set_transmit_hook([this](net::NodeId node, std::size_t bytes) {
    if (node < node_to_asset_.size()) {
      energy_[node_to_asset_[node]].drain_tx(bytes);
    }
  });
}

void World::start(sim::Duration period) {
  assert(!started_ && "World::start called twice");
  started_ = true;
  install_transmit_hook();
  tick_period_ = period;
  next_tick_at_ = sim_.now() + period;
  arm_tick();
}

void World::arm_tick() {
  tick_event_ = sim_.schedule_at(next_tick_at_, [this] { run_tick(); }, tick_tag_);
}

void World::run_tick() {
  // Body first, then re-arm — the same seq ordering schedule_every gave:
  // everything the tick schedules precedes the next tick's event.
  tick_event_ = sim::kNoEvent;
  tick(tick_period_.to_seconds());
  next_tick_at_ = next_tick_at_ + tick_period_;
  arm_tick();
}

void World::tick(double dt_s) {
  // destroy_asset fires down-hooks that may add_asset (recruit a
  // replacement) and reallocate assets_, so never hold a reference across
  // it: iterate by index and re-fetch. The count is snapshotted so assets
  // recruited mid-tick start ticking on the next tick.
  // The hot sweep runs on the slabs: liveness + energy are flat arrays,
  // and the cold record is only touched for its node id when a mobile
  // asset actually moves.
  const std::size_t count = assets_.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (!alive_[i]) continue;
    energy_[i].drain_idle(dt_s);
    if (energy_[i].depleted()) {
      destroy_asset(static_cast<AssetId>(i));
      continue;
    }
    if (mobility_[i]) {
      const net::NodeId node = assets_[i].node;
      const sim::Vec2 from = net_.position(node);
      const sim::Vec2 to = area_.clamp(mobility_[i]->step(from, dt_s));
      if (!(to == from)) net_.set_position(node, to);
    }
  }
  for (Target& t : targets_) {
    if (t.active && t.mobility) t.position = area_.clamp(t.mobility->step(t.position, dt_s));
  }
}

std::vector<Observation> World::sense(AssetId asset_id, Modality modality) {
  Asset& a = assets_.at(asset_id);
  if (!asset_live(asset_id)) return {};
  const SenseCapability* cap = a.sensor(modality);
  if (!cap) return {};
  energy_[asset_id].drain_sense();
  sim::Rng sensor_rng = rng_.child(0xABCD0000ULL + asset_id).child(
      static_cast<std::uint64_t>(sim_.now().nanos()));
  const sim::Vec2 at = net_.position(a.node);
  // Environmental disruptions degrade the effective sensor quality while
  // the platform sits inside an affected region.
  SenseCapability effective = *cap;
  for (const auto& d : disruptions_) {
    if (d.modality == modality && d.active_at(sim_.now()) && d.region.contains(at)) {
      effective.quality *= (1.0 - d.severity);
    }
  }
  return sense_targets(a, effective, at, active_target_positions(), sim_.now(),
                       area_, sensor_rng);
}

void World::save(sim::Snapshot& snap, const std::string& key) const {
  CheckpointState st;
  std::map<const MobilityModel*, std::shared_ptr<MobilityModel>> memo;
  st.assets = assets_;
  st.alive = alive_;
  st.energy = energy_;
  st.mobility.reserve(mobility_.size());
  for (const auto& m : mobility_) st.mobility.push_back(clone_memoized(m, memo));
  st.targets = targets_;
  for (Target& t : st.targets) t.mobility = clone_memoized(t.mobility, memo);
  st.node_to_asset = node_to_asset_;
  st.disruptions = disruptions_;
  st.rng = rng_;
  st.started = started_;
  st.tick_period = tick_period_;
  st.next_tick_at = next_tick_at_;
  st.tick_seq = sim_.pending_seq(tick_event_);
  snap.put(key, std::move(st));
}

void World::restore(const sim::Snapshot& snap, const std::string& key,
                    sim::RestoreArmer& armer) {
  const auto& st = snap.get<CheckpointState>(key);
  sim_.cancel(tick_event_);
  tick_event_ = sim::kNoEvent;
  // Clone OUT of the snapshot (never adopt its pointers): the snapshot
  // stays immutable so it can seed many branches, and each branch's
  // mobility advances independently.
  std::map<const MobilityModel*, std::shared_ptr<MobilityModel>> memo;
  assets_ = st.assets;
  alive_ = st.alive;
  energy_ = st.energy;
  mobility_.clear();
  mobility_.reserve(st.mobility.size());
  for (const auto& m : st.mobility) mobility_.push_back(clone_memoized(m, memo));
  targets_ = st.targets;
  for (Target& t : targets_) t.mobility = clone_memoized(t.mobility, memo);
  node_to_asset_ = st.node_to_asset;
  disruptions_ = st.disruptions;
  rng_ = st.rng;
  started_ = st.started;
  tick_period_ = st.tick_period;
  next_tick_at_ = st.next_tick_at;
  if (started_) {
    // A fresh branch stack may not have had start() called; (re)installing
    // the hook is idempotent on an in-place rewind.
    install_transmit_hook();
    if (st.tick_seq != 0) {
      armer.rearm(next_tick_at_, st.tick_seq, [this] { run_tick(); }, tick_tag_,
                  &tick_event_);
    }
  } else {
    net_.set_transmit_hook({});
  }
}

std::vector<Observation> World::sense_all(Modality modality) {
  std::vector<Observation> out;
  for (const Asset& a : assets_) {
    if (a.affiliation != Affiliation::kBlue) continue;
    auto obs = sense(a.id, modality);
    out.insert(out.end(), obs.begin(), obs.end());
  }
  return out;
}

// --- Wire persistence ------------------------------------------------------

namespace {

void encode_asset(sim::WireWriter& w, const Asset& a) {
  w.u64(a.id)
      .u64(static_cast<std::uint64_t>(a.device_class))
      .u64(static_cast<std::uint64_t>(a.affiliation))
      .u64(a.node);
  w.u64(a.sensors.size());
  for (const SenseCapability& s : a.sensors) {
    w.u64(static_cast<std::uint64_t>(s.modality))
        .f64(s.range_m)
        .f64(s.quality)
        .f64(s.false_positive_rate);
  }
  w.u64(a.actuators.size());
  for (const ActuateCapability& ac : a.actuators) {
    w.u64(static_cast<std::uint64_t>(ac.kind)).f64(ac.range_m);
  }
  w.f64(a.compute.flops).f64(a.compute.memory_bytes).f64(a.compute.storage_bytes);
  w.f64(a.emissions.beacon_period_s)
      .boolean(a.emissions.responds_to_probe)
      .f64(a.emissions.side_channel_rate_hz);
  w.f64(a.report_reliability);
}

/// Reads a u64 and range-checks it against an enum's cardinality.
bool decode_enum(sim::WireReader& r, std::uint64_t limit, std::uint64_t& out) {
  out = r.u64();
  return r.ok() && out < limit;
}

bool decode_asset(sim::WireReader& r, Asset& a) {
  a.id = static_cast<AssetId>(r.u64());
  std::uint64_t device = 0, affiliation = 0;
  if (!decode_enum(r, kDeviceClassCount, device) ||
      !decode_enum(r, 3, affiliation)) {
    return false;
  }
  a.device_class = static_cast<DeviceClass>(device);
  a.affiliation = static_cast<Affiliation>(affiliation);
  a.node = static_cast<net::NodeId>(r.u64());
  const std::uint64_t sensors = r.u64();
  if (!r.ok() || sensors > r.remaining()) return false;
  a.sensors.resize(static_cast<std::size_t>(sensors));
  for (SenseCapability& s : a.sensors) {
    std::uint64_t modality = 0;
    if (!decode_enum(r, kModalityCount, modality)) return false;
    s.modality = static_cast<Modality>(modality);
    s.range_m = r.f64();
    s.quality = r.f64();
    s.false_positive_rate = r.f64();
  }
  const std::uint64_t actuators = r.u64();
  if (!r.ok() || actuators > r.remaining()) return false;
  a.actuators.resize(static_cast<std::size_t>(actuators));
  for (ActuateCapability& ac : a.actuators) {
    std::uint64_t kind = 0;
    if (!decode_enum(r, 5, kind)) return false;
    ac.kind = static_cast<ActuationKind>(kind);
    ac.range_m = r.f64();
  }
  a.compute.flops = r.f64();
  a.compute.memory_bytes = r.f64();
  a.compute.storage_bytes = r.f64();
  a.emissions.beacon_period_s = r.f64();
  a.emissions.responds_to_probe = r.boolean();
  a.emissions.side_channel_rate_hz = r.f64();
  a.report_reliability = r.f64();
  return r.ok();
}

void encode_energy(sim::WireWriter& w, const EnergyModel& e) {
  w.f64(e.capacity_j())
      .f64(e.stored_j())
      .f64(e.tx_cost_per_byte)
      .f64(e.sense_cost_per_obs)
      .f64(e.compute_cost_per_mflop)
      .f64(e.idle_cost_per_s);
}

EnergyModel decode_energy(sim::WireReader& r) {
  const double capacity = r.f64();
  const double stored = r.f64();
  EnergyModel e = EnergyModel::from_raw(capacity, stored);
  e.tx_cost_per_byte = r.f64();
  e.sense_cost_per_obs = r.f64();
  e.compute_cost_per_mflop = r.f64();
  e.idle_cost_per_s = r.f64();
  return e;
}

}  // namespace

bool World::encode_state(const sim::Snapshot& snap, const std::string& key,
                         sim::WireWriter& w) const {
  const auto& st = snap.get<CheckpointState>(key);
  w.u64(st.assets.size());
  for (const Asset& a : st.assets) encode_asset(w, a);
  for (std::uint8_t v : st.alive) w.u64(v);
  for (const EnergyModel& e : st.energy) encode_energy(w, e);

  // Alias table over every distinct mobility model referenced by assets OR
  // targets, in first-appearance order. Sharing structure is state: two
  // slots aliasing one model (one Rng stream) must still alias after the
  // disk round trip.
  std::vector<const MobilityModel*> table;
  std::map<const MobilityModel*, std::uint64_t> ids;
  const auto alias_of = [&](const std::shared_ptr<MobilityModel>& m)
      -> std::int64_t {
    if (!m) return -1;
    auto [it, inserted] = ids.emplace(m.get(), table.size());
    if (inserted) table.push_back(m.get());
    return static_cast<std::int64_t>(it->second);
  };
  std::vector<std::int64_t> asset_alias, target_alias;
  asset_alias.reserve(st.mobility.size());
  for (const auto& m : st.mobility) asset_alias.push_back(alias_of(m));
  target_alias.reserve(st.targets.size());
  for (const Target& t : st.targets) target_alias.push_back(alias_of(t.mobility));
  w.u64(table.size());
  for (const MobilityModel* m : table) encode_model(w, *m);
  for (std::int64_t a : asset_alias) w.i64(a);

  w.u64(st.targets.size());
  for (std::size_t i = 0; i < st.targets.size(); ++i) {
    const Target& t = st.targets[i];
    w.u64(t.id).vec2(t.position).i64(target_alias[i]).bytes(t.kind).boolean(
        t.active);
  }
  w.u64(st.node_to_asset.size());
  for (AssetId id : st.node_to_asset) w.u64(id);
  w.u64(st.disruptions.size());
  for (const SensingDisruption& d : st.disruptions) {
    w.u64(static_cast<std::uint64_t>(d.modality))
        .rect(d.region)
        .time(d.start)
        .time(d.end)
        .f64(d.severity);
  }
  w.rng(st.rng)
      .boolean(st.started)
      .dur(st.tick_period)
      .time(st.next_tick_at)
      .u64(st.tick_seq);
  return true;
}

bool World::decode_state(sim::Snapshot& snap, const std::string& key,
                         sim::WireReader& r) const {
  CheckpointState st;
  const std::uint64_t assets = r.u64();
  if (!r.ok() || assets > r.remaining()) return false;
  st.assets.resize(static_cast<std::size_t>(assets));
  for (Asset& a : st.assets) {
    if (!decode_asset(r, a)) return false;
  }
  st.alive.resize(st.assets.size());
  for (std::uint8_t& v : st.alive) {
    const std::uint64_t raw = r.u64();
    if (raw > 1) return false;
    v = static_cast<std::uint8_t>(raw);
  }
  st.energy.reserve(st.assets.size());
  for (std::size_t i = 0; i < st.assets.size(); ++i) {
    st.energy.push_back(decode_energy(r));
  }

  const std::uint64_t models = r.u64();
  if (!r.ok() || models > r.remaining()) return false;
  std::vector<std::shared_ptr<MobilityModel>> table;
  table.reserve(static_cast<std::size_t>(models));
  for (std::uint64_t i = 0; i < models; ++i) {
    auto m = decode_model(r);
    if (!m) return false;
    table.push_back(std::move(m));
  }
  const auto resolve = [&](std::int64_t alias,
                           std::shared_ptr<MobilityModel>& out) {
    if (alias < 0) {
      out = nullptr;
      return true;
    }
    if (static_cast<std::uint64_t>(alias) >= table.size()) return false;
    out = table[static_cast<std::size_t>(alias)];
    return true;
  };
  st.mobility.resize(st.assets.size());
  for (auto& m : st.mobility) {
    if (!resolve(r.i64(), m)) return false;
  }

  const std::uint64_t targets = r.u64();
  if (!r.ok() || targets > r.remaining()) return false;
  st.targets.resize(static_cast<std::size_t>(targets));
  for (Target& t : st.targets) {
    t.id = static_cast<TargetId>(r.u64());
    t.position = r.vec2();
    if (!resolve(r.i64(), t.mobility)) return false;
    t.kind = r.bytes();
    t.active = r.boolean();
  }
  const std::uint64_t nodes = r.u64();
  if (!r.ok() || nodes > r.remaining()) return false;
  st.node_to_asset.resize(static_cast<std::size_t>(nodes));
  for (AssetId& id : st.node_to_asset) id = static_cast<AssetId>(r.u64());
  const std::uint64_t disruptions = r.u64();
  if (!r.ok() || disruptions > r.remaining()) return false;
  st.disruptions.resize(static_cast<std::size_t>(disruptions));
  for (SensingDisruption& d : st.disruptions) {
    std::uint64_t modality = 0;
    if (!decode_enum(r, kModalityCount, modality)) return false;
    d.modality = static_cast<Modality>(modality);
    d.region = r.rect();
    d.start = r.time();
    d.end = r.time();
    d.severity = r.f64();
  }
  st.rng = r.rng();
  st.started = r.boolean();
  st.tick_period = r.dur();
  st.next_tick_at = r.time();
  st.tick_seq = r.u64();
  if (!r.ok()) return false;
  snap.put(key, std::move(st));
  return true;
}

}  // namespace iobt::things
