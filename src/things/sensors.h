#pragma once
// Sensor observation model.
//
// Sensing is modelled generatively: the World holds ground-truth targets;
// when an asset senses, each in-range target is detected with a
// distance-decayed probability, position estimates carry Gaussian noise,
// and false positives appear at the sensor's false-positive rate. Fields
// marked "ground truth" exist for scoring only and must not be read by
// inference algorithms.

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/geometry.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "things/asset.h"
#include "things/capability.h"

namespace iobt::things {

using TargetId = std::uint32_t;

/// One sensor reading.
struct Observation {
  AssetId sensor = 0;
  Modality modality = Modality::kCamera;
  sim::SimTime time;
  /// Estimated target position (noisy).
  sim::Vec2 position;
  /// Detection confidence reported by the sensor, in (0, 1].
  double confidence = 1.0;

  // --- Ground truth (scoring only) ---------------------------------------
  /// The real target this observation corresponds to; nullopt for false
  /// positives.
  std::optional<TargetId> truth_target;
};

/// Detection probability of a sensor for a target at distance d:
/// quality * (1 - (d / range)^2), clamped to [0, quality]; zero beyond
/// range. Simple, monotone, and gives the coverage-vs-density tradeoffs
/// the synthesis experiments need.
double detection_probability(const SenseCapability& cap, double distance_m);

/// Position noise standard deviation at distance d: grows linearly from
/// 1m at point blank to 0.1 * range at the edge.
double position_noise_stddev(const SenseCapability& cap, double distance_m);

/// Generates the observations one sensing sweep produces, given the true
/// target positions. `rng` must be the sensing asset's own substream.
std::vector<Observation> sense_targets(
    const Asset& asset, const SenseCapability& cap, sim::Vec2 asset_position,
    const std::vector<std::pair<TargetId, sim::Vec2>>& targets, sim::SimTime now,
    sim::Rect area, sim::Rng& rng);

}  // namespace iobt::things
