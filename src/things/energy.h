#pragma once
// Energy accounting for disadvantaged assets (§II: "limitations on energy,
// power, storage, and bandwidth"). Each asset owns an EnergyModel; the
// network's transmit hook and the sensing/compute paths drain it. A dead
// asset is taken offline by the World tick.

#include <algorithm>

namespace iobt::things {

class EnergyModel {
 public:
  /// `capacity_j` <= 0 means mains/vehicle powered (never depletes).
  explicit EnergyModel(double capacity_j = 0.0) : capacity_j_(capacity_j),
                                                  remaining_j_(capacity_j) {}

  bool unlimited() const { return capacity_j_ <= 0.0; }
  bool depleted() const { return !unlimited() && remaining_j_ <= 0.0; }
  double remaining_j() const { return unlimited() ? 0.0 : remaining_j_; }
  double fraction_remaining() const {
    return unlimited() ? 1.0 : std::max(0.0, remaining_j_ / capacity_j_);
  }

  /// Energy cost knobs (joules).
  double tx_cost_per_byte = 2e-6;
  double sense_cost_per_obs = 5e-4;
  double compute_cost_per_mflop = 1e-5;
  double idle_cost_per_s = 1e-4;

  void drain(double joules) {
    if (!unlimited()) remaining_j_ = std::max(0.0, remaining_j_ - joules);
  }
  void drain_tx(std::size_t bytes) { drain(tx_cost_per_byte * static_cast<double>(bytes)); }
  void drain_sense() { drain(sense_cost_per_obs); }
  void drain_compute(double mflops) { drain(compute_cost_per_mflop * mflops); }
  void drain_idle(double seconds) { drain(idle_cost_per_s * seconds); }
  void recharge_full() { remaining_j_ = capacity_j_; }

  /// Checkpoint persistence (sim/wire.h): raw internals, round-tripped
  /// bit-exactly — stored_j is the unconditioned remaining_j_ (unlike
  /// remaining_j(), which reports 0 for unlimited assets).
  double capacity_j() const { return capacity_j_; }
  double stored_j() const { return remaining_j_; }
  static EnergyModel from_raw(double capacity_j, double stored_j) {
    EnergyModel m(capacity_j);
    m.remaining_j_ = stored_j;
    return m;
  }

 private:
  double capacity_j_;
  double remaining_j_;
};

}  // namespace iobt::things
