#pragma once
// Mobility models. Positions advance in discrete ticks driven by the World;
// models are deterministic functions of their Rng substream.

#include <memory>

#include "sim/geometry.h"
#include "sim/rng.h"

namespace iobt::sim {
class WireReader;  // sim/wire.h
class WireWriter;
}  // namespace iobt::sim

namespace iobt::things {

/// Strategy interface: given the current position and elapsed seconds,
/// produce the next position. Implementations keep their own state.
class MobilityModel {
 public:
  /// Stable wire tag for checkpoint persistence — order is the on-disk
  /// format, append only.
  enum class Kind : std::uint8_t {
    kStationary = 0,
    kRandomWaypoint = 1,
    kGridPatrol = 2,
    kSeekPoint = 3,
  };

  virtual ~MobilityModel() = default;
  virtual sim::Vec2 step(sim::Vec2 current, double dt_s) = 0;
  /// Deep copy, including the model's Rng position — checkpoint snapshots
  /// clone mobility so a restored branch advances exactly where the saved
  /// run would have, without sharing mutable state with the source.
  virtual std::shared_ptr<MobilityModel> clone() const = 0;

  virtual Kind kind() const = 0;
  /// Writes the full model state (Rng position included) to the wire; the
  /// bit-exact counterpart of clone() for the persistence path. The kind
  /// tag itself is written/dispatched by encode_model / decode_model.
  virtual void encode(sim::WireWriter& w) const = 0;
};

/// Kind tag + state; the inverse of decode_model.
void encode_model(sim::WireWriter& w, const MobilityModel& m);
/// Rebuilds a model from the wire, or nullptr on a malformed tag/state
/// (the reader's fail flag is latched either way).
std::shared_ptr<MobilityModel> decode_model(sim::WireReader& r);

/// Never moves (fixed infrastructure, unattended sensors).
class Stationary final : public MobilityModel {
 public:
  sim::Vec2 step(sim::Vec2 current, double /*dt_s*/) override { return current; }
  std::shared_ptr<MobilityModel> clone() const override {
    return std::make_shared<Stationary>(*this);
  }
  Kind kind() const override { return Kind::kStationary; }
  void encode(sim::WireWriter& w) const override;
};

/// Classic random waypoint inside an area: pick a uniform destination,
/// travel at the configured speed, pause, repeat.
class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(sim::Rect area, double speed_mps, double pause_s, sim::Rng rng);
  sim::Vec2 step(sim::Vec2 current, double dt_s) override;
  std::shared_ptr<MobilityModel> clone() const override {
    return std::make_shared<RandomWaypoint>(*this);
  }
  Kind kind() const override { return Kind::kRandomWaypoint; }
  void encode(sim::WireWriter& w) const override;
  static std::shared_ptr<RandomWaypoint> decode(sim::WireReader& r);

 private:
  sim::Rect area_;
  double speed_;
  double pause_s_;
  sim::Rng rng_;
  sim::Vec2 target_;
  bool has_target_ = false;
  double pause_left_ = 0.0;
};

/// Patrols along axis-aligned streets of an urban grid: moves in straight
/// segments, turning at intersections (grid pitch `block_m`).
class GridPatrol final : public MobilityModel {
 public:
  GridPatrol(sim::Rect area, double block_m, double speed_mps, sim::Rng rng);
  sim::Vec2 step(sim::Vec2 current, double dt_s) override;
  std::shared_ptr<MobilityModel> clone() const override {
    return std::make_shared<GridPatrol>(*this);
  }
  Kind kind() const override { return Kind::kGridPatrol; }
  void encode(sim::WireWriter& w) const override;
  static std::shared_ptr<GridPatrol> decode(sim::WireReader& r);

 private:
  void pick_heading(sim::Vec2 at);

  sim::Rect area_;
  double block_m_;
  double speed_;
  sim::Rng rng_;
  sim::Vec2 heading_;       // unit vector along a street axis
  double until_turn_m_ = 0; // distance to the next intersection decision
};

/// Moves toward a fixed rally point and stops there (evacuation flows).
class SeekPoint final : public MobilityModel {
 public:
  SeekPoint(sim::Vec2 goal, double speed_mps) : goal_(goal), speed_(speed_mps) {}
  sim::Vec2 step(sim::Vec2 current, double dt_s) override;
  std::shared_ptr<MobilityModel> clone() const override {
    return std::make_shared<SeekPoint>(*this);
  }
  Kind kind() const override { return Kind::kSeekPoint; }
  void encode(sim::WireWriter& w) const override;
  bool arrived(sim::Vec2 current, double tol_m = 1.0) const {
    return sim::distance(current, goal_) <= tol_m;
  }
  void set_goal(sim::Vec2 g) { goal_ = g; }
  sim::Vec2 goal() const { return goal_; }

 private:
  sim::Vec2 goal_;
  double speed_;
};

}  // namespace iobt::things
