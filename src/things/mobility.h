#pragma once
// Mobility models. Positions advance in discrete ticks driven by the World;
// models are deterministic functions of their Rng substream.

#include <memory>

#include "sim/geometry.h"
#include "sim/rng.h"

namespace iobt::things {

/// Strategy interface: given the current position and elapsed seconds,
/// produce the next position. Implementations keep their own state.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual sim::Vec2 step(sim::Vec2 current, double dt_s) = 0;
  /// Deep copy, including the model's Rng position — checkpoint snapshots
  /// clone mobility so a restored branch advances exactly where the saved
  /// run would have, without sharing mutable state with the source.
  virtual std::shared_ptr<MobilityModel> clone() const = 0;
};

/// Never moves (fixed infrastructure, unattended sensors).
class Stationary final : public MobilityModel {
 public:
  sim::Vec2 step(sim::Vec2 current, double /*dt_s*/) override { return current; }
  std::shared_ptr<MobilityModel> clone() const override {
    return std::make_shared<Stationary>(*this);
  }
};

/// Classic random waypoint inside an area: pick a uniform destination,
/// travel at the configured speed, pause, repeat.
class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(sim::Rect area, double speed_mps, double pause_s, sim::Rng rng);
  sim::Vec2 step(sim::Vec2 current, double dt_s) override;
  std::shared_ptr<MobilityModel> clone() const override {
    return std::make_shared<RandomWaypoint>(*this);
  }

 private:
  sim::Rect area_;
  double speed_;
  double pause_s_;
  sim::Rng rng_;
  sim::Vec2 target_;
  bool has_target_ = false;
  double pause_left_ = 0.0;
};

/// Patrols along axis-aligned streets of an urban grid: moves in straight
/// segments, turning at intersections (grid pitch `block_m`).
class GridPatrol final : public MobilityModel {
 public:
  GridPatrol(sim::Rect area, double block_m, double speed_mps, sim::Rng rng);
  sim::Vec2 step(sim::Vec2 current, double dt_s) override;
  std::shared_ptr<MobilityModel> clone() const override {
    return std::make_shared<GridPatrol>(*this);
  }

 private:
  void pick_heading(sim::Vec2 at);

  sim::Rect area_;
  double block_m_;
  double speed_;
  sim::Rng rng_;
  sim::Vec2 heading_;       // unit vector along a street axis
  double until_turn_m_ = 0; // distance to the next intersection decision
};

/// Moves toward a fixed rally point and stops there (evacuation flows).
class SeekPoint final : public MobilityModel {
 public:
  SeekPoint(sim::Vec2 goal, double speed_mps) : goal_(goal), speed_(speed_mps) {}
  sim::Vec2 step(sim::Vec2 current, double dt_s) override;
  std::shared_ptr<MobilityModel> clone() const override {
    return std::make_shared<SeekPoint>(*this);
  }
  bool arrived(sim::Vec2 current, double tol_m = 1.0) const {
    return sim::distance(current, goal_) <= tol_m;
  }
  void set_goal(sim::Vec2 g) { goal_ = g; }
  sim::Vec2 goal() const { return goal_; }

 private:
  sim::Vec2 goal_;
  double speed_;
};

}  // namespace iobt::things
