#pragma once
// Planar geometry for asset positions and radio range computations.
//
// The simulated operating area is a 2-D region in meters. Battlefield
// terrain is abstracted to positions + an optional urban occlusion grid
// (see net/channel.h); 2-D is sufficient for every algorithm in the paper,
// which depends on connectivity and coverage, not on elevation.

#include <cmath>
#include <compare>

namespace iobt::sim {

/// A point or displacement in the plane, in meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return a * k; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  double norm() const { return std::hypot(x, y); }
  constexpr double norm2() const { return x * x + y * y; }
  /// Unit vector in this direction; the zero vector normalizes to zero.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Axis-aligned rectangle [min, max], used for operation areas and
/// coverage cells.
struct Rect {
  Vec2 min;
  Vec2 max;

  constexpr double width() const { return max.x - min.x; }
  constexpr double height() const { return max.y - min.y; }
  constexpr double area() const { return width() * height(); }
  constexpr Vec2 center() const { return {(min.x + max.x) / 2, (min.y + max.y) / 2}; }
  constexpr bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  /// Clamps a point into the rectangle.
  constexpr Vec2 clamp(Vec2 p) const {
    return {p.x < min.x ? min.x : (p.x > max.x ? max.x : p.x),
            p.y < min.y ? min.y : (p.y > max.y ? max.y : p.y)};
  }
};

/// True iff segments pq and rs intersect (inclusive of touching).
inline bool segments_intersect(Vec2 p, Vec2 q, Vec2 r, Vec2 s) {
  auto cross = [](Vec2 a, Vec2 b) { return a.x * b.y - a.y * b.x; };
  auto sign = [](double v) { return v > 1e-12 ? 1 : (v < -1e-12 ? -1 : 0); };
  const int d1 = sign(cross(q - p, r - p));
  const int d2 = sign(cross(q - p, s - p));
  const int d3 = sign(cross(s - r, p - r));
  const int d4 = sign(cross(s - r, q - r));
  if (d1 != d2 && d3 != d4) return true;
  // Collinear touching cases.
  auto on_segment = [](Vec2 a, Vec2 b, Vec2 c) {
    return std::min(a.x, b.x) - 1e-12 <= c.x && c.x <= std::max(a.x, b.x) + 1e-12 &&
           std::min(a.y, b.y) - 1e-12 <= c.y && c.y <= std::max(a.y, b.y) + 1e-12;
  };
  if (d1 == 0 && on_segment(p, q, r)) return true;
  if (d2 == 0 && on_segment(p, q, s)) return true;
  if (d3 == 0 && on_segment(r, s, p)) return true;
  if (d4 == 0 && on_segment(r, s, q)) return true;
  return false;
}

/// True iff the segment pq passes through (or touches) the rectangle.
inline bool segment_intersects_rect(Vec2 p, Vec2 q, const Rect& r) {
  if (r.contains(p) || r.contains(q)) return true;
  const Vec2 a{r.min.x, r.min.y}, b{r.max.x, r.min.y}, c{r.max.x, r.max.y},
      d{r.min.x, r.max.y};
  return segments_intersect(p, q, a, b) || segments_intersect(p, q, b, c) ||
         segments_intersect(p, q, c, d) || segments_intersect(p, q, d, a);
}

}  // namespace iobt::sim
