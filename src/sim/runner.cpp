#include "sim/runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace iobt::sim {

namespace {

// Journal lines are tab-separated; payload/metrics fields get '\\', tab and
// newline escaped so any single-line-safe encoding survives verbatim.
std::string escape_field(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

bool unescape_field(std::string_view s, std::string& out) {
  out.clear();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: return false;
    }
  }
  return true;
}

bool parse_entry(const std::string& line, JournalEntry& e) {
  // rep \t seed \t index \t wall_ms \t payload \t metrics
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      fields.push_back(std::string_view(line).substr(start, i - start));
      start = i + 1;
    }
  }
  if (fields.size() != 6 || fields[0] != "rep") return false;
  char* end = nullptr;
  std::string tok(fields[1]);
  e.seed = std::strtoull(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || tok.empty()) return false;
  tok = std::string(fields[2]);
  e.index = std::strtoull(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || tok.empty()) return false;
  tok = std::string(fields[3]);
  e.wall_ms = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size() || tok.empty()) return false;
  return unescape_field(fields[4], e.payload) &&
         unescape_field(fields[5], e.metrics);
}

}  // namespace

CampaignJournal::CampaignJournal(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_, std::ios::binary);
  std::string line;
  while (std::getline(in, line)) {
    JournalEntry e;
    // Malformed lines (partial write at a kill point, foreign content) are
    // skipped, not fatal: resume re-runs whatever is missing.
    if (parse_entry(line, e)) entries_.push_back(std::move(e));
  }
  // getline strips '\n' but leaves a crash-truncated final line intact, so
  // re-check the raw tail byte: if the file does not end in '\n', the next
  // append must start a fresh line or it would fuse with the partial one.
  in.clear();
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size > 0) {
    in.seekg(-1, std::ios::end);
    char last_char = '\n';
    in.get(last_char);
    tail_needs_newline_ = last_char != '\n';
  }
}

const JournalEntry* CampaignJournal::find(std::uint64_t seed,
                                          std::size_t index) const {
  // Last write wins so a re-run of an already-journaled replication (e.g.
  // after a decode-era format change) supersedes the stale entry.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->seed == seed && it->index == index) return &*it;
  }
  return nullptr;
}

void CampaignJournal::append(const JournalEntry& e) {
  std::ostringstream line;
  line << "rep\t" << e.seed << '\t' << e.index << '\t' << e.wall_ms << '\t'
       << escape_field(e.payload) << '\t' << escape_field(e.metrics) << '\n';
  std::string text = line.str();
  std::lock_guard<std::mutex> lock(mu_);
  if (tail_needs_newline_) {
    // The file ends in a crash-truncated partial line; terminate it so the
    // new entry starts cleanly (the partial line stays malformed and is
    // skipped on load, instead of swallowing this entry too). Folded into
    // the single write below so durability is judged on the whole record.
    text.insert(text.begin(), '\n');
  }
  std::ofstream out(path_, std::ios::app);
  if (!out.is_open()) {
    // Nothing reached the disk: the tail state is whatever it was.
    throw std::runtime_error("CampaignJournal: cannot open '" + path_ +
                             "' for append");
  }
  out << text;
  out.flush();
  if (!out) {
    // The write (or its flush) failed partway: some prefix of the line may
    // be on disk. Treat it exactly like a crash-truncated tail — the next
    // append starts a fresh line and the loader skips the fragment — and
    // surface the failure instead of pretending the entry is durable. The
    // in-memory roster is NOT updated: memory and disk stay consistent,
    // and a resume will re-run this replication.
    tail_needs_newline_ = true;
    throw std::runtime_error("CampaignJournal: write to '" + path_ +
                             "' failed; entry for seed " +
                             std::to_string(e.seed) + " index " +
                             std::to_string(e.index) + " is not durable");
  }
  tail_needs_newline_ = false;
  entries_.push_back(e);
}

SummaryStats SummaryStats::of(const std::vector<double>& xs) {
  SummaryStats s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double m2 = 0.0;
    for (double x : xs) m2 += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(m2 / static_cast<double>(xs.size() - 1));
  }
  return s;
}

std::vector<std::uint64_t> ParallelRunner::seed_range(std::uint64_t base,
                                                      std::size_t n) {
  std::vector<std::uint64_t> seeds(n);
  for (std::size_t i = 0; i < n; ++i) seeds[i] = base + i;
  return seeds;
}

std::string ParallelRunner::make_repro(std::uint64_t seed,
                                       std::size_t index) const {
  const std::string prog =
      opts_.repro_program.empty() ? "<bench>" : opts_.repro_program;
  return prog + " --workers=0 --seed=" + std::to_string(seed) +
         "  # replication " + std::to_string(index) + ", re-run serially";
}

}  // namespace iobt::sim
