#include "sim/runner.h"

#include <algorithm>
#include <cmath>

namespace iobt::sim {

SummaryStats SummaryStats::of(const std::vector<double>& xs) {
  SummaryStats s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double m2 = 0.0;
    for (double x : xs) m2 += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(m2 / static_cast<double>(xs.size() - 1));
  }
  return s;
}

std::vector<std::uint64_t> ParallelRunner::seed_range(std::uint64_t base,
                                                      std::size_t n) {
  std::vector<std::uint64_t> seeds(n);
  for (std::size_t i = 0; i < n; ++i) seeds[i] = base + i;
  return seeds;
}

std::string ParallelRunner::make_repro(std::uint64_t seed,
                                       std::size_t index) const {
  const std::string prog =
      opts_.repro_program.empty() ? "<bench>" : opts_.repro_program;
  return prog + " --workers=0 --seed=" + std::to_string(seed) +
         "  # replication " + std::to_string(index) + ", re-run serially";
}

}  // namespace iobt::sim
