#pragma once
// Byte-exact text wire format for checkpoint persistence.
//
// Snapshots must survive a disk round trip bit-for-bit — the digest
// contract of the serve layer compares a re-warmed branch against serial
// re-simulation, so one flipped mantissa bit is a divergence. Doubles
// therefore travel as the hex of their raw bit pattern (the discipline
// MetricsRegistry::serialize established: printf %.17g does not preserve
// NaN payloads or distinguish every -0.0 path), integers as decimal
// tokens, and byte strings length-prefixed so embedded spaces and
// newlines never confuse the tokenizer.
//
// WireReader is fail-soft: any malformed token latches ok() to false and
// every subsequent read returns a zero value, so decoders can run a whole
// field list and check ok() once at the end — corrupt input must yield a
// clean rejection, never UB or a throw from parsing.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "sim/geometry.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace iobt::sim {

class WireWriter {
 public:
  WireWriter& u64(std::uint64_t v) {
    buf_ += std::to_string(v);
    buf_ += ' ';
    return *this;
  }
  /// Two's-complement round trip through the u64 token space.
  WireWriter& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  WireWriter& boolean(bool b) { return u64(b ? 1 : 0); }
  /// Raw bit pattern as 16 hex chars — the only bit-exact text encoding.
  WireWriter& f64(double x) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof bits);
    char tok[20];
    std::snprintf(tok, sizeof tok, "%016" PRIx64 " ", bits);
    buf_ += tok;
    return *this;
  }
  /// Length-prefixed raw bytes (binary-safe: embedded separators are fine).
  WireWriter& bytes(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
    buf_ += ' ';
    return *this;
  }
  WireWriter& time(SimTime t) { return i64(t.nanos()); }
  WireWriter& dur(Duration d) { return i64(d.nanos()); }
  WireWriter& vec2(Vec2 v) { return f64(v.x).f64(v.y); }
  WireWriter& rect(const Rect& r) { return vec2(r.min).vec2(r.max); }
  WireWriter& rng(const Rng& g) {
    const Rng::State st = g.state();
    for (std::uint64_t word : st.s) u64(word);
    return f64(st.cached_normal).boolean(st.has_cached_normal);
  }

  const std::string& out() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view in) : in_(in) {}

  std::uint64_t u64() {
    std::string_view tok;
    if (!next_token(tok)) return 0;
    char* end = nullptr;
    const std::string s(tok);
    const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || s.empty()) return fail_u64();
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() {
    const std::uint64_t v = u64();
    if (v > 1) return static_cast<bool>(fail_u64());
    return v != 0;
  }
  double f64() {
    std::string_view tok;
    if (!next_token(tok) || tok.size() != 16) return static_cast<double>(fail_u64());
    char* end = nullptr;
    const std::string s(tok);
    const std::uint64_t bits = std::strtoull(s.c_str(), &end, 16);
    if (end != s.c_str() + s.size()) return static_cast<double>(fail_u64());
    double x = 0.0;
    std::memcpy(&x, &bits, sizeof x);
    return x;
  }
  std::string bytes() {
    const std::uint64_t n = u64();
    if (!ok_ || n > remaining()) {
      fail_u64();
      return {};
    }
    std::string s(in_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    // Consume the trailing separator the writer always emits.
    if (pos_ >= in_.size() || in_[pos_] != ' ') {
      fail_u64();
      return {};
    }
    ++pos_;
    return s;
  }
  SimTime time() { return SimTime(i64()); }
  Duration dur() { return Duration(i64()); }
  Vec2 vec2() {
    Vec2 v;
    v.x = f64();
    v.y = f64();
    return v;
  }
  Rect rect() {
    Rect r;
    r.min = vec2();
    r.max = vec2();
    return r;
  }
  Rng rng() {
    Rng::State st;
    for (std::uint64_t& word : st.s) word = u64();
    st.cached_normal = f64();
    st.has_cached_normal = boolean();
    return Rng::from_state(st);
  }

  /// A corrupt element count must never drive a giant allocation: callers
  /// gate `reserve(n)` on n <= remaining() (every element is >= 2 bytes on
  /// the wire, so a legitimate count can never exceed the bytes left).
  std::size_t remaining() const { return in_.size() - pos_; }
  bool at_end() const { return pos_ == in_.size(); }
  bool ok() const { return ok_; }

 private:
  bool next_token(std::string_view& tok) {
    if (!ok_) return false;
    const std::size_t sep = in_.find(' ', pos_);
    if (sep == std::string_view::npos || sep == pos_) {
      ok_ = false;
      return false;
    }
    tok = in_.substr(pos_, sep - pos_);
    pos_ = sep + 1;
    return true;
  }
  std::uint64_t fail_u64() {
    ok_ = false;
    return 0;
  }

  std::string_view in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace iobt::sim
