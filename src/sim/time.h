#pragma once
// Virtual time for the iobt discrete-event simulator.
//
// Time is kept as an integer count of nanoseconds so that event ordering is
// exact and runs are bit-reproducible across platforms (no floating-point
// accumulation drift). Helpers convert to/from seconds for human-facing
// configuration and reporting.

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace iobt::sim {

/// A point in virtual time, in integer nanoseconds since simulation start.
///
/// SimTime is a strong type: it cannot be silently mixed with raw integers
/// or wall-clock times. Arithmetic with Duration is provided.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t nanos) : nanos_(nanos) {}

  /// Construct from (possibly fractional) seconds. Rounds toward zero.
  static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr SimTime millis(std::int64_t ms) { return SimTime(ms * 1'000'000); }
  static constexpr SimTime micros(std::int64_t us) { return SimTime(us * 1'000); }
  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t nanos() const { return nanos_; }
  constexpr double to_seconds() const { return static_cast<double>(nanos_) * 1e-9; }

  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  std::int64_t nanos_ = 0;
};

/// A span of virtual time, in integer nanoseconds. May be negative in
/// intermediate arithmetic but should be non-negative when scheduling.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t nanos) : nanos_(nanos) {}

  static constexpr Duration seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1'000'000); }
  static constexpr Duration micros(std::int64_t us) { return Duration(us * 1'000); }
  static constexpr Duration zero() { return Duration(0); }

  constexpr std::int64_t nanos() const { return nanos_; }
  constexpr double to_seconds() const { return static_cast<double>(nanos_) * 1e-9; }

  constexpr auto operator<=>(const Duration&) const = default;

 private:
  std::int64_t nanos_ = 0;
};

constexpr SimTime operator+(SimTime t, Duration d) { return SimTime(t.nanos() + d.nanos()); }
constexpr SimTime operator-(SimTime t, Duration d) { return SimTime(t.nanos() - d.nanos()); }
constexpr Duration operator-(SimTime a, SimTime b) { return Duration(a.nanos() - b.nanos()); }
constexpr Duration operator+(Duration a, Duration b) { return Duration(a.nanos() + b.nanos()); }
constexpr Duration operator-(Duration a, Duration b) { return Duration(a.nanos() - b.nanos()); }
constexpr Duration operator*(Duration d, double k) {
  return Duration(static_cast<std::int64_t>(static_cast<double>(d.nanos()) * k));
}
constexpr Duration operator*(double k, Duration d) { return d * k; }

/// Formats as fractional seconds, e.g. "12.034s", for traces and logs.
std::string to_string(SimTime t);
std::string to_string(Duration d);

}  // namespace iobt::sim
