#include "sim/checkpoint.h"

#include <algorithm>
#include <stdexcept>

#include "sim/wire.h"

namespace iobt::sim {

std::string CheckpointRegistry::register_participant(Checkpointable* p) {
  std::string key{p->checkpoint_key()};
  // Deterministic de-duplication: the n-th participant claiming a key gets
  // "#<n>". Branch stacks built by the same scenario code register in the
  // same order, so suffixes line up between save and restore stacks.
  const auto taken = [this](const std::string& k) {
    return std::any_of(participants_.begin(), participants_.end(),
                       [&](const Entry& e) { return e.key == k; });
  };
  if (taken(key)) {
    for (int n = 2;; ++n) {
      std::string candidate = key + "#" + std::to_string(n);
      if (!taken(candidate)) {
        key = std::move(candidate);
        break;
      }
    }
  }
  participants_.push_back(Entry{key, p});
  return key;
}

void CheckpointRegistry::unregister(const Checkpointable* p) {
  std::erase_if(participants_,
                [p](const Entry& e) { return e.participant == p; });
}

Snapshot CheckpointRegistry::save(std::uint64_t prefix_hash) const {
  Snapshot snap;
  snap.at_ = sim_.now();
  snap.prefix_hash_ = prefix_hash;
  for (const Entry& e : participants_) e.participant->save(snap, e.key);
  return snap;
}

void CheckpointRegistry::restore(const Snapshot& snap) {
  // The restore stack must mirror the save stack: same participants, same
  // registration order. Verify the key sets up front for a usable error
  // instead of a mid-restore type mismatch.
  if (snap.blobs_.size() != participants_.size()) {
    throw std::logic_error(
        "CheckpointRegistry::restore: snapshot has " +
        std::to_string(snap.blobs_.size()) + " participant states but " +
        std::to_string(participants_.size()) +
        " participants are registered — the restore stack must be built by "
        "the same scenario code as the saved one");
  }
  for (const Entry& e : participants_) {
    if (!snap.has(e.key)) {
      throw std::logic_error(
          "CheckpointRegistry::restore: snapshot is missing state for "
          "participant '" + e.key + "'");
    }
  }

  // Clock first: participants may consult now() while restoring, and the
  // re-arm below schedules at absolute snapshot-era timestamps.
  sim_.now_ = snap.at_;

  RestoreArmer armer;
  for (const Entry& e : participants_) {
    e.participant->restore(snap, e.key, armer);
  }

  // Every event pending in THIS stack must have been cancelled by its
  // participant. A survivor belongs to a non-participating event source,
  // which the registry cannot re-arm deterministically — refuse rather
  // than silently diverge the branch.
  if (sim_.pending_count() != 0) {
    throw std::logic_error(
        "CheckpointRegistry::restore: " +
        std::to_string(sim_.pending_count()) +
        " pending event(s) survived participant restore — every event "
        "source must be a checkpoint participant");
  }

  // Re-arm in ascending original-seq order. Pending-at-t events all have
  // seqs below anything scheduled after t, so replaying their relative
  // order — before any post-restore scheduling — reproduces every FIFO
  // tie-break of the uninterrupted run.
  std::stable_sort(armer.pending_.begin(), armer.pending_.end(),
                   [](const RestoreArmer::Pending& a,
                      const RestoreArmer::Pending& b) { return a.seq < b.seq; });
  for (std::size_t i = 0; i < armer.pending_.size(); ++i) {
    RestoreArmer::Pending& p = armer.pending_[i];
    if (p.seq == 0 || (i > 0 && armer.pending_[i - 1].seq == p.seq)) {
      throw std::logic_error(
          "CheckpointRegistry::restore: re-arm requests must carry the "
          "event's unique original seq (got " + std::to_string(p.seq) + ")");
    }
    const EventId id = sim_.schedule_at(p.when, std::move(p.fn), p.tag);
    if (p.armed_out) *p.armed_out = id;
  }
}

bool CheckpointRegistry::serialize_snapshot(const Snapshot& snap,
                                            std::string& out) const {
  WireWriter w;
  w.u64(snap.prefix_hash_).i64(snap.at_.nanos()).u64(participants_.size());
  for (const Entry& e : participants_) {
    const auto* s = dynamic_cast<const SerializableCheckpointable*>(e.participant);
    if (s == nullptr) return false;
    WireWriter blob;
    if (!s->encode_state(snap, e.key, blob)) return false;
    w.bytes(e.key);
    w.bytes(blob.out());
  }
  out = w.take();
  return true;
}

std::optional<Snapshot> CheckpointRegistry::deserialize_snapshot(
    std::string_view bytes) const {
  WireReader r(bytes);
  Snapshot snap;
  snap.prefix_hash_ = r.u64();
  snap.at_ = SimTime(r.i64());
  const std::uint64_t count = r.u64();
  if (!r.ok() || count != participants_.size()) return std::nullopt;
  for (const Entry& e : participants_) {
    const auto* s = dynamic_cast<const SerializableCheckpointable*>(e.participant);
    if (s == nullptr) return std::nullopt;
    const std::string key = r.bytes();
    const std::string blob = r.bytes();
    // The image must have been written over a roster built by the same
    // scenario code: key order is the participant dispatch.
    if (!r.ok() || key != e.key) return std::nullopt;
    WireReader br(blob);
    // A decoder must consume its blob exactly — leftover bytes mean the
    // image was written by a different state layout (version skew).
    if (!s->decode_state(snap, e.key, br) || !br.ok() || !br.at_end()) {
      return std::nullopt;
    }
  }
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return snap;
}

}  // namespace iobt::sim
