#include "sim/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace iobt::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed all 256 bits of state through SplitMix64, as recommended by the
  // xoshiro authors; guarantees the all-zero state is unreachable.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::child(std::uint64_t stream_id) const {
  // Mix the child's stream id into a digest of the parent state. The
  // parent is copied, not advanced, so sibling order does not matter.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^ s_[3];
  sm ^= 0x9e3779b97f4a7c15ULL + stream_id;
  (void)splitmix64(sm);  // one extra round of diffusion
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire-style rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto l = static_cast<std::uint64_t>(m);
  if (l < span) {
    const std::uint64_t t = (0 - span) % span;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * span;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction, clamped at zero.
  const double v = normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  assert(n >= 1);
  // Rejection-inversion (Hörmann) works for s != 1 and s == 1 alike via
  // the generalized harmonic integral; for small n the simpler inverse-CDF
  // over the exact normalization is fine and exact.
  if (n <= 1024) {
    double norm = 0.0;
    for (std::int64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(static_cast<double>(k), s);
    double u = uniform() * norm;
    for (std::int64_t k = 1; k <= n; ++k) {
      u -= 1.0 / std::pow(static_cast<double>(k), s);
      if (u <= 0.0) return k;
    }
    return n;
  }
  // For large n use rejection sampling against the continuous envelope.
  const double nn = static_cast<double>(n);
  while (true) {
    const double u = uniform();
    const double v = uniform();
    double x;
    if (std::abs(s - 1.0) < 1e-12) {
      x = std::exp(u * std::log(nn + 1.0));
    } else {
      const double t = std::pow(nn + 1.0, 1.0 - s);
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    const std::int64_t k = static_cast<std::int64_t>(x);
    if (k < 1 || k > n) continue;
    const double ratio = std::pow(static_cast<double>(k) / x, s);
    if (v * x / static_cast<double>(k) <= ratio) return k;
  }
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("categorical: no positive weight");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm: k distinct values, O(k) expected work.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(j)));
    bool seen = false;
    for (std::size_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  return chosen;
}

}  // namespace iobt::sim
