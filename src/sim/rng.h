#pragma once
// Deterministic pseudo-random number generation for the simulator.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64,
// rather than using std::mt19937, for two reasons:
//   1. std distributions are not guaranteed to produce identical streams
//      across standard-library implementations; our own distributions are.
//   2. Substreams: every simulated entity can derive an independent child
//      RNG from a (seed, stream-id) pair, so adding an entity never
//      perturbs the random stream of existing entities. This keeps
//      experiments comparable across configuration sweeps.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace iobt::sim {

/// SplitMix64: used for seeding and for hashing stream ids.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stable 64-bit hash of a string (FNV-1a), for deriving stream ids from
/// entity names.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** with explicit-seed determinism and cheap substreams.
class Rng {
 public:
  /// Seeds the generator. Identical seeds produce identical streams on all
  /// platforms.
  explicit Rng(std::uint64_t seed = 0x1234abcdULL);

  /// Derives an independent child generator. Children with distinct ids
  /// have statistically independent streams; the parent is not advanced.
  Rng child(std::uint64_t stream_id) const;
  Rng child(std::string_view name) const { return child(fnv1a(name)); }

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }
  /// Exponential with given rate (lambda). Mean = 1/rate.
  double exponential(double rate);
  /// Poisson-distributed count with given mean (Knuth for small, normal
  /// approximation for large mean).
  std::int64_t poisson(double mean);
  /// Zipf-distributed rank in [1, n] with exponent s (rejection sampling).
  std::int64_t zipf(std::int64_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) uniformly (reservoir style).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// The complete generator state as plain words — the xoshiro lanes plus
  /// the Box-Muller cache. Checkpoint persistence (sim/wire.h) round-trips
  /// it bit-exactly; from_state(state()) continues the stream as if the
  /// generator had never been serialized.
  struct State {
    std::array<std::uint64_t, 4> s{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State state() const { return State{s_, cached_normal_, has_cached_normal_}; }
  static Rng from_state(const State& st) {
    Rng r;
    r.s_ = st.s;
    r.cached_normal_ = st.cached_normal;
    r.has_cached_normal_ = st.has_cached_normal;
    return r;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace iobt::sim
