#pragma once
// Scenario-matrix generation: deterministic cross-products of experiment
// axes.
//
// A matrix is built from named axes, each holding a list of named variants
// ({layer configs} x {mobility models} x {attack campaigns}, ...). Every
// cell of the cross-product maps to a deterministic (choices, seed) pair:
// the seed mixes the matrix base seed with the cell index through
// SplitMix64, so cell N always gets the same seed regardless of which
// slice of the matrix runs, and two cells never share one. Cells are plain
// data — callers translate a cell's choice indices into a concrete
// scenario stack and run it, typically on a ParallelRunner (benches) or a
// bounded shuffled slice (CI fuzzing).

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace iobt::sim {

/// One axis of the matrix: a dimension name plus its variants.
struct ScenarioAxis {
  std::string name;
  std::vector<std::string> variants;
};

/// One cell of the cross-product. `choice[i]` indexes into axis i's
/// variants; `seed` is unique per cell and stable under re-enumeration.
struct ScenarioCell {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  std::vector<std::size_t> choice;
  /// "mobility=patrol/attack=jam_heavy/..." — the one-line repro label.
  std::string name;
};

class ScenarioMatrix {
 public:
  explicit ScenarioMatrix(std::uint64_t base_seed) : base_seed_(base_seed) {}

  /// Appends an axis. Returns its index. Axes must be added before cells
  /// are enumerated; an axis must have at least one variant.
  std::size_t add_axis(std::string name, std::vector<std::string> variants);

  const std::vector<ScenarioAxis>& axes() const { return axes_; }
  /// Product of all axis sizes (1 for an empty matrix).
  std::size_t cell_count() const;

  /// Decodes cell `index` (mixed-radix over the axes, axis 0 slowest).
  ScenarioCell cell(std::size_t index) const;

  /// Every cell, in index order.
  std::vector<ScenarioCell> all_cells() const;

  /// A bounded pseudo-random sample of min(count, cell_count()) DISTINCT
  /// cells — the CI fuzz slice. The selection depends only on (base seed,
  /// salt, count, matrix shape), so a failing slice reproduces exactly;
  /// vary `salt` (e.g. by date or commit) to walk different slices across
  /// runs.
  std::vector<ScenarioCell> slice(std::size_t count, std::uint64_t salt) const;

 private:
  std::uint64_t base_seed_;
  std::vector<ScenarioAxis> axes_;
};

}  // namespace iobt::sim
