#pragma once
// Deterministic checkpoint / branch / restore for the sim kernel.
//
// Closures are never serialized — state is. A Snapshot holds each
// participant's POD model state (typed, immutable blobs) plus the sim
// clock; the participants themselves (World, Network, AttackInjector,
// scenario harnesses) re-create their closures on restore by re-arming
// events. This is the shape optimistic PDES kernels use for state saving
// (ROOT-Sim's LP checkpoints): the saved image is data only, and the code
// that interprets it is re-bound by the live process.
//
// The correctness bar is digest identity: restore-at-t-then-run-to-T must
// be bit-identical to the uninterrupted run. The kernel breaks timestamp
// ties FIFO by a global scheduling sequence number, and every event that
// is pending at snapshot time was scheduled no later than t — so its seq
// is lower than the seq of anything scheduled after t. RestoreArmer
// therefore collects every participant's re-arm request together with the
// event's ORIGINAL seq (Simulator::pending_seq at save time) and schedules
// them in ascending original-seq order, before any post-restore event can
// be scheduled. Relative FIFO order among re-armed events, and between
// re-armed and future events, then replicates the uninterrupted run
// exactly.
//
// Restore targets either a FRESH stack built by the same scenario code
// (branching: one snapshot, K simulators) or the SAME stack rewound in
// place (cheap sequential what-ifs). Either way the registry demands that
// every pending event belongs to a participant: after all participants
// have cancelled their armed events, a non-empty pending queue aborts the
// restore, because an event the registry cannot re-arm would silently
// diverge the branch.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <typeinfo>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace iobt::sim {

class CheckpointRegistry;
class WireReader;  // sim/wire.h
class WireWriter;

/// Immutable image of one simulation instant: the sim clock plus one typed
/// state blob per participant, keyed by the participant's registry key.
/// Snapshots own no pointers into the source stack — restoring into a
/// different Simulator (branching) is the intended use — and are safe to
/// share read-only across threads (ParallelRunner fan-out).
class Snapshot {
 public:
  /// The sim clock at save time; restore() rewinds/advances to it.
  SimTime at() const { return at_; }

  /// Canonical scenario-prefix hash this snapshot was saved under (see
  /// sim/hash.h), or 0 if the caller did not key it. A checkpoint cache
  /// (src/serve/) stamps the key at save time and verifies it before
  /// restoring, so a cache bug can never silently branch the wrong world.
  std::uint64_t prefix_hash() const { return prefix_hash_; }

  /// Stores `state` under `key`. Participants call this from save().
  template <typename T>
  void put(std::string key, T state) {
    blobs_[std::move(key)] =
        Blob{std::make_shared<const T>(std::move(state)), &typeid(T)};
  }

  /// The blob stored under `key`, or throws std::logic_error if the key is
  /// absent or was saved as a different type (a participant-ordering or
  /// stack-mismatch bug, never a recoverable condition).
  template <typename T>
  const T& get(std::string_view key) const {
    auto it = blobs_.find(key);
    if (it == blobs_.end()) {
      throw std::logic_error("Snapshot::get: no state saved under key '" +
                             std::string(key) + "'");
    }
    if (*it->second.type != typeid(T)) {
      throw std::logic_error("Snapshot::get: state under key '" +
                             std::string(key) + "' has a different type");
    }
    return *static_cast<const T*>(it->second.data.get());
  }

  bool has(std::string_view key) const { return blobs_.find(key) != blobs_.end(); }
  std::size_t size() const { return blobs_.size(); }

 private:
  friend class CheckpointRegistry;

  struct Blob {
    std::shared_ptr<const void> data;
    const std::type_info* type = nullptr;
  };

  SimTime at_;
  std::uint64_t prefix_hash_ = 0;
  std::map<std::string, Blob, std::less<>> blobs_;
};

/// Collects re-arm requests during restore. Participants hand over the
/// event's timestamp, its ORIGINAL scheduling seq (captured via
/// Simulator::pending_seq at save time), and a fresh closure; the registry
/// sorts all requests by original seq and schedules them in that order, so
/// FIFO tie-breaks at equal timestamps replicate the uninterrupted run.
class RestoreArmer {
 public:
  /// Queues one re-arm. `original_seq` must be the nonzero seq the event
  /// had in the saved run (duplicates and zeros are participant bugs and
  /// abort the restore). If `armed_out` is non-null it receives the new
  /// EventId once the registry schedules the event; the pointer must stay
  /// valid until CheckpointRegistry::restore returns.
  void rearm(SimTime when, std::uint64_t original_seq, EventFn fn,
             TagId tag = kUntagged, EventId* armed_out = nullptr) {
    pending_.push_back(Pending{when, original_seq, std::move(fn), tag, armed_out});
  }

  std::size_t size() const { return pending_.size(); }

 private:
  friend class CheckpointRegistry;

  struct Pending {
    SimTime when;
    std::uint64_t seq = 0;
    EventFn fn;
    TagId tag = kUntagged;
    EventId* armed_out = nullptr;
  };

  std::vector<Pending> pending_;
};

/// Interface a subsystem implements to participate in checkpointing.
/// save() must copy POD model state only (deep-copying owned polymorphic
/// state, e.g. mobility models — never closures); restore() must cancel
/// the participant's armed events, overwrite its state from the snapshot,
/// and queue re-arms for every event that was pending at save time.
/// Participants must be destroyed before their Simulator (the stack order
/// `Simulator sim; Network net; World world; ...` guarantees this).
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Stable identity of this participant's state inside a Snapshot.
  /// Duplicates among participants of one Simulator get a "#<n>" suffix at
  /// registration; the registry passes the final key into save()/restore().
  virtual std::string_view checkpoint_key() const = 0;

  virtual void save(Snapshot& snap, const std::string& key) const = 0;
  virtual void restore(const Snapshot& snap, const std::string& key,
                       RestoreArmer& armer) = 0;
};

/// Checkpointable whose snapshot blob can additionally cross a process
/// boundary: encode_state writes the blob saved under `key` to the
/// byte-exact wire format (sim/wire.h — integers as decimal tokens,
/// doubles as raw bit patterns, strings length-prefixed), and decode_state
/// rebuilds an equivalent blob into a fresh Snapshot. The contract is the
/// digest bar of the checkpoint layer extended over the wire: restoring a
/// decoded snapshot must behave bit-identically to restoring the original.
///
/// encode_state may return false when the live state is not representable
/// (e.g. an in-flight frame carrying a non-empty std::any payload);
/// decode_state returns false on any malformed or truncated input — both
/// make the caller fall back to re-simulation rather than diverge.
class SerializableCheckpointable : public Checkpointable {
 public:
  virtual bool encode_state(const Snapshot& snap, const std::string& key,
                            WireWriter& w) const = 0;
  virtual bool decode_state(Snapshot& snap, const std::string& key,
                            WireReader& r) const = 0;
};

/// Per-Simulator roster of checkpoint participants (Simulator::checkpoint()).
/// save() walks participants in registration order; restore() rewinds the
/// clock, restores participants in the same order (so dependencies like
/// Network-before-World hold by construction order), verifies that no
/// unowned pending events survive, and re-arms everything in ascending
/// original-seq order. A restored stack must have been built by the same
/// scenario code as the saved one — key-set or schedule mismatches throw.
class CheckpointRegistry {
 public:
  explicit CheckpointRegistry(Simulator& sim) : sim_(sim) {}
  CheckpointRegistry(const CheckpointRegistry&) = delete;
  CheckpointRegistry& operator=(const CheckpointRegistry&) = delete;

  /// Adds `p` to the roster and returns the key its state will live under
  /// (checkpoint_key(), suffixed "#<n>" if already taken — deterministic
  /// by registration order, so branch stacks built by the same code get
  /// the same suffixes).
  std::string register_participant(Checkpointable* p);

  /// Removes `p`; harmless if absent. Participants call this from their
  /// destructors.
  void unregister(const Checkpointable* p);

  std::size_t participant_count() const { return participants_.size(); }

  /// Saves every participant's state. `prefix_hash` is an optional caller
  /// key (canonical scenario-prefix hash, sim/hash.h) stamped onto the
  /// snapshot for cache-integrity checks; 0 leaves it unkeyed.
  Snapshot save(std::uint64_t prefix_hash = 0) const;
  void restore(const Snapshot& snap);

  /// Byte-exact image of `snap` over this registry's roster: clock, prefix
  /// stamp, and one length-prefixed wire blob per participant in
  /// registration order. Returns false (leaving `out` unspecified) when any
  /// participant does not implement SerializableCheckpointable or reports
  /// its state unrepresentable — the caller keeps the snapshot memory-only.
  bool serialize_snapshot(const Snapshot& snap, std::string& out) const;

  /// Rebuilds a Snapshot from a serialize_snapshot image, dispatching each
  /// blob to the matching participant of THIS roster (a scratch stack built
  /// by the same scenario code as the writer). Any mismatch — roster size,
  /// key order, malformed or trailing bytes — returns nullopt; corrupt
  /// input must reject cleanly, never throw or half-decode.
  std::optional<Snapshot> deserialize_snapshot(std::string_view bytes) const;

 private:
  struct Entry {
    std::string key;
    Checkpointable* participant = nullptr;
  };

  Simulator& sim_;
  std::vector<Entry> participants_;
};

}  // namespace iobt::sim
