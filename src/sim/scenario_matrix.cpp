#include "sim/scenario_matrix.h"

#include <numeric>
#include <stdexcept>

namespace iobt::sim {

std::size_t ScenarioMatrix::add_axis(std::string name,
                                     std::vector<std::string> variants) {
  if (variants.empty()) {
    throw std::invalid_argument("ScenarioMatrix axis '" + name +
                                "' has no variants");
  }
  axes_.push_back({std::move(name), std::move(variants)});
  return axes_.size() - 1;
}

std::size_t ScenarioMatrix::cell_count() const {
  std::size_t n = 1;
  for (const ScenarioAxis& a : axes_) n *= a.variants.size();
  return n;
}

ScenarioCell ScenarioMatrix::cell(std::size_t index) const {
  if (index >= cell_count()) {
    throw std::out_of_range("ScenarioMatrix::cell: index " +
                            std::to_string(index) + " >= " +
                            std::to_string(cell_count()));
  }
  ScenarioCell c;
  c.index = index;
  // Mixed-radix decode, axis 0 as the slowest-varying digit (so adding a
  // trailing axis refines existing cells instead of reshuffling them).
  c.choice.resize(axes_.size());
  std::size_t rem = index;
  for (std::size_t i = axes_.size(); i > 0; --i) {
    const std::size_t radix = axes_[i - 1].variants.size();
    c.choice[i - 1] = rem % radix;
    rem /= radix;
  }
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (!c.name.empty()) c.name += '/';
    c.name += axes_[i].name + '=' + axes_[i].variants[c.choice[i]];
  }
  // Per-cell seed: SplitMix64 over (base ^ index-mix). splitmix64 is a
  // bijection of its state, so distinct cells get distinct seeds.
  std::uint64_t state = base_seed_ ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  c.seed = splitmix64(state);
  return c;
}

std::vector<ScenarioCell> ScenarioMatrix::all_cells() const {
  std::vector<ScenarioCell> out;
  const std::size_t n = cell_count();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(cell(i));
  return out;
}

std::vector<ScenarioCell> ScenarioMatrix::slice(std::size_t count,
                                                std::uint64_t salt) const {
  const std::size_t n = cell_count();
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  Rng rng(base_seed_);
  rng = rng.child(salt);
  rng.shuffle(indices);
  if (count < n) indices.resize(count);
  std::vector<ScenarioCell> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.push_back(cell(i));
  return out;
}

}  // namespace iobt::sim
