#include "sim/simulator.h"

#include "sim/checkpoint.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace iobt::sim {

std::string to_string(SimTime t) {
  std::ostringstream os;
  os << t.to_seconds() << "s";
  return os.str();
}

std::string to_string(Duration d) {
  std::ostringstream os;
  os << d.to_seconds() << "s";
  return os.str();
}

Simulator::Simulator() { tracer_->bind_sim_clock(&now_); }

Simulator::~Simulator() { tracer_->bind_sim_clock(nullptr); }

CheckpointRegistry& Simulator::checkpoint() {
  if (!checkpoint_) checkpoint_ = std::make_unique<CheckpointRegistry>(*this);
  return *checkpoint_;
}

std::uint64_t Simulator::pending_seq(EventId id) const {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return 0;
  const Slot& s = slots_[slot];
  if (!s.live || s.generation != gen) return 0;
  return s.seq;
}

std::uint32_t Simulator::acquire_slot(EventFn fn, TagId tag) {
  std::uint32_t index;
  if (free_head_ != kNoSlot) {
    index = free_head_;
    Slot& s = slots_[index];
    free_head_ = s.next_free;
    s.next_free = kNoSlot;
    s.fn = std::move(fn);
    s.tag = tag;
    s.live = true;
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    Slot s;
    s.fn = std::move(fn);
    s.tag = tag;
    s.live = true;
    slots_.push_back(std::move(s));
  }
  return index;
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& s = slots_[index];
  s.fn = nullptr;
  s.live = false;
  ++s.generation;  // invalidates outstanding EventIds and heap entries
  s.next_free = free_head_;
  free_head_ = index;
}

void Simulator::attach_tracer(trace::Tracer* t) {
  own_tracer_.bind_sim_clock(nullptr);
  if (tracer_ != &own_tracer_ && tracer_) tracer_->bind_sim_clock(nullptr);
  tracer_ = t ? t : &own_tracer_;
  tracer_->bind_sim_clock(&now_);
  // NameIds are per-tracer; force re-interning against the new one.
  dispatch_names_.clear();
}

trace::NameId Simulator::dispatch_name(TagId tag) {
  if (tag >= dispatch_names_.size()) {
    dispatch_names_.resize(std::max<std::size_t>(tags_.size(), tag + 1), 0);
  }
  if (dispatch_names_[tag] == 0) {
    dispatch_names_[tag] = tracer_->intern(
        tag == kUntagged ? std::string_view("(untagged)")
                         : std::string_view(tags_.name(tag)),
        "sim");
  }
  return dispatch_names_[tag];
}

Simulator::TagStats& Simulator::stats_for(TagId tag) {
  if (tag >= stats_.size()) {
    stats_.resize(std::max<std::size_t>(tags_.size(), tag + 1));
  }
  return stats_[tag];
}

EventId Simulator::schedule_at(SimTime when, EventFn fn, TagId tag) {
  if (when < now_) {
    throw std::logic_error("Simulator::schedule_at: scheduling into the past (" +
                           to_string(when) + " < now " + to_string(now_) + ")");
  }
  const std::uint32_t slot = acquire_slot(std::move(fn), tag);
  const std::uint32_t gen = slots_[slot].generation;
  const std::uint64_t seq = next_seq_++;
  slots_[slot].seq = seq;
  heap_.push_back(HeapEntry{when, seq, slot, gen});
  std::push_heap(heap_.begin(), heap_.end(), Earliest{});
  ++live_count_;
  ++stats_for(tag).scheduled;
  return (static_cast<EventId>(gen) << 32) | slot;
}

EventId Simulator::schedule_in(Duration delay, EventFn fn, TagId tag) {
  if (delay < Duration::zero()) {
    throw std::logic_error("Simulator::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn), tag);
}

void Simulator::schedule_every(Duration period, std::function<bool()> fn,
                               TagId tag) {
  if (period <= Duration::zero()) {
    throw std::logic_error("Simulator::schedule_every: period must be positive");
  }
  // One shared state per loop. Ownership: only the armed event's closure
  // holds the state strongly; `state->tick` itself captures a weak_ptr, so
  // there is no shared_ptr cycle and a loop still armed when the Simulator
  // is destroyed is freed along with the slot slab.
  struct PeriodicState {
    std::function<bool()> body;
    Duration period;
    TagId tag;
    EventFn tick;
  };
  auto state = std::make_shared<PeriodicState>();
  state->body = std::move(fn);
  state->period = period;
  state->tag = tag;
  state->tick = [this, weak = std::weak_ptr<PeriodicState>(state)]() {
    auto st = weak.lock();
    if (!st || !st->body()) return;  // loop stopped (or state torn down)
    schedule_at(now_ + st->period, [st]() { st->tick(); }, st->tag);
  };
  schedule_in(period, [state]() { state->tick(); }, tag);
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.live || s.generation != gen) return;  // already fired or cancelled
  ++stats_for(s.tag).cancelled;
  release_slot(slot);
  --live_count_;
  ++stale_count_;
  maybe_compact();
}

void Simulator::prune_stale_top() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Earliest{});
    heap_.pop_back();
    --stale_count_;
  }
}

void Simulator::maybe_compact() {
  // Cancelled entries stay in the heap until they surface; if a churn-heavy
  // workload lets them dominate, filter them out in one O(n) pass.
  if (stale_count_ < 64 || stale_count_ < 2 * live_count_) return;
  std::erase_if(heap_, [this](const HeapEntry& e) { return !entry_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), Earliest{});
  stale_count_ = 0;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Earliest{});
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    if (!entry_live(e)) {  // cancelled after scheduling
      --stale_count_;
      continue;
    }
    assert(e.when >= now_ && "event queue must be monotone");
    now_ = e.when;
    // Move the callback out and free the slot before invoking: the handler
    // may cancel its own (now stale) id or schedule events that reuse the
    // slot, both of which must be safe.
    Slot& s = slots_[e.slot];
    EventFn fn = std::move(s.fn);
    const TagId tag = s.tag;
    release_slot(e.slot);
    --live_count_;
    ++executed_count_;
    ++stats_for(tag).executed;
    if (tracer_->enabled()) {
      // Span per handler, named by the tag; the tracer becomes the
      // thread's ambient tracer so spans the handler opens (synthesis
      // phases, reflex actions) nest inside this one.
      trace::ScopedUse use(tracer_);
      trace::Span span(*tracer_, dispatch_name(tag));
      invoke_handler(fn, tag);
    } else {
      invoke_handler(fn, tag);
    }
    return true;
  }
  return false;
}

void Simulator::invoke_handler(EventFn& fn, TagId tag) {
  if (timing_) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    // stats_for must be re-resolved here: if fn() scheduled an event with
    // a previously-unseen tag, stats_ was resized and any reference taken
    // before the call is dangling.
    stats_for(tag).busy_ns += std::chrono::duration<double, std::nano>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
  } else {
    fn();
  }
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  for (;;) {
    prune_stale_top();  // ensure front() is a live event before peeking
    if (heap_.empty() || heap_.front().when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_for(Duration span) { run_until(now_ + span); }

std::vector<TagProfileRow> Simulator::profile() const {
  std::vector<TagProfileRow> rows;
  for (TagId id = 0; id < stats_.size(); ++id) {
    const TagStats& st = stats_[id];
    if (st.scheduled == 0 && st.executed == 0 && st.cancelled == 0) continue;
    const std::string label = id == kUntagged      ? "(untagged)"
                              : id < tags_.size() ? tags_.name(id)
                                                  : "(unknown)";
    rows.push_back(TagProfileRow{label,
                                 st.scheduled, st.executed, st.cancelled,
                                 st.busy_ns * 1e-6});
  }
  std::sort(rows.begin(), rows.end(),
            [](const TagProfileRow& a, const TagProfileRow& b) {
              if (a.busy_ms != b.busy_ms) return a.busy_ms > b.busy_ms;
              if (a.executed != b.executed) return a.executed > b.executed;
              return a.tag < b.tag;
            });
  return rows;
}

std::string Simulator::profile_table() const {
  std::ostringstream os;
  os << "tag                        scheduled   executed  cancelled    busy_ms\n";
  for (const auto& r : profile()) {
    os << r.tag;
    for (std::size_t i = r.tag.size(); i < 25; ++i) os << ' ';
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %10llu %10llu %10llu %10.3f\n",
                  static_cast<unsigned long long>(r.scheduled),
                  static_cast<unsigned long long>(r.executed),
                  static_cast<unsigned long long>(r.cancelled), r.busy_ms);
    os << buf;
  }
  return os.str();
}

}  // namespace iobt::sim
