#include "sim/simulator.h"

#include <cassert>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace iobt::sim {

std::string to_string(SimTime t) {
  std::ostringstream os;
  os << t.to_seconds() << "s";
  return os.str();
}

std::string to_string(Duration d) {
  std::ostringstream os;
  os << d.to_seconds() << "s";
  return os.str();
}

EventId Simulator::schedule_at(SimTime when, EventFn fn, std::string_view tag) {
  if (when < now_) {
    throw std::logic_error("Simulator::schedule_at: scheduling into the past (" +
                           to_string(when) + " < now " + to_string(now_) + ")");
  }
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn), std::string(tag)});
  return id;
}

EventId Simulator::schedule_in(Duration delay, EventFn fn, std::string_view tag) {
  if (delay < Duration::zero()) {
    throw std::logic_error("Simulator::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn), tag);
}

void Simulator::schedule_every(Duration period, std::function<bool()> fn,
                               std::string_view tag) {
  if (period <= Duration::zero()) {
    throw std::logic_error("Simulator::schedule_every: period must be positive");
  }
  // Self-rescheduling closure; stops when fn returns false.
  auto tick = std::make_shared<std::function<void()>>();
  std::string tag_copy(tag);
  auto body = std::make_shared<std::function<bool()>>(std::move(fn));
  *tick = [this, period, body, tick, tag_copy]() {
    if (!(*body)()) return;
    auto self = tick;  // local copy: nested lambdas capture locals only
    schedule_in(period, [self]() { (*self)(); }, tag_copy);
  };
  schedule_in(period, [tick]() { (*tick)(); }, tag_copy);
}

void Simulator::cancel(EventId id) { cancelled_.insert(id); }

bool Simulator::step() {
  while (!queue_.empty()) {
    // Copy out the top, pop, then run: the handler may schedule or cancel.
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;  // skip cancelled events
    assert(ev.when >= now_ && "event queue must be monotone");
    now_ = ev.when;
    ++executed_count_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Peek: do not execute events beyond the deadline; leave them queued.
    if (queue_.top().when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_for(Duration span) { run_until(now_ + span); }

}  // namespace iobt::sim
