#pragma once
// Discrete-event simulation kernel.
//
// The simulator is single-threaded and fully deterministic: events at equal
// timestamps execute in scheduling order (FIFO by a monotonically increasing
// scheduling sequence number), so two runs with the same seed are
// bit-identical. Every iobt substrate (network, assets, attacks, missions)
// runs on this kernel.
//
// Hot-path layout: the priority heap holds 24-byte POD entries (timestamp,
// FIFO sequence, slot reference); callbacks and tags live in a slab of
// generation-stamped slots so heap sift operations never move a
// std::function or a string. cancel() is O(1): it releases the slot and
// bumps its generation, and the orphaned heap entry is discarded when it
// surfaces (or when the kernel compacts the heap). Event tags are interned
// once into small integer TagIds via the per-simulator TagTable; per-tag
// scheduling statistics (and, when enabled, per-tag wall-time) are always
// available for diagnostics.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "trace/trace.h"

namespace iobt::sim {

class CheckpointRegistry;

/// Packed handle for a pending event: (slot generation << 32) | slot index.
/// 0 is never a valid id, so it can be used as "none".
using EventId = std::uint64_t;
using EventFn = std::function<void()>;

/// Interned event-tag id. 0 is always the empty/untagged label.
using TagId = std::uint32_t;

inline constexpr EventId kNoEvent = 0;
inline constexpr TagId kUntagged = 0;

/// Interns free-form event labels into dense small ids so the kernel hot
/// path never copies or hashes strings. Intern once (at service
/// construction), schedule many.
class TagTable {
 public:
  TagTable() {
    intern_unique("");  // TagId 0 == untagged
  }

  /// Returns the id for `name`, creating it on first use.
  TagId intern(std::string_view name) {
    if (name.empty()) return kUntagged;
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    return intern_unique(name);
  }

  const std::string& name(TagId id) const { return names_[id]; }
  std::size_t size() const { return names_.size(); }

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  TagId intern_unique(std::string_view name) {
    const TagId id = static_cast<TagId>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId, StringHash, std::equal_to<>> index_;
};

/// One row of the kernel profiler: scheduling activity for a single tag.
struct TagProfileRow {
  std::string tag;
  std::uint64_t scheduled = 0;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  /// Wall-clock time spent inside handlers with this tag. Only accumulated
  /// while set_profiling(true); otherwise 0.
  double busy_ms = 0.0;
};

/// The simulation scheduler: a priority queue of timed callbacks plus the
/// virtual clock. Handlers may schedule further events and cancel pending
/// ones; cancellation is immediate (O(1)) and pending_count() reflects it.
class Simulator {
 public:
  // Both out of line: the inline bodies would instantiate the
  // unique_ptr<CheckpointRegistry> deleter on an incomplete type.
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. Advances only while events execute.
  SimTime now() const { return now_; }

  /// Interns `tag` in this simulator's TagTable. Services that schedule on
  /// a hot path should intern their labels once and pass the TagId.
  TagId intern(std::string_view tag) { return tags_.intern(tag); }
  const TagTable& tags() const { return tags_; }

  /// Schedules `fn` at absolute virtual time `when` (must be >= now()).
  /// `tag` labels the event for diagnostics/profiling. Returns an id usable
  /// with cancel().
  EventId schedule_at(SimTime when, EventFn fn, TagId tag);
  EventId schedule_at(SimTime when, EventFn fn, std::string_view tag = {}) {
    return schedule_at(when, std::move(fn), tags_.intern(tag));
  }

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId schedule_in(Duration delay, EventFn fn, TagId tag);
  EventId schedule_in(Duration delay, EventFn fn, std::string_view tag = {}) {
    return schedule_in(delay, std::move(fn), tags_.intern(tag));
  }

  /// Schedules `fn` every `period`, starting one period from now, until it
  /// returns false. Periodic events cannot be cancelled by id; return false
  /// from the callback to stop.
  void schedule_every(Duration period, std::function<bool()> fn, TagId tag);
  void schedule_every(Duration period, std::function<bool()> fn,
                      std::string_view tag = {}) {
    schedule_every(period, std::move(fn), tags_.intern(tag));
  }

  /// Cancels a pending event in O(1). Cancelling an already-executed,
  /// already-cancelled, or unknown id is a harmless no-op.
  void cancel(EventId id);

  /// The FIFO sequence number a pending event was scheduled with, or 0 if
  /// `id` is not live. Checkpoint participants capture this at save time so
  /// restore can re-arm events in their original tie-break order.
  std::uint64_t pending_seq(EventId id) const;

  /// The checkpoint-participant roster for this simulator (created on
  /// first use). Subsystems register themselves at construction; callers
  /// snapshot/restore through it (see sim/checkpoint.h).
  CheckpointRegistry& checkpoint();

  /// Executes the next pending event, advancing the clock. Returns false if
  /// no live events remain (simulation quiescent).
  bool step();

  /// Runs until the event queue drains.
  void run();

  /// Runs events with timestamp <= deadline, then sets the clock to exactly
  /// `deadline` (even if no event landed on it). Later events stay queued.
  void run_until(SimTime deadline);

  /// Equivalent to run_until(now() + span).
  void run_for(Duration span);

  /// Number of events executed so far (diagnostic).
  std::uint64_t executed_count() const { return executed_count_; }
  /// Number of live (not cancelled, not yet executed) pending events.
  std::size_t pending_count() const { return live_count_; }

  /// Enables per-tag wall-time accumulation (two clock reads per event, so
  /// off by default; counts are always collected).
  void set_profiling(bool on) { timing_ = on; }

  /// The structured tracer observing this simulator. Disabled by default;
  /// `tracer().enable()` starts recording a span per executed handler
  /// (named by its tag, category "sim") plus whatever the services record.
  /// While a handler runs, this tracer is also installed as the thread's
  /// ambient tracer (trace::current()), so nested IOBT_TRACE_SCOPE spans
  /// land in the same timeline.
  trace::Tracer& tracer() { return *tracer_; }
  const trace::Tracer& tracer() const { return *tracer_; }

  /// Redirects recording to an external tracer (e.g. one owned by a
  /// ReplicationContext so the timeline survives this Simulator). Passing
  /// nullptr restores the built-in tracer. The simulator binds its virtual
  /// clock to whichever tracer is attached.
  void attach_tracer(trace::Tracer* t);

  /// Per-tag scheduling statistics, busiest first (by busy time when timing
  /// was enabled, else by executed count). Untouched tags are omitted.
  std::vector<TagProfileRow> profile() const;

  /// Human-readable profile table for bench/diagnostic output.
  std::string profile_table() const;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Callback storage: referenced by heap entries, reused via a free list.
  /// `generation` stamps each reuse so stale heap entries (and stale
  /// EventIds) are detected in O(1).
  struct Slot {
    EventFn fn;
    std::uint64_t seq = 0;  // FIFO seq while live (pending_seq lookups)
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoSlot;
    TagId tag = kUntagged;
    bool live = false;
  };

  /// POD heap entry: what the priority queue actually sifts.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;   // FIFO tie-break at equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;   // slot generation at schedule time
  };
  struct Earliest {
    // std::push_heap builds a max-heap; invert so the earliest (when, seq)
    // is at the front.
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  struct TagStats {
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    double busy_ns = 0.0;
  };

  std::uint32_t acquire_slot(EventFn fn, TagId tag);
  void release_slot(std::uint32_t index);
  bool entry_live(const HeapEntry& e) const {
    const Slot& s = slots_[e.slot];
    return s.live && s.generation == e.gen;
  }
  /// Drops cancelled entries off the top of the heap so front() is live.
  void prune_stale_top();
  /// Rebuilds the heap without stale entries when they dominate it.
  void maybe_compact();
  TagStats& stats_for(TagId tag);
  /// Runs one dequeued handler, with optional per-tag wall-time profiling.
  void invoke_handler(EventFn& fn, TagId tag);
  /// Lazily interns `tag`'s label into the attached tracer (per-tracer ids,
  /// re-interned after attach_tracer).
  trace::NameId dispatch_name(TagId tag);

  SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_count_ = 0;
  std::size_t live_count_ = 0;
  std::size_t stale_count_ = 0;  // cancelled entries still in the heap
  bool timing_ = false;

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;

  TagTable tags_;
  std::vector<TagStats> stats_;  // indexed by TagId; grown lazily

  trace::Tracer own_tracer_;
  trace::Tracer* tracer_ = &own_tracer_;
  /// TagId -> NameId in the attached tracer (0 = not yet interned).
  std::vector<trace::NameId> dispatch_names_;

  /// Restore rewinds the clock directly (the only sanctioned way now_ can
  /// move backwards).
  friend class CheckpointRegistry;
  std::unique_ptr<CheckpointRegistry> checkpoint_;
};

}  // namespace iobt::sim
