#pragma once
// Discrete-event simulation kernel.
//
// The simulator is single-threaded and fully deterministic: events at equal
// timestamps execute in scheduling order (FIFO by a monotonically increasing
// event id), so two runs with the same seed are bit-identical. Every iobt
// substrate (network, assets, attacks, missions) runs on this kernel.

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace iobt::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

/// The simulation scheduler: a priority queue of timed callbacks plus the
/// virtual clock. Handlers may schedule further events and cancel pending
/// ones; cancellation is lazy (tombstoned).
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. Advances only while events execute.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `when` (must be >= now()).
  /// `tag` is a free-form label used in diagnostics. Returns an id usable
  /// with cancel().
  EventId schedule_at(SimTime when, EventFn fn, std::string_view tag = {});

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId schedule_in(Duration delay, EventFn fn, std::string_view tag = {});

  /// Schedules `fn` every `period`, starting one period from now, until it
  /// returns false. Periodic events cannot be cancelled by id; return false
  /// from the callback to stop.
  void schedule_every(Duration period, std::function<bool()> fn,
                      std::string_view tag = {});

  /// Marks a pending event as cancelled. Cancelling an already-executed or
  /// unknown id is a harmless no-op.
  void cancel(EventId id);

  /// Executes the next pending event, advancing the clock. Returns false if
  /// the queue is empty (simulation quiescent).
  bool step();

  /// Runs until the event queue drains.
  void run();

  /// Runs events with timestamp <= deadline, then sets the clock to exactly
  /// `deadline` (even if no event landed on it). Later events stay queued.
  void run_until(SimTime deadline);

  /// Equivalent to run_until(now() + span).
  void run_for(Duration span);

  /// Number of events executed so far (diagnostic).
  std::uint64_t executed_count() const { return executed_count_; }
  /// Number of events currently pending (including tombstoned ones).
  std::size_t pending_count() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    EventId id;
    EventFn fn;
    std::string tag;
  };
  struct Later {
    // Min-heap: earliest time first; ties broken by insertion order so that
    // equal-time events run FIFO (determinism).
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  SimTime now_;
  EventId next_id_ = 1;
  std::uint64_t executed_count_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace iobt::sim
