#pragma once
// Canonical stable hashing for scenario keys.
//
// The campaign service (src/serve/) keys its checkpoint cache by a
// canonical hash of "everything that determines the simulation prefix":
// scenario spec fields, seed, branch point. Two queries whose prefixes are
// semantically equal MUST collide (that is the cache hit), and the key must
// be stable across process runs and builds (a warm cache persisted or
// compared across restarts keys the same scenarios the same way). Neither
// property holds for std::hash — it is unspecified per platform and, for
// strings, may be seeded per process — so this hasher is built on the same
// explicit-constant primitives the deterministic RNG uses (FNV-1a /
// SplitMix64 finalization, sim/rng.h).
//
// Usage: stream typed fields in a FIXED, documented order; the order is
// part of the key's definition. Doubles hash by bit pattern with -0.0
// canonicalized to +0.0 and every NaN to one quiet NaN, so semantically
// equal specs built through different arithmetic hash equal. Strings are
// length-prefixed so field boundaries cannot alias ("ab","c" != "a","bc").

#include <cstdint>
#include <cstring>
#include <string_view>

#include "sim/rng.h"

namespace iobt::sim {

class StableHash {
 public:
  /// `domain` separates key families ("serve.prefix" vs "serve.query"):
  /// identical field streams under different domains never collide by
  /// construction.
  explicit StableHash(std::string_view domain) : h_(fnv1a(domain)) {}

  StableHash& mix_u64(std::uint64_t v) {
    // SplitMix64 finalization over (state ^ value): full avalanche per
    // field, so short field streams still spread over all 64 bits.
    std::uint64_t z = h_ ^ v;
    h_ = splitmix64(z);
    return *this;
  }
  StableHash& mix_i64(std::int64_t v) {
    return mix_u64(static_cast<std::uint64_t>(v));
  }
  StableHash& mix_size(std::size_t v) {
    return mix_u64(static_cast<std::uint64_t>(v));
  }
  StableHash& mix_bool(bool v) { return mix_u64(v ? 1 : 0); }

  /// Canonical double: bit pattern, with -0.0 folded into +0.0 and every
  /// NaN folded into one representative so payload bits cannot split keys.
  StableHash& mix_double(double v) {
    if (v == 0.0) v = 0.0;  // -0.0 == 0.0 compares true; store +0.0 bits
    std::uint64_t bits;
    if (v != v) {
      bits = 0x7ff8000000000000ULL;  // canonical quiet NaN
    } else {
      std::memcpy(&bits, &v, sizeof bits);
    }
    return mix_u64(bits);
  }

  /// Length-prefixed so adjacent strings cannot alias across boundaries.
  StableHash& mix_str(std::string_view s) {
    mix_size(s.size());
    return mix_u64(fnv1a(s));
  }

  template <typename E>
  StableHash& mix_enum(E e) {
    return mix_i64(static_cast<std::int64_t>(e));
  }

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_;
};

}  // namespace iobt::sim
