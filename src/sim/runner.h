#pragma once
// Parallel replication harness.
//
// The kernel is deliberately single-threaded-deterministic (DESIGN.md §S1),
// so the parallelism axis for experiments is ACROSS replications, not within
// one simulation: every seed sweep is embarrassingly parallel. ParallelRunner
// executes N independent replications on a fixed-size worker pool — each
// replication is a closure receiving a ReplicationContext (seed, index, a
// replication-local MetricsRegistry) and must construct its own Simulator /
// Rng from the seed, sharing nothing with its siblings.
//
// Determinism guarantee: results are aggregated in SEED ORDER (the order of
// the input seed vector), never in completion order, so the aggregated
// output — payloads, merged metrics, digests — is bit-identical regardless
// of worker count. 1 worker ≡ 8 workers ≡ the serial inline path
// (workers == 0). A replication that throws is captured as a failure record
// carrying its (seed, index) and a one-line serial repro command; the pool
// keeps draining the remaining replications.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace iobt::sim {

/// Mean / stddev / min / max over a batch of replication values — the shape
/// every bench table reports instead of a one-seed artifact. stddev is the
/// sample standard deviation (n-1 denominator).
struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  static SummaryStats of(const std::vector<double>& xs);
};

/// Per-replication view handed to the body closure. The body records
/// experiment metrics into `metrics` (snapshotted into the result) and may
/// capture a kernel profile from its private Simulator before returning.
struct ReplicationContext {
  std::uint64_t seed = 0;
  std::size_t index = 0;
  MetricsRegistry metrics;
  std::vector<TagProfileRow> profile;
  /// Replication-local tracer. It outlives the body's Simulator, so when a
  /// replication throws, the timeline leading up to the failure survives
  /// the unwind and ships with the failure record (trace_json).
  trace::Tracer tracer;

  Rng make_rng() const { return Rng(seed); }
  void capture_profile(const Simulator& sim) { profile = sim.profile(); }
  /// Points `sim` at this replication's tracer. Call right after
  /// constructing the body's Simulator; recording starts only if the
  /// runner's Options asked for traces (trace_capacity > 0).
  void attach_tracer(Simulator& sim) { sim.attach_tracer(&tracer); }
};

/// Everything one replication produced: the user payload plus the captured
/// metrics snapshot, kernel profile rows, and wall time. On failure `ok` is
/// false, `payload` is default-constructed, and `error` / `repro` describe
/// what happened and how to re-run that seed serially.
template <typename T>
struct ReplicationResult {
  std::uint64_t seed = 0;
  std::size_t index = 0;
  bool ok = false;
  double wall_ms = 0.0;
  T payload{};
  MetricsRegistry metrics;
  std::vector<TagProfileRow> profile;
  std::string error;
  std::string repro;
  /// Chrome trace JSON of the replication's timeline. Non-empty only when
  /// the runner ran with trace_capacity > 0 AND (the replication failed or
  /// trace_all was set) AND the body attached its Simulator to the
  /// context's tracer.
  std::string trace_json;
};

/// Aggregate of one run(): replication results in seed order, the seed-order
/// merge of every replication's metrics, and failure count.
template <typename T>
struct RunOutcome {
  std::vector<ReplicationResult<T>> replications;  // input seed order
  MetricsRegistry merged;                          // seed-order merge
  std::size_t failures = 0;
  std::size_t workers = 0;  // pool size actually used (0 = inline serial)
  double wall_ms = 0.0;     // whole-batch wall time
  /// Replications satisfied from a campaign journal instead of being
  /// re-run (run_resumable only; plain run() leaves it 0).
  std::size_t resumed = 0;
  /// Successful replications whose journal append FAILED (disk full,
  /// permissions, ...). Their results are still in `replications` — the
  /// campaign's answers are correct — but they are not durable: a resume
  /// will re-run them. Nonzero means the journal file is impaired.
  std::size_t journal_write_failures = 0;

  /// Projects one double per successful replication, in seed order.
  std::vector<double> values(const std::function<double(const T&)>& f) const {
    std::vector<double> xs;
    xs.reserve(replications.size());
    for (const auto& r : replications) {
      if (r.ok) xs.push_back(f(r.payload));
    }
    return xs;
  }
  SummaryStats stats(const std::function<double(const T&)>& f) const {
    return SummaryStats::of(values(f));
  }
};

/// One completed replication as persisted in a CampaignJournal.
struct JournalEntry {
  std::uint64_t seed = 0;
  std::size_t index = 0;
  double wall_ms = 0.0;
  /// User payload, encoded by the caller's `encode` closure.
  std::string payload;
  /// MetricsRegistry::serialize() image — bit-exact across the round trip.
  std::string metrics;
};

/// Append-only journal of completed replications, backing campaign resume:
/// results stream to disk as they finish, and a campaign restarted after an
/// interruption (crash at replication 900/1000, preempted job, ...) replays
/// the journaled results instead of re-simulating them. One escaped text
/// line per entry; loading skips malformed lines (a line truncated by a
/// crash mid-write costs exactly that one replication). A truncated tail
/// also lacks its terminating newline, so the first append after reopening
/// writes a separator first — otherwise the new entry would be glued onto
/// the partial line (whose escaped '\\t' separators make the merged line
/// look almost-parseable) and both would be lost on the next load. append()
/// is thread-safe and flushes before returning, so the journal is as
/// current as the last completed replication at any kill point.
class CampaignJournal {
 public:
  /// Opens (and loads) `path`; the file is created on first append.
  explicit CampaignJournal(std::string path);

  const std::string& path() const { return path_; }
  const std::vector<JournalEntry>& entries() const { return entries_; }

  /// The journaled entry for (seed, index), or nullptr. Matching uses both
  /// fields so a reordered or extended seed list never aliases.
  const JournalEntry* find(std::uint64_t seed, std::size_t index) const;

  /// Durably appends `e` (write + flush) before recording it in memory.
  /// Throws std::runtime_error if the file cannot be opened or the write
  /// fails — an entry the disk did not accept is NOT added to entries(),
  /// so memory and disk never disagree about what is journaled, and a
  /// resume re-runs the replication instead of trusting a phantom entry.
  /// After a failed write the on-disk fragment is treated like a
  /// crash-truncated tail (separator first on the next append).
  void append(const JournalEntry& e);

 private:
  std::string path_;
  std::mutex mu_;
  std::vector<JournalEntry> entries_;
  /// True when the file on disk ends mid-line (crash-truncated tail): the
  /// next append must emit a '\n' first so it starts a fresh line.
  bool tail_needs_newline_ = false;
};

class ParallelRunner {
 public:
  struct Options {
    /// Pool size. 0 runs every replication inline on the calling thread
    /// (true serial — the reference for the determinism guarantee); k >= 1
    /// spawns min(k, replications) workers pulling indices from a shared
    /// atomic cursor.
    std::size_t workers = 1;
    /// Program name stamped into failure repro lines (usually argv[0]).
    std::string repro_program;
    /// Per-replication trace ring size in records; 0 disables tracing.
    /// When set, each context's tracer is enabled before the body runs
    /// (tid = replication index, so multi-seed traces stay separable) and
    /// a FAILING replication's result carries its timeline as trace_json —
    /// the crash ships with the events that led to it.
    std::size_t trace_capacity = 0;
    /// Also keep trace_json for successful replications (memory-heavy for
    /// wide sweeps; meant for targeted trace collection).
    bool trace_all = false;
    /// Admission gate, consulted once per replication before its body runs.
    /// Returning false records the replication as a failure ("rejected by
    /// admission gate", repro line included) WITHOUT running the body — the
    /// mechanism a service loop uses to shed load past its per-batch budget
    /// (src/serve/). The gate MUST be a pure function of (seed, index):
    /// replications start in a nondeterministic interleaving across worker
    /// threads, so a stateful gate would admit a nondeterministic set and
    /// break the bit-identical-across-worker-counts guarantee.
    std::function<bool(std::uint64_t seed, std::size_t index)> admit;
    /// Observation hook fired after each replication finishes (admitted or
    /// rejected), from whichever worker thread ran it — must be
    /// thread-safe. Completion order is nondeterministic; anything that
    /// feeds results should use the seed-ordered RunOutcome instead. Meant
    /// for service bookkeeping: in-flight gauges, completion counters,
    /// queue-depth metrics.
    std::function<void(std::uint64_t seed, std::size_t index, bool ok,
                       double wall_ms)>
        on_complete;
  };

  explicit ParallelRunner(std::size_t workers) : opts_{workers, {}} {}
  explicit ParallelRunner(Options opts) : opts_(std::move(opts)) {}

  const Options& options() const { return opts_; }

  /// `{base, base+1, ..., base+n-1}` — the standard bench seed sweep.
  static std::vector<std::uint64_t> seed_range(std::uint64_t base,
                                               std::size_t n);

  /// Runs `body` once per seed and aggregates in seed order. The body MUST
  /// derive all randomness and simulation state from its context (no shared
  /// mutable state), which is what makes worker count unobservable.
  template <typename T>
  RunOutcome<T> run(const std::vector<std::uint64_t>& seeds,
                    const std::function<T(ReplicationContext&)>& body) const {
    RunOutcome<T> out;
    const std::size_t n = seeds.size();
    out.replications.resize(n);
    const auto batch_start = std::chrono::steady_clock::now();

    std::atomic<std::size_t> cursor{0};
    auto drain = [&] {
      for (;;) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        run_one(seeds[i], i, body, out.replications[i]);
      }
    };

    const std::size_t pool =
        opts_.workers == 0 ? 0 : std::min(opts_.workers, std::max<std::size_t>(n, 1));
    out.workers = pool;
    if (pool == 0) {
      drain();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(pool);
      for (std::size_t w = 0; w < pool; ++w) threads.emplace_back(drain);
      for (auto& t : threads) t.join();
    }

    // Aggregation strictly in seed order — the determinism guarantee.
    for (const auto& r : out.replications) {
      if (!r.ok) ++out.failures;
      out.merged.merge_from(r.metrics);
    }
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - batch_start)
                      .count();
    return out;
  }

  /// run() with campaign resume: replications already present in `journal`
  /// (matched by seed AND index) are replayed from their journaled payload
  /// + metrics instead of being re-run; the rest execute normally and are
  /// appended to the journal as they complete. `encode`/`decode` round-trip
  /// the payload T through the journal's text format (the encoding may not
  /// contain newlines after escaping — the journal escapes '\\', tab and
  /// newline itself). Because MetricsRegistry serialization is bit-exact
  /// and aggregation stays in seed order, an interrupted-then-resumed
  /// campaign produces a merged registry digest-identical to an
  /// uninterrupted one.
  template <typename T>
  RunOutcome<T> run_resumable(
      const std::vector<std::uint64_t>& seeds,
      const std::function<T(ReplicationContext&)>& body,
      CampaignJournal& journal,
      const std::function<std::string(const T&)>& encode,
      const std::function<T(std::string_view)>& decode) const {
    RunOutcome<T> out;
    const std::size_t n = seeds.size();
    out.replications.resize(n);
    const auto batch_start = std::chrono::steady_clock::now();

    // Replay completed replications from the journal. A journaled entry
    // whose metrics image fails to parse (crash-truncated line survivors
    // are already dropped at load; this guards version skew) is re-run.
    std::vector<char> done(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const JournalEntry* e = journal.find(seeds[i], i);
      if (!e) continue;
      auto metrics = MetricsRegistry::deserialize(e->metrics);
      if (!metrics) continue;
      ReplicationResult<T>& r = out.replications[i];
      r.seed = seeds[i];
      r.index = i;
      r.ok = true;
      r.wall_ms = e->wall_ms;
      r.payload = decode(e->payload);
      r.metrics = std::move(*metrics);
      done[i] = 1;
      ++out.resumed;
    }

    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> journal_failures{0};
    auto drain = [&] {
      for (;;) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        if (done[i]) continue;
        run_one(seeds[i], i, body, out.replications[i]);
        const ReplicationResult<T>& r = out.replications[i];
        // Failures are not journaled: a resume retries them.
        if (r.ok) {
          // append() throws when the disk refuses the entry. The result
          // itself is still good — count the durability loss instead of
          // letting the exception tear down a worker thread (which would
          // terminate the process) or fail the replication.
          try {
            journal.append(JournalEntry{r.seed, r.index, r.wall_ms,
                                        encode(r.payload), r.metrics.serialize()});
          } catch (const std::exception&) {
            journal_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    };

    const std::size_t pool =
        opts_.workers == 0 ? 0 : std::min(opts_.workers, std::max<std::size_t>(n, 1));
    out.workers = pool;
    if (pool == 0) {
      drain();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(pool);
      for (std::size_t w = 0; w < pool; ++w) threads.emplace_back(drain);
      for (auto& t : threads) t.join();
    }

    out.journal_write_failures = journal_failures.load(std::memory_order_relaxed);
    for (const auto& r : out.replications) {
      if (!r.ok) ++out.failures;
      out.merged.merge_from(r.metrics);
    }
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - batch_start)
                      .count();
    return out;
  }

 private:
  template <typename T>
  void run_one(std::uint64_t seed, std::size_t index,
               const std::function<T(ReplicationContext&)>& body,
               ReplicationResult<T>& slot) const {
    slot.seed = seed;
    slot.index = index;
    if (opts_.admit && !opts_.admit(seed, index)) {
      slot.ok = false;
      slot.error = "rejected by admission gate";
      slot.repro = make_repro(seed, index);
      if (opts_.on_complete) opts_.on_complete(seed, index, false, 0.0);
      return;
    }
    ReplicationContext ctx;
    ctx.seed = seed;
    ctx.index = index;
    if (opts_.trace_capacity > 0) {
      ctx.tracer.set_track(0, static_cast<std::uint32_t>(index));
      ctx.tracer.enable(opts_.trace_capacity);
    }
    const auto start = std::chrono::steady_clock::now();
    try {
      slot.payload = body(ctx);
      slot.ok = true;
    } catch (const std::exception& e) {
      slot.ok = false;
      slot.error = e.what();
    } catch (...) {
      slot.ok = false;
      slot.error = "non-std exception";
    }
    slot.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    slot.metrics = std::move(ctx.metrics);
    slot.profile = std::move(ctx.profile);
    if (opts_.trace_capacity > 0 && (!slot.ok || opts_.trace_all) &&
        ctx.tracer.total_recorded() > 0) {
      slot.trace_json = ctx.tracer.to_json();
    }
    if (!slot.ok) slot.repro = make_repro(seed, index);
    if (opts_.on_complete) opts_.on_complete(seed, index, slot.ok, slot.wall_ms);
  }

  std::string make_repro(std::uint64_t seed, std::size_t index) const;

  Options opts_;
};

}  // namespace iobt::sim
