#include "sim/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "sim/rng.h"

namespace iobt::sim {

void Summary::add(double x) {
  ++count_;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Welford's online mean/variance.
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);

  offer_to_reservoir(x);
}

// Reservoir sampling for quantiles. The replacement index comes from a
// deterministic SplitMix64 stream keyed only by how many samples we have
// seen, so Summary stays reproducible without threading an Rng through.
void Summary::offer_to_reservoir(double x) {
  ++seen_for_reservoir_;
  if (reservoir_.size() < kReservoirCap) {
    reservoir_.push_back(x);
  } else {
    std::uint64_t state = 0x5bf0d3a9c2e1f764ULL ^ seen_for_reservoir_;
    const std::uint64_t r = splitmix64(state) % seen_for_reservoir_;
    if (r < kReservoirCap) reservoir_[static_cast<std::size_t>(r)] = x;
  }
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  // Chan et al. parallel combination of (count, mean, m2).
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * (nb / (na + nb));
  m2_ += other.m2_ + delta * delta * (na * nb / (na + nb));
  count_ += other.count_;
  // Replay the other reservoir through the deterministic sampler, so the
  // merged reservoir depends only on merge order. (Quantiles of a merged
  // summary are an approximation: the other side contributes at most its
  // retained reservoir, not its full stream.)
  for (double x : other.reservoir_) offer_to_reservoir(x);
}

namespace {

void hash_u64(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

void hash_double(std::uint64_t& h, double x) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &x, sizeof bits);
  hash_u64(h, bits);
}

}  // namespace

void Summary::hash_into(std::uint64_t& h) const {
  hash_u64(h, count_);
  hash_double(h, mean_);
  hash_double(h, m2_);
  hash_double(h, min_);
  hash_double(h, max_);
  hash_u64(h, reservoir_.size());
  for (double x : reservoir_) hash_double(h, x);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, value] : other.counters_) counters_[key] += value;
  for (const auto& [key, value] : other.gauges_) gauges_[key] = value;
  for (const auto& [key, summary] : other.summaries_) {
    summaries_[key].merge(summary);
  }
}

std::uint64_t MetricsRegistry::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  hash_u64(h, counters_.size());
  for (const auto& [key, value] : counters_) {
    hash_u64(h, fnv1a(key));
    hash_double(h, value);
  }
  hash_u64(h, gauges_.size());
  for (const auto& [key, value] : gauges_) {
    hash_u64(h, fnv1a(key));
    hash_double(h, value);
  }
  hash_u64(h, summaries_.size());
  for (const auto& [key, summary] : summaries_) {
    hash_u64(h, fnv1a(key));
    summary.hash_into(h);
  }
  return h;
}

Summary::State Summary::state() const {
  return State{count_, mean_, m2_, min_, max_, seen_for_reservoir_, reservoir_};
}

Summary Summary::from_state(State s) {
  Summary out;
  out.count_ = s.count;
  out.mean_ = s.mean;
  out.m2_ = s.m2;
  out.min_ = s.min;
  out.max_ = s.max;
  out.seen_for_reservoir_ = s.seen_for_reservoir;
  out.reservoir_ = std::move(s.reservoir);
  return out;
}

namespace {

// Doubles travel as the hex of their raw bit pattern — the only encoding
// that survives a text round trip bit-for-bit (printf %.17g does not
// preserve NaN payloads or distinguish every -0.0 path).
void append_double_bits(std::string& out, double x) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &x, sizeof bits);
  char buf[20];
  std::snprintf(buf, sizeof buf, " %016" PRIx64, bits);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += ' ';
  out += std::to_string(v);
}

bool read_u64(std::istream& in, std::uint64_t& v) {
  std::string tok;
  if (!(in >> tok) || tok.empty()) return false;
  char* end = nullptr;
  v = std::strtoull(tok.c_str(), &end, 10);
  return end == tok.c_str() + tok.size();
}

bool read_double_bits(std::istream& in, double& x) {
  std::string tok;
  if (!(in >> tok) || tok.size() != 16) return false;
  char* end = nullptr;
  const std::uint64_t bits = std::strtoull(tok.c_str(), &end, 16);
  if (end != tok.c_str() + tok.size()) return false;
  std::memcpy(&x, &bits, sizeof x);
  return true;
}

void check_key(const std::string& key) {
  if (key.empty() ||
      key.find_first_of(" \t\r\n;\\") != std::string::npos) {
    throw std::logic_error(
        "MetricsRegistry::serialize: key '" + key +
        "' is not journal-safe (empty or contains whitespace/';'/'\\')");
  }
}

}  // namespace

std::string MetricsRegistry::serialize() const {
  std::string out = "m1";
  append_u64(out, counters_.size());
  for (const auto& [key, value] : counters_) {
    check_key(key);
    out += ' ';
    out += key;
    append_double_bits(out, value);
  }
  append_u64(out, gauges_.size());
  for (const auto& [key, value] : gauges_) {
    check_key(key);
    out += ' ';
    out += key;
    append_double_bits(out, value);
  }
  append_u64(out, summaries_.size());
  for (const auto& [key, summary] : summaries_) {
    check_key(key);
    out += ' ';
    out += key;
    const Summary::State st = summary.state();
    append_u64(out, st.count);
    append_double_bits(out, st.mean);
    append_double_bits(out, st.m2);
    append_double_bits(out, st.min);
    append_double_bits(out, st.max);
    append_u64(out, st.seen_for_reservoir);
    append_u64(out, st.reservoir.size());
    for (double x : st.reservoir) append_double_bits(out, x);
  }
  return out;
}

std::optional<MetricsRegistry> MetricsRegistry::deserialize(
    std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string tok;
  if (!(in >> tok) || tok != "m1") return std::nullopt;

  MetricsRegistry out;
  std::uint64_t n = 0;
  if (!read_u64(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key;
    double value = 0.0;
    if (!(in >> key) || !read_double_bits(in, value)) return std::nullopt;
    out.counters_[key] = value;
  }
  if (!read_u64(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key;
    double value = 0.0;
    if (!(in >> key) || !read_double_bits(in, value)) return std::nullopt;
    out.gauges_[key] = value;
  }
  if (!read_u64(in, n)) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key;
    Summary::State st;
    std::uint64_t reservoir_size = 0;
    if (!(in >> key) || !read_u64(in, st.count) ||
        !read_double_bits(in, st.mean) || !read_double_bits(in, st.m2) ||
        !read_double_bits(in, st.min) || !read_double_bits(in, st.max) ||
        !read_u64(in, st.seen_for_reservoir) ||
        !read_u64(in, reservoir_size)) {
      return std::nullopt;
    }
    // A corrupt length must not drive a giant allocation; real reservoirs
    // are bounded by kReservoirCap.
    if (reservoir_size > Summary::kReservoirCap) return std::nullopt;
    st.reservoir.reserve(reservoir_size);
    for (std::uint64_t r = 0; r < reservoir_size; ++r) {
      double x = 0.0;
      if (!read_double_bits(in, x)) return std::nullopt;
      st.reservoir.push_back(x);
    }
    out.summaries_[key] = Summary::from_state(std::move(st));
  }
  // Trailing garbage means the line was not produced by serialize().
  if (in >> tok) return std::nullopt;
  return out;
}

double Summary::quantile(double q) const {
  if (reservoir_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace iobt::sim
