#include "sim/metrics.h"

#include <cstring>

#include "sim/rng.h"

namespace iobt::sim {

void Summary::add(double x) {
  ++count_;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Welford's online mean/variance.
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);

  offer_to_reservoir(x);
}

// Reservoir sampling for quantiles. The replacement index comes from a
// deterministic SplitMix64 stream keyed only by how many samples we have
// seen, so Summary stays reproducible without threading an Rng through.
void Summary::offer_to_reservoir(double x) {
  ++seen_for_reservoir_;
  if (reservoir_.size() < kReservoirCap) {
    reservoir_.push_back(x);
  } else {
    std::uint64_t state = 0x5bf0d3a9c2e1f764ULL ^ seen_for_reservoir_;
    const std::uint64_t r = splitmix64(state) % seen_for_reservoir_;
    if (r < kReservoirCap) reservoir_[static_cast<std::size_t>(r)] = x;
  }
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  // Chan et al. parallel combination of (count, mean, m2).
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * (nb / (na + nb));
  m2_ += other.m2_ + delta * delta * (na * nb / (na + nb));
  count_ += other.count_;
  // Replay the other reservoir through the deterministic sampler, so the
  // merged reservoir depends only on merge order. (Quantiles of a merged
  // summary are an approximation: the other side contributes at most its
  // retained reservoir, not its full stream.)
  for (double x : other.reservoir_) offer_to_reservoir(x);
}

namespace {

void hash_u64(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

void hash_double(std::uint64_t& h, double x) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &x, sizeof bits);
  hash_u64(h, bits);
}

}  // namespace

void Summary::hash_into(std::uint64_t& h) const {
  hash_u64(h, count_);
  hash_double(h, mean_);
  hash_double(h, m2_);
  hash_double(h, min_);
  hash_double(h, max_);
  hash_u64(h, reservoir_.size());
  for (double x : reservoir_) hash_double(h, x);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, value] : other.counters_) counters_[key] += value;
  for (const auto& [key, value] : other.gauges_) gauges_[key] = value;
  for (const auto& [key, summary] : other.summaries_) {
    summaries_[key].merge(summary);
  }
}

std::uint64_t MetricsRegistry::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  hash_u64(h, counters_.size());
  for (const auto& [key, value] : counters_) {
    hash_u64(h, fnv1a(key));
    hash_double(h, value);
  }
  hash_u64(h, gauges_.size());
  for (const auto& [key, value] : gauges_) {
    hash_u64(h, fnv1a(key));
    hash_double(h, value);
  }
  hash_u64(h, summaries_.size());
  for (const auto& [key, summary] : summaries_) {
    hash_u64(h, fnv1a(key));
    summary.hash_into(h);
  }
  return h;
}

double Summary::quantile(double q) const {
  if (reservoir_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace iobt::sim
