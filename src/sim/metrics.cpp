#include "sim/metrics.h"

#include "sim/rng.h"

namespace iobt::sim {

void Summary::add(double x) {
  ++count_;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Welford's online mean/variance.
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);

  // Reservoir sampling for quantiles. The replacement index comes from a
  // deterministic SplitMix64 stream keyed only by how many samples we have
  // seen, so Summary stays reproducible without threading an Rng through.
  ++seen_for_reservoir_;
  if (reservoir_.size() < kReservoirCap) {
    reservoir_.push_back(x);
  } else {
    std::uint64_t state = 0x5bf0d3a9c2e1f764ULL ^ seen_for_reservoir_;
    const std::uint64_t r = splitmix64(state) % seen_for_reservoir_;
    if (r < kReservoirCap) reservoir_[static_cast<std::size_t>(r)] = x;
  }
}

double Summary::quantile(double q) const {
  if (reservoir_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace iobt::sim
