#pragma once
// Metrics collection for experiments.
//
// A MetricsRegistry owns named counters, gauges, and distribution summaries
// that simulation components update as they run; benchmark harnesses read
// them out at the end to print the experiment rows. Everything is plain
// in-memory accumulation — no I/O on the hot path.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace iobt::sim {

/// Online summary of a stream of samples: count/mean/variance via Welford,
/// min/max, and exact quantiles from a bounded reservoir.
class Summary {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Quantile in [0,1] computed from the reservoir (exact if fewer samples
  /// than the reservoir capacity were added).
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double p99() const { return quantile(0.99); }

  /// Folds `other` into this summary: counts add, mean/variance combine by
  /// the parallel (Chan et al.) update, min/max take the extremes, and
  /// `other`'s reservoir is replayed through the deterministic sampler. The
  /// result depends only on merge order — never on wall-clock or thread
  /// interleaving — which is what lets ParallelRunner aggregate replications
  /// in seed order and stay bit-identical across worker counts.
  void merge(const Summary& other);

  /// Mixes this summary's full state (including the reservoir) into `h`.
  void hash_into(std::uint64_t& h) const;

  /// Full internal state, exposed for bit-exact round-trips (checkpoint
  /// snapshots, campaign journals). A summary rebuilt via from_state()
  /// digests identically AND continues the deterministic reservoir stream
  /// exactly where the original left off.
  struct State {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t seen_for_reservoir = 0;
    std::vector<double> reservoir;
  };
  State state() const;
  static Summary from_state(State s);

  /// Reservoir capacity — also the upper bound deserializers accept.
  static constexpr std::size_t kReservoirCap = 4096;

 private:
  void offer_to_reservoir(double x);

  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> reservoir_;
  std::uint64_t seen_for_reservoir_ = 0;  // for reservoir sampling beyond cap
};

/// Named metrics, keyed by string. Keys are created on first touch.
class MetricsRegistry {
 public:
  /// Adds `delta` (default 1) to a counter.
  void count(const std::string& key, double delta = 1.0) { counters_[key] += delta; }
  /// Sets a gauge to its latest value.
  void gauge(const std::string& key, double value) { gauges_[key] = value; }
  /// Records one sample into a distribution summary.
  void observe(const std::string& key, double sample) { summaries_[key].add(sample); }

  /// Stable pointer to a counter / summary, for hot paths that would
  /// otherwise pay a string-keyed map lookup per event (std::map nodes
  /// never move, so the pointer survives later insertions). Updating
  /// through a handle is observably identical to count()/observe() on the
  /// same key — digests and merges see the same state.
  double* counter_handle(const std::string& key) { return &counters_[key]; }
  Summary* summary_handle(const std::string& key) { return &summaries_[key]; }
  /// Records a duration sample, in seconds.
  void observe(const std::string& key, Duration d) { observe(key, d.to_seconds()); }

  double counter(const std::string& key) const {
    auto it = counters_.find(key);
    return it == counters_.end() ? 0.0 : it->second;
  }
  double gauge_value(const std::string& key) const {
    auto it = gauges_.find(key);
    return it == gauges_.end() ? 0.0 : it->second;
  }
  const Summary* summary(const std::string& key) const {
    auto it = summaries_.find(key);
    return it == summaries_.end() ? nullptr : &it->second;
  }

  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Summary>& summaries() const { return summaries_; }

  void clear() {
    counters_.clear();
    gauges_.clear();
    summaries_.clear();
  }

  /// Folds `other` into this registry: counters add, gauges take `other`'s
  /// latest value (last merge wins), summaries merge. Used by ParallelRunner
  /// to aggregate per-replication snapshots in seed order.
  void merge_from(const MetricsRegistry& other);

  /// Order-insensitive-to-nothing content digest: a stable 64-bit hash over
  /// every key and the exact bit patterns of every value (including summary
  /// reservoirs). Two registries digest equal iff their observable state is
  /// bit-identical — the check the determinism-under-parallelism tests use.
  std::uint64_t digest() const;

  /// One-line text image of the full registry, bit-exact: doubles travel
  /// as the hex of their bit pattern (NaN payloads, -0.0 and infinities
  /// survive), so deserialize(serialize()) digests identically. Used by the
  /// campaign journal to persist per-replication metrics across process
  /// restarts. Keys must be free of whitespace, ';' and '\\' (all repo keys
  /// are dotted identifiers); serialize throws std::logic_error otherwise.
  std::string serialize() const;
  /// Parses a serialize() image; std::nullopt on any malformed input
  /// (truncated journal line after a crash, version mismatch, ...).
  static std::optional<MetricsRegistry> deserialize(std::string_view text);

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace iobt::sim
