#include "diag/tomography.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

namespace iobt::diag {

namespace {

/// Dense Gaussian elimination returning the row-echelon form and rank.
/// Rows are the measurement vectors.
struct Echelon {
  std::vector<std::vector<double>> rows;
  std::size_t rank = 0;
  std::vector<std::size_t> pivot_cols;

  explicit Echelon(std::vector<std::vector<double>> m) : rows(std::move(m)) {
    if (rows.empty()) return;
    const std::size_t ncols = rows[0].size();
    std::size_t r = 0;
    for (std::size_t c = 0; c < ncols && r < rows.size(); ++c) {
      // Partial pivot.
      std::size_t best = r;
      for (std::size_t i = r + 1; i < rows.size(); ++i) {
        if (std::abs(rows[i][c]) > std::abs(rows[best][c])) best = i;
      }
      if (std::abs(rows[best][c]) < 1e-9) continue;
      std::swap(rows[r], rows[best]);
      const double piv = rows[r][c];
      for (double& x : rows[r]) x /= piv;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i == r) continue;
        const double f = rows[i][c];
        if (std::abs(f) < 1e-12) continue;
        for (std::size_t k = 0; k < ncols; ++k) rows[i][k] -= f * rows[r][k];
      }
      pivot_cols.push_back(c);
      ++r;
    }
    rank = r;
  }

  /// True iff `v` lies in the row space (appending it does not raise rank).
  bool in_row_space(const std::vector<double>& v) const {
    std::vector<double> residual = v;
    for (std::size_t r = 0; r < rank; ++r) {
      const std::size_t c = pivot_cols[r];
      const double f = residual[c];
      if (std::abs(f) < 1e-9) continue;
      for (std::size_t k = 0; k < residual.size(); ++k) {
        residual[k] -= f * rows[r][k];
      }
    }
    for (double x : residual) {
      if (std::abs(x) > 1e-6) return false;
    }
    return true;
  }
};

}  // namespace

TomographySystem::TomographySystem(const net::Topology& topo,
                                   std::vector<net::NodeId> monitors)
    : links_(topo.edges()), node_count_(topo.node_count()) {
  // Build an O(1) edge lookup keyed by the smaller endpoint.
  edge_lookup_.assign(node_count_, {});
  for (std::size_t i = 0; i < links_.size(); ++i) {
    edge_lookup_[links_[i].a].push_back(i);
  }

  std::sort(monitors.begin(), monitors.end());
  for (std::size_t i = 0; i < monitors.size(); ++i) {
    const auto sp = topo.shortest_paths(monitors[i]);
    for (std::size_t j = i + 1; j < monitors.size(); ++j) {
      const auto nodes = sp.path_to(monitors[j]);
      if (nodes.size() < 2) continue;
      MeasurementPath p;
      p.from = monitors[i];
      p.to = monitors[j];
      for (std::size_t k = 0; k + 1 < nodes.size(); ++k) {
        p.link_indices.push_back(edge_index(nodes[k], nodes[k + 1]));
      }
      paths_.push_back(std::move(p));
    }
  }
}

std::size_t TomographySystem::edge_index(net::NodeId a, net::NodeId b) const {
  if (a > b) std::swap(a, b);
  for (std::size_t i : edge_lookup_[a]) {
    if (links_[i].b == b) return i;
  }
  assert(false && "edge on a shortest path must exist");
  return 0;
}

std::vector<bool> TomographySystem::identifiable_links() const {
  const std::size_t n = links_.size();
  std::vector<std::vector<double>> rows;
  rows.reserve(paths_.size());
  for (const auto& p : paths_) {
    std::vector<double> row(n, 0.0);
    for (std::size_t li : p.link_indices) row[li] = 1.0;
    rows.push_back(std::move(row));
  }
  const Echelon ech(std::move(rows));
  std::vector<bool> out(n, false);
  std::vector<double> e(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    e[i] = 1.0;
    out[i] = ech.in_row_space(e);
    e[i] = 0.0;
  }
  return out;
}

double TomographySystem::identifiability() const {
  if (links_.empty()) return 1.0;
  const auto id = identifiable_links();
  std::size_t k = 0;
  for (bool b : id) k += b ? 1 : 0;
  return static_cast<double>(k) / static_cast<double>(links_.size());
}

std::vector<double> TomographySystem::measure(const std::vector<double>& link_metrics,
                                              double noise_stddev,
                                              sim::Rng* rng) const {
  assert(link_metrics.size() == links_.size());
  std::vector<double> out;
  out.reserve(paths_.size());
  for (const auto& p : paths_) {
    double sum = 0.0;
    for (std::size_t li : p.link_indices) sum += link_metrics[li];
    if (noise_stddev > 0.0 && rng) sum += rng->normal(0.0, noise_stddev);
    out.push_back(sum);
  }
  return out;
}

std::vector<double> TomographySystem::estimate(
    const std::vector<double>& path_measurements) const {
  assert(path_measurements.size() == paths_.size());
  const std::size_t n = links_.size();
  // Normal equations (A^T A + eps I) x = A^T b; the small ridge term makes
  // the system nonsingular for unidentifiable links (min-norm-ish).
  std::vector<std::vector<double>> ata(n, std::vector<double>(n, 0.0));
  std::vector<double> atb(n, 0.0);
  for (std::size_t k = 0; k < paths_.size(); ++k) {
    const auto& idx = paths_[k].link_indices;
    for (std::size_t i : idx) {
      atb[i] += path_measurements[k];
      for (std::size_t j : idx) ata[i][j] += 1.0;
    }
  }
  constexpr double kRidge = 1e-8;
  for (std::size_t i = 0; i < n; ++i) ata[i][i] += kRidge;

  // Gaussian elimination with partial pivoting on [ata | atb].
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t c = 0; c < n; ++c) {
    std::size_t best = c;
    for (std::size_t i = c + 1; i < n; ++i) {
      if (std::abs(ata[i][c]) > std::abs(ata[best][c])) best = i;
    }
    std::swap(ata[c], ata[best]);
    std::swap(atb[c], atb[best]);
    const double piv = ata[c][c];
    if (std::abs(piv) < 1e-14) continue;
    for (std::size_t i = c + 1; i < n; ++i) {
      const double f = ata[i][c] / piv;
      if (f == 0.0) continue;
      for (std::size_t k = c; k < n; ++k) ata[i][k] -= f * ata[c][k];
      atb[i] -= f * atb[c];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ci = n; ci-- > 0;) {
    double s = atb[ci];
    for (std::size_t k = ci + 1; k < n; ++k) s -= ata[ci][k] * x[k];
    x[ci] = std::abs(ata[ci][ci]) < 1e-14 ? 0.0 : s / ata[ci][ci];
  }
  return x;
}

TomographySystem::FailureDiagnosis TomographySystem::localize_failures(
    const std::vector<bool>& path_ok) const {
  assert(path_ok.size() == paths_.size());
  const std::size_t n = links_.size();
  FailureDiagnosis d;
  d.known_good.assign(n, false);
  d.suspect.assign(n, false);

  // Every link on a working path is good.
  for (std::size_t k = 0; k < paths_.size(); ++k) {
    if (!path_ok[k]) continue;
    for (std::size_t li : paths_[k].link_indices) d.known_good[li] = true;
  }
  // Suspects: links on failed paths that are not proven good.
  std::vector<std::vector<std::size_t>> failed_paths;
  for (std::size_t k = 0; k < paths_.size(); ++k) {
    if (path_ok[k]) continue;
    std::vector<std::size_t> candidates;
    for (std::size_t li : paths_[k].link_indices) {
      if (!d.known_good[li]) {
        d.suspect[li] = true;
        candidates.push_back(li);
      }
    }
    failed_paths.push_back(std::move(candidates));
  }

  // Greedy set cover: repeatedly pick the suspect covering most uncovered
  // failed paths (ties -> smallest index, deterministic).
  std::vector<bool> covered(failed_paths.size(), false);
  std::size_t uncovered = failed_paths.size();
  while (uncovered > 0) {
    std::vector<std::size_t> gain(n, 0);
    for (std::size_t k = 0; k < failed_paths.size(); ++k) {
      if (covered[k]) continue;
      for (std::size_t li : failed_paths[k]) ++gain[li];
    }
    std::size_t best = n;
    for (std::size_t li = 0; li < n; ++li) {
      if (gain[li] > 0 && (best == n || gain[li] > gain[best])) best = li;
    }
    if (best == n) break;  // a failed path with no suspects: inconsistent obs
    d.minimal_explanation.push_back(best);
    for (std::size_t k = 0; k < failed_paths.size(); ++k) {
      if (covered[k]) continue;
      for (std::size_t li : failed_paths[k]) {
        if (li == best) {
          covered[k] = true;
          --uncovered;
          break;
        }
      }
    }
  }
  std::sort(d.minimal_explanation.begin(), d.minimal_explanation.end());
  return d;
}

std::vector<net::NodeId> greedy_monitor_placement(const net::Topology& topo,
                                                  std::size_t budget) {
  std::vector<net::NodeId> chosen;
  if (budget == 0 || topo.node_count() == 0) return chosen;
  std::set<net::NodeId> remaining;
  for (net::NodeId v = 0; v < topo.node_count(); ++v) remaining.insert(v);

  // Seed with the highest-degree node (cheap, effective).
  net::NodeId seed = 0;
  for (net::NodeId v = 1; v < topo.node_count(); ++v) {
    if (topo.degree(v) > topo.degree(seed)) seed = v;
  }
  chosen.push_back(seed);
  remaining.erase(seed);

  while (chosen.size() < budget && !remaining.empty()) {
    net::NodeId best = *remaining.begin();
    double best_gain = -1.0;
    for (net::NodeId cand : remaining) {
      auto trial = chosen;
      trial.push_back(cand);
      const double gain = TomographySystem(topo, trial).identifiability();
      if (gain > best_gain) {
        best_gain = gain;
        best = cand;
      }
    }
    chosen.push_back(best);
    remaining.erase(best);
    if (best_gain >= 1.0) break;  // fully identifiable already
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace iobt::diag
