#pragma once
// Network tomography: inferring internal state from end-to-end
// measurements (§V-A, refs [19-22] — "discovery of latent network
// structure (or structural compromise) from a sample of end-to-end
// observations").
//
// Two classic problems are implemented over our Topology:
//  * Additive-metric tomography: each link has an unknown non-negative
//    metric (delay); monitors measure path sums along shortest paths
//    between monitor pairs. We build the linear system, determine which
//    links are identifiable (their indicator lies in the measurement row
//    space), and least-squares-estimate the metrics.
//  * Boolean failure localization: some links fail; a path works iff all
//    its links work. From path up/down observations we compute the set of
//    certainly-good links, the candidate suspects, and a minimal
//    consistent explanation (greedy set cover).

#include <optional>
#include <vector>

#include "net/topology.h"

namespace iobt::diag {

/// A measurement path: the node sequence and the indices (into the edge
/// list) of the links it traverses.
struct MeasurementPath {
  net::NodeId from = 0;
  net::NodeId to = 0;
  std::vector<std::size_t> link_indices;
};

/// The measurement design for a monitor placement on a topology.
class TomographySystem {
 public:
  /// Builds paths between all monitor pairs along shortest (hop-count)
  /// routes of `topo`. Unreachable pairs are skipped.
  TomographySystem(const net::Topology& topo, std::vector<net::NodeId> monitors);

  const std::vector<net::Edge>& links() const { return links_; }
  const std::vector<MeasurementPath>& paths() const { return paths_; }
  std::size_t link_count() const { return links_.size(); }

  /// link_identifiable[i] == true iff link i's metric is uniquely
  /// determined by noiseless path measurements.
  std::vector<bool> identifiable_links() const;
  /// Fraction of links identifiable.
  double identifiability() const;

  /// Measures path sums given true per-link metrics (same order as
  /// links()), optionally with additive Gaussian noise.
  std::vector<double> measure(const std::vector<double>& link_metrics,
                              double noise_stddev = 0.0, sim::Rng* rng = nullptr) const;

  /// Least-squares estimate of link metrics from path measurements.
  /// Unidentifiable links get the minimum-norm solution component.
  std::vector<double> estimate(const std::vector<double>& path_measurements) const;

  // --- Boolean failure localization --------------------------------------

  struct FailureDiagnosis {
    /// Links proven good (on at least one working path).
    std::vector<bool> known_good;
    /// Links that could explain the failures (on a failed path, not good).
    std::vector<bool> suspect;
    /// Greedy minimal explanation: a small suspect set covering all failed
    /// paths.
    std::vector<std::size_t> minimal_explanation;
  };

  /// `path_ok[k]` is the observed status of paths()[k].
  FailureDiagnosis localize_failures(const std::vector<bool>& path_ok) const;

 private:
  std::vector<net::Edge> links_;
  std::vector<MeasurementPath> paths_;
  std::size_t edge_index(net::NodeId a, net::NodeId b) const;
  std::vector<std::vector<std::size_t>> edge_lookup_;  // adjacency -> index
  std::size_t node_count_ = 0;
};

/// Monitor placement: greedily picks monitors maximizing marginal
/// identifiability gain (a practical heuristic for the NP-hard placement
/// problem of ref [20]).
std::vector<net::NodeId> greedy_monitor_placement(const net::Topology& topo,
                                                  std::size_t budget);

}  // namespace iobt::diag
