#pragma once
// Information diagnostics: anomaly scoring on metric streams, and the
// attention allocation service of §V-A ("attention is a bottleneck. It
// should be directed to situations that deserve it the most ... even in
// the presence of noise, failures, bad data, malicious adversarial
// inputs").

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace iobt::diag {

/// EWMA-based anomaly detector on a scalar stream: maintains exponentially
/// weighted mean and variance; the score of a sample is its absolute
/// z-score against them. Robust to slow drift, reactive to jumps.
class EwmaDetector {
 public:
  /// `alpha` is the EWMA smoothing factor in (0, 1]; smaller = longer
  /// memory. `warmup` samples are consumed before scores are emitted.
  explicit EwmaDetector(double alpha = 0.1, int warmup = 10)
      : alpha_(alpha), warmup_(warmup) {}

  /// Feeds one sample; returns its anomaly score (0 during warmup).
  double update(double x) {
    ++count_;
    if (count_ == 1) {
      mean_ = x;
      var_ = 0.0;
      return 0.0;
    }
    // Score against the PRE-update statistics: folding the sample into the
    // variance first would let a large spike inflate its own denominator
    // and mask itself.
    double score = 0.0;
    if (count_ > warmup_) {
      const double sd = std::sqrt(std::max(var_, 1e-12));
      score = std::abs(x - mean_) / sd;
    }
    const double prev_mean = mean_;
    mean_ += alpha_ * (x - mean_);
    var_ = (1.0 - alpha_) * (var_ + alpha_ * (x - prev_mean) * (x - prev_mean));
    return score;
  }

  double mean() const { return mean_; }
  double stddev() const { return std::sqrt(std::max(var_, 0.0)); }
  std::int64_t samples() const { return count_; }

 private:
  double alpha_;
  int warmup_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::int64_t count_ = 0;
};

/// One observable stream competing for analyst/processing attention.
struct AttentionItem {
  std::string stream;
  double anomaly_score = 0.0;   // from a detector
  double source_trust = 0.5;    // from the trust registry
  double mission_weight = 1.0;  // commander-assigned importance
};

/// Ranks items by priority = anomaly * trust * mission weight. The trust
/// multiplier is what keeps "intentionally-designed distractions" (noisy
/// adversarial feeds) from hijacking attention.
class AttentionAllocator {
 public:
  static double priority(const AttentionItem& it) {
    return it.anomaly_score * it.source_trust * it.mission_weight;
  }

  /// Returns the top-`budget` items by priority, ties broken by stream
  /// name for determinism.
  static std::vector<AttentionItem> allocate(std::vector<AttentionItem> items,
                                             std::size_t budget) {
    std::sort(items.begin(), items.end(),
              [](const AttentionItem& a, const AttentionItem& b) {
                const double pa = priority(a), pb = priority(b);
                if (pa != pb) return pa > pb;
                return a.stream < b.stream;
              });
    if (items.size() > budget) items.resize(budget);
    return items;
  }
};

/// Multi-stream anomaly tracker: one EwmaDetector per named stream.
class AnomalyTracker {
 public:
  explicit AnomalyTracker(double alpha = 0.1, int warmup = 10)
      : alpha_(alpha), warmup_(warmup) {}

  double update(const std::string& stream, double x) {
    auto [it, inserted] = detectors_.try_emplace(stream, EwmaDetector(alpha_, warmup_));
    const double score = it->second.update(x);
    last_score_[stream] = score;
    return score;
  }

  double last_score(const std::string& stream) const {
    auto it = last_score_.find(stream);
    return it == last_score_.end() ? 0.0 : it->second;
  }

  std::size_t stream_count() const { return detectors_.size(); }

 private:
  double alpha_;
  int warmup_;
  std::unordered_map<std::string, EwmaDetector> detectors_;
  std::unordered_map<std::string, double> last_score_;
};

}  // namespace iobt::diag
