#include "diag/health.h"

namespace iobt::diag {

namespace {
constexpr const char* kPing = "health.ping";
constexpr const char* kPong = "health.pong";
constexpr std::size_t kPingBytes = 24;

struct Ping {
  std::uint64_t seq = 0;
  std::uint32_t peer = 0;  // which peer this probe targets (echoed back)
};
}  // namespace

std::string to_string(PeerHealth h) {
  switch (h) {
    case PeerHealth::kHealthy: return "healthy";
    case PeerHealth::kDegraded: return "degraded";
    case PeerHealth::kUnreachable: return "unreachable";
  }
  return "unknown";
}

HealthService::HealthService(things::World& world, net::Dispatcher& dispatcher,
                             things::AssetId monitor,
                             std::vector<things::AssetId> peers, HealthConfig config)
    : world_(world),
      disp_(dispatcher),
      monitor_(monitor),
      peers_(std::move(peers)),
      cfg_(config) {
  // Responder firmware on every peer: echo pings (any live cooperative
  // device answers its own enclave's health probes).
  for (const auto p : peers_) {
    state_[p] = PeerState{};
    disp_.on(world_.asset(p).node, kPing, [this, p](const net::Message& m) {
      if (!world_.asset_live(p)) return;
      net::Message reply;
      reply.kind = kPong;
      reply.size_bytes = kPingBytes;
      reply.payload = m.payload;  // echo seq + peer id
      world_.network().route_and_send(world_.asset(p).node, m.src, std::move(reply));
    });
  }
  disp_.on(world_.asset(monitor_).node, kPong,
           [this](const net::Message& m) { handle_pong(m); });
}

void HealthService::start() {
  if (started_) return;
  started_ = true;
  world_.simulator().schedule_every(
      cfg_.probe_period,
      [this, alive = std::weak_ptr<char>(alive_)]() {
        // Destruction check must come before the asset_live guard — that
        // guard itself reads `this`.
        if (alive.expired()) return false;
        if (!world_.asset_live(monitor_)) return false;
        tick();
        return true;
      },
      world_.simulator().intern("health.probe_loop"));
}

void HealthService::tick() {
  for (const auto p : peers_) {
    PeerState& st = state_[p];
    if (st.awaiting) {
      // Previous probe never answered.
      ++st.consecutive_silent;
      st.awaiting = false;
    }
    net::Message m;
    m.kind = kPing;
    m.size_bytes = kPingBytes;
    m.payload = Ping{next_seq_, p};
    st.last_seq = next_seq_++;
    st.sent_at = world_.simulator().now();
    st.awaiting = true;
    ++probes_sent_;
    world_.network().route_and_send(world_.asset(monitor_).node,
                                    world_.asset(p).node, std::move(m));
  }
}

void HealthService::handle_pong(const net::Message& m) {
  const auto& ping = std::any_cast<const Ping&>(m.payload);
  auto it = state_.find(ping.peer);
  if (it == state_.end() || !it->second.awaiting || it->second.last_seq != ping.seq) {
    return;  // stale or duplicate reply
  }
  PeerState& st = it->second;
  st.awaiting = false;
  st.consecutive_silent = 0;
  ++replies_;
  const double rtt = (world_.simulator().now() - st.sent_at).to_seconds();
  st.rtt_sum += rtt;
  ++st.rtt_count;
  st.last_rtt_score = st.rtt_detector.update(rtt);
}

PeerHealth HealthService::health(things::AssetId peer) const {
  auto it = state_.find(peer);
  if (it == state_.end()) return PeerHealth::kUnreachable;
  const PeerState& st = it->second;
  if (st.consecutive_silent >= cfg_.silence_threshold) return PeerHealth::kUnreachable;
  if (st.last_rtt_score > cfg_.rtt_anomaly_threshold) return PeerHealth::kDegraded;
  return PeerHealth::kHealthy;
}

double HealthService::mean_rtt_s(things::AssetId peer) const {
  auto it = state_.find(peer);
  if (it == state_.end() || it->second.rtt_count == 0) return 0.0;
  return it->second.rtt_sum / static_cast<double>(it->second.rtt_count);
}

std::vector<things::AssetId> HealthService::unreachable_peers() const {
  std::vector<things::AssetId> out;
  for (const auto p : peers_) {
    if (health(p) == PeerHealth::kUnreachable) out.push_back(p);
  }
  return out;
}

double HealthService::detection_recall() const {
  std::size_t dead = 0, caught = 0;
  for (const auto p : peers_) {
    if (world_.asset_live(p)) continue;
    ++dead;
    if (health(p) == PeerHealth::kUnreachable) ++caught;
  }
  return dead == 0 ? 1.0 : static_cast<double>(caught) / static_cast<double>(dead);
}

double HealthService::detection_precision() const {
  std::size_t flagged = 0, justified = 0;
  for (const auto p : peers_) {
    if (health(p) != PeerHealth::kUnreachable) continue;
    ++flagged;
    const bool dead = !world_.asset_live(p);
    const bool partitioned =
        !world_.network().route_exists(world_.asset(monitor_).node,
                                       world_.asset(p).node);
    if (dead || partitioned) ++justified;
  }
  return flagged == 0 ? 1.0
                      : static_cast<double>(justified) / static_cast<double>(flagged);
}

}  // namespace iobt::diag
