#pragma once
// Online system diagnostics (§V-A: "a key challenge in the complex
// environments of IoBTs is to diagnose distributed system health ...
// without direct component observation").
//
// The HealthService runs on live assets: a monitor asset periodically
// sends PING frames to its peers over the real (lossy, multi-hop) network
// and tracks per-peer reachability and RTT with EWMA anomaly detection.
// The end-to-end observations feed boolean failure inference: peers that
// stop answering are localized, and the service distinguishes "peer dead"
// from "path degraded" by cross-referencing which probes still succeed —
// exactly the tomography information structure, driven by real traffic.

#include <memory>
#include <unordered_map>

#include "diag/anomaly.h"
#include "net/dispatcher.h"
#include "things/world.h"

namespace iobt::diag {

struct HealthConfig {
  sim::Duration probe_period = sim::Duration::seconds(10.0);
  /// A peer is declared unreachable after this many consecutive silent
  /// probes.
  int silence_threshold = 3;
  /// RTT anomaly z-score that flags a degraded path.
  double rtt_anomaly_threshold = 4.0;
};

enum class PeerHealth { kHealthy, kDegraded, kUnreachable };

std::string to_string(PeerHealth h);

class HealthService {
 public:
  HealthService(things::World& world, net::Dispatcher& dispatcher,
                things::AssetId monitor, std::vector<things::AssetId> peers,
                HealthConfig config = {});

  void start();

  PeerHealth health(things::AssetId peer) const;
  /// Mean RTT seen for a peer (seconds); 0 if never answered.
  double mean_rtt_s(things::AssetId peer) const;
  std::size_t probes_sent() const { return probes_sent_; }
  std::size_t replies_received() const { return replies_; }

  /// Peers currently unreachable.
  std::vector<things::AssetId> unreachable_peers() const;

  // --- Scoring against ground truth (tests/benches only) ------------------

  /// Fraction of dead peers correctly marked unreachable.
  double detection_recall() const;
  /// Fraction of peers marked unreachable that are actually dead or
  /// genuinely partitioned from the monitor.
  double detection_precision() const;

 private:
  struct PeerState {
    int consecutive_silent = 0;
    bool awaiting = false;
    std::uint64_t last_seq = 0;
    sim::SimTime sent_at;
    EwmaDetector rtt_detector{0.2, 5};
    double last_rtt_score = 0.0;
    double rtt_sum = 0.0;
    std::size_t rtt_count = 0;
  };

  void tick();
  void handle_pong(const net::Message& m);

  things::World& world_;
  net::Dispatcher& disp_;
  things::AssetId monitor_;
  std::vector<things::AssetId> peers_;
  HealthConfig cfg_;
  std::unordered_map<things::AssetId, PeerState> state_;
  /// Lifetime token for the probe loop: the tick lambda holds a weak_ptr
  /// and unschedules itself once the service is destroyed, so the loop
  /// never probes through a dangling `this`.
  std::shared_ptr<char> alive_ = std::make_shared<char>('\0');
  std::uint64_t next_seq_ = 1;
  std::size_t probes_sent_ = 0;
  std::size_t replies_ = 0;
  bool started_ = false;
};

}  // namespace iobt::diag
