#pragma once
// In-network social sensing: human assets periodically report on the
// occupancy of grid cells around them; a collector fuses the claims with
// EM truth discovery and feeds estimated reliabilities into the trust
// registry ("fact-finding algorithms ... characterize reliability of
// sources ... and compute confidence in results", §III-A).

#include <vector>

#include "net/dispatcher.h"
#include "security/trust.h"
#include "social/claims.h"
#include "things/world.h"

namespace iobt::social {

struct SocialSensingConfig {
  /// Spatial resolution: the world is divided into cells x cells.
  std::size_t grid_cells = 10;
  /// How often each human looks around and reports.
  sim::Duration report_period = sim::Duration::seconds(20.0);
  /// Radius a human can credibly report about.
  double observation_radius_m = 150.0;
  /// Only targets of this kind count as "occupancy" (empty = any).
  std::string target_kind;
  std::size_t claim_window = 20000;
};

/// Claim payload carried in REPORT frames. One frame batches every cell
/// the reporter observed this tick.
struct CellReport {
  std::uint32_t source = 0;
  std::uint32_t cell = 0;
  bool occupied = false;
};

struct CellReportBatch {
  std::uint32_t source = 0;
  std::vector<std::pair<std::uint32_t, bool>> cells;  // (cell, occupied)
};

class SocialSensingService {
 public:
  SocialSensingService(things::World& world, net::Dispatcher& dispatcher,
                       things::AssetId collector,
                       std::vector<things::AssetId> reporters,
                       SocialSensingConfig config = {});

  /// Starts reporter loops.
  void start();

  /// Runs EM over the current claim window. Also refreshes trust scores
  /// for reporters from the estimated reliabilities.
  TruthDiscoveryResult fuse(security::TrustRegistry* trust = nullptr);

  /// Ground-truth occupancy per cell (scoring only).
  std::vector<bool> ground_truth_occupancy() const;

  std::size_t cell_count() const { return cfg_.grid_cells * cfg_.grid_cells; }
  std::uint32_t cell_of(sim::Vec2 p) const;
  std::size_t claims_received() const { return stream_.size(); }
  const std::vector<things::AssetId>& reporters() const { return reporters_; }

 private:
  void reporter_tick(things::AssetId reporter);

  things::World& world_;
  net::Dispatcher& disp_;
  things::AssetId collector_;
  std::vector<things::AssetId> reporters_;
  SocialSensingConfig cfg_;
  StreamingClaims stream_;
  /// reporter asset id -> dense source index for the EM matrix.
  std::unordered_map<things::AssetId, std::uint32_t> source_index_;
};

}  // namespace iobt::social
