#include "social/truth_discovery.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace iobt::social {

namespace {

/// Deduplicated report matrix: for each (source, variable) the last value.
struct Reports {
  // reports[j] = list of (source, value) for variable j.
  std::vector<std::vector<std::pair<std::uint32_t, bool>>> by_variable;
  // per-source count of claims (for reliability estimation denominators).
  std::vector<double> claims_per_source;

  Reports(const std::vector<Claim>& claims, std::size_t num_sources,
          std::size_t num_variables) {
    std::map<std::pair<std::uint32_t, std::uint32_t>, bool> last;
    for (const Claim& c : claims) {
      if (c.source < num_sources && c.variable < num_variables) {
        last[{c.source, c.variable}] = c.value;
      }
    }
    by_variable.resize(num_variables);
    claims_per_source.assign(num_sources, 0.0);
    for (const auto& [key, value] : last) {
      by_variable[key.second].push_back({key.first, value});
      claims_per_source[key.first] += 1.0;
    }
  }
};

}  // namespace

TruthDiscoveryResult em_truth_discovery(const std::vector<Claim>& claims,
                                        std::size_t num_sources,
                                        std::size_t num_variables,
                                        const EmOptions& opts) {
  TruthDiscoveryResult res;
  res.truth_probability.assign(num_variables, opts.prior_true);
  res.source_reliability.assign(num_sources, opts.initial_reliability);
  if (num_variables == 0 || num_sources == 0) {
    res.converged = true;
    return res;
  }

  const Reports rep(claims, num_sources, num_variables);

  // Per-source model: a_i = P(source says true | variable true),
  //                   b_i = P(source says true | variable false).
  std::vector<double> a(num_sources, opts.initial_reliability);
  std::vector<double> b(num_sources, 1.0 - opts.initial_reliability);
  double d = opts.prior_true;  // shared prior P(variable true)

  std::vector<double> z(num_variables, opts.prior_true);  // posterior truths

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    // ---- E-step: posterior of each variable given current rates.
    double max_delta = 0.0;
    for (std::size_t j = 0; j < num_variables; ++j) {
      if (rep.by_variable[j].empty()) {
        // No evidence: stay at the configured prior. Letting unreported
        // variables track the *estimated* prior d creates a degenerate
        // feedback loop (they follow d, then inflate d in the M-step).
        z[j] = opts.prior_true;
        continue;
      }
      // Work in log space for numerical stability with many sources.
      double log_true = std::log(std::max(d, 1e-12));
      double log_false = std::log(std::max(1.0 - d, 1e-12));
      for (const auto& [i, said_true] : rep.by_variable[j]) {
        const double ai = std::clamp(a[i], opts.rate_floor, 1.0 - opts.rate_floor);
        const double bi = std::clamp(b[i], opts.rate_floor, 1.0 - opts.rate_floor);
        log_true += std::log(said_true ? ai : 1.0 - ai);
        log_false += std::log(said_true ? bi : 1.0 - bi);
      }
      const double m = std::max(log_true, log_false);
      const double pt = std::exp(log_true - m);
      const double pf = std::exp(log_false - m);
      const double post = pt / (pt + pf);
      max_delta = std::max(max_delta, std::abs(post - z[j]));
      z[j] = post;
    }

    // ---- M-step: re-estimate a_i, b_i and the prior d.
    std::vector<double> said_true_and_true(num_sources, 0.0);
    std::vector<double> said_true_and_false(num_sources, 0.0);
    std::vector<double> observed_true(num_sources, 0.0);
    std::vector<double> observed_false(num_sources, 0.0);
    double total_true = 0.0;
    double reported_vars = 0.0;
    for (std::size_t j = 0; j < num_variables; ++j) {
      if (rep.by_variable[j].empty()) continue;  // see E-step note on prior drift
      total_true += z[j];
      reported_vars += 1.0;
      for (const auto& [i, said_true] : rep.by_variable[j]) {
        observed_true[i] += z[j];
        observed_false[i] += 1.0 - z[j];
        if (said_true) {
          said_true_and_true[i] += z[j];
          said_true_and_false[i] += 1.0 - z[j];
        }
      }
    }
    for (std::size_t i = 0; i < num_sources; ++i) {
      if (observed_true[i] > 1e-9) a[i] = said_true_and_true[i] / observed_true[i];
      if (observed_false[i] > 1e-9) b[i] = said_true_and_false[i] / observed_false[i];
      a[i] = std::clamp(a[i], opts.rate_floor, 1.0 - opts.rate_floor);
      b[i] = std::clamp(b[i], opts.rate_floor, 1.0 - opts.rate_floor);
    }
    d = reported_vars > 0.0 ? std::clamp(total_true / reported_vars, 0.01, 0.99)
                            : opts.prior_true;

    res.iterations = iter;
    if (max_delta < opts.tolerance) {
      res.converged = true;
      break;
    }
  }

  res.truth_probability = z;
  // Reliability = P(claim correct) under the estimated model: a source's
  // claim about a true variable is correct when it says true (a_i), about
  // a false variable when it says false (1 - b_i); weight by prior d.
  for (std::size_t i = 0; i < num_sources; ++i) {
    res.source_reliability[i] = d * a[i] + (1.0 - d) * (1.0 - b[i]);
  }
  return res;
}

std::vector<double> majority_vote(const std::vector<Claim>& claims,
                                  std::size_t num_variables) {
  std::vector<double> yes(num_variables, 0.0), total(num_variables, 0.0);
  for (const Claim& c : claims) {
    if (c.variable >= num_variables) continue;
    total[c.variable] += 1.0;
    if (c.value) yes[c.variable] += 1.0;
  }
  std::vector<double> out(num_variables, 0.5);
  for (std::size_t j = 0; j < num_variables; ++j) {
    if (total[j] > 0.0) out[j] = yes[j] / total[j];
  }
  return out;
}

std::vector<double> weighted_bayes(const std::vector<Claim>& claims,
                                   const std::vector<double>& reliability,
                                   std::size_t num_variables, double prior_true) {
  std::vector<double> log_odds(
      num_variables, std::log(prior_true / std::max(1e-12, 1.0 - prior_true)));
  for (const Claim& c : claims) {
    if (c.variable >= num_variables || c.source >= reliability.size()) continue;
    const double r = std::clamp(reliability[c.source], 0.01, 0.99);
    // A claim of `true` multiplies odds by r / (1 - r); `false` divides.
    const double delta = std::log(r / (1.0 - r));
    log_odds[c.variable] += c.value ? delta : -delta;
  }
  std::vector<double> out(num_variables);
  for (std::size_t j = 0; j < num_variables; ++j) {
    out[j] = 1.0 / (1.0 + std::exp(-log_odds[j]));
  }
  return out;
}

double decision_accuracy(const std::vector<double>& truth_probability,
                         const std::vector<bool>& ground_truth) {
  if (truth_probability.empty() || truth_probability.size() != ground_truth.size()) {
    return 0.0;
  }
  std::size_t correct = 0;
  for (std::size_t j = 0; j < ground_truth.size(); ++j) {
    if ((truth_probability[j] > 0.5) == ground_truth[j]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ground_truth.size());
}

}  // namespace iobt::social
