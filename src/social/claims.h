#pragma once
// Synthetic claim generation for truth-discovery experiments, and the
// streaming aggregator used by the in-network social sensing service.
//
// The generator draws a ground-truth assignment for the variables and
// simulates sources of mixed reliability: a source with reliability r
// reports the true value with probability r and the flipped value
// otherwise. Adversarial sources can be configured to lie *consistently*
// (coordinated misinformation), which is the hard case for voting.

#include <vector>

#include "sim/rng.h"
#include "social/truth_discovery.h"

namespace iobt::social {

struct ClaimGenConfig {
  std::size_t num_sources = 50;
  std::size_t num_variables = 100;
  /// Probability a given source observes (and reports on) a variable.
  double report_density = 0.3;
  /// Reliability range for honest sources (uniform draw).
  double honest_reliability_min = 0.7;
  double honest_reliability_max = 0.95;
  /// Fraction of sources that are adversarial.
  double adversary_fraction = 0.0;
  /// Adversaries report the *opposite* of truth with this probability
  /// (1.0 = perfectly inverted sources, the worst case for voting).
  double adversary_lie_probability = 0.9;
  /// Prior P(variable true) used to draw ground truth.
  double prior_true = 0.3;
};

struct GeneratedClaims {
  std::vector<Claim> claims;
  std::vector<bool> ground_truth;          // per variable
  std::vector<double> true_reliability;    // per source: P(claim correct)
  std::vector<bool> is_adversary;          // per source
};

inline GeneratedClaims generate_claims(const ClaimGenConfig& cfg, sim::Rng& rng) {
  GeneratedClaims g;
  g.ground_truth.resize(cfg.num_variables);
  for (std::size_t j = 0; j < cfg.num_variables; ++j) {
    g.ground_truth[j] = rng.bernoulli(cfg.prior_true);
  }
  g.true_reliability.resize(cfg.num_sources);
  g.is_adversary.resize(cfg.num_sources);
  for (std::size_t i = 0; i < cfg.num_sources; ++i) {
    g.is_adversary[i] = rng.bernoulli(cfg.adversary_fraction);
    g.true_reliability[i] =
        g.is_adversary[i]
            ? 1.0 - cfg.adversary_lie_probability
            : rng.uniform(cfg.honest_reliability_min, cfg.honest_reliability_max);
  }
  for (std::size_t i = 0; i < cfg.num_sources; ++i) {
    for (std::size_t j = 0; j < cfg.num_variables; ++j) {
      if (!rng.bernoulli(cfg.report_density)) continue;
      const bool truth = g.ground_truth[j];
      const bool correct = rng.bernoulli(g.true_reliability[i]);
      g.claims.push_back({static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j), correct ? truth : !truth});
    }
  }
  return g;
}

/// Sliding-window claim store for streaming truth discovery: keeps the
/// most recent claims (by insertion order) up to a capacity, re-running EM
/// on demand. Matches the "parallel and streaming truth discovery" line of
/// work (ref [4]).
class StreamingClaims {
 public:
  explicit StreamingClaims(std::size_t capacity = 10000) : capacity_(capacity) {}

  void add(Claim c) {
    claims_.push_back(c);
    if (claims_.size() > capacity_) {
      claims_.erase(claims_.begin(),
                    claims_.begin() + static_cast<std::ptrdiff_t>(claims_.size() - capacity_));
    }
  }

  const std::vector<Claim>& window() const { return claims_; }
  std::size_t size() const { return claims_.size(); }
  void clear() { claims_.clear(); }

  TruthDiscoveryResult run_em(std::size_t num_sources, std::size_t num_variables,
                              const EmOptions& opts = {}) const {
    return em_truth_discovery(claims_, num_sources, num_variables, opts);
  }

 private:
  std::size_t capacity_;
  std::vector<Claim> claims_;
};

}  // namespace iobt::social
