#include "social/service.h"

#include <cmath>

namespace iobt::social {

namespace {
constexpr const char* kReport = "social.report";
constexpr std::size_t kReportBytes = 40;
}  // namespace

SocialSensingService::SocialSensingService(things::World& world,
                                           net::Dispatcher& dispatcher,
                                           things::AssetId collector,
                                           std::vector<things::AssetId> reporters,
                                           SocialSensingConfig config)
    : world_(world),
      disp_(dispatcher),
      collector_(collector),
      reporters_(std::move(reporters)),
      cfg_(config),
      stream_(config.claim_window) {
  for (std::size_t i = 0; i < reporters_.size(); ++i) {
    source_index_[reporters_[i]] = static_cast<std::uint32_t>(i);
  }
  disp_.on(world_.asset(collector_).node, kReport, [this](const net::Message& m) {
    // Accept both single reports (external senders) and batches.
    if (const auto* batch = std::any_cast<CellReportBatch>(&m.payload)) {
      auto it = source_index_.find(batch->source);
      if (it == source_index_.end()) return;  // unregistered source: ignore
      for (const auto& [cell, occupied] : batch->cells) {
        stream_.add(Claim{it->second, cell, occupied});
      }
      return;
    }
    if (const auto* r = std::any_cast<CellReport>(&m.payload)) {
      auto it = source_index_.find(r->source);
      if (it == source_index_.end()) return;
      stream_.add(Claim{it->second, r->cell, r->occupied});
    }
  });
}

std::uint32_t SocialSensingService::cell_of(sim::Vec2 p) const {
  const sim::Rect area = world_.area();
  const double fx = (p.x - area.min.x) / std::max(1e-9, area.width());
  const double fy = (p.y - area.min.y) / std::max(1e-9, area.height());
  const auto n = static_cast<std::uint32_t>(cfg_.grid_cells);
  const auto cx = std::min(n - 1, static_cast<std::uint32_t>(fx * n));
  const auto cy = std::min(n - 1, static_cast<std::uint32_t>(fy * n));
  return cy * n + cx;
}

void SocialSensingService::start() {
  const sim::TagId report_tag =
      world_.simulator().intern("social.report_loop");
  for (const auto r : reporters_) {
    world_.simulator().schedule_every(
        cfg_.report_period,
        [this, r]() {
          if (!world_.asset_live(r)) return false;
          reporter_tick(r);
          return true;
        },
        report_tag);
  }
}

void SocialSensingService::reporter_tick(things::AssetId reporter) {
  const things::Asset& human = world_.asset(reporter);
  const sim::Vec2 at = world_.asset_position(reporter);
  const sim::SimTime now = world_.simulator().now();
  sim::Rng rng = world_.rng().child(0x50C1A100ULL + reporter)
                     .child(static_cast<std::uint64_t>(now.nanos()));

  // Ground truth occupancy per cell, restricted to the report kind.
  std::vector<bool> occ(cell_count(), false);
  for (const auto& [tid, pos] : world_.active_target_positions()) {
    if (!cfg_.target_kind.empty() && world_.target(tid).kind != cfg_.target_kind) {
      continue;
    }
    occ[cell_of(pos)] = true;
  }

  // The human reports on EVERY cell whose center they can observe, not
  // just their own — overlapping coverage across reporters is what makes
  // coordinated liars statistically identifiable (a source that only ever
  // reports on cells nobody else sees is unfalsifiable).
  const sim::Rect area = world_.area();
  const auto n = cfg_.grid_cells;
  std::vector<std::pair<std::uint32_t, bool>> reports;
  for (std::uint32_t cy = 0; cy < n; ++cy) {
    for (std::uint32_t cx = 0; cx < n; ++cx) {
      const sim::Vec2 center{
          area.min.x + (cx + 0.5) * area.width() / static_cast<double>(n),
          area.min.y + (cy + 0.5) * area.height() / static_cast<double>(n)};
      if (sim::distance(at, center) > cfg_.observation_radius_m) continue;
      const std::uint32_t cell = cy * static_cast<std::uint32_t>(n) + cx;
      // Correct with the human's ground-truth reliability — this models
      // perception error, bias, and deliberate deception alike.
      const bool truth = occ[cell];
      reports.push_back(
          {cell, rng.bernoulli(human.report_reliability) ? truth : !truth});
    }
  }
  if (reports.empty()) return;

  net::Message m;
  m.kind = kReport;
  m.size_bytes = kReportBytes + 4 * reports.size();
  m.payload = CellReportBatch{reporter, std::move(reports)};
  // Humans may be multiple hops from the collector.
  world_.network().route_and_send(human.node, world_.asset(collector_).node,
                                  std::move(m));
}

TruthDiscoveryResult SocialSensingService::fuse(security::TrustRegistry* trust) {
  auto result = stream_.run_em(reporters_.size(), cell_count());
  if (trust) {
    for (const auto& [asset_id, idx] : source_index_) {
      // Convert estimated reliability into trust evidence: one weighted
      // observation per fusion round.
      const double r = result.source_reliability[idx];
      trust->record(asset_id, r >= 0.5, std::abs(r - 0.5) * 2.0);
    }
  }
  return result;
}

std::vector<bool> SocialSensingService::ground_truth_occupancy() const {
  std::vector<bool> occ(cell_count(), false);
  for (const auto& [tid, pos] : world_.active_target_positions()) {
    if (!cfg_.target_kind.empty() && world_.target(tid).kind != cfg_.target_kind) {
      continue;
    }
    occ[cell_of(pos)] = true;
  }
  return occ;
}

}  // namespace iobt::social
