#pragma once
// Truth discovery from unreliable human (and device) claims.
//
// Implements the estimation-theoretic social-sensing model of the paper's
// refs [1-4] (Wang et al.): binary latent variables ("is there a hazard in
// cell j?"), sources with unknown reliability, and maximum-likelihood
// estimation via EM. The E-step computes posterior truth probabilities
// given per-source true/false-positive rates; the M-step re-estimates the
// rates from the expected assignments. Majority voting and a
// known-reliability Bayesian fuser are provided as the baseline and the
// oracle bound for experiment E3.

#include <cstdint>
#include <vector>

namespace iobt::social {

/// One claim: `source` asserts that binary `variable` has `value`.
/// Sources only report positives in many crowd-sensing settings; this
/// implementation supports both explicit positive and negative claims.
struct Claim {
  std::uint32_t source = 0;
  std::uint32_t variable = 0;
  bool value = true;
};

struct EmOptions {
  int max_iterations = 100;
  double tolerance = 1e-6;
  /// Initial per-source correctness probability.
  double initial_reliability = 0.8;
  /// Prior probability that a variable is true.
  double prior_true = 0.5;
  /// Clamp for estimated rates, keeping EM away from degenerate 0/1.
  double rate_floor = 0.01;
};

struct TruthDiscoveryResult {
  /// Posterior P(variable j is true), per variable.
  std::vector<double> truth_probability;
  /// Estimated per-source reliability: P(source's claim is correct).
  std::vector<double> source_reliability;
  int iterations = 0;
  bool converged = false;

  /// Hard decisions at threshold 0.5.
  std::vector<bool> decisions() const {
    std::vector<bool> d(truth_probability.size());
    for (std::size_t j = 0; j < d.size(); ++j) d[j] = truth_probability[j] > 0.5;
    return d;
  }
};

/// EM truth discovery. `claims` may contain multiple claims per
/// (source, variable); later claims overwrite earlier ones.
TruthDiscoveryResult em_truth_discovery(const std::vector<Claim>& claims,
                                        std::size_t num_sources,
                                        std::size_t num_variables,
                                        const EmOptions& opts = {});

/// Baseline: per-variable fraction of positive claims (>=0.5 -> true).
std::vector<double> majority_vote(const std::vector<Claim>& claims,
                                  std::size_t num_variables);

/// Oracle bound: Bayesian fusion with *known* per-source reliabilities.
/// reliability[i] = P(source i reports the true value).
std::vector<double> weighted_bayes(const std::vector<Claim>& claims,
                                   const std::vector<double>& reliability,
                                   std::size_t num_variables,
                                   double prior_true = 0.5);

/// Scoring helper for experiments: fraction of variables whose hard
/// decision matches ground truth.
double decision_accuracy(const std::vector<double>& truth_probability,
                         const std::vector<bool>& ground_truth);

}  // namespace iobt::social
