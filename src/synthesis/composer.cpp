#include "synthesis/composer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "trace/trace.h"

namespace iobt::synthesis {

namespace {

/// Cells a sensing requirement needs covered to meet its fraction.
std::size_t needed_cells(const SensingRequirement& r) {
  const std::size_t total = r.grid_resolution * r.grid_resolution;
  return static_cast<std::size_t>(
      std::ceil(r.coverage_fraction * static_cast<double>(total) - 1e-9));
}

sim::Vec2 cell_center(const SensingRequirement& r, std::size_t cell) {
  const std::size_t res = r.grid_resolution;
  const std::size_t cx = cell % res, cy = cell / res;
  return {r.region.min.x + (static_cast<double>(cx) + 0.5) * r.region.width() /
                               static_cast<double>(res),
          r.region.min.y + (static_cast<double>(cy) + 0.5) * r.region.height() /
                               static_cast<double>(res)};
}

/// Relative weights making actuation/compute commensurable with cells in
/// the greedy gain function.
constexpr double kActuatorGain = 5.0;
constexpr double kComputeGainScale = 5.0;

}  // namespace

Composer::Composer(const MissionSpec& spec, std::vector<Candidate> candidates,
                   std::function<int(std::size_t)> reach_hops)
    : spec_(spec), candidates_(std::move(candidates)), reach_hops_(std::move(reach_hops)) {
  // Assembly phase 1: admission + coverage precompute. The Composer is a
  // pure algorithm with no Simulator, so spans go to the thread's ambient
  // tracer (installed by Simulator::step or a bench's ScopedUse).
  IOBT_TRACE_SCOPE("synthesis.prepare", "synthesis");
  // Admission gates: trust and comms reach.
  hops_.resize(candidates_.size(), -1);
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    hops_[i] = reach_hops_ ? reach_hops_(i) : 0;
    if (candidates_[i].trust < spec_.min_member_trust) continue;
    if (hops_[i] < 0 || hops_[i] > spec_.comms.max_hops) continue;
    admissible_.push_back(i);
  }

  // Precompute the coverage relation candidate x cell per requirement.
  cover_.cell_count.resize(spec_.sensing.size());
  cover_.covers.resize(spec_.sensing.size());
  for (std::size_t r = 0; r < spec_.sensing.size(); ++r) {
    const auto& req = spec_.sensing[r];
    const std::size_t cells = req.grid_resolution * req.grid_resolution;
    cover_.cell_count[r] = cells;
    cover_.covers[r].assign(candidates_.size(), {});
    for (std::size_t i : admissible_) {
      const Candidate& c = candidates_[i];
      // Best matching sensor for this requirement.
      double best_range = -1.0;
      for (const auto& s : c.sensors) {
        if (s.modality == req.modality && s.quality >= req.min_quality) {
          best_range = std::max(best_range, s.range_m);
        }
      }
      if (best_range < 0.0) continue;
      for (std::size_t cell = 0; cell < cells; ++cell) {
        if (sim::distance(c.position, cell_center(req, cell)) <= best_range) {
          cover_.covers[r][i].push_back(cell);
        }
      }
    }
  }
}

double Composer::marginal_gain(std::size_t cand,
                               const std::vector<std::vector<bool>>& covered,
                               const std::vector<std::size_t>& still_needed_cells,
                               const std::vector<std::size_t>& actuation_deficit,
                               double compute_deficit) const {
  ++evaluations_;
  const Candidate& c = candidates_[cand];
  double gain = 0.0;
  for (std::size_t r = 0; r < spec_.sensing.size(); ++r) {
    if (still_needed_cells[r] == 0) continue;
    std::size_t newly = 0;
    for (std::size_t cell : cover_.covers[r][cand]) {
      if (!covered[r][cell]) ++newly;
    }
    gain += static_cast<double>(std::min(newly, still_needed_cells[r]));
  }
  for (std::size_t a = 0; a < spec_.actuation.size(); ++a) {
    if (actuation_deficit[a] == 0) continue;
    const auto& req = spec_.actuation[a];
    if (!req.region.contains(c.position)) continue;
    for (const auto& act : c.actuators) {
      if (act.kind == req.kind) {
        gain += kActuatorGain;
        break;
      }
    }
  }
  if (compute_deficit > 0.0 && spec_.compute.total_flops > 0.0) {
    gain += kComputeGainScale * std::min(c.compute.flops, compute_deficit) /
            spec_.compute.total_flops;
  }
  return gain;
}

Composite Composer::greedy() {
  IOBT_TRACE_SCOPE("synthesis.greedy", "synthesis");
  Composite out;
  std::vector<std::vector<bool>> covered(spec_.sensing.size());
  std::vector<std::size_t> still_needed(spec_.sensing.size());
  for (std::size_t r = 0; r < spec_.sensing.size(); ++r) {
    covered[r].assign(cover_.cell_count[r], false);
    still_needed[r] = needed_cells(spec_.sensing[r]);
  }
  std::vector<std::size_t> act_deficit(spec_.actuation.size());
  for (std::size_t a = 0; a < spec_.actuation.size(); ++a) {
    act_deficit[a] = spec_.actuation[a].count;
  }
  double compute_deficit = spec_.compute.total_flops;

  std::vector<bool> selected(candidates_.size(), false);
  while (true) {
    // Done when every requirement is satisfied.
    bool done = compute_deficit <= 0.0;
    for (std::size_t r = 0; r < still_needed.size() && done; ++r) {
      done = still_needed[r] == 0;
    }
    for (std::size_t a = 0; a < act_deficit.size() && done; ++a) {
      done = act_deficit[a] == 0;
    }
    if (done) break;

    std::size_t best = candidates_.size();
    double best_ratio = 0.0;
    for (std::size_t i : admissible_) {
      if (selected[i]) continue;
      const double g =
          marginal_gain(i, covered, still_needed, act_deficit, compute_deficit);
      if (g <= 0.0) continue;
      const double ratio = g / std::max(1e-9, candidates_[i].cost);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    if (best == candidates_.size()) break;  // no candidate helps: stuck

    // Commit the pick.
    selected[best] = true;
    out.member_indices.push_back(best);
    const Candidate& c = candidates_[best];
    for (std::size_t r = 0; r < spec_.sensing.size(); ++r) {
      for (std::size_t cell : cover_.covers[r][best]) {
        if (!covered[r][cell]) {
          covered[r][cell] = true;
          if (still_needed[r] > 0) --still_needed[r];
        }
      }
    }
    for (std::size_t a = 0; a < spec_.actuation.size(); ++a) {
      if (act_deficit[a] == 0 || !spec_.actuation[a].region.contains(c.position)) {
        continue;
      }
      for (const auto& act : c.actuators) {
        if (act.kind == spec_.actuation[a].kind) {
          --act_deficit[a];
          break;
        }
      }
    }
    compute_deficit -= c.compute.flops;
  }
  finalize(out);
  return out;
}

Composite Composer::local_search() {
  IOBT_TRACE_SCOPE("synthesis.local_search", "synthesis");
  Composite cur = greedy();
  if (!cur.assurance.meets_spec) return cur;  // nothing to polish

  // Pass 1: eliminate redundant members, most expensive first.
  std::vector<std::size_t> order = cur.member_indices;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return candidates_[a].cost > candidates_[b].cost;
  });
  for (std::size_t victim : order) {
    std::vector<std::size_t> trial;
    for (std::size_t m : cur.member_indices) {
      if (m != victim) trial.push_back(m);
    }
    const Assurance a = evaluate(trial);
    cur.evaluations = evaluations_;
    if (a.meets_spec) {
      cur.member_indices = std::move(trial);
      cur.assurance = a;
    }
  }

  // Pass 2: 1-swap descent — replace a member with a cheaper non-member.
  bool improved = true;
  int rounds = 0;
  while (improved && rounds++ < 3) {
    improved = false;
    for (std::size_t mi = 0; mi < cur.member_indices.size(); ++mi) {
      const std::size_t old = cur.member_indices[mi];
      for (std::size_t cand : admissible_) {
        if (candidates_[cand].cost >= candidates_[old].cost) continue;
        bool already = false;
        for (std::size_t m : cur.member_indices) already |= (m == cand);
        if (already) continue;
        auto trial = cur.member_indices;
        trial[mi] = cand;
        const Assurance a = evaluate(trial);
        if (a.meets_spec) {
          cur.member_indices = std::move(trial);
          cur.assurance = a;
          improved = true;
          break;
        }
      }
    }
  }
  finalize(cur);
  return cur;
}

Composite Composer::exact() {
  IOBT_TRACE_SCOPE("synthesis.exact", "synthesis");
  // Branch & bound over admissible candidates, minimizing total cost.
  // Exponential: guarded to small instances; callers wanting scale use
  // greedy/local-search.
  if (admissible_.size() > 26) return local_search();

  std::vector<std::size_t> order = admissible_;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return candidates_[a].cost < candidates_[b].cost;
  });

  std::vector<std::size_t> best_set;
  double best_cost = std::numeric_limits<double>::infinity();
  {
    // Seed the bound with the greedy solution.
    Composite g = local_search();
    if (g.assurance.meets_spec) {
      best_set = g.member_indices;
      best_cost = 0.0;
      for (std::size_t m : g.member_indices) best_cost += candidates_[m].cost;
    }
  }

  std::vector<std::size_t> current;
  double current_cost = 0.0;
  std::function<void(std::size_t)> dfs = [&](std::size_t depth) {
    if (current_cost >= best_cost) return;  // bound
    const Assurance a = evaluate(current);
    if (a.meets_spec) {
      best_cost = current_cost;
      best_set = current;
      return;  // adding more only raises cost
    }
    if (depth == order.size()) return;
    // Branch: include order[depth], then exclude it.
    current.push_back(order[depth]);
    current_cost += candidates_[order[depth]].cost;
    dfs(depth + 1);
    current.pop_back();
    current_cost -= candidates_[order[depth]].cost;
    dfs(depth + 1);
  };
  dfs(0);

  Composite out;
  out.member_indices = best_set;
  finalize(out);
  return out;
}

Composite Composer::compose(Solver solver) {
  IOBT_TRACE_SCOPE("synthesis.compose", "synthesis");
  evaluations_ = 0;
  switch (solver) {
    case Solver::kGreedy: return greedy();
    case Solver::kLocalSearch: return local_search();
    case Solver::kExact: return exact();
  }
  return greedy();
}

Composite Composer::repair(const Composite& damaged,
                           const std::vector<std::uint32_t>& lost_assets) {
  IOBT_TRACE_SCOPE("synthesis.repair", "synthesis");
  evaluations_ = 0;
  // Drop lost members, then greedily extend until feasible again.
  std::vector<std::size_t> members;
  for (std::size_t m : damaged.member_indices) {
    bool lost = false;
    for (std::uint32_t la : lost_assets) lost |= (candidates_[m].asset == la);
    if (!lost) members.push_back(m);
  }

  std::vector<bool> selected(candidates_.size(), false);
  for (std::size_t m : members) selected[m] = true;
  // Lost assets are dead: never re-recruit them.
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    for (std::uint32_t la : lost_assets) {
      if (candidates_[i].asset == la) selected[i] = true;
    }
  }

  while (true) {
    const Assurance a = evaluate(members);
    if (a.meets_spec) break;
    // Rebuild deficit state from the assurance.
    std::vector<std::vector<bool>> covered(spec_.sensing.size());
    std::vector<std::size_t> still_needed(spec_.sensing.size());
    for (std::size_t r = 0; r < spec_.sensing.size(); ++r) {
      covered[r].assign(cover_.cell_count[r], false);
      for (std::size_t m : members) {
        for (std::size_t cell : cover_.covers[r][m]) covered[r][cell] = true;
      }
      std::size_t have = 0;
      for (bool b : covered[r]) have += b ? 1 : 0;
      const std::size_t need = needed_cells(spec_.sensing[r]);
      still_needed[r] = have >= need ? 0 : need - have;
    }
    std::vector<std::size_t> act_deficit(spec_.actuation.size());
    for (std::size_t i = 0; i < spec_.actuation.size(); ++i) {
      act_deficit[i] = a.actuation_counts[i] >= spec_.actuation[i].count
                           ? 0
                           : spec_.actuation[i].count - a.actuation_counts[i];
    }
    const double compute_deficit = spec_.compute.total_flops - a.total_flops;

    std::size_t best = candidates_.size();
    double best_ratio = 0.0;
    for (std::size_t i : admissible_) {
      if (selected[i]) continue;
      const double g =
          marginal_gain(i, covered, still_needed, act_deficit, compute_deficit);
      if (g <= 0.0) continue;
      const double ratio = g / std::max(1e-9, candidates_[i].cost);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    if (best == candidates_.size()) break;  // cannot repair further
    selected[best] = true;
    members.push_back(best);
  }

  Composite out;
  out.member_indices = std::move(members);
  finalize(out);
  return out;
}

Assurance Composer::evaluate(const std::vector<std::size_t>& members) const {
  ++evaluations_;
  Assurance a;
  a.sensing_coverage.resize(spec_.sensing.size(), 0.0);
  for (std::size_t r = 0; r < spec_.sensing.size(); ++r) {
    std::vector<bool> covered(cover_.cell_count[r], false);
    for (std::size_t m : members) {
      for (std::size_t cell : cover_.covers[r][m]) covered[cell] = true;
    }
    std::size_t have = 0;
    for (bool b : covered) have += b ? 1 : 0;
    a.sensing_coverage[r] =
        static_cast<double>(have) / static_cast<double>(cover_.cell_count[r]);
  }
  a.actuation_counts.resize(spec_.actuation.size(), 0);
  for (std::size_t i = 0; i < spec_.actuation.size(); ++i) {
    const auto& req = spec_.actuation[i];
    for (std::size_t m : members) {
      const Candidate& c = candidates_[m];
      if (!req.region.contains(c.position)) continue;
      for (const auto& act : c.actuators) {
        if (act.kind == req.kind) {
          ++a.actuation_counts[i];
          break;
        }
      }
    }
  }
  security::RiskInputs risk_in;
  std::size_t uncertified = 0, fragile = 0;
  for (std::size_t m : members) {
    const Candidate& c = candidates_[m];
    a.total_flops += c.compute.flops;
    a.total_memory += c.compute.memory_bytes;
    a.max_hops = std::max(a.max_hops, hops_[m]);
    risk_in.member_trust.push_back(c.trust);
    if (!c.certified) ++uncertified;
    // Connectivity fragility: members at (or past) the hop budget's edge
    // are one topology change away from falling out of the mission.
    if (hops_[m] + 1 >= spec_.comms.max_hops) ++fragile;
  }
  if (!members.empty()) {
    risk_in.uncertified_fraction =
        static_cast<double>(uncertified) / static_cast<double>(members.size());
    // Scaled: borderline connectivity is a partial, not certain, loss.
    risk_in.spof_fraction =
        0.5 * static_cast<double>(fragile) / static_cast<double>(members.size());
  }
  a.risk = security::assess_risk(risk_in);

  bool ok = !members.empty();
  for (std::size_t r = 0; r < spec_.sensing.size(); ++r) {
    const std::size_t need = needed_cells(spec_.sensing[r]);
    std::size_t have = static_cast<std::size_t>(
        std::round(a.sensing_coverage[r] * static_cast<double>(cover_.cell_count[r])));
    ok &= have >= need;
  }
  for (std::size_t i = 0; i < spec_.actuation.size(); ++i) {
    ok &= a.actuation_counts[i] >= spec_.actuation[i].count;
  }
  ok &= a.total_flops >= spec_.compute.total_flops;
  ok &= a.total_memory >= spec_.compute.total_memory_bytes;
  ok &= a.risk.residual_risk <= spec_.max_residual_risk;
  a.meets_spec = ok;
  return a;
}

void Composer::finalize(Composite& c) const {
  IOBT_TRACE_SCOPE("synthesis.finalize", "synthesis");
  std::sort(c.member_indices.begin(), c.member_indices.end());
  c.member_assets.clear();
  for (std::size_t m : c.member_indices) {
    c.member_assets.push_back(candidates_[m].asset);
  }
  c.assurance = evaluate(c.member_indices);
  c.evaluations = evaluations_;
}

std::vector<Candidate> candidates_from_world(const things::World& world,
                                             const security::TrustRegistry* trust) {
  std::vector<Candidate> out;
  for (const auto& a : world.assets()) {
    if (!world.asset_live(a.id)) continue;
    Candidate c;
    c.asset = a.id;
    c.position = world.asset_position(a.id);
    c.sensors = a.sensors;
    c.actuators = a.actuators;
    c.compute = a.compute;
    c.trust = trust ? trust->score(a.id) : 1.0;
    c.certified = a.affiliation == things::Affiliation::kBlue &&
                  a.device_class != things::DeviceClass::kSmartphone &&
                  a.device_class != things::DeviceClass::kHuman;
    switch (a.device_class) {
      case things::DeviceClass::kEdgeServer: c.cost = 5.0; break;
      case things::DeviceClass::kVehicle: c.cost = 4.0; break;
      case things::DeviceClass::kDrone:
      case things::DeviceClass::kGroundRobot: c.cost = 3.0; break;
      case things::DeviceClass::kHuman: c.cost = 2.0; break;
      default: c.cost = 1.0; break;
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace iobt::synthesis
