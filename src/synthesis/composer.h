#pragma once
// Composition: recruiting a subset of discovered assets into a composite
// that satisfies a MissionSpec, with quantified assurance (§III-B).
//
// The optimization problem is a multi-constraint weighted set cover
// (NP-hard); three solvers with different cost/quality points are
// provided, matching the paper's call for "clever solutions ... to address
// tractability":
//   * Greedy      — marginal-gain set cover; O(candidates * cells), the
//                   only option at 10^4-node scale.
//   * LocalSearch — greedy + redundant-member elimination and 1-swap
//                   descent; better composites for medium scale.
//   * Exact       — branch & bound on the member count; small instances
//                   only, used to measure the greedy optimality gap.

#include <functional>
#include <optional>
#include <vector>

#include "net/topology.h"
#include "security/risk.h"
#include "security/trust.h"
#include "synthesis/mission.h"
#include "things/world.h"

namespace iobt::synthesis {

/// A recruitable asset as the composer sees it: claims plus trust. Build
/// these from the discovery directory (operational path) or from the
/// world (oracle path for tests/benches).
struct Candidate {
  std::uint32_t asset = 0;
  sim::Vec2 position;
  std::vector<things::SenseCapability> sensors;
  std::vector<things::ActuateCapability> actuators;
  things::ComputeProfile compute;
  double trust = 1.0;
  /// Purpose-built military device (vs commercial/gray; drives the
  /// provenance component of risk).
  bool certified = true;
  /// Recruitment cost (energy/opportunity); greedy minimizes total cost.
  double cost = 1.0;
};

/// Everything the composer asserts about its output (§III: "aggregate
/// properties of the composite ... must be formally assured in an
/// appropriately quantifiable and operationally relevant manner").
struct Assurance {
  /// Achieved coverage per sensing requirement, aligned with spec.sensing.
  std::vector<double> sensing_coverage;
  /// Achieved actuator counts per actuation requirement.
  std::vector<std::size_t> actuation_counts;
  double total_flops = 0.0;
  double total_memory = 0.0;
  /// Worst member->sink hop distance (-1 if some member unreachable).
  int max_hops = 0;
  security::RiskReport risk;
  bool meets_spec = false;
};

struct Composite {
  std::vector<std::size_t> member_indices;  // into the candidate vector
  std::vector<std::uint32_t> member_assets; // candidate.asset for members
  Assurance assurance;
  /// Number of candidate evaluations performed (work metric for E1).
  std::uint64_t evaluations = 0;
};

enum class Solver { kGreedy, kLocalSearch, kExact };

class Composer {
 public:
  /// `reach_hops(candidate_index)` must return the hop distance from that
  /// candidate to the mission sink on the current network (-1 if
  /// unreachable). Candidates out of comms range are never recruited.
  Composer(const MissionSpec& spec, std::vector<Candidate> candidates,
           std::function<int(std::size_t)> reach_hops);

  /// Runs the chosen solver. Always returns a composite (possibly
  /// infeasible — check assurance.meets_spec).
  Composite compose(Solver solver = Solver::kGreedy);

  /// Re-synthesis after damage: removes lost members and greedily patches
  /// the gaps with remaining candidates. Far cheaper than recomposing.
  Composite repair(const Composite& damaged,
                   const std::vector<std::uint32_t>& lost_assets);

  /// Evaluates the assurance of an arbitrary member set (public so tests
  /// and ablations can score hand-built composites).
  Assurance evaluate(const std::vector<std::size_t>& members) const;

  const std::vector<Candidate>& candidates() const { return candidates_; }
  /// Indices of candidates admissible under trust/comms gates.
  const std::vector<std::size_t>& admissible() const { return admissible_; }

 private:
  struct CellCover {
    // For sensing requirement r, cells_[r] has grid_resolution^2 entries;
    // covers_[r][i] lists the cell ids candidate i covers.
    std::vector<std::size_t> cell_count;
    std::vector<std::vector<std::vector<std::size_t>>> covers;  // [req][cand]
  };

  Composite greedy();
  Composite local_search();
  Composite exact();
  void finalize(Composite& c) const;

  double marginal_gain(std::size_t cand,
                       const std::vector<std::vector<bool>>& covered,
                       const std::vector<std::size_t>& still_needed_cells,
                       const std::vector<std::size_t>& actuation_deficit,
                       double compute_deficit) const;

  MissionSpec spec_;
  std::vector<Candidate> candidates_;
  std::function<int(std::size_t)> reach_hops_;
  std::vector<std::size_t> admissible_;
  std::vector<int> hops_;  // cached reach for each candidate
  CellCover cover_;
  mutable std::uint64_t evaluations_ = 0;
};

/// Builds composer candidates from ground truth (oracle path). `trust`
/// may be null (all candidates fully trusted).
std::vector<Candidate> candidates_from_world(const things::World& world,
                                             const security::TrustRegistry* trust);

}  // namespace iobt::synthesis
