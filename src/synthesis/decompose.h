#pragma once
// Hierarchical problem decomposition for synthesis tractability (§III-B:
// "clever solutions must be developed to address tractability. They may
// include a judicious choice of constraints to reduce search space, or
// perhaps a hierarchical problem decomposition that exploits independence
// relations between subproblems").
//
// The sensing requirements of a mission over a large region decompose
// spatially: a candidate can only cover cells near itself, so splitting
// the region into a k x k grid of tiles yields near-independent
// subproblems (candidates near tile borders appear in both neighbours —
// the overlap preserves feasibility at a small duplication cost).
// Aggregate requirements (compute, actuation counts) are solved once on
// the merged composite. The result trades a bounded amount of solution
// cost for solving k^2 problems of 1/k^2 the size — and those subproblems
// can in principle run on different staff cells in parallel.

#include "synthesis/composer.h"

namespace iobt::synthesis {

struct DecomposedResult {
  Composite composite;
  /// Candidate evaluations summed over all subproblems (the work metric).
  std::uint64_t total_evaluations = 0;
  /// Largest single subproblem's evaluations — the parallel critical path.
  std::uint64_t critical_path_evaluations = 0;
  std::size_t subproblems = 0;
};

/// Composes `spec` by splitting every sensing requirement's region into a
/// `tiles` x `tiles` grid and solving each tile independently with the
/// greedy solver, then topping up aggregate (compute/actuation)
/// requirements greedily on the merged member set. `reach_hops` as in
/// Composer. The returned composite's assurance is evaluated against the
/// ORIGINAL spec.
DecomposedResult compose_decomposed(const MissionSpec& spec,
                                    const std::vector<Candidate>& candidates,
                                    const std::function<int(std::size_t)>& reach_hops,
                                    std::size_t tiles);

}  // namespace iobt::synthesis
