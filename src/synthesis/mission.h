#pragma once
// Mission specification: the typed requirement vocabulary that synthesis
// reduces goals into (§III-B: "automatic reasoning from goals to means to
// derive requirements and constraints from high-level goal
// specifications").

#include <string>
#include <vector>

#include "sim/geometry.h"
#include "sim/time.h"
#include "things/capability.h"

namespace iobt::synthesis {

/// "Cover `coverage_fraction` of `region` with `modality` sensing of at
/// least `min_quality`". Coverage is evaluated on a grid of
/// `grid_resolution` x `grid_resolution` cells over the region.
struct SensingRequirement {
  things::Modality modality = things::Modality::kCamera;
  sim::Rect region;
  double coverage_fraction = 0.9;
  double min_quality = 0.5;
  std::size_t grid_resolution = 10;
};

/// "At least `count` actuators of `kind` inside `region`."
struct ActuationRequirement {
  things::ActuationKind kind = things::ActuationKind::kRelay;
  sim::Rect region;
  std::size_t count = 1;
};

/// Aggregate compute the composite must muster (for in-network analytics).
struct ComputeRequirement {
  double total_flops = 0.0;
  double total_memory_bytes = 0.0;
};

/// Communications constraints: every member must reach the sink within
/// `max_hops` network hops (a proxy for the latency requirement derived
/// from the goal's decision-loop deadline).
struct CommsRequirement {
  int max_hops = 8;
};

struct MissionSpec {
  std::string name;
  std::vector<SensingRequirement> sensing;
  std::vector<ActuationRequirement> actuation;
  ComputeRequirement compute;
  CommsRequirement comms;

  /// Admission: candidates below this trust score are not recruited.
  double min_member_trust = 0.4;
  /// Assurance: synthesized composites with residual risk above this are
  /// reported infeasible ("quantifiable and operationally relevant").
  double max_residual_risk = 0.9;
};

/// High-level goal templates (§III-B's example: "track a collection of
/// insurgents and report on their activities and rendezvous points within
/// a certain geographic area"). derive_spec() is the goals->means reasoner:
/// it expands a template into the typed requirement set above.
enum class GoalKind {
  kPersistentSurveillance,  // wide-area multi-modal watch
  kTrackDispersedGroup,     // the insurgent-tracking example
  kEvacuationSupport,       // corridor sensing + signage + relays
  kSoldierHealthMonitoring, // physiological telemetry
  kDisasterRelief,          // chemical/occupancy + relays, low trust bar
};

struct Goal {
  GoalKind kind = GoalKind::kPersistentSurveillance;
  sim::Rect area;
  /// Scales coverage/actuation intensity, e.g. expected crowd/target size.
  double intensity = 1.0;
};

MissionSpec derive_spec(const Goal& goal);

std::string to_string(GoalKind k);

}  // namespace iobt::synthesis
