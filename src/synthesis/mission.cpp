#include "synthesis/mission.h"

namespace iobt::synthesis {

std::string to_string(GoalKind k) {
  switch (k) {
    case GoalKind::kPersistentSurveillance: return "persistent_surveillance";
    case GoalKind::kTrackDispersedGroup: return "track_dispersed_group";
    case GoalKind::kEvacuationSupport: return "evacuation_support";
    case GoalKind::kSoldierHealthMonitoring: return "soldier_health_monitoring";
    case GoalKind::kDisasterRelief: return "disaster_relief";
  }
  return "unknown";
}

MissionSpec derive_spec(const Goal& goal) {
  MissionSpec spec;
  spec.name = to_string(goal.kind);
  const sim::Rect& area = goal.area;
  const double k = goal.intensity;

  switch (goal.kind) {
    case GoalKind::kPersistentSurveillance:
      // Wide-area watch: visual + radar redundancy so one jammed modality
      // does not blind the mission, modest analytics, relaxed latency.
      spec.sensing.push_back({things::Modality::kCamera, area, 0.8, 0.5, 12});
      spec.sensing.push_back({things::Modality::kRadar, area, 0.6, 0.5, 12});
      spec.compute = {1e10 * k, 8e9 * k};
      spec.comms.max_hops = 10;
      break;

    case GoalKind::kTrackDispersedGroup:
      // The §III-B example: tight visual coverage for identification,
      // acoustic as a cueing layer, serious fusion compute, short loop.
      spec.sensing.push_back({things::Modality::kCamera, area, 0.9, 0.6, 14});
      spec.sensing.push_back({things::Modality::kAcoustic, area, 0.7, 0.4, 10});
      spec.compute = {5e10 * k, 1.6e10 * k};
      spec.comms.max_hops = 5;
      spec.min_member_trust = 0.5;  // tracking data is sensitive
      break;

    case GoalKind::kEvacuationSupport:
      // §I's non-combatant evacuation: crowd sensing along the corridor
      // (acoustic carries further than door-jamb occupancy tags, so it is
      // the area-coverage workhorse; cameras confirm), signage actuation
      // to direct the flow, relays for the inevitably damaged
      // infrastructure.
      spec.sensing.push_back({things::Modality::kAcoustic, area, 0.5, 0.4, 10});
      spec.sensing.push_back({things::Modality::kCamera, area, 0.5, 0.4, 10});
      spec.actuation.push_back(
          {things::ActuationKind::kSignage, area,
           static_cast<std::size_t>(2 * k < 1 ? 1 : 2 * k)});
      spec.actuation.push_back({things::ActuationKind::kRelay, area, 2});
      spec.compute = {1e10 * k, 4e9 * k};
      spec.comms.max_hops = 6;
      break;

    case GoalKind::kSoldierHealthMonitoring:
      // Physiological telemetry only reaches wearables; low compute, but
      // a short loop (medical alerts).
      spec.sensing.push_back({things::Modality::kPhysiological, area, 0.5, 0.6, 8});
      spec.compute = {1e9 * k, 1e9 * k};
      spec.comms.max_hops = 4;
      break;

    case GoalKind::kDisasterRelief:
      // Humanitarian mission (§I): hazard detection, relays to restore
      // connectivity, and a deliberately low trust bar — gray civilian
      // devices are the bulk of what is available.
      spec.sensing.push_back({things::Modality::kChemical, area, 0.6, 0.4, 10});
      spec.sensing.push_back({things::Modality::kOccupancy, area, 0.6, 0.4, 10});
      spec.actuation.push_back({things::ActuationKind::kRelay, area, 3});
      spec.compute = {5e9 * k, 2e9 * k};
      spec.comms.max_hops = 12;
      spec.min_member_trust = 0.3;
      spec.max_residual_risk = 0.95;
      break;
  }
  return spec;
}

}  // namespace iobt::synthesis
