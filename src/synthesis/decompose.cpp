#include "synthesis/decompose.h"

#include <algorithm>
#include <set>

namespace iobt::synthesis {

namespace {

/// The sub-rectangle of `region` at tile (tx, ty) of a tiles x tiles grid.
sim::Rect tile_rect(const sim::Rect& region, std::size_t tiles, std::size_t tx,
                    std::size_t ty) {
  const double w = region.width() / static_cast<double>(tiles);
  const double h = region.height() / static_cast<double>(tiles);
  return {{region.min.x + w * static_cast<double>(tx),
           region.min.y + h * static_cast<double>(ty)},
          {region.min.x + w * static_cast<double>(tx + 1),
           region.min.y + h * static_cast<double>(ty + 1)}};
}

/// Longest sensor range a candidate offers (0 if none) — the overlap
/// margin needed so border cells stay coverable from either tile.
double max_sensor_range(const std::vector<Candidate>& candidates) {
  double r = 0.0;
  for (const auto& c : candidates) {
    for (const auto& s : c.sensors) r = std::max(r, s.range_m);
  }
  return r;
}

}  // namespace

DecomposedResult compose_decomposed(const MissionSpec& spec,
                                    const std::vector<Candidate>& candidates,
                                    const std::function<int(std::size_t)>& reach_hops,
                                    std::size_t tiles) {
  DecomposedResult out;
  if (tiles == 0) tiles = 1;
  const double margin = max_sensor_range(candidates);

  std::set<std::uint32_t> member_assets;
  for (std::size_t ty = 0; ty < tiles; ++ty) {
    for (std::size_t tx = 0; tx < tiles; ++tx) {
      // Per-tile spec: only the sensing slices; aggregates handled later.
      MissionSpec sub;
      sub.name = spec.name + ".tile";
      sub.comms = spec.comms;
      sub.min_member_trust = spec.min_member_trust;
      sub.max_residual_risk = 1.0;  // risk is assessed on the whole
      for (const auto& req : spec.sensing) {
        SensingRequirement r = req;
        r.region = tile_rect(req.region, tiles, tx, ty);
        r.grid_resolution =
            std::max<std::size_t>(2, req.grid_resolution / tiles);
        sub.sensing.push_back(r);
      }

      // Candidate slice: anything whose sensors could reach this tile.
      // Use the union of all sub-requirement tiles, padded by the longest
      // sensor range, as the eligibility window.
      sim::Rect window = sub.sensing.empty() ? sim::Rect{{0, 0}, {0, 0}}
                                             : sub.sensing.front().region;
      for (const auto& r : sub.sensing) {
        window.min.x = std::min(window.min.x, r.region.min.x);
        window.min.y = std::min(window.min.y, r.region.min.y);
        window.max.x = std::max(window.max.x, r.region.max.x);
        window.max.y = std::max(window.max.y, r.region.max.y);
      }
      const sim::Rect reach{{window.min.x - margin, window.min.y - margin},
                            {window.max.x + margin, window.max.y + margin}};
      std::vector<Candidate> slice;
      std::vector<std::size_t> slice_to_global;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (reach.contains(candidates[i].position)) {
          slice.push_back(candidates[i]);
          slice_to_global.push_back(i);
        }
      }
      if (slice.empty()) continue;

      Composer sub_comp(sub, slice,
                        [&](std::size_t local) {
                          return reach_hops ? reach_hops(slice_to_global[local]) : 0;
                        });
      const Composite sub_result = sub_comp.compose(Solver::kGreedy);
      out.total_evaluations += sub_result.evaluations;
      out.critical_path_evaluations =
          std::max(out.critical_path_evaluations, sub_result.evaluations);
      ++out.subproblems;
      for (std::uint32_t a : sub_result.member_assets) member_assets.insert(a);
    }
  }

  // Aggregate requirements (compute, actuation) topped up on the full
  // problem, seeded with the tile members — one cheap repair-style pass.
  Composer full(spec, candidates, reach_hops);
  Composite seeded;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (member_assets.count(candidates[i].asset)) {
      seeded.member_indices.push_back(i);
      seeded.member_assets.push_back(candidates[i].asset);
    }
  }
  out.composite = full.repair(seeded, {});  // extend-until-feasible
  out.total_evaluations += out.composite.evaluations;
  return out;
}

}  // namespace iobt::synthesis
