#pragma once
// Critical-information dissemination: the information epidemic.
//
// A critical alert is seeded at one node and spreads by one-hop gossip:
// every node that first hears the alert rebroadcasts it a fixed number of
// rounds, spaced by the re-gossip period. Whether the epidemic percolates
// theater-wide — and how fast — is the scenario's measurement (Farooq &
// Zhu's critical-information dissemination model, run over the multi-layer
// substrate of net/layer.h under jamming and node-capture campaigns).
//
// Both services here are checkpoint participants in the PR-5 style: their
// schedule rows are declarative (no closures enter a Snapshot), restore
// re-arms unfired rows under their original FIFO seqs, and per-node
// receive handlers are re-installed on the restoring stack.

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/checkpoint.h"
#include "sim/simulator.h"
#include "things/world.h"

namespace iobt::dissem {

/// Gossip protocol parameters.
struct GossipConfig {
  /// Processing delay between first hearing the alert and the first
  /// rebroadcast. Deliberately coarse (duty-cycled radios, contention
  /// backoff): the epidemic crosses the theater in tens of seconds, so
  /// attack campaigns landing mid-spread actually race it.
  sim::Duration forward_delay = sim::Duration::seconds(2.0);
  /// Spacing between successive rebroadcast rounds of one node.
  sim::Duration regossip_period = sim::Duration::seconds(6.0);
  /// Rebroadcast rounds per informed node (>= 1). Later rounds repair
  /// losses and reach receivers that moved into range after the first.
  int regossip_rounds = 3;
  /// Frame size of the alert, bytes.
  std::size_t alert_bytes = 48;
  /// Message kind tag the epidemic travels under.
  std::string kind = "dissem.alert";
};

/// Runs one information epidemic over a Network. Install with attach()
/// after the population exists; seed() schedules the initial injection.
/// Reach/time accessors answer the percolation questions; digest() folds
/// the full per-node informed-time table for equivalence checks.
class Disseminator final : public sim::SerializableCheckpointable {
 public:
  Disseminator(sim::Simulator& sim, net::Network& net, GossipConfig cfg);
  ~Disseminator() override;

  /// Installs the receive handler on every current node. Nodes added later
  /// are picked up lazily at the next gossip round.
  void attach();

  /// Schedules the alert injection at `origin` at time `when`.
  void seed(net::NodeId origin, sim::SimTime when);

  bool informed(net::NodeId n) const {
    return n < informed_at_.size() && informed_at_[n] != sim::SimTime::max();
  }
  sim::SimTime informed_time(net::NodeId n) const { return informed_at_.at(n); }
  std::size_t informed_count() const { return informed_count_; }

  /// Fraction of ALL nodes (the slab, dead included) informed: the
  /// theater-wide percolation measure. Dead nodes that heard the alert
  /// before dying still count — the information escaped them.
  double reach() const;
  /// Fraction of currently-UP nodes that are informed: what the surviving
  /// force knows.
  double reach_live() const;
  /// Seconds from the seed injection until `q` of all nodes were informed;
  /// negative if the epidemic never got there.
  double time_to_fraction(double q) const;

  /// Content digest over the informed table and the gossip schedule
  /// cursor. Bit-identical iff the epidemics are.
  std::uint64_t digest() const;

  std::string_view checkpoint_key() const override { return "dissem.epidemic"; }
  void save(sim::Snapshot& snap, const std::string& key) const override;
  void restore(const sim::Snapshot& snap, const std::string& key,
               sim::RestoreArmer& armer) override;
  bool encode_state(const sim::Snapshot& snap, const std::string& key,
                    sim::WireWriter& w) const override;
  bool decode_state(sim::Snapshot& snap, const std::string& key,
                    sim::WireReader& r) const override;

 private:
  /// One pending gossip transmission: the seed injection (round == -1) or
  /// a rebroadcast round of an informed node. Declarative, fired by index
  /// (rows_ may reallocate while a fire is on the stack: a delivered frame
  /// informs a new node, which appends its own rows).
  struct Row {
    net::NodeId node = 0;
    sim::SimTime when;
    int round = 0;
    bool fired = false;
    sim::EventId armed = sim::kNoEvent;
  };
  struct SavedRow {
    net::NodeId node = 0;
    sim::SimTime when;
    int round = 0;
    bool fired = false;
    std::uint64_t seq = 0;
  };
  struct CheckpointState {
    std::vector<sim::SimTime> informed_at;
    std::vector<SavedRow> rows;
    std::size_t informed_count = 0;
    sim::SimTime seeded_at;
    bool attached = false;
  };

  void install_handlers();
  void add_row(Row row);
  void fire(std::size_t index);
  void on_receive(net::NodeId n, const net::Message& msg);
  /// First-hearing transition: records the time and schedules this node's
  /// own rebroadcast rounds.
  void mark_informed(net::NodeId n, sim::SimTime at);

  sim::Simulator& sim_;
  net::Network& net_;
  GossipConfig cfg_;
  sim::TagId gossip_tag_ = sim::kUntagged;
  /// Per-node first-hearing time, SimTime::max() = never. Parallel to the
  /// network's node table, grown lazily.
  std::vector<sim::SimTime> informed_at_;
  std::size_t informed_count_ = 0;
  sim::SimTime seeded_at_ = sim::SimTime::max();
  std::vector<Row> rows_;
  std::size_t nodes_with_handlers_ = 0;
  bool attached_ = false;
};

/// Promotes replacement gateways after attrition: watches asset-down
/// events, and when a downed asset's node was an inter-layer gateway,
/// deterministically promotes the nearest live non-gateway node of the
/// same layer (lowest id on ties) so the layer keeps its bridge count.
/// The Network's own checkpoint carries the gateway flags; this
/// participant carries only its promotion log.
class ReconfigController final : public sim::SerializableCheckpointable {
 public:
  explicit ReconfigController(things::World& world);
  ~ReconfigController() override;

  struct Promotion {
    net::NodeId lost = 0;      ///< the gateway that went down
    net::NodeId promoted = 0;  ///< its replacement
    sim::SimTime at;
  };
  const std::vector<Promotion>& promotions() const { return promotions_; }

  std::string_view checkpoint_key() const override { return "dissem.reconfig"; }
  void save(sim::Snapshot& snap, const std::string& key) const override;
  void restore(const sim::Snapshot& snap, const std::string& key,
               sim::RestoreArmer& armer) override;
  bool encode_state(const sim::Snapshot& snap, const std::string& key,
                    sim::WireWriter& w) const override;
  bool decode_state(sim::Snapshot& snap, const std::string& key,
                    sim::WireReader& r) const override;

 private:
  void on_asset_down(things::AssetId id);

  things::World& world_;
  std::vector<Promotion> promotions_;
};

}  // namespace iobt::dissem
