#include "dissem/scenario.h"

#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "things/mobility.h"
#include "things/population.h"

namespace iobt::dissem {

namespace {

/// Stream salts for the per-scenario Rng tree (one seed, independent
/// streams per concern).
constexpr std::uint64_t kLayoutSalt = 0xD155E301ULL;
constexpr std::uint64_t kMobilitySalt = 0xD155E302ULL;
constexpr std::uint64_t kAttackSalt = 0xD155E303ULL;
constexpr std::uint64_t kChannelSalt = 0xD155E304ULL;
constexpr std::uint64_t kWorldSalt = 0xD155E305ULL;

}  // namespace

std::string to_string(MobilityKind m) {
  switch (m) {
    case MobilityKind::kStationary: return "stationary";
    case MobilityKind::kWaypoint: return "waypoint";
    case MobilityKind::kPatrol: return "patrol";
  }
  return "unknown";
}

std::string to_string(AttackCampaign a) {
  switch (a) {
    case AttackCampaign::kNone: return "none";
    case AttackCampaign::kJamming: return "jamming";
    case AttackCampaign::kRegionStrike: return "region_strike";
    case AttackCampaign::kGatewayHunt: return "gateway_hunt";
    case AttackCampaign::kCombined: return "combined";
  }
  return "unknown";
}

std::vector<LayerSpec> ground_aerial_layers() {
  // Dense short-range ground stratum bridged by a sparse long-range aerial
  // relay tier — the minimum interesting multi-layer shape. Densities are
  // chosen so the unattacked ground mesh percolates (mean degree ~10 over
  // the default 800x800 m area) and several gateway pairs land within the
  // ground radio's 190 m (a link's reach is the min of the two radios).
  return {
      {net::kLayerGround, 60, 8, {.range_m = 190, .data_rate_bps = 1e6, .base_loss = 0.01},
       things::DeviceClass::kSensorMote, 3.0},
      {net::kLayerAerial, 14, 6, {.range_m = 420, .data_rate_bps = 4e6, .base_loss = 0.005},
       things::DeviceClass::kDrone, 11.0},
  };
}

std::vector<LayerSpec> ground_aerial_command_layers() {
  return {
      {net::kLayerGround, 60, 8, {.range_m = 190, .data_rate_bps = 1e6, .base_loss = 0.01},
       things::DeviceClass::kSensorMote, 3.0},
      {net::kLayerAerial, 14, 6, {.range_m = 420, .data_rate_bps = 4e6, .base_loss = 0.005},
       things::DeviceClass::kDrone, 11.0},
      {net::kLayerCommand, 6, 3, {.range_m = 520, .data_rate_bps = 8e6, .base_loss = 0.002},
       things::DeviceClass::kVehicle, 0.0},
  };
}

DissemScenario::DissemScenario(const DissemSpec& spec, std::uint64_t seed)
    : net(sim, net::ChannelModel(2.0, 0.2), sim::Rng(seed).child(kChannelSalt)),
      world(sim, net, spec.area, sim::Rng(seed).child(kWorldSalt)),
      attacks(world),
      dissem(sim, net, spec.gossip),
      reconfig(world),
      spec_(spec) {
  if (spec_.layers.empty()) {
    throw std::invalid_argument("DissemSpec has no layers");
  }
  build_population(seed);
  build_attacks(seed);
  world.start(sim::Duration::seconds(1));
  dissem.attach();
  // The alert originates at the first ground node (node 0 by construction).
  dissem.seed(0, sim::SimTime::seconds(spec_.seed_time_s));
}

void DissemScenario::build_population(std::uint64_t seed) {
  const sim::Rng layout = sim::Rng(seed).child(kLayoutSalt);
  const sim::Rng mobility = sim::Rng(seed).child(kMobilitySalt);
  std::uint64_t member = 0;
  for (const LayerSpec& ls : spec_.layers) {
    if (ls.gateways > ls.nodes) {
      throw std::invalid_argument("LayerSpec: more gateways than nodes");
    }
    // Gateways are spread evenly through the layer's creation order so
    // they land scattered across the area rather than clustered.
    const std::size_t stride = ls.gateways == 0 ? 0 : ls.nodes / ls.gateways;
    std::size_t made = 0;
    for (std::size_t i = 0; i < ls.nodes; ++i, ++member) {
      sim::Rng maker = layout.child(member);
      things::AssetSpec a =
          things::make_asset_template(ls.device, things::Affiliation::kBlue, maker);
      switch (spec_.mobility) {
        case MobilityKind::kStationary:
          a.mobility = nullptr;
          break;
        case MobilityKind::kWaypoint:
          a.mobility = std::make_shared<things::RandomWaypoint>(
              spec_.area, ls.speed_mps, 2.0, mobility.child(member));
          break;
        case MobilityKind::kPatrol:
          a.mobility = std::make_shared<things::GridPatrol>(
              spec_.area, 200.0, ls.speed_mps, mobility.child(member));
          break;
      }
      if (ls.speed_mps <= 0.0) a.mobility = nullptr;
      const sim::Vec2 pos = {maker.uniform(spec_.area.min.x, spec_.area.max.x),
                             maker.uniform(spec_.area.min.y, spec_.area.max.y)};
      const things::AssetId aid = world.add_asset(std::move(a), pos, ls.radio, ls.layer);
      const net::NodeId node = world.asset(aid).node;
      if (stride != 0 && i % stride == 0 && made < ls.gateways) {
        net.set_gateway(node, true);
        initial_gateways_.push_back(node);
        gateway_assets_.push_back(aid);
        ++made;
      }
    }
  }
}

void DissemScenario::build_attacks(std::uint64_t seed) {
  const double k = spec_.intensity;
  if (k <= 0.0) return;
  sim::Rng attack_rng = sim::Rng(seed).child(kAttackSalt);
  const sim::Rect& area = spec_.area;
  const double min_side = std::min(area.width(), area.height());
  const auto jam = [&](double strength) {
    // On the air before the alert is even seeded: the epidemic must fight
    // its way around (or through) the jam zone, not outrun it.
    attacks.schedule_jamming(area.center(), 0.4 * min_side,
                             sim::SimTime::seconds(spec_.seed_time_s - 2.0),
                             sim::SimTime::seconds(spec_.horizon_s * 0.8),
                             strength);
  };
  const auto hunt_gateways = [&](double fraction) {
    // Kill the leading `fraction` of the gateway list, staggered 1.5 s
    // apart. The first kill lands half a second AFTER the origin's first
    // rebroadcast (the origin is gateway 0 by construction — striking
    // sooner would decapitate the epidemic before hop one, measuring
    // nothing). From there the hunt races the spreading wave: each kill
    // exercises the reconfiguration controller while frames are in
    // flight and uninformed strata still depend on the bridge being
    // rebuilt.
    const double first_kill_s =
        spec_.seed_time_s + spec_.gossip.forward_delay.to_seconds() + 0.5;
    const auto kills = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(gateway_assets_.size())));
    for (std::size_t i = 0; i < kills && i < gateway_assets_.size(); ++i) {
      attacks.schedule_node_kill(
          gateway_assets_[i],
          sim::SimTime::seconds(first_kill_s + 1.5 * double(i)));
    }
  };
  switch (spec_.attack) {
    case AttackCampaign::kNone:
      break;
    case AttackCampaign::kJamming:
      jam(k);
      break;
    case AttackCampaign::kRegionStrike: {
      // Two sweeps over the central band while the wave is still crossing
      // it: the first thins the relay mesh ahead of the epidemic, the
      // second catches survivors mid-spread. Nodes killed before the alert
      // arrives never count as informed, which is what bends the
      // reach-vs-intensity curve.
      const sim::Rect strike{{area.min.x + 0.2 * area.width(),
                              area.min.y + 0.2 * area.height()},
                             {area.max.x - 0.2 * area.width(),
                              area.max.y - 0.2 * area.height()}};
      attacks.schedule_region_kill(strike, 0.85 * k,
                                   sim::SimTime::seconds(spec_.seed_time_s + 2.0),
                                   attack_rng);
      attacks.schedule_region_kill(strike, 0.45 * k,
                                   sim::SimTime::seconds(spec_.seed_time_s + 6.0),
                                   attack_rng);
      break;
    }
    case AttackCampaign::kGatewayHunt:
      hunt_gateways(k);
      break;
    case AttackCampaign::kCombined:
      jam(0.7 * k);
      hunt_gateways(k);
      break;
  }
}

void DissemScenario::run_to_horizon() {
  sim.run_until(sim::SimTime::seconds(spec_.horizon_s));
}

DissemOutcome DissemScenario::outcome() const {
  DissemOutcome o;
  o.nodes = net.node_count();
  o.informed = dissem.informed_count();
  o.live = world.live_asset_count();
  o.reach = dissem.reach();
  o.reach_live = dissem.reach_live();
  o.t50_s = dissem.time_to_fraction(0.5);
  o.t90_s = dissem.time_to_fraction(0.9);
  o.promotions = reconfig.promotions().size();
  std::uint64_t h = dissem.digest();
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(net.metrics().digest());
  mix(static_cast<std::uint64_t>(sim.now().nanos()));
  mix(o.live);
  mix(o.promotions);
  for (const ReconfigController::Promotion& p : reconfig.promotions()) {
    mix(p.lost);
    mix(p.promoted);
    mix(static_cast<std::uint64_t>(p.at.nanos()));
  }
  o.digest = h;
  return o;
}

DissemOutcome run_dissemination(const DissemSpec& spec, std::uint64_t seed) {
  DissemScenario s(spec, seed);
  s.run_to_horizon();
  return s.outcome();
}

sim::ScenarioMatrix dissem_matrix(std::uint64_t base_seed) {
  sim::ScenarioMatrix m(base_seed);
  m.add_axis("layers", {"ground_aerial", "ground_aerial_command"});
  m.add_axis("mobility", {"stationary", "waypoint", "patrol"});
  m.add_axis("attack", {"none", "jamming", "region_strike", "gateway_hunt", "combined"});
  m.add_axis("intensity", {"0.0", "0.3", "0.6", "0.9"});
  return m;
}

DissemSpec spec_for_cell(const sim::ScenarioCell& cell) {
  if (cell.choice.size() != 4) {
    throw std::invalid_argument("spec_for_cell: not a dissem_matrix cell");
  }
  DissemSpec spec;
  spec.name = cell.name;
  spec.layers = cell.choice[0] == 0 ? ground_aerial_layers()
                                    : ground_aerial_command_layers();
  spec.mobility = static_cast<MobilityKind>(cell.choice[1]);
  spec.attack = static_cast<AttackCampaign>(cell.choice[2]);
  static constexpr double kIntensities[] = {0.0, 0.3, 0.6, 0.9};
  spec.intensity = kIntensities[cell.choice[3]];
  return spec;
}

}  // namespace iobt::dissem
