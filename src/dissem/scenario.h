#pragma once
// Deterministic dissemination scenarios: (spec, seed) -> full stack -> outcome.
//
// A DissemSpec is plain data — layer table, mobility kind, attack campaign,
// attack intensity — so a sim::ScenarioMatrix cell can name one completely.
// DissemScenario materializes the spec into a live stack (kernel, layered
// network, world, attack injector, disseminator, reconfiguration
// controller); run_dissemination drives it to the horizon and reduces it to
// a DissemOutcome. Everything downstream (bench_dissemination's
// reach-vs-attack curves, the CI fuzz slice, the checkpoint tests) builds
// on these two calls.

#include <cstdint>
#include <string>
#include <vector>

#include "dissem/dissemination.h"
#include "net/layer.h"
#include "net/network.h"
#include "security/attacks.h"
#include "sim/scenario_matrix.h"
#include "sim/simulator.h"
#include "things/world.h"

namespace iobt::dissem {

/// One stratum of the population: how many nodes, how many of them serve
/// as inter-layer gateways, and the layer-wide radio/mobility character.
struct LayerSpec {
  net::LayerId layer = net::kLayerGround;
  std::size_t nodes = 0;
  std::size_t gateways = 0;
  net::RadioProfile radio;
  things::DeviceClass device = things::DeviceClass::kSensorMote;
  double speed_mps = 0.0;  ///< used by the mobile mobility kinds
};

enum class MobilityKind { kStationary, kWaypoint, kPatrol };
enum class AttackCampaign {
  kNone,         ///< baseline: unattacked percolation
  kJamming,      ///< wide-area jammer, loss scaled by intensity
  kRegionStrike, ///< region_kill sweeps over the theater center
  kGatewayHunt,  ///< targeted kills on the inter-layer gateways
  kCombined,     ///< jamming + gateway hunt
};

std::string to_string(MobilityKind m);
std::string to_string(AttackCampaign a);

/// Complete scenario description. Two cells with equal specs and seeds run
/// bit-identically.
struct DissemSpec {
  std::string name;
  std::vector<LayerSpec> layers;
  MobilityKind mobility = MobilityKind::kStationary;
  AttackCampaign attack = AttackCampaign::kNone;
  /// Attack severity knob in [0, 1]: scales jam loss and kill fractions.
  double intensity = 0.0;
  sim::Rect area{{0, 0}, {800, 800}};
  double horizon_s = 120.0;
  double seed_time_s = 5.0;
  GossipConfig gossip;
};

/// Stock layer tables for the bench/fuzz matrix.
std::vector<LayerSpec> ground_aerial_layers();
std::vector<LayerSpec> ground_aerial_command_layers();

/// What one run measured.
struct DissemOutcome {
  std::size_t nodes = 0;
  std::size_t informed = 0;
  std::size_t live = 0;
  double reach = 0.0;       ///< informed / all nodes
  double reach_live = 0.0;  ///< informed / surviving nodes
  double t50_s = -1.0;      ///< seconds to 50% theater reach; -1 = never
  double t90_s = -1.0;
  std::size_t promotions = 0;  ///< gateways re-formed after attrition
  std::uint64_t digest = 0;    ///< full observable-state digest
};

/// The live stack a spec materializes into. Tests drive it directly (to
/// checkpoint mid-epidemic or kill gateways mid-broadcast); benches use
/// run_dissemination below.
class DissemScenario {
 public:
  DissemScenario(const DissemSpec& spec, std::uint64_t seed);

  /// Runs the epidemic to the spec horizon.
  void run_to_horizon();
  /// Reduces the current state to an outcome (callable mid-run).
  DissemOutcome outcome() const;

  /// Node ids designated as gateways at construction, in creation order
  /// (the gateway-hunt campaign's target list).
  const std::vector<net::NodeId>& initial_gateways() const {
    return initial_gateways_;
  }
  const DissemSpec& spec() const { return spec_; }

  sim::Simulator sim;
  net::Network net;
  things::World world;
  security::AttackInjector attacks;
  Disseminator dissem;
  ReconfigController reconfig;

 private:
  void build_population(std::uint64_t seed);
  void build_attacks(std::uint64_t seed);

  DissemSpec spec_;
  std::vector<net::NodeId> initial_gateways_;
  std::vector<things::AssetId> gateway_assets_;
};

/// Builds, runs, and reduces one cell. The workhorse for ParallelRunner
/// bodies: bit-identical outcome (digest included) for equal (spec, seed).
DissemOutcome run_dissemination(const DissemSpec& spec, std::uint64_t seed);

/// The canonical scenario matrix: {layer configs} x {mobility} x {attack
/// campaign} x {attack intensity}. Both bench_dissemination and the CI
/// fuzz slice enumerate this.
sim::ScenarioMatrix dissem_matrix(std::uint64_t base_seed);
/// Translates a cell of dissem_matrix back into its spec.
DissemSpec spec_for_cell(const sim::ScenarioCell& cell);

}  // namespace iobt::dissem
