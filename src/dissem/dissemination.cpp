#include "dissem/dissemination.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/wire.h"

namespace iobt::dissem {

Disseminator::Disseminator(sim::Simulator& sim, net::Network& net, GossipConfig cfg)
    : sim_(sim), net_(net), cfg_(std::move(cfg)) {
  if (cfg_.regossip_rounds < 1) {
    throw std::invalid_argument("GossipConfig::regossip_rounds must be >= 1");
  }
  gossip_tag_ = sim_.intern("dissem.gossip");
  sim_.checkpoint().register_participant(this);
}

Disseminator::~Disseminator() {
  for (const Row& r : rows_) sim_.cancel(r.armed);
  sim_.checkpoint().unregister(this);
}

void Disseminator::install_handlers() {
  for (net::NodeId n = 0; n < net_.node_count(); ++n) {
    net_.set_handler(n, [this, n](const net::Message& m) { on_receive(n, m); });
  }
  nodes_with_handlers_ = net_.node_count();
  if (informed_at_.size() < net_.node_count()) {
    informed_at_.resize(net_.node_count(), sim::SimTime::max());
  }
}

void Disseminator::attach() {
  attached_ = true;
  install_handlers();
}

void Disseminator::seed(net::NodeId origin, sim::SimTime when) {
  seeded_at_ = when;
  add_row(Row{origin, when, -1, false, sim::kNoEvent});
}

void Disseminator::add_row(Row row) {
  const std::size_t index = rows_.size();
  rows_.push_back(row);
  rows_[index].armed = sim_.schedule_at(
      rows_[index].when, [this, index] { fire(index); }, gossip_tag_);
}

void Disseminator::fire(std::size_t index) {
  // Index-based access throughout: broadcast delivers frames through
  // handlers that call mark_informed, which appends rows and may
  // reallocate rows_.
  rows_[index].armed = sim::kNoEvent;
  rows_[index].fired = true;
  // Endpoints created after attach() (recruits, Sybils) join the listener
  // set lazily, exactly once, in id order.
  if (attached_ && nodes_with_handlers_ < net_.node_count()) install_handlers();
  const net::NodeId node = rows_[index].node;
  if (rows_[index].round < 0) {
    // Seed injection: the origin learns the alert out-of-band; its own
    // rebroadcast rounds start after the forwarding delay.
    mark_informed(node, sim_.now());
    return;
  }
  if (!net_.node_up(node)) return;  // dead radios gossip nothing
  net_.broadcast(node, net::Message{.kind = cfg_.kind,
                                    .size_bytes = cfg_.alert_bytes});
}

void Disseminator::on_receive(net::NodeId n, const net::Message& msg) {
  if (msg.kind != cfg_.kind) return;
  mark_informed(n, sim_.now());
}

void Disseminator::mark_informed(net::NodeId n, sim::SimTime at) {
  if (informed_at_.size() < net_.node_count()) {
    informed_at_.resize(net_.node_count(), sim::SimTime::max());
  }
  if (informed_at_.at(n) != sim::SimTime::max()) return;  // re-hearing: ignore
  informed_at_[n] = at;
  ++informed_count_;
  net_.metrics().count("dissem.informed");
  for (int r = 0; r < cfg_.regossip_rounds; ++r) {
    add_row(Row{n, at + cfg_.forward_delay + cfg_.regossip_period * double(r), r,
                false, sim::kNoEvent});
  }
}

double Disseminator::reach() const {
  const std::size_t n = net_.node_count();
  return n == 0 ? 0.0 : static_cast<double>(informed_count_) / static_cast<double>(n);
}

double Disseminator::reach_live() const {
  std::size_t up = 0, hit = 0;
  for (net::NodeId n = 0; n < net_.node_count(); ++n) {
    if (!net_.node_up(n)) continue;
    ++up;
    if (informed(n)) ++hit;
  }
  return up == 0 ? 0.0 : static_cast<double>(hit) / static_cast<double>(up);
}

double Disseminator::time_to_fraction(double q) const {
  const std::size_t n = net_.node_count();
  const auto target =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  if (target == 0 || informed_count_ < target || seeded_at_ == sim::SimTime::max()) {
    return -1.0;
  }
  std::vector<sim::SimTime> times;
  times.reserve(informed_count_);
  for (const sim::SimTime t : informed_at_) {
    if (t != sim::SimTime::max()) times.push_back(t);
  }
  std::sort(times.begin(), times.end());
  return (times[target - 1] - seeded_at_).to_seconds();
}

std::uint64_t Disseminator::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(informed_at_.size());
  for (const sim::SimTime t : informed_at_) {
    mix(static_cast<std::uint64_t>(t.nanos()));
  }
  mix(informed_count_);
  mix(rows_.size());
  for (const Row& r : rows_) {
    mix(r.node);
    mix(static_cast<std::uint64_t>(r.when.nanos()));
    mix(r.fired ? 1 : 2);
  }
  return h;
}

void Disseminator::save(sim::Snapshot& snap, const std::string& key) const {
  CheckpointState st;
  st.informed_at = informed_at_;
  st.rows.reserve(rows_.size());
  for (const Row& r : rows_) {
    st.rows.push_back(
        SavedRow{r.node, r.when, r.round, r.fired, sim_.pending_seq(r.armed)});
  }
  st.informed_count = informed_count_;
  st.seeded_at = seeded_at_;
  st.attached = attached_;
  snap.put(key, std::move(st));
}

void Disseminator::restore(const sim::Snapshot& snap, const std::string& key,
                           sim::RestoreArmer& armer) {
  const auto& st = snap.get<CheckpointState>(key);
  for (Row& r : rows_) {
    sim_.cancel(r.armed);
    r.armed = sim::kNoEvent;
  }
  informed_at_ = st.informed_at;
  informed_count_ = st.informed_count;
  seeded_at_ = st.seeded_at;
  attached_ = st.attached;
  // Rebuild the full row table first (re-arm closures capture indices into
  // it, and &rows_[i].armed must stay valid until the registry replays).
  rows_.clear();
  rows_.reserve(st.rows.size());
  for (const SavedRow& r : st.rows) {
    rows_.push_back(Row{r.node, r.when, r.round, r.fired, sim::kNoEvent});
  }
  for (std::size_t i = 0; i < st.rows.size(); ++i) {
    if (st.rows[i].fired) continue;
    if (st.rows[i].seq == 0) {
      throw std::logic_error("Disseminator::restore: unfired gossip row " +
                             std::to_string(i) + " was not armed at save time");
    }
    armer.rearm(rows_[i].when, st.rows[i].seq, [this, i] { fire(i); },
                gossip_tag_, &rows_[i].armed);
  }
  // Handlers are live-stack closures: re-install for every restored node
  // (including endpoints that exist only in the snapshot).
  if (attached_) install_handlers();
}

ReconfigController::ReconfigController(things::World& world) : world_(world) {
  world_.simulator().checkpoint().register_participant(this);
  world_.on_asset_down([this](things::AssetId id) { on_asset_down(id); });
}

ReconfigController::~ReconfigController() {
  world_.simulator().checkpoint().unregister(this);
}

void ReconfigController::on_asset_down(things::AssetId id) {
  net::Network& net = world_.network();
  const net::NodeId lost = world_.asset(id).node;
  if (!net.is_gateway(lost)) return;
  // Demote the dead bridge (its links are already detached; clearing the
  // flag keeps a later revival from silently re-bridging) and promote the
  // nearest live non-gateway of the same layer, lowest id on ties — a
  // deterministic choice every replication makes identically.
  net.set_gateway(lost, false);
  const net::LayerId layer = net.layer(lost);
  const sim::Vec2 at = net.position(lost);
  net::NodeId best = net::kBroadcast;
  double best_d = 0.0;
  for (net::NodeId m = 0; m < net.node_count(); ++m) {
    if (m == lost || !net.node_up(m) || net.layer(m) != layer || net.is_gateway(m)) {
      continue;
    }
    const double d = sim::distance(at, net.position(m));
    if (best == net::kBroadcast || d < best_d) {
      best = m;
      best_d = d;
    }
  }
  if (best == net::kBroadcast) return;  // layer wiped out: nothing to promote
  net.set_gateway(best, true);
  promotions_.push_back({lost, best, world_.simulator().now()});
}

void ReconfigController::save(sim::Snapshot& snap, const std::string& key) const {
  snap.put(key, promotions_);
}

void ReconfigController::restore(const sim::Snapshot& snap, const std::string& key,
                                 sim::RestoreArmer&) {
  promotions_ = snap.get<std::vector<Promotion>>(key);
}

// --- Wire persistence ------------------------------------------------------

bool Disseminator::encode_state(const sim::Snapshot& snap,
                                const std::string& key,
                                sim::WireWriter& w) const {
  const auto& st = snap.get<CheckpointState>(key);
  w.u64(st.informed_at.size());
  for (sim::SimTime t : st.informed_at) w.time(t);
  w.u64(st.rows.size());
  for (const SavedRow& row : st.rows) {
    w.u64(row.node).time(row.when).i64(row.round).boolean(row.fired).u64(row.seq);
  }
  w.u64(st.informed_count).time(st.seeded_at).boolean(st.attached);
  return true;
}

bool Disseminator::decode_state(sim::Snapshot& snap, const std::string& key,
                                sim::WireReader& r) const {
  CheckpointState st;
  const std::uint64_t informed = r.u64();
  if (!r.ok() || informed > r.remaining()) return false;
  st.informed_at.resize(static_cast<std::size_t>(informed));
  for (sim::SimTime& t : st.informed_at) t = r.time();
  const std::uint64_t rows = r.u64();
  if (!r.ok() || rows > r.remaining()) return false;
  st.rows.resize(static_cast<std::size_t>(rows));
  for (SavedRow& row : st.rows) {
    row.node = static_cast<net::NodeId>(r.u64());
    row.when = r.time();
    row.round = static_cast<int>(r.i64());
    row.fired = r.boolean();
    row.seq = r.u64();
  }
  st.informed_count = static_cast<std::size_t>(r.u64());
  st.seeded_at = r.time();
  st.attached = r.boolean();
  if (!r.ok()) return false;
  snap.put(key, std::move(st));
  return true;
}

bool ReconfigController::encode_state(const sim::Snapshot& snap,
                                      const std::string& key,
                                      sim::WireWriter& w) const {
  const auto& promotions = snap.get<std::vector<Promotion>>(key);
  w.u64(promotions.size());
  for (const Promotion& p : promotions) {
    w.u64(p.lost).u64(p.promoted).time(p.at);
  }
  return true;
}

bool ReconfigController::decode_state(sim::Snapshot& snap,
                                      const std::string& key,
                                      sim::WireReader& r) const {
  std::vector<Promotion> promotions;
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > r.remaining()) return false;
  promotions.resize(static_cast<std::size_t>(n));
  for (Promotion& p : promotions) {
    p.lost = static_cast<net::NodeId>(r.u64());
    p.promoted = static_cast<net::NodeId>(r.u64());
    p.at = r.time();
  }
  if (!r.ok()) return false;
  snap.put(key, std::move(promotions));
  return true;
}

}  // namespace iobt::dissem
