#include "trace/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace iobt::trace {

namespace {

thread_local Tracer* g_current = nullptr;

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Escapes a string for a JSON string literal (quotes, backslash, control
/// characters). Trace names are usually dotted identifiers, so the common
/// case copies straight through.
void write_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

const char* phase_string(Phase p) {
  switch (p) {
    case Phase::kComplete: return "X";
    case Phase::kInstant: return "i";
    case Phase::kCounter: return "C";
    case Phase::kAsyncBegin: return "b";
    case Phase::kAsyncEnd: return "e";
  }
  return "i";
}

}  // namespace

Tracer* current() { return g_current; }

ScopedUse::ScopedUse(Tracer* t) : previous_(g_current) { g_current = t; }
ScopedUse::~ScopedUse() { g_current = previous_; }

Tracer::Tracer() {
  intern("");  // NameId 0 reserved, so 0 can mean "not interned yet"
}

const std::string& Tracer::name(NameId id) const {
  static const std::string kUnknown = "(unknown)";
  return id < names_.size() ? names_[id].name : kUnknown;
}

const std::string& Tracer::category(NameId id) const {
  static const std::string kNone;
  return id < names_.size() ? names_[id].category : kNone;
}

NameId Tracer::intern(std::string_view name, std::string_view category) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const NameId id = static_cast<NameId>(names_.size());
  names_.push_back(NameEntry{std::string(name), std::string(category)});
  index_.emplace(names_.back().name, id);
  return id;
}

void Tracer::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, Record{});
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  next_seq_ = 0;
  wall_base_ns_ = steady_ns();
  enabled_ = true;
}

void Tracer::disable() { enabled_ = false; }

std::int64_t Tracer::wall_now_ns() const { return steady_ns() - wall_base_ns_; }

void Tracer::push(const Record& r) {
  ring_[head_] = r;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    ++dropped_;  // overwrote the oldest record
  }
}

void Tracer::record(Phase phase, NameId name, double value, std::uint64_t id) {
  Record r;
  r.seq = next_seq_++;
  r.sim_ns = sim_now_ns();
  r.wall_ns = wall_now_ns();
  r.value = value;
  r.async_id = id;
  r.name = name;
  r.phase = phase;
  r.depth = depth_;
  push(r);
}

void Span::open() {
  sim0_ = t_->sim_now_ns();
  wall0_ = t_->wall_now_ns();
  depth_ = t_->depth_++;
}

void Span::close() {
  --t_->depth_;
  // The tracer may have been disabled mid-span; the record is still wanted
  // (the span began while enabled), but only if the ring still exists.
  if (t_->ring_.empty()) return;
  Record r;
  r.seq = t_->next_seq_++;
  r.sim_ns = sim0_;
  r.wall_ns = wall0_;
  r.sim_dur_ns = t_->sim_now_ns() - sim0_;
  r.wall_dur_ns = t_->wall_now_ns() - wall0_;
  r.name = name_;
  r.phase = Phase::kComplete;
  r.depth = depth_;
  t_->push(r);
}

std::vector<Record> Tracer::snapshot() const {
  std::vector<Record> out;
  out.reserve(count_);
  // Oldest record sits at head_ once the ring has wrapped, else at 0.
  const std::size_t start = count_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::write_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid_
     << ",\"args\":{\"name\":\"iobt\"}}";
  char buf[160];
  for (const Record& r : snapshot()) {
    os << ",\n";
    os << "{\"name\":\"";
    write_escaped(os, name(r.name));
    os << "\",\"cat\":\"";
    const std::string& cat = category(r.name);
    write_escaped(os, cat.empty() ? "iobt" : cat);
    os << "\",\"ph\":\"" << phase_string(r.phase) << "\"";
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f,\"pid\":%u,\"tid\":%u",
                  static_cast<double>(r.wall_ns) * 1e-3, pid_, tid_);
    os << buf;
    switch (r.phase) {
      case Phase::kComplete:
        std::snprintf(buf, sizeof buf,
                      ",\"dur\":%.3f,\"args\":{\"sim_ts_s\":%.9f,"
                      "\"sim_dur_s\":%.9f,\"depth\":%u}",
                      static_cast<double>(r.wall_dur_ns) * 1e-3,
                      static_cast<double>(r.sim_ns) * 1e-9,
                      static_cast<double>(r.sim_dur_ns) * 1e-9, r.depth);
        os << buf;
        break;
      case Phase::kInstant:
        std::snprintf(buf, sizeof buf,
                      ",\"s\":\"t\",\"args\":{\"sim_ts_s\":%.9f}",
                      static_cast<double>(r.sim_ns) * 1e-9);
        os << buf;
        break;
      case Phase::kCounter:
        std::snprintf(buf, sizeof buf, ",\"args\":{\"value\":%.17g}", r.value);
        os << buf;
        break;
      case Phase::kAsyncBegin:
      case Phase::kAsyncEnd:
        std::snprintf(buf, sizeof buf,
                      ",\"id\":\"0x%" PRIx64 "\",\"args\":{\"sim_ts_s\":%.9f}",
                      r.async_id, static_cast<double>(r.sim_ns) * 1e-9);
        os << buf;
        break;
    }
    os << "}";
  }
  os << "\n]}\n";
}

std::string Tracer::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace iobt::trace
