#pragma once
// Structured tracing: the self-observation substrate the paper's adaptive,
// self-aware IoBT (Fig. 3) presumes — reflex latency, synthesis assembly
// time, channel retransmits, all inspectable as a timeline, not just as
// end-of-run metric summaries.
//
// Design:
//  * Always compiled, zero overhead when disabled. Every record path is a
//    single `enabled_` branch when tracing is off — no clock reads, no
//    allocation, no ring writes. The ring buffer is allocated by enable()
//    and never grows afterwards, so the enabled record path is
//    allocation-free too.
//  * Per-replication. A Tracer is single-threaded by design, like the
//    Simulator it observes: one tracer per replication, owned by (or
//    attached to) that replication's Simulator. ParallelRunner gives each
//    replication its own tracer, so worker threads never share one.
//  * Dual clocks. Every record carries virtual sim-time (from the bound
//    Simulator clock) and wall-time (steady_clock, relative to enable()).
//    Handlers execute at a frozen sim-time, so scoped spans get their
//    visual extent from the wall clock; the sim timestamp rides along in
//    the exported args for correlation.
//  * Bounded. Records live in a fixed-capacity ring; when full, the oldest
//    records are overwritten and counted in dropped(). A trace is the
//    recent window of a run, never an unbounded log.
//  * Chrome trace-event export. write_json() emits the JSON array format
//    that Perfetto (https://ui.perfetto.dev) and chrome://tracing load
//    directly: "X" complete spans, "i" instants, "C" counters, and "b"/"e"
//    async spans for intervals that outlive any C++ scope (an in-flight
//    network frame, a reliable transfer awaiting its ACK).
//
// Names are interned once into dense NameIds (mirroring sim::TagTable), so
// hot paths never hash or copy strings; each name carries a category
// ("sim", "net", "synthesis", "adapt", ...) that becomes the trace event's
// "cat" field — the per-subsystem filter axis in the Perfetto UI.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace iobt::trace {

/// Interned record-name id. 0 is reserved (the empty name).
using NameId = std::uint32_t;

/// Chrome trace-event phase of a record.
enum class Phase : std::uint8_t {
  kComplete,    // "X": scoped span with duration (RAII Span)
  kInstant,     // "i": point event
  kCounter,     // "C": sampled counter value
  kAsyncBegin,  // "b": start of an id-keyed interval
  kAsyncEnd,    // "e": end of an id-keyed interval
};

/// One ring-buffer entry. POD: recording is a bounds-checked array write.
struct Record {
  std::uint64_t seq = 0;          // global record sequence, monotone
  std::int64_t sim_ns = 0;        // virtual time at record (span begin)
  std::int64_t wall_ns = 0;       // wall time since enable() (span begin)
  std::int64_t sim_dur_ns = 0;    // kComplete only
  std::int64_t wall_dur_ns = 0;   // kComplete only
  double value = 0.0;             // kCounter only
  std::uint64_t async_id = 0;     // kAsyncBegin / kAsyncEnd only
  NameId name = 0;
  Phase phase = Phase::kInstant;
  std::uint16_t depth = 0;        // span nesting depth at record time
};

class Span;

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- Setup (cold; may allocate) ----------------------------------------

  /// Interns `name` under `category`, returning its dense id. Intern once
  /// at construction/start(), record many. Re-interning the same name
  /// returns the same id (the first category sticks).
  NameId intern(std::string_view name, std::string_view category = "");

  const std::string& name(NameId id) const;
  const std::string& category(NameId id) const;

  /// Allocates (or re-uses) the ring at `capacity` records, clears it, and
  /// starts recording. Wall timestamps are relative to this call.
  void enable(std::size_t capacity = kDefaultCapacity);
  /// Stops recording. Already-captured records stay readable/exportable.
  void disable();
  bool enabled() const { return enabled_; }

  /// Binds the virtual clock records sample. The Simulator binds its own
  /// clock on construction / attach; pass nullptr to unbind (sim_ns = 0).
  void bind_sim_clock(const sim::SimTime* now) { sim_clock_ = now; }

  /// Sets the (pid, tid) stamped on exported events. ParallelRunner sets
  /// tid = replication index so multi-seed traces stay distinguishable.
  void set_track(std::uint32_t pid, std::uint32_t tid) {
    pid_ = pid;
    tid_ = tid;
  }

  // --- Record paths (hot; one branch when disabled, no allocation ever) --

  void instant(NameId name) {
    if (enabled_) record(Phase::kInstant, name, 0.0, 0);
  }
  void counter(NameId name, double value) {
    if (enabled_) record(Phase::kCounter, name, value, 0);
  }
  void async_begin(NameId name, std::uint64_t id) {
    if (enabled_) record(Phase::kAsyncBegin, name, 0.0, id);
  }
  void async_end(NameId name, std::uint64_t id) {
    if (enabled_) record(Phase::kAsyncEnd, name, 0.0, id);
  }

  // --- Introspection / export --------------------------------------------

  /// Records currently held (<= capacity).
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Oldest records overwritten since enable().
  std::uint64_t dropped() const { return dropped_; }
  /// Total records ever written since enable() (== size + dropped).
  std::uint64_t total_recorded() const { return next_seq_; }
  /// Current span nesting depth (diagnostic; 0 outside any Span).
  std::uint16_t span_depth() const { return depth_; }

  /// The held records, oldest first.
  std::vector<Record> snapshot() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}), loadable by Perfetto
  /// and chrome://tracing. ts/dur are wall-clock microseconds since
  /// enable(); each event's args carry the virtual sim-time.
  void write_json(std::ostream& os) const;
  std::string to_json() const;

 private:
  friend class Span;

  struct NameEntry {
    std::string name;
    std::string category;
  };
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::int64_t sim_now_ns() const {
    return sim_clock_ ? sim_clock_->nanos() : 0;
  }
  std::int64_t wall_now_ns() const;

  /// Appends one record to the ring (overwrites oldest when full).
  /// Pre-condition: enabled_ (callers branch first).
  void record(Phase phase, NameId name, double value, std::uint64_t id);
  void push(const Record& r);

  bool enabled_ = false;
  std::uint16_t depth_ = 0;
  std::uint32_t pid_ = 0;
  std::uint32_t tid_ = 0;
  const sim::SimTime* sim_clock_ = nullptr;
  std::int64_t wall_base_ns_ = 0;

  std::vector<Record> ring_;
  std::size_t head_ = 0;   // next write position
  std::size_t count_ = 0;  // records held
  std::uint64_t dropped_ = 0;
  std::uint64_t next_seq_ = 0;

  std::vector<NameEntry> names_;
  std::unordered_map<std::string, NameId, StringHash, std::equal_to<>> index_;
};

/// RAII scoped span: captures both clocks on construction, records one
/// kComplete entry with durations on destruction. When the tracer is
/// disabled (or null), construction and destruction are a branch each.
class Span {
 public:
  /// Hot path: pre-interned name on a known tracer.
  Span(Tracer& t, NameId name) : t_(t.enabled_ ? &t : nullptr), name_(name) {
    if (t_) open();
  }
  /// Coarse path: nullable tracer (e.g. trace::current()) and a literal
  /// name, interned on first use while enabled.
  Span(Tracer* t, std::string_view name, std::string_view category = "")
      : t_(t && t->enabled_ ? t : nullptr) {
    if (t_) {
      name_ = t_->intern(name, category);
      open();
    }
  }
  ~Span() {
    if (t_) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open();
  void close();

  Tracer* t_ = nullptr;
  NameId name_ = 0;
  std::int64_t sim0_ = 0;
  std::int64_t wall0_ = 0;
  std::uint16_t depth_ = 0;
};

/// A named record label a service holds across tracer swaps: the NameId is
/// interned lazily against whichever tracer is asked for it, and
/// re-interned when the tracer changes (e.g. after
/// Simulator::attach_tracer). id() is a pointer compare on the hot path.
class Name {
 public:
  Name(std::string name, std::string category)
      : name_(std::move(name)), category_(std::move(category)) {}

  NameId id(Tracer& t) {
    if (&t != tracer_) {
      id_ = t.intern(name_, category_);
      tracer_ = &t;
    }
    return id_;
  }

 private:
  std::string name_;
  std::string category_;
  Tracer* tracer_ = nullptr;
  NameId id_ = 0;
};

/// The calling thread's ambient tracer (nullptr if none). Lets pure
/// algorithm layers (e.g. synthesis::Composer) emit spans without plumbing
/// a Tracer& through every signature: Simulator::step installs its tracer
/// around each handler, and harness code uses ScopedUse directly.
Tracer* current();

/// Instant event on the ambient tracer; a no-op (TLS read + branch) when
/// none is installed or tracing is disabled. For pure-algorithm layers
/// that have no Tracer reference of their own.
inline void instant_here(std::string_view name, std::string_view category = "") {
  Tracer* t = current();
  if (t && t->enabled()) t->instant(t->intern(name, category));
}

/// Counter sample on the ambient tracer; same no-op guarantee.
inline void counter_here(std::string_view name, double value,
                         std::string_view category = "") {
  Tracer* t = current();
  if (t && t->enabled()) t->counter(t->intern(name, category), value);
}

/// Installs `t` as the thread's ambient tracer for this scope, restoring
/// the previous one on destruction.
class ScopedUse {
 public:
  explicit ScopedUse(Tracer* t);
  ~ScopedUse();
  ScopedUse(const ScopedUse&) = delete;
  ScopedUse& operator=(const ScopedUse&) = delete;

 private:
  Tracer* previous_;
};

// Scoped span on the ambient tracer; a no-op (one TLS read + branch) when
// no tracer is installed or tracing is disabled.
#define IOBT_TRACE_CONCAT_(a, b) a##b
#define IOBT_TRACE_CONCAT(a, b) IOBT_TRACE_CONCAT_(a, b)
#define IOBT_TRACE_SCOPE(name, category)                         \
  ::iobt::trace::Span IOBT_TRACE_CONCAT(iobt_trace_span_, __LINE__)( \
      ::iobt::trace::current(), (name), (category))

}  // namespace iobt::trace
