#include "flow/placement.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace iobt::flow {

namespace {

/// Host pinned to `op`, or nullopt.
std::optional<HostId> pinned_host(const PlacementProblem& p, OperatorId op) {
  for (const auto& [o, h] : p.pinned) {
    if (o == op) return h;
  }
  return std::nullopt;
}

}  // namespace

Placement evaluate_placement(const PlacementProblem& problem,
                             std::vector<HostId> assignment) {
  const auto& g = problem.graph;
  Placement pl;
  pl.host = std::move(assignment);
  pl.host_load.assign(problem.hosts.size(), 0.0);
  const auto rates = g.analyze_rates();

  // Loads and capacity feasibility.
  for (const auto& o : g.operators()) {
    const HostId h = pl.host.at(o.id);
    if (h >= problem.hosts.size()) {
      pl.infeasible_reason = "host out of range";
      return pl;
    }
    pl.host_load[h] += rates[o.id].flops_rate;
  }
  bool ok = true;
  for (std::size_t h = 0; h < problem.hosts.size(); ++h) {
    pl.host_load[h] = problem.hosts[h].capacity_flops > 0
                          ? pl.host_load[h] / problem.hosts[h].capacity_flops
                          : (pl.host_load[h] > 0 ? 2.0 : 0.0);
    if (pl.host_load[h] > 1.0 + 1e-9) {
      ok = false;
      pl.infeasible_reason = "host " + std::to_string(h) + " overloaded";
    }
  }
  // Pinning feasibility.
  for (const auto& [o, h] : problem.pinned) {
    if (pl.host.at(o) != h) {
      ok = false;
      pl.infeasible_reason = "pinned operator moved";
    }
  }

  // Network cost: bandwidth x hops over every edge.
  for (const auto& e : g.edges()) {
    const int hops = problem.hops[pl.host[e.from]][pl.host[e.to]];
    pl.network_cost_bps_hops +=
        rates[e.from].out_bandwidth_bps * static_cast<double>(hops);
  }

  // Critical path latency: longest source->sink path accumulating
  // per-item compute time + transfer + propagation per edge.
  const auto order = g.topological_order();
  std::vector<double> lat(g.operators().size(), 0.0);
  for (const OperatorId id : order) {
    const Operator& o = g.op(id);
    // Compute time for one item on the assigned host, scaled by load
    // (queueing-lite: a half-loaded host is ~2x slower than idle-capacity
    // math says is the floor; we use the simple M/M/1-ish 1/(1-rho) blow-up
    // capped at 10x).
    const HostId h = pl.host[id];
    const double rho = std::min(0.9, pl.host_load[h]);
    const double compute_s =
        o.flops_per_item / std::max(1.0, problem.hosts[h].capacity_flops) /
        std::max(0.1, 1.0 - rho);
    double in_latency = 0.0;
    for (const OperatorId in : g.inputs_of(id)) {
      const int hops = problem.hops[pl.host[in]][h];
      const double transfer =
          g.op(in).out_bytes_per_item / problem.bytes_per_second +
          problem.per_hop_latency_s * static_cast<double>(hops);
      in_latency = std::max(in_latency, lat[in] + transfer);
    }
    lat[id] = in_latency + compute_s;
    pl.critical_path_latency_s = std::max(pl.critical_path_latency_s, lat[id]);
  }

  pl.feasible = ok;
  return pl;
}

Placement place(const PlacementProblem& problem) {
  const auto& g = problem.graph;
  const std::size_t nh = problem.hosts.size();
  assert(nh > 0);
  const auto rates = g.analyze_rates();

  std::vector<HostId> assignment(g.operators().size(), 0);
  std::vector<double> load(nh, 0.0);

  // Greedy topological pass: pinned operators go where they must; others
  // pick the host minimizing (incremental network cost + a load-balance
  // penalty) among hosts with remaining capacity.
  for (const OperatorId id : g.topological_order()) {
    if (const auto pin = pinned_host(problem, id)) {
      assignment[id] = *pin;
      load[*pin] += rates[id].flops_rate;
      continue;
    }
    HostId best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (HostId h = 0; h < nh; ++h) {
      const double cap = problem.hosts[h].capacity_flops;
      if (load[h] + rates[id].flops_rate > cap) continue;  // full
      double comm = 0.0;
      for (const OperatorId in : g.inputs_of(id)) {
        comm += rates[in].out_bandwidth_bps *
                static_cast<double>(problem.hops[assignment[in]][h]);
      }
      const double balance = (load[h] + rates[id].flops_rate) / std::max(1.0, cap);
      const double score = comm + 0.01 * balance;  // comm dominates
      if (score < best_score) {
        best_score = score;
        best = h;
      }
    }
    if (best_score == std::numeric_limits<double>::infinity()) {
      // No host fits: drop on the least-loaded and let evaluation flag it.
      best = 0;
      for (HostId h = 1; h < nh; ++h) {
        if (load[h] < load[best]) best = h;
      }
    }
    assignment[id] = best;
    load[best] += rates[id].flops_rate;
  }

  Placement current = evaluate_placement(problem, assignment);

  // Swap descent: try moving each unpinned operator to each other host;
  // accept strict improvements in (feasible, network cost).
  bool improved = true;
  int rounds = 0;
  while (improved && rounds++ < 5) {
    improved = false;
    for (const auto& o : g.operators()) {
      if (pinned_host(problem, o.id)) continue;
      for (HostId h = 0; h < nh; ++h) {
        if (h == current.host[o.id]) continue;
        auto trial = current.host;
        trial[o.id] = h;
        const Placement cand = evaluate_placement(problem, trial);
        const bool better =
            (cand.feasible && !current.feasible) ||
            (cand.feasible == current.feasible &&
             cand.network_cost_bps_hops < current.network_cost_bps_hops - 1e-9);
        if (better) {
          current = cand;
          improved = true;
        }
      }
    }
  }
  return current;
}

std::vector<std::vector<int>> host_hops_from_topology(
    const net::Topology& topo, const std::vector<net::NodeId>& host_nodes,
    int unreachable_hops) {
  const std::size_t n = host_nodes.size();
  std::vector<std::vector<int>> hops(n, std::vector<int>(n, 0));
  for (std::size_t a = 0; a < n; ++a) {
    const auto d = topo.hop_distances(host_nodes[a]);
    for (std::size_t b = 0; b < n; ++b) {
      hops[a][b] = d[host_nodes[b]] < 0 ? unreachable_hops : d[host_nodes[b]];
    }
  }
  return hops;
}

}  // namespace iobt::flow
