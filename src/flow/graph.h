#pragma once
// Dataflow service graphs: the "functional composition" half of synthesis
// (§III-B: "functional composition for generating distributed services and
// controllers that achieve the mission goals in a scalable manner"; the
// macroprogramming lineage of refs [5-7]).
//
// A battlefield service is a DAG of operators: sensor sources feed
// filters, fusion stages, and model inference, terminating in a sink
// (the decision point). Each operator declares its compute cost and its
// data-rate transformation; the graph then admits static analysis
// (rates, bandwidth, critical-path latency) and placement optimization
// (flow/placement.h).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace iobt::flow {

using OperatorId = std::uint32_t;

enum class OpKind : std::uint8_t {
  kSource,  // produces items (a sensor stream); no inputs
  kFilter,  // per-item predicate; reduces rate by selectivity
  kFuse,    // merges multiple streams (correlation, deduplication)
  kModel,   // ML inference; heavy compute
  kSink,    // consumes the result (commander display, actuator); no outputs
};

std::string to_string(OpKind k);

struct Operator {
  OperatorId id = 0;
  OpKind kind = OpKind::kFilter;
  std::string name;
  /// Compute demand per item processed.
  double flops_per_item = 1e6;
  /// Output items per input item (sources: items per second instead).
  double selectivity = 1.0;
  /// Bytes per output item.
  double out_bytes_per_item = 100.0;
  /// For sources: emission rate, items/s.
  double source_rate_hz = 1.0;
};

struct FlowEdge {
  OperatorId from = 0;
  OperatorId to = 0;
};

/// Static per-operator analysis results.
struct OperatorRates {
  double input_rate_hz = 0.0;   // items/s arriving
  double output_rate_hz = 0.0;  // items/s leaving
  double flops_rate = 0.0;      // sustained FLOPS demanded
  double out_bandwidth_bps = 0.0;
};

class FlowGraph {
 public:
  /// Adds an operator; returns its id.
  OperatorId add(Operator op);
  void connect(OperatorId from, OperatorId to);

  const std::vector<Operator>& operators() const { return ops_; }
  const std::vector<FlowEdge>& edges() const { return edges_; }
  const Operator& op(OperatorId id) const { return ops_.at(id); }

  std::vector<OperatorId> inputs_of(OperatorId id) const;
  std::vector<OperatorId> outputs_of(OperatorId id) const;

  /// Validates: non-empty, acyclic, sources have no inputs, sinks no
  /// outputs, every non-source has >= 1 input. Returns an error string or
  /// nullopt when valid.
  std::optional<std::string> validate() const;

  /// Topological order (requires validate() to pass).
  std::vector<OperatorId> topological_order() const;

  /// Steady-state rate analysis: propagates source rates through
  /// selectivities. Fused operators sum their input rates.
  std::vector<OperatorRates> analyze_rates() const;

  /// Sum of flops_rate across operators (total compute the service needs).
  double total_flops_rate() const;

 private:
  std::vector<Operator> ops_;
  std::vector<FlowEdge> edges_;
};

/// Canned graph builders for the mission classes (tests/benches/examples).
/// "track" : N camera sources -> detect filter -> fuse -> model -> sink.
FlowGraph make_tracking_service(std::size_t camera_sources, double camera_rate_hz);

}  // namespace iobt::flow
