#pragma once
// Operator placement: mapping a service graph onto IoBT compute nodes so
// the mission's latency and capacity constraints hold (§III-B: "what
// in-network compute elements must be present to achieve the desired
// latency, and what network capacity ... must exist").
//
// Hosts are compute nodes with capacities and a hop-distance matrix
// (derived from a Topology); sources and sinks can be pinned (the camera
// runs where the camera is). The optimizer minimizes network cost
// (bandwidth x hops) subject to per-host compute capacity with a greedy
// topological pass plus a swap-based local search. Analysis reports the
// end-to-end critical-path latency so synthesis can check the mission's
// decision-loop deadline before committing.

#include <optional>
#include <string>
#include <vector>

#include "flow/graph.h"
#include "net/topology.h"

namespace iobt::flow {

using HostId = std::uint32_t;

struct Host {
  HostId id = 0;
  double capacity_flops = 1e9;
};

struct PlacementProblem {
  FlowGraph graph;
  std::vector<Host> hosts;
  /// hop[a][b]: network hop distance between hosts (0 on the diagonal).
  std::vector<std::vector<int>> hops;
  /// pinned[op] = host, for operators tied to hardware (sources, sinks).
  std::vector<std::pair<OperatorId, HostId>> pinned;
  /// Latency model knobs.
  double per_hop_latency_s = 0.002;
  double bytes_per_second = 1e6 / 8.0;  // effective per-link throughput
};

struct Placement {
  /// host[op] = assigned host.
  std::vector<HostId> host;
  bool feasible = false;
  std::string infeasible_reason;

  /// Sum over edges of bandwidth * hops (the objective).
  double network_cost_bps_hops = 0.0;
  /// Worst-case source->sink latency along the critical path: per-item
  /// compute time + per-edge transfer + per-hop latency.
  double critical_path_latency_s = 0.0;
  /// Per-host load fraction.
  std::vector<double> host_load;
};

/// Greedy placement + swap descent. Always returns an assignment; check
/// `feasible` (capacity or pinning conflicts make it false).
Placement place(const PlacementProblem& problem);

/// Evaluates an explicit assignment (for tests and what-if analysis).
Placement evaluate_placement(const PlacementProblem& problem,
                             std::vector<HostId> assignment);

/// Builds the host hop matrix from a topology and the node ids hosting
/// compute (hops between unreachable hosts are set to `unreachable_hops`).
std::vector<std::vector<int>> host_hops_from_topology(
    const net::Topology& topo, const std::vector<net::NodeId>& host_nodes,
    int unreachable_hops = 1000);

}  // namespace iobt::flow
