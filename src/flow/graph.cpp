#include "flow/graph.h"

#include <algorithm>
#include <queue>

namespace iobt::flow {

std::string to_string(OpKind k) {
  switch (k) {
    case OpKind::kSource: return "source";
    case OpKind::kFilter: return "filter";
    case OpKind::kFuse: return "fuse";
    case OpKind::kModel: return "model";
    case OpKind::kSink: return "sink";
  }
  return "unknown";
}

OperatorId FlowGraph::add(Operator op) {
  op.id = static_cast<OperatorId>(ops_.size());
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

void FlowGraph::connect(OperatorId from, OperatorId to) {
  edges_.push_back({from, to});
}

std::vector<OperatorId> FlowGraph::inputs_of(OperatorId id) const {
  std::vector<OperatorId> in;
  for (const auto& e : edges_) {
    if (e.to == id) in.push_back(e.from);
  }
  return in;
}

std::vector<OperatorId> FlowGraph::outputs_of(OperatorId id) const {
  std::vector<OperatorId> out;
  for (const auto& e : edges_) {
    if (e.from == id) out.push_back(e.to);
  }
  return out;
}

std::optional<std::string> FlowGraph::validate() const {
  if (ops_.empty()) return "empty graph";
  for (const auto& e : edges_) {
    if (e.from >= ops_.size() || e.to >= ops_.size()) return "edge out of range";
    if (e.from == e.to) return "self loop";
  }
  for (const auto& o : ops_) {
    const auto in = inputs_of(o.id);
    const auto out = outputs_of(o.id);
    if (o.kind == OpKind::kSource && !in.empty()) return "source with inputs";
    if (o.kind == OpKind::kSink && !out.empty()) return "sink with outputs";
    if (o.kind != OpKind::kSource && in.empty()) {
      return "operator '" + o.name + "' has no inputs";
    }
  }
  if (topological_order().size() != ops_.size()) return "cycle detected";
  return std::nullopt;
}

std::vector<OperatorId> FlowGraph::topological_order() const {
  std::vector<std::size_t> indegree(ops_.size(), 0);
  for (const auto& e : edges_) ++indegree[e.to];
  // Min-id first for determinism.
  std::priority_queue<OperatorId, std::vector<OperatorId>, std::greater<>> ready;
  for (const auto& o : ops_) {
    if (indegree[o.id] == 0) ready.push(o.id);
  }
  std::vector<OperatorId> order;
  while (!ready.empty()) {
    const OperatorId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (const auto& e : edges_) {
      if (e.from == v && --indegree[e.to] == 0) ready.push(e.to);
    }
  }
  return order;  // shorter than ops_.size() iff cyclic
}

std::vector<OperatorRates> FlowGraph::analyze_rates() const {
  std::vector<OperatorRates> rates(ops_.size());
  for (const OperatorId id : topological_order()) {
    const Operator& o = ops_[id];
    OperatorRates& r = rates[id];
    if (o.kind == OpKind::kSource) {
      r.input_rate_hz = 0.0;
      r.output_rate_hz = o.source_rate_hz;
    } else {
      for (const OperatorId in : inputs_of(id)) {
        r.input_rate_hz += rates[in].output_rate_hz;
      }
      r.output_rate_hz = r.input_rate_hz * o.selectivity;
    }
    const double work_rate =
        o.kind == OpKind::kSource ? r.output_rate_hz : r.input_rate_hz;
    r.flops_rate = work_rate * o.flops_per_item;
    r.out_bandwidth_bps = r.output_rate_hz * o.out_bytes_per_item * 8.0;
  }
  return rates;
}

double FlowGraph::total_flops_rate() const {
  double total = 0.0;
  for (const auto& r : analyze_rates()) total += r.flops_rate;
  return total;
}

FlowGraph make_tracking_service(std::size_t camera_sources, double camera_rate_hz) {
  FlowGraph g;
  std::vector<OperatorId> cams;
  for (std::size_t i = 0; i < camera_sources; ++i) {
    cams.push_back(g.add({.kind = OpKind::kSource,
                          .name = "camera" + std::to_string(i),
                          .flops_per_item = 1e5,
                          .selectivity = 1.0,
                          .out_bytes_per_item = 50000.0,  // a frame crop
                          .source_rate_hz = camera_rate_hz}));
  }
  const auto detect = g.add({.kind = OpKind::kFilter,
                             .name = "detect",
                             .flops_per_item = 5e8,  // per-frame detector
                             .selectivity = 0.1,     // most frames empty
                             .out_bytes_per_item = 500.0});
  const auto fuse = g.add({.kind = OpKind::kFuse,
                           .name = "fuse",
                           .flops_per_item = 1e6,
                           .selectivity = 0.5,  // dedup across cameras
                           .out_bytes_per_item = 400.0});
  const auto classify = g.add({.kind = OpKind::kModel,
                               .name = "classify",
                               .flops_per_item = 2e9,
                               .selectivity = 1.0,
                               .out_bytes_per_item = 200.0});
  const auto sink = g.add({.kind = OpKind::kSink,
                           .name = "toc",
                           .flops_per_item = 1e4,
                           .selectivity = 1.0,
                           .out_bytes_per_item = 0.0});
  for (const auto c : cams) g.connect(c, detect);
  g.connect(detect, fuse);
  g.connect(fuse, classify);
  g.connect(classify, sink);
  return g;
}

}  // namespace iobt::flow
