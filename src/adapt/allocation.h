#pragma once
// Adaptive compute/communication resource allocation (§IV-B): "Resource
// allocation algorithms will be needed that can (i) dynamically reallocate
// heterogeneous resources at the edge, network core, and backend ...
// (ii) scale resource allocations to match workloads that exhibit high
// spatial and temporal variability, and (iii) prevent any subset of IoBT
// devices (including attackers) from saturating cloud processing and
// communication resources."
//
// ComputePool allocates analytic tasks to heterogeneous compute nodes
// under capacity and hop-latency constraints, rebalances when nodes fail
// or load shifts, and enforces per-principal admission quotas so no
// client — including a compromised one — can starve the rest.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace iobt::adapt {

using ComputeNodeId = std::uint32_t;
using TaskId = std::uint64_t;
using PrincipalId = std::uint32_t;  // who submitted the task (AssetId)

struct ComputeNode {
  ComputeNodeId id = 0;
  double capacity_flops = 1e9;  // sustainable throughput
  /// Network distance from the tasking edge (hops); latency proxy.
  int hops = 1;
  bool alive = true;
};

struct ComputeTask {
  TaskId id = 0;
  PrincipalId principal = 0;
  double demand_flops = 1e8;
  /// Task unusable if placed further than this many hops away.
  int max_hops = 8;
};

struct PoolConfig {
  /// Maximum fraction of total pool capacity a single principal may hold —
  /// the saturation guard of §IV-B(iii).
  double per_principal_capacity_cap = 0.34;
};

class ComputePool {
 public:
  explicit ComputePool(PoolConfig config = {}) : cfg_(config) {}

  ComputeNodeId add_node(double capacity_flops, int hops);
  void set_node_alive(ComputeNodeId id, bool alive);

  /// Attempts to place a task. Returns the chosen node, or nullopt when
  /// rejected (no capacity within the hop bound, or the principal's quota
  /// is exhausted). Placement is worst-fit (most free capacity) among the
  /// feasible nodes, which spreads load and leaves headroom for failover.
  std::optional<ComputeNodeId> submit(const ComputeTask& task);

  /// Completes (removes) a task.
  void finish(TaskId id);

  /// Re-places every task that currently sits on a dead node. Returns the
  /// number of tasks that could not be re-placed (dropped; callers decide
  /// whether to retry or shed them).
  std::size_t rebalance();

  double total_capacity() const;
  double used_capacity() const;
  double node_load(ComputeNodeId id) const;  // fraction of node capacity
  double principal_usage(PrincipalId p) const;
  std::size_t running_tasks() const { return placements_.size(); }
  std::optional<ComputeNodeId> location(TaskId id) const;
  std::size_t rejected_for_quota() const { return quota_rejections_; }

 private:
  std::optional<ComputeNodeId> pick_node(const ComputeTask& task) const;

  PoolConfig cfg_;
  std::vector<ComputeNode> nodes_;
  std::vector<double> used_;  // per node
  struct Placement {
    ComputeTask task;
    ComputeNodeId node;
  };
  std::unordered_map<TaskId, Placement> placements_;
  std::unordered_map<PrincipalId, double> principal_used_;
  std::size_t quota_rejections_ = 0;
};

}  // namespace iobt::adapt
