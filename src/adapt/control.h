#pragma once
// Adaptive control primitives (§IV-A cites adaptive control as the third
// pillar of self-aware adaptation; §IV-B motivates controller *diversity*:
// "instead [of] brittle controllers designed with fixed assumptions, one
// may design novel controllers that are parameterized differently but
// adapt their parameterization by observing their neighbors").

#include <algorithm>
#include <cstddef>
#include <vector>

namespace iobt::adapt {

/// AIMD rate controller (the TCP reflex): additive increase while the
/// resource is healthy, multiplicative decrease on congestion signals.
/// Used to adapt report rates to available bandwidth under jamming.
class AimdController {
 public:
  AimdController(double initial_rate, double min_rate, double max_rate,
                 double increase = 1.0, double decrease_factor = 0.5)
      : rate_(initial_rate),
        min_(min_rate),
        max_(max_rate),
        inc_(increase),
        dec_(decrease_factor) {}

  double rate() const { return rate_; }

  /// Feed one feedback signal: `congested` true when drops/latency spiked.
  double update(bool congested) {
    rate_ = congested ? std::max(min_, rate_ * dec_) : std::min(max_, rate_ + inc_);
    return rate_;
  }

 private:
  double rate_, min_, max_, inc_, dec_;
};

/// Discrete PI controller for tracking a setpoint (e.g. queue occupancy,
/// coverage level) by adjusting an actuation knob.
class PiController {
 public:
  PiController(double kp, double ki, double out_min, double out_max)
      : kp_(kp), ki_(ki), out_min_(out_min), out_max_(out_max) {}

  double update(double setpoint, double measured, double dt_s) {
    const double error = setpoint - measured;
    integral_ += error * dt_s;
    // Anti-windup: clamp the integral so the output can always recover.
    const double i_limit = (out_max_ - out_min_) / std::max(1e-9, ki_);
    integral_ = std::clamp(integral_, -i_limit, i_limit);
    return std::clamp(kp_ * error + ki_ * integral_, out_min_, out_max_);
  }

  void reset() { integral_ = 0.0; }

 private:
  double kp_, ki_, out_min_, out_max_;
  double integral_ = 0.0;
};

/// A population of parameterized controllers that adapt by imitating
/// better-performing neighbors (E10, controller diversity). Each agent
/// holds a parameter vector; after each evaluation round an agent adopts
/// (with learning rate eta) the parameters of its best-performing
/// neighbor if that neighbor outperformed it.
class ImitationPopulation {
 public:
  /// `params[i]` is agent i's parameter vector (all same length).
  explicit ImitationPopulation(std::vector<std::vector<double>> params)
      : params_(std::move(params)) {}

  std::size_t size() const { return params_.size(); }
  const std::vector<double>& params(std::size_t i) const { return params_[i]; }
  std::vector<double>& mutable_params(std::size_t i) { return params_[i]; }

  /// One imitation round. `performance[i]` is agent i's score this round;
  /// `neighbors[i]` lists who i can observe. eta in (0, 1] blends toward
  /// the imitated parameters.
  void imitate(const std::vector<double>& performance,
               const std::vector<std::vector<std::size_t>>& neighbors, double eta) {
    std::vector<std::vector<double>> next = params_;
    for (std::size_t i = 0; i < params_.size(); ++i) {
      std::size_t best = i;
      for (std::size_t n : neighbors[i]) {
        if (performance[n] > performance[best]) best = n;
      }
      if (best == i) continue;
      for (std::size_t k = 0; k < params_[i].size(); ++k) {
        next[i][k] = (1.0 - eta) * params_[i][k] + eta * params_[best][k];
      }
    }
    params_ = std::move(next);
  }

  /// Population diversity: mean per-dimension variance of parameters.
  double diversity() const {
    if (params_.empty() || params_[0].empty()) return 0.0;
    const std::size_t dims = params_[0].size();
    double total_var = 0.0;
    for (std::size_t k = 0; k < dims; ++k) {
      double mean = 0.0;
      for (const auto& p : params_) mean += p[k];
      mean /= static_cast<double>(params_.size());
      double var = 0.0;
      for (const auto& p : params_) var += (p[k] - mean) * (p[k] - mean);
      total_var += var / static_cast<double>(params_.size());
    }
    return total_var / static_cast<double>(dims);
  }

 private:
  std::vector<std::vector<double>> params_;
};

}  // namespace iobt::adapt
