#pragma once
// Self-stabilizing spanning tree (a concrete instance of the paper's
// "self-stabilizing algorithms" foundation, §IV-A).
//
// Every participating node periodically broadcasts (root_id, dist,
// parent); each node adopts the smallest root it hears and the neighbor
// offering the shortest distance to it, with hop-count TTL aging so stale
// state dies out. Starting from ANY state (including after arbitrary node
// failures or partitions), the protocol converges to a legal BFS tree
// rooted at the smallest live node id in each partition — that is the
// self-stabilization property the tests verify.

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/dispatcher.h"
#include "things/world.h"

namespace iobt::adapt {

struct TreeState {
  std::uint32_t root = 0;  // believed root asset id
  int dist = 0;            // believed hops to root
  std::optional<std::uint32_t> parent;  // parent asset id (nullopt at root)
  sim::SimTime last_update;
};

class SpanningTreeProtocol {
 public:
  SpanningTreeProtocol(things::World& world, net::Dispatcher& dispatcher,
                       std::vector<things::AssetId> members,
                       sim::Duration hello_period = sim::Duration::seconds(2.0),
                       sim::Duration state_ttl = sim::Duration::seconds(8.0));

  void start();

  const TreeState& state(things::AssetId id) const { return states_.at(id); }
  const std::vector<things::AssetId>& members() const { return members_; }

  // --- Legality checks (used as invariants) -------------------------------

  /// True iff every live member's parent chain reaches the member-minimum
  /// live id of its connectivity component without cycles, and roots claim
  /// dist 0.
  bool tree_legal() const;

  /// Number of distinct roots currently believed by live members.
  std::size_t believed_root_count() const;

 private:
  struct Hello {
    std::uint32_t sender;
    std::uint32_t root;
    int dist;
  };

  void tick(things::AssetId id);
  void handle_hello(things::AssetId id, const net::Message& m);

  things::World& world_;
  net::Dispatcher& disp_;
  std::vector<things::AssetId> members_;
  sim::Duration hello_period_;
  sim::Duration ttl_;
  std::unordered_map<things::AssetId, TreeState> states_;
  // Per-member view of neighbors: last heard (root, dist, when).
  std::unordered_map<things::AssetId,
                     std::unordered_map<std::uint32_t, std::pair<Hello, sim::SimTime>>>
      heard_;
  /// Lifetime token for the per-member hello loops; each loop unschedules
  /// itself if the protocol object is destroyed before the simulator.
  std::shared_ptr<char> alive_ = std::make_shared<char>('\0');
  bool started_ = false;
};

}  // namespace iobt::adapt
