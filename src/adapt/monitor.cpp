#include "adapt/monitor.h"

namespace iobt::adapt {

void InvariantMonitor::watch(std::string name, std::function<bool()> predicate,
                             std::function<void()> on_violation) {
  watched_.push_back(
      {std::move(name), std::move(predicate), std::move(on_violation), true, SIZE_MAX});
}

void InvariantMonitor::start() {
  if (started_) return;
  started_ = true;
  sim_.schedule_every(
      period_,
      [this, alive = std::weak_ptr<char>(alive_)]() {
        // The tick may outlive the monitor (the simulator keeps running
        // after services are torn down); expiry unschedules the loop
        // instead of touching a dangling `this`.
        if (alive.expired()) return false;
        check_now();
        return true;
      },
      tick_tag_);
}

void InvariantMonitor::check_now() {
  trace::Tracer& tr = sim_.tracer();
  trace::Span span(tr, tr.enabled() ? trace_check_.id(tr) : 0);
  const sim::SimTime now = sim_.now();
  for (Watched& w : watched_) {
    const bool holds = w.predicate();
    if (w.holding && !holds) {
      // Violation edge: open a record and fire the reflex.
      w.holding = false;
      w.open_record = history_.size();
      history_.push_back({w.name, now, sim::SimTime::max()});
      if (tr.enabled()) tr.instant(trace_violation_.id(tr));
      if (w.on_violation) w.on_violation();
    } else if (!w.holding && holds) {
      w.holding = true;
      if (w.open_record != SIZE_MAX) {
        history_[w.open_record].ended = now;
        w.open_record = SIZE_MAX;
      }
    }
  }
}

bool InvariantMonitor::holding(const std::string& name) const {
  for (const Watched& w : watched_) {
    if (w.name == name) return w.holding;
  }
  return true;
}

std::size_t InvariantMonitor::violation_count(const std::string& name) const {
  std::size_t n = 0;
  for (const auto& r : history_) {
    if (r.invariant == name) ++n;
  }
  return n;
}

sim::Duration InvariantMonitor::mean_repair_time(const std::string& name) const {
  std::int64_t total = 0, n = 0;
  for (const auto& r : history_) {
    if (r.invariant == name && !r.ongoing()) {
      total += r.duration().nanos();
      ++n;
    }
  }
  return n == 0 ? sim::Duration::zero() : sim::Duration(total / n);
}

}  // namespace iobt::adapt
