#pragma once
// Invariant monitoring: the sensing half of self-aware adaptation (§IV-A —
// "self-stabilizing algorithms adapt to maintain an invariant by
// triggering corrective action, when the invariant is violated").
//
// An InvariantMonitor periodically evaluates named predicates over system
// state. On a false->true violation edge it fires the registered reflex
// callbacks; on recovery it records the violation interval so experiments
// can report time-to-detect and time-to-repair.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "trace/trace.h"

namespace iobt::adapt {

struct ViolationRecord {
  std::string invariant;
  sim::SimTime began;
  sim::SimTime ended;       // == SimTime::max() while ongoing
  bool ongoing() const { return ended == sim::SimTime::max(); }
  sim::Duration duration() const { return ended - began; }
};

class InvariantMonitor {
 public:
  InvariantMonitor(sim::Simulator& simulator, sim::Duration check_period)
      : sim_(simulator), period_(check_period),
        tick_tag_(simulator.intern("adapt.monitor")) {}

  /// Registers a named invariant. `predicate` returns true while the
  /// invariant HOLDS. `on_violation` (optional) fires once per violation
  /// edge, not per check.
  void watch(std::string name, std::function<bool()> predicate,
             std::function<void()> on_violation = nullptr);

  /// Starts periodic checking.
  void start();

  /// Forces an immediate check of all invariants (reflexes may call this
  /// after acting, to confirm repair).
  void check_now();

  /// True if the named invariant held at the last check.
  bool holding(const std::string& name) const;

  const std::vector<ViolationRecord>& history() const { return history_; }
  std::size_t violation_count(const std::string& name) const;
  /// Mean time-to-repair over completed violations of `name` (0 if none).
  sim::Duration mean_repair_time(const std::string& name) const;

 private:
  struct Watched {
    std::string name;
    std::function<bool()> predicate;
    std::function<void()> on_violation;
    bool holding = true;
    std::size_t open_record = SIZE_MAX;
  };

  sim::Simulator& sim_;
  sim::Duration period_;
  sim::TagId tick_tag_;
  /// Trace labels: one span per sweep of the watched predicates, plus an
  /// instant on each violation edge (the moment a reflex is triggered).
  trace::Name trace_check_{"adapt.monitor.check", "adapt"};
  trace::Name trace_violation_{"adapt.violation", "adapt"};
  /// Lifetime token for the periodic check loop: the scheduled lambda
  /// holds a weak_ptr and unschedules itself once the monitor is gone, so
  /// a monitor with a shorter life than its simulator never dangles.
  std::shared_ptr<char> alive_ = std::make_shared<char>('\0');
  std::vector<Watched> watched_;
  std::vector<ViolationRecord> history_;
  bool started_ = false;
};

}  // namespace iobt::adapt
