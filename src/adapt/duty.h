#pragma once
// Energy-aware duty cycling (§II: forward-deployed assets have
// "limitations on energy, power, storage, and bandwidth" and "will often
// need to support tasks with limited time availability").
//
// Given a battery state and per-activity costs, plan_duty_cycle computes
// the highest sensing duty fraction that still meets a required mission
// lifetime; the DutyCycleController re-plans as the battery drains, so an
// asset that loses energy faster than modelled (e.g. retransmissions under
// jamming) automatically backs off instead of dying before end of mission.

#include <algorithm>

namespace iobt::adapt {

struct DutyInputs {
  double remaining_j = 0.0;
  /// Unavoidable baseline drain, J/s (radio idle, OS).
  double idle_cost_per_s = 1e-4;
  /// Energy per sensing sweep (sense + report transmission), J.
  double cost_per_sweep_j = 1e-3;
  /// Sweep rate at 100% duty, Hz.
  double full_duty_rate_hz = 1.0;
  /// The mission needs this asset alive for this long, seconds.
  double required_lifetime_s = 3600.0;
};

struct DutyPlan {
  /// Chosen duty in [0, 1]: fraction of full-rate sweeps to actually run.
  double duty = 1.0;
  /// Projected lifetime at that duty, seconds.
  double projected_lifetime_s = 0.0;
  /// False when even duty 0 cannot survive the required lifetime (idle
  /// drain alone kills the asset) — synthesis should plan a replacement.
  bool meets_lifetime = false;
};

inline DutyPlan plan_duty_cycle(const DutyInputs& in) {
  DutyPlan plan;
  const double idle_total = in.idle_cost_per_s * in.required_lifetime_s;
  if (in.remaining_j <= 0.0 || idle_total >= in.remaining_j) {
    plan.duty = 0.0;
    plan.projected_lifetime_s =
        in.idle_cost_per_s > 0 ? in.remaining_j / in.idle_cost_per_s : 1e18;
    plan.meets_lifetime = false;
    return plan;
  }
  // Energy left for sensing over the horizon -> sustainable sweep budget.
  const double sense_budget_j = in.remaining_j - idle_total;
  const double sweeps_affordable = sense_budget_j / std::max(1e-12, in.cost_per_sweep_j);
  const double sweeps_at_full =
      in.full_duty_rate_hz * in.required_lifetime_s;
  plan.duty = std::clamp(sweeps_affordable / std::max(1.0, sweeps_at_full), 0.0, 1.0);
  const double burn_rate =
      in.idle_cost_per_s + plan.duty * in.full_duty_rate_hz * in.cost_per_sweep_j;
  plan.projected_lifetime_s = in.remaining_j / std::max(1e-12, burn_rate);
  plan.meets_lifetime = plan.projected_lifetime_s + 1e-6 >= in.required_lifetime_s;
  return plan;
}

/// Re-plans as time passes and the battery drains; sensors call
/// should_sweep() on each tick and skip sweeps the plan cannot afford.
/// Deterministic: duty is rationed by an error accumulator, not dice.
class DutyCycleController {
 public:
  DutyCycleController(DutyInputs inputs, double mission_end_s)
      : inputs_(inputs), mission_end_s_(mission_end_s) {
    replan(0.0, inputs.remaining_j);
  }

  /// Updates the plan from the live battery level at time `now_s`.
  void replan(double now_s, double remaining_j) {
    DutyInputs in = inputs_;
    in.remaining_j = remaining_j;
    in.required_lifetime_s = std::max(0.0, mission_end_s_ - now_s);
    plan_ = plan_duty_cycle(in);
  }

  /// One full-rate sweep opportunity: true iff this sweep should run.
  bool should_sweep() {
    accumulator_ += plan_.duty;
    if (accumulator_ >= 1.0 - 1e-12) {
      accumulator_ -= 1.0;
      return true;
    }
    return false;
  }

  const DutyPlan& plan() const { return plan_; }

 private:
  DutyInputs inputs_;
  double mission_end_s_;
  DutyPlan plan_;
  double accumulator_ = 0.0;
};

}  // namespace iobt::adapt
