#pragma once
// The reflex engine: chained condition->action rules (§IV — "in biological
// systems, reflex theory states that complex behavior can be attained ...
// through the combined action of individual reflexes that have been
// chained together").
//
// A reflex binds an invariant name to a corrective action with a cooldown
// (so a persistent violation does not re-fire the action every check) and
// an escalation chain: if the same violation re-fires `escalate_after`
// times without an intervening recovery, the next rule in the chain runs
// instead (local fix -> stronger fix -> report upward).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adapt/monitor.h"
#include "trace/trace.h"

namespace iobt::adapt {

struct ReflexAction {
  std::string name;
  std::function<void()> act;
};

struct FiredReflex {
  std::string invariant;
  std::string action;
  sim::SimTime at;
};

class ReflexEngine {
 public:
  ReflexEngine(sim::Simulator& simulator, InvariantMonitor& monitor)
      : sim_(simulator), monitor_(monitor),
        escalation_tag_(simulator.intern("reflex.escalation")) {}

  /// Binds an escalation chain of actions to an invariant. When the
  /// invariant is violated, chain[0] runs; if violation persists through
  /// `escalate_after` further firings, chain[1] runs, and so on. The chain
  /// resets on recovery.
  void bind(const std::string& invariant, std::vector<ReflexAction> chain,
            sim::Duration cooldown = sim::Duration::seconds(5.0),
            int escalate_after = 2);

  /// Installs the bindings into the monitor. Call once, after all bind()s.
  void arm();

  const std::vector<FiredReflex>& log() const { return log_; }
  std::size_t fired_count() const { return log_.size(); }

 private:
  struct Binding {
    std::string invariant;
    std::vector<ReflexAction> chain;
    sim::Duration cooldown;
    int escalate_after;
    // Runtime state.
    std::size_t level = 0;
    int fires_at_level = 0;
    sim::SimTime last_fire = sim::SimTime(-1'000'000'000);
  };

  void fire(std::size_t binding_index);

  sim::Simulator& sim_;
  InvariantMonitor& monitor_;
  sim::TagId escalation_tag_;
  /// Trace labels: a span around each corrective action (how long repairs
  /// take) and a running fired-reflex counter track.
  trace::Name trace_fire_{"adapt.reflex.fire", "adapt"};
  trace::Name trace_fired_total_{"adapt.reflex.fired", "adapt"};
  /// Lifetime token for the escalation poll; the loop unschedules itself
  /// when the engine is destroyed before its simulator quiesces.
  std::shared_ptr<char> alive_ = std::make_shared<char>('\0');
  std::vector<Binding> bindings_;
  std::vector<FiredReflex> log_;
  bool armed_ = false;
};

}  // namespace iobt::adapt
