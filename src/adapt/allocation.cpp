#include "adapt/allocation.h"

#include <algorithm>

namespace iobt::adapt {

ComputeNodeId ComputePool::add_node(double capacity_flops, int hops) {
  const auto id = static_cast<ComputeNodeId>(nodes_.size());
  nodes_.push_back({id, capacity_flops, hops, true});
  used_.push_back(0.0);
  return id;
}

void ComputePool::set_node_alive(ComputeNodeId id, bool alive) {
  nodes_.at(id).alive = alive;
}

std::optional<ComputeNodeId> ComputePool::pick_node(const ComputeTask& task) const {
  std::optional<ComputeNodeId> best;
  double best_free = -1.0;
  for (const auto& n : nodes_) {
    if (!n.alive || n.hops > task.max_hops) continue;
    const double free = n.capacity_flops - used_[n.id];
    if (free < task.demand_flops) continue;
    // Worst-fit: keep headroom spread across nodes.
    if (free > best_free) {
      best_free = free;
      best = n.id;
    }
  }
  return best;
}

std::optional<ComputeNodeId> ComputePool::submit(const ComputeTask& task) {
  // Saturation guard: a principal may not exceed its capacity share even
  // if the pool is otherwise idle.
  const double cap = cfg_.per_principal_capacity_cap * total_capacity();
  auto pit = principal_used_.find(task.principal);
  const double already = pit == principal_used_.end() ? 0.0 : pit->second;
  if (already + task.demand_flops > cap) {
    ++quota_rejections_;
    return std::nullopt;
  }

  const auto node = pick_node(task);
  if (!node) return std::nullopt;
  used_[*node] += task.demand_flops;
  principal_used_[task.principal] = already + task.demand_flops;
  placements_[task.id] = {task, *node};
  return node;
}

void ComputePool::finish(TaskId id) {
  auto it = placements_.find(id);
  if (it == placements_.end()) return;
  used_[it->second.node] -= it->second.task.demand_flops;
  principal_used_[it->second.task.principal] -= it->second.task.demand_flops;
  placements_.erase(it);
}

std::size_t ComputePool::rebalance() {
  // Collect tasks stranded on dead nodes (deterministic order by TaskId).
  std::vector<TaskId> stranded;
  for (const auto& [tid, pl] : placements_) {
    if (!nodes_[pl.node].alive) stranded.push_back(tid);
  }
  std::sort(stranded.begin(), stranded.end());

  std::size_t dropped = 0;
  for (const TaskId tid : stranded) {
    const Placement pl = placements_[tid];
    // Free its accounting fully, then resubmit through the normal path
    // (quota re-checked: a quota that tightened meanwhile is enforced).
    used_[pl.node] -= pl.task.demand_flops;
    principal_used_[pl.task.principal] -= pl.task.demand_flops;
    placements_.erase(tid);
    if (!submit(pl.task)) ++dropped;
  }
  return dropped;
}

double ComputePool::total_capacity() const {
  double t = 0.0;
  for (const auto& n : nodes_) {
    if (n.alive) t += n.capacity_flops;
  }
  return t;
}

double ComputePool::used_capacity() const {
  double t = 0.0;
  for (const auto& [tid, pl] : placements_) {
    if (nodes_[pl.node].alive) t += pl.task.demand_flops;
  }
  return t;
}

double ComputePool::node_load(ComputeNodeId id) const {
  const auto& n = nodes_.at(id);
  return n.capacity_flops > 0 ? used_[id] / n.capacity_flops : 0.0;
}

double ComputePool::principal_usage(PrincipalId p) const {
  auto it = principal_used_.find(p);
  return it == principal_used_.end() ? 0.0 : it->second;
}

std::optional<ComputeNodeId> ComputePool::location(TaskId id) const {
  auto it = placements_.find(id);
  if (it == placements_.end()) return std::nullopt;
  return it->second.node;
}

}  // namespace iobt::adapt
