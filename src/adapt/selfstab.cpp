#include "adapt/selfstab.h"

#include <algorithm>

namespace iobt::adapt {

namespace {
constexpr const char* kHello = "tree.hello";
constexpr std::size_t kHelloBytes = 24;
// Distance ceiling: bounds count-to-infinity convergence after a root
// death to ~kMaxDist hello rounds. IoBT composites here are tens of hops
// at most, so 20 is generous for legality and tight for recovery.
constexpr int kMaxDist = 20;
}  // namespace

SpanningTreeProtocol::SpanningTreeProtocol(things::World& world,
                                           net::Dispatcher& dispatcher,
                                           std::vector<things::AssetId> members,
                                           sim::Duration hello_period,
                                           sim::Duration state_ttl)
    : world_(world),
      disp_(dispatcher),
      members_(std::move(members)),
      hello_period_(hello_period),
      ttl_(state_ttl) {
  for (const auto id : members_) {
    // Arbitrary (self-rooted) initial state: stabilization must fix it.
    states_[id] = TreeState{id, 0, std::nullopt, sim::SimTime::zero()};
    disp_.on(world_.asset(id).node, kHello,
             [this, id](const net::Message& m) { handle_hello(id, m); });
  }
}

void SpanningTreeProtocol::start() {
  if (started_) return;
  started_ = true;
  const sim::TagId hello_tag = world_.simulator().intern("tree.hello_loop");
  for (const auto id : members_) {
    world_.simulator().schedule_every(
        hello_period_,
        [this, id, alive = std::weak_ptr<char>(alive_)]() {
          // The protocol may be torn down while the simulator keeps
          // draining; the asset_live guard alone would still read through
          // a dangling `this` first.
          if (alive.expired()) return false;
          if (!world_.asset_live(id)) return false;
          tick(id);
          return true;
        },
        hello_tag);
  }
}

void SpanningTreeProtocol::tick(things::AssetId id) {
  const sim::SimTime now = world_.simulator().now();
  TreeState& st = states_[id];
  auto& heard = heard_[id];

  // Age out stale neighbor state.
  for (auto it = heard.begin(); it != heard.end();) {
    if (now - it->second.second > ttl_) {
      it = heard.erase(it);
    } else {
      ++it;
    }
  }

  // Recompute from scratch each tick (self-stabilizing: the rule depends
  // only on current neighbor state, never on our own possibly-corrupt
  // state). Best offer = smallest root, then smallest dist, then smallest
  // sender id.
  std::uint32_t best_root = id;
  int best_dist = 0;
  std::optional<std::uint32_t> best_parent;
  for (const auto& [sender, entry] : heard) {
    const Hello& h = entry.first;
    const int cand_dist = h.dist + 1;
    if (cand_dist > kMaxDist) continue;
    // Lexicographic preference: smaller root, then shorter distance, then
    // smaller parent id (deterministic tie-break). The self option
    // (root=id, dist=0) participates like any other offer, so a node only
    // roots itself when nothing better is audible.
    const bool better =
        h.root < best_root || (h.root == best_root && cand_dist < best_dist) ||
        (h.root == best_root && cand_dist == best_dist && best_parent &&
         sender < *best_parent);
    if (better) {
      best_root = h.root;
      best_dist = cand_dist;
      best_parent = sender;
    }
  }
  st.root = best_root;
  st.dist = best_parent ? best_dist : 0;
  st.parent = best_parent;
  st.last_update = now;

  // Advertise.
  net::Message m;
  m.kind = kHello;
  m.size_bytes = kHelloBytes;
  m.payload = Hello{id, st.root, st.dist};
  world_.network().broadcast(world_.asset(id).node, std::move(m));
}

void SpanningTreeProtocol::handle_hello(things::AssetId id, const net::Message& m) {
  const auto& h = std::any_cast<const Hello&>(m.payload);
  heard_[id][h.sender] = {h, world_.simulator().now()};
}

bool SpanningTreeProtocol::tree_legal() const {
  // Compute, per connectivity component of live members, the minimum id —
  // the legitimate root.
  std::vector<things::AssetId> live;
  for (const auto id : members_) {
    if (world_.asset_live(id)) live.push_back(id);
  }
  if (live.empty()) return true;

  const things::World& world = world_;
  const net::Topology topo = world.network().connectivity();
  // Map node -> component label.
  const auto comp = topo.components();

  std::unordered_map<int, std::uint32_t> min_id_per_comp;
  for (const auto id : live) {
    const int c = comp[world_.asset(id).node];
    auto it = min_id_per_comp.find(c);
    if (it == min_id_per_comp.end() || id < it->second) min_id_per_comp[c] = id;
  }

  for (const auto id : live) {
    const TreeState& st = states_.at(id);
    const int c = comp[world_.asset(id).node];
    if (st.root != min_id_per_comp[c]) return false;
    if (id == st.root) {
      if (st.parent.has_value() || st.dist != 0) return false;
    } else {
      if (!st.parent.has_value()) return false;
      // Parent chain must strictly decrease dist and stay live.
      std::uint32_t cur = id;
      int guard = 0;
      while (cur != st.root) {
        const TreeState& cs = states_.at(cur);
        if (!cs.parent || !world_.asset_live(*cs.parent)) return false;
        const TreeState& ps = states_.at(*cs.parent);
        if (ps.dist >= cs.dist) return false;  // cycle or stale
        cur = *cs.parent;
        if (++guard > kMaxDist) return false;
      }
    }
  }
  return true;
}

std::size_t SpanningTreeProtocol::believed_root_count() const {
  std::vector<std::uint32_t> roots;
  for (const auto id : members_) {
    if (!world_.asset_live(id)) continue;
    roots.push_back(states_.at(id).root);
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots.size();
}

}  // namespace iobt::adapt
