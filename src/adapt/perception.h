#pragma once
// Adaptive perception: modality switching (§IV-B — "seismic sensing may be
// used when smoke or other phenomena render visual tracking unreliable, or
// when connection is lost with the camera due to a wireless jamming
// attack").
//
// The ModalitySwitcher tracks an EWMA of per-sweep detection yield for the
// active modality, against a baseline learned during healthy operation.
// When yield collapses below `degraded_fraction` of baseline, it fails
// over to the best-yielding redundant modality — redundancy that synthesis
// deliberately provisioned (e.g. camera + radar over the same region).

#include <algorithm>
#include <string>
#include <vector>

#include "things/capability.h"
#include "trace/trace.h"

namespace iobt::adapt {

class ModalitySwitcher {
 public:
  /// `ranked_modalities` is the preference order (primary first) — the
  /// redundancy discovered for this sensing function.
  explicit ModalitySwitcher(std::vector<things::Modality> ranked_modalities,
                            double ewma_alpha = 0.3, double degraded_fraction = 0.35,
                            int min_healthy_sweeps = 3)
      : modalities_(std::move(ranked_modalities)),
        alpha_(ewma_alpha),
        degraded_fraction_(degraded_fraction),
        min_healthy_sweeps_(min_healthy_sweeps) {
    yields_.resize(modalities_.size(), 0.0);
    baselines_.resize(modalities_.size(), 0.0);
    healthy_sweeps_.resize(modalities_.size(), 0);
  }

  things::Modality current() const { return modalities_.at(active_); }
  std::size_t switch_count() const { return switches_; }

  /// Every configured modality except the active one (exploration targets).
  std::vector<things::Modality> alternates() const {
    std::vector<things::Modality> out;
    for (std::size_t i = 0; i < modalities_.size(); ++i) {
      if (i != active_) out.push_back(modalities_[i]);
    }
    return out;
  }

  /// Feeds one sweep's detection count for `modality`. Returns true if
  /// this call triggered a failover.
  bool feed(things::Modality modality, double detections) {
    const std::size_t idx = index_of(modality);
    if (idx == modalities_.size()) return false;
    yields_[idx] = alpha_ * detections + (1.0 - alpha_) * yields_[idx];

    // Learn the baseline while the modality performs (monotone max keeps
    // a jamming-era trickle from eroding what "healthy" means).
    if (yields_[idx] > baselines_[idx]) {
      baselines_[idx] = yields_[idx];
      if (idx == active_) ++healthy_sweeps_[idx];
    }

    if (idx != active_) return false;
    ++active_feeds_;
    // Post-switch grace: give the new modality time to demonstrate a
    // baseline before it can be judged, or failover ping-pongs.
    if (active_feeds_ < min_healthy_sweeps_) return false;
    // Failover decision. Two paths:
    //  (a) proven-then-collapsed: the active modality had a healthy
    //      baseline and its yield fell below the degraded fraction;
    //  (b) cold-start failure: the active modality has produced nothing
    //      after a patience period while some alternate demonstrably
    //      yields (it was simply the wrong sensor for this scene).
    const bool proven = healthy_sweeps_[idx] >= min_healthy_sweeps_ &&
                        baselines_[idx] > 0.0;
    const bool collapsed = proven && yields_[idx] < degraded_fraction_ * baselines_[idx];
    bool cold_dead = !proven && active_feeds_ > 2 * min_healthy_sweeps_ &&
                     baselines_[idx] <= 0.0;
    if (cold_dead) {
      bool alternative_alive = false;
      for (std::size_t i = 0; i < modalities_.size(); ++i) {
        alternative_alive |= (i != active_ && yields_[i] > 0.0);
      }
      cold_dead = alternative_alive;
    }
    if (!collapsed && !cold_dead) return false;

    // Pick the best alternative by current yield, falling back to
    // preference order among never-sampled ones.
    std::size_t best = active_;
    for (std::size_t i = 0; i < modalities_.size(); ++i) {
      if (i == active_) continue;
      if (best == active_ || yields_[i] > yields_[best]) best = i;
    }
    if (best == active_) return false;
    active_ = best;
    active_feeds_ = 0;
    ++switches_;
    // The failover is the reflex the paper's §IV-B describes; mark it on
    // the timeline of whoever is running us (mission sweep handler).
    trace::instant_here("adapt.modality_switch", "adapt");
    return true;
  }

  /// Allows the mission layer to force a modality (commander override).
  void force(things::Modality m) {
    const std::size_t idx = index_of(m);
    if (idx < modalities_.size()) active_ = idx;
  }

 private:
  std::size_t index_of(things::Modality m) const {
    for (std::size_t i = 0; i < modalities_.size(); ++i) {
      if (modalities_[i] == m) return i;
    }
    return modalities_.size();
  }

  std::vector<things::Modality> modalities_;
  double alpha_;
  double degraded_fraction_;
  int min_healthy_sweeps_;
  std::vector<double> yields_;
  std::vector<double> baselines_;
  std::vector<int> healthy_sweeps_;
  std::size_t active_ = 0;
  std::size_t switches_ = 0;
  int active_feeds_ = 0;
};

}  // namespace iobt::adapt
