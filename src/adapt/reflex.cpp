#include "adapt/reflex.h"

#include <cassert>

namespace iobt::adapt {

void ReflexEngine::bind(const std::string& invariant, std::vector<ReflexAction> chain,
                        sim::Duration cooldown, int escalate_after) {
  assert(!armed_ && "bind() after arm()");
  assert(!chain.empty());
  bindings_.push_back(Binding{invariant, std::move(chain), cooldown, escalate_after});
}

void ReflexEngine::arm() {
  if (armed_) return;
  armed_ = true;
  for (std::size_t bi = 0; bi < bindings_.size(); ++bi) {
    // The monitor fires on the violation *edge*; persistent violations
    // re-edge after each recovery check, and the cooldown inside fire()
    // handles rapid flapping. We also hook a periodic re-fire for
    // violations that never recover: re-check on each monitor tick via a
    // wrapper predicate is unnecessary — the monitor only edges once — so
    // the engine polls its bindings on its own cadence.
    monitor_.watch(
        "reflex." + bindings_[bi].invariant + "." + std::to_string(bi),
        [this, bi]() {
          // Holds while the underlying invariant holds; repeated false
          // evaluations keep the violation open but do not re-edge.
          return monitor_.holding(bindings_[bi].invariant);
        },
        [this, bi]() { fire(bi); });
  }
  // Escalation poll: while an invariant stays violated, keep firing on
  // cooldown so the chain can escalate.
  sim_.schedule_every(
      sim::Duration::seconds(1.0),
      [this, alive = std::weak_ptr<char>(alive_)]() {
        // Engine destroyed (services torn down mid-run): stop polling
        // rather than dereference a dead `this`.
        if (alive.expired()) return false;
        for (std::size_t bi = 0; bi < bindings_.size(); ++bi) {
          Binding& b = bindings_[bi];
          if (!monitor_.holding(b.invariant)) {
            fire(bi);
          } else if (b.level != 0 || b.fires_at_level != 0) {
            // Recovery: reset the escalation chain.
            b.level = 0;
            b.fires_at_level = 0;
          }
        }
        return true;
      },
      escalation_tag_);
}

void ReflexEngine::fire(std::size_t binding_index) {
  Binding& b = bindings_[binding_index];
  const sim::SimTime now = sim_.now();
  if (now - b.last_fire < b.cooldown) return;
  b.last_fire = now;

  const std::size_t level = std::min(b.level, b.chain.size() - 1);
  const ReflexAction& action = b.chain[level];
  log_.push_back({b.invariant, action.name, now});
  {
    trace::Tracer& tr = sim_.tracer();
    trace::Span span(tr, tr.enabled() ? trace_fire_.id(tr) : 0);
    action.act();
    if (tr.enabled())
      tr.counter(trace_fired_total_.id(tr), static_cast<double>(log_.size()));
  }

  if (++b.fires_at_level >= b.escalate_after && b.level + 1 < b.chain.size()) {
    ++b.level;
    b.fires_at_level = 0;
  }
}

}  // namespace iobt::adapt
