#pragma once
// Trust management: subjective-logic style beta reputation.
//
// Every interaction outcome (a verified report, a failed probe, a claim
// contradicted by other sensors) updates a Beta(alpha, beta) posterior per
// subject. The expected value alpha/(alpha+beta) is the trust score used to
// weight that subject's data in fusion, learning, and synthesis ("entities
// will have a wide range of security levels... that must be accommodated",
// §II). Exponential forgetting keeps the estimate responsive to behaviour
// change (a captured node's history should fade).

#include <cstdint>
#include <unordered_map>

namespace iobt::security {

using SubjectId = std::uint32_t;  // AssetId in practice

class BetaReputation {
 public:
  /// Prior pseudo-counts. Defaults to the uniform prior Beta(1, 1).
  explicit BetaReputation(double prior_alpha = 1.0, double prior_beta = 1.0)
      : alpha_(prior_alpha), beta_(prior_beta) {}

  /// Records an outcome with optional weight (e.g. confidence of the
  /// verification that produced it).
  void record(bool positive, double weight = 1.0) {
    if (positive) {
      alpha_ += weight;
    } else {
      beta_ += weight;
    }
  }

  /// Expected trustworthiness in (0, 1).
  double score() const { return alpha_ / (alpha_ + beta_); }

  /// How much evidence backs the score (total pseudo-count). Low evidence
  /// means the score is mostly prior.
  double evidence() const { return alpha_ + beta_; }

  /// Exponential forgetting: scales both counts toward the prior by
  /// `factor` in (0, 1]. factor = 1 keeps everything.
  void decay(double factor) {
    alpha_ = 1.0 + (alpha_ - 1.0) * factor;
    beta_ = 1.0 + (beta_ - 1.0) * factor;
  }

 private:
  double alpha_;
  double beta_;
};

/// Registry of reputations, keyed by subject.
class TrustRegistry {
 public:
  explicit TrustRegistry(double default_score_threshold = 0.5)
      : threshold_(default_score_threshold) {}

  void record(SubjectId s, bool positive, double weight = 1.0) {
    reputation_[s].record(positive, weight);
  }

  /// Score for a subject; unknown subjects get the uniform prior 0.5.
  double score(SubjectId s) const {
    auto it = reputation_.find(s);
    return it == reputation_.end() ? 0.5 : it->second.score();
  }
  double evidence(SubjectId s) const {
    auto it = reputation_.find(s);
    return it == reputation_.end() ? 2.0 : it->second.evidence();
  }

  bool trusted(SubjectId s) const { return score(s) >= threshold_; }
  void set_threshold(double t) { threshold_ = t; }
  double threshold() const { return threshold_; }

  /// Applies exponential forgetting to every subject.
  void decay_all(double factor) {
    for (auto& [id, rep] : reputation_) rep.decay(factor);
  }

  std::size_t subject_count() const { return reputation_.size(); }

 private:
  double threshold_;
  std::unordered_map<SubjectId, BetaReputation> reputation_;
};

}  // namespace iobt::security
