#include "security/attacks.h"

#include "things/population.h"

namespace iobt::security {

void AttackInjector::record(std::string type, std::string detail) {
  log_.push_back({std::move(type), world_.simulator().now(), std::move(detail)});
}

void AttackInjector::schedule_jamming(sim::Vec2 center, double radius_m,
                                      sim::SimTime start, sim::SimTime end,
                                      double strength) {
  // The jammer is registered immediately (the channel gates on its active
  // window); the log entries are scheduled for experiment timelines.
  world_.network().channel().add_jammer(
      {.center = center, .radius_m = radius_m, .start = start, .end = end,
       .induced_loss = strength});
  world_.simulator().schedule_at(
      start, [this] { record("jamming_on", ""); }, world_.simulator().intern("attack.jam_on"));
  if (end < sim::SimTime::max()) {
    world_.simulator().schedule_at(
        end, [this] { record("jamming_off", ""); }, world_.simulator().intern("attack.jam_off"));
  }
}

void AttackInjector::schedule_sensor_blackout(things::Modality modality,
                                              sim::Rect region, sim::SimTime start,
                                              sim::SimTime end, double severity) {
  world_.add_sensing_disruption(
      {.modality = modality, .region = region, .start = start, .end = end,
       .severity = severity});
  world_.simulator().schedule_at(
      start,
      [this, modality] {
        record("sensor_blackout_on", things::to_string(modality));
      },
      world_.simulator().intern("attack.blackout_on"));
  if (end < sim::SimTime::max()) {
    world_.simulator().schedule_at(
        end,
        [this, modality] {
          record("sensor_blackout_off", things::to_string(modality));
        },
        world_.simulator().intern("attack.blackout_off"));
  }
}

void AttackInjector::schedule_node_kill(things::AssetId id, sim::SimTime when) {
  world_.simulator().schedule_at(
      when,
      [this, id] {
        world_.destroy_asset(id);
        record("node_kill", "asset=" + std::to_string(id));
      },
      world_.simulator().intern("attack.kill"));
}

void AttackInjector::schedule_mass_kill(double fraction, sim::SimTime when,
                                        std::function<bool(const things::Asset&)> pred,
                                        sim::Rng rng) {
  world_.simulator().schedule_at(
      when,
      [this, fraction, pred = std::move(pred), rng]() mutable {
        std::size_t killed = 0;
        for (const auto& a : world_.assets()) {
          if (!world_.asset_live(a.id) || !pred(a)) continue;
          if (rng.bernoulli(fraction)) {
            world_.destroy_asset(a.id);
            ++killed;
          }
        }
        record("mass_kill", "killed=" + std::to_string(killed));
      },
      world_.simulator().intern("attack.mass_kill"));
}

void AttackInjector::schedule_capture(things::AssetId id, sim::SimTime when,
                                      double captured_reliability) {
  world_.simulator().schedule_at(
      when,
      [this, id, captured_reliability] {
        things::Asset& a = world_.asset(id);
        if (!a.alive) return;
        a.affiliation = things::Affiliation::kRed;
        a.emissions.responds_to_probe = false;
        a.emissions.beacon_period_s = 0.0;
        a.report_reliability = captured_reliability;
        record("capture", "asset=" + std::to_string(id));
      },
      world_.simulator().intern("attack.capture"));
}

void AttackInjector::schedule_sybil(std::size_t count, sim::SimTime when,
                                    sim::Rng rng) {
  world_.simulator().schedule_at(
      when,
      [this, count, rng]() mutable {
        const sim::Rect area = world_.area();
        for (std::size_t i = 0; i < count; ++i) {
          sim::Rng item = rng.child(i);
          things::Asset a = things::make_asset_template(
              things::DeviceClass::kSmartphone, things::Affiliation::kRed, item);
          // Sybils *pretend* to cooperate: they answer probes and beacon
          // like blue motes so they pass naive discovery.
          a.emissions.responds_to_probe = true;
          a.emissions.beacon_period_s = 30.0;
          a.report_reliability = 0.1;  // their reports are poison
          const sim::Vec2 pos = {item.uniform(area.min.x, area.max.x),
                                 item.uniform(area.min.y, area.max.y)};
          sybil_ids_.push_back(world_.add_asset(
              std::move(a), pos,
              things::radio_for_class(things::DeviceClass::kSmartphone)));
        }
        record("sybil", "count=" + std::to_string(count));
      },
      world_.simulator().intern("attack.sybil"));
}

}  // namespace iobt::security
