#include "security/attacks.h"

#include <stdexcept>

#include "sim/wire.h"
#include "things/population.h"

namespace iobt::security {

namespace {

/// Row-index-keyed salt for the per-row private Rng streams (see the class
/// comment: one caller Rng, many independent schedule rows).
constexpr std::uint64_t kRowStreamSalt = 0xA77AC000ULL;

}  // namespace

AttackInjector::AttackInjector(things::World& world) : world_(world) {
  world_.simulator().checkpoint().register_participant(this);
}

AttackInjector::~AttackInjector() {
  for (const Scheduled& s : schedule_) world_.simulator().cancel(s.armed);
  world_.simulator().checkpoint().unregister(this);
}

void AttackInjector::record(std::string type, std::string detail) {
  log_.push_back({std::move(type), world_.simulator().now(), std::move(detail)});
}

std::size_t AttackInjector::fired_count() const {
  std::size_t n = 0;
  for (const Scheduled& s : schedule_) {
    if (s.fired) ++n;
  }
  return n;
}

void AttackInjector::add_scheduled(Scheduled s) {
  const std::size_t index = schedule_.size();
  schedule_.push_back(std::move(s));
  arm(index);
}

void AttackInjector::arm(std::size_t index) {
  schedule_[index].armed = world_.simulator().schedule_at(
      schedule_[index].when, [this, index] { fire(index); }, schedule_[index].tag);
}

void AttackInjector::fire(std::size_t index) {
  schedule_[index].armed = sim::kNoEvent;
  schedule_[index].fired = true;
  switch (schedule_[index].kind) {
    case Kind::kJamOn:
      record("jamming_on", "");
      break;
    case Kind::kJamOff:
      record("jamming_off", "");
      break;
    case Kind::kBlackoutOn:
      record("sensor_blackout_on", things::to_string(schedule_[index].modality));
      break;
    case Kind::kBlackoutOff:
      record("sensor_blackout_off", things::to_string(schedule_[index].modality));
      break;
    case Kind::kNodeKill: {
      const things::AssetId id = schedule_[index].asset;
      world_.destroy_asset(id);
      record("node_kill", "asset=" + std::to_string(id));
      break;
    }
    case Kind::kMassKill: {
      // destroy_asset fires down-hooks that may recruit replacements
      // (add_asset reallocates the asset table) or schedule further
      // attacks (reallocating schedule_): iterate by index with a
      // snapshotted count and never hold references across the kill.
      const double fraction = schedule_[index].fraction;
      sim::Rng rng = schedule_[index].rng;
      std::size_t killed = 0;
      const std::size_t asset_count = world_.asset_count();
      for (std::size_t i = 0; i < asset_count; ++i) {
        const auto id = static_cast<things::AssetId>(i);
        if (!world_.asset_live(id)) continue;
        if (!schedule_[index].pred(world_.asset(id))) continue;
        if (rng.bernoulli(fraction)) {
          world_.destroy_asset(id);
          ++killed;
        }
      }
      schedule_[index].rng = rng;
      record("mass_kill", "killed=" + std::to_string(killed));
      break;
    }
    case Kind::kRegionKill: {
      // Same reentrancy discipline as mass_kill: down-hooks may recruit
      // replacements or schedule further attacks, so index everything and
      // snapshot the count.
      const sim::Rect region = schedule_[index].region;
      const double fraction = schedule_[index].fraction;
      sim::Rng rng = schedule_[index].rng;
      std::size_t killed = 0;
      const std::size_t asset_count = world_.asset_count();
      for (std::size_t i = 0; i < asset_count; ++i) {
        const auto id = static_cast<things::AssetId>(i);
        if (!world_.asset_live(id)) continue;
        if (!region.contains(world_.asset_position(id))) continue;
        if (rng.bernoulli(fraction)) {
          world_.destroy_asset(id);
          ++killed;
        }
      }
      schedule_[index].rng = rng;
      record("region_kill", "killed=" + std::to_string(killed));
      break;
    }
    case Kind::kCapture: {
      things::Asset& a = world_.asset(schedule_[index].asset);
      if (!world_.asset_alive(schedule_[index].asset)) break;
      a.affiliation = things::Affiliation::kRed;
      a.emissions.responds_to_probe = false;
      a.emissions.beacon_period_s = 0.0;
      a.report_reliability = schedule_[index].reliability;
      record("capture", "asset=" + std::to_string(schedule_[index].asset));
      break;
    }
    case Kind::kSybil: {
      const std::size_t count = schedule_[index].count;
      const sim::Rng rng = schedule_[index].rng;
      const sim::Rect area = world_.area();
      for (std::size_t i = 0; i < count; ++i) {
        sim::Rng item = rng.child(i);
        things::AssetSpec a = things::make_asset_template(
            things::DeviceClass::kSmartphone, things::Affiliation::kRed, item);
        // Sybils *pretend* to cooperate: they answer probes and beacon
        // like blue motes so they pass naive discovery.
        a.emissions.responds_to_probe = true;
        a.emissions.beacon_period_s = 30.0;
        a.report_reliability = 0.1;  // their reports are poison
        const sim::Vec2 pos = {item.uniform(area.min.x, area.max.x),
                               item.uniform(area.min.y, area.max.y)};
        // add_asset fires added-hooks (firmware installers) that may
        // re-enter the injector; index-based access everywhere.
        sybil_ids_.push_back(world_.add_asset(
            std::move(a), pos,
            things::radio_for_class(things::DeviceClass::kSmartphone)));
      }
      record("sybil", "count=" + std::to_string(count));
      break;
    }
  }
}

void AttackInjector::schedule_jamming(sim::Vec2 center, double radius_m,
                                      sim::SimTime start, sim::SimTime end,
                                      double strength) {
  // The jammer is registered immediately (the channel gates on its active
  // window — and the channel state rides the Network's checkpoint); the
  // on/off rows exist for experiment timelines.
  world_.network().channel().add_jammer(
      {.center = center, .radius_m = radius_m, .start = start, .end = end,
       .induced_loss = strength});
  Scheduled on;
  on.kind = Kind::kJamOn;
  on.when = start;
  on.tag = world_.simulator().intern("attack.jam_on");
  add_scheduled(std::move(on));
  if (end < sim::SimTime::max()) {
    Scheduled off;
    off.kind = Kind::kJamOff;
    off.when = end;
    off.tag = world_.simulator().intern("attack.jam_off");
    add_scheduled(std::move(off));
  }
}

void AttackInjector::schedule_sensor_blackout(things::Modality modality,
                                              sim::Rect region, sim::SimTime start,
                                              sim::SimTime end, double severity) {
  world_.add_sensing_disruption(
      {.modality = modality, .region = region, .start = start, .end = end,
       .severity = severity});
  Scheduled on;
  on.kind = Kind::kBlackoutOn;
  on.when = start;
  on.tag = world_.simulator().intern("attack.blackout_on");
  on.modality = modality;
  add_scheduled(std::move(on));
  if (end < sim::SimTime::max()) {
    Scheduled off;
    off.kind = Kind::kBlackoutOff;
    off.when = end;
    off.tag = world_.simulator().intern("attack.blackout_off");
    off.modality = modality;
    add_scheduled(std::move(off));
  }
}

void AttackInjector::schedule_node_kill(things::AssetId id, sim::SimTime when) {
  Scheduled s;
  s.kind = Kind::kNodeKill;
  s.when = when;
  s.tag = world_.simulator().intern("attack.kill");
  s.asset = id;
  add_scheduled(std::move(s));
}

void AttackInjector::schedule_mass_kill(double fraction, sim::SimTime when,
                                        std::function<bool(const things::Asset&)> pred,
                                        sim::Rng rng) {
  Scheduled s;
  s.kind = Kind::kMassKill;
  s.when = when;
  s.tag = world_.simulator().intern("attack.mass_kill");
  s.fraction = fraction;
  s.rng = rng.child(kRowStreamSalt + schedule_.size());
  s.pred = std::move(pred);
  add_scheduled(std::move(s));
}

void AttackInjector::schedule_region_kill(sim::Rect region, double fraction,
                                          sim::SimTime when, sim::Rng rng) {
  Scheduled s;
  s.kind = Kind::kRegionKill;
  s.when = when;
  s.tag = world_.simulator().intern("attack.region_kill");
  s.region = region;
  s.fraction = fraction;
  s.rng = rng.child(kRowStreamSalt + schedule_.size());
  add_scheduled(std::move(s));
}

void AttackInjector::schedule_capture(things::AssetId id, sim::SimTime when,
                                      double captured_reliability) {
  Scheduled s;
  s.kind = Kind::kCapture;
  s.when = when;
  s.tag = world_.simulator().intern("attack.capture");
  s.asset = id;
  s.reliability = captured_reliability;
  add_scheduled(std::move(s));
}

void AttackInjector::schedule_sybil(std::size_t count, sim::SimTime when,
                                    sim::Rng rng) {
  Scheduled s;
  s.kind = Kind::kSybil;
  s.when = when;
  s.tag = world_.simulator().intern("attack.sybil");
  s.count = count;
  s.rng = rng.child(kRowStreamSalt + schedule_.size());
  add_scheduled(std::move(s));
}

void AttackInjector::save(sim::Snapshot& snap, const std::string& key) const {
  CheckpointState st;
  st.rows.reserve(schedule_.size());
  for (const Scheduled& s : schedule_) {
    st.rows.push_back(SavedRow{static_cast<int>(s.kind), s.when, s.fired, s.rng,
                               world_.simulator().pending_seq(s.armed)});
  }
  st.sybil_ids = sybil_ids_;
  st.log = log_;
  snap.put(key, std::move(st));
}

void AttackInjector::restore(const sim::Snapshot& snap, const std::string& key,
                             sim::RestoreArmer& armer) {
  const auto& st = snap.get<CheckpointState>(key);
  if (st.rows.size() > schedule_.size()) {
    throw std::logic_error(
        "AttackInjector::restore: the snapshot holds more scheduled attacks "
        "than this stack declared — branch stacks must be built by the same "
        "scenario code as the saved one");
  }
  // Cancel every armed row, then verify the restoring stack's schedule is
  // a campaign-identical prefix match. Rows past the snapshot (scheduled
  // after the save on an in-place rewind) are truncated away.
  for (Scheduled& s : schedule_) {
    world_.simulator().cancel(s.armed);
    s.armed = sim::kNoEvent;
  }
  for (std::size_t i = 0; i < st.rows.size(); ++i) {
    if (static_cast<int>(schedule_[i].kind) != st.rows[i].kind ||
        schedule_[i].when != st.rows[i].when) {
      throw std::logic_error(
          "AttackInjector::restore: scheduled attack " + std::to_string(i) +
          " does not match the snapshot (different kind or time)");
    }
  }
  schedule_.resize(st.rows.size());
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const SavedRow& r = st.rows[i];
    schedule_[i].fired = r.fired;
    schedule_[i].rng = r.rng;
    if (!r.fired) {
      if (r.seq == 0) {
        throw std::logic_error(
            "AttackInjector::restore: unfired attack row " + std::to_string(i) +
            " was not armed at save time");
      }
      armer.rearm(schedule_[i].when, r.seq, [this, i] { fire(i); },
                  schedule_[i].tag, &schedule_[i].armed);
    }
  }
  sybil_ids_ = st.sybil_ids;
  log_ = st.log;
}

bool AttackInjector::encode_state(const sim::Snapshot& snap,
                                  const std::string& key,
                                  sim::WireWriter& w) const {
  const auto& st = snap.get<CheckpointState>(key);
  w.u64(st.rows.size());
  for (const SavedRow& row : st.rows) {
    w.i64(row.kind).time(row.when).boolean(row.fired).rng(row.rng).u64(row.seq);
  }
  w.u64(st.sybil_ids.size());
  for (things::AssetId id : st.sybil_ids) w.u64(id);
  w.u64(st.log.size());
  for (const AttackEvent& e : st.log) {
    w.bytes(e.type).time(e.at).bytes(e.detail);
  }
  return true;
}

bool AttackInjector::decode_state(sim::Snapshot& snap, const std::string& key,
                                  sim::WireReader& r) const {
  CheckpointState st;
  const std::uint64_t rows = r.u64();
  if (!r.ok() || rows > r.remaining()) return false;
  st.rows.resize(static_cast<std::size_t>(rows));
  for (SavedRow& row : st.rows) {
    row.kind = static_cast<int>(r.i64());
    row.when = r.time();
    row.fired = r.boolean();
    row.rng = r.rng();
    row.seq = r.u64();
  }
  const std::uint64_t sybils = r.u64();
  if (!r.ok() || sybils > r.remaining()) return false;
  st.sybil_ids.resize(static_cast<std::size_t>(sybils));
  for (things::AssetId& id : st.sybil_ids) {
    id = static_cast<things::AssetId>(r.u64());
  }
  const std::uint64_t events = r.u64();
  if (!r.ok() || events > r.remaining()) return false;
  st.log.resize(static_cast<std::size_t>(events));
  for (AttackEvent& e : st.log) {
    e.type = r.bytes();
    e.at = r.time();
    e.detail = r.bytes();
  }
  if (!r.ok()) return false;
  snap.put(key, std::move(st));
  return true;
}

}  // namespace iobt::security
