#pragma once
// Message authentication (simulation-grade).
//
// Blue assets share mission keys; a message tag is a keyed 64-bit hash over
// (key, sender, payload digest). This is NOT cryptographically secure — it
// is a faithful *model* of authentication for studying impersonation and
// Sybil attacks: an adversary without the key cannot forge a tag except by
// the modelled forgery probability (0 by default), and key compromise (node
// capture) is modelled by handing the key over.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "sim/rng.h"

namespace iobt::security {

using KeyId = std::uint32_t;

struct Key {
  KeyId id = 0;
  std::uint64_t secret = 0;
};

/// 64-bit tag over (secret, sender, content digest).
inline std::uint64_t make_tag(const Key& key, std::uint32_t sender,
                              std::string_view content) {
  std::uint64_t state = key.secret ^ (0x9e3779b97f4a7c15ULL * (sender + 1));
  state ^= sim::fnv1a(content);
  return sim::splitmix64(state);
}

struct AuthTag {
  KeyId key_id = 0;
  std::uint64_t tag = 0;
};

/// Key distribution and verification authority for one mission enclave.
class KeyAuthority {
 public:
  explicit KeyAuthority(std::uint64_t seed) : rng_(seed) {}

  /// Mints a fresh mission key.
  Key mint() {
    const Key k{next_id_++, rng_.next_u64()};
    keys_[k.id] = k;
    return k;
  }

  /// Grants `holder` the right to use `key` (models provisioning).
  void grant(KeyId key, std::uint32_t holder) { holders_[key].insert(holder); }
  /// Revokes after compromise detection.
  void revoke(KeyId key, std::uint32_t holder) {
    auto it = holders_.find(key);
    if (it != holders_.end()) it->second.erase(holder);
  }
  bool holds(KeyId key, std::uint32_t holder) const {
    auto it = holders_.find(key);
    return it != holders_.end() && it->second.count(holder) > 0;
  }

  /// Signs on behalf of `sender`; sender must hold the key.
  AuthTag sign(KeyId key, std::uint32_t sender, std::string_view content) const {
    auto it = keys_.find(key);
    if (it == keys_.end() || !holds(key, sender)) return {key, 0};
    return {key, make_tag(it->second, sender, content)};
  }

  /// Verifies a tag claimed to be from `sender`. A forged/zero tag fails.
  bool verify(const AuthTag& tag, std::uint32_t sender, std::string_view content) const {
    auto it = keys_.find(tag.key_id);
    if (it == keys_.end()) return false;
    // Verification checks the MAC itself; holder bookkeeping is what the
    // *signing* side enforces. A captured key signs validly — that is the
    // attack the trust layer must catch.
    return tag.tag != 0 && tag.tag == make_tag(it->second, sender, content);
  }

 private:
  sim::Rng rng_;
  KeyId next_id_ = 1;
  std::unordered_map<KeyId, Key> keys_;
  std::unordered_map<KeyId, std::unordered_set<std::uint32_t>> holders_;
};

}  // namespace iobt::security
