#pragma once
// Risk scoring for composite assets.
//
// Synthesis must return "composable assessments of risk" (§III) so that
// "disciplined initiative may be exercised... as opposed to poorly-informed
// gambling". We quantify the residual risk of operating a set of recruited
// assets as a combination of: untrusted membership, attack surface
// (network exposure), and single-point-of-failure structure.

#include <cmath>
#include <vector>

#include "security/trust.h"

namespace iobt::security {

struct RiskInputs {
  /// Trust score in (0,1) for each member of the composite.
  std::vector<double> member_trust;
  /// Fraction of members reachable only through one relay (articulation
  /// exposure), in [0,1].
  double spof_fraction = 0.0;
  /// Fraction of members that are commercial/gray rather than certified
  /// military devices ("co-existence of commercial IoT devices and
  /// purposefully built... military devices", §II).
  double uncertified_fraction = 0.0;
  /// Environmental base rate of adversarial devices. A member with the
  /// uninformative trust prior (0.5) is assessed exactly this adversary
  /// probability; earned trust scales it down, earned distrust up (to
  /// 2x). Treating raw (1 - trust) as P(adversary) would mark every
  /// never-before-seen device a coin flip, which no doctrine does.
  double adversary_base_rate = 0.05;
};

struct RiskReport {
  /// Probability-like aggregate in [0,1]: 0 = no identified risk.
  double residual_risk = 0.0;
  /// Components, each in [0,1], for explainability.
  double infiltration_risk = 0.0;   // chance >=1 member is adversarial
  double structural_risk = 0.0;     // SPOF exposure
  double provenance_risk = 0.0;     // uncertified membership
};

/// Combines component risks independently: 1 - prod(1 - r_i).
inline double combine_independent(std::initializer_list<double> risks) {
  double keep = 1.0;
  for (double r : risks) keep *= (1.0 - std::min(1.0, std::max(0.0, r)));
  return 1.0 - keep;
}

inline RiskReport assess_risk(const RiskInputs& in) {
  RiskReport r;
  // P(at least one member is adversarial): per-member probability is the
  // base rate scaled by earned (dis)trust — trust 1 -> 0, prior 0.5 ->
  // base rate, trust 0 -> 2x base rate — capped at 0.95.
  double all_clean = 1.0;
  for (double t : in.member_trust) {
    const double p_bad =
        std::min(0.95, std::max(0.0, 2.0 * in.adversary_base_rate * (1.0 - t)));
    all_clean *= (1.0 - p_bad);
  }
  r.infiltration_risk = in.member_trust.empty() ? 0.0 : 1.0 - all_clean;
  r.structural_risk = in.spof_fraction;
  r.provenance_risk = 0.25 * in.uncertified_fraction;  // uncertified != hostile
  r.residual_risk =
      combine_independent({r.infiltration_risk, r.structural_risk, r.provenance_risk});
  return r;
}

}  // namespace iobt::security
