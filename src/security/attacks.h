#pragma once
// Attack injection framework.
//
// The paper's environment is "contested and adversarial" (§II): jamming,
// node capture, Sybil identities, data poisoning, and probe saturation.
// AttackInjector scripts these against a World/Network on the simulation
// clock so every experiment can be re-run with identical adversary
// behaviour. Attacks are also the failure-injection mechanism for the
// resilience tests.

#include <functional>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/checkpoint.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "things/world.h"

namespace iobt::security {

/// Record of one executed attack, for experiment logging.
struct AttackEvent {
  std::string type;
  sim::SimTime at;
  std::string detail;
};

/// Scripts attacks against a World/Network on the simulation clock.
///
/// The schedule is declarative: every schedule_* call appends one (or two,
/// for windowed attacks) descriptor rows and arms a kernel event that fires
/// the row by index. Descriptors — not closures — are what checkpoints
/// save, so restore can verify the restoring stack declared the same
/// attack campaign, copy each row's fired flag and private Rng stream, and
/// re-arm the unfired rows under their original FIFO seqs.
///
/// Rng convention: mass_kill and sybil derive a private child stream from
/// the caller's Rng, keyed by the row index — passing one Rng (or copies
/// of it) to several schedule_* calls yields INDEPENDENT streams instead
/// of silently duplicated ones.
class AttackInjector : public sim::SerializableCheckpointable {
 public:
  explicit AttackInjector(things::World& world);
  ~AttackInjector() override;

  // --- Communications attacks -------------------------------------------

  /// Jams a circular region during [start, end): frames with an endpoint
  /// inside are lost with probability `strength`.
  void schedule_jamming(sim::Vec2 center, double radius_m, sim::SimTime start,
                        sim::SimTime end, double strength = 0.98);

  /// Blinds a sensing modality inside a region during [start, end) —
  /// smoke, obscurants, dazzling (§IV-B's "smoke or other phenomena
  /// render visual tracking unreliable"). Severity 1.0 = total blackout.
  void schedule_sensor_blackout(things::Modality modality, sim::Rect region,
                                sim::SimTime start, sim::SimTime end,
                                double severity = 1.0);

  // --- Node attacks -------------------------------------------------------

  /// Destroys an asset (kinetic strike / permanent capture) at `when`.
  void schedule_node_kill(things::AssetId id, sim::SimTime when);

  /// Kills a uniformly random fraction of assets matching `pred` at `when`.
  void schedule_mass_kill(double fraction, sim::SimTime when,
                          std::function<bool(const things::Asset&)> pred,
                          sim::Rng rng);

  /// Kills a uniformly random `fraction` of the assets positioned inside
  /// `region` at `when` (area strike / localized capture sweep). Unlike
  /// mass_kill this row is fully declarative — no predicate closure — so a
  /// scenario-matrix cell can enumerate it from a spec alone.
  void schedule_region_kill(sim::Rect region, double fraction, sim::SimTime when,
                            sim::Rng rng);

  /// Converts an asset to adversary control at `when`: its affiliation
  /// flips to red, it stops answering probes, and its human/sensor reports
  /// become unreliable (reliability drops to `captured_reliability`).
  void schedule_capture(things::AssetId id, sim::SimTime when,
                        double captured_reliability = 0.2);

  // --- Identity attacks ---------------------------------------------------

  /// Creates `count` Sybil assets at `when`: red smartphones that claim to
  /// be blue sensor motes. Returns nothing at schedule time; created ids
  /// are appended to `sybil_ids()` when the attack fires.
  void schedule_sybil(std::size_t count, sim::SimTime when, sim::Rng rng);

  const std::vector<things::AssetId>& sybil_ids() const { return sybil_ids_; }
  const std::vector<AttackEvent>& log() const { return log_; }

  /// Number of descriptor rows the schedule_* calls have appended.
  std::size_t scheduled_count() const { return schedule_.size(); }
  /// How many rows have fired — the schedule cursor a checkpoint carries.
  std::size_t fired_count() const;

  // --- Checkpointing ----------------------------------------------------

  std::string_view checkpoint_key() const override { return "security.attacks"; }
  void save(sim::Snapshot& snap, const std::string& key) const override;
  void restore(const sim::Snapshot& snap, const std::string& key,
               sim::RestoreArmer& armer) override;
  /// Wire persistence (sim/wire.h): the schedule-cursor rows, Sybil ids,
  /// and event log round-trip; restore() prefix-matches the rows against
  /// the live stack's declared schedule exactly as in the in-memory path.
  bool encode_state(const sim::Snapshot& snap, const std::string& key,
                    sim::WireWriter& w) const override;
  bool decode_state(sim::Snapshot& snap, const std::string& key,
                    sim::WireReader& r) const override;

 private:
  enum class Kind {
    kJamOn, kJamOff, kBlackoutOn, kBlackoutOff,
    kNodeKill, kMassKill, kCapture, kSybil, kRegionKill,
  };

  /// One declarative schedule row. The pred closure is the only non-POD
  /// field; it is never saved — a restoring stack re-declares it through
  /// the same schedule_mass_kill call.
  struct Scheduled {
    Kind kind = Kind::kNodeKill;
    sim::SimTime when;
    sim::TagId tag = sim::kUntagged;
    things::AssetId asset = 0;                       // node_kill / capture
    things::Modality modality = things::Modality::kCamera;  // blackout
    sim::Rect region;                                // region_kill
    double fraction = 0.0;                           // mass_kill / region_kill
    double reliability = 0.2;                        // capture
    std::size_t count = 0;                           // sybil
    sim::Rng rng;                                    // mass_kill / sybil
    std::function<bool(const things::Asset&)> pred;  // mass_kill
    bool fired = false;
    sim::EventId armed = sim::kNoEvent;
  };

  struct SavedRow {
    int kind = 0;
    sim::SimTime when;
    bool fired = false;
    sim::Rng rng;
    std::uint64_t seq = 0;  // original FIFO seq while armed; 0 once fired
  };
  struct CheckpointState {
    std::vector<SavedRow> rows;
    std::vector<things::AssetId> sybil_ids;
    std::vector<AttackEvent> log;
  };

  void add_scheduled(Scheduled s);
  void arm(std::size_t index);
  /// Executes row `index`. Accesses schedule_ by index on every touch:
  /// destroy_asset/add_asset hooks may re-enter schedule_* and reallocate.
  void fire(std::size_t index);
  void record(std::string type, std::string detail);

  things::World& world_;
  std::vector<Scheduled> schedule_;
  std::vector<things::AssetId> sybil_ids_;
  std::vector<AttackEvent> log_;
};

}  // namespace iobt::security
