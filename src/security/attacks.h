#pragma once
// Attack injection framework.
//
// The paper's environment is "contested and adversarial" (§II): jamming,
// node capture, Sybil identities, data poisoning, and probe saturation.
// AttackInjector scripts these against a World/Network on the simulation
// clock so every experiment can be re-run with identical adversary
// behaviour. Attacks are also the failure-injection mechanism for the
// resilience tests.

#include <functional>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/time.h"
#include "things/world.h"

namespace iobt::security {

/// Record of one executed attack, for experiment logging.
struct AttackEvent {
  std::string type;
  sim::SimTime at;
  std::string detail;
};

class AttackInjector {
 public:
  explicit AttackInjector(things::World& world) : world_(world) {}

  // --- Communications attacks -------------------------------------------

  /// Jams a circular region during [start, end): frames with an endpoint
  /// inside are lost with probability `strength`.
  void schedule_jamming(sim::Vec2 center, double radius_m, sim::SimTime start,
                        sim::SimTime end, double strength = 0.98);

  /// Blinds a sensing modality inside a region during [start, end) —
  /// smoke, obscurants, dazzling (§IV-B's "smoke or other phenomena
  /// render visual tracking unreliable"). Severity 1.0 = total blackout.
  void schedule_sensor_blackout(things::Modality modality, sim::Rect region,
                                sim::SimTime start, sim::SimTime end,
                                double severity = 1.0);

  // --- Node attacks -------------------------------------------------------

  /// Destroys an asset (kinetic strike / permanent capture) at `when`.
  void schedule_node_kill(things::AssetId id, sim::SimTime when);

  /// Kills a uniformly random fraction of assets matching `pred` at `when`.
  void schedule_mass_kill(double fraction, sim::SimTime when,
                          std::function<bool(const things::Asset&)> pred,
                          sim::Rng rng);

  /// Converts an asset to adversary control at `when`: its affiliation
  /// flips to red, it stops answering probes, and its human/sensor reports
  /// become unreliable (reliability drops to `captured_reliability`).
  void schedule_capture(things::AssetId id, sim::SimTime when,
                        double captured_reliability = 0.2);

  // --- Identity attacks ---------------------------------------------------

  /// Creates `count` Sybil assets at `when`: red smartphones that claim to
  /// be blue sensor motes. Returns nothing at schedule time; created ids
  /// are appended to `sybil_ids()` when the attack fires.
  void schedule_sybil(std::size_t count, sim::SimTime when, sim::Rng rng);

  const std::vector<things::AssetId>& sybil_ids() const { return sybil_ids_; }
  const std::vector<AttackEvent>& log() const { return log_; }

 private:
  void record(std::string type, std::string detail);

  things::World& world_;
  std::vector<things::AssetId> sybil_ids_;
  std::vector<AttackEvent> log_;
};

}  // namespace iobt::security
