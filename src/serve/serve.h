#pragma once
// Campaign service: a long-running what-if server over the checkpoint cache.
//
// The paper's IoBT vision is a standing decision-support capability, not a
// one-shot simulation: commanders continuously ask "what happens if the
// adversary escalates HERE" against a live battlefield model. Each query
// names (scenario spec, seed, branch point, what-if delta). Naively every
// query costs a full simulation from t = 0; but queries about the same
// battlefield share everything UP TO the branch point, and the PR-5
// snapshot blobs are immutable and restore into many fresh stacks
// concurrently — a shared cache waiting to happen.
//
// CampaignService therefore keys every query by a CANONICAL scenario-prefix
// hash over (spec semantics, seed, branch point) — sim/hash.h, stable
// across process runs, display labels excluded — simulates each distinct
// prefix once, parks its sim::Snapshot in a bounded LRU, and fans the
// branches out over sim::ParallelRunner with an index-based admission gate.
// The correctness bar is unchanged from bench_checkpoint: a cached answer
// must be digest-identical to serially re-simulating the whole query from
// t = 0 (run_uncached is that reference, and the per-query repro line). A
// query that throws is captured per-query — one failing what-if never
// poisons the batch — and each query can opt into trace export.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dissem/scenario.h"
#include "serve/snapshot_store.h"
#include "sim/checkpoint.h"
#include "sim/runner.h"

namespace iobt::serve {

/// The what-if applied to the branch after the prefix is restored: an
/// extra attack campaign layered on top of whatever the spec already
/// declared, landing `delay_s` after the branch point. Plain data — it is
/// part of the query key (query_hash), never of the prefix key.
struct WhatIfDelta {
  dissem::AttackCampaign attack = dissem::AttackCampaign::kNone;
  /// Severity knob in [0, 1], same scale as DissemSpec::intensity.
  double intensity = 0.0;
  /// Seconds after the branch point when the delta lands. Deliberately
  /// off the tick/gossip grid by default so no timestamp tie-break depends
  /// on how the branch reached the branch point.
  double delay_s = 0.33;
  /// Salt for the delta's private RNG stream: two otherwise-equal deltas
  /// with different salts are distinct futures (and distinct query keys).
  std::uint64_t salt = 0;
};

/// One what-if query: simulate `spec` from `seed` up to `branch_time_s`
/// (the shared prefix), then apply `delta` and run to the spec horizon.
struct Query {
  dissem::DissemSpec spec;
  std::uint64_t seed = 0;
  double branch_time_s = 0.0;
  WhatIfDelta delta;
  /// Opt-in per-query trace export (needs Options::trace_capacity > 0).
  bool want_trace = false;
};

/// Canonical scenario-prefix hash: everything that determines the shared
/// prefix — spec semantics (layers, mobility, attack campaign, intensity,
/// area, horizon, seed time, gossip config; NOT the display name), seed,
/// and branch point. Semantically equal prefixes hash equal; any semantic
/// difference hashes distinct; the value is stable across process runs.
std::uint64_t prefix_hash(const dissem::DissemSpec& spec, std::uint64_t seed,
                          double branch_time_s);
std::uint64_t prefix_hash(const Query& q);

/// Full query key: the prefix key extended with the delta. Two queries
/// sharing a prefix but differing in any delta field are distinct.
std::uint64_t query_hash(const Query& q);

/// Per-query answer, in input order.
struct QueryResult {
  bool ok = false;
  /// True when the admission gate shed this query (never simulated).
  bool rejected = false;
  /// True when the prefix snapshot came from the cache — memory LRU or
  /// disk tier — without this batch simulating it for this query.
  bool cache_hit = false;
  /// True when this query was deduplicated onto a prefix some EARLIER
  /// query in the same batch simulated cold. Not a cache hit: the prefix
  /// sim ran in this batch; this query just shared it. Mutually exclusive
  /// with cache_hit, and only set when the shared prefix sim succeeded.
  bool batch_dedup = false;
  std::uint64_t prefix = 0;  ///< prefix_hash of the query
  dissem::DissemOutcome outcome;  ///< outcome.digest is the identity bar
  /// Service time attributable to this query: its branch run, plus its
  /// share of the prefix simulation when this batch had to run one.
  double latency_ms = 0.0;
  std::string error;  ///< empty when ok
  /// One-line serial reproduction of this query outside the service
  /// (run_uncached path), filled for failures.
  std::string repro;
  /// Chrome trace JSON of the branch timeline (want_trace opt-in).
  std::string trace_json;
};

struct BatchResult {
  std::vector<QueryResult> results;  ///< input order
  std::size_t cache_hits = 0;   ///< memory-LRU + disk-tier hits
  std::size_t batch_dedup = 0;  ///< queries deduped onto an in-batch cold sim
  std::size_t disk_hits = 0;    ///< cache_hits served by the disk tier
  std::size_t prefix_sims = 0;  ///< distinct cold prefixes simulated
  std::size_t rejected = 0;
  std::size_t failures = 0;  ///< failed queries (rejected excluded)
  double wall_ms = 0.0;
};

/// Long-running campaign service. submit() is synchronous per batch and
/// externally synchronized (one caller thread); the parallelism is inside,
/// across prefix simulations and branch fan-out. The checkpoint cache and
/// its hit/miss statistics persist across batches — the service's whole
/// point is that a standing query stream keeps the cache hot.
class CampaignService {
 public:
  struct Options {
    /// Worker pool for prefix simulation and branch fan-out (ParallelRunner
    /// semantics: 0 = inline serial; results are worker-count-invariant).
    std::size_t workers = 1;
    /// Bounded capacity of the in-memory checkpoint cache, in snapshots.
    /// Each entry is one immutable scenario-prefix Snapshot. Eviction is
    /// cost-aware: the victim minimizes rebuild-cost / recency (a 50 s
    /// prefix outlives a 5 s one of equal recency), so admission never
    /// lets a cheap newcomer displace an expensive resident.
    std::size_t cache_capacity = 64;
    /// Admission budget per submit(): queries past this index are shed by
    /// the runner's admission gate and come back `rejected`, never
    /// simulated. Index-based, so the admitted set is deterministic.
    std::size_t max_batch_queries = 1024;
    /// Per-branch trace ring (records); 0 disables trace export even for
    /// queries that ask.
    std::size_t trace_capacity = 0;
    /// Program name stamped into per-query repro lines.
    std::string repro_program = "bench_serve";
    /// Directory of the durable snapshot tier (SnapshotStore). Empty
    /// disables the disk tier: the service is then memory-only, exactly
    /// the pre-durability behaviour. When set, every cold prefix whose
    /// registry state is wire-representable is persisted (crash-safe
    /// temp-file + rename), and a restarted service re-warms from disk —
    /// answering digest-identically to run_uncached, by the same contract
    /// as the memory tier. Corrupt/truncated/mismatched files are rejected
    /// back to a cold simulation, never a crash.
    std::string snapshot_dir;
  };

  explicit CampaignService(Options opts);

  /// Answers a batch: dedup prefixes -> simulate cold prefixes (cache
  /// misses) once each -> fan every admitted query's branch out on the
  /// runner. Per-query digests are independent of cache state, batch
  /// composition, and worker count.
  BatchResult submit(const std::vector<Query>& queries);

  /// The serial reference: simulate `q` from t = 0 with no cache, no
  /// snapshot, no pool. Digest-identical to the served answer by the
  /// checkpoint-equivalence contract (tests and bench_serve enforce it).
  static dissem::DissemOutcome run_uncached(const Query& q);

  struct CacheStats {
    std::size_t entries = 0;
    std::size_t hits = 0;         ///< lifetime cache hits (memory + disk)
    std::size_t misses = 0;       ///< lifetime prefix simulations
    std::size_t evictions = 0;    ///< lifetime memory-tier evictions
    std::size_t batch_dedup = 0;  ///< queries deduped onto in-batch cold sims
    std::size_t disk_hits = 0;    ///< hits served by re-warming from disk
    std::size_t disk_rejects = 0; ///< disk files rejected (corrupt/mismatch)
    std::size_t disk_stores = 0;  ///< snapshots durably written to disk
  };
  CacheStats cache_stats() const { return stats_; }
  /// Lifetime completed branch replications (on_complete hook; includes
  /// failures, excludes rejected).
  std::size_t branches_completed() const {
    return branches_completed_.load(std::memory_order_relaxed);
  }
  void clear_cache();

 private:
  struct CacheEntry {
    std::uint64_t key = 0;
    std::shared_ptr<const sim::Snapshot> snapshot;
    /// Wall time it took to (re)build this snapshot — the cold prefix
    /// simulation, or the disk load + decode for re-warmed entries. The
    /// cost side of the eviction score.
    double rebuild_ms = 0.0;
    /// use_clock_ stamp of the last touch; the recency side of the score.
    std::uint64_t last_use = 0;
  };

  /// Memory-tier lookup; refreshes recency on hit. nullptr on miss.
  std::shared_ptr<const sim::Snapshot> cache_get(std::uint64_t key);
  /// Inserts/refreshes an entry, then evicts while over capacity by
  /// minimum rebuild_ms / (1 + age) — cost-aware admission: the newcomer
  /// itself is evictable if it is the cheapest-per-staleness entry.
  void cache_put(std::uint64_t key, std::shared_ptr<const sim::Snapshot> snap,
                 double rebuild_ms);
  /// Disk-tier lookup: load, verify, decode against a scratch stack built
  /// from `q`, stamp-check. nullptr on miss or any rejection (which also
  /// bumps stats_.disk_rejects).
  std::shared_ptr<const sim::Snapshot> disk_get(std::uint64_t key,
                                                const Query& q);

  Options opts_;
  std::list<CacheEntry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator> index_;
  CacheStats stats_;
  /// Durable tier; null when Options::snapshot_dir is empty.
  std::unique_ptr<SnapshotStore> store_;
  /// Monotonic touch counter driving the eviction recency term.
  std::uint64_t use_clock_ = 0;
  /// Incremented from the runner's on_complete hook (worker threads).
  std::atomic<std::size_t> branches_completed_{0};
};

/// Applies `q.delta` to a live stack sitting at the branch point. Shared
/// by the served (restore) path and the run_uncached reference so both
/// futures are built by literally the same code — a precondition of the
/// digest-identity contract.
void apply_delta(dissem::DissemScenario& s, const Query& q);

}  // namespace iobt::serve
