#include "serve/serve.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <unordered_set>

#include "sim/hash.h"

namespace iobt::serve {

namespace {

/// Stream salt for delta RNG trees: a delta's draws are independent of
/// every stream the scenario itself uses (dissem/scenario.cpp salts).
constexpr std::uint64_t kDeltaSalt = 0x5E12E7ADE17AULL;

void mix_spec(sim::StableHash& h, const dissem::DissemSpec& spec) {
  // Field order is the key definition — append new fields at the end.
  // spec.name is deliberately excluded: it is a display label, and two
  // queries about the same battlefield must collide regardless of label.
  h.mix_size(spec.layers.size());
  for (const dissem::LayerSpec& ls : spec.layers) {
    h.mix_enum(ls.layer)
        .mix_size(ls.nodes)
        .mix_size(ls.gateways)
        .mix_double(ls.radio.range_m)
        .mix_double(ls.radio.data_rate_bps)
        .mix_double(ls.radio.base_loss)
        .mix_enum(ls.device)
        .mix_double(ls.speed_mps);
  }
  h.mix_enum(spec.mobility)
      .mix_enum(spec.attack)
      .mix_double(spec.intensity)
      .mix_double(spec.area.min.x)
      .mix_double(spec.area.min.y)
      .mix_double(spec.area.max.x)
      .mix_double(spec.area.max.y)
      .mix_double(spec.horizon_s)
      .mix_double(spec.seed_time_s)
      .mix_i64(spec.gossip.forward_delay.nanos())
      .mix_i64(spec.gossip.regossip_period.nanos())
      .mix_i64(spec.gossip.regossip_rounds)
      .mix_size(spec.gossip.alert_bytes)
      .mix_str(spec.gossip.kind);
}

double now_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string attack_name(dissem::AttackCampaign a) { return dissem::to_string(a); }

}  // namespace

std::uint64_t prefix_hash(const dissem::DissemSpec& spec, std::uint64_t seed,
                          double branch_time_s) {
  sim::StableHash h("serve.prefix");
  mix_spec(h, spec);
  h.mix_u64(seed);
  // The branch point is quantized to kernel time resolution: two branch
  // times the kernel cannot tell apart name the same prefix.
  h.mix_i64(sim::SimTime::seconds(branch_time_s).nanos());
  return h.digest();
}

std::uint64_t prefix_hash(const Query& q) {
  return prefix_hash(q.spec, q.seed, q.branch_time_s);
}

std::uint64_t query_hash(const Query& q) {
  sim::StableHash h("serve.query");
  h.mix_u64(prefix_hash(q))
      .mix_enum(q.delta.attack)
      .mix_double(q.delta.intensity)
      .mix_i64(sim::Duration::seconds(q.delta.delay_s).nanos())
      .mix_u64(q.delta.salt);
  return h.digest();
}

void apply_delta(dissem::DissemScenario& s, const Query& q) {
  const WhatIfDelta& d = q.delta;
  if (d.attack == dissem::AttackCampaign::kNone || d.intensity <= 0.0) {
    return;  // pure branch: replay the declared future unchanged
  }
  const double k = std::min(1.0, d.intensity);
  const double t0 = q.branch_time_s + d.delay_s;
  const double horizon = q.spec.horizon_s;
  sim::Rng rng = sim::Rng(q.seed ^ kDeltaSalt).child(d.salt);
  const sim::Rect& area = s.spec().area;
  const double min_side = std::min(area.width(), area.height());

  const auto jam = [&](double strength) {
    s.attacks.schedule_jamming(area.center(), 0.4 * min_side,
                               sim::SimTime::seconds(t0),
                               sim::SimTime::seconds(horizon), strength);
  };
  const auto hunt_gateways = [&](double fraction) {
    // Strike the still-alive members of the original gateway roster, in
    // creation order, staggered 1.5 s. Liveness at the branch point is
    // identical in the served and uncached paths (the digest contract), so
    // both build the same kill list.
    const auto& roster = s.initial_gateways();
    const auto kills = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(roster.size())));
    std::size_t scheduled = 0;
    for (net::NodeId node : roster) {
      if (scheduled >= kills) break;
      const things::AssetId aid = s.world.asset_of_node(node);
      if (!s.world.asset_alive(aid)) continue;
      s.attacks.schedule_node_kill(
          aid, sim::SimTime::seconds(t0 + 1.5 * double(scheduled)));
      ++scheduled;
    }
  };
  switch (d.attack) {
    case dissem::AttackCampaign::kNone:
      break;
    case dissem::AttackCampaign::kJamming:
      jam(k);
      break;
    case dissem::AttackCampaign::kRegionStrike: {
      const sim::Rect strike{{area.min.x + 0.2 * area.width(),
                              area.min.y + 0.2 * area.height()},
                             {area.max.x - 0.2 * area.width(),
                              area.max.y - 0.2 * area.height()}};
      s.attacks.schedule_region_kill(strike, 0.85 * k,
                                     sim::SimTime::seconds(t0), rng);
      s.attacks.schedule_region_kill(strike, 0.45 * k,
                                     sim::SimTime::seconds(t0 + 2.75), rng);
      break;
    }
    case dissem::AttackCampaign::kGatewayHunt:
      hunt_gateways(k);
      break;
    case dissem::AttackCampaign::kCombined:
      jam(0.7 * k);
      hunt_gateways(k);
      break;
  }
}

CampaignService::CampaignService(Options opts) : opts_(std::move(opts)) {
  if (opts_.cache_capacity == 0) {
    throw std::invalid_argument("CampaignService: cache_capacity must be >= 1");
  }
  if (!opts_.snapshot_dir.empty()) {
    store_ = std::make_unique<SnapshotStore>(opts_.snapshot_dir);
  }
}

dissem::DissemOutcome CampaignService::run_uncached(const Query& q) {
  dissem::DissemScenario s(q.spec, q.seed);
  s.sim.run_until(sim::SimTime::seconds(q.branch_time_s));
  apply_delta(s, q);
  s.sim.run_until(sim::SimTime::seconds(q.spec.horizon_s));
  return s.outcome();
}

std::shared_ptr<const sim::Snapshot> CampaignService::cache_get(
    std::uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  it->second->last_use = ++use_clock_;
  return it->second->snapshot;
}

void CampaignService::cache_put(std::uint64_t key,
                                std::shared_ptr<const sim::Snapshot> snap,
                                double rebuild_ms) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->snapshot = std::move(snap);
    it->second->rebuild_ms = rebuild_ms;
    it->second->last_use = ++use_clock_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{key, std::move(snap), rebuild_ms, ++use_clock_});
  index_[key] = lru_.begin();
  // Cost-aware eviction: victim = argmin rebuild_ms / (1 + age). An
  // expensive prefix (50 s to rebuild) outlives a cheap one (5 s) across
  // a long recency gap, and the newcomer itself competes — if it is the
  // cheapest-per-staleness entry, IT is the one evicted (admission
  // control, not just eviction). Iterating back-to-front makes the least
  // recently used entry win ties, preserving plain-LRU behaviour when
  // all costs are equal.
  while (lru_.size() > opts_.cache_capacity) {
    auto victim = lru_.end();
    double victim_score = 0.0;
    for (auto e = std::prev(lru_.end());; --e) {
      const double age = static_cast<double>(use_clock_ - e->last_use);
      const double score = e->rebuild_ms / (1.0 + age);
      if (victim == lru_.end() || score < victim_score) {
        victim = e;
        victim_score = score;
      }
      if (e == lru_.begin()) break;
    }
    index_.erase(victim->key);
    lru_.erase(victim);
    ++stats_.evictions;
  }
}

std::shared_ptr<const sim::Snapshot> CampaignService::disk_get(
    std::uint64_t key, const Query& q) {
  if (!store_) return nullptr;
  const auto load_start = std::chrono::steady_clock::now();
  std::string bytes;
  switch (store_->get(key, bytes)) {
    case SnapshotStore::GetStatus::kMissing:
      return nullptr;
    case SnapshotStore::GetStatus::kRejected:
      ++stats_.disk_rejects;
      return nullptr;
    case SnapshotStore::GetStatus::kHit:
      break;
  }
  // Decode against a scratch stack built from the query itself: the
  // registry roster (participant keys, order) comes from the live stack,
  // so the wire image is validated against exactly the scenario this
  // query would cold-simulate. A file from a different roster decodes to
  // nullopt; a file for a different prefix fails the stamp check. Either
  // way the caller falls back to a cold sim — never a crash, never a
  // silently divergent snapshot.
  try {
    dissem::DissemScenario s(q.spec, q.seed);
    auto snap = s.sim.checkpoint().deserialize_snapshot(bytes);
    if (!snap || snap->prefix_hash() != key) {
      ++stats_.disk_rejects;
      return nullptr;
    }
    auto shared = std::make_shared<const sim::Snapshot>(*std::move(snap));
    // The re-warmed entry's rebuild cost is its load+decode wall — far
    // below a prefix sim, which is correct: evicting it is cheap because
    // it is STILL ON DISK.
    cache_put(key, shared, now_ms_since(load_start));
    ++stats_.disk_hits;
    return shared;
  } catch (const std::exception&) {
    // Scratch-stack construction failed (e.g. a spec this binary can no
    // longer build): treat like a rejected file.
    ++stats_.disk_rejects;
    return nullptr;
  }
}

void CampaignService::clear_cache() {
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
}

BatchResult CampaignService::submit(const std::vector<Query>& queries) {
  const auto batch_start = std::chrono::steady_clock::now();
  BatchResult out;
  const std::size_t n = queries.size();
  out.results.resize(n);
  const std::size_t cap = opts_.max_batch_queries;

  // ---- 1. Keys + admission marks (index-based, deterministic) ----------
  for (std::size_t i = 0; i < n; ++i) {
    QueryResult& r = out.results[i];
    r.prefix = prefix_hash(queries[i]);
    if (i >= cap) {
      r.rejected = true;
      r.error = "rejected by admission gate (max_batch_queries=" +
                std::to_string(cap) + ")";
      ++out.rejected;
    }
  }

  // ---- 2. Prefix dedup: memory LRU, then disk tier, then cold ----------
  // batch_snaps is filled before the fan-out and read-only during it.
  // cached_keys marks prefixes whose snapshot EXISTS already (memory or
  // disk); a query deduped onto one is a genuine cache hit. A query
  // deduped onto a cold placeholder is NOT — its prefix sim hasn't run
  // yet, let alone succeeded — so those are deferred to `deduped_cold`
  // and reconciled after step 3 (batch_dedup iff the shared sim worked).
  std::unordered_map<std::uint64_t, std::shared_ptr<const sim::Snapshot>>
      batch_snaps;
  std::unordered_map<std::uint64_t, std::string> prefix_errors;
  std::unordered_map<std::uint64_t, double> prefix_wall_ms;
  std::unordered_map<std::uint64_t, std::size_t> prefix_fanout;
  std::unordered_set<std::uint64_t> cached_keys;
  std::vector<std::size_t> cold;         // first query index per cold prefix
  std::vector<std::size_t> deduped_cold; // queries riding an in-batch cold sim
  for (std::size_t i = 0; i < std::min(cap, n); ++i) {
    const std::uint64_t key = out.results[i].prefix;
    ++prefix_fanout[key];
    auto found = batch_snaps.find(key);
    if (found != batch_snaps.end()) {
      if (cached_keys.count(key)) {
        // Deduped onto a prefix the cache already held: real hit.
        out.results[i].cache_hit = true;
        ++stats_.hits;
      } else {
        deduped_cold.push_back(i);  // verdict pending on the cold sim
      }
      continue;
    }
    if (auto snap = cache_get(key)) {
      batch_snaps.emplace(key, std::move(snap));
      cached_keys.insert(key);
      out.results[i].cache_hit = true;
      ++stats_.hits;
      continue;
    }
    if (auto snap = disk_get(key, queries[i])) {
      // Re-warm: the durable tier had a verified snapshot. disk_get
      // already promoted it into the memory LRU and counted disk_hits.
      batch_snaps.emplace(key, std::move(snap));
      cached_keys.insert(key);
      out.results[i].cache_hit = true;
      ++stats_.hits;
      ++out.disk_hits;
      continue;
    }
    batch_snaps.emplace(key, nullptr);  // placeholder: simulated below
    cold.push_back(i);
    ++stats_.misses;
  }
  out.prefix_sims = cold.size();

  // ---- 3. Simulate cold prefixes once each, in parallel ----------------
  // Each replication returns the snapshot AND (when the durable tier is
  // on) its wire image — serialization needs the live registry roster,
  // which only exists inside the replication body. The disk write itself
  // happens on this thread afterwards, so the store sees one writer.
  struct PrefixArtifact {
    std::shared_ptr<const sim::Snapshot> snapshot;
    std::string wire;  ///< empty when not serializable / tier disabled
  };
  if (!cold.empty()) {
    sim::ParallelRunner::Options po;
    po.workers = opts_.workers;
    po.repro_program = opts_.repro_program;
    const sim::ParallelRunner prefix_runner(po);
    std::vector<std::uint64_t> seeds;
    seeds.reserve(cold.size());
    for (std::size_t i : cold) seeds.push_back(queries[i].seed);
    const bool want_wire = store_ != nullptr;
    const auto prefixes = prefix_runner.run<PrefixArtifact>(
        seeds, [&](sim::ReplicationContext& ctx) {
          const Query& q = queries[cold[ctx.index]];
          dissem::DissemScenario s(q.spec, q.seed);
          s.sim.run_until(sim::SimTime::seconds(q.branch_time_s));
          // The snapshot carries its prefix key; the branch body verifies
          // the stamp before restoring (cache-integrity check).
          PrefixArtifact art;
          art.snapshot = std::make_shared<const sim::Snapshot>(
              s.sim.checkpoint().save(out.results[cold[ctx.index]].prefix));
          if (want_wire) {
            std::string wire;
            if (s.sim.checkpoint().serialize_snapshot(*art.snapshot, wire)) {
              art.wire = std::move(wire);
            }
          }
          return art;
        });
    for (std::size_t j = 0; j < cold.size(); ++j) {
      const std::uint64_t key = out.results[cold[j]].prefix;
      const auto& rep = prefixes.replications[j];
      prefix_wall_ms[key] = rep.wall_ms;
      if (rep.ok) {
        batch_snaps[key] = rep.payload.snapshot;
        cache_put(key, rep.payload.snapshot, rep.wall_ms);
        if (store_ && !rep.payload.wire.empty() &&
            store_->put(key, rep.payload.wire)) {
          ++stats_.disk_stores;
        }
      } else {
        prefix_errors[key] = "prefix simulation failed: " + rep.error;
      }
    }
  }
  stats_.entries = lru_.size();

  // Reconcile the deferred dedup verdicts: a query that shared an
  // in-batch cold sim is batch_dedup iff that sim succeeded. Failures get
  // neither flag — the fan-out below surfaces the prefix error per query.
  for (std::size_t i : deduped_cold) {
    const std::uint64_t key = out.results[i].prefix;
    if (prefix_errors.count(key)) continue;
    out.results[i].batch_dedup = true;
    ++stats_.batch_dedup;
  }
  for (const QueryResult& r : out.results) {
    if (r.cache_hit) ++out.cache_hits;
    if (r.batch_dedup) ++out.batch_dedup;
  }

  // ---- 4. Branch fan-out over every admitted query ---------------------
  const bool any_trace =
      opts_.trace_capacity > 0 &&
      std::any_of(queries.begin(), queries.begin() + std::min(cap, n),
                  [](const Query& q) { return q.want_trace; });
  sim::ParallelRunner::Options bo;
  bo.workers = opts_.workers;
  bo.repro_program = opts_.repro_program;
  bo.trace_capacity = any_trace ? opts_.trace_capacity : 0;
  bo.trace_all = true;  // tracers of non-opted queries record nothing
  bo.admit = [cap](std::uint64_t, std::size_t index) { return index < cap; };
  bo.on_complete = [this, cap](std::uint64_t, std::size_t index, bool, double) {
    // Rejected replications also fire the hook; only admitted branches count.
    if (index < cap) branches_completed_.fetch_add(1, std::memory_order_relaxed);
  };
  const sim::ParallelRunner branch_runner(bo);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(n);
  for (const Query& q : queries) seeds.push_back(q.seed);
  const auto branches = branch_runner.run<dissem::DissemOutcome>(
      seeds, [&](sim::ReplicationContext& ctx) {
        const Query& q = queries[ctx.index];
        const std::uint64_t key = out.results[ctx.index].prefix;
        auto err = prefix_errors.find(key);
        if (err != prefix_errors.end()) throw std::runtime_error(err->second);
        const auto& snap = batch_snaps.at(key);
        if (snap->prefix_hash() != key) {
          throw std::logic_error(
              "checkpoint cache integrity: snapshot prefix stamp mismatch");
        }
        dissem::DissemScenario s(q.spec, q.seed);
        if (q.want_trace && any_trace) ctx.attach_tracer(s.sim);
        s.sim.checkpoint().restore(*snap);
        apply_delta(s, q);
        s.sim.run_until(sim::SimTime::seconds(q.spec.horizon_s));
        return s.outcome();
      });

  // ---- 5. Fold runner results back into input order --------------------
  for (std::size_t i = 0; i < n; ++i) {
    QueryResult& r = out.results[i];
    if (r.rejected) continue;
    const auto& rep = branches.replications[i];
    const Query& q = queries[i];
    r.latency_ms = rep.wall_ms;
    auto pw = prefix_wall_ms.find(r.prefix);
    if (pw != prefix_wall_ms.end()) {
      // Amortize the cold prefix simulation over every query it served in
      // this batch, so per-query latency reflects the shared-cache economics.
      r.latency_ms +=
          pw->second / static_cast<double>(std::max<std::size_t>(
                           1, prefix_fanout[r.prefix]));
    }
    r.trace_json = rep.trace_json;
    if (rep.ok) {
      r.ok = true;
      r.outcome = rep.payload;
    } else {
      r.error = rep.error;
      // %.17g round-trips any double exactly (DBL_DECIMAL_DIG); %g's six
      // significant digits would reproduce a DIFFERENT query — one whose
      // prefix hash need not even match the one printed after '#'. The
      // delay= token completes the key: delay_s is part of query_hash.
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    " --uncached seed=%llu branch=%.17gs delta=%s:%.17g:%llu "
                    "delay=%.17g  # prefix %016llx",
                    static_cast<unsigned long long>(q.seed), q.branch_time_s,
                    attack_name(q.delta.attack).c_str(), q.delta.intensity,
                    static_cast<unsigned long long>(q.delta.salt),
                    q.delta.delay_s,
                    static_cast<unsigned long long>(r.prefix));
      r.repro = opts_.repro_program + buf;
      ++out.failures;
    }
  }
  out.wall_ms = now_ms_since(batch_start);
  return out;
}

}  // namespace iobt::serve
