#include "serve/serve.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "sim/hash.h"

namespace iobt::serve {

namespace {

/// Stream salt for delta RNG trees: a delta's draws are independent of
/// every stream the scenario itself uses (dissem/scenario.cpp salts).
constexpr std::uint64_t kDeltaSalt = 0x5E12E7ADE17AULL;

void mix_spec(sim::StableHash& h, const dissem::DissemSpec& spec) {
  // Field order is the key definition — append new fields at the end.
  // spec.name is deliberately excluded: it is a display label, and two
  // queries about the same battlefield must collide regardless of label.
  h.mix_size(spec.layers.size());
  for (const dissem::LayerSpec& ls : spec.layers) {
    h.mix_enum(ls.layer)
        .mix_size(ls.nodes)
        .mix_size(ls.gateways)
        .mix_double(ls.radio.range_m)
        .mix_double(ls.radio.data_rate_bps)
        .mix_double(ls.radio.base_loss)
        .mix_enum(ls.device)
        .mix_double(ls.speed_mps);
  }
  h.mix_enum(spec.mobility)
      .mix_enum(spec.attack)
      .mix_double(spec.intensity)
      .mix_double(spec.area.min.x)
      .mix_double(spec.area.min.y)
      .mix_double(spec.area.max.x)
      .mix_double(spec.area.max.y)
      .mix_double(spec.horizon_s)
      .mix_double(spec.seed_time_s)
      .mix_i64(spec.gossip.forward_delay.nanos())
      .mix_i64(spec.gossip.regossip_period.nanos())
      .mix_i64(spec.gossip.regossip_rounds)
      .mix_size(spec.gossip.alert_bytes)
      .mix_str(spec.gossip.kind);
}

double now_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string attack_name(dissem::AttackCampaign a) { return dissem::to_string(a); }

}  // namespace

std::uint64_t prefix_hash(const dissem::DissemSpec& spec, std::uint64_t seed,
                          double branch_time_s) {
  sim::StableHash h("serve.prefix");
  mix_spec(h, spec);
  h.mix_u64(seed);
  // The branch point is quantized to kernel time resolution: two branch
  // times the kernel cannot tell apart name the same prefix.
  h.mix_i64(sim::SimTime::seconds(branch_time_s).nanos());
  return h.digest();
}

std::uint64_t prefix_hash(const Query& q) {
  return prefix_hash(q.spec, q.seed, q.branch_time_s);
}

std::uint64_t query_hash(const Query& q) {
  sim::StableHash h("serve.query");
  h.mix_u64(prefix_hash(q))
      .mix_enum(q.delta.attack)
      .mix_double(q.delta.intensity)
      .mix_i64(sim::Duration::seconds(q.delta.delay_s).nanos())
      .mix_u64(q.delta.salt);
  return h.digest();
}

void apply_delta(dissem::DissemScenario& s, const Query& q) {
  const WhatIfDelta& d = q.delta;
  if (d.attack == dissem::AttackCampaign::kNone || d.intensity <= 0.0) {
    return;  // pure branch: replay the declared future unchanged
  }
  const double k = std::min(1.0, d.intensity);
  const double t0 = q.branch_time_s + d.delay_s;
  const double horizon = q.spec.horizon_s;
  sim::Rng rng = sim::Rng(q.seed ^ kDeltaSalt).child(d.salt);
  const sim::Rect& area = s.spec().area;
  const double min_side = std::min(area.width(), area.height());

  const auto jam = [&](double strength) {
    s.attacks.schedule_jamming(area.center(), 0.4 * min_side,
                               sim::SimTime::seconds(t0),
                               sim::SimTime::seconds(horizon), strength);
  };
  const auto hunt_gateways = [&](double fraction) {
    // Strike the still-alive members of the original gateway roster, in
    // creation order, staggered 1.5 s. Liveness at the branch point is
    // identical in the served and uncached paths (the digest contract), so
    // both build the same kill list.
    const auto& roster = s.initial_gateways();
    const auto kills = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(roster.size())));
    std::size_t scheduled = 0;
    for (net::NodeId node : roster) {
      if (scheduled >= kills) break;
      const things::AssetId aid = s.world.asset_of_node(node);
      if (!s.world.asset_alive(aid)) continue;
      s.attacks.schedule_node_kill(
          aid, sim::SimTime::seconds(t0 + 1.5 * double(scheduled)));
      ++scheduled;
    }
  };
  switch (d.attack) {
    case dissem::AttackCampaign::kNone:
      break;
    case dissem::AttackCampaign::kJamming:
      jam(k);
      break;
    case dissem::AttackCampaign::kRegionStrike: {
      const sim::Rect strike{{area.min.x + 0.2 * area.width(),
                              area.min.y + 0.2 * area.height()},
                             {area.max.x - 0.2 * area.width(),
                              area.max.y - 0.2 * area.height()}};
      s.attacks.schedule_region_kill(strike, 0.85 * k,
                                     sim::SimTime::seconds(t0), rng);
      s.attacks.schedule_region_kill(strike, 0.45 * k,
                                     sim::SimTime::seconds(t0 + 2.75), rng);
      break;
    }
    case dissem::AttackCampaign::kGatewayHunt:
      hunt_gateways(k);
      break;
    case dissem::AttackCampaign::kCombined:
      jam(0.7 * k);
      hunt_gateways(k);
      break;
  }
}

CampaignService::CampaignService(Options opts) : opts_(std::move(opts)) {
  if (opts_.cache_capacity == 0) {
    throw std::invalid_argument("CampaignService: cache_capacity must be >= 1");
  }
}

dissem::DissemOutcome CampaignService::run_uncached(const Query& q) {
  dissem::DissemScenario s(q.spec, q.seed);
  s.sim.run_until(sim::SimTime::seconds(q.branch_time_s));
  apply_delta(s, q);
  s.sim.run_until(sim::SimTime::seconds(q.spec.horizon_s));
  return s.outcome();
}

std::shared_ptr<const sim::Snapshot> CampaignService::cache_get(
    std::uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->snapshot;
}

void CampaignService::cache_put(std::uint64_t key,
                                std::shared_ptr<const sim::Snapshot> snap) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->snapshot = std::move(snap);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{key, std::move(snap)});
  index_[key] = lru_.begin();
  while (lru_.size() > opts_.cache_capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void CampaignService::clear_cache() {
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
}

BatchResult CampaignService::submit(const std::vector<Query>& queries) {
  const auto batch_start = std::chrono::steady_clock::now();
  BatchResult out;
  const std::size_t n = queries.size();
  out.results.resize(n);
  const std::size_t cap = opts_.max_batch_queries;

  // ---- 1. Keys + admission marks (index-based, deterministic) ----------
  for (std::size_t i = 0; i < n; ++i) {
    QueryResult& r = out.results[i];
    r.prefix = prefix_hash(queries[i]);
    if (i >= cap) {
      r.rejected = true;
      r.error = "rejected by admission gate (max_batch_queries=" +
                std::to_string(cap) + ")";
      ++out.rejected;
    }
  }

  // ---- 2. Prefix dedup against the LRU --------------------------------
  // batch_snaps is filled before the fan-out and read-only during it.
  std::unordered_map<std::uint64_t, std::shared_ptr<const sim::Snapshot>>
      batch_snaps;
  std::unordered_map<std::uint64_t, std::string> prefix_errors;
  std::unordered_map<std::uint64_t, double> prefix_wall_ms;
  std::unordered_map<std::uint64_t, std::size_t> prefix_fanout;
  std::vector<std::size_t> cold;  // first query index per cold prefix
  for (std::size_t i = 0; i < std::min(cap, n); ++i) {
    const std::uint64_t key = out.results[i].prefix;
    ++prefix_fanout[key];
    auto found = batch_snaps.find(key);
    if (found != batch_snaps.end()) {
      // Another query earlier in this batch already covers the prefix.
      out.results[i].cache_hit = true;
      ++stats_.hits;
      continue;
    }
    if (auto snap = cache_get(key)) {
      batch_snaps.emplace(key, std::move(snap));
      out.results[i].cache_hit = true;
      ++stats_.hits;
      continue;
    }
    batch_snaps.emplace(key, nullptr);  // placeholder: simulated below
    cold.push_back(i);
    ++stats_.misses;
  }
  out.prefix_sims = cold.size();
  out.cache_hits = static_cast<std::size_t>(
      std::count_if(out.results.begin(), out.results.end(),
                    [](const QueryResult& r) { return r.cache_hit; }));

  // ---- 3. Simulate cold prefixes once each, in parallel ----------------
  if (!cold.empty()) {
    sim::ParallelRunner::Options po;
    po.workers = opts_.workers;
    po.repro_program = opts_.repro_program;
    const sim::ParallelRunner prefix_runner(po);
    std::vector<std::uint64_t> seeds;
    seeds.reserve(cold.size());
    for (std::size_t i : cold) seeds.push_back(queries[i].seed);
    const auto prefixes = prefix_runner.run<std::shared_ptr<const sim::Snapshot>>(
        seeds, [&](sim::ReplicationContext& ctx) {
          const Query& q = queries[cold[ctx.index]];
          dissem::DissemScenario s(q.spec, q.seed);
          s.sim.run_until(sim::SimTime::seconds(q.branch_time_s));
          // The snapshot carries its prefix key; the branch body verifies
          // the stamp before restoring (cache-integrity check).
          return std::make_shared<const sim::Snapshot>(
              s.sim.checkpoint().save(out.results[cold[ctx.index]].prefix));
        });
    for (std::size_t j = 0; j < cold.size(); ++j) {
      const std::uint64_t key = out.results[cold[j]].prefix;
      const auto& rep = prefixes.replications[j];
      prefix_wall_ms[key] = rep.wall_ms;
      if (rep.ok) {
        batch_snaps[key] = rep.payload;
        cache_put(key, rep.payload);
      } else {
        prefix_errors[key] = "prefix simulation failed: " + rep.error;
      }
    }
  }
  stats_.entries = lru_.size();

  // ---- 4. Branch fan-out over every admitted query ---------------------
  const bool any_trace =
      opts_.trace_capacity > 0 &&
      std::any_of(queries.begin(), queries.begin() + std::min(cap, n),
                  [](const Query& q) { return q.want_trace; });
  sim::ParallelRunner::Options bo;
  bo.workers = opts_.workers;
  bo.repro_program = opts_.repro_program;
  bo.trace_capacity = any_trace ? opts_.trace_capacity : 0;
  bo.trace_all = true;  // tracers of non-opted queries record nothing
  bo.admit = [cap](std::uint64_t, std::size_t index) { return index < cap; };
  bo.on_complete = [this, cap](std::uint64_t, std::size_t index, bool, double) {
    // Rejected replications also fire the hook; only admitted branches count.
    if (index < cap) branches_completed_.fetch_add(1, std::memory_order_relaxed);
  };
  const sim::ParallelRunner branch_runner(bo);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(n);
  for (const Query& q : queries) seeds.push_back(q.seed);
  const auto branches = branch_runner.run<dissem::DissemOutcome>(
      seeds, [&](sim::ReplicationContext& ctx) {
        const Query& q = queries[ctx.index];
        const std::uint64_t key = out.results[ctx.index].prefix;
        auto err = prefix_errors.find(key);
        if (err != prefix_errors.end()) throw std::runtime_error(err->second);
        const auto& snap = batch_snaps.at(key);
        if (snap->prefix_hash() != key) {
          throw std::logic_error(
              "checkpoint cache integrity: snapshot prefix stamp mismatch");
        }
        dissem::DissemScenario s(q.spec, q.seed);
        if (q.want_trace && any_trace) ctx.attach_tracer(s.sim);
        s.sim.checkpoint().restore(*snap);
        apply_delta(s, q);
        s.sim.run_until(sim::SimTime::seconds(q.spec.horizon_s));
        return s.outcome();
      });

  // ---- 5. Fold runner results back into input order --------------------
  for (std::size_t i = 0; i < n; ++i) {
    QueryResult& r = out.results[i];
    if (r.rejected) continue;
    const auto& rep = branches.replications[i];
    const Query& q = queries[i];
    r.latency_ms = rep.wall_ms;
    auto pw = prefix_wall_ms.find(r.prefix);
    if (pw != prefix_wall_ms.end()) {
      // Amortize the cold prefix simulation over every query it served in
      // this batch, so per-query latency reflects the shared-cache economics.
      r.latency_ms +=
          pw->second / static_cast<double>(std::max<std::size_t>(
                           1, prefix_fanout[r.prefix]));
    }
    r.trace_json = rep.trace_json;
    if (rep.ok) {
      r.ok = true;
      r.outcome = rep.payload;
    } else {
      r.error = rep.error;
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    " --uncached seed=%llu branch=%gs delta=%s:%g:%llu  "
                    "# prefix %016llx",
                    static_cast<unsigned long long>(q.seed), q.branch_time_s,
                    attack_name(q.delta.attack).c_str(), q.delta.intensity,
                    static_cast<unsigned long long>(q.delta.salt),
                    static_cast<unsigned long long>(r.prefix));
      r.repro = opts_.repro_program + buf;
      ++out.failures;
    }
  }
  out.wall_ms = now_ms_since(batch_start);
  return out;
}

}  // namespace iobt::serve
