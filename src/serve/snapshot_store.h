#pragma once
// Durable snapshot store: the disk tier under CampaignService's memory LRU.
//
// One file per canonical prefix hash, named snap_<hash>.iosnap, holding a
// one-line header followed by the registry wire image
// (CheckpointRegistry::serialize_snapshot). The header carries the format
// version, the prefix stamp, the payload size, and an FNV-1a checksum:
//
//   iosnap 1 <prefix 16 hex> <payload bytes, decimal> <checksum 16 hex>\n
//   <payload>
//
// Writes are crash-safe: the image lands in a temp file in the same
// directory and is renamed into place (std::filesystem::rename is atomic
// within a filesystem), so a reader never observes a half-written file —
// it sees the old file, the new file, or no file. Reads are paranoid:
// anything malformed — bad magic, unsupported version, size mismatch,
// checksum mismatch, wrong prefix stamp — is kRejected, and the caller
// falls back to a cold simulation. A store must never be able to crash
// the service or silently feed it a divergent snapshot.

#include <cstdint>
#include <string>

namespace iobt::serve {

class SnapshotStore {
 public:
  enum class GetStatus {
    kHit,       ///< file present, header + checksum + stamp all verified
    kMissing,   ///< no file for this prefix
    kRejected,  ///< file present but corrupt/truncated/mismatched
  };

  /// Opens (creating if needed) the store directory. Throws
  /// std::runtime_error if the directory cannot be created.
  explicit SnapshotStore(std::string dir);

  /// Durably writes `payload` as the snapshot for `prefix_hash`
  /// (temp file + rename). Returns false on any I/O failure; the
  /// previous file for this prefix, if any, is untouched in that case.
  bool put(std::uint64_t prefix_hash, const std::string& payload);

  /// Loads and verifies the snapshot for `prefix_hash` into `out`.
  /// `out` is only meaningful on kHit.
  GetStatus get(std::uint64_t prefix_hash, std::string& out) const;

  /// Number of .iosnap files currently in the directory (test/diagnostic).
  std::size_t file_count() const;

  const std::string& dir() const { return dir_; }

  /// The file a given prefix maps to (relative to dir()); exposed so tests
  /// can corrupt it deliberately.
  static std::string file_name(std::uint64_t prefix_hash);

 private:
  std::string dir_;
};

}  // namespace iobt::serve
