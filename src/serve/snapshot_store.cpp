#include "serve/snapshot_store.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace iobt::serve {

namespace {

constexpr char kMagic[] = "iosnap";
constexpr std::uint64_t kFormatVersion = 1;

/// FNV-1a over the payload bytes — cheap, deterministic, and enough to
/// catch truncation and bit rot (adversarial tampering is out of scope;
/// the stamp check catches honest cross-prefix mixups).
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string header_line(std::uint64_t prefix_hash, const std::string& payload) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %" PRIu64 " %016" PRIx64 " %zu %016" PRIx64 "\n",
                kMagic, kFormatVersion, prefix_hash, payload.size(),
                fnv1a(payload));
  return buf;
}

}  // namespace

std::string SnapshotStore::file_name(std::uint64_t prefix_hash) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "snap_%016" PRIx64 ".iosnap", prefix_hash);
  return buf;
}

SnapshotStore::SnapshotStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("SnapshotStore: cannot create directory " + dir_);
  }
}

bool SnapshotStore::put(std::uint64_t prefix_hash, const std::string& payload) {
  const std::filesystem::path final_path =
      std::filesystem::path(dir_) / file_name(prefix_hash);
  // Temp file in the SAME directory: rename across filesystems is not
  // atomic (and may outright fail), so staging must share the mount.
  const std::filesystem::path tmp_path =
      final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    out << header_line(prefix_hash, payload);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    return false;
  }
  return true;
}

SnapshotStore::GetStatus SnapshotStore::get(std::uint64_t prefix_hash,
                                            std::string& out) const {
  const std::filesystem::path path =
      std::filesystem::path(dir_) / file_name(prefix_hash);
  std::ifstream in(path, std::ios::binary);
  if (!in) return GetStatus::kMissing;

  std::string header;
  if (!std::getline(in, header)) return GetStatus::kRejected;
  std::istringstream hs(header);
  std::string magic;
  std::uint64_t version = 0;
  std::string prefix_hex, checksum_hex;
  std::size_t payload_size = 0;
  if (!(hs >> magic >> version >> prefix_hex >> payload_size >> checksum_hex) ||
      magic != kMagic || version != kFormatVersion ||
      prefix_hex.size() != 16 || checksum_hex.size() != 16) {
    return GetStatus::kRejected;
  }
  std::uint64_t stamp = 0, checksum = 0;
  if (std::sscanf(prefix_hex.c_str(), "%16" SCNx64, &stamp) != 1 ||
      std::sscanf(checksum_hex.c_str(), "%16" SCNx64, &checksum) != 1) {
    return GetStatus::kRejected;
  }
  if (stamp != prefix_hash) return GetStatus::kRejected;

  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<std::size_t>(in.gcount()) != payload_size) {
    return GetStatus::kRejected;  // truncated
  }
  // Exact-size check: trailing garbage means the size field lied.
  char extra = 0;
  if (in.read(&extra, 1); in.gcount() != 0) return GetStatus::kRejected;
  if (fnv1a(payload) != checksum) return GetStatus::kRejected;

  out = std::move(payload);
  return GetStatus::kHit;
}

std::size_t SnapshotStore::file_count() const {
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& e :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (e.path().extension() == ".iosnap") ++n;
  }
  return n;
}

}  // namespace iobt::serve
