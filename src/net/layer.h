#pragma once
// Network layers for multi-layer IoBT topologies.
//
// Battlefield networks are stratified: ground sensors, aerial relays, and
// command infrastructure run heterogeneous radios and form connectivity
// within their own stratum. Designated gateway nodes bridge strata with
// explicit inter-layer links (Farooq & Zhu's secure multi-layer IoBT
// design). A flat network is the degenerate single-layer case: every node
// defaults to kLayerGround and the layer predicate never blocks a link.

#include <cstdint>
#include <string>

namespace iobt::net {

/// Stratum tag carried per node. Links form only within a layer, except
/// between two gateway nodes, which bridge any pair of layers.
using LayerId = std::uint8_t;

inline constexpr LayerId kLayerGround = 0;
inline constexpr LayerId kLayerAerial = 1;
inline constexpr LayerId kLayerCommand = 2;
inline constexpr std::size_t kLayerCount = 3;

inline std::string to_string(LayerId layer) {
  switch (layer) {
    case kLayerGround: return "ground";
    case kLayerAerial: return "aerial";
    case kLayerCommand: return "command";
  }
  return "layer" + std::to_string(static_cast<unsigned>(layer));
}

}  // namespace iobt::net
