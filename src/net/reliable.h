#pragma once
// Reliable delivery over the lossy battlefield network: stop-and-wait ARQ
// with bounded retransmissions, built on the Dispatcher.
//
// §II's "disadvantaged assets" drop frames routinely; mission traffic that
// must arrive (orders, detections, challenge responses) needs an
// acknowledgment discipline rather than per-service hand-rolled retries.
// ReliableChannel wraps route_and_send with sequence numbers, ACKs,
// duplicate suppression at the receiver, and per-message delivery/failure
// callbacks, so upper layers learn definitively whether the network got
// their message through.

#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "net/dispatcher.h"

namespace iobt::net {

struct ReliableConfig {
  /// Retransmission timeout per attempt.
  sim::Duration rto = sim::Duration::seconds(2.0);
  /// Attempts before giving up (first send + retries).
  int max_attempts = 4;
};

class ReliableChannel {
 public:
  /// `kind_prefix` namespaces this channel's frames so multiple channels
  /// can coexist on one dispatcher.
  ReliableChannel(sim::Simulator& simulator, Dispatcher& dispatcher,
                  std::string kind_prefix = "rel", ReliableConfig config = {});

  /// Installs the receive/ack endpoint on a node. `on_receive` gets each
  /// unique payload exactly once (duplicates from retransmissions are
  /// acked but suppressed).
  void listen(NodeId node, std::function<void(const Message&)> on_receive);

  /// Sends `msg` from src to dst with at-least-once delivery semantics and
  /// duplicate suppression (so effectively exactly-once for the caller).
  /// `on_result(true)` once the ACK arrives, `on_result(false)` after the
  /// final attempt times out. Returns the transfer's sequence id.
  std::uint64_t send(NodeId src, NodeId dst, Message msg,
                     std::function<void(bool)> on_result = nullptr);

  std::size_t acked() const { return acked_; }
  std::size_t failed() const { return failed_; }
  std::size_t retransmissions() const { return retransmissions_; }

 private:
  struct Pending {
    NodeId src;
    NodeId dst;
    Message msg;
    int attempts_left;
    std::function<void(bool)> on_result;
    bool done = false;
  };

  void transmit(std::uint64_t seq);
  void arm_timer(std::uint64_t seq);

  std::string data_kind() const { return prefix_ + ".data"; }
  std::string ack_kind() const { return prefix_ + ".ack"; }

  sim::Simulator& sim_;
  Dispatcher& disp_;
  std::string prefix_;
  ReliableConfig cfg_;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  /// Receiver-side dedup: seqs already delivered per node.
  std::unordered_map<NodeId, std::unordered_set<std::uint64_t>> delivered_;
  std::size_t acked_ = 0;
  std::size_t failed_ = 0;
  std::size_t retransmissions_ = 0;
};

}  // namespace iobt::net
