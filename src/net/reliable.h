#pragma once
// Reliable delivery over the lossy battlefield network: stop-and-wait ARQ
// with bounded retransmissions, built on the Dispatcher.
//
// §II's "disadvantaged assets" drop frames routinely; mission traffic that
// must arrive (orders, detections, challenge responses) needs an
// acknowledgment discipline rather than per-service hand-rolled retries.
// ReliableChannel wraps route_and_send with per-flow sequence numbers,
// ACKs, duplicate suppression at the receiver, and per-message
// delivery/failure callbacks, so upper layers learn definitively whether
// the network got their message through.
//
// Resource discipline (long missions must not leak):
//  - the RTO timer armed for each attempt is cancelled as soon as the ACK
//    arrives (or the transfer fails), so the simulator quiesces promptly;
//  - the sender-side ACK endpoint is installed once per source node;
//  - receiver-side dedup state is a compacted window per (node, peer):
//    the highest contiguously-resolved sequence plus a sparse tail. Every
//    data frame advertises the sender's lowest still-outstanding seq, so
//    the receiver can forget holes left by abandoned (failed) transfers;
//    the tail is bounded by the sender's in-flight window, not by mission
//    length or loss history.

#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "net/dispatcher.h"
#include "trace/trace.h"

namespace iobt::net {

struct ReliableConfig {
  /// Retransmission timeout per attempt.
  sim::Duration rto = sim::Duration::seconds(2.0);
  /// Attempts before giving up (first send + retries).
  int max_attempts = 4;
};

/// Compacted received-sequence tracker for one (receiver, sender) flow:
/// every seq <= base has been delivered or abandoned by the sender; `tail`
/// holds the sparse out-of-order seqs above base.
class SeqWindow {
 public:
  /// Records `seq` as delivered. Returns false if it was already seen.
  bool insert(std::uint64_t seq) {
    if (seq <= base_ || tail_.count(seq) != 0) return false;
    tail_.insert(seq);
    compact();
    return true;
  }

  /// Advances base to at least `new_base` (the sender advertised that all
  /// seqs <= new_base are resolved — delivered or given up on — so holes
  /// below it will never be retransmitted and need not be remembered).
  void advance_to(std::uint64_t new_base) {
    if (new_base <= base_) return;
    base_ = new_base;
    tail_.erase(tail_.begin(), tail_.upper_bound(base_));
    compact();
  }

  std::uint64_t base() const { return base_; }
  std::size_t tail_size() const { return tail_.size(); }

 private:
  void compact() {
    auto it = tail_.begin();
    while (it != tail_.end() && *it == base_ + 1) {
      ++base_;
      it = tail_.erase(it);
    }
  }

  std::uint64_t base_ = 0;  // flow seqs start at 1
  std::set<std::uint64_t> tail_;
};

class ReliableChannel {
 public:
  /// `kind_prefix` namespaces this channel's frames so multiple channels
  /// can coexist on one dispatcher.
  ReliableChannel(sim::Simulator& simulator, Dispatcher& dispatcher,
                  std::string kind_prefix = "rel", ReliableConfig config = {});

  /// Installs the receive/ack endpoint on a node. `on_receive` gets each
  /// unique payload exactly once (duplicates from retransmissions are
  /// acked but suppressed).
  void listen(NodeId node, std::function<void(const Message&)> on_receive);

  /// Sends `msg` from src to dst with at-least-once delivery semantics and
  /// duplicate suppression (so effectively exactly-once for the caller).
  /// `on_result(true)` once the ACK arrives, `on_result(false)` after the
  /// final attempt times out. Returns the transfer id.
  std::uint64_t send(NodeId src, NodeId dst, Message msg,
                     std::function<void(bool)> on_result = nullptr);

  std::size_t acked() const { return acked_; }
  std::size_t failed() const { return failed_; }
  std::size_t retransmissions() const { return retransmissions_; }
  /// Transfers still awaiting an ACK or final timeout. A fully-ACKed
  /// exchange leaves this at 0 with no timers pending in the simulator.
  std::size_t pending_count() const { return pending_.size(); }
  /// Total sparse (out-of-order) entries across all receiver dedup
  /// windows. Bounded by in-flight transfers (in-order lossless traffic
  /// keeps it at 0), regardless of volume or loss history.
  std::size_t dedup_tail_entries() const;
  /// Source nodes with an installed ACK endpoint (one per sending node,
  /// no matter how many sends it issues).
  std::size_t ack_endpoints_installed() const { return ack_installed_.size(); }

 private:
  struct Pending {
    NodeId src;
    NodeId dst;
    Message msg;
    std::uint64_t flow_seq = 0;
    int attempts_left;
    std::function<void(bool)> on_result;
    sim::EventId rto_timer = sim::kNoEvent;
    bool done = false;
  };

  void install_ack_endpoint(NodeId src);
  void transmit(std::uint64_t xfer);
  void arm_timer(std::uint64_t xfer);
  /// Lowest seq of `flow` still awaiting ACK/failure (next_seq+1 if none) —
  /// the watermark advertised on the wire so receivers can compact.
  std::uint64_t flow_low(std::uint64_t flow) const;
  /// Marks `seq` of (src,dst) resolved (acked or given up), raising the
  /// advertised watermark for subsequent frames.
  void resolve_flow_seq(NodeId src, NodeId dst, std::uint64_t seq);

  std::string data_kind() const { return prefix_ + ".data"; }
  std::string ack_kind() const { return prefix_ + ".ack"; }

  static std::uint64_t flow_key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  sim::Simulator& sim_;
  Dispatcher& disp_;
  std::string prefix_;
  ReliableConfig cfg_;
  sim::TagId rto_tag_;
  /// Trace labels: one async span per transfer (send -> ACK/failure, so
  /// the Perfetto row shows exactly how long reliability cost each
  /// message), instants per retransmission/failure, and counters for the
  /// cumulative retransmit total and transfers awaiting ACK.
  trace::Name trace_xfer_;
  trace::Name trace_retx_;
  trace::Name trace_fail_;
  trace::Name trace_retx_total_;
  trace::Name trace_pending_;
  std::uint64_t next_xfer_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;  // by transfer id
  /// Per-(src,dst) flow sequence counters (wire seqs start at 1).
  std::unordered_map<std::uint64_t, std::uint64_t> flow_next_seq_;
  /// Per-flow seqs not yet resolved; *begin() is the advertised watermark.
  std::unordered_map<std::uint64_t, std::set<std::uint64_t>> flow_outstanding_;
  /// Receiver-side dedup: (receiver, sender) -> compacted seq window.
  std::unordered_map<std::uint64_t, SeqWindow> delivered_;
  /// Source nodes whose ACK endpoint is already installed.
  std::unordered_set<NodeId> ack_installed_;
  std::size_t acked_ = 0;
  std::size_t failed_ = 0;
  std::size_t retransmissions_ = 0;
};

}  // namespace iobt::net
