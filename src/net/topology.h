#pragma once
// Undirected weighted graphs: the connectivity structure of an IoBT.
//
// Topology is a value type (cheap enough to copy for what-if analysis).
// It provides the graph algorithms every other module leans on: shortest
// paths, connected components, spanning trees, and standard generators
// (random geometric for forward-deployed radio networks, grids for urban
// street layouts, stars/rings/k-nearest for learning-topology sweeps).

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.h"
#include "sim/geometry.h"
#include "sim/rng.h"

namespace iobt::net {

/// An undirected edge with a metric (latency, cost, ...) attached.
struct Edge {
  NodeId a = 0;
  NodeId b = 0;
  double weight = 1.0;
};

/// Result of a shortest-path computation from one source.
struct ShortestPaths {
  NodeId source = 0;
  /// dist[v] = total weight of the shortest source->v path; infinity if
  /// unreachable.
  std::vector<double> dist;
  /// parent[v] = predecessor of v on the shortest path; source's parent and
  /// unreachable nodes' parents are nullopt.
  std::vector<std::optional<NodeId>> parent;

  bool reachable(NodeId v) const;
  /// Reconstructs the source->v node sequence (inclusive). Empty if
  /// unreachable.
  std::vector<NodeId> path_to(NodeId v) const;
};

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::size_t node_count) : adjacency_(node_count) {}
  /// Bulk constructor: builds the graph from a prepared edge list in one
  /// pass, reserving each adjacency list at its exact final size (the
  /// incremental path pays ~log(degree) reallocations per node). The list
  /// must contain each unordered pair at most once; adjacency order —
  /// and thus every tie-break downstream — matches calling
  /// add_edge_unique in list order.
  Topology(std::size_t node_count, const std::vector<Edge>& edge_list);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Appends a new isolated node; returns its id.
  NodeId add_node();

  /// Adds an undirected edge. Parallel edges are rejected (weight of the
  /// existing edge is updated instead). Self-loops are ignored.
  void add_edge(NodeId a, NodeId b, double weight = 1.0);
  /// add_edge without the parallel-edge scan, for callers that enumerate
  /// each unordered pair at most once (connectivity snapshots, geometric
  /// generators). A same-order call sequence yields adjacency lists
  /// identical to add_edge's; feeding it a duplicate pair corrupts the
  /// edge count, so it asserts in debug builds.
  void add_edge_unique(NodeId a, NodeId b, double weight = 1.0);
  /// Adds an undirected edge, inserting each endpoint into the other's
  /// adjacency list at its id-sorted position. For graphs whose adjacency
  /// lists are maintained in ascending-id order (the Network's incremental
  /// connectivity store), this keeps insertion-order-independent adjacency
  /// — and thus Dijkstra tie-breaks — identical to a bulk build from the
  /// sorted edge list. The pair must not already be present (asserts in
  /// debug builds).
  void add_edge_sorted(NodeId a, NodeId b, double weight = 1.0);
  /// Updates the weight of an edge that MUST already exist (asserts in
  /// debug builds): unlike set_edge_weight it can never append, so it is
  /// safe on sorted adjacency lists.
  void update_edge_weight(NodeId a, NodeId b, double weight);
  /// Removes the edge if present.
  void remove_edge(NodeId a, NodeId b);
  bool has_edge(NodeId a, NodeId b) const;
  /// Weight of the edge, or nullopt if absent.
  std::optional<double> edge_weight(NodeId a, NodeId b) const;
  void set_edge_weight(NodeId a, NodeId b, double weight) { add_edge(a, b, weight); }

  /// Neighbors of `v` with edge weights.
  struct Neighbor {
    NodeId id;
    double weight;
  };
  const std::vector<Neighbor>& neighbors(NodeId v) const { return adjacency_.at(v); }
  std::size_t degree(NodeId v) const { return adjacency_.at(v).size(); }

  /// All edges, each reported once with a <= b.
  std::vector<Edge> edges() const;

  /// Dijkstra from `source` using edge weights (must be non-negative).
  ShortestPaths shortest_paths(NodeId source) const;
  /// BFS hop distance from `source` (ignores weights).
  std::vector<int> hop_distances(NodeId source) const;

  /// Connected-component label per node (labels are 0-based, dense).
  std::vector<int> components() const;
  int component_count() const;
  bool connected() const { return node_count() == 0 || component_count() == 1; }

  /// Minimum spanning forest via Kruskal. Returns selected edges.
  std::vector<Edge> minimum_spanning_forest() const;

  // --- Generators -------------------------------------------------------

  /// Random geometric graph: n nodes uniform in `area`, edge iff distance
  /// <= radius. Edge weight = distance. Also returns positions. Large
  /// instances build edges from a spatial grid (O(n * density) instead of
  /// O(n^2)); the resulting graph is bit-identical either way.
  static Topology random_geometric(std::size_t n, sim::Rect area, double radius,
                                   sim::Rng& rng, std::vector<sim::Vec2>* positions);

  /// w x h grid with unit-weight edges (urban street abstraction).
  static Topology grid(std::size_t w, std::size_t h);

  /// Ring of n nodes.
  static Topology ring(std::size_t n);

  /// Star: node 0 is the hub.
  static Topology star(std::size_t n);

  /// Each node connected to its k nearest neighbors by position. Large
  /// instances search via expanding grid rings instead of the all-pairs
  /// scan; the resulting graph is bit-identical either way.
  static Topology k_nearest(const std::vector<sim::Vec2>& positions, std::size_t k);

  /// Erdos-Renyi G(n, p).
  static Topology erdos_renyi(std::size_t n, double p, sim::Rng& rng);

  /// Two-tier hierarchy: `clusters` cliques of size `cluster_size`, with
  /// cluster heads (node c*cluster_size) fully connected to each other.
  static Topology hierarchical(std::size_t clusters, std::size_t cluster_size);

  /// Bytes held by the adjacency structure (vector capacities x element
  /// sizes, not allocator truth). Deterministic for a given operation
  /// sequence, which is what memory-budget benches need.
  std::size_t memory_bytes() const;

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace iobt::net
