#pragma once
// Uniform hash-grid spatial index over node positions.
//
// The wireless substrate's geometric queries (one-hop broadcast fan-out,
// connectivity rebuilds, disc scans) were all O(N) or O(N^2) scans over the
// node table, which is the quadratic wall the paper's "1,000s to 10,000s of
// nodes" claim runs into. The grid buckets nodes by cell, with the cell
// size chosen >= the maximum radio range, so any two nodes that can be in
// radio range of each other lie within one Chebyshev cell of each other:
// the 3x3 cell neighborhood of a position is a SUPERSET of its radio
// neighborhood. Queries therefore return raw candidates; callers apply the
// exact in_range/distance filter — and any ordering they need for RNG-draw
// determinism — themselves.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/message.h"
#include "sim/geometry.h"

namespace iobt::net {

class SpatialGrid {
 public:
  explicit SpatialGrid(double cell_size_m = 250.0) { set_cell_size(cell_size_m); }

  double cell_size() const { return cell_; }
  /// Number of ids currently indexed.
  std::size_t size() const { return count_; }

  /// Inserts `id` at `p`. The caller guarantees `id` is not already present.
  void insert(NodeId id, sim::Vec2 p);
  /// Removes `id`, which must have been inserted at (or moved to) `p`.
  void remove(NodeId id, sim::Vec2 p);
  /// Relocates `id` from `from` to `to`; a no-op when both map to one cell.
  void move(NodeId id, sim::Vec2 from, sim::Vec2 to);

  /// Drops every entry and adopts a new cell size (used when a node with a
  /// larger radio range joins and the covering guarantee must be restored).
  void reset(double cell_size_m);

  /// Appends every id in the 3x3 cell neighborhood of `p`. Output is
  /// unsorted but duplicate-free (each id lives in exactly one cell).
  void neighborhood(sim::Vec2 p, std::vector<NodeId>& out) const;

  /// The 3x3 neighborhood of `p`, sorted ascending, served from a per-cell
  /// memo. Any mutation that changes cell membership (insert, remove, a
  /// move that crosses a cell boundary) invalidates the memo via a version
  /// stamp; a within-cell move does not, because the id list is unchanged.
  /// This makes steady-state repeat queries (periodic hello broadcasts,
  /// back-to-back connectivity rebuilds) one hash lookup instead of nine
  /// plus a sort. The reference is valid until the next mutation or
  /// neighborhood_sorted call.
  const std::vector<NodeId>& neighborhood_sorted(sim::Vec2 p) const;

  /// Opaque identifier of the cell containing `p` — equal keys iff equal
  /// cells. Lets batch queries (connectivity rebuilds) share one gathered
  /// + sorted neighborhood among all nodes in a cell.
  std::uint64_t cell_key(sim::Vec2 p) const { return key(coord(p.x), coord(p.y)); }

  /// Appends every id in cells intersecting the disc (p, radius) — a
  /// superset of the ids within `radius` of `p`, unsorted.
  void near(sim::Vec2 p, double radius, std::vector<NodeId>& out) const;

  /// Appends the ids in cells at exactly Chebyshev ring `r` around the
  /// cell containing `p` (r = 0 is that cell itself). Used for k-nearest
  /// expanding-ring searches.
  void ring(sim::Vec2 p, int r, std::vector<NodeId>& out) const;

  /// Bytes held by the cell buckets and the neighborhood memo (container
  /// capacities x element sizes plus per-entry hash-node overhead — a
  /// structural estimate, not allocator truth). Deterministic for a given
  /// operation sequence; feeds the memory-per-node bench column.
  std::size_t memory_bytes() const;

 private:
  std::int32_t coord(double v) const;
  static std::uint64_t key(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }
  void append_cell(std::int32_t cx, std::int32_t cy, std::vector<NodeId>& out) const;
  void set_cell_size(double c);

  double cell_ = 250.0;
  double inv_cell_ = 1.0 / 250.0;
  std::size_t count_ = 0;
  std::unordered_map<std::uint64_t, std::vector<NodeId>> cells_;
  /// Membership version + per-cell sorted-neighborhood memo (see
  /// neighborhood_sorted). Mutable: the memo is a pure cache over cells_.
  std::uint64_t version_ = 0;
  struct Hood {
    std::uint64_t version = ~0ULL;
    std::vector<NodeId> ids;
  };
  mutable std::unordered_map<std::uint64_t, Hood> hood_memo_;
};

}  // namespace iobt::net
