#include "net/spatial_grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace iobt::net {

void SpatialGrid::set_cell_size(double c) {
  // A non-positive cell size (no radios registered yet) degenerates to a
  // 1 m grid; correctness only needs cell_ >= max range, which holds
  // vacuously until the first insert after reset().
  cell_ = c > 0.0 ? c : 1.0;
  inv_cell_ = 1.0 / cell_;
}

std::int32_t SpatialGrid::coord(double v) const {
  return static_cast<std::int32_t>(std::floor(v * inv_cell_));
}

void SpatialGrid::insert(NodeId id, sim::Vec2 p) {
  cells_[key(coord(p.x), coord(p.y))].push_back(id);
  ++count_;
  ++version_;
}

void SpatialGrid::remove(NodeId id, sim::Vec2 p) {
  const auto it = cells_.find(key(coord(p.x), coord(p.y)));
  assert(it != cells_.end() && "SpatialGrid::remove: cell not found");
  if (it == cells_.end()) return;
  auto& bucket = it->second;
  const auto pos = std::find(bucket.begin(), bucket.end(), id);
  assert(pos != bucket.end() && "SpatialGrid::remove: id not in its cell");
  if (pos == bucket.end()) return;
  // Bucket order is irrelevant (queries sort), so swap-erase.
  *pos = bucket.back();
  bucket.pop_back();
  if (bucket.empty()) cells_.erase(it);
  --count_;
  ++version_;
}

void SpatialGrid::move(NodeId id, sim::Vec2 from, sim::Vec2 to) {
  const std::int32_t fx = coord(from.x), fy = coord(from.y);
  const std::int32_t tx = coord(to.x), ty = coord(to.y);
  if (fx == tx && fy == ty) return;
  remove(id, from);
  insert(id, to);
}

void SpatialGrid::reset(double cell_size_m) {
  cells_.clear();
  hood_memo_.clear();
  count_ = 0;
  ++version_;
  set_cell_size(cell_size_m);
}

void SpatialGrid::append_cell(std::int32_t cx, std::int32_t cy,
                              std::vector<NodeId>& out) const {
  const auto it = cells_.find(key(cx, cy));
  if (it == cells_.end()) return;
  out.insert(out.end(), it->second.begin(), it->second.end());
}

void SpatialGrid::neighborhood(sim::Vec2 p, std::vector<NodeId>& out) const {
  const std::int32_t cx = coord(p.x), cy = coord(p.y);
  for (std::int32_t dy = -1; dy <= 1; ++dy) {
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      append_cell(cx + dx, cy + dy, out);
    }
  }
}

const std::vector<NodeId>& SpatialGrid::neighborhood_sorted(sim::Vec2 p) const {
  Hood& h = hood_memo_[cell_key(p)];
  if (h.version != version_) {
    h.ids.clear();
    neighborhood(p, h.ids);
    std::sort(h.ids.begin(), h.ids.end());
    h.version = version_;
  }
  return h.ids;
}

void SpatialGrid::near(sim::Vec2 p, double radius, std::vector<NodeId>& out) const {
  const std::int32_t r =
      static_cast<std::int32_t>(std::ceil(std::max(radius, 0.0) * inv_cell_));
  const std::int32_t cx = coord(p.x), cy = coord(p.y);
  for (std::int32_t dy = -r; dy <= r; ++dy) {
    for (std::int32_t dx = -r; dx <= r; ++dx) {
      append_cell(cx + dx, cy + dy, out);
    }
  }
}

void SpatialGrid::ring(sim::Vec2 p, int r, std::vector<NodeId>& out) const {
  const std::int32_t cx = coord(p.x), cy = coord(p.y);
  if (r <= 0) {
    append_cell(cx, cy, out);
    return;
  }
  for (std::int32_t dx = -r; dx <= r; ++dx) {
    append_cell(cx + dx, cy - r, out);
    append_cell(cx + dx, cy + r, out);
  }
  for (std::int32_t dy = -r + 1; dy <= r - 1; ++dy) {
    append_cell(cx - r, cy + dy, out);
    append_cell(cx + r, cy + dy, out);
  }
}

std::size_t SpatialGrid::memory_bytes() const {
  // Hash-node overhead approximated as key + bucket vector header + two
  // pointers; exact malloc bookkeeping is allocator-specific and would
  // make the bench column nondeterministic.
  constexpr std::size_t kNodeOverhead = sizeof(std::uint64_t) + 2 * sizeof(void*);
  std::size_t bytes = 0;
  for (const auto& [key, ids] : cells_) {
    bytes += kNodeOverhead + sizeof(ids) + ids.capacity() * sizeof(NodeId);
  }
  for (const auto& [key, hood] : hood_memo_) {
    bytes += kNodeOverhead + sizeof(hood) + hood.ids.capacity() * sizeof(NodeId);
  }
  return bytes;
}

}  // namespace iobt::net
