#pragma once
// Messages exchanged over the simulated network.

#include <any>
#include <cstdint>
#include <limits>
#include <string>

#include "sim/time.h"

namespace iobt::net {

/// Identifier of a network node. Dense indices: nodes are created 0..N-1.
using NodeId = std::uint32_t;

/// Destination value meaning "all nodes in radio range" (single-hop
/// broadcast).
inline constexpr NodeId kBroadcast = std::numeric_limits<NodeId>::max();

/// A datagram. `kind` routes the message to the right handler on the
/// receiving node; `payload` carries an arbitrary typed value (std::any —
/// this is a simulation, so we pass structured data instead of bytes, but
/// `size_bytes` still drives transmission time and bandwidth accounting).
struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  std::string kind;
  std::any payload;
  std::size_t size_bytes = 0;
  /// Number of hops this message has traversed so far (set by the network).
  int hops = 0;
  /// Virtual time the original send() was issued (set by the network).
  sim::SimTime sent_at;
};

}  // namespace iobt::net
