#pragma once
// Per-node protocol dispatch.
//
// A Network allows one delivery handler per node; real IoBT nodes run many
// services (discovery responder, gossip, mission traffic) concurrently.
// Dispatcher multiplexes by Message::kind so independent modules can attach
// handlers to the same node without clobbering each other.

#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "net/network.h"

namespace iobt::net {

class Dispatcher {
 public:
  explicit Dispatcher(Network& network) : net_(network) {}

  /// Registers `handler` for messages of `kind` arriving at `node`.
  /// The first registration for a node installs the network handler.
  /// Re-registering the same (node, kind) replaces the handler.
  void on(NodeId node, const std::string& kind, Handler handler) {
    auto [it, inserted] = routes_.try_emplace(node);
    if (inserted) {
      net_.set_handler(node, [this, node](const Message& m) { dispatch(node, m); });
    }
    it->second[kind] = std::move(handler);
  }

  /// Removes the handler for (node, kind) if present.
  void off(NodeId node, const std::string& kind) {
    auto it = routes_.find(node);
    if (it != routes_.end()) it->second.erase(kind);
  }

  /// Handler invoked for kinds nobody registered (diagnostics).
  void set_default(Handler h) { default_ = std::move(h); }

  Network& network() { return net_; }

 private:
  void dispatch(NodeId node, const Message& m) {
    auto it = routes_.find(node);
    if (it != routes_.end()) {
      auto h = it->second.find(m.kind);
      if (h != it->second.end()) {
        h->second(m);
        return;
      }
    }
    if (default_) default_(m);
  }

  Network& net_;
  std::unordered_map<NodeId, std::map<std::string, Handler>> routes_;
  Handler default_;
};

}  // namespace iobt::net
