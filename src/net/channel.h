#pragma once
// Wireless channel model.
//
// Connectivity is disk-based (link exists iff distance <= min of the two
// radios' ranges) with a distance-dependent loss probability on top, so
// links near the edge of range are flaky — the "disadvantaged assets"
// regime of the paper. Jammers (an adversarial action, §II) raise loss to
// near-certainty inside their footprint while active.

#include <cstdint>
#include <vector>

#include "sim/geometry.h"
#include "sim/time.h"

namespace iobt::net {

/// Radio capabilities of one node.
struct RadioProfile {
  /// Maximum communication range, meters.
  double range_m = 250.0;
  /// Link data rate, bits per second (drives transmission delay).
  double data_rate_bps = 1e6;
  /// Loss probability at zero distance (hardware floor).
  double base_loss = 0.01;
};

/// A circular jamming field, active during [start, end).
struct Jammer {
  sim::Vec2 center;
  double radius_m = 0.0;
  sim::SimTime start;
  sim::SimTime end = sim::SimTime::max();
  /// Loss probability forced on links with an endpoint inside the field.
  double induced_loss = 0.98;

  bool active_at(sim::SimTime t) const { return t >= start && t < end; }
  bool covers(sim::Vec2 p) const { return sim::distance(center, p) <= radius_m; }
};

/// An RF-opaque building footprint (urban terrain, §I: operations
/// "increasingly carried out in urban contexts"). Links whose line of
/// sight crosses a building are blocked outright — the connectivity graph
/// bends around the skyline, which is what makes urban routing hard.
struct Building {
  sim::Rect footprint;
};

/// Computes per-transmission link quality between two radios.
class ChannelModel {
 public:
  /// Exponent shaping how loss grows toward the edge of range: loss rises
  /// as (d / range)^edge_exponent from base_loss toward max_edge_loss.
  ChannelModel(double edge_exponent = 2.0, double max_edge_loss = 0.35)
      : edge_exponent_(edge_exponent), max_edge_loss_(max_edge_loss) {}

  void add_jammer(Jammer j) { jammers_.push_back(j); }
  const std::vector<Jammer>& jammers() const { return jammers_; }
  void clear_jammers() { jammers_.clear(); }

  void add_building(sim::Rect footprint) { buildings_.push_back({footprint}); }
  const std::vector<Building>& buildings() const { return buildings_; }

  double edge_exponent() const { return edge_exponent_; }
  double max_edge_loss() const { return max_edge_loss_; }

  /// True if the straight path between two points crosses a building.
  bool line_of_sight_blocked(sim::Vec2 a, sim::Vec2 b) const {
    for (const Building& bl : buildings_) {
      if (sim::segment_intersects_rect(a, b, bl.footprint)) return true;
    }
    return false;
  }

  /// True if two radios at these positions can exchange frames at all:
  /// within both ranges AND line of sight clear of buildings.
  bool in_range(sim::Vec2 a, const RadioProfile& ra, sim::Vec2 b,
                const RadioProfile& rb) const {
    const double lim = std::min(ra.range_m, rb.range_m);
    if (sim::distance2(a, b) > lim * lim) return false;
    return buildings_.empty() || !line_of_sight_blocked(a, b);
  }

  /// Loss probability for one frame from a->b at virtual time t.
  /// Returns 1.0 when out of range.
  double loss_probability(sim::Vec2 a, const RadioProfile& ra, sim::Vec2 b,
                          const RadioProfile& rb, sim::SimTime t) const;

  /// Time to push `bytes` onto the air at the sender's data rate.
  static sim::Duration transmission_delay(const RadioProfile& sender, std::size_t bytes) {
    const double seconds = static_cast<double>(bytes) * 8.0 / sender.data_rate_bps;
    return sim::Duration::seconds(seconds);
  }

 private:
  double edge_exponent_;
  double max_edge_loss_;
  std::vector<Jammer> jammers_;
  std::vector<Building> buildings_;
};

}  // namespace iobt::net
