#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "net/spatial_grid.h"

namespace iobt::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
/// Below this many nodes the generators use the brute-force scans; the
/// grid's constant factors only pay off past it. Both paths produce
/// bit-identical graphs, so the threshold is a pure wall-time knob.
constexpr std::size_t kGridThreshold = 64;
}

bool ShortestPaths::reachable(NodeId v) const {
  return v < dist.size() && dist[v] < kInf;
}

std::vector<NodeId> ShortestPaths::path_to(NodeId v) const {
  if (!reachable(v)) return {};
  std::vector<NodeId> rev;
  NodeId cur = v;
  rev.push_back(cur);
  while (cur != source) {
    const auto& p = parent[cur];
    if (!p) return {};  // defensive: broken parent chain
    cur = *p;
    rev.push_back(cur);
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

Topology::Topology(std::size_t node_count, const std::vector<Edge>& edge_list)
    : adjacency_(node_count) {
  std::vector<std::uint32_t> degree(node_count, 0);
  for (const Edge& e : edge_list) {
    if (e.a == e.b) continue;
    if (e.a >= node_count || e.b >= node_count) {
      throw std::out_of_range("Topology: edge endpoint out of range");
    }
    ++degree[e.a];
    ++degree[e.b];
  }
  for (std::size_t v = 0; v < node_count; ++v) {
    if (degree[v] > 0) adjacency_[v].reserve(degree[v]);
  }
  for (const Edge& e : edge_list) {
    if (e.a == e.b) continue;
    assert(!has_edge(e.a, e.b) && "Topology bulk constructor: duplicate edge");
    adjacency_[e.a].push_back({e.b, e.weight});
    adjacency_[e.b].push_back({e.a, e.weight});
    ++edge_count_;
  }
}

NodeId Topology::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Topology::add_edge(NodeId a, NodeId b, double weight) {
  if (a == b) return;
  if (a >= node_count() || b >= node_count()) {
    throw std::out_of_range("Topology::add_edge: node id out of range");
  }
  for (auto& n : adjacency_[a]) {
    if (n.id == b) {
      // Update existing edge weight on both endpoints.
      n.weight = weight;
      for (auto& m : adjacency_[b]) {
        if (m.id == a) m.weight = weight;
      }
      return;
    }
  }
  adjacency_[a].push_back({b, weight});
  adjacency_[b].push_back({a, weight});
  ++edge_count_;
}

void Topology::add_edge_unique(NodeId a, NodeId b, double weight) {
  if (a == b) return;
  if (a >= node_count() || b >= node_count()) {
    throw std::out_of_range("Topology::add_edge_unique: node id out of range");
  }
  assert(!has_edge(a, b) && "add_edge_unique: pair already present");
  adjacency_[a].push_back({b, weight});
  adjacency_[b].push_back({a, weight});
  ++edge_count_;
}

void Topology::add_edge_sorted(NodeId a, NodeId b, double weight) {
  if (a == b) return;
  if (a >= node_count() || b >= node_count()) {
    throw std::out_of_range("Topology::add_edge_sorted: node id out of range");
  }
  assert(!has_edge(a, b) && "add_edge_sorted: pair already present");
  auto insert_sorted = [](std::vector<Neighbor>& v, NodeId id, double w) {
    auto it = std::lower_bound(
        v.begin(), v.end(), id,
        [](const Neighbor& n, NodeId target) { return n.id < target; });
    v.insert(it, Neighbor{id, w});
  };
  insert_sorted(adjacency_[a], b, weight);
  insert_sorted(adjacency_[b], a, weight);
  ++edge_count_;
}

void Topology::update_edge_weight(NodeId a, NodeId b, double weight) {
  assert(a < node_count() && b < node_count() &&
         "update_edge_weight: node id out of range");
  bool found = false;
  for (auto& n : adjacency_[a]) {
    if (n.id == b) {
      n.weight = weight;
      found = true;
      break;
    }
  }
  assert(found && "update_edge_weight: edge absent");
  (void)found;
  for (auto& m : adjacency_[b]) {
    if (m.id == a) {
      m.weight = weight;
      return;
    }
  }
}

void Topology::remove_edge(NodeId a, NodeId b) {
  if (a >= node_count() || b >= node_count()) return;
  auto erase_from = [](std::vector<Neighbor>& v, NodeId id) {
    auto it = std::find_if(v.begin(), v.end(), [id](const Neighbor& n) { return n.id == id; });
    if (it == v.end()) return false;
    v.erase(it);
    return true;
  };
  if (erase_from(adjacency_[a], b)) {
    erase_from(adjacency_[b], a);
    --edge_count_;
  }
}

bool Topology::has_edge(NodeId a, NodeId b) const {
  return edge_weight(a, b).has_value();
}

std::optional<double> Topology::edge_weight(NodeId a, NodeId b) const {
  if (a >= node_count() || b >= node_count()) return std::nullopt;
  for (const auto& n : adjacency_[a]) {
    if (n.id == b) return n.weight;
  }
  return std::nullopt;
}

std::vector<Edge> Topology::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (NodeId a = 0; a < node_count(); ++a) {
    for (const auto& n : adjacency_[a]) {
      if (a < n.id) out.push_back({a, n.id, n.weight});
    }
  }
  return out;
}

ShortestPaths Topology::shortest_paths(NodeId source) const {
  const std::size_t n = node_count();
  ShortestPaths sp;
  sp.source = source;
  sp.dist.assign(n, kInf);
  sp.parent.assign(n, std::nullopt);
  if (source >= n) return sp;
  sp.dist[source] = 0.0;

  using Item = std::pair<double, NodeId>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > sp.dist[v]) continue;  // stale entry
    for (const auto& nb : adjacency_[v]) {
      assert(nb.weight >= 0.0 && "Dijkstra requires non-negative weights");
      const double cand = d + nb.weight;
      if (cand < sp.dist[nb.id]) {
        sp.dist[nb.id] = cand;
        sp.parent[nb.id] = v;
        heap.push({cand, nb.id});
      }
    }
  }
  return sp;
}

std::vector<int> Topology::hop_distances(NodeId source) const {
  std::vector<int> dist(node_count(), -1);
  if (source >= node_count()) return dist;
  std::queue<NodeId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const auto& nb : adjacency_[v]) {
      if (dist[nb.id] < 0) {
        dist[nb.id] = dist[v] + 1;
        q.push(nb.id);
      }
    }
  }
  return dist;
}

std::vector<int> Topology::components() const {
  std::vector<int> label(node_count(), -1);
  int next = 0;
  for (NodeId s = 0; s < node_count(); ++s) {
    if (label[s] >= 0) continue;
    label[s] = next;
    std::queue<NodeId> q;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (const auto& nb : adjacency_[v]) {
        if (label[nb.id] < 0) {
          label[nb.id] = next;
          q.push(nb.id);
        }
      }
    }
    ++next;
  }
  return label;
}

int Topology::component_count() const {
  const auto labels = components();
  return labels.empty() ? 0 : *std::max_element(labels.begin(), labels.end()) + 1;
}

std::vector<Edge> Topology::minimum_spanning_forest() const {
  auto es = edges();
  std::sort(es.begin(), es.end(),
            [](const Edge& x, const Edge& y) { return x.weight < y.weight; });
  // Union-find with path halving.
  std::vector<NodeId> parent(node_count());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  std::vector<Edge> chosen;
  for (const Edge& e : es) {
    const NodeId ra = find(e.a), rb = find(e.b);
    if (ra == rb) continue;
    parent[ra] = rb;
    chosen.push_back(e);
  }
  return chosen;
}

Topology Topology::random_geometric(std::size_t n, sim::Rect area, double radius,
                                    sim::Rng& rng, std::vector<sim::Vec2>* positions) {
  Topology t(n);
  std::vector<sim::Vec2> pos(n);
  for (auto& p : pos) {
    p = {rng.uniform(area.min.x, area.max.x), rng.uniform(area.min.y, area.max.y)};
  }
  const double r2 = radius * radius;
  if (n >= kGridThreshold && radius > 0.0) {
    // Cell size = radius: the 3x3 neighborhood covers the disc. Edges are
    // added in the brute-force order (a ascending, b > a ascending), so
    // the result is bit-identical to the quadratic scan below.
    SpatialGrid grid(radius);
    for (NodeId i = 0; i < n; ++i) grid.insert(i, pos[i]);
    std::vector<NodeId> cand;
    for (NodeId a = 0; a < n; ++a) {
      cand.clear();
      grid.neighborhood(pos[a], cand);
      std::sort(cand.begin(), cand.end());
      for (const NodeId b : cand) {
        if (b <= a) continue;
        const double d2 = sim::distance2(pos[a], pos[b]);
        if (d2 <= r2) t.add_edge_unique(a, b, std::sqrt(d2));
      }
    }
  } else {
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = a + 1; b < n; ++b) {
        const double d2 = sim::distance2(pos[a], pos[b]);
        if (d2 <= r2) t.add_edge_unique(a, b, std::sqrt(d2));
      }
    }
  }
  if (positions) *positions = std::move(pos);
  return t;
}

Topology Topology::grid(std::size_t w, std::size_t h) {
  Topology t(w * h);
  auto id = [w](std::size_t x, std::size_t y) { return static_cast<NodeId>(y * w + x); };
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      if (x + 1 < w) t.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < h) t.add_edge(id(x, y), id(x, y + 1));
    }
  }
  return t;
}

Topology Topology::ring(std::size_t n) {
  Topology t(n);
  if (n < 2) return t;
  for (NodeId i = 0; i < n; ++i) t.add_edge(i, static_cast<NodeId>((i + 1) % n));
  return t;
}

Topology Topology::star(std::size_t n) {
  Topology t(n);
  for (NodeId i = 1; i < n; ++i) t.add_edge(0, i);
  return t;
}

Topology Topology::k_nearest(const std::vector<sim::Vec2>& positions, std::size_t k) {
  const std::size_t n = positions.size();
  Topology t(n);
  if (n < 2 || k == 0) return t;
  const std::size_t kk = std::min(k, n - 1);

  // Grid path: expanding Chebyshev rings around each node until the kth
  // candidate provably beats everything still uncollected. The k smallest
  // (distance, id) pairs form a unique set under the pair's total order,
  // so the result is bit-identical to the brute-force scan below.
  sim::Vec2 lo = positions[0], hi = positions[0];
  for (const sim::Vec2& p : positions) {
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y)};
  }
  const double extent = std::max(hi.x - lo.x, hi.y - lo.y);
  if (n >= kGridThreshold && extent > 0.0) {
    // ~1 point per cell on average.
    SpatialGrid grid(extent / std::sqrt(static_cast<double>(n)));
    for (NodeId i = 0; i < n; ++i) grid.insert(i, positions[i]);
    std::vector<std::pair<double, NodeId>> d;
    std::vector<NodeId> ring_ids;
    for (NodeId a = 0; a < n; ++a) {
      d.clear();
      for (int r = 0;; ++r) {
        ring_ids.clear();
        grid.ring(positions[a], r, ring_ids);
        for (const NodeId b : ring_ids) {
          if (b != a) d.push_back({sim::distance(positions[a], positions[b]), b});
        }
        if (d.size() == n - 1) break;  // everything collected
        if (d.size() >= kk) {
          std::nth_element(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(kk) - 1,
                           d.end());
          // Cells beyond ring r hold only points at distance >= r * cell;
          // strict comparison keeps boundary ties in the search.
          if (d[kk - 1].first < r * grid.cell_size()) break;
        }
      }
      std::partial_sort(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(kk), d.end());
      for (std::size_t i = 0; i < kk; ++i) t.add_edge(a, d[i].second, d[i].first);
    }
    return t;
  }

  for (NodeId a = 0; a < n; ++a) {
    // Collect distances to all other nodes, pick k smallest.
    std::vector<std::pair<double, NodeId>> d;
    d.reserve(n - 1);
    for (NodeId b = 0; b < n; ++b) {
      if (b != a) d.push_back({sim::distance(positions[a], positions[b]), b});
    }
    std::partial_sort(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(kk), d.end());
    for (std::size_t i = 0; i < kk; ++i) t.add_edge(a, d[i].second, d[i].first);
  }
  return t;
}

Topology Topology::erdos_renyi(std::size_t n, double p, sim::Rng& rng) {
  Topology t(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (rng.bernoulli(p)) t.add_edge(a, b);
    }
  }
  return t;
}

Topology Topology::hierarchical(std::size_t clusters, std::size_t cluster_size) {
  Topology t(clusters * cluster_size);
  for (std::size_t c = 0; c < clusters; ++c) {
    const NodeId base = static_cast<NodeId>(c * cluster_size);
    for (std::size_t i = 0; i < cluster_size; ++i) {
      for (std::size_t j = i + 1; j < cluster_size; ++j) {
        t.add_edge(base + static_cast<NodeId>(i), base + static_cast<NodeId>(j));
      }
    }
  }
  // Cluster heads form a full mesh among themselves.
  for (std::size_t c1 = 0; c1 < clusters; ++c1) {
    for (std::size_t c2 = c1 + 1; c2 < clusters; ++c2) {
      t.add_edge(static_cast<NodeId>(c1 * cluster_size),
                 static_cast<NodeId>(c2 * cluster_size));
    }
  }
  return t;
}

std::size_t Topology::memory_bytes() const {
  std::size_t bytes = adjacency_.capacity() * sizeof(std::vector<Neighbor>);
  for (const auto& list : adjacency_) bytes += list.capacity() * sizeof(Neighbor);
  return bytes;
}

}  // namespace iobt::net
