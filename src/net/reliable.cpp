#include "net/reliable.h"

namespace iobt::net {

namespace {
/// Wire envelope: the sequence id plus the user payload/kind.
struct Envelope {
  std::uint64_t seq = 0;
  Message inner;
};
struct Ack {
  std::uint64_t seq = 0;
};
constexpr std::size_t kAckBytes = 16;
constexpr std::size_t kEnvelopeOverhead = 16;
}  // namespace

ReliableChannel::ReliableChannel(sim::Simulator& simulator, Dispatcher& dispatcher,
                                 std::string kind_prefix, ReliableConfig config)
    : sim_(simulator), disp_(dispatcher), prefix_(std::move(kind_prefix)), cfg_(config) {}

void ReliableChannel::listen(NodeId node, std::function<void(const Message&)> on_receive) {
  disp_.on(node, data_kind(),
           [this, node, on_receive = std::move(on_receive)](const Message& m) {
             const auto& env = std::any_cast<const Envelope&>(m.payload);
             // Always ack (the previous ack may have been lost)...
             Message ack;
             ack.kind = ack_kind();
             ack.size_bytes = kAckBytes;
             ack.payload = Ack{env.seq};
             disp_.network().route_and_send(node, m.src, std::move(ack));
             // ...but deliver each seq only once.
             auto& seen = delivered_[node];
             if (seen.count(env.seq)) return;
             seen.insert(env.seq);
             Message inner = env.inner;
             inner.src = m.src;
             inner.dst = m.dst;
             inner.hops = m.hops;
             inner.sent_at = m.sent_at;
             on_receive(inner);
           });
}

std::uint64_t ReliableChannel::send(NodeId src, NodeId dst, Message msg,
                                    std::function<void(bool)> on_result) {
  // Sender-side ACK endpoint is installed lazily, once per source node.
  disp_.on(src, ack_kind(), [this](const Message& m) {
    const auto& ack = std::any_cast<const Ack&>(m.payload);
    auto it = pending_.find(ack.seq);
    if (it == pending_.end() || it->second.done) return;
    it->second.done = true;
    ++acked_;
    if (it->second.on_result) it->second.on_result(true);
    pending_.erase(it);
  });

  const std::uint64_t seq = next_seq_++;
  Pending p;
  p.src = src;
  p.dst = dst;
  p.msg = std::move(msg);
  p.attempts_left = cfg_.max_attempts;
  p.on_result = std::move(on_result);
  pending_[seq] = std::move(p);
  transmit(seq);
  return seq;
}

void ReliableChannel::transmit(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end() || it->second.done) return;
  Pending& p = it->second;
  if (p.attempts_left <= 0) {
    ++failed_;
    if (p.on_result) p.on_result(false);
    pending_.erase(it);
    return;
  }
  if (p.attempts_left < cfg_.max_attempts) ++retransmissions_;
  --p.attempts_left;

  Message frame;
  frame.kind = data_kind();
  frame.size_bytes = p.msg.size_bytes + kEnvelopeOverhead;
  Envelope env;
  env.seq = seq;
  env.inner = p.msg;
  frame.payload = std::move(env);
  disp_.network().route_and_send(p.src, p.dst, std::move(frame));
  arm_timer(seq);
}

void ReliableChannel::arm_timer(std::uint64_t seq) {
  sim_.schedule_in(
      cfg_.rto, [this, seq]() { transmit(seq); }, "rel.rto");
}

}  // namespace iobt::net
