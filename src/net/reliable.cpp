#include "net/reliable.h"

namespace iobt::net {

namespace {
/// Wire envelope: transfer id (echoed by the ACK for sender-side matching),
/// per-flow sequence (receiver-side dedup), the sender's low watermark
/// (every flow seq < low is resolved — lets the receiver compact its dedup
/// window past holes left by abandoned transfers) and the user payload.
struct Envelope {
  std::uint64_t xfer = 0;
  std::uint64_t seq = 0;
  std::uint64_t low = 0;
  Message inner;
};
struct Ack {
  std::uint64_t xfer = 0;
};
constexpr std::size_t kAckBytes = 16;
constexpr std::size_t kEnvelopeOverhead = 32;
}  // namespace

ReliableChannel::ReliableChannel(sim::Simulator& simulator, Dispatcher& dispatcher,
                                 std::string kind_prefix, ReliableConfig config)
    : sim_(simulator), disp_(dispatcher), prefix_(std::move(kind_prefix)),
      cfg_(config), rto_tag_(simulator.intern(prefix_ + ".rto")),
      trace_xfer_(prefix_ + ".xfer", "net"),
      trace_retx_(prefix_ + ".retransmit", "net"),
      trace_fail_(prefix_ + ".fail", "net"),
      trace_retx_total_(prefix_ + ".retransmissions", "net"),
      trace_pending_(prefix_ + ".pending", "net") {}

void ReliableChannel::listen(NodeId node, std::function<void(const Message&)> on_receive) {
  disp_.on(node, data_kind(),
           [this, node, on_receive = std::move(on_receive)](const Message& m) {
             const auto& env = std::any_cast<const Envelope&>(m.payload);
             // Always ack (the previous ack may have been lost) — except
             // watermark-only release frames (xfer 0), which are fire-and-
             // forget.
             if (env.xfer != 0) {
               Message ack;
               ack.kind = ack_kind();
               ack.size_bytes = kAckBytes;
               ack.payload = Ack{env.xfer};
               disp_.network().route_and_send(node, m.src, std::move(ack));
             }
             // Deliver each flow seq only once. The sender's watermark
             // lets the window forget abandoned holes first.
             SeqWindow& window = delivered_[flow_key(node, m.src)];
             if (env.low > 0) window.advance_to(env.low - 1);
             if (env.seq == 0 || !window.insert(env.seq)) return;
             Message inner = env.inner;
             inner.src = m.src;
             inner.dst = m.dst;
             inner.hops = m.hops;
             inner.sent_at = m.sent_at;
             on_receive(inner);
           });
}

void ReliableChannel::install_ack_endpoint(NodeId src) {
  // Installed lazily, once per source node; repeated sends reuse it.
  if (!ack_installed_.insert(src).second) return;
  disp_.on(src, ack_kind(), [this](const Message& m) {
    const auto& ack = std::any_cast<const Ack&>(m.payload);
    auto it = pending_.find(ack.xfer);
    if (it == pending_.end() || it->second.done) return;
    it->second.done = true;
    sim_.cancel(it->second.rto_timer);  // the retransmit is moot now
    ++acked_;
    resolve_flow_seq(it->second.src, it->second.dst, it->second.flow_seq);
    auto on_result = std::move(it->second.on_result);
    pending_.erase(it);
    trace::Tracer& tr = sim_.tracer();
    if (tr.enabled()) {
      tr.async_end(trace_xfer_.id(tr), ack.xfer);
      tr.counter(trace_pending_.id(tr), static_cast<double>(pending_.size()));
    }
    if (on_result) on_result(true);
  });
}

std::uint64_t ReliableChannel::send(NodeId src, NodeId dst, Message msg,
                                    std::function<void(bool)> on_result) {
  install_ack_endpoint(src);

  const std::uint64_t xfer = next_xfer_++;
  Pending p;
  p.src = src;
  p.dst = dst;
  p.msg = std::move(msg);
  p.flow_seq = ++flow_next_seq_[flow_key(src, dst)];
  flow_outstanding_[flow_key(src, dst)].insert(p.flow_seq);
  p.attempts_left = cfg_.max_attempts;
  p.on_result = std::move(on_result);
  pending_[xfer] = std::move(p);
  trace::Tracer& tr = sim_.tracer();
  if (tr.enabled()) {
    tr.async_begin(trace_xfer_.id(tr), xfer);
    tr.counter(trace_pending_.id(tr), static_cast<double>(pending_.size()));
  }
  transmit(xfer);
  return xfer;
}

void ReliableChannel::transmit(std::uint64_t xfer) {
  auto it = pending_.find(xfer);
  if (it == pending_.end() || it->second.done) return;
  Pending& p = it->second;
  p.rto_timer = sim::kNoEvent;  // the previous timer fired (or first send)
  if (p.attempts_left <= 0) {
    ++failed_;
    // Give up: resolve the flow seq so later frames advertise past the
    // hole, and push the raised watermark out in a best-effort release
    // frame (seq/xfer 0: never delivered, never acked) so the receiver
    // can forget the hole even if no further data traffic follows.
    resolve_flow_seq(p.src, p.dst, p.flow_seq);
    Message release;
    release.kind = data_kind();
    release.size_bytes = kEnvelopeOverhead;
    Envelope renv;
    renv.low = flow_low(flow_key(p.src, p.dst));
    release.payload = std::move(renv);
    disp_.network().route_and_send(p.src, p.dst, std::move(release));
    auto on_result = std::move(p.on_result);
    pending_.erase(it);
    trace::Tracer& tr = sim_.tracer();
    if (tr.enabled()) {
      tr.instant(trace_fail_.id(tr));
      tr.async_end(trace_xfer_.id(tr), xfer);
      tr.counter(trace_pending_.id(tr), static_cast<double>(pending_.size()));
    }
    if (on_result) on_result(false);
    return;
  }
  if (p.attempts_left < cfg_.max_attempts) {
    ++retransmissions_;
    trace::Tracer& tr = sim_.tracer();
    if (tr.enabled()) {
      tr.instant(trace_retx_.id(tr));
      tr.counter(trace_retx_total_.id(tr), static_cast<double>(retransmissions_));
    }
  }
  --p.attempts_left;

  Message frame;
  frame.kind = data_kind();
  frame.size_bytes = p.msg.size_bytes + kEnvelopeOverhead;
  Envelope env;
  env.xfer = xfer;
  env.seq = p.flow_seq;
  env.low = flow_low(flow_key(p.src, p.dst));
  env.inner = p.msg;
  frame.payload = std::move(env);
  disp_.network().route_and_send(p.src, p.dst, std::move(frame));
  arm_timer(xfer);
}

void ReliableChannel::arm_timer(std::uint64_t xfer) {
  auto it = pending_.find(xfer);
  if (it == pending_.end()) return;
  it->second.rto_timer = sim_.schedule_in(
      cfg_.rto, [this, xfer]() { transmit(xfer); }, rto_tag_);
}

std::uint64_t ReliableChannel::flow_low(std::uint64_t flow) const {
  auto it = flow_outstanding_.find(flow);
  if (it != flow_outstanding_.end() && !it->second.empty())
    return *it->second.begin();
  auto next = flow_next_seq_.find(flow);
  return (next == flow_next_seq_.end() ? 0 : next->second) + 1;
}

void ReliableChannel::resolve_flow_seq(NodeId src, NodeId dst,
                                       std::uint64_t seq) {
  auto it = flow_outstanding_.find(flow_key(src, dst));
  if (it == flow_outstanding_.end()) return;
  it->second.erase(seq);
  if (it->second.empty()) flow_outstanding_.erase(it);
}

std::size_t ReliableChannel::dedup_tail_entries() const {
  std::size_t total = 0;
  for (const auto& [key, window] : delivered_) total += window.tail_size();
  return total;
}

}  // namespace iobt::net
