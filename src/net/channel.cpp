#include "net/channel.h"

#include <algorithm>
#include <cmath>

namespace iobt::net {

double ChannelModel::loss_probability(sim::Vec2 a, const RadioProfile& ra, sim::Vec2 b,
                                      const RadioProfile& rb, sim::SimTime t) const {
  const double lim = std::min(ra.range_m, rb.range_m);
  const double d = sim::distance(a, b);
  if (d > lim) return 1.0;
  if (!buildings_.empty() && line_of_sight_blocked(a, b)) return 1.0;

  // Distance-dependent loss: base at d=0 rising to max_edge_loss at d=lim.
  // The shaping runs once per transmitted frame; the common exponents
  // bypass the libm pow call. A correctly-rounded pow returns exactly
  // frac for exponent 1 and exactly the rounded product frac*frac for
  // exponent 2, so the fast paths are bit-identical, not approximations.
  const double frac = lim > 0.0 ? d / lim : 0.0;
  const double shaped = edge_exponent_ == 2.0   ? frac * frac
                        : edge_exponent_ == 1.0 ? frac
                                                : std::pow(frac, edge_exponent_);
  double loss = ra.base_loss + (max_edge_loss_ - ra.base_loss) * shaped;

  // Jamming dominates when either endpoint is inside an active field.
  for (const Jammer& j : jammers_) {
    if (!j.active_at(t)) continue;
    if (j.covers(a) || j.covers(b)) loss = std::max(loss, j.induced_loss);
  }
  return std::clamp(loss, 0.0, 1.0);
}

}  // namespace iobt::net
