#pragma once
// Packet-level simulated wireless network.
//
// A Network owns the set of radio endpoints, delivers unicast and one-hop
// broadcast frames with transmission delay + propagation latency + loss,
// and forwards multi-hop traffic along shortest paths over the *current*
// connectivity graph (recomputed lazily when positions or liveness
// change). Per-node accounting (bytes, drops, energy callbacks) feeds the
// experiment harnesses.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/channel.h"
#include "net/message.h"
#include "net/topology.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace iobt::net {

/// Delivery callback installed per node: invoked (at the receive time) for
/// every message addressed to, or broadcast within range of, the node.
using Handler = std::function<void(const Message&)>;

/// Why a send() failed to deliver.
enum class DropReason { kOutOfRange, kChannelLoss, kNodeDown, kNoRoute, kQueueOverflow };

std::string to_string(DropReason r);

class Network {
 public:
  Network(sim::Simulator& simulator, ChannelModel channel, sim::Rng rng);

  // --- Node lifecycle ---------------------------------------------------

  /// Registers a radio endpoint; returns its dense NodeId.
  NodeId add_node(sim::Vec2 position, RadioProfile profile = {});
  std::size_t node_count() const { return nodes_.size(); }

  void set_handler(NodeId id, Handler h);
  void set_position(NodeId id, sim::Vec2 p);
  sim::Vec2 position(NodeId id) const { return nodes_.at(id).position; }
  const RadioProfile& profile(NodeId id) const { return nodes_.at(id).profile; }

  /// Takes a node offline: it neither sends, receives, nor forwards.
  void set_node_up(NodeId id, bool up);
  bool node_up(NodeId id) const { return nodes_.at(id).up; }

  // --- Traffic ----------------------------------------------------------

  /// One-hop unicast. Delivery (or drop) is decided per-frame from the
  /// channel model. Returns false if the frame was dropped at send time
  /// (down node / out of range); channel loss is decided at delivery time.
  bool send(NodeId src, NodeId dst, Message msg);

  /// One-hop broadcast to every live node in radio range of src.
  /// Returns number of frames put on the air.
  std::size_t broadcast(NodeId src, Message msg);

  /// Multi-hop unicast along the current shortest path (hop count metric).
  /// Each hop is a real frame subject to loss; on a lost hop the message
  /// dies (upper layers retry if they care). Returns false if no route.
  bool route_and_send(NodeId src, NodeId dst, Message msg);

  /// True if a multi-hop route currently exists.
  bool route_exists(NodeId src, NodeId dst);

  // --- Introspection ----------------------------------------------------

  /// Snapshot of the current connectivity graph among live nodes (edge
  /// weight = distance). O(n^2); intended for analysis, not per-packet use.
  Topology connectivity() const;

  ChannelModel& channel() { return channel_; }
  const ChannelModel& channel() const { return channel_; }
  sim::Simulator& simulator() { return sim_; }

  /// Fixed per-hop propagation + processing latency.
  void set_hop_latency(sim::Duration d) { hop_latency_ = d; }

  /// Called once per transmitted frame with (node, bytes): energy hooks.
  void set_transmit_hook(std::function<void(NodeId, std::size_t)> hook) {
    transmit_hook_ = std::move(hook);
  }
  /// Called on every drop with (reason, message).
  void set_drop_hook(std::function<void(DropReason, const Message&)> hook) {
    drop_hook_ = std::move(hook);
  }

  sim::MetricsRegistry& metrics() { return metrics_; }
  const sim::MetricsRegistry& metrics() const { return metrics_; }

  std::uint64_t bytes_sent(NodeId id) const { return nodes_.at(id).bytes_sent; }
  std::uint64_t total_bytes_sent() const;
  std::uint64_t frames_dropped() const { return frames_dropped_; }

 private:
  struct Endpoint {
    sim::Vec2 position;
    RadioProfile profile;
    Handler handler;
    bool up = true;
    std::uint64_t bytes_sent = 0;
    /// Earliest time this radio's transmitter is free (half-duplex FIFO).
    sim::SimTime tx_free_at;
  };

  /// Puts one frame on the air src->dst; handles loss + delivery event.
  /// Returns true if the frame was scheduled (not necessarily delivered).
  bool transmit(NodeId src, NodeId dst, Message msg,
                const std::vector<NodeId>* remaining_path);

  void drop(DropReason reason, const Message& msg);
  void invalidate_routes() { ++topology_epoch_; }

  sim::Simulator& sim_;
  ChannelModel channel_;
  sim::Rng rng_;
  sim::TagId deliver_tag_;  // interned once: tags every in-flight frame event
  /// Trace labels: async span per in-flight frame, drop instants, and the
  /// frames-in-flight counter track. Recorded only while the simulator's
  /// tracer is enabled.
  trace::Name trace_frame_{"net.frame", "net"};
  trace::Name trace_drop_{"net.drop", "net"};
  trace::Name trace_in_flight_{"net.frames_in_flight", "net"};
  std::uint64_t next_frame_trace_id_ = 1;
  std::uint64_t frames_in_flight_ = 0;
  std::vector<Endpoint> nodes_;
  sim::Duration hop_latency_ = sim::Duration::millis(1);
  std::function<void(NodeId, std::size_t)> transmit_hook_;
  std::function<void(DropReason, const Message&)> drop_hook_;
  sim::MetricsRegistry metrics_;
  std::uint64_t frames_dropped_ = 0;

  // Shortest-path cache keyed by source, invalidated by epoch bumps.
  std::uint64_t topology_epoch_ = 0;
  struct RouteCacheEntry {
    std::uint64_t epoch = ~0ULL;
    ShortestPaths paths;
  };
  mutable std::vector<RouteCacheEntry> route_cache_;
  const ShortestPaths& cached_paths(NodeId src);
};

}  // namespace iobt::net
