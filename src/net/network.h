#pragma once
// Packet-level simulated wireless network.
//
// A Network owns the set of radio endpoints, delivers unicast and one-hop
// broadcast frames with transmission delay + propagation latency + loss,
// and forwards multi-hop traffic along shortest paths over the *current*
// connectivity graph (maintained incrementally as positions and liveness
// change). Per-node accounting (bytes, drops, energy callbacks) feeds the
// experiment harnesses.
//
// Node state lives in structure-of-arrays slabs (one flat vector per
// field) rather than an array of endpoint structs: the hot loops — grid
// rebuilds, connectivity scans, liveness sweeps — touch one or two fields
// of every node, and slab layout keeps those sweeps on densely packed
// cache lines at 100k+ nodes instead of striding over 80-byte records.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/channel.h"
#include "net/layer.h"
#include "net/message.h"
#include "net/spatial_grid.h"
#include "net/topology.h"
#include "sim/checkpoint.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace iobt::net {

/// Delivery callback installed per node: invoked (at the receive time) for
/// every message addressed to, or broadcast within range of, the node.
using Handler = std::function<void(const Message&)>;

/// Why a send() failed to deliver.
enum class DropReason {
  kOutOfRange,
  kChannelLoss,
  kNodeDown,
  kNoRoute,
  kQueueOverflow,
  kLayerBlocked,  ///< endpoints in different layers and not both gateways
};
inline constexpr std::size_t kDropReasonCount = 6;

std::string to_string(DropReason r);

class Network : public sim::SerializableCheckpointable {
 public:
  Network(sim::Simulator& simulator, ChannelModel channel, sim::Rng rng);
  ~Network() override;

  // --- Node lifecycle ---------------------------------------------------

  /// Registers a radio endpoint; returns its dense NodeId. The layer tag
  /// defaults to kLayerGround, so a caller that never mentions layers gets
  /// a flat network: every pair is same-layer and the layer predicate
  /// never blocks a link.
  NodeId add_node(sim::Vec2 position, RadioProfile profile = {},
                  LayerId layer = kLayerGround);
  std::size_t node_count() const { return positions_.size(); }

  void set_handler(NodeId id, Handler h);
  void set_position(NodeId id, sim::Vec2 p);
  sim::Vec2 position(NodeId id) const { return positions_.at(id); }
  const RadioProfile& profile(NodeId id) const { return profiles_.at(id); }

  // --- Layers -------------------------------------------------------------
  // Links form only within a layer, except between two gateway nodes,
  // which bridge any pair of layers (explicit inter-layer edges). The
  // predicate is applied uniformly by transmit/broadcast, the incremental
  // edge store, and every connectivity rebuild, so all modes stay
  // digest-identical.

  LayerId layer(NodeId id) const { return layers_.at(id); }
  bool is_gateway(NodeId id) const { return gateway_.at(id) != 0; }
  /// Promotes/demotes a node as an inter-layer gateway. Affected links are
  /// exactly the cross-layer links to other live in-range gateways; the
  /// topology epoch is bumped only if at least one such link appeared or
  /// vanished (a flip with no cross-layer peer in range changes nothing —
  /// mode-identically, so flat-network digests are unaffected).
  void set_gateway(NodeId id, bool on);

  /// Takes a node offline: it neither sends, receives, nor forwards.
  void set_node_up(NodeId id, bool up);
  bool node_up(NodeId id) const { return up_.at(id) != 0; }

  // --- Traffic ----------------------------------------------------------

  /// One-hop unicast. Delivery (or drop) is decided per-frame from the
  /// channel model. Returns false if the frame was dropped at send time
  /// (down node / out of range); channel loss is decided at delivery time.
  bool send(NodeId src, NodeId dst, Message msg);

  /// One-hop broadcast to every live node in radio range of src.
  /// Returns number of frames put on the air.
  std::size_t broadcast(NodeId src, Message msg);

  /// Multi-hop unicast along the current shortest path (hop count metric).
  /// Each hop is a real frame subject to loss; on a lost hop the message
  /// dies (upper layers retry if they care). Returns false if no route —
  /// including unknown node ids (dropped kNoRoute, mirroring route_exists)
  /// and a down src == dst (dropped kNodeDown: a dead radio delivers
  /// nothing, not even to itself).
  bool route_and_send(NodeId src, NodeId dst, Message msg);

  /// True if a multi-hop route currently exists.
  bool route_exists(NodeId src, NodeId dst);

  // --- Introspection ----------------------------------------------------

  /// Snapshot of the current connectivity graph among live nodes (edge
  /// weight = distance). With incremental maintenance on (the default)
  /// this copies the persistent edge store — O(edges), no node scan; with
  /// it off the graph is rebuilt from grid neighborhoods (O(n * density))
  /// or the O(n^2) brute scan per the spatial-index flag. All paths
  /// produce bit-identical topologies.
  Topology connectivity() const;

  /// Borrowed view of the current connectivity graph, valid until the next
  /// Network mutation. With incremental maintenance on this is a reference
  /// to the live edge store — O(1), no copy, no scan; with it off every
  /// call rebuilds into an internal scratch graph (the full-rebuild
  /// baseline cost, kept honest for the bench).
  const Topology& topology_view() const;

  /// Enables/disables the uniform-grid spatial index (default: enabled).
  /// The grid is maintained either way; the flag selects how geometric
  /// queries (broadcast fan-out, connectivity rebuilds, nodes_near,
  /// set_position relationship checks) enumerate candidates. Observable
  /// behavior — topologies, delivery traces, metric digests — is
  /// bit-identical in both modes; only wall time differs. The brute-force
  /// mode exists as the equivalence/bench baseline.
  void set_spatial_index_enabled(bool on) { use_grid_ = on; }
  bool spatial_index_enabled() const { return use_grid_; }
  const SpatialGrid& spatial_grid() const { return grid_; }

  /// Enables/disables incremental connectivity maintenance (default:
  /// enabled). When on, add_node / set_position / set_node_up compute the
  /// changed edge set from the grid's 3x3 neighborhood diff and patch a
  /// persistent edge store, so connectivity views and route rebuilds never
  /// re-scan all N nodes. When off, every connectivity() call rebuilds
  /// from scratch — the full-rebuild baseline, kept alive for
  /// digest-equivalence testing (same bar as the grid-vs-brute contract).
  /// Observable behavior — topologies, epochs, routes, digests — is
  /// bit-identical in both modes; only wall time differs. Toggling on
  /// mid-run pays one full rebuild to seed the store.
  void set_incremental_connectivity_enabled(bool on);
  bool incremental_connectivity_enabled() const { return use_incremental_; }

  /// Monotone counter bumped whenever the connectivity graph may have
  /// changed (node added, liveness flipped, or a move that changed at
  /// least one in-range relationship). Route caches — ours and callers' —
  /// key on it. A move that changes no in-range relationship does NOT bump
  /// the epoch: cached routes stay structurally valid (their hop sequences
  /// still exist) even though link distances drift slightly.
  std::uint64_t topology_epoch() const { return topology_epoch_; }

  /// Live-node candidates within `radius` of `p`, ascending NodeId order.
  /// This is a SUPERSET gathered from grid cells intersecting the disc
  /// (the whole node table in brute-force mode): callers apply their own
  /// exact distance filter, which keeps their selection — and any RNG draw
  /// order downstream of it — identical in both modes.
  std::vector<NodeId> nodes_near(sim::Vec2 p, double radius) const;

  ChannelModel& channel() { return channel_; }
  const ChannelModel& channel() const { return channel_; }
  sim::Simulator& simulator() { return sim_; }

  /// Fixed per-hop propagation + processing latency.
  void set_hop_latency(sim::Duration d) { hop_latency_ = d; }

  /// Called once per transmitted frame with (node, bytes): energy hooks.
  void set_transmit_hook(std::function<void(NodeId, std::size_t)> hook) {
    transmit_hook_ = std::move(hook);
  }
  /// Called on every drop with (reason, message).
  void set_drop_hook(std::function<void(DropReason, const Message&)> hook) {
    drop_hook_ = std::move(hook);
  }

  sim::MetricsRegistry& metrics() { return metrics_; }
  const sim::MetricsRegistry& metrics() const { return metrics_; }

  std::uint64_t bytes_sent(NodeId id) const { return bytes_sent_.at(id); }
  std::uint64_t total_bytes_sent() const;
  std::uint64_t frames_dropped() const { return frames_dropped_; }

  /// Bytes held per substrate structure (container capacities x element
  /// sizes — a deterministic structural measure, not allocator truth).
  /// Feeds the memory-per-node column of the scaling bench: the budget
  /// that decides whether one world fits 100k+ nodes.
  struct MemoryFootprint {
    std::size_t node_slabs = 0;   ///< SoA per-node field vectors
    std::size_t grid = 0;         ///< spatial index cells + memo
    std::size_t links = 0;        ///< incremental connectivity edge store
    std::size_t route_cache = 0;  ///< per-source shortest-path cache
    std::size_t pending = 0;      ///< in-flight frame slab
    std::size_t total() const {
      return node_slabs + grid + links + route_cache + pending;
    }
  };
  MemoryFootprint memory_footprint() const;

  // --- Checkpointing ----------------------------------------------------
  // Saved: node slabs (positions, profiles, liveness, accounting — NOT the
  // receive handlers, which are closures of the live service stack),
  // channel, rng, metrics, and every in-flight frame with its delivery
  // time + original FIFO seq. Restored: all of the above, with the grid,
  // the incremental edge store, and the route cache rebuilt from scratch
  // (pure derived state) and deliveries re-armed in original-seq order.
  // Handlers already installed on the restoring stack are kept per-node;
  // services that installed handlers on nodes created mid-run (e.g. Sybil
  // firmware) must re-install them from their own participant restore.

  std::string_view checkpoint_key() const override { return "net.network"; }
  void save(sim::Snapshot& snap, const std::string& key) const override;
  void restore(const sim::Snapshot& snap, const std::string& key,
               sim::RestoreArmer& armer) override;
  /// Wire persistence (sim/wire.h). Metrics embed their own bit-exact
  /// serialize() image. Returns false when any in-flight frame carries a
  /// live std::any payload — structured payloads cannot cross a process
  /// boundary, so such snapshots stay memory-only.
  bool encode_state(const sim::Snapshot& snap, const std::string& key,
                    sim::WireWriter& w) const override;
  bool decode_state(sim::Snapshot& snap, const std::string& key,
                    sim::WireReader& r) const override;

 private:
  /// A frame on the air, parked in the pending slab until its delivery
  /// event fires. Slab slots are recycled through a free list so the hot
  /// path reuses their buffers; the delivery closure captures only
  /// {this, slot} — small enough for std::function's inline storage, so
  /// scheduling a frame performs no heap allocation.
  struct PendingFrame {
    Message msg;
    std::vector<NodeId> path_tail;
    std::uint64_t frame_trace = 0;
    NodeId dst = 0;
    bool lost = false;
    std::uint32_t next_free = 0;
    /// Delivery time + event id, kept so checkpoints can capture the
    /// frame's original seq and restores can cancel/re-arm it.
    sim::SimTime deliver_at;
    sim::EventId event = sim::kNoEvent;
  };
  static constexpr std::uint32_t kNoPending = 0xFFFFFFFFu;

  /// One in-flight frame as saved in a Snapshot.
  struct SavedFrame {
    Message msg;
    std::vector<NodeId> path_tail;
    NodeId dst = 0;
    bool lost = false;
    sim::SimTime deliver_at;
    std::uint64_t seq = 0;
  };
  struct CheckpointState {
    // Node slabs, parallel by NodeId (handlers excluded: live-stack
    // closures never enter a snapshot).
    std::vector<sim::Vec2> positions;
    std::vector<RadioProfile> profiles;
    std::vector<std::uint8_t> up;
    std::vector<LayerId> layers;
    std::vector<std::uint8_t> gateway;
    std::vector<std::uint64_t> node_bytes_sent;
    std::vector<sim::SimTime> tx_free_at;
    ChannelModel channel;
    sim::Rng rng;
    sim::MetricsRegistry metrics;
    std::uint64_t frames_dropped = 0;
    sim::Duration hop_latency;
    std::uint64_t next_frame_trace_id = 1;
    double max_range_m = 0.0;
    std::uint64_t topology_epoch = 0;
    std::vector<SavedFrame> in_flight;
  };

  /// Marks the slab slots currently on the free list; live in-flight
  /// frames are the rest.
  std::vector<bool> free_slots() const;
  /// (Re)binds the hot-path metric pointers into metrics_ — called from
  /// the constructor and after restore replaces the registry wholesale
  /// (copy-assigning a std::map gives no node-stability guarantee).
  void resolve_metric_handles();

  /// Puts one frame on the air src->dst; handles loss + delivery event.
  /// Returns true if the frame was scheduled (not necessarily delivered).
  bool transmit(NodeId src, NodeId dst, Message msg,
                const std::vector<NodeId>* remaining_path);
  /// Delivery event body: resolves loss, forwards multi-hop tails, invokes
  /// the receiver handler, and recycles the slab slot.
  void deliver_pending(std::uint32_t slot);

  void drop(DropReason reason, const Message& msg);
  void invalidate_routes() { ++topology_epoch_; }
  /// The layer predicate: true iff a link between a and b is permitted.
  /// Same layer always; cross-layer only between two gateways.
  bool link_allowed(NodeId a, NodeId b) const {
    return layers_[a] == layers_[b] || (gateway_[a] && gateway_[b]);
  }
  /// True iff moving `id` from `from` to `to` changes the in-range
  /// relationship with at least one other live node. Grid and brute-force
  /// modes compute the identical answer (the grid only narrows which
  /// candidates need the exact in_range check). Used by the full-rebuild
  /// mode only; incremental mode learns the same answer as a byproduct of
  /// patching the edge store.
  bool neighbor_set_changed(NodeId id, sim::Vec2 from, sim::Vec2 to) const;

  /// Full-scan connectivity rebuild (grid neighborhoods or brute force per
  /// use_grid_) — the baseline the incremental store must stay
  /// bit-identical to, and the seed for the store on enable/restore.
  Topology full_connectivity() const;
  /// Patches links_ for a move of live node `id` (must run BEFORE the slab
  /// position and grid are updated): the union of the two 3x3
  /// neighborhoods covers every node whose in-range relationship can flip.
  /// Weights of retained edges are refreshed to the new distance, so the
  /// store tracks link-metric drift exactly like a from-scratch rebuild.
  /// Returns whether any edge appeared or vanished — the same answer
  /// neighbor_set_changed gives, so epoch bumps are mode-identical.
  bool patch_links_for_move(NodeId id, sim::Vec2 from, sim::Vec2 to);
  /// Adds every edge of a node that just came up / joined (grid must
  /// already contain it).
  void attach_links(NodeId id);
  /// Removes every edge of a node that just went down.
  void detach_links(NodeId id);

  sim::Simulator& sim_;
  ChannelModel channel_;
  sim::Rng rng_;
  sim::TagId deliver_tag_;  // interned once: tags every in-flight frame event
  /// Trace labels: async span per in-flight frame, drop instants, and the
  /// frames-in-flight counter track. Recorded only while the simulator's
  /// tracer is enabled.
  trace::Name trace_frame_{"net.frame", "net"};
  trace::Name trace_drop_{"net.drop", "net"};
  trace::Name trace_in_flight_{"net.frames_in_flight", "net"};
  std::uint64_t next_frame_trace_id_ = 1;
  std::uint64_t frames_in_flight_ = 0;

  // Node state as structure-of-arrays slabs, parallel by NodeId. The hot
  // sweeps (grid rebuild: positions x up; connectivity: positions x
  // profiles x up; accounting: bytes) each touch only the slabs they need.
  std::vector<sim::Vec2> positions_;
  std::vector<RadioProfile> profiles_;
  std::vector<Handler> handlers_;
  std::vector<std::uint8_t> up_;  // 0/1; vector<bool> would cost a shift per access
  std::vector<LayerId> layers_;
  std::vector<std::uint8_t> gateway_;  // 0/1 inter-layer bridge flag
  std::vector<std::uint64_t> bytes_sent_;
  /// Earliest time each radio's transmitter is free (half-duplex FIFO).
  std::vector<sim::SimTime> tx_free_at_;

  sim::Duration hop_latency_ = sim::Duration::millis(1);
  std::function<void(NodeId, std::size_t)> transmit_hook_;
  std::function<void(DropReason, const Message&)> drop_hook_;
  sim::MetricsRegistry metrics_;
  std::uint64_t frames_dropped_ = 0;
  /// In-flight frame slab + free-list head (see PendingFrame).
  std::vector<PendingFrame> pending_;
  std::uint32_t free_pending_ = kNoPending;
  /// Pre-resolved handles for per-frame metrics (see constructor): the
  /// registry's std::map nodes are pointer-stable, so these stay valid for
  /// the network's lifetime.
  double* bytes_sent_counter_ = nullptr;
  double* frames_sent_counter_ = nullptr;
  double* frames_delivered_counter_ = nullptr;
  sim::Summary* delivery_latency_summary_ = nullptr;
  double* drop_counters_[kDropReasonCount] = {};

  // Spatial index over LIVE nodes (down nodes are removed and re-inserted
  // on recovery). Cell size tracks the largest radio range seen so the 3x3
  // neighborhood covers every possible link.
  SpatialGrid grid_;
  double max_range_m_ = 0.0;
  bool use_grid_ = true;
  /// Candidate scratch buffer for grid queries (avoids an allocation per
  /// broadcast); mutable because const queries reuse it.
  mutable std::vector<NodeId> scratch_;
  /// Edge scratch for full connectivity rebuilds — reused so rebuilds stop
  /// allocating once warm; mutable for the same reason as scratch_.
  mutable std::vector<Edge> edge_scratch_;

  /// Persistent connectivity edge store, patched in place by add_node /
  /// set_position / set_node_up while use_incremental_ is on. Adjacency
  /// lists are kept sorted ascending by neighbor id — the exact order a
  /// full rebuild produces — so copies, Dijkstra tie-breaks, and digests
  /// are bit-identical to the rebuild paths. Derived state: never saved,
  /// reseeded by a full rebuild on restore/enable.
  Topology links_;
  bool use_incremental_ = true;
  /// Rebuild-mode scratch for topology_view(); mutable pure cache.
  mutable Topology view_scratch_;

  // Shortest-path cache keyed by source, invalidated by epoch bumps.
  std::uint64_t topology_epoch_ = 0;
  struct RouteCacheEntry {
    std::uint64_t epoch = ~0ULL;
    ShortestPaths paths;
  };
  mutable std::vector<RouteCacheEntry> route_cache_;
  const ShortestPaths& cached_paths(NodeId src);
};

}  // namespace iobt::net
