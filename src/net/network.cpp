#include "net/network.h"

#include <algorithm>
#include <cassert>

#include "sim/wire.h"

namespace iobt::net {

std::string to_string(DropReason r) {
  switch (r) {
    case DropReason::kOutOfRange: return "out_of_range";
    case DropReason::kChannelLoss: return "channel_loss";
    case DropReason::kNodeDown: return "node_down";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kQueueOverflow: return "queue_overflow";
    case DropReason::kLayerBlocked: return "layer_blocked";
  }
  return "unknown";
}

Network::Network(sim::Simulator& simulator, ChannelModel channel, sim::Rng rng)
    : sim_(simulator), channel_(std::move(channel)), rng_(rng),
      deliver_tag_(simulator.intern("net.deliver")) {
  resolve_metric_handles();
  sim_.checkpoint().register_participant(this);
}

Network::~Network() {
  const std::vector<bool> free_slot = free_slots();
  for (std::uint32_t s = 0; s < pending_.size(); ++s) {
    if (!free_slot[s]) sim_.cancel(pending_[s].event);
  }
  sim_.checkpoint().unregister(this);
}

void Network::resolve_metric_handles() {
  // Hot-path metric handles: a transmitted frame costs two pointer bumps
  // instead of two string-keyed map walks; digests are unaffected.
  bytes_sent_counter_ = metrics_.counter_handle("net.bytes_sent");
  frames_sent_counter_ = metrics_.counter_handle("net.frames_sent");
  frames_delivered_counter_ = metrics_.counter_handle("net.frames_delivered");
  delivery_latency_summary_ = metrics_.summary_handle("net.delivery_latency_s");
  for (const DropReason r :
       {DropReason::kOutOfRange, DropReason::kChannelLoss, DropReason::kNodeDown,
        DropReason::kNoRoute, DropReason::kQueueOverflow,
        DropReason::kLayerBlocked}) {
    drop_counters_[static_cast<std::size_t>(r)] =
        metrics_.counter_handle("net.drop." + to_string(r));
  }
}

NodeId Network::add_node(sim::Vec2 position, RadioProfile profile, LayerId layer) {
  const auto id = static_cast<NodeId>(positions_.size());
  positions_.push_back(position);
  profiles_.push_back(profile);
  handlers_.emplace_back();
  up_.push_back(1);
  layers_.push_back(layer);
  gateway_.push_back(0);
  bytes_sent_.push_back(0);
  tx_free_at_.push_back(sim::SimTime::zero());
  route_cache_.emplace_back();
  if (profile.range_m > max_range_m_) {
    // A longer radio breaks the cells-cover-range invariant: rebuild the
    // grid around the new maximum before indexing the newcomer. The edge
    // store is untouched: every existing link depends on the min of two
    // unchanged ranges.
    max_range_m_ = profile.range_m;
    grid_.reset(max_range_m_);
    for (NodeId n = 0; n < id; ++n) {
      if (up_[n]) grid_.insert(n, positions_[n]);
    }
  }
  grid_.insert(id, position);
  if (use_incremental_) {
    links_.add_node();
    attach_links(id);
  }
  invalidate_routes();
  return id;
}

void Network::set_handler(NodeId id, Handler h) { handlers_.at(id) = std::move(h); }

void Network::set_position(NodeId id, sim::Vec2 p) {
  const sim::Vec2 from = positions_.at(id);
  if (from == p) return;
  if (!up_[id]) {
    // A down node is invisible to the topology (and absent from the grid):
    // reposition silently.
    positions_[id] = p;
    return;
  }
  // Incremental mode patches the edge store and learns whether any link
  // appeared/vanished as a byproduct; rebuild mode only answers the
  // question. Both must run BEFORE the slab position and grid move so the
  // 3x3 neighborhood of `from` still contains the node's old candidates.
  const bool changed = use_incremental_ ? patch_links_for_move(id, from, p)
                                        : neighbor_set_changed(id, from, p);
  positions_[id] = p;
  grid_.move(id, from, p);
  // Region-scoped invalidation: a move that gains or loses no link leaves
  // every cached route structurally intact, so the epoch — and with it
  // every Dijkstra rebuild downstream — is only paid when an in-range
  // relationship actually changed.
  if (changed) invalidate_routes();
}

void Network::set_node_up(NodeId id, bool up) {
  if ((up_.at(id) != 0) == up) return;
  up_[id] = up ? 1 : 0;
  if (up) {
    grid_.insert(id, positions_[id]);
    if (use_incremental_) attach_links(id);
  } else {
    grid_.remove(id, positions_[id]);
    if (use_incremental_) detach_links(id);
  }
  invalidate_routes();
}

void Network::set_gateway(NodeId id, bool on) {
  if ((gateway_.at(id) != 0) == on) return;
  bool changed = false;
  if (up_[id]) {
    // Affected links are exactly the cross-layer links to other live
    // in-range gateways: same-layer links ignore the flag, and a non-
    // gateway peer blocks the bridge regardless. Candidates come from the
    // grid unconditionally (it indexes every live node whatever use_grid_
    // says), exactly like patch_links_for_move, so the changed/unchanged
    // answer — and with it the epoch — is identical in every mode.
    const sim::Vec2 p = positions_[id];
    const RadioProfile& pr = profiles_[id];
    scratch_.clear();
    grid_.neighborhood(p, scratch_);
    for (const NodeId other : scratch_) {
      if (other == id || layers_[other] == layers_[id] || !gateway_[other]) continue;
      if (!channel_.in_range(p, pr, positions_[other], profiles_[other])) continue;
      changed = true;
      if (use_incremental_) {
        if (on) {
          links_.add_edge_sorted(id, other, sim::distance(p, positions_[other]));
        } else {
          links_.remove_edge(id, other);
        }
      }
    }
  }
  gateway_[id] = on ? 1 : 0;
  if (changed) invalidate_routes();
}

bool Network::neighbor_set_changed(NodeId id, sim::Vec2 from, sim::Vec2 to) const {
  const RadioProfile& pr = profiles_[id];
  const auto differs = [&](NodeId other) {
    return channel_.in_range(from, pr, positions_[other], profiles_[other]) !=
           channel_.in_range(to, pr, positions_[other], profiles_[other]);
  };
  if (!use_grid_) {
    for (NodeId other = 0; other < node_count(); ++other) {
      if (other == id || !up_[other] || !link_allowed(id, other)) continue;
      if (differs(other)) return true;
    }
    return false;
  }
  // Any node whose membership differs is in range of `from` or of `to`, so
  // the union of the two 3x3 neighborhoods covers all candidates.
  scratch_.clear();
  grid_.neighborhood(from, scratch_);
  grid_.neighborhood(to, scratch_);
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()), scratch_.end());
  for (const NodeId other : scratch_) {
    if (other == id || !link_allowed(id, other)) continue;
    if (differs(other)) return true;
  }
  return false;
}

bool Network::patch_links_for_move(NodeId id, sim::Vec2 from, sim::Vec2 to) {
  // Candidates come from the grid unconditionally: the grid indexes every
  // live node regardless of use_grid_, and any node whose in-range
  // relationship with `id` can flip lies in the 3x3 neighborhood of `from`
  // or of `to` (covering invariant).
  scratch_.clear();
  grid_.neighborhood(from, scratch_);
  grid_.neighborhood(to, scratch_);
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()), scratch_.end());
  const RadioProfile& pr = profiles_[id];
  bool changed = false;
  for (const NodeId other : scratch_) {
    if (other == id || !link_allowed(id, other)) continue;
    const bool was = channel_.in_range(from, pr, positions_[other], profiles_[other]);
    const bool now = channel_.in_range(to, pr, positions_[other], profiles_[other]);
    if (was == now) {
      // Retained link: refresh its metric so the store tracks distance
      // drift exactly like a from-scratch rebuild would.
      if (now) links_.update_edge_weight(id, other, sim::distance(to, positions_[other]));
      continue;
    }
    changed = true;
    if (now) {
      links_.add_edge_sorted(id, other, sim::distance(to, positions_[other]));
    } else {
      links_.remove_edge(id, other);
    }
  }
  return changed;
}

void Network::attach_links(NodeId id) {
  const sim::Vec2 p = positions_[id];
  const RadioProfile& pr = profiles_[id];
  scratch_.clear();
  grid_.neighborhood(p, scratch_);
  for (const NodeId other : scratch_) {
    if (other == id || !link_allowed(id, other)) continue;
    if (channel_.in_range(p, pr, positions_[other], profiles_[other])) {
      links_.add_edge_sorted(id, other, sim::distance(p, positions_[other]));
    }
  }
}

void Network::detach_links(NodeId id) {
  // Copy the ids out first: remove_edge mutates the list being walked.
  scratch_.clear();
  for (const Topology::Neighbor& n : links_.neighbors(id)) scratch_.push_back(n.id);
  for (const NodeId other : scratch_) links_.remove_edge(id, other);
}

std::vector<NodeId> Network::nodes_near(sim::Vec2 p, double radius) const {
  std::vector<NodeId> out;
  if (use_grid_) {
    grid_.near(p, radius, out);
    std::sort(out.begin(), out.end());
  } else {
    for (NodeId id = 0; id < node_count(); ++id) {
      if (up_[id]) out.push_back(id);
    }
  }
  return out;
}

void Network::drop(DropReason reason, const Message& msg) {
  ++frames_dropped_;
  *drop_counters_[static_cast<std::size_t>(reason)] += 1.0;
  trace::Tracer& tr = sim_.tracer();
  if (tr.enabled()) tr.instant(trace_drop_.id(tr));
  if (drop_hook_) drop_hook_(reason, msg);
}

bool Network::transmit(NodeId src, NodeId dst, Message msg,
                       const std::vector<NodeId>* remaining_path) {
  if (!up_.at(src) || !up_.at(dst)) {
    drop(DropReason::kNodeDown, msg);
    return false;
  }
  if (!link_allowed(src, dst)) {
    drop(DropReason::kLayerBlocked, msg);
    return false;
  }
  const sim::Vec2 sp = positions_[src];
  const RadioProfile& spr = profiles_[src];
  if (!channel_.in_range(sp, spr, positions_[dst], profiles_[dst])) {
    drop(DropReason::kOutOfRange, msg);
    return false;
  }

  // Half-duplex transmitter: frames serialize on the sender's radio.
  const sim::Duration tx = ChannelModel::transmission_delay(spr, msg.size_bytes);
  const sim::SimTime start = std::max(sim_.now(), tx_free_at_[src]);
  tx_free_at_[src] = start + tx;
  const sim::SimTime arrive = tx_free_at_[src] + hop_latency_;

  bytes_sent_[src] += msg.size_bytes;
  *bytes_sent_counter_ += static_cast<double>(msg.size_bytes);
  *frames_sent_counter_ += 1.0;
  if (transmit_hook_) transmit_hook_(src, msg.size_bytes);

  // Loss is decided now (deterministically from the RNG stream) but takes
  // effect at arrival time.
  const double loss = channel_.loss_probability(sp, spr, positions_[dst],
                                                profiles_[dst], sim_.now());
  const bool lost = rng_.bernoulli(loss);

  // Async trace span per frame on the air: begin at transmit, end at
  // delivery or loss. frames_in_flight_ is maintained unconditionally (two
  // integer ops) so the counter track is correct however late tracing was
  // enabled; records themselves cost nothing while tracing is off.
  ++frames_in_flight_;
  std::uint64_t frame_trace = 0;
  {
    trace::Tracer& tr = sim_.tracer();
    if (tr.enabled()) {
      frame_trace = next_frame_trace_id_++;
      tr.async_begin(trace_frame_.id(tr), frame_trace);
      tr.counter(trace_in_flight_.id(tr), static_cast<double>(frames_in_flight_));
    }
  }

  // Park the frame in the slab and schedule a {this, slot} closure.
  std::uint32_t slot;
  if (free_pending_ != kNoPending) {
    slot = free_pending_;
    free_pending_ = pending_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(pending_.size());
    pending_.emplace_back();
  }
  PendingFrame& f = pending_[slot];
  f.msg = std::move(msg);
  f.path_tail.clear();
  if (remaining_path) {
    f.path_tail.assign(remaining_path->begin(), remaining_path->end());
  }
  f.frame_trace = frame_trace;
  f.dst = dst;
  f.lost = lost;
  f.deliver_at = arrive;
  f.event = sim_.schedule_at(arrive, [this, slot] { deliver_pending(slot); }, deliver_tag_);
  return true;
}

void Network::deliver_pending(std::uint32_t slot) {
  --frames_in_flight_;
  trace::Tracer& tr = sim_.tracer();
  if (pending_[slot].frame_trace != 0 && tr.enabled()) {
    tr.async_end(trace_frame_.id(tr), pending_[slot].frame_trace);
    tr.counter(trace_in_flight_.id(tr), static_cast<double>(frames_in_flight_));
  }
  // Move the frame out and recycle the slot BEFORE acting on it: drop
  // hooks, receiver handlers, and multi-hop forwarding can all re-enter
  // transmit(), which may grow pending_ and invalidate references into it.
  Message msg = std::move(pending_[slot].msg);
  std::vector<NodeId> path_tail = std::move(pending_[slot].path_tail);
  const NodeId dst = pending_[slot].dst;
  const bool lost = pending_[slot].lost;
  pending_[slot].event = sim::kNoEvent;
  pending_[slot].next_free = free_pending_;
  free_pending_ = slot;

  if (lost) {
    drop(DropReason::kChannelLoss, msg);
    return;
  }
  if (!up_.at(dst)) {
    drop(DropReason::kNodeDown, msg);
    return;
  }
  ++msg.hops;
  if (!path_tail.empty()) {
    // Intermediate hop: forward along the precomputed path.
    const NodeId next = path_tail.front();
    std::vector<NodeId> rest(path_tail.begin() + 1, path_tail.end());
    transmit(dst, next, std::move(msg), rest.empty() ? nullptr : &rest);
    return;
  }
  *frames_delivered_counter_ += 1.0;
  delivery_latency_summary_->add((sim_.now() - msg.sent_at).to_seconds());
  if (handlers_[dst]) handlers_[dst](msg);
}

bool Network::send(NodeId src, NodeId dst, Message msg) {
  msg.src = src;
  msg.dst = dst;
  msg.sent_at = sim_.now();
  return transmit(src, dst, std::move(msg), nullptr);
}

std::size_t Network::broadcast(NodeId src, Message msg) {
  msg.src = src;
  msg.dst = kBroadcast;
  msg.sent_at = sim_.now();
  if (!up_.at(src)) {
    drop(DropReason::kNodeDown, msg);
    return 0;
  }
  const sim::Vec2 sp = positions_[src];
  const RadioProfile& spr = profiles_[src];
  std::size_t put_on_air = 0;
  const auto offer = [&](NodeId other) {
    if (other == src || !up_[other] || !link_allowed(src, other)) return;
    if (!channel_.in_range(sp, spr, positions_[other], profiles_[other])) {
      return;
    }
    Message copy = msg;
    if (transmit(src, other, std::move(copy), nullptr)) ++put_on_air;
  };
  if (use_grid_) {
    // Cell size >= max range, so the 3x3 neighborhood covers every
    // receiver. Candidates are offered in ascending NodeId order — the
    // brute-force scan order — so the per-receiver loss draws consume the
    // RNG stream identically and delivery traces stay bit-identical.
    // Copied into scratch_ because drop/transmit hooks run synchronously
    // inside offer() and must not be able to invalidate the memo mid-walk.
    const std::vector<NodeId>& hood = grid_.neighborhood_sorted(sp);
    scratch_.assign(hood.begin(), hood.end());
    for (const NodeId other : scratch_) offer(other);
  } else {
    for (NodeId other = 0; other < node_count(); ++other) offer(other);
  }
  return put_on_air;
}

const ShortestPaths& Network::cached_paths(NodeId src) {
  RouteCacheEntry& entry = route_cache_.at(src);
  if (entry.epoch != topology_epoch_) {
    // Incremental mode runs Dijkstra straight over the live edge store; the
    // rebuild baseline pays a full connectivity reconstruction per (source,
    // epoch) — the cost the store exists to delete.
    entry.paths = use_incremental_ ? links_.shortest_paths(src)
                                   : connectivity().shortest_paths(src);
    entry.epoch = topology_epoch_;
  }
  return entry.paths;
}

bool Network::route_exists(NodeId src, NodeId dst) {
  if (src >= node_count() || dst >= node_count()) return false;
  if (!up_[src] || !up_[dst]) return false;
  return cached_paths(src).reachable(dst);
}

bool Network::route_and_send(NodeId src, NodeId dst, Message msg) {
  msg.src = src;
  msg.dst = dst;
  msg.sent_at = sim_.now();
  // Unknown endpoints: no route by definition — mirror route_exists
  // instead of letting the slab .at() throw out of the send path.
  if (src >= node_count() || dst >= node_count()) {
    drop(DropReason::kNoRoute, msg);
    return false;
  }
  if (src == dst) {
    // Local delivery, zero hops — but a dead radio delivers nothing, not
    // even to itself (route_exists performs the same liveness check).
    if (!up_[src]) {
      drop(DropReason::kNodeDown, msg);
      return false;
    }
    if (handlers_[src]) handlers_[src](msg);
    return true;
  }
  const auto path = cached_paths(src).path_to(dst);
  if (path.size() < 2) {
    drop(DropReason::kNoRoute, msg);
    return false;
  }
  // path = [src, n1, n2, ..., dst]; first hop src->n1, tail n2..dst.
  std::vector<NodeId> tail(path.begin() + 2, path.end());
  return transmit(src, path[1], std::move(msg), tail.empty() ? nullptr : &tail);
}

Topology Network::connectivity() const {
  if (use_incremental_) return links_;
  return full_connectivity();
}

const Topology& Network::topology_view() const {
  if (use_incremental_) return links_;
  view_scratch_ = full_connectivity();
  return view_scratch_;
}

void Network::set_incremental_connectivity_enabled(bool on) {
  if (use_incremental_ == on) return;
  use_incremental_ = on;
  // Enabling mid-run seeds the store with one full rebuild; disabling
  // releases it (the rebuild paths never read it).
  links_ = on ? full_connectivity() : Topology();
}

Topology Network::full_connectivity() const {
  // Edges are collected into a flat scratch list (reused across snapshots,
  // so rebuilds allocate nothing once warm) and the Topology is built in
  // one bulk pass with exact-size adjacency reserves. The list order is
  // the brute-force edge order (a ascending, then b > a ascending), so
  // the adjacency lists — and every tie-break downstream in Dijkstra —
  // are bit-identical between the grid, O(n^2), and incremental paths
  // (the store keeps its lists id-sorted for the same reason).
  edge_scratch_.clear();
  if (use_grid_) {
    // Grid neighborhoods via the per-cell sorted memo: all nodes sharing a
    // cell share one gathered + sorted candidate list, and the memo
    // carries over to later snapshots while membership is unchanged.
    for (NodeId a = 0; a < node_count(); ++a) {
      if (!up_[a]) continue;
      for (const NodeId b : grid_.neighborhood_sorted(positions_[a])) {
        if (b <= a) continue;
        if (!link_allowed(a, b)) continue;
        if (channel_.in_range(positions_[a], profiles_[a], positions_[b],
                              profiles_[b])) {
          edge_scratch_.push_back(
              {a, b, sim::distance(positions_[a], positions_[b])});
        }
      }
    }
  } else {
    for (NodeId a = 0; a < node_count(); ++a) {
      if (!up_[a]) continue;
      for (NodeId b = a + 1; b < node_count(); ++b) {
        if (!up_[b] || !link_allowed(a, b)) continue;
        if (channel_.in_range(positions_[a], profiles_[a], positions_[b],
                              profiles_[b])) {
          edge_scratch_.push_back(
              {a, b, sim::distance(positions_[a], positions_[b])});
        }
      }
    }
  }
  return Topology(node_count(), edge_scratch_);
}

std::vector<bool> Network::free_slots() const {
  std::vector<bool> free_slot(pending_.size(), false);
  for (std::uint32_t s = free_pending_; s != kNoPending; s = pending_[s].next_free) {
    free_slot[s] = true;
  }
  return free_slot;
}

Network::MemoryFootprint Network::memory_footprint() const {
  MemoryFootprint m;
  m.node_slabs = positions_.capacity() * sizeof(sim::Vec2) +
                 profiles_.capacity() * sizeof(RadioProfile) +
                 handlers_.capacity() * sizeof(Handler) +
                 up_.capacity() * sizeof(std::uint8_t) +
                 layers_.capacity() * sizeof(LayerId) +
                 gateway_.capacity() * sizeof(std::uint8_t) +
                 bytes_sent_.capacity() * sizeof(std::uint64_t) +
                 tx_free_at_.capacity() * sizeof(sim::SimTime);
  m.grid = grid_.memory_bytes();
  m.links = links_.memory_bytes();
  m.route_cache = route_cache_.capacity() * sizeof(RouteCacheEntry);
  for (const RouteCacheEntry& e : route_cache_) {
    m.route_cache += e.paths.dist.capacity() * sizeof(double) +
                     e.paths.parent.capacity() * sizeof(std::optional<NodeId>);
  }
  m.pending = pending_.capacity() * sizeof(PendingFrame);
  for (const PendingFrame& f : pending_) {
    m.pending += f.path_tail.capacity() * sizeof(NodeId);
  }
  return m;
}

void Network::save(sim::Snapshot& snap, const std::string& key) const {
  CheckpointState st;
  // Handlers are live-stack closures and stay out of the snapshot; the
  // grid, edge store, and route cache are derived state rebuilt on
  // restore.
  st.positions = positions_;
  st.profiles = profiles_;
  st.up = up_;
  st.layers = layers_;
  st.gateway = gateway_;
  st.node_bytes_sent = bytes_sent_;
  st.tx_free_at = tx_free_at_;
  st.channel = channel_;
  st.rng = rng_;
  st.metrics = metrics_;
  st.frames_dropped = frames_dropped_;
  st.hop_latency = hop_latency_;
  st.next_frame_trace_id = next_frame_trace_id_;
  st.max_range_m = max_range_m_;
  st.topology_epoch = topology_epoch_;
  const std::vector<bool> free_slot = free_slots();
  for (std::uint32_t s = 0; s < pending_.size(); ++s) {
    if (free_slot[s]) continue;
    const PendingFrame& f = pending_[s];
    st.in_flight.push_back(SavedFrame{f.msg, f.path_tail, f.dst, f.lost,
                                      f.deliver_at, sim_.pending_seq(f.event)});
  }
  snap.put(key, std::move(st));
}

void Network::restore(const sim::Snapshot& snap, const std::string& key,
                      sim::RestoreArmer& armer) {
  const auto& st = snap.get<CheckpointState>(key);

  // Cancel every live delivery and drop the slab; it is rebuilt below.
  const std::vector<bool> free_slot = free_slots();
  for (std::uint32_t s = 0; s < pending_.size(); ++s) {
    if (!free_slot[s]) sim_.cancel(pending_[s].event);
  }
  pending_.clear();
  free_pending_ = kNoPending;

  // Node slabs: adopt the saved state but keep whatever handlers the
  // restoring stack already installed per node (construction-time firmware
  // on a fresh branch stack, everything on an in-place rewind). Nodes past
  // the saved count (post-snapshot Sybils on a rewind) disappear; nodes
  // past the restoring stack's count (pre-snapshot Sybils restored into a
  // fresh stack) arrive with null handlers until their owning service's
  // participant re-installs them.
  handlers_.resize(st.positions.size());
  positions_ = st.positions;
  profiles_ = st.profiles;
  up_ = st.up;
  // Layer tags and gateway flags must land before the edge-store reseed
  // below: full_connectivity consults link_allowed.
  layers_ = st.layers;
  gateway_ = st.gateway;
  bytes_sent_ = st.node_bytes_sent;
  tx_free_at_ = st.tx_free_at;

  channel_ = st.channel;
  rng_ = st.rng;
  metrics_ = st.metrics;
  resolve_metric_handles();
  frames_dropped_ = st.frames_dropped;
  hop_latency_ = st.hop_latency;
  next_frame_trace_id_ = st.next_frame_trace_id;
  frames_in_flight_ = st.in_flight.size();
  max_range_m_ = st.max_range_m;
  topology_epoch_ = st.topology_epoch;
  route_cache_.assign(node_count(), RouteCacheEntry{});

  // Rebuild the spatial index from scratch over the restored live nodes
  // (cell size invariant: >= max radio range; 250 m matches the default-
  // constructed grid before any radio registers).
  grid_.reset(max_range_m_ > 0.0 ? max_range_m_ : 250.0);
  for (NodeId n = 0; n < node_count(); ++n) {
    if (up_[n]) grid_.insert(n, positions_[n]);
  }
  // The edge store is derived state: reseed it from the restored slabs.
  links_ = use_incremental_ ? full_connectivity() : Topology();

  // Re-park every in-flight frame and queue its delivery re-arm under the
  // frame's original FIFO seq. reserve() first: &p.event must stay valid
  // until the registry schedules the re-arms.
  pending_.reserve(st.in_flight.size());
  for (const SavedFrame& f : st.in_flight) {
    const auto slot = static_cast<std::uint32_t>(pending_.size());
    pending_.emplace_back();
    PendingFrame& p = pending_[slot];
    p.msg = f.msg;
    p.path_tail = f.path_tail;
    p.frame_trace = 0;  // async trace spans do not survive restore
    p.dst = f.dst;
    p.lost = f.lost;
    p.deliver_at = f.deliver_at;
    armer.rearm(f.deliver_at, f.seq, [this, slot] { deliver_pending(slot); },
                deliver_tag_, &p.event);
  }
}

bool Network::encode_state(const sim::Snapshot& snap, const std::string& key,
                           sim::WireWriter& w) const {
  const auto& st = snap.get<CheckpointState>(key);
  // Structured payloads (std::any) cannot cross a process boundary; gossip
  // traffic and every other wire-shaped message travel payload-free, so in
  // practice only exotic snapshots are rejected here.
  for (const SavedFrame& f : st.in_flight) {
    if (f.msg.payload.has_value()) return false;
  }
  w.u64(st.positions.size());
  for (sim::Vec2 p : st.positions) w.vec2(p);
  for (const RadioProfile& p : st.profiles) {
    w.f64(p.range_m).f64(p.data_rate_bps).f64(p.base_loss);
  }
  for (std::uint8_t v : st.up) w.u64(v);
  for (LayerId l : st.layers) w.u64(l);
  for (std::uint8_t v : st.gateway) w.u64(v);
  for (std::uint64_t b : st.node_bytes_sent) w.u64(b);
  for (sim::SimTime t : st.tx_free_at) w.time(t);

  w.f64(st.channel.edge_exponent()).f64(st.channel.max_edge_loss());
  w.u64(st.channel.jammers().size());
  for (const Jammer& j : st.channel.jammers()) {
    w.vec2(j.center).f64(j.radius_m).time(j.start).time(j.end).f64(j.induced_loss);
  }
  w.u64(st.channel.buildings().size());
  for (const Building& b : st.channel.buildings()) w.rect(b.footprint);

  w.rng(st.rng);
  w.bytes(st.metrics.serialize());
  w.u64(st.frames_dropped)
      .dur(st.hop_latency)
      .u64(st.next_frame_trace_id)
      .f64(st.max_range_m)
      .u64(st.topology_epoch);
  w.u64(st.in_flight.size());
  for (const SavedFrame& f : st.in_flight) {
    w.u64(f.msg.src).u64(f.msg.dst).bytes(f.msg.kind).u64(f.msg.size_bytes)
        .i64(f.msg.hops).time(f.msg.sent_at);
    w.u64(f.path_tail.size());
    for (NodeId n : f.path_tail) w.u64(n);
    w.u64(f.dst).boolean(f.lost).time(f.deliver_at).u64(f.seq);
  }
  return true;
}

bool Network::decode_state(sim::Snapshot& snap, const std::string& key,
                           sim::WireReader& r) const {
  CheckpointState st;
  const std::uint64_t nodes = r.u64();
  if (!r.ok() || nodes > r.remaining()) return false;
  const auto n = static_cast<std::size_t>(nodes);
  st.positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) st.positions.push_back(r.vec2());
  st.profiles.resize(n);
  for (RadioProfile& p : st.profiles) {
    p.range_m = r.f64();
    p.data_rate_bps = r.f64();
    p.base_loss = r.f64();
  }
  st.up.resize(n);
  for (std::uint8_t& v : st.up) v = static_cast<std::uint8_t>(r.u64());
  st.layers.resize(n);
  for (LayerId& l : st.layers) l = static_cast<LayerId>(r.u64());
  st.gateway.resize(n);
  for (std::uint8_t& v : st.gateway) v = static_cast<std::uint8_t>(r.u64());
  st.node_bytes_sent.resize(n);
  for (std::uint64_t& b : st.node_bytes_sent) b = r.u64();
  st.tx_free_at.resize(n);
  for (sim::SimTime& t : st.tx_free_at) t = r.time();

  const double edge_exponent = r.f64();
  const double max_edge_loss = r.f64();
  st.channel = ChannelModel(edge_exponent, max_edge_loss);
  const std::uint64_t jammers = r.u64();
  if (!r.ok() || jammers > r.remaining()) return false;
  for (std::uint64_t i = 0; i < jammers; ++i) {
    Jammer j;
    j.center = r.vec2();
    j.radius_m = r.f64();
    j.start = r.time();
    j.end = r.time();
    j.induced_loss = r.f64();
    st.channel.add_jammer(j);
  }
  const std::uint64_t buildings = r.u64();
  if (!r.ok() || buildings > r.remaining()) return false;
  for (std::uint64_t i = 0; i < buildings; ++i) st.channel.add_building(r.rect());

  st.rng = r.rng();
  auto metrics = sim::MetricsRegistry::deserialize(r.bytes());
  if (!metrics) return false;
  st.metrics = std::move(*metrics);
  st.frames_dropped = r.u64();
  st.hop_latency = r.dur();
  st.next_frame_trace_id = r.u64();
  st.max_range_m = r.f64();
  st.topology_epoch = r.u64();
  const std::uint64_t frames = r.u64();
  if (!r.ok() || frames > r.remaining()) return false;
  st.in_flight.resize(static_cast<std::size_t>(frames));
  for (SavedFrame& f : st.in_flight) {
    f.msg.src = static_cast<NodeId>(r.u64());
    f.msg.dst = static_cast<NodeId>(r.u64());
    f.msg.kind = r.bytes();
    f.msg.size_bytes = static_cast<std::size_t>(r.u64());
    f.msg.hops = static_cast<int>(r.i64());
    f.msg.sent_at = r.time();
    const std::uint64_t tail = r.u64();
    if (!r.ok() || tail > r.remaining()) return false;
    f.path_tail.resize(static_cast<std::size_t>(tail));
    for (NodeId& hop : f.path_tail) hop = static_cast<NodeId>(r.u64());
    f.dst = static_cast<NodeId>(r.u64());
    f.lost = r.boolean();
    f.deliver_at = r.time();
    f.seq = r.u64();
  }
  if (!r.ok()) return false;
  snap.put(key, std::move(st));
  return true;
}

std::uint64_t Network::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : bytes_sent_) total += b;
  return total;
}

}  // namespace iobt::net
