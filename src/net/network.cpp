#include "net/network.h"

#include <cassert>

namespace iobt::net {

std::string to_string(DropReason r) {
  switch (r) {
    case DropReason::kOutOfRange: return "out_of_range";
    case DropReason::kChannelLoss: return "channel_loss";
    case DropReason::kNodeDown: return "node_down";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kQueueOverflow: return "queue_overflow";
  }
  return "unknown";
}

Network::Network(sim::Simulator& simulator, ChannelModel channel, sim::Rng rng)
    : sim_(simulator), channel_(std::move(channel)), rng_(rng),
      deliver_tag_(simulator.intern("net.deliver")) {}

NodeId Network::add_node(sim::Vec2 position, RadioProfile profile) {
  nodes_.push_back(Endpoint{position, profile, nullptr, true, 0, sim::SimTime::zero()});
  route_cache_.emplace_back();
  invalidate_routes();
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::set_handler(NodeId id, Handler h) { nodes_.at(id).handler = std::move(h); }

void Network::set_position(NodeId id, sim::Vec2 p) {
  nodes_.at(id).position = p;
  invalidate_routes();
}

void Network::set_node_up(NodeId id, bool up) {
  nodes_.at(id).up = up;
  invalidate_routes();
}

void Network::drop(DropReason reason, const Message& msg) {
  ++frames_dropped_;
  metrics_.count("net.drop." + to_string(reason));
  trace::Tracer& tr = sim_.tracer();
  if (tr.enabled()) tr.instant(trace_drop_.id(tr));
  if (drop_hook_) drop_hook_(reason, msg);
}

bool Network::transmit(NodeId src, NodeId dst, Message msg,
                       const std::vector<NodeId>* remaining_path) {
  Endpoint& s = nodes_.at(src);
  Endpoint& d = nodes_.at(dst);
  if (!s.up || !d.up) {
    drop(DropReason::kNodeDown, msg);
    return false;
  }
  if (!channel_.in_range(s.position, s.profile, d.position, d.profile)) {
    drop(DropReason::kOutOfRange, msg);
    return false;
  }

  // Half-duplex transmitter: frames serialize on the sender's radio.
  const sim::Duration tx = ChannelModel::transmission_delay(s.profile, msg.size_bytes);
  const sim::SimTime start = std::max(sim_.now(), s.tx_free_at);
  s.tx_free_at = start + tx;
  const sim::SimTime arrive = s.tx_free_at + hop_latency_;

  s.bytes_sent += msg.size_bytes;
  metrics_.count("net.bytes_sent", static_cast<double>(msg.size_bytes));
  metrics_.count("net.frames_sent");
  if (transmit_hook_) transmit_hook_(src, msg.size_bytes);

  // Loss is decided now (deterministically from the RNG stream) but takes
  // effect at arrival time.
  const double loss = channel_.loss_probability(s.position, s.profile, d.position,
                                                d.profile, sim_.now());
  const bool lost = rng_.bernoulli(loss);

  std::vector<NodeId> path_tail;
  if (remaining_path) path_tail = *remaining_path;

  // Async trace span per frame on the air: begin at transmit, end at
  // delivery or loss. frames_in_flight_ is maintained unconditionally (two
  // integer ops) so the counter track is correct however late tracing was
  // enabled; records themselves cost nothing while tracing is off.
  ++frames_in_flight_;
  std::uint64_t frame_trace = 0;
  {
    trace::Tracer& tr = sim_.tracer();
    if (tr.enabled()) {
      frame_trace = next_frame_trace_id_++;
      tr.async_begin(trace_frame_.id(tr), frame_trace);
      tr.counter(trace_in_flight_.id(tr), static_cast<double>(frames_in_flight_));
    }
  }

  sim_.schedule_at(
      arrive,
      [this, dst, msg = std::move(msg), lost, frame_trace,
       path_tail = std::move(path_tail)]() mutable {
        --frames_in_flight_;
        trace::Tracer& tr = sim_.tracer();
        if (frame_trace != 0 && tr.enabled()) {
          tr.async_end(trace_frame_.id(tr), frame_trace);
          tr.counter(trace_in_flight_.id(tr),
                     static_cast<double>(frames_in_flight_));
        }
        if (lost) {
          drop(DropReason::kChannelLoss, msg);
          return;
        }
        Endpoint& recv = nodes_.at(dst);
        if (!recv.up) {
          drop(DropReason::kNodeDown, msg);
          return;
        }
        ++msg.hops;
        if (!path_tail.empty()) {
          // Intermediate hop: forward along the precomputed path.
          const NodeId next = path_tail.front();
          std::vector<NodeId> rest(path_tail.begin() + 1, path_tail.end());
          transmit(dst, next, std::move(msg), rest.empty() ? nullptr : &rest);
          return;
        }
        metrics_.count("net.frames_delivered");
        metrics_.observe("net.delivery_latency_s", (sim_.now() - msg.sent_at).to_seconds());
        if (recv.handler) recv.handler(msg);
      },
      deliver_tag_);
  return true;
}

bool Network::send(NodeId src, NodeId dst, Message msg) {
  msg.src = src;
  msg.dst = dst;
  msg.sent_at = sim_.now();
  return transmit(src, dst, std::move(msg), nullptr);
}

std::size_t Network::broadcast(NodeId src, Message msg) {
  msg.src = src;
  msg.dst = kBroadcast;
  msg.sent_at = sim_.now();
  const Endpoint& s = nodes_.at(src);
  if (!s.up) {
    drop(DropReason::kNodeDown, msg);
    return 0;
  }
  std::size_t put_on_air = 0;
  for (NodeId other = 0; other < nodes_.size(); ++other) {
    if (other == src || !nodes_[other].up) continue;
    if (!channel_.in_range(s.position, s.profile, nodes_[other].position,
                           nodes_[other].profile)) {
      continue;
    }
    Message copy = msg;
    if (transmit(src, other, std::move(copy), nullptr)) ++put_on_air;
  }
  return put_on_air;
}

const ShortestPaths& Network::cached_paths(NodeId src) {
  RouteCacheEntry& entry = route_cache_.at(src);
  if (entry.epoch != topology_epoch_) {
    entry.paths = connectivity().shortest_paths(src);
    entry.epoch = topology_epoch_;
  }
  return entry.paths;
}

bool Network::route_exists(NodeId src, NodeId dst) {
  if (src >= nodes_.size() || dst >= nodes_.size()) return false;
  if (!nodes_[src].up || !nodes_[dst].up) return false;
  return cached_paths(src).reachable(dst);
}

bool Network::route_and_send(NodeId src, NodeId dst, Message msg) {
  msg.src = src;
  msg.dst = dst;
  msg.sent_at = sim_.now();
  if (src == dst) {
    // Local delivery, zero hops.
    if (nodes_.at(src).handler) nodes_.at(src).handler(msg);
    return true;
  }
  const auto path = cached_paths(src).path_to(dst);
  if (path.size() < 2) {
    drop(DropReason::kNoRoute, msg);
    return false;
  }
  // path = [src, n1, n2, ..., dst]; first hop src->n1, tail n2..dst.
  std::vector<NodeId> tail(path.begin() + 2, path.end());
  return transmit(src, path[1], std::move(msg), tail.empty() ? nullptr : &tail);
}

Topology Network::connectivity() const {
  Topology t(nodes_.size());
  for (NodeId a = 0; a < nodes_.size(); ++a) {
    if (!nodes_[a].up) continue;
    for (NodeId b = a + 1; b < nodes_.size(); ++b) {
      if (!nodes_[b].up) continue;
      if (channel_.in_range(nodes_[a].position, nodes_[a].profile, nodes_[b].position,
                            nodes_[b].profile)) {
        t.add_edge(a, b, sim::distance(nodes_[a].position, nodes_[b].position));
      }
    }
  }
  return t;
}

std::uint64_t Network::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n.bytes_sent;
  return total;
}

}  // namespace iobt::net
