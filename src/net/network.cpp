#include "net/network.h"

#include <algorithm>
#include <cassert>

namespace iobt::net {

std::string to_string(DropReason r) {
  switch (r) {
    case DropReason::kOutOfRange: return "out_of_range";
    case DropReason::kChannelLoss: return "channel_loss";
    case DropReason::kNodeDown: return "node_down";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kQueueOverflow: return "queue_overflow";
  }
  return "unknown";
}

Network::Network(sim::Simulator& simulator, ChannelModel channel, sim::Rng rng)
    : sim_(simulator), channel_(std::move(channel)), rng_(rng),
      deliver_tag_(simulator.intern("net.deliver")) {
  resolve_metric_handles();
  sim_.checkpoint().register_participant(this);
}

Network::~Network() {
  const std::vector<bool> free_slot = free_slots();
  for (std::uint32_t s = 0; s < pending_.size(); ++s) {
    if (!free_slot[s]) sim_.cancel(pending_[s].event);
  }
  sim_.checkpoint().unregister(this);
}

void Network::resolve_metric_handles() {
  // Hot-path metric handles: a transmitted frame costs two pointer bumps
  // instead of two string-keyed map walks; digests are unaffected.
  bytes_sent_counter_ = metrics_.counter_handle("net.bytes_sent");
  frames_sent_counter_ = metrics_.counter_handle("net.frames_sent");
  frames_delivered_counter_ = metrics_.counter_handle("net.frames_delivered");
  delivery_latency_summary_ = metrics_.summary_handle("net.delivery_latency_s");
  for (const DropReason r :
       {DropReason::kOutOfRange, DropReason::kChannelLoss, DropReason::kNodeDown,
        DropReason::kNoRoute, DropReason::kQueueOverflow}) {
    drop_counters_[static_cast<std::size_t>(r)] =
        metrics_.counter_handle("net.drop." + to_string(r));
  }
}

NodeId Network::add_node(sim::Vec2 position, RadioProfile profile) {
  nodes_.push_back(Endpoint{position, profile, nullptr, true, 0, sim::SimTime::zero()});
  route_cache_.emplace_back();
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  if (profile.range_m > max_range_m_) {
    // A longer radio breaks the cells-cover-range invariant: rebuild the
    // grid around the new maximum before indexing the newcomer.
    max_range_m_ = profile.range_m;
    grid_.reset(max_range_m_);
    for (NodeId n = 0; n < id; ++n) {
      if (nodes_[n].up) grid_.insert(n, nodes_[n].position);
    }
  }
  grid_.insert(id, position);
  invalidate_routes();
  return id;
}

void Network::set_handler(NodeId id, Handler h) { nodes_.at(id).handler = std::move(h); }

void Network::set_position(NodeId id, sim::Vec2 p) {
  Endpoint& e = nodes_.at(id);
  const sim::Vec2 from = e.position;
  if (from == p) return;
  if (!e.up) {
    // A down node is invisible to the topology (and absent from the grid):
    // reposition silently.
    e.position = p;
    return;
  }
  const bool changed = neighbor_set_changed(id, from, p);
  e.position = p;
  grid_.move(id, from, p);
  // Region-scoped invalidation: a move that gains or loses no link leaves
  // every cached route structurally intact, so the epoch — and with it
  // every Dijkstra rebuild downstream — is only paid when an in-range
  // relationship actually changed.
  if (changed) invalidate_routes();
}

void Network::set_node_up(NodeId id, bool up) {
  Endpoint& e = nodes_.at(id);
  if (e.up == up) return;
  e.up = up;
  if (up) {
    grid_.insert(id, e.position);
  } else {
    grid_.remove(id, e.position);
  }
  invalidate_routes();
}

bool Network::neighbor_set_changed(NodeId id, sim::Vec2 from, sim::Vec2 to) const {
  const Endpoint& e = nodes_[id];
  const auto differs = [&](NodeId other) {
    const Endpoint& o = nodes_[other];
    return channel_.in_range(from, e.profile, o.position, o.profile) !=
           channel_.in_range(to, e.profile, o.position, o.profile);
  };
  if (!use_grid_) {
    for (NodeId other = 0; other < nodes_.size(); ++other) {
      if (other == id || !nodes_[other].up) continue;
      if (differs(other)) return true;
    }
    return false;
  }
  // Any node whose membership differs is in range of `from` or of `to`, so
  // the union of the two 3x3 neighborhoods covers all candidates.
  scratch_.clear();
  grid_.neighborhood(from, scratch_);
  grid_.neighborhood(to, scratch_);
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()), scratch_.end());
  for (const NodeId other : scratch_) {
    if (other == id) continue;
    if (differs(other)) return true;
  }
  return false;
}

std::vector<NodeId> Network::nodes_near(sim::Vec2 p, double radius) const {
  std::vector<NodeId> out;
  if (use_grid_) {
    grid_.near(p, radius, out);
    std::sort(out.begin(), out.end());
  } else {
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (nodes_[id].up) out.push_back(id);
    }
  }
  return out;
}

void Network::drop(DropReason reason, const Message& msg) {
  ++frames_dropped_;
  *drop_counters_[static_cast<std::size_t>(reason)] += 1.0;
  trace::Tracer& tr = sim_.tracer();
  if (tr.enabled()) tr.instant(trace_drop_.id(tr));
  if (drop_hook_) drop_hook_(reason, msg);
}

bool Network::transmit(NodeId src, NodeId dst, Message msg,
                       const std::vector<NodeId>* remaining_path) {
  Endpoint& s = nodes_.at(src);
  Endpoint& d = nodes_.at(dst);
  if (!s.up || !d.up) {
    drop(DropReason::kNodeDown, msg);
    return false;
  }
  if (!channel_.in_range(s.position, s.profile, d.position, d.profile)) {
    drop(DropReason::kOutOfRange, msg);
    return false;
  }

  // Half-duplex transmitter: frames serialize on the sender's radio.
  const sim::Duration tx = ChannelModel::transmission_delay(s.profile, msg.size_bytes);
  const sim::SimTime start = std::max(sim_.now(), s.tx_free_at);
  s.tx_free_at = start + tx;
  const sim::SimTime arrive = s.tx_free_at + hop_latency_;

  s.bytes_sent += msg.size_bytes;
  *bytes_sent_counter_ += static_cast<double>(msg.size_bytes);
  *frames_sent_counter_ += 1.0;
  if (transmit_hook_) transmit_hook_(src, msg.size_bytes);

  // Loss is decided now (deterministically from the RNG stream) but takes
  // effect at arrival time.
  const double loss = channel_.loss_probability(s.position, s.profile, d.position,
                                                d.profile, sim_.now());
  const bool lost = rng_.bernoulli(loss);

  // Async trace span per frame on the air: begin at transmit, end at
  // delivery or loss. frames_in_flight_ is maintained unconditionally (two
  // integer ops) so the counter track is correct however late tracing was
  // enabled; records themselves cost nothing while tracing is off.
  ++frames_in_flight_;
  std::uint64_t frame_trace = 0;
  {
    trace::Tracer& tr = sim_.tracer();
    if (tr.enabled()) {
      frame_trace = next_frame_trace_id_++;
      tr.async_begin(trace_frame_.id(tr), frame_trace);
      tr.counter(trace_in_flight_.id(tr), static_cast<double>(frames_in_flight_));
    }
  }

  // Park the frame in the slab and schedule a {this, slot} closure.
  std::uint32_t slot;
  if (free_pending_ != kNoPending) {
    slot = free_pending_;
    free_pending_ = pending_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(pending_.size());
    pending_.emplace_back();
  }
  PendingFrame& f = pending_[slot];
  f.msg = std::move(msg);
  f.path_tail.clear();
  if (remaining_path) {
    f.path_tail.assign(remaining_path->begin(), remaining_path->end());
  }
  f.frame_trace = frame_trace;
  f.dst = dst;
  f.lost = lost;
  f.deliver_at = arrive;
  f.event = sim_.schedule_at(arrive, [this, slot] { deliver_pending(slot); }, deliver_tag_);
  return true;
}

void Network::deliver_pending(std::uint32_t slot) {
  --frames_in_flight_;
  trace::Tracer& tr = sim_.tracer();
  if (pending_[slot].frame_trace != 0 && tr.enabled()) {
    tr.async_end(trace_frame_.id(tr), pending_[slot].frame_trace);
    tr.counter(trace_in_flight_.id(tr), static_cast<double>(frames_in_flight_));
  }
  // Move the frame out and recycle the slot BEFORE acting on it: drop
  // hooks, receiver handlers, and multi-hop forwarding can all re-enter
  // transmit(), which may grow pending_ and invalidate references into it.
  Message msg = std::move(pending_[slot].msg);
  std::vector<NodeId> path_tail = std::move(pending_[slot].path_tail);
  const NodeId dst = pending_[slot].dst;
  const bool lost = pending_[slot].lost;
  pending_[slot].event = sim::kNoEvent;
  pending_[slot].next_free = free_pending_;
  free_pending_ = slot;

  if (lost) {
    drop(DropReason::kChannelLoss, msg);
    return;
  }
  if (!nodes_.at(dst).up) {
    drop(DropReason::kNodeDown, msg);
    return;
  }
  ++msg.hops;
  if (!path_tail.empty()) {
    // Intermediate hop: forward along the precomputed path.
    const NodeId next = path_tail.front();
    std::vector<NodeId> rest(path_tail.begin() + 1, path_tail.end());
    transmit(dst, next, std::move(msg), rest.empty() ? nullptr : &rest);
    return;
  }
  *frames_delivered_counter_ += 1.0;
  delivery_latency_summary_->add((sim_.now() - msg.sent_at).to_seconds());
  if (nodes_[dst].handler) nodes_[dst].handler(msg);
}

bool Network::send(NodeId src, NodeId dst, Message msg) {
  msg.src = src;
  msg.dst = dst;
  msg.sent_at = sim_.now();
  return transmit(src, dst, std::move(msg), nullptr);
}

std::size_t Network::broadcast(NodeId src, Message msg) {
  msg.src = src;
  msg.dst = kBroadcast;
  msg.sent_at = sim_.now();
  const Endpoint& s = nodes_.at(src);
  if (!s.up) {
    drop(DropReason::kNodeDown, msg);
    return 0;
  }
  std::size_t put_on_air = 0;
  const auto offer = [&](NodeId other) {
    if (other == src || !nodes_[other].up) return;
    if (!channel_.in_range(s.position, s.profile, nodes_[other].position,
                           nodes_[other].profile)) {
      return;
    }
    Message copy = msg;
    if (transmit(src, other, std::move(copy), nullptr)) ++put_on_air;
  };
  if (use_grid_) {
    // Cell size >= max range, so the 3x3 neighborhood covers every
    // receiver. Candidates are offered in ascending NodeId order — the
    // brute-force scan order — so the per-receiver loss draws consume the
    // RNG stream identically and delivery traces stay bit-identical.
    // Copied into scratch_ because drop/transmit hooks run synchronously
    // inside offer() and must not be able to invalidate the memo mid-walk.
    const std::vector<NodeId>& hood = grid_.neighborhood_sorted(s.position);
    scratch_.assign(hood.begin(), hood.end());
    for (const NodeId other : scratch_) offer(other);
  } else {
    for (NodeId other = 0; other < nodes_.size(); ++other) offer(other);
  }
  return put_on_air;
}

const ShortestPaths& Network::cached_paths(NodeId src) {
  RouteCacheEntry& entry = route_cache_.at(src);
  if (entry.epoch != topology_epoch_) {
    entry.paths = connectivity().shortest_paths(src);
    entry.epoch = topology_epoch_;
  }
  return entry.paths;
}

bool Network::route_exists(NodeId src, NodeId dst) {
  if (src >= nodes_.size() || dst >= nodes_.size()) return false;
  if (!nodes_[src].up || !nodes_[dst].up) return false;
  return cached_paths(src).reachable(dst);
}

bool Network::route_and_send(NodeId src, NodeId dst, Message msg) {
  msg.src = src;
  msg.dst = dst;
  msg.sent_at = sim_.now();
  if (src == dst) {
    // Local delivery, zero hops.
    if (nodes_.at(src).handler) nodes_.at(src).handler(msg);
    return true;
  }
  const auto path = cached_paths(src).path_to(dst);
  if (path.size() < 2) {
    drop(DropReason::kNoRoute, msg);
    return false;
  }
  // path = [src, n1, n2, ..., dst]; first hop src->n1, tail n2..dst.
  std::vector<NodeId> tail(path.begin() + 2, path.end());
  return transmit(src, path[1], std::move(msg), tail.empty() ? nullptr : &tail);
}

Topology Network::connectivity() const {
  // Edges are collected into a flat scratch list (reused across snapshots,
  // so rebuilds allocate nothing once warm) and the Topology is built in
  // one bulk pass with exact-size adjacency reserves. The list order is
  // the brute-force edge order (a ascending, then b > a ascending), so
  // the adjacency lists — and every tie-break downstream in Dijkstra —
  // are bit-identical between the grid and O(n^2) paths.
  edge_scratch_.clear();
  if (use_grid_) {
    // Grid neighborhoods via the per-cell sorted memo: all nodes sharing a
    // cell share one gathered + sorted candidate list, and the memo
    // carries over to later snapshots while membership is unchanged.
    for (NodeId a = 0; a < nodes_.size(); ++a) {
      if (!nodes_[a].up) continue;
      for (const NodeId b : grid_.neighborhood_sorted(nodes_[a].position)) {
        if (b <= a) continue;
        if (channel_.in_range(nodes_[a].position, nodes_[a].profile,
                              nodes_[b].position, nodes_[b].profile)) {
          edge_scratch_.push_back(
              {a, b, sim::distance(nodes_[a].position, nodes_[b].position)});
        }
      }
    }
  } else {
    for (NodeId a = 0; a < nodes_.size(); ++a) {
      if (!nodes_[a].up) continue;
      for (NodeId b = a + 1; b < nodes_.size(); ++b) {
        if (!nodes_[b].up) continue;
        if (channel_.in_range(nodes_[a].position, nodes_[a].profile, nodes_[b].position,
                              nodes_[b].profile)) {
          edge_scratch_.push_back(
              {a, b, sim::distance(nodes_[a].position, nodes_[b].position)});
        }
      }
    }
  }
  return Topology(nodes_.size(), edge_scratch_);
}

std::vector<bool> Network::free_slots() const {
  std::vector<bool> free_slot(pending_.size(), false);
  for (std::uint32_t s = free_pending_; s != kNoPending; s = pending_[s].next_free) {
    free_slot[s] = true;
  }
  return free_slot;
}

void Network::save(sim::Snapshot& snap, const std::string& key) const {
  CheckpointState st;
  st.nodes = nodes_;
  // Handlers are live-stack closures; the snapshot carries data only.
  for (Endpoint& e : st.nodes) e.handler = nullptr;
  st.channel = channel_;
  st.rng = rng_;
  st.metrics = metrics_;
  st.frames_dropped = frames_dropped_;
  st.hop_latency = hop_latency_;
  st.next_frame_trace_id = next_frame_trace_id_;
  st.max_range_m = max_range_m_;
  st.topology_epoch = topology_epoch_;
  const std::vector<bool> free_slot = free_slots();
  for (std::uint32_t s = 0; s < pending_.size(); ++s) {
    if (free_slot[s]) continue;
    const PendingFrame& f = pending_[s];
    st.in_flight.push_back(SavedFrame{f.msg, f.path_tail, f.dst, f.lost,
                                      f.deliver_at, sim_.pending_seq(f.event)});
  }
  snap.put(key, std::move(st));
}

void Network::restore(const sim::Snapshot& snap, const std::string& key,
                      sim::RestoreArmer& armer) {
  const auto& st = snap.get<CheckpointState>(key);

  // Cancel every live delivery and drop the slab; it is rebuilt below.
  const std::vector<bool> free_slot = free_slots();
  for (std::uint32_t s = 0; s < pending_.size(); ++s) {
    if (!free_slot[s]) sim_.cancel(pending_[s].event);
  }
  pending_.clear();
  free_pending_ = kNoPending;

  // Node table: adopt the saved endpoints but keep whatever handlers the
  // restoring stack already installed per node (construction-time firmware
  // on a fresh branch stack, everything on an in-place rewind). Nodes past
  // the saved count (post-snapshot Sybils on a rewind) disappear; nodes
  // past the restoring stack's count (pre-snapshot Sybils restored into a
  // fresh stack) arrive with null handlers until their owning service's
  // participant re-installs them.
  std::vector<Handler> handlers(st.nodes.size());
  const std::size_t keep = std::min(nodes_.size(), st.nodes.size());
  for (std::size_t i = 0; i < keep; ++i) handlers[i] = std::move(nodes_[i].handler);
  nodes_ = st.nodes;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].handler = std::move(handlers[i]);
  }

  channel_ = st.channel;
  rng_ = st.rng;
  metrics_ = st.metrics;
  resolve_metric_handles();
  frames_dropped_ = st.frames_dropped;
  hop_latency_ = st.hop_latency;
  next_frame_trace_id_ = st.next_frame_trace_id;
  frames_in_flight_ = st.in_flight.size();
  max_range_m_ = st.max_range_m;
  topology_epoch_ = st.topology_epoch;
  route_cache_.assign(nodes_.size(), RouteCacheEntry{});

  // Rebuild the spatial index from scratch over the restored live nodes
  // (cell size invariant: >= max radio range; 250 m matches the default-
  // constructed grid before any radio registers).
  grid_.reset(max_range_m_ > 0.0 ? max_range_m_ : 250.0);
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].up) grid_.insert(n, nodes_[n].position);
  }

  // Re-park every in-flight frame and queue its delivery re-arm under the
  // frame's original FIFO seq. reserve() first: &p.event must stay valid
  // until the registry schedules the re-arms.
  pending_.reserve(st.in_flight.size());
  for (const SavedFrame& f : st.in_flight) {
    const auto slot = static_cast<std::uint32_t>(pending_.size());
    pending_.emplace_back();
    PendingFrame& p = pending_[slot];
    p.msg = f.msg;
    p.path_tail = f.path_tail;
    p.frame_trace = 0;  // async trace spans do not survive restore
    p.dst = f.dst;
    p.lost = f.lost;
    p.deliver_at = f.deliver_at;
    armer.rearm(f.deliver_at, f.seq, [this, slot] { deliver_pending(slot); },
                deliver_tag_, &p.event);
  }
}

std::uint64_t Network::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n.bytes_sent;
  return total;
}

}  // namespace iobt::net
