#include "intent/games.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace iobt::intent {

TaskAllocationGame::TaskAllocationGame(std::vector<std::vector<double>> effectiveness,
                                       std::vector<double> values)
    : eff_(std::move(effectiveness)), values_(std::move(values)) {
  for (const auto& row : eff_) {
    assert(row.size() == values_.size());
    for (double p : row) {
      assert(p >= 0.0 && p < 1.0);
      (void)p;
    }
  }
}

double TaskAllocationGame::fail_prob(std::size_t task, const JointAction& joint,
                                     std::size_t skip) const {
  double fail = 1.0;
  for (std::size_t i = 0; i < joint.size(); ++i) {
    if (i == skip || joint[i] != task) continue;
    fail *= (1.0 - eff_[i][task]);
  }
  return fail;
}

double TaskAllocationGame::welfare(const JointAction& joint) const {
  double w = 0.0;
  for (std::size_t j = 0; j < values_.size(); ++j) {
    w += values_[j] * (1.0 - fail_prob(j, joint, num_agents()));
  }
  return w;
}

double TaskAllocationGame::utility(std::size_t agent, const JointAction& joint) const {
  const std::size_t j = joint[agent];
  if (j >= values_.size()) return 0.0;  // idle contributes nothing
  // Marginal contribution on task j only (other tasks cancel).
  const double fail_without = fail_prob(j, joint, agent);
  const double fail_with = fail_without * (1.0 - eff_[agent][j]);
  return values_[j] * (fail_without - fail_with);
}

std::size_t TaskAllocationGame::best_response(std::size_t agent,
                                              const JointAction& joint) const {
  JointAction trial = joint;
  const std::size_t current = joint[agent];
  trial[agent] = current;
  double best_u = utility(agent, trial);
  std::size_t best_a = current;
  for (std::size_t a = 0; a <= idle_action(); ++a) {
    if (a == current) continue;
    trial[agent] = a;
    const double u = utility(agent, trial);
    if (u > best_u + 1e-12) {
      best_u = u;
      best_a = a;
    }
  }
  return best_a;
}

TaskAllocationGame TaskAllocationGame::random_instance(std::size_t agents,
                                                       std::size_t tasks,
                                                       sim::Rng& rng) {
  // Place both populations in a unit square; effectiveness decays with
  // distance and carries a per-agent skill factor.
  std::vector<std::pair<double, double>> apos(agents), tpos(tasks);
  for (auto& p : apos) p = {rng.uniform(), rng.uniform()};
  for (auto& p : tpos) p = {rng.uniform(), rng.uniform()};
  std::vector<std::vector<double>> eff(agents, std::vector<double>(tasks));
  for (std::size_t i = 0; i < agents; ++i) {
    const double skill = rng.uniform(0.3, 0.9);
    for (std::size_t j = 0; j < tasks; ++j) {
      const double dx = apos[i].first - tpos[j].first;
      const double dy = apos[i].second - tpos[j].second;
      const double d = std::sqrt(dx * dx + dy * dy);
      eff[i][j] = std::min(0.95, skill * std::exp(-2.0 * d));
    }
  }
  std::vector<double> values(tasks);
  for (auto& v : values) v = rng.uniform(0.5, 2.0);
  return TaskAllocationGame(std::move(eff), std::move(values));
}

DynamicsResult best_response_dynamics(const TaskAllocationGame& game,
                                      JointAction start, std::size_t max_rounds) {
  DynamicsResult res;
  JointAction joint = start.empty()
                          ? JointAction(game.num_agents(), game.idle_action())
                          : std::move(start);
  assert(joint.size() == game.num_agents());

  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool moved = false;
    for (std::size_t i = 0; i < game.num_agents(); ++i) {
      const std::size_t br = game.best_response(i, joint);
      if (br != joint[i]) {
        joint[i] = br;
        moved = true;
        ++res.moves;
      }
    }
    ++res.rounds;
    if (!moved) {
      res.converged = true;
      break;
    }
  }
  res.final_welfare = game.welfare(joint);
  res.final_action = std::move(joint);
  return res;
}

DynamicsResult log_linear_dynamics(const TaskAllocationGame& game, sim::Rng& rng,
                                   double temperature, std::size_t iterations,
                                   JointAction start) {
  DynamicsResult res;
  JointAction joint = start.empty()
                          ? JointAction(game.num_agents(), game.idle_action())
                          : std::move(start);

  JointAction best = joint;
  double best_w = game.welfare(joint);

  for (std::size_t it = 0; it < iterations; ++it) {
    const std::size_t i =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(game.num_agents()) - 1));
    // Softmax over this agent's actions at the current joint profile.
    JointAction trial = joint;
    std::vector<double> weights(game.idle_action() + 1);
    double max_u = -1e300;
    std::vector<double> utils(weights.size());
    for (std::size_t a = 0; a < weights.size(); ++a) {
      trial[i] = a;
      utils[a] = game.utility(i, trial);
      max_u = std::max(max_u, utils[a]);
    }
    for (std::size_t a = 0; a < weights.size(); ++a) {
      weights[a] = std::exp((utils[a] - max_u) / std::max(1e-9, temperature));
    }
    const std::size_t pick = rng.categorical(weights);
    if (pick != joint[i]) {
      joint[i] = pick;
      ++res.moves;
    }
    // Track the best welfare visited (log-linear wanders by design).
    const double w = game.welfare(joint);
    if (w > best_w) {
      best_w = w;
      best = joint;
    }
  }
  res.rounds = iterations;
  res.converged = true;
  res.final_action = std::move(best);
  res.final_welfare = best_w;
  return res;
}

DynamicsResult centralized_greedy(const TaskAllocationGame& game) {
  DynamicsResult res;
  const std::size_t n = game.num_agents();
  const std::size_t m = game.num_tasks();
  JointAction joint(n, game.idle_action());
  std::vector<bool> assigned(n, false);

  // Incremental marginal gains: assigning agent i to task j raises
  // welfare by value_j * fail_j * p_ij, where fail_j is the current
  // failure probability of task j. Keeping fail_j up to date makes each
  // greedy commit O(n * m) instead of O(n * m * welfare()).
  std::vector<double> fail(m, 1.0);
  while (true) {
    double best_gain = 1e-12;
    std::size_t best_i = n, best_j = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      for (std::size_t j = 0; j < m; ++j) {
        const double gain = game.value(j) * fail[j] * game.effectiveness(i, j);
        if (gain > best_gain) {
          best_gain = gain;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_i == n) break;
    joint[best_i] = best_j;
    assigned[best_i] = true;
    fail[best_j] *= (1.0 - game.effectiveness(best_i, best_j));
    ++res.moves;
  }
  res.rounds = res.moves;
  res.converged = true;
  res.final_welfare = game.welfare(joint);
  res.final_action = std::move(joint);
  return res;
}

DynamicsResult hierarchical_decomposition(const TaskAllocationGame& game,
                                          std::size_t clusters) {
  assert(clusters >= 1);
  const std::size_t n = game.num_agents();
  const std::size_t m = game.num_tasks();
  clusters = std::min({clusters, n, m == 0 ? std::size_t{1} : m});

  DynamicsResult res;
  JointAction joint(n, game.idle_action());

  // Block partition: agents i with i % clusters == c and tasks j with
  // j % clusters == c form subordinate command c. (A spatial partition
  // would be strictly better; the modular one keeps the decomposition
  // deterministic and is what the E5 ablation measures against.)
  for (std::size_t c = 0; c < clusters; ++c) {
    std::vector<std::size_t> agents, tasks;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % clusters == c) agents.push_back(i);
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (j % clusters == c) tasks.push_back(j);
    }
    if (agents.empty() || tasks.empty()) continue;

    // Build the sub-game.
    std::vector<std::vector<double>> eff(agents.size(),
                                         std::vector<double>(tasks.size()));
    std::vector<double> values(tasks.size());
    for (std::size_t a = 0; a < agents.size(); ++a) {
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        eff[a][t] = game.effectiveness(agents[a], tasks[t]);
      }
    }
    for (std::size_t t = 0; t < tasks.size(); ++t) values[t] = game.value(tasks[t]);
    TaskAllocationGame sub(std::move(eff), std::move(values));

    const DynamicsResult sub_res = best_response_dynamics(sub);
    res.rounds = std::max(res.rounds, sub_res.rounds);  // blocks run in parallel
    res.moves += sub_res.moves;
    for (std::size_t a = 0; a < agents.size(); ++a) {
      const std::size_t act = sub_res.final_action[a];
      joint[agents[a]] = act >= tasks.size() ? game.idle_action() : tasks[act];
    }
  }
  res.converged = true;
  res.final_welfare = game.welfare(joint);
  res.final_action = std::move(joint);
  return res;
}

}  // namespace iobt::intent
