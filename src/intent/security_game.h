#pragma once
// Security games: zero-sum matrix games solved by fictitious play.
//
// §IV-A calls for "game theoretic foundations ... multi-level dynamic
// games that offer provable convergence guarantees"; §VI makes security
// "a paramount role". The canonical IoBT instance: a jammer picks where
// to emit, the network picks which relay corridor to route through, and
// the payoff is the traffic that survives. Zero-sum matrix games cover
// this exactly, and fictitious play provably converges (Robinson 1951)
// to the mixed-strategy equilibrium / game value.
//
// Also provided: a builder that derives the jammer-vs-route payoff matrix
// from an actual Topology (route corridors vs jammed vertices), so the
// solver plugs directly into the network substrate.

#include <cstddef>
#include <vector>

#include "net/topology.h"

namespace iobt::intent {

/// payoff[i][j] = row player's (defender's) payoff when row plays i and
/// column (attacker) plays j. Zero-sum: attacker receives -payoff.
struct MatrixGame {
  std::vector<std::vector<double>> payoff;

  std::size_t rows() const { return payoff.size(); }
  std::size_t cols() const { return payoff.empty() ? 0 : payoff[0].size(); }
};

struct MixedEquilibrium {
  std::vector<double> row_strategy;  // defender's mixed strategy
  std::vector<double> col_strategy;  // attacker's mixed strategy
  /// Game value from the row player's perspective (bounds converge around
  /// it as fictitious play iterates).
  double value = 0.0;
  double value_lower = 0.0;  // row's guaranteed payoff under row_strategy
  double value_upper = 0.0;  // row's cap under col_strategy
  std::size_t iterations = 0;
};

/// Fictitious play: both players repeatedly best-respond to the empirical
/// mixture of the opponent's past play. Deterministic (ties to lowest
/// index). Converges in value; strategies converge in time-average.
MixedEquilibrium solve_fictitious_play(const MatrixGame& game,
                                       std::size_t iterations = 20000);

/// Expected row payoff when row plays `row_mix` and column plays `col_mix`.
double expected_payoff(const MatrixGame& game, const std::vector<double>& row_mix,
                       const std::vector<double>& col_mix);

/// Builds the jammer-vs-route game from a topology:
///   * defender strategies: one per provided route (node sequences),
///   * attacker strategies: jam any single vertex in `jammable`,
///   * payoff = 1 if the chosen route avoids the jammed vertex, else
///     `jammed_payoff` (partial traffic survives a jammed corridor).
MatrixGame make_routing_game(const std::vector<std::vector<net::NodeId>>& routes,
                             const std::vector<net::NodeId>& jammable,
                             double jammed_payoff = 0.1);

/// Enumerates up to `k` short vertex-disjoint-ish routes between s and t:
/// repeatedly takes the shortest path, then re-runs with its interior
/// vertices' edges removed. The diversity of routes is what gives the
/// defender mixing power.
std::vector<std::vector<net::NodeId>> diverse_routes(const net::Topology& topo,
                                                     net::NodeId s, net::NodeId t,
                                                     std::size_t k);

}  // namespace iobt::intent
