#include "intent/security_game.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace iobt::intent {

MixedEquilibrium solve_fictitious_play(const MatrixGame& game,
                                       std::size_t iterations) {
  const std::size_t m = game.rows(), n = game.cols();
  MixedEquilibrium eq;
  if (m == 0 || n == 0) return eq;

  std::vector<double> row_counts(m, 0.0), col_counts(n, 0.0);
  // Cumulative payoff each pure strategy would have earned against the
  // opponent's play history — best response = argmax/argmin over these.
  std::vector<double> row_cum(m, 0.0);  // row's payoff sums per row action
  std::vector<double> col_cum(n, 0.0);  // row-payoff sums per column action

  std::size_t row_play = 0, col_play = 0;
  for (std::size_t it = 0; it < iterations; ++it) {
    // Record plays and update cumulative responses.
    row_counts[row_play] += 1.0;
    col_counts[col_play] += 1.0;
    for (std::size_t i = 0; i < m; ++i) row_cum[i] += game.payoff[i][col_play];
    for (std::size_t j = 0; j < n; ++j) col_cum[j] += game.payoff[row_play][j];

    // Best responses to the opponent's empirical mixture.
    row_play = 0;
    for (std::size_t i = 1; i < m; ++i) {
      if (row_cum[i] > row_cum[row_play]) row_play = i;
    }
    col_play = 0;  // attacker minimizes row payoff
    for (std::size_t j = 1; j < n; ++j) {
      if (col_cum[j] < col_cum[col_play]) col_play = j;
    }
  }

  const double total = static_cast<double>(iterations);
  eq.row_strategy.resize(m);
  eq.col_strategy.resize(n);
  for (std::size_t i = 0; i < m; ++i) eq.row_strategy[i] = row_counts[i] / total;
  for (std::size_t j = 0; j < n; ++j) eq.col_strategy[j] = col_counts[j] / total;

  // Value bounds: row's guaranteed floor under its mixture (worst column)
  // and row's ceiling under the attacker's mixture (best row).
  double floor = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < n; ++j) {
    double v = 0.0;
    for (std::size_t i = 0; i < m; ++i) v += eq.row_strategy[i] * game.payoff[i][j];
    floor = std::min(floor, v);
  }
  double ceil = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m; ++i) {
    double v = 0.0;
    for (std::size_t j = 0; j < n; ++j) v += eq.col_strategy[j] * game.payoff[i][j];
    ceil = std::max(ceil, v);
  }
  eq.value_lower = floor;
  eq.value_upper = ceil;
  eq.value = (floor + ceil) / 2.0;
  eq.iterations = iterations;
  return eq;
}

double expected_payoff(const MatrixGame& game, const std::vector<double>& row_mix,
                       const std::vector<double>& col_mix) {
  assert(row_mix.size() == game.rows() && col_mix.size() == game.cols());
  double v = 0.0;
  for (std::size_t i = 0; i < game.rows(); ++i) {
    for (std::size_t j = 0; j < game.cols(); ++j) {
      v += row_mix[i] * col_mix[j] * game.payoff[i][j];
    }
  }
  return v;
}

MatrixGame make_routing_game(const std::vector<std::vector<net::NodeId>>& routes,
                             const std::vector<net::NodeId>& jammable,
                             double jammed_payoff) {
  MatrixGame g;
  g.payoff.assign(routes.size(), std::vector<double>(jammable.size(), 1.0));
  for (std::size_t r = 0; r < routes.size(); ++r) {
    for (std::size_t a = 0; a < jammable.size(); ++a) {
      for (const net::NodeId v : routes[r]) {
        if (v == jammable[a]) {
          g.payoff[r][a] = jammed_payoff;
          break;
        }
      }
    }
  }
  return g;
}

std::vector<std::vector<net::NodeId>> diverse_routes(const net::Topology& topo,
                                                     net::NodeId s, net::NodeId t,
                                                     std::size_t k) {
  std::vector<std::vector<net::NodeId>> routes;
  net::Topology work = topo;  // edges get carved out per found route
  for (std::size_t r = 0; r < k; ++r) {
    const auto sp = work.shortest_paths(s);
    const auto path = sp.path_to(t);
    if (path.size() < 2) break;
    routes.push_back(path);
    // Remove interior vertices' incident edges so the next route diverges.
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      const auto neighbors = work.neighbors(path[i]);  // copy: we mutate
      for (const auto& nb : std::vector<net::Topology::Neighbor>(neighbors)) {
        work.remove_edge(path[i], nb.id);
      }
    }
  }
  return routes;
}

}  // namespace iobt::intent
