#pragma once
// Game-theoretic command by intent (§IV-A, "Operationalizing agent
// interactions").
//
// The commander's intent is encoded as a global welfare function; each
// agent is handed a local objective — its *marginal contribution* to that
// welfare (the wonderful-life utility). With WLU the task-allocation game
// is an exact potential game whose potential IS the global welfare, so:
//   * unilateral best responses strictly increase welfare,
//   * best-response dynamics provably converge to a pure Nash equilibrium,
//   * "the necessary distributed coordination ... does not need to be
//     explicitly designed, but rather naturally result[s] from each agent
//     seeking to optimize its given objective function."
//
// The concrete game: N agents each pick one of M tasks (or idle, action
// M). Task j succeeds with probability 1 - prod_{i on j} (1 - p_ij), and
// contributes value_j * P(success) to welfare. p_ij is agent i's
// effectiveness on task j (from range, capability, or terrain).

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace iobt::intent {

/// Joint action: action[i] in [0, num_tasks] — num_tasks means idle.
using JointAction = std::vector<std::size_t>;

class TaskAllocationGame {
 public:
  /// effectiveness[i][j] = p_ij in [0, 1); values[j] > 0.
  TaskAllocationGame(std::vector<std::vector<double>> effectiveness,
                     std::vector<double> values);

  std::size_t num_agents() const { return eff_.size(); }
  std::size_t num_tasks() const { return values_.size(); }
  std::size_t idle_action() const { return values_.size(); }

  /// Global welfare of a joint action (== the game's exact potential).
  double welfare(const JointAction& joint) const;

  /// Wonderful-life utility of agent i under `joint`: welfare(joint) -
  /// welfare(joint with i idle). Computed incrementally in O(agents).
  double utility(std::size_t agent, const JointAction& joint) const;

  /// Agent i's best response holding others fixed. Ties break toward the
  /// current action (no churn), then the lowest index (determinism).
  std::size_t best_response(std::size_t agent, const JointAction& joint) const;

  double effectiveness(std::size_t i, std::size_t j) const { return eff_[i][j]; }
  double value(std::size_t j) const { return values_[j]; }

  /// Generates a spatially-flavored random instance: agents and tasks
  /// placed uniformly, p_ij decays with distance.
  static TaskAllocationGame random_instance(std::size_t agents, std::size_t tasks,
                                            sim::Rng& rng);

 private:
  /// P(task j fails) given the set of agents on it, excluding `skip`
  /// (pass num_agents() to exclude nobody).
  double fail_prob(std::size_t task, const JointAction& joint, std::size_t skip) const;

  std::vector<std::vector<double>> eff_;
  std::vector<double> values_;
};

struct DynamicsResult {
  JointAction final_action;
  double final_welfare = 0.0;
  /// Rounds of round-robin revision until no agent moved.
  std::size_t rounds = 0;
  /// Total unilateral deviations taken.
  std::size_t moves = 0;
  bool converged = false;
};

/// Round-robin best-response dynamics from `start` (empty = all idle).
/// Converges in finite time for potential games.
DynamicsResult best_response_dynamics(const TaskAllocationGame& game,
                                      JointAction start = {},
                                      std::size_t max_rounds = 1000);

/// Log-linear (noisy) dynamics: each revision picks an action with
/// probability proportional to exp(utility / temperature). As temperature
/// -> 0 the stationary distribution concentrates on welfare maximizers.
DynamicsResult log_linear_dynamics(const TaskAllocationGame& game, sim::Rng& rng,
                                   double temperature = 0.05,
                                   std::size_t iterations = 20000,
                                   JointAction start = {});

/// Centralized baseline: greedy marginal-welfare assignment (the
/// commander micromanaging every asset). Near-optimal for submodular
/// welfare; used to measure the price of anarchy of the distributed play.
DynamicsResult centralized_greedy(const TaskAllocationGame& game);

/// Hierarchical decomposition (§IV: "game theoretic foundations for
/// hierarchical decomposition of global goals into objectives for
/// distributed subordinate subsystems"): partitions agents and tasks into
/// `clusters` geographic-style blocks, solves each block independently by
/// best response, and returns the stitched joint action evaluated on the
/// FULL game. Trades welfare for locality (smaller games, fewer rounds).
DynamicsResult hierarchical_decomposition(const TaskAllocationGame& game,
                                          std::size_t clusters);

}  // namespace iobt::intent
