#pragma once
// Multi-target tracking: global-nearest-neighbour data association over
// per-track Kalman filters, with confirm/coast/delete track management.
//
// This is the analytic service behind the paper's "track a dispersed group
// of humans and vehicles moving through cluttered environments" (§II) and
// the fusion engine the mission layer can feed raw detections into.
// Trust-weighted fusion: a detection's measurement noise is scaled by the
// reporting sensor's trust, so low-trust (possibly adversarial) reports
// pull tracks weakly.

#include <cstdint>
#include <optional>
#include <vector>

#include "track/kalman.h"

namespace iobt::track {

using TrackId = std::uint32_t;

/// A detection handed to the tracker: position plus provenance.
struct Detection {
  sim::Vec2 position;
  /// Reported measurement noise (sensor-dependent).
  double sigma = 5.0;
  /// Trust of the reporting source in (0, 1]; scales the effective noise.
  double source_trust = 1.0;
};

struct TrackerConfig {
  /// Association gate in sigma units.
  double gate_sigmas = 4.0;
  /// Hits needed to confirm a tentative track.
  int confirm_hits = 3;
  /// Consecutive missed scans before a track is dropped.
  int max_misses = 5;
  /// Kalman process noise and default measurement sigma.
  double process_noise = 1.0;
  double default_sigma = 5.0;
  /// New-track initial position uncertainty.
  double initial_sigma = 10.0;
  /// Detections from sources below this trust never SPAWN tracks (they may
  /// still weakly update confirmed ones) — adversarial track seeding guard.
  double min_spawn_trust = 0.3;
};

struct Track {
  TrackId id = 0;
  Kalman2D filter;
  int hits = 0;
  int consecutive_misses = 0;
  bool confirmed = false;
};

class MultiTargetTracker {
 public:
  explicit MultiTargetTracker(TrackerConfig config = {}) : cfg_(config) {}

  /// One scan: advance all tracks by dt, associate detections (greedy
  /// nearest-first within the gate, one detection per track), update,
  /// spawn tentative tracks from unassociated detections, retire stale
  /// tracks.
  void step(double dt_s, const std::vector<Detection>& detections);

  const std::vector<Track>& tracks() const { return tracks_; }
  std::vector<const Track*> confirmed_tracks() const;
  std::size_t confirmed_count() const { return confirmed_tracks().size(); }

  /// Mean distance from each true position to its nearest confirmed
  /// track, plus a cardinality penalty for missing/spurious tracks
  /// (OSPA-flavoured; scoring helper for tests/benches).
  double tracking_error(const std::vector<sim::Vec2>& truth,
                        double cutoff_m = 100.0) const;

 private:
  TrackerConfig cfg_;
  std::vector<Track> tracks_;
  TrackId next_id_ = 1;
};

}  // namespace iobt::track
