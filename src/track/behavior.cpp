#include "track/behavior.h"

#include <algorithm>
#include <cmath>

namespace iobt::track {

std::size_t MarkovMotionModel::cell_of(sim::Vec2 p) const {
  const double fx = (p.x - area_.min.x) / std::max(1e-9, area_.width());
  const double fy = (p.y - area_.min.y) / std::max(1e-9, area_.height());
  const auto cx = std::min(n_ - 1, static_cast<std::size_t>(
                                       std::max(0.0, fx) * static_cast<double>(n_)));
  const auto cy = std::min(n_ - 1, static_cast<std::size_t>(
                                       std::max(0.0, fy) * static_cast<double>(n_)));
  return cy * n_ + cx;
}

void MarkovMotionModel::observe(sim::Vec2 from, sim::Vec2 to) {
  const std::size_t f = cell_of(from), t = cell_of(to);
  auto& row = counts_[f];
  for (auto& [cell, count] : row) {
    if (cell == t) {
      count += 1.0;
      return;
    }
  }
  row.push_back({t, 1.0});
}

double MarkovMotionModel::transition_probability(std::size_t from,
                                                 std::size_t to) const {
  const auto& row = counts_.at(from);
  if (row.empty()) return to == from ? 1.0 : 0.0;  // stay-put prior
  double total = 0.0, hit = 0.0;
  for (const auto& [cell, count] : row) {
    total += count;
    if (cell == to) hit = count;
  }
  return total > 0.0 ? hit / total : 0.0;
}

std::size_t MarkovMotionModel::predict_next_cell(sim::Vec2 from) const {
  const std::size_t f = cell_of(from);
  const auto& row = counts_[f];
  if (row.empty()) return f;
  std::size_t best = row[0].first;
  double best_count = row[0].second;
  for (const auto& [cell, count] : row) {
    if (count > best_count || (count == best_count && cell < best)) {
      best = cell;
      best_count = count;
    }
  }
  return best;
}

double MarkovMotionModel::top1_accuracy(
    const std::vector<std::pair<sim::Vec2, sim::Vec2>>& test) const {
  if (test.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& [from, to] : test) {
    if (predict_next_cell(from) == cell_of(to)) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(test.size());
}

std::optional<Rendezvous> predict_rendezvous(const MultiTargetTracker& tracker,
                                             const RendezvousConfig& cfg) {
  const auto tracks = tracker.confirmed_tracks();
  if (tracks.size() < cfg.min_participants) return std::nullopt;

  std::optional<Rendezvous> best;
  for (double t = cfg.require_future ? cfg.step_s : 0.0; t <= cfg.horizon_s;
       t += cfg.step_s) {
    // Extrapolated positions at time t.
    std::vector<sim::Vec2> at;
    at.reserve(tracks.size());
    for (const Track* tr : tracks) {
      const auto e = tr->filter.estimate();
      at.push_back(e.position + e.velocity * t);
    }
    // Greedy grouping: for each seed track, collect others whose
    // extrapolation lands within 2*radius of it, then refine around the
    // group centroid.
    for (std::size_t seed = 0; seed < at.size(); ++seed) {
      std::vector<std::size_t> group;
      for (std::size_t j = 0; j < at.size(); ++j) {
        if (sim::distance(at[seed], at[j]) <= 2.0 * cfg.radius_m) group.push_back(j);
      }
      if (group.size() < cfg.min_participants) continue;
      sim::Vec2 centroid{0, 0};
      for (std::size_t j : group) centroid = centroid + at[j];
      centroid = centroid * (1.0 / static_cast<double>(group.size()));
      double mean_d = 0.0;
      std::vector<std::size_t> members;
      for (std::size_t j : group) {
        if (sim::distance(at[j], centroid) <= cfg.radius_m) members.push_back(j);
      }
      if (members.size() < cfg.min_participants) continue;
      for (std::size_t j : members) mean_d += sim::distance(at[j], centroid);
      mean_d /= static_cast<double>(members.size());

      // Skip meetings already in progress when asked for predictions.
      if (cfg.require_future) {
        sim::Vec2 now_centroid{0, 0};
        for (std::size_t j : members) {
          now_centroid = now_centroid + tracks[j]->filter.estimate().position;
        }
        now_centroid = now_centroid * (1.0 / static_cast<double>(members.size()));
        bool already = true;
        for (std::size_t j : members) {
          already &= sim::distance(tracks[j]->filter.estimate().position,
                                   now_centroid) <= cfg.radius_m;
        }
        if (already) continue;
      }

      const bool better =
          !best || members.size() > best->participants.size() ||
          (members.size() == best->participants.size() && mean_d < best->tightness_m);
      if (better) {
        Rendezvous r;
        r.point = centroid;
        r.eta_s = t;
        r.tightness_m = mean_d;
        for (std::size_t j : members) r.participants.push_back(tracks[j]->id);
        std::sort(r.participants.begin(), r.participants.end());
        r.participants.erase(
            std::unique(r.participants.begin(), r.participants.end()),
            r.participants.end());
        best = std::move(r);
      }
    }
  }
  return best;
}

}  // namespace iobt::track
