#include "track/kalman.h"

#include <cmath>

namespace iobt::track {

Kalman2D::Kalman2D(sim::Vec2 initial_position, double initial_sigma,
                   double process_noise, double measurement_sigma)
    : q_(process_noise), r_(measurement_sigma) {
  x_ = {initial_position.x, initial_position.y, 0.0, 0.0};
  for (auto& row : p_) row.fill(0.0);
  p_[0][0] = p_[1][1] = initial_sigma * initial_sigma;
  // Unknown initial velocity: generous prior.
  p_[2][2] = p_[3][3] = 25.0;
}

void Kalman2D::predict(double dt_s) {
  const double dt = dt_s;
  // x' = F x with F = [I, dt*I; 0, I].
  x_[0] += dt * x_[2];
  x_[1] += dt * x_[3];

  // P' = F P F^T + Q (discretized white-accel model).
  // Compute F P first (only rows 0,1 change).
  std::array<std::array<double, 4>, 4> fp = p_;
  for (int c = 0; c < 4; ++c) {
    fp[0][c] = p_[0][c] + dt * p_[2][c];
    fp[1][c] = p_[1][c] + dt * p_[3][c];
  }
  // Then (F P) F^T (only columns 0,1 change).
  std::array<std::array<double, 4>, 4> fpf = fp;
  for (int r = 0; r < 4; ++r) {
    fpf[r][0] = fp[r][0] + dt * fp[r][2];
    fpf[r][1] = fp[r][1] + dt * fp[r][3];
  }
  p_ = fpf;

  // Q for white acceleration: blocks [dt^4/4, dt^3/2; dt^3/2, dt^2] * q.
  const double dt2 = dt * dt, dt3 = dt2 * dt, dt4 = dt3 * dt;
  p_[0][0] += q_ * dt4 / 4.0;
  p_[1][1] += q_ * dt4 / 4.0;
  p_[0][2] += q_ * dt3 / 2.0;
  p_[2][0] += q_ * dt3 / 2.0;
  p_[1][3] += q_ * dt3 / 2.0;
  p_[3][1] += q_ * dt3 / 2.0;
  p_[2][2] += q_ * dt2;
  p_[3][3] += q_ * dt2;
}

void Kalman2D::update(sim::Vec2 measured, double measurement_sigma) {
  const double r = measurement_sigma > 0.0 ? measurement_sigma : r_;
  const double rr = r * r;
  // H = [I2, 0]; S = H P H^T + R is 2x2.
  const double s00 = p_[0][0] + rr;
  const double s11 = p_[1][1] + rr;
  const double s01 = p_[0][1];
  const double det = s00 * s11 - s01 * s01;
  if (std::abs(det) < 1e-12) return;  // degenerate: skip the update
  const double i00 = s11 / det, i11 = s00 / det, i01 = -s01 / det;

  // K = P H^T S^{-1}: 4x2.
  std::array<std::array<double, 2>, 4> k{};
  for (int i = 0; i < 4; ++i) {
    k[i][0] = p_[i][0] * i00 + p_[i][1] * i01;
    k[i][1] = p_[i][0] * i01 + p_[i][1] * i11;
  }

  const double y0 = measured.x - x_[0];
  const double y1 = measured.y - x_[1];
  for (int i = 0; i < 4; ++i) x_[i] += k[i][0] * y0 + k[i][1] * y1;

  // P = (I - K H) P: only the first two columns of KH are nonzero.
  std::array<std::array<double, 4>, 4> np{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      np[i][j] = p_[i][j] - (k[i][0] * p_[0][j] + k[i][1] * p_[1][j]);
    }
  }
  p_ = np;
}

StateEstimate Kalman2D::estimate() const {
  StateEstimate e;
  e.position = {x_[0], x_[1]};
  e.velocity = {x_[2], x_[3]};
  e.position_sigma = std::sqrt(std::max(0.0, (p_[0][0] + p_[1][1]) / 2.0));
  return e;
}

double Kalman2D::gate_distance(sim::Vec2 measured) const {
  const double sigma =
      std::sqrt(std::max(1e-9, (p_[0][0] + p_[1][1]) / 2.0) + r_ * r_);
  return sim::distance(measured, {x_[0], x_[1]}) / sigma;
}

}  // namespace iobt::track
