#pragma once
// 2-D constant-velocity Kalman filtering for target tracking.
//
// The paper's flagship mission is "track a collection of insurgents and
// report on their activities and rendezvous points" (§III-B) using noisy,
// intermittent, multi-sensor detections. The Kalman filter is the
// state-estimation workhorse: state [x, y, vx, vy], position-only
// measurements, constant-velocity process model with tunable acceleration
// noise. Everything is hand-rolled 4x4 linear algebra — no external
// dependencies, fully deterministic.

#include <array>

#include "sim/geometry.h"

namespace iobt::track {

/// Track state estimate: position, velocity, and the covariance diagonal
/// that downstream consumers (gating, fusion weights) care about.
struct StateEstimate {
  sim::Vec2 position;
  sim::Vec2 velocity;
  /// Position uncertainty: sqrt of the covariance trace over x, y.
  double position_sigma = 0.0;
};

class Kalman2D {
 public:
  /// `process_noise` is the accel-noise intensity q (m^2/s^3-ish);
  /// `measurement_sigma` the per-axis position noise of detections.
  Kalman2D(sim::Vec2 initial_position, double initial_sigma, double process_noise,
           double measurement_sigma);

  /// Propagates the state dt seconds forward.
  void predict(double dt_s);

  /// Fuses one position measurement. Optionally override the measurement
  /// noise (per-detection confidence).
  void update(sim::Vec2 measured, double measurement_sigma = -1.0);

  StateEstimate estimate() const;

  /// Mahalanobis-like gating distance of a measurement from the predicted
  /// position (in units of standard deviations, isotropic approximation).
  double gate_distance(sim::Vec2 measured) const;

 private:
  // State: [x, y, vx, vy]. Covariance kept as a full symmetric 4x4.
  std::array<double, 4> x_{};
  std::array<std::array<double, 4>, 4> p_{};
  double q_;
  double r_;
};

}  // namespace iobt::track
