#include "track/tracker.h"

#include <algorithm>
#include <limits>

namespace iobt::track {

void MultiTargetTracker::step(double dt_s, const std::vector<Detection>& detections) {
  for (Track& t : tracks_) t.filter.predict(dt_s);

  // Greedy global-nearest-neighbour: repeatedly take the (track, det)
  // pair with the smallest gate distance under the gate, one each.
  std::vector<bool> det_used(detections.size(), false);
  std::vector<bool> trk_used(tracks_.size(), false);
  while (true) {
    double best = cfg_.gate_sigmas;
    std::size_t bi = tracks_.size(), bj = detections.size();
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
      if (trk_used[i]) continue;
      for (std::size_t j = 0; j < detections.size(); ++j) {
        if (det_used[j]) continue;
        const double d = tracks_[i].filter.gate_distance(detections[j].position);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    if (bi == tracks_.size()) break;
    trk_used[bi] = true;
    det_used[bj] = true;
    const Detection& det = detections[bj];
    // Low trust -> inflated effective measurement noise: the report pulls
    // the track weakly instead of being believed outright.
    const double eff_sigma =
        det.sigma / std::max(0.05, std::min(1.0, det.source_trust));
    tracks_[bi].filter.update(det.position, eff_sigma);
    ++tracks_[bi].hits;
    tracks_[bi].consecutive_misses = 0;
    if (tracks_[bi].hits >= cfg_.confirm_hits) tracks_[bi].confirmed = true;
  }

  // Misses age unmatched tracks.
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (!trk_used[i]) ++tracks_[i].consecutive_misses;
  }
  std::erase_if(tracks_, [this](const Track& t) {
    return t.consecutive_misses > cfg_.max_misses;
  });

  // Unassociated detections spawn tentative tracks — but only from
  // sources trusted enough to seed mission-level situational awareness.
  for (std::size_t j = 0; j < detections.size(); ++j) {
    if (det_used[j]) continue;
    if (detections[j].source_trust < cfg_.min_spawn_trust) continue;
    Track t{next_id_++,
            Kalman2D(detections[j].position, cfg_.initial_sigma, cfg_.process_noise,
                     cfg_.default_sigma),
            1, 0, cfg_.confirm_hits <= 1};
    tracks_.push_back(std::move(t));
  }
}

std::vector<const Track*> MultiTargetTracker::confirmed_tracks() const {
  std::vector<const Track*> out;
  for (const Track& t : tracks_) {
    if (t.confirmed) out.push_back(&t);
  }
  return out;
}

double MultiTargetTracker::tracking_error(const std::vector<sim::Vec2>& truth,
                                          double cutoff_m) const {
  const auto confirmed = confirmed_tracks();
  if (truth.empty()) {
    return confirmed.empty() ? 0.0 : cutoff_m;  // pure clutter
  }
  double total = 0.0;
  for (const auto& tp : truth) {
    double nearest = cutoff_m;
    for (const Track* t : confirmed) {
      nearest = std::min(nearest, sim::distance(tp, t->filter.estimate().position));
    }
    total += nearest;
  }
  // Cardinality penalty for spurious tracks beyond the truth count.
  if (confirmed.size() > truth.size()) {
    total += cutoff_m * static_cast<double>(confirmed.size() - truth.size());
  }
  return total / static_cast<double>(truth.size());
}

}  // namespace iobt::track
