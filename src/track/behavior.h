#pragma once
// Behavior prediction over tracks (§II: battlefield services "predict
// behaviors/activities"; §III-B: "track a collection of insurgents and
// report on their activities and rendezvous points").
//
// Two predictors:
//  * MarkovMotionModel — learns a first-order transition model over grid
//    cells from observed track histories, then predicts where a target
//    goes next. Captures habitual movement (patrol routes, corridors)
//    that straight-line extrapolation misses.
//  * RendezvousDetector — extrapolates confirmed tracks forward under
//    constant velocity and looks for a time horizon at which several
//    tracks converge within a radius: a predicted rendezvous, reported
//    with location, time-to-event, and the participating tracks.

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/geometry.h"
#include "track/tracker.h"

namespace iobt::track {

/// First-order Markov model over an n x n grid of cells.
class MarkovMotionModel {
 public:
  MarkovMotionModel(sim::Rect area, std::size_t grid_n)
      : area_(area), n_(grid_n), counts_(grid_n * grid_n) {}

  std::size_t cell_of(sim::Vec2 p) const;
  std::size_t cell_count() const { return n_ * n_; }

  /// Feeds one observed transition (consecutive positions of one target).
  void observe(sim::Vec2 from, sim::Vec2 to);

  /// P(next = to-cell | current = from-cell). Unseen from-cells fall back
  /// to "stay put" (the max-likelihood prior for slow targets).
  double transition_probability(std::size_t from, std::size_t to) const;

  /// Most likely next cell from a position.
  std::size_t predict_next_cell(sim::Vec2 from) const;

  /// Fraction of held-out transitions whose true next cell is the model's
  /// argmax (scoring helper).
  double top1_accuracy(const std::vector<std::pair<sim::Vec2, sim::Vec2>>& test) const;

 private:
  sim::Rect area_;
  std::size_t n_;
  /// counts_[from] = sparse (to, count) pairs.
  std::vector<std::vector<std::pair<std::size_t, double>>> counts_;
};

struct Rendezvous {
  sim::Vec2 point;
  /// Seconds from now at which the convergence is tightest.
  double eta_s = 0.0;
  /// Track ids predicted to converge.
  std::vector<TrackId> participants;
  /// Mean distance of participants from the point at the ETA (m).
  double tightness_m = 0.0;
};

struct RendezvousConfig {
  /// Extrapolation horizon and step.
  double horizon_s = 300.0;
  double step_s = 10.0;
  /// Convergence radius: participants within this of their centroid.
  double radius_m = 80.0;
  /// Minimum tracks converging to call it a rendezvous.
  std::size_t min_participants = 2;
  /// Ignore groups that are ALREADY within the radius (that is a meeting
  /// in progress, not a prediction).
  bool require_future = true;
};

/// Scans the horizon for the tightest future convergence of confirmed
/// tracks under constant-velocity extrapolation. Returns nullopt if no
/// group of min_participants ever falls within radius_m.
std::optional<Rendezvous> predict_rendezvous(const MultiTargetTracker& tracker,
                                             const RendezvousConfig& cfg = {});

}  // namespace iobt::track
