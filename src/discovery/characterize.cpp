#include "discovery/characterize.h"

#include "things/sensors.h"

namespace iobt::discovery {

namespace {
constexpr const char* kChallenge = "char.challenge";
constexpr const char* kResponse = "char.response";
constexpr std::size_t kChallengeBytes = 64;
constexpr std::size_t kResponseBytes = 48;
}  // namespace

CharacterizationService::CharacterizationService(
    things::World& world, net::Dispatcher& dispatcher, DiscoveryService& discovery,
    security::TrustRegistry& trust, things::AssetId verifier,
    CharacterizationConfig config)
    : world_(world),
      disp_(dispatcher),
      discovery_(discovery),
      trust_(trust),
      verifier_(verifier),
      cfg_(config) {
  disp_.on(world_.asset(verifier_).node, kResponse,
           [this](const net::Message& m) { handle_response(m); });
  firmware_installed_.resize(world_.asset_count(), false);
  for (const auto& a : world_.assets()) install_subject_firmware(a.id);
  world_.on_asset_added(
      [this](things::AssetId id) { install_subject_firmware(id); });
}

void CharacterizationService::install_subject_firmware(things::AssetId id) {
  if (id < firmware_installed_.size() && firmware_installed_[id]) return;
  if (id >= firmware_installed_.size()) firmware_installed_.resize(id + 1, false);
  firmware_installed_[id] = true;

  disp_.on(world_.asset(id).node, kChallenge, [this, id](const net::Message& m) {
    if (!world_.asset_live(id)) return;
    const things::Asset& a = world_.asset(id);
    if (!a.emissions.responds_to_probe) return;  // hiders ignore challenges
    const auto& ch = std::any_cast<const Challenge&>(m.payload);

    sim::Rng rng = world_.rng().child(0xC4A70000ULL + id).child(ch.challenge_id);
    bool detected;
    const things::SenseCapability* cap = a.sensor(ch.modality);
    if (cap) {
      // Honest physics: detection gated by the real sensor.
      const double d = sim::distance(world_.asset_position(id), ch.position);
      const double p = things::detection_probability(*cap, d);
      detected = ch.present ? rng.bernoulli(p) : rng.bernoulli(cap->false_positive_rate);
    } else {
      // The device claimed a sensor it lacks: it can only guess.
      detected = rng.bernoulli(0.5);
    }

    net::Message reply;
    reply.kind = kResponse;
    reply.size_bytes = kResponseBytes;
    reply.payload = ChallengeResponse{ch.challenge_id, id, detected};
    // Multi-hop: the verifier is rarely a radio neighbor.
    world_.network().route_and_send(a.node, m.src, std::move(reply));
  });
}

void CharacterizationService::start() {
  world_.simulator().schedule_every(
      cfg_.challenge_period,
      [this]() {
        if (!world_.asset_live(verifier_)) return false;
        tick();
        return true;
      },
      world_.simulator().intern("char.loop"));
}

void CharacterizationService::tick() {
  // Expire unanswered challenges. A timeout first retransmits (frames are
  // lost on this network for reasons that say nothing about honesty);
  // only a post-retry timeout is scored, and at reduced weight.
  const sim::SimTime now = world_.simulator().now();
  std::vector<std::uint64_t> to_resend;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.answered) {
      it = pending_.erase(it);
      continue;
    }
    if (now <= it->second.deadline) {
      ++it;
      continue;
    }
    if (it->second.retries_left > 0) {
      --it->second.retries_left;
      it->second.deadline = now + cfg_.response_timeout;
      to_resend.push_back(it->first);
      ++it;
      continue;
    }
    if (DiscoveredAsset* e = discovery_.directory().find(it->second.subject)) {
      ++e->challenges_failed;
    }
    trust_.record(it->second.subject, false, cfg_.timeout_penalty_weight);
    it = pending_.erase(it);
  }
  for (const auto id : to_resend) send_challenge_frame(id);

  // Round-robin a subject that advertised sensors.
  std::vector<std::pair<std::uint32_t, things::Modality>> candidates;
  for (const auto& [id, e] : discovery_.directory().entries()) {
    if (!e.claimed_sensors.empty() && e.answered_probe) {
      candidates.push_back({id, e.claimed_sensors.front().modality});
    }
  }
  if (candidates.empty()) return;
  // Deterministic order regardless of hash-map iteration.
  std::sort(candidates.begin(), candidates.end());
  const std::size_t n = std::min(cfg_.challenges_per_tick, candidates.size());
  for (std::size_t k = 0; k < n; ++k) {
    const auto& [subject, modality] = candidates[round_robin_++ % candidates.size()];
    challenge(subject, modality);
  }
}

void CharacterizationService::challenge(std::uint32_t subject,
                                        things::Modality modality) {
  const DiscoveredAsset* e = discovery_.directory().find(subject);
  if (!e) return;
  sim::Rng rng = world_.rng().child(0xCAFE0000ULL).child(next_challenge_id_);

  Challenge ch;
  ch.challenge_id = next_challenge_id_++;
  ch.modality = modality;
  ch.present = rng.bernoulli(0.5);
  // Stimulus placed close to the subject so a real sensor detects it
  // nearly surely when present.
  const double theta = rng.uniform(0.0, 6.283185307179586);
  ch.position = world_.area().clamp(
      {e->last_position.x + cfg_.stimulus_offset_m * std::cos(theta),
       e->last_position.y + cfg_.stimulus_offset_m * std::sin(theta)});

  Pending p;
  p.subject = subject;
  p.present = ch.present;
  p.deadline = world_.simulator().now() + cfg_.response_timeout;
  p.retries_left = cfg_.retries;
  p.modality = modality;
  p.stimulus = ch.position;
  pending_[ch.challenge_id] = p;
  ++issued_;
  send_challenge_frame(ch.challenge_id);
}

void CharacterizationService::send_challenge_frame(std::uint64_t challenge_id) {
  auto it = pending_.find(challenge_id);
  if (it == pending_.end()) return;
  const Pending& p = it->second;
  Challenge ch;
  ch.challenge_id = challenge_id;
  ch.modality = p.modality;
  ch.present = p.present;
  ch.position = p.stimulus;
  net::Message m;
  m.kind = kChallenge;
  m.size_bytes = kChallengeBytes;
  m.payload = ch;
  world_.network().route_and_send(world_.asset(verifier_).node,
                                  world_.asset(p.subject).node, std::move(m));
}

void CharacterizationService::handle_response(const net::Message& m) {
  const auto& r = std::any_cast<const ChallengeResponse&>(m.payload);
  auto it = pending_.find(r.challenge_id);
  if (it == pending_.end()) return;
  it->second.answered = true;
  ++answered_;
  const bool correct = (r.detected == it->second.present);
  if (DiscoveredAsset* e = discovery_.directory().find(r.asset)) {
    if (correct) {
      ++e->challenges_passed;
    } else {
      ++e->challenges_failed;
    }
  }
  trust_.record(r.asset, correct);
}

}  // namespace iobt::discovery
