#pragma once
// The asset directory: what one blue enclave currently believes about the
// population. Entries are built from three evidence channels (§III-A):
// active probe answers, passive beacon observation, and side-channel
// emanation detection. The directory never reads ground truth; tests and
// benches compare it against the World to score recall/precision.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/message.h"
#include "sim/geometry.h"
#include "sim/time.h"
#include "things/capability.h"

namespace iobt::discovery {

/// Inferred standing of a discovered entity.
enum class Standing : std::uint8_t {
  kCooperative,  // answers probes / beacons with verifiable claims
  kSuspect,      // emits but hides from discovery, or claims failed checks
  kUnknown,      // too little evidence
};

std::string to_string(Standing s);

struct DiscoveredAsset {
  std::uint32_t asset = 0;  // protocol identity (AssetId carried in frames)
  net::NodeId node = 0;

  sim::SimTime first_seen;
  sim::SimTime last_seen;

  // Evidence channels.
  bool answered_probe = false;
  bool observed_beacon = false;
  bool side_channel_hit = false;

  // Claims from advertisements (may be lies).
  std::optional<things::DeviceClass> claimed_class;
  std::vector<things::SenseCapability> claimed_sensors;
  sim::Vec2 last_position;

  // Characterization outputs.
  int challenges_passed = 0;
  int challenges_failed = 0;

  Standing standing() const {
    if (challenges_failed > challenges_passed && challenges_failed > 0) {
      return Standing::kSuspect;
    }
    if (side_channel_hit && !answered_probe && !observed_beacon) {
      return Standing::kSuspect;  // emits but hides: likely red/gray
    }
    if (answered_probe || observed_beacon) return Standing::kCooperative;
    return Standing::kUnknown;
  }
};

class AssetDirectory {
 public:
  /// Entries older than this are dropped by prune() — discovery "needs to
  /// be continuous" (§III-A), so stale knowledge must expire.
  explicit AssetDirectory(sim::Duration staleness = sim::Duration::seconds(120.0))
      : staleness_(staleness) {}

  DiscoveredAsset& upsert(std::uint32_t asset, sim::SimTime now) {
    auto [it, inserted] = entries_.try_emplace(asset);
    if (inserted) {
      it->second.asset = asset;
      it->second.first_seen = now;
    }
    it->second.last_seen = now;
    return it->second;
  }

  const DiscoveredAsset* find(std::uint32_t asset) const {
    auto it = entries_.find(asset);
    return it == entries_.end() ? nullptr : &it->second;
  }
  DiscoveredAsset* find(std::uint32_t asset) {
    auto it = entries_.find(asset);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Removes entries not refreshed within the staleness window. Returns
  /// how many were evicted.
  std::size_t prune(sim::SimTime now) {
    std::size_t evicted = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (now - it->second.last_seen > staleness_) {
        it = entries_.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
    return evicted;
  }

  std::size_t size() const { return entries_.size(); }
  const std::unordered_map<std::uint32_t, DiscoveredAsset>& entries() const {
    return entries_;
  }

  std::size_t count_standing(Standing s) const {
    std::size_t n = 0;
    for (const auto& [id, e] : entries_) {
      if (e.standing() == s) ++n;
    }
    return n;
  }

  sim::Duration staleness() const { return staleness_; }

 private:
  sim::Duration staleness_;
  std::unordered_map<std::uint32_t, DiscoveredAsset> entries_;
};

}  // namespace iobt::discovery
