#include "discovery/service.h"

#include <cmath>

namespace iobt::discovery {

namespace {
constexpr const char* kProbe = "disc.probe";
constexpr const char* kAdvert = "disc.advert";
constexpr const char* kBeacon = "disc.beacon";
constexpr const char* kFwdBeacon = "disc.fwd_beacon";
constexpr std::size_t kProbeBytes = 40;
constexpr std::size_t kAdvertBytes = 160;
constexpr std::size_t kBeaconBytes = 48;
}  // namespace

std::string to_string(Standing s) {
  switch (s) {
    case Standing::kCooperative: return "cooperative";
    case Standing::kSuspect: return "suspect";
    case Standing::kUnknown: return "unknown";
  }
  return "unknown";
}

DiscoveryService::DiscoveryService(things::World& world, net::Dispatcher& dispatcher,
                                   std::vector<things::AssetId> collectors,
                                   DiscoveryConfig config)
    : world_(world),
      disp_(dispatcher),
      collectors_(std::move(collectors)),
      cfg_(config),
      directory_(config.staleness) {
  responder_installed_.resize(world_.asset_count(), false);
  for (const auto& a : world_.assets()) install_responder(a.id);
  // Late arrivals (Sybils, reinforcements) get responder firmware too.
  world_.on_asset_added([this](things::AssetId id) { install_responder(id); });
  // Collectors listen for adverts, beacons, and relayed beacons.
  for (const auto c : collectors_) {
    const net::NodeId node = world_.asset(c).node;
    disp_.on(node, kAdvert, [this](const net::Message& m) { handle_advert(m); });
    disp_.on(node, kBeacon,
             [this](const net::Message& m) { handle_beacon_at_collector(m); });
    disp_.on(node, kFwdBeacon,
             [this](const net::Message& m) { handle_beacon_at_collector(m); });
  }
}

Advertisement DiscoveryService::make_advertisement(const things::Asset& a) const {
  Advertisement ad;
  ad.asset = a.id;
  ad.claimed_position = world_.asset_position(a.id);
  if (a.affiliation == things::Affiliation::kRed) {
    // A red device that chooses to answer (Sybil) forges its identity:
    // claims to be a benign sensor mote with a seismic sensor.
    ad.claimed_class = things::DeviceClass::kSensorMote;
    ad.claimed_sensors = {{things::Modality::kSeismic, 200.0, 0.8, 0.02}};
  } else {
    ad.claimed_class = a.device_class;
    ad.claimed_sensors = a.sensors;
  }
  return ad;
}

bool is_collector_in(const std::vector<things::AssetId>& collectors,
                     things::AssetId id) {
  for (const auto c : collectors) {
    if (c == id) return true;
  }
  return false;
}

void DiscoveryService::install_responder(things::AssetId id) {
  if (id < responder_installed_.size() && responder_installed_[id]) return;
  if (id >= responder_installed_.size()) responder_installed_.resize(id + 1, false);
  responder_installed_[id] = true;

  const things::Asset& a = world_.asset(id);
  const net::NodeId node = a.node;

  disp_.on(node, kProbe,
           [this, id](const net::Message& m) { handle_probe_at(id, m); });

  // Blue non-collector assets forward beacons they overhear toward the
  // primary collector — discovery reach becomes the blue network's reach,
  // not one radio's.
  if (cfg_.relay_beacons && a.affiliation == things::Affiliation::kBlue &&
      !is_collector_in(collectors_, id)) {
    disp_.on(node, kBeacon,
             [this, id](const net::Message& m) { relay_beacon(id, m); });
  }

  // Beacon loop: devices that beacon do so regardless of who listens.
  if (a.emissions.beacon_period_s > 0.0) {
    world_.simulator().schedule_every(
        sim::Duration::seconds(a.emissions.beacon_period_s),
        [this, id]() {
          if (!world_.asset_live(id)) return false;
          const things::Asset& asset = world_.asset(id);
          if (asset.emissions.beacon_period_s <= 0.0) return false;  // silenced
          net::Message b;
          b.kind = kBeacon;
          b.size_bytes = kBeaconBytes;
          b.payload = make_advertisement(asset);
          world_.network().broadcast(asset.node, std::move(b));
          return true;
        },
        world_.simulator().intern("disc.beacon_loop"));
  }
}

void DiscoveryService::handle_probe_at(things::AssetId id, const net::Message& m) {
  if (!world_.asset_live(id)) return;
  const auto& probe = std::any_cast<const Probe&>(m.payload);

  // Flood dedup: handle each probe sequence once per asset.
  auto [it, inserted] = probe_seen_.try_emplace(id, 0);
  if (!inserted && probe.seq <= it->second) return;
  it->second = probe.seq;

  const things::Asset& asset = world_.asset(id);
  if (asset.emissions.responds_to_probe) {
    net::Message reply;
    reply.kind = kAdvert;
    reply.size_bytes = kAdvertBytes;
    reply.payload = make_advertisement(asset);
    world_.network().route_and_send(asset.node, probe.reply_to, std::move(reply));
  }

  // Blue assets extend the flood; red/gray do not relay military probes.
  if (probe.ttl > 1 && asset.affiliation == things::Affiliation::kBlue) {
    net::Message fwd;
    fwd.kind = kProbe;
    fwd.size_bytes = kProbeBytes;
    fwd.payload = Probe{probe.seq, probe.ttl - 1, probe.reply_to};
    world_.network().broadcast(asset.node, std::move(fwd));
  }
}

void DiscoveryService::relay_beacon(things::AssetId relay, const net::Message& m) {
  if (!world_.asset_live(relay) || collectors_.empty()) return;
  const auto& ad = std::any_cast<const Advertisement&>(m.payload);
  // Rate limit: one forward per (relay, subject) per half staleness.
  const sim::SimTime now = world_.simulator().now();
  const auto key = std::make_pair(relay, ad.asset);
  auto it = relay_last_.find(key);
  if (it != relay_last_.end() && now - it->second < directory_.staleness() * 0.5) {
    return;
  }
  relay_last_[key] = now;

  net::Message fwd;
  fwd.kind = kFwdBeacon;
  fwd.size_bytes = kBeaconBytes + 8;
  fwd.payload = ad;
  world_.network().route_and_send(world_.asset(relay).node,
                                  world_.asset(collectors_.front()).node,
                                  std::move(fwd));
}

void DiscoveryService::start() {
  if (started_) return;
  started_ = true;
  const sim::TagId probe_tag = world_.simulator().intern("disc.probe_loop");
  const sim::TagId scan_tag = world_.simulator().intern("disc.scan_loop");
  for (const auto c : collectors_) {
    world_.simulator().schedule_every(
        cfg_.probe_period,
        [this, c]() {
          if (!world_.asset_live(c)) return false;
          probe_tick(c);
          return true;
        },
        probe_tag);
    world_.simulator().schedule_every(
        cfg_.scan_period,
        [this, c]() {
          if (!world_.asset_live(c)) return false;
          scan_tick(c);
          return true;
        },
        scan_tag);
  }
  // Shared prune loop.
  world_.simulator().schedule_every(
      cfg_.staleness * 0.5,
      [this]() {
        directory_.prune(world_.simulator().now());
        return true;
      },
      world_.simulator().intern("disc.prune_loop"));
}

void DiscoveryService::probe_tick(things::AssetId collector) {
  net::Message probe;
  probe.kind = kProbe;
  probe.size_bytes = kProbeBytes;
  probe.payload =
      Probe{next_probe_seq_++, cfg_.probe_ttl, world_.asset(collector).node};
  world_.network().broadcast(world_.asset(collector).node, std::move(probe));
}

void DiscoveryService::scan_tick(things::AssetId collector) {
  const things::Asset& c = world_.asset(collector);
  const things::SenseCapability* rf = c.sensor(things::Modality::kRfSpectrum);
  if (!rf) return;
  const sim::Vec2 at = world_.asset_position(collector);
  const sim::SimTime now = world_.simulator().now();
  sim::Rng scan_rng = world_.rng().child(0x5CA40000ULL + collector)
                          .child(static_cast<std::uint64_t>(now.nanos()));
  // Candidate emitters come from the network's spatial index — a superset
  // of the RF disc instead of the full population. Node ids ascend with
  // asset ids, so applying the original filters in the original order
  // keeps the rng draw sequence identical to the exhaustive scan.
  for (const net::NodeId node : world_.network().nodes_near(at, rf->range_m)) {
    const things::AssetId id = world_.asset_of_node(node);
    if (id == collector || !world_.asset_live(id)) continue;
    const things::Asset& other = world_.asset(id);
    const double d = sim::distance(at, world_.asset_position(id));
    if (d > rf->range_m) continue;
    // Emanation detection: Poisson arrivals of detectable emissions over
    // the scan window, scaled by sensor quality.
    const double p_detect =
        rf->quality * (1.0 - std::exp(-other.emissions.side_channel_rate_hz *
                                      cfg_.scan_window_s));
    if (!scan_rng.bernoulli(p_detect)) continue;
    DiscoveredAsset& e = directory_.upsert(id, now);
    e.node = other.node;
    e.side_channel_hit = true;
    e.last_position = world_.asset_position(id);
  }
}

void DiscoveryService::handle_advert(const net::Message& m) {
  const auto& ad = std::any_cast<const Advertisement&>(m.payload);
  DiscoveredAsset& e = directory_.upsert(ad.asset, world_.simulator().now());
  e.node = world_.asset(ad.asset).node;
  e.answered_probe = true;
  e.claimed_class = ad.claimed_class;
  e.claimed_sensors = ad.claimed_sensors;
  e.last_position = ad.claimed_position;
}

void DiscoveryService::handle_beacon_at_collector(const net::Message& m) {
  const auto& ad = std::any_cast<const Advertisement&>(m.payload);
  DiscoveredAsset& e = directory_.upsert(ad.asset, world_.simulator().now());
  e.node = world_.asset(ad.asset).node;
  e.observed_beacon = true;
  e.claimed_class = ad.claimed_class;
  e.claimed_sensors = ad.claimed_sensors;
  e.last_position = ad.claimed_position;
}

double DiscoveryService::recall() const {
  std::size_t live = 0, found = 0;
  for (const auto& a : world_.assets()) {
    bool is_collector = false;
    for (auto c : collectors_) is_collector |= (c == a.id);
    if (is_collector || !world_.asset_live(a.id)) continue;
    ++live;
    if (directory_.find(a.id)) ++found;
  }
  return live == 0 ? 1.0 : static_cast<double>(found) / static_cast<double>(live);
}

double DiscoveryService::suspect_precision() const {
  std::size_t suspects = 0, truly_red = 0;
  for (const auto& [id, e] : directory_.entries()) {
    if (e.standing() != Standing::kSuspect) continue;
    ++suspects;
    if (world_.asset(id).affiliation == things::Affiliation::kRed) ++truly_red;
  }
  return suspects == 0 ? 1.0
                       : static_cast<double>(truly_red) / static_cast<double>(suspects);
}

double DiscoveryService::suspect_recall() const {
  std::size_t red = 0, flagged = 0;
  for (const auto& a : world_.assets()) {
    if (a.affiliation != things::Affiliation::kRed || !world_.asset_live(a.id)) continue;
    ++red;
    const DiscoveredAsset* e = directory_.find(a.id);
    if (e && e->standing() == Standing::kSuspect) ++flagged;
  }
  return red == 0 ? 1.0 : static_cast<double>(flagged) / static_cast<double>(red);
}

}  // namespace iobt::discovery
