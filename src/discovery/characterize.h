#pragma once
// Capability characterization by challenge-response.
//
// Discovery tells us what a device *claims* (§III-A: "characterize their
// capabilities to meet mission goals (and/or their potential threats)");
// characterization verifies the claims. The verifier controls a stimulus
// (a calibration emission at a known position, randomly presented or
// withheld) and challenges the subject to report whether its claimed
// sensor detects it. A device that really owns the claimed modality is
// correct with high probability; a device that lied must guess. Trust and
// the directory's pass/fail counters accumulate the evidence.

#include "discovery/service.h"
#include "security/trust.h"

namespace iobt::discovery {

/// CHALLENGE frame: "does your `modality` sensor currently detect a
/// stimulus at `position`?" The verifier knows `present`; the subject
/// does not (it is not in the frame the subject sees — we carry it for
/// the verifier's bookkeeping and firmware gates on real sensing).
struct Challenge {
  std::uint64_t challenge_id = 0;
  things::Modality modality = things::Modality::kSeismic;
  sim::Vec2 position;
  bool present = false;  // ground truth, used only by firmware simulation
};

struct ChallengeResponse {
  std::uint64_t challenge_id = 0;
  std::uint32_t asset = 0;
  bool detected = false;
};

struct CharacterizationConfig {
  /// How often the verifier runs a challenge tick.
  sim::Duration challenge_period = sim::Duration::seconds(15.0);
  /// Subjects challenged per tick (round-robin over the directory).
  std::size_t challenges_per_tick = 1;
  /// Response deadline per attempt.
  sim::Duration response_timeout = sim::Duration::seconds(5.0);
  /// Retransmissions before silence is scored: on a lossy multi-hop
  /// network a dropped frame must not read as dishonesty.
  int retries = 2;
  /// Trust-evidence weight of a final (post-retry) timeout.
  double timeout_penalty_weight = 0.25;
  /// Stimulus is placed within this distance of the subject's last
  /// reported position, inside the claimed sensor's range.
  double stimulus_offset_m = 20.0;
};

class CharacterizationService {
 public:
  CharacterizationService(things::World& world, net::Dispatcher& dispatcher,
                          DiscoveryService& discovery,
                          security::TrustRegistry& trust, things::AssetId verifier,
                          CharacterizationConfig config = {});

  /// Starts the periodic challenge loop (round-robins over directory
  /// entries that have unverified claims).
  void start();

  /// Issues one challenge immediately to `subject` for `modality`.
  void challenge(std::uint32_t subject, things::Modality modality);

  std::size_t challenges_issued() const { return issued_; }
  std::size_t challenges_answered() const { return answered_; }

 private:
  void handle_response(const net::Message& m);
  void install_subject_firmware(things::AssetId id);
  void tick();

  things::World& world_;
  net::Dispatcher& disp_;
  DiscoveryService& discovery_;
  security::TrustRegistry& trust_;
  things::AssetId verifier_;
  CharacterizationConfig cfg_;

  struct Pending {
    std::uint32_t subject;
    bool present;
    sim::SimTime deadline;
    bool answered = false;
    int retries_left = 0;
    things::Modality modality = things::Modality::kSeismic;
    sim::Vec2 stimulus;
  };

  void send_challenge_frame(std::uint64_t challenge_id);
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_challenge_id_ = 1;
  std::size_t issued_ = 0;
  std::size_t answered_ = 0;
  std::size_t round_robin_ = 0;
  std::vector<bool> firmware_installed_;
};

}  // namespace iobt::discovery
