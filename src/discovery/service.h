#pragma once
// Discovery service: the protocol machinery that populates an
// AssetDirectory over the simulated network.
//
// Three concurrent mechanisms (§III-A):
//  * Active probing  — collectors broadcast PROBE; cooperative firmware
//    answers with a (possibly false) capability advertisement. Red assets
//    configured with responds_to_probe=false stay silent; Sybils answer
//    with forged claims.
//  * Passive beacons — devices that beacon anyway (commercial IoT chatter)
//    are overheard by any collector in radio range.
//  * Side-channel scan — collectors with an RF-spectrum sensor detect
//    emanations of *silent* devices probabilistically, which is the only
//    channel that surfaces hiding red nodes.
//
// The service runs all responder firmware too (it is the scenario's
// "device software"), gated strictly on each asset's EmissionProfile and
// affiliation — never on hidden truth beyond what firmware would know.

#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "discovery/directory.h"
#include "net/dispatcher.h"
#include "things/world.h"

namespace iobt::discovery {

/// Capability advertisement carried in ADVERT frames. `claimed_*` fields
/// are what the device says, which for adversarial devices is a lie.
struct Advertisement {
  std::uint32_t asset = 0;
  things::DeviceClass claimed_class = things::DeviceClass::kSensorMote;
  std::vector<things::SenseCapability> claimed_sensors;
  sim::Vec2 claimed_position;
};

struct DiscoveryConfig {
  /// How often collectors broadcast probes.
  sim::Duration probe_period = sim::Duration::seconds(20.0);
  /// Probe flood TTL: blue assets re-broadcast probes this many hops out,
  /// so discovery reaches past the collector's own radio range. 1 = no
  /// relaying.
  int probe_ttl = 3;
  /// Blue assets forward overheard beacons to the collector (multi-hop),
  /// rate-limited per subject.
  bool relay_beacons = true;
  /// How often collectors run a side-channel RF scan.
  sim::Duration scan_period = sim::Duration::seconds(30.0);
  /// Effective listening window of one scan (drives detection probability
  /// 1 - exp(-rate * window)).
  double scan_window_s = 5.0;
  /// Directory entries older than this are evicted.
  sim::Duration staleness = sim::Duration::seconds(120.0);
};

class DiscoveryService {
 public:
  /// `collectors` are blue assets that probe/scan and share one directory
  /// (an enclave). Responder firmware is installed on every current asset;
  /// call install_responder() for assets added later (e.g. Sybils).
  DiscoveryService(things::World& world, net::Dispatcher& dispatcher,
                   std::vector<things::AssetId> collectors, DiscoveryConfig config);

  /// Starts probing, beaconing, scanning, and pruning loops.
  void start();

  /// Installs responder firmware on one asset (idempotent).
  void install_responder(things::AssetId id);

  AssetDirectory& directory() { return directory_; }
  const AssetDirectory& directory() const { return directory_; }

  // --- Scoring against ground truth (tests/benches only) -----------------

  /// Fraction of live assets currently present in the directory.
  double recall() const;
  /// Of directory entries flagged suspect, the fraction that truly are
  /// red-affiliated (precision of adversary identification).
  double suspect_precision() const;
  /// Fraction of live red assets flagged suspect.
  double suspect_recall() const;

 private:
  /// Probe frames carry a flood sequence number, remaining TTL, and the
  /// node adverts should be routed back to.
  struct Probe {
    std::uint32_t seq = 0;
    int ttl = 1;
    net::NodeId reply_to = 0;
  };

  void probe_tick(things::AssetId collector);
  void scan_tick(things::AssetId collector);
  void handle_advert(const net::Message& m);
  void handle_beacon_at_collector(const net::Message& m);
  void handle_probe_at(things::AssetId id, const net::Message& m);
  void relay_beacon(things::AssetId relay, const net::Message& m);

  Advertisement make_advertisement(const things::Asset& a) const;

  things::World& world_;
  net::Dispatcher& disp_;
  std::vector<things::AssetId> collectors_;
  DiscoveryConfig cfg_;
  AssetDirectory directory_;
  std::vector<bool> responder_installed_;
  std::uint32_t next_probe_seq_ = 1;
  /// Flood dedup: highest probe seq each asset has handled.
  std::unordered_map<things::AssetId, std::uint32_t> probe_seen_;
  /// Beacon-relay rate limit: (relay, subject) -> last forward time.
  std::map<std::pair<things::AssetId, std::uint32_t>, sim::SimTime> relay_last_;
  bool started_ = false;
};

}  // namespace iobt::discovery
