#pragma once
// Continual learning with automatic context detection (§V-B: "new
// information can often erase previously learned knowledge ... the system
// must learn the different relevant underlying contexts automatically").
//
// The ContextualLearner watches its own online loss with an EWMA detector;
// a sustained loss spike signals a context switch. It then either recalls
// a previously learned context model (if one fits the new data) or spawns
// a fresh model. The monolithic baseline (one model trained on everything)
// exhibits catastrophic forgetting; the contextual learner does not — that
// contrast is experiment-visible via `accuracy_on(context)`.

#include <memory>
#include <vector>

#include "learn/model.h"

namespace iobt::learn {

struct ContextualConfig {
  std::size_t dim = 4;
  double lr = 0.1;
  /// Loss EWMA factor and spike threshold (multiple of baseline loss).
  double loss_alpha = 0.05;
  double switch_threshold = 2.0;
  /// Samples of evidence required before a switch decision.
  int min_samples_before_switch = 30;
  /// When probing stored models for recall, the best model must beat a
  /// fresh-model loss estimate by this margin to be recalled.
  double recall_margin = 0.1;
  /// Recent window used to evaluate candidate models at a switch.
  std::size_t probe_window = 40;
};

class ContextualLearner {
 public:
  explicit ContextualLearner(ContextualConfig cfg);

  /// Feeds one labelled example (online training). Returns true when this
  /// sample triggered a context switch.
  bool observe(const Example& e);

  double predict(const Vec& x) const { return active().predict(x); }

  std::size_t context_count() const { return bank_.size(); }
  std::size_t active_context() const { return active_; }
  std::size_t switches_detected() const { return switches_; }

  /// Accuracy of the model that would be selected for `probe` data: the
  /// learner picks its best-fitting stored model (the recall path).
  double accuracy_with_best_model(const Dataset& probe) const;

 private:
  const LogisticModel& active() const { return bank_[active_]; }
  LogisticModel& active() { return bank_[active_]; }
  void maybe_switch();

  ContextualConfig cfg_;
  std::vector<LogisticModel> bank_;
  std::size_t active_ = 0;
  double loss_ewma_ = 0.0;
  double baseline_loss_ = -1.0;
  int samples_in_context_ = 0;
  std::size_t switches_ = 0;
  Dataset recent_;
};

/// Baseline for the forgetting experiment: one model trained on the same
/// stream, no context machinery.
class MonolithicLearner {
 public:
  MonolithicLearner(std::size_t dim, double lr) : model_(dim), lr_(lr) {}

  void observe(const Example& e) {
    const Vec g = model_.gradient({e});
    Vec w = model_.params();
    axpy(-lr_, g, w);
    model_.set_params(std::move(w));
  }
  double predict(const Vec& x) const { return model_.predict(x); }

 private:
  LogisticModel model_;
  double lr_;
};

}  // namespace iobt::learn
