#pragma once
// Learning safety: formal robustness bounds for learned models (§V-B,
// refs [34-35]: "extending symbolic reasoning engines ... to establish
// safety bounds on data-driven learned models").
//
// Interval Bound Propagation (IBP) pushes an epsilon-ball around an input
// through the network's affine + ReLU layers and checks whether the
// output interval stays on the correct side of the decision boundary. IBP
// is sound (a certificate is a proof) but incomplete (failure to certify
// is not a counterexample) — the tests verify exactly that contract.

#include <vector>

#include "learn/model.h"

namespace iobt::learn {

struct RobustnessResult {
  /// Of the probed examples, the fraction whose prediction is *certified*
  /// robust within the epsilon box.
  double certified_fraction = 0.0;
  /// Fraction predicted correctly at the center point (upper bounds the
  /// certified fraction).
  double clean_accuracy = 0.0;
  std::size_t examples = 0;
};

/// Certifies `model` on each example of `probe` within an L-inf ball of
/// radius epsilon. An example is certified iff the entire output interval
/// classifies it as its true label.
RobustnessResult certify_robustness(const MlpModel& model, const Dataset& probe,
                                    double epsilon);

/// True iff the single input `x` with label `y` is certified at epsilon.
bool certified_at(const MlpModel& model, const Vec& x, double y, double epsilon);

/// Largest epsilon (within [0, hi], to `tol`) at which `x` is certified —
/// bisection on the monotone certification predicate.
double max_certified_epsilon(const MlpModel& model, const Vec& x, double y,
                             double hi = 1.0, double tol = 1e-4);

}  // namespace iobt::learn
