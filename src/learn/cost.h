#pragma once
// Cost-aware learning topology activation (§V-B, refs [28-33]: "one might
// activate different network topologies based on the trade-off between
// network learning and communication ... design of dynamic IoBTs that
// self-configure to jointly optimize both learning cost and decision
// making accuracy").
//
// A GossipTrainer exposes one training round at a time so the topology can
// change between rounds. Static evaluation produces accuracy-vs-bytes
// curves per topology; the ActivationPolicy starts on the cheapest
// topology and escalates to denser ones when marginal accuracy per round
// stalls — buying consensus bandwidth only when it pays.

#include <string>
#include <vector>

#include "learn/federated.h"

namespace iobt::learn {

/// Round-steppable decentralized trainer (no Byzantine machinery — this is
/// the cost experiment; robustness is E6's business).
class GossipTrainer {
 public:
  GossipTrainer(std::size_t nodes, std::size_t dim, const Dataset& train,
                double label_skew, sim::Rng& rng);

  /// Runs one round (local SGD + neighbor averaging) over `topo`, which
  /// must have exactly `nodes` vertices. Returns bytes communicated.
  std::uint64_t round(const net::Topology& topo, std::size_t local_steps,
                      std::size_t batch_size, double lr, sim::Rng& rng,
                      std::size_t round_index);

  double mean_accuracy(const Dataset& test) const;
  double disagreement() const;
  std::size_t nodes() const { return models_.size(); }

 private:
  std::vector<LogisticModel> models_;
  std::vector<Dataset> shards_;
  std::size_t dim_;
};

struct NamedTopology {
  std::string name;
  net::Topology topo;
  /// Relative radio cost multiplier (denser topologies may also use more
  /// expensive long links); 1.0 = plain per-edge accounting.
  double byte_multiplier = 1.0;
};

struct CostCurvePoint {
  std::size_t round = 0;
  std::uint64_t cumulative_bytes = 0;
  double accuracy = 0.0;
};

struct CostCurve {
  std::string topology;
  std::vector<CostCurvePoint> points;
};

/// Trains to `rounds` on one fixed topology, sampling the curve each round.
CostCurve evaluate_topology(const NamedTopology& nt, const Dataset& train,
                            const Dataset& test, std::size_t dim,
                            std::size_t rounds, std::size_t local_steps,
                            std::size_t batch_size, double lr, double label_skew,
                            sim::Rng& rng);

struct ActivationResult {
  CostCurve curve;                    // labelled "adaptive"
  std::vector<std::size_t> active_topology_per_round;
  std::uint64_t total_bytes = 0;
  double final_accuracy = 0.0;
};

/// Adaptive policy over `options` (assumed ordered cheap -> dense):
/// escalates when accuracy gained over the last `patience` rounds is below
/// `min_gain`; never de-escalates (models only improve monotonically in
/// expectation, and de-escalation thrashes).
ActivationResult cost_aware_train(const std::vector<NamedTopology>& options,
                                  const Dataset& train, const Dataset& test,
                                  std::size_t dim, std::size_t rounds,
                                  std::size_t local_steps, std::size_t batch_size,
                                  double lr, double label_skew, std::size_t patience,
                                  double min_gain, sim::Rng& rng);

}  // namespace iobt::learn
