#pragma once
// Byzantine-robust aggregation of parameter/update vectors (§V-B: "new
// theories and algorithms are needed that ... tolerate a wide array of
// failures and adversarial compromises of learning nodes").
//
// Rules implemented:
//   * mean            — the non-robust FedAvg baseline
//   * coordinate median
//   * trimmed mean    — drops the k largest and smallest per coordinate
//   * Krum            — selects the vector closest to its n-f-2 nearest
//                       neighbors (Blanchard et al.)
//   * geometric median — Weiszfeld iteration
//
// All rules are deterministic pure functions of their input.

#include <string>
#include <vector>

#include "learn/linalg.h"

namespace iobt::learn {

enum class AggregationRule { kMean, kMedian, kTrimmedMean, kKrum, kGeometricMedian };

std::string to_string(AggregationRule r);

Vec aggregate_mean(const std::vector<Vec>& updates);
Vec aggregate_median(const std::vector<Vec>& updates);
/// Trims `trim` entries from each end per coordinate. Requires
/// updates.size() > 2 * trim.
Vec aggregate_trimmed_mean(const std::vector<Vec>& updates, std::size_t trim);
/// Krum with an assumed bound `f` on the number of Byzantine inputs.
Vec aggregate_krum(const std::vector<Vec>& updates, std::size_t f);
Vec aggregate_geometric_median(const std::vector<Vec>& updates,
                               int max_iters = 100, double tol = 1e-9);

/// Dispatcher used by the trainers. `f` is the assumed Byzantine bound
/// (used by Krum and as the trim count).
Vec aggregate(AggregationRule rule, const std::vector<Vec>& updates, std::size_t f);

}  // namespace iobt::learn
