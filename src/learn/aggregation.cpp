#include "learn/aggregation.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace iobt::learn {

std::string to_string(AggregationRule r) {
  switch (r) {
    case AggregationRule::kMean: return "mean";
    case AggregationRule::kMedian: return "median";
    case AggregationRule::kTrimmedMean: return "trimmed_mean";
    case AggregationRule::kKrum: return "krum";
    case AggregationRule::kGeometricMedian: return "geometric_median";
  }
  return "unknown";
}

Vec aggregate_mean(const std::vector<Vec>& updates) {
  assert(!updates.empty());
  return mean_of(updates);
}

Vec aggregate_median(const std::vector<Vec>& updates) {
  assert(!updates.empty());
  const std::size_t dim = updates[0].size();
  Vec out(dim);
  std::vector<double> column(updates.size());
  for (std::size_t k = 0; k < dim; ++k) {
    for (std::size_t i = 0; i < updates.size(); ++i) column[i] = updates[i][k];
    const std::size_t mid = column.size() / 2;
    std::nth_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid),
                     column.end());
    if (column.size() % 2 == 1) {
      out[k] = column[mid];
    } else {
      const double hi = column[mid];
      const double lo =
          *std::max_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid));
      out[k] = (lo + hi) / 2.0;
    }
  }
  return out;
}

Vec aggregate_trimmed_mean(const std::vector<Vec>& updates, std::size_t trim) {
  assert(!updates.empty());
  if (updates.size() <= 2 * trim) {
    throw std::invalid_argument("trimmed_mean: need more inputs than 2*trim");
  }
  const std::size_t dim = updates[0].size();
  Vec out(dim, 0.0);
  std::vector<double> column(updates.size());
  for (std::size_t k = 0; k < dim; ++k) {
    for (std::size_t i = 0; i < updates.size(); ++i) column[i] = updates[i][k];
    std::sort(column.begin(), column.end());
    double s = 0.0;
    for (std::size_t i = trim; i < column.size() - trim; ++i) s += column[i];
    out[k] = s / static_cast<double>(column.size() - 2 * trim);
  }
  return out;
}

Vec aggregate_krum(const std::vector<Vec>& updates, std::size_t f) {
  assert(!updates.empty());
  const std::size_t n = updates.size();
  // Krum needs n >= 2f + 3 for its guarantee; degrade gracefully by
  // shrinking the neighborhood if the caller is over-optimistic.
  std::size_t closest = (n > f + 2) ? n - f - 2 : 1;
  closest = std::min(closest, n - 1);
  if (n == 1) return updates[0];

  std::vector<std::vector<double>> d2(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d2[i][j] = d2[j][i] = distance2(updates[i], updates[j]);
    }
  }
  std::size_t best = 0;
  double best_score = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row;
    row.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) row.push_back(d2[i][j]);
    }
    std::partial_sort(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(closest),
                      row.end());
    double score = 0.0;
    for (std::size_t k = 0; k < closest; ++k) score += row[k];
    if (i == 0 || score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return updates[best];
}

Vec aggregate_geometric_median(const std::vector<Vec>& updates, int max_iters,
                               double tol) {
  assert(!updates.empty());
  Vec y = mean_of(updates);
  for (int it = 0; it < max_iters; ++it) {
    Vec num = zeros(y.size());
    double denom = 0.0;
    bool at_point = false;
    for (const Vec& u : updates) {
      const double d = std::sqrt(distance2(y, u));
      if (d < 1e-12) {
        at_point = true;
        continue;  // Weiszfeld singularity: skip coincident point
      }
      axpy(1.0 / d, u, num);
      denom += 1.0 / d;
    }
    if (denom <= 0.0) return y;  // all points coincide with y
    scale(num, 1.0 / denom);
    const double step2 = distance2(num, y);
    y = std::move(num);
    if (step2 < tol * tol && !at_point) break;
  }
  return y;
}

Vec aggregate(AggregationRule rule, const std::vector<Vec>& updates, std::size_t f) {
  switch (rule) {
    case AggregationRule::kMean: return aggregate_mean(updates);
    case AggregationRule::kMedian: return aggregate_median(updates);
    case AggregationRule::kTrimmedMean: {
      std::size_t trim = f;
      while (trim > 0 && updates.size() <= 2 * trim) --trim;
      return trim == 0 ? aggregate_mean(updates)
                       : aggregate_trimmed_mean(updates, trim);
    }
    case AggregationRule::kKrum: return aggregate_krum(updates, f);
    case AggregationRule::kGeometricMedian: return aggregate_geometric_median(updates);
  }
  return aggregate_mean(updates);
}

}  // namespace iobt::learn
