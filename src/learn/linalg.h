#pragma once
// Minimal dense vector/matrix helpers for the learning substrate. Plain
// std::vector<double> keeps the code obvious; sizes here are small enough
// (models of 10^2..10^4 parameters) that cache behaviour, not BLAS,
// dominates.

#include <cassert>
#include <cmath>
#include <vector>

namespace iobt::learn {

using Vec = std::vector<double>;

inline double dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// y += alpha * x
inline void axpy(double alpha, const Vec& x, Vec& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

inline void scale(Vec& v, double k) {
  for (double& x : v) x *= k;
}

inline double norm2(const Vec& v) { return dot(v, v); }
inline double norm(const Vec& v) { return std::sqrt(norm2(v)); }

inline double distance2(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

inline Vec zeros(std::size_t n) { return Vec(n, 0.0); }

inline Vec mean_of(const std::vector<Vec>& vs) {
  assert(!vs.empty());
  Vec out = zeros(vs[0].size());
  for (const Vec& v : vs) axpy(1.0, v, out);
  scale(out, 1.0 / static_cast<double>(vs.size()));
  return out;
}

inline double sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace iobt::learn
