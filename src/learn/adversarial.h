#pragma once
// Adversarial examples and adversarial training (§V-B, ref [27] Goodfellow
// et al.): "Adversarial attacks may supply malicious inputs (i.e., inputs
// modified to yield erroneous model outputs) ... In an IoBT environment,
// an adversary may control red/gray nodes and observe (hence, label) our
// digital and physical reactions to inputs of its choice."
//
// Implemented:
//   * FGSM  — one-step L-inf attack: x' = x + eps * sign(grad_x loss)
//   * PGD   — iterated FGSM with projection back into the eps-ball (the
//             standard strong first-order adversary)
//   * adversarial training — minibatch SGD where a configurable fraction
//     of each batch is replaced by PGD examples generated on the fly
//
// Together with learn/safety.h this closes the paper's loop: attack,
// empirical defense, and formal certification of the result.

#include "learn/model.h"

namespace iobt::learn {

/// Gradient of the per-example loss with respect to the INPUT x (not the
/// parameters), for the given model. Exposed for tests.
Vec input_gradient(const MlpModel& model, const Example& e);
Vec input_gradient(const LogisticModel& model, const Example& e);

/// One-step fast gradient sign attack.
template <typename Model>
Vec fgsm(const Model& model, const Example& e, double epsilon) {
  const Vec g = input_gradient(model, e);
  Vec x = e.x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] += epsilon * (g[i] > 0 ? 1.0 : (g[i] < 0 ? -1.0 : 0.0));
  }
  return x;
}

struct PgdConfig {
  double epsilon = 0.2;   // L-inf ball radius
  double step = 0.05;     // per-iteration step
  int iterations = 10;
};

/// Projected gradient descent attack within the L-inf ball around e.x.
template <typename Model>
Vec pgd(const Model& model, const Example& e, const PgdConfig& cfg) {
  Vec x = e.x;
  for (int it = 0; it < cfg.iterations; ++it) {
    Example cur{x, e.y};
    const Vec g = input_gradient(model, cur);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += cfg.step * (g[i] > 0 ? 1.0 : (g[i] < 0 ? -1.0 : 0.0));
      // Project back into the ball.
      x[i] = std::clamp(x[i], e.x[i] - cfg.epsilon, e.x[i] + cfg.epsilon);
    }
  }
  return x;
}

/// Accuracy under attack: every probe example is adversarially perturbed
/// before prediction. This is the *empirical* robustness upper bound that
/// IBP certification (learn/safety.h) lower-bounds.
template <typename Model>
double robust_accuracy_pgd(const Model& model, const Dataset& probe,
                           const PgdConfig& cfg) {
  if (probe.empty()) return 0.0;
  std::size_t ok = 0;
  for (const Example& e : probe) {
    const Vec adv = pgd(model, e, cfg);
    if ((model.predict(adv) > 0.5) == (e.y > 0.5)) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(probe.size());
}

struct AdversarialTrainConfig {
  std::size_t steps = 3000;
  std::size_t batch_size = 32;
  double lr = 0.2;
  /// Fraction of each batch replaced by PGD examples.
  double adversarial_fraction = 0.5;
  PgdConfig attack;
};

/// Adversarial training of an MLP in place.
void adversarial_train(MlpModel& model, const Dataset& train,
                       const AdversarialTrainConfig& cfg, sim::Rng& rng);

}  // namespace iobt::learn
