#include "learn/continual.h"

#include <algorithm>

namespace iobt::learn {

ContextualLearner::ContextualLearner(ContextualConfig cfg) : cfg_(cfg) {
  bank_.emplace_back(cfg_.dim);
}

bool ContextualLearner::observe(const Example& e) {
  // Online loss of the active model BEFORE training on the sample.
  const double loss = active().loss({e});
  loss_ewma_ = samples_in_context_ == 0
                   ? loss
                   : cfg_.loss_alpha * loss + (1.0 - cfg_.loss_alpha) * loss_ewma_;
  ++samples_in_context_;

  recent_.push_back(e);
  if (recent_.size() > cfg_.probe_window) recent_.erase(recent_.begin());

  // Establish the healthy baseline once the context has settled.
  if (samples_in_context_ == cfg_.min_samples_before_switch) {
    baseline_loss_ = std::max(0.05, loss_ewma_);
  }

  bool switched = false;
  if (baseline_loss_ > 0.0 && samples_in_context_ > cfg_.min_samples_before_switch &&
      loss_ewma_ > cfg_.switch_threshold * baseline_loss_) {
    maybe_switch();
    switched = true;
  }

  // One SGD step on the (possibly new) active model.
  const Vec g = active().gradient({e});
  Vec w = active().params();
  axpy(-cfg_.lr, g, w);
  active().set_params(std::move(w));
  return switched;
}

void ContextualLearner::maybe_switch() {
  ++switches_;
  // Probe the bank: does a stored model already fit the recent window?
  std::size_t best = bank_.size();
  double best_loss = 1e300;
  for (std::size_t i = 0; i < bank_.size(); ++i) {
    if (i == active_) continue;
    const double l = bank_[i].loss(recent_);
    if (l < best_loss) {
      best_loss = l;
      best = i;
    }
  }
  // A fresh logistic model at the origin predicts 0.5 everywhere:
  // loss = ln 2. Recall only if a stored model clearly beats that.
  constexpr double kFreshLoss = 0.6931471805599453;
  if (best < bank_.size() && best_loss < kFreshLoss - cfg_.recall_margin) {
    active_ = best;
  } else {
    bank_.emplace_back(cfg_.dim);
    active_ = bank_.size() - 1;
  }
  samples_in_context_ = 0;
  loss_ewma_ = 0.0;
  baseline_loss_ = -1.0;
}

double ContextualLearner::accuracy_with_best_model(const Dataset& probe) const {
  double best = 0.0;
  for (const auto& m : bank_) {
    best = std::max(best,
                    accuracy(probe, [&](const Vec& x) { return m.predict(x); }));
  }
  return best;
}

}  // namespace iobt::learn
