#include "learn/federated.h"

#include <cassert>

namespace iobt::learn {

namespace {

/// Corrupts an honest update in place according to the Byzantine mode.
Vec corrupt(const Vec& honest, ByzantineMode mode, sim::Rng& rng) {
  Vec out = honest;
  switch (mode) {
    case ByzantineMode::kNone:
      break;
    case ByzantineMode::kSignFlip:
      scale(out, -4.0);
      break;
    case ByzantineMode::kRandom: {
      const double mag = std::max(1.0, norm(honest));
      for (double& v : out) v = rng.normal(0.0, mag);
      break;
    }
    case ByzantineMode::kShift:
      for (double& v : out) v += 10.0;
      break;
  }
  return out;
}

std::uint64_t model_bytes(std::size_t params) {
  return static_cast<std::uint64_t>(params) * sizeof(double);
}

}  // namespace

TrainResult federated_train(const Dataset& train, const Dataset& test,
                            std::size_t dim, const FederatedConfig& cfg,
                            sim::Rng& rng) {
  assert(cfg.workers > 0);
  TrainResult res;
  sim::Rng shard_rng = rng.child("shard");
  const auto shards = shard(train, cfg.workers, cfg.label_skew, shard_rng);

  LogisticModel global(dim);
  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    std::vector<Vec> updates;
    updates.reserve(cfg.workers);
    for (std::size_t w = 0; w < cfg.workers; ++w) {
      // Each worker starts from the global model and runs local steps.
      LogisticModel local(dim);
      local.set_params(global.params());
      sim::Rng wrng = rng.child(0xFED00000ULL + w).child(round);
      local.sgd(shards[w], cfg.local_steps, cfg.batch_size, cfg.lr, wrng);
      // The update is the parameter delta.
      Vec delta = local.params();
      axpy(-1.0, global.params(), delta);
      if (w < cfg.byzantine_count) {
        delta = corrupt(delta, cfg.byzantine_mode, wrng);
      }
      updates.push_back(std::move(delta));
      // Down: model broadcast; up: update. Both one model's worth.
      res.bytes_communicated += 2 * model_bytes(global.param_count());
    }
    const Vec agg = aggregate(cfg.rule, updates, cfg.assumed_f);
    Vec params = global.params();
    axpy(1.0, agg, params);
    global.set_params(std::move(params));

    res.accuracy_per_round.push_back(
        accuracy(test, [&](const Vec& x) { return global.predict(x); }));
  }
  res.final_params = global.params();
  res.final_accuracy =
      res.accuracy_per_round.empty() ? 0.0 : res.accuracy_per_round.back();
  return res;
}

TrainResult gossip_train(const net::Topology& topo, const Dataset& train,
                         const Dataset& test, std::size_t dim,
                         const GossipConfig& cfg, sim::Rng& rng) {
  const std::size_t n = topo.node_count();
  assert(n > 0);
  TrainResult res;
  sim::Rng shard_rng = rng.child("shard");
  const auto shards = shard(train, n, cfg.label_skew, shard_rng);

  std::vector<LogisticModel> models(n, LogisticModel(dim));
  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    // Local steps.
    for (std::size_t v = 0; v < n; ++v) {
      sim::Rng vrng = rng.child(0x90551900ULL + v).child(round);
      models[v].sgd(shards[v], cfg.local_steps, cfg.batch_size, cfg.lr, vrng);
    }
    // Edge liveness this round.
    sim::Rng link_rng = rng.child("links").child(round);
    const auto edges = topo.edges();
    std::vector<bool> up(edges.size(), true);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      up[e] = link_rng.bernoulli(cfg.link_up_probability);
    }
    // Gossip averaging: every node aggregates its own params with its
    // reachable neighbors' params (synchronous, like push-sum w/o weights).
    std::vector<Vec> next(n);
    for (std::size_t v = 0; v < n; ++v) {
      std::vector<Vec> neighborhood;
      neighborhood.push_back(models[v].params());
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (!up[e]) continue;
        std::size_t other = n;
        if (edges[e].a == v) other = edges[e].b;
        if (edges[e].b == v) other = edges[e].a;
        if (other == n) continue;
        Vec p = models[other].params();
        if (other < cfg.byzantine_count) {
          sim::Rng brng = rng.child(0xBAD00000ULL + other).child(round);
          p = corrupt(p, cfg.byzantine_mode, brng);
        }
        neighborhood.push_back(std::move(p));
        res.bytes_communicated += model_bytes(models[v].param_count());
      }
      next[v] = aggregate(cfg.rule, neighborhood, cfg.assumed_f);
    }
    for (std::size_t v = 0; v < n; ++v) models[v].set_params(std::move(next[v]));

    // Mean accuracy over honest nodes.
    double acc = 0.0;
    std::size_t honest = 0;
    for (std::size_t v = cfg.byzantine_count; v < n; ++v) {
      acc += accuracy(test, [&](const Vec& x) { return models[v].predict(x); });
      ++honest;
    }
    res.accuracy_per_round.push_back(honest ? acc / static_cast<double>(honest) : 0.0);
  }
  // Final params: mean of honest nodes (reporting convention).
  std::vector<Vec> honest_params;
  for (std::size_t v = cfg.byzantine_count; v < n; ++v) {
    honest_params.push_back(models[v].params());
  }
  res.final_params = honest_params.empty() ? Vec{} : mean_of(honest_params);
  res.final_accuracy =
      res.accuracy_per_round.empty() ? 0.0 : res.accuracy_per_round.back();
  return res;
}

double parameter_disagreement(const std::vector<Vec>& params) {
  if (params.size() < 2) return 0.0;
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    for (std::size_t j = i + 1; j < params.size(); ++j) {
      total += std::sqrt(distance2(params[i], params[j]));
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace iobt::learn
