#include "learn/cost.h"

#include <cassert>

namespace iobt::learn {

GossipTrainer::GossipTrainer(std::size_t nodes, std::size_t dim, const Dataset& train,
                             double label_skew, sim::Rng& rng)
    : models_(nodes, LogisticModel(dim)), dim_(dim) {
  sim::Rng shard_rng = rng.child("shard");
  shards_ = shard(train, nodes, label_skew, shard_rng);
}

std::uint64_t GossipTrainer::round(const net::Topology& topo, std::size_t local_steps,
                                   std::size_t batch_size, double lr, sim::Rng& rng,
                                   std::size_t round_index) {
  assert(topo.node_count() == models_.size());
  const std::size_t n = models_.size();
  for (std::size_t v = 0; v < n; ++v) {
    sim::Rng vrng = rng.child(0xC057A100ULL + v).child(round_index);
    models_[v].sgd(shards_[v], local_steps, batch_size, lr, vrng);
  }
  std::uint64_t bytes = 0;
  const std::uint64_t per_model =
      static_cast<std::uint64_t>(models_[0].param_count()) * sizeof(double);
  std::vector<Vec> next(n);
  for (std::size_t v = 0; v < n; ++v) {
    std::vector<Vec> neighborhood;
    neighborhood.push_back(models_[v].params());
    for (const auto& nb : topo.neighbors(static_cast<net::NodeId>(v))) {
      neighborhood.push_back(models_[nb.id].params());
      bytes += per_model;
    }
    next[v] = mean_of(neighborhood);
  }
  for (std::size_t v = 0; v < n; ++v) models_[v].set_params(std::move(next[v]));
  return bytes;
}

double GossipTrainer::mean_accuracy(const Dataset& test) const {
  double acc = 0.0;
  for (const auto& m : models_) {
    acc += accuracy(test, [&](const Vec& x) { return m.predict(x); });
  }
  return models_.empty() ? 0.0 : acc / static_cast<double>(models_.size());
}

double GossipTrainer::disagreement() const {
  std::vector<Vec> ps;
  ps.reserve(models_.size());
  for (const auto& m : models_) ps.push_back(m.params());
  return parameter_disagreement(ps);
}

CostCurve evaluate_topology(const NamedTopology& nt, const Dataset& train,
                            const Dataset& test, std::size_t dim, std::size_t rounds,
                            std::size_t local_steps, std::size_t batch_size, double lr,
                            double label_skew, sim::Rng& rng) {
  CostCurve curve;
  curve.topology = nt.name;
  GossipTrainer trainer(nt.topo.node_count(), dim, train, label_skew, rng);
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::uint64_t b = trainer.round(nt.topo, local_steps, batch_size, lr, rng, r);
    total += static_cast<std::uint64_t>(static_cast<double>(b) * nt.byte_multiplier);
    curve.points.push_back({r, total, trainer.mean_accuracy(test)});
  }
  return curve;
}

ActivationResult cost_aware_train(const std::vector<NamedTopology>& options,
                                  const Dataset& train, const Dataset& test,
                                  std::size_t dim, std::size_t rounds,
                                  std::size_t local_steps, std::size_t batch_size,
                                  double lr, double label_skew, std::size_t patience,
                                  double min_gain, sim::Rng& rng) {
  assert(!options.empty());
  ActivationResult res;
  res.curve.topology = "adaptive";
  GossipTrainer trainer(options[0].topo.node_count(), dim, train, label_skew, rng);

  std::size_t active = 0;
  std::vector<double> recent_acc;
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto& nt = options[active];
    const std::uint64_t b = trainer.round(nt.topo, local_steps, batch_size, lr, rng, r);
    res.total_bytes +=
        static_cast<std::uint64_t>(static_cast<double>(b) * nt.byte_multiplier);
    const double acc = trainer.mean_accuracy(test);
    res.curve.points.push_back({r, res.total_bytes, acc});
    res.active_topology_per_round.push_back(active);

    recent_acc.push_back(acc);
    if (recent_acc.size() > patience + 1) recent_acc.erase(recent_acc.begin());
    // Escalate when the last `patience` rounds bought less than min_gain.
    if (active + 1 < options.size() && recent_acc.size() == patience + 1 &&
        recent_acc.back() - recent_acc.front() < min_gain) {
      ++active;
      recent_acc.clear();
    }
  }
  res.final_accuracy = res.curve.points.empty() ? 0.0 : res.curve.points.back().accuracy;
  return res;
}

}  // namespace iobt::learn
