#pragma once
// Synthetic datasets for the distributed-learning experiments: binary
// classification with controllable difficulty, plus non-IID sharding
// across heterogeneous nodes (the paper's wearable-to-cluster spread,
// §V-B) and distribution shift for continual learning.

#include <utility>
#include <vector>

#include "learn/linalg.h"
#include "sim/rng.h"

namespace iobt::learn {

struct Example {
  Vec x;
  double y = 0.0;  // label in {0, 1}
};

using Dataset = std::vector<Example>;

/// Two Gaussian blobs separated along a random direction; label noise
/// flips a fraction of labels. Linearly separable up to the noise.
Dataset make_blobs(std::size_t n, std::size_t dim, double separation,
                   double label_noise, sim::Rng& rng);

/// Harder nonlinear task: label = 1 iff the point lies inside an annulus
/// (tests the MLP path).
Dataset make_rings(std::size_t n, std::size_t dim, sim::Rng& rng);

/// Splits a dataset into `shards` parts. `label_skew` in [0,1]: 0 = IID;
/// 1 = each shard sees almost exclusively one label (the pathological
/// non-IID case for naive averaging).
std::vector<Dataset> shard(const Dataset& data, std::size_t shards, double label_skew,
                           sim::Rng& rng);

/// A drifting task for continual learning: context c rotates the decision
/// boundary. Returns samples from context `c`.
Dataset make_context(std::size_t n, std::size_t dim, std::size_t context,
                     sim::Rng& rng);

/// Fraction of correct predictions of `predict` over `data`.
template <typename PredictFn>
double accuracy(const Dataset& data, PredictFn&& predict) {
  if (data.empty()) return 0.0;
  std::size_t ok = 0;
  for (const Example& e : data) {
    if ((predict(e.x) > 0.5) == (e.y > 0.5)) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(data.size());
}

}  // namespace iobt::learn
