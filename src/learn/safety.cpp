#include "learn/safety.h"

namespace iobt::learn {

bool certified_at(const MlpModel& model, const Vec& x, double y, double epsilon) {
  Vec lo = x, hi = x;
  for (double& v : lo) v -= epsilon;
  for (double& v : hi) v += epsilon;
  const auto [p_lo, p_hi] = model.output_bounds(lo, hi);
  return y > 0.5 ? p_lo > 0.5 : p_hi < 0.5;
}

RobustnessResult certify_robustness(const MlpModel& model, const Dataset& probe,
                                    double epsilon) {
  RobustnessResult r;
  r.examples = probe.size();
  if (probe.empty()) return r;
  std::size_t certified = 0, clean = 0;
  for (const Example& e : probe) {
    const bool correct = (model.predict(e.x) > 0.5) == (e.y > 0.5);
    if (correct) ++clean;
    if (correct && certified_at(model, e.x, e.y, epsilon)) ++certified;
  }
  r.certified_fraction = static_cast<double>(certified) / static_cast<double>(probe.size());
  r.clean_accuracy = static_cast<double>(clean) / static_cast<double>(probe.size());
  return r;
}

double max_certified_epsilon(const MlpModel& model, const Vec& x, double y, double hi,
                             double tol) {
  if (!certified_at(model, x, y, 0.0)) return 0.0;  // misclassified center
  double lo = 0.0;
  while (hi - lo > tol) {
    const double mid = (lo + hi) / 2.0;
    if (certified_at(model, x, y, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace iobt::learn
