#include "learn/data.h"

#include <algorithm>
#include <cmath>

namespace iobt::learn {

Dataset make_blobs(std::size_t n, std::size_t dim, double separation,
                   double label_noise, sim::Rng& rng) {
  // Fixed diagonal separation direction: every make_blobs call with the
  // same dim samples the SAME distribution, so independently generated
  // train and test sets are exchangeable (a randomized direction would
  // silently make them different tasks).
  Vec dir(dim, 1.0 / std::sqrt(static_cast<double>(dim)));

  Dataset out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = rng.bernoulli(0.5);
    Example e;
    e.x.resize(dim);
    const double offset = positive ? separation / 2 : -separation / 2;
    for (std::size_t k = 0; k < dim; ++k) {
      e.x[k] = offset * dir[k] + rng.normal();
    }
    e.y = positive ? 1.0 : 0.0;
    if (rng.bernoulli(label_noise)) e.y = 1.0 - e.y;
    out.push_back(std::move(e));
  }
  return out;
}

Dataset make_rings(std::size_t n, std::size_t dim, sim::Rng& rng) {
  Dataset out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Example e;
    e.x.resize(dim);
    for (double& v : e.x) v = rng.normal();
    // Label by the norm of the first two coordinates: inside r<1 or
    // outside r>2 -> class 0; the annulus 1<=r<=2 -> class 1.
    const double r = std::hypot(e.x[0], dim > 1 ? e.x[1] : 0.0);
    e.y = (r >= 1.0 && r <= 2.0) ? 1.0 : 0.0;
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<Dataset> shard(const Dataset& data, std::size_t shards, double label_skew,
                           sim::Rng& rng) {
  std::vector<Dataset> out(shards);
  if (shards == 0) return out;
  for (const Example& e : data) {
    std::size_t target;
    if (rng.bernoulli(label_skew)) {
      // Skewed placement: label determines the shard block — the FIRST
      // half of the shards collects label 0, the second half label 1.
      // Contiguous blocks model spatially clustered data and are the hard
      // case for local gossip (information must cross the block boundary);
      // an alternating assignment would hand every ring neighborhood both
      // labels and hide the effect.
      const bool one = e.y > 0.5;
      const std::size_t half = shards / 2;
      std::size_t lo = one ? half : 0;
      std::size_t hi = one ? shards - 1 : (half == 0 ? 0 : half - 1);
      if (lo > hi) {  // degenerate single-shard case
        lo = 0;
        hi = shards - 1;
      }
      target = lo + static_cast<std::size_t>(
                        rng.uniform_int(0, static_cast<std::int64_t>(hi - lo)));
    } else {
      target = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(shards) - 1));
    }
    out[target].push_back(e);
  }
  return out;
}

Dataset make_context(std::size_t n, std::size_t dim, std::size_t context,
                     sim::Rng& rng) {
  // Context rotates the separating direction in the first two dims by
  // 60 degrees per context — enough that a single linear model cannot
  // serve all contexts at once.
  const double theta = static_cast<double>(context) * (3.14159265358979 / 3.0);
  Dataset out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = rng.bernoulli(0.5);
    Example e;
    e.x.resize(dim);
    for (double& v : e.x) v = rng.normal();
    const double offset = positive ? 1.5 : -1.5;
    e.x[0] += offset * std::cos(theta);
    if (dim > 1) e.x[1] += offset * std::sin(theta);
    e.y = positive ? 1.0 : 0.0;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace iobt::learn
