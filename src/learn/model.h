#pragma once
// Models for the distributed-learning experiments: logistic regression
// (the workhorse — convex, so convergence effects isolate the *distributed*
// phenomena) and a small MLP (for the nonlinear task and the IBP safety
// verifier).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "learn/data.h"
#include "learn/linalg.h"
#include "sim/rng.h"

namespace iobt::learn {

/// Logistic regression with an explicit bias (folded as the last weight).
class LogisticModel {
 public:
  explicit LogisticModel(std::size_t dim) : w_(dim + 1, 0.0), dim_(dim) {}

  std::size_t dim() const { return dim_; }
  std::size_t param_count() const { return w_.size(); }
  const Vec& params() const { return w_; }
  void set_params(Vec w) { w_ = std::move(w); }

  double predict(const Vec& x) const {
    double z = w_[dim_];
    for (std::size_t i = 0; i < dim_; ++i) z += w_[i] * x[i];
    return sigmoid(z);
  }

  /// Mean cross-entropy gradient over a batch (returned, not applied).
  Vec gradient(const Dataset& batch) const {
    Vec g(w_.size(), 0.0);
    if (batch.empty()) return g;
    for (const Example& e : batch) {
      const double err = predict(e.x) - e.y;
      for (std::size_t i = 0; i < dim_; ++i) g[i] += err * e.x[i];
      g[dim_] += err;
    }
    scale(g, 1.0 / static_cast<double>(batch.size()));
    return g;
  }

  double loss(const Dataset& batch) const {
    if (batch.empty()) return 0.0;
    double total = 0.0;
    for (const Example& e : batch) {
      const double p = std::clamp(predict(e.x), 1e-12, 1.0 - 1e-12);
      total += e.y > 0.5 ? -std::log(p) : -std::log(1.0 - p);
    }
    return total / static_cast<double>(batch.size());
  }

  /// Gradient of the per-example loss w.r.t. the INPUT (for adversarial
  /// example generation): dL/dx = (sigmoid(z) - y) * w.
  Vec input_gradient(const Example& e) const {
    const double err = predict(e.x) - e.y;
    Vec g(dim_);
    for (std::size_t i = 0; i < dim_; ++i) g[i] = err * w_[i];
    return g;
  }

  /// `steps` minibatch-SGD steps in place. Deterministic given `rng`.
  void sgd(const Dataset& data, std::size_t steps, std::size_t batch_size,
           double lr, sim::Rng& rng) {
    if (data.empty()) return;
    for (std::size_t s = 0; s < steps; ++s) {
      Dataset batch;
      batch.reserve(batch_size);
      for (std::size_t b = 0; b < batch_size; ++b) {
        batch.push_back(data[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1))]);
      }
      const Vec g = gradient(batch);
      axpy(-lr, g, w_);
    }
  }

 private:
  Vec w_;
  std::size_t dim_;
};

/// Fully-connected MLP with ReLU hidden layers and a sigmoid output.
/// Parameters are stored flat so the robust aggregators can treat any
/// model as a Vec.
class MlpModel {
 public:
  /// layers = {input_dim, hidden..., 1}.
  explicit MlpModel(std::vector<std::size_t> layers);

  std::size_t param_count() const { return flat_.size(); }
  const Vec& params() const { return flat_; }
  void set_params(Vec p);
  const std::vector<std::size_t>& layers() const { return layers_; }

  void randomize(sim::Rng& rng, double scale = 0.5);

  double predict(const Vec& x) const;
  /// Backprop gradient of mean cross-entropy over the batch.
  Vec gradient(const Dataset& batch) const;
  double loss(const Dataset& batch) const;
  void sgd(const Dataset& data, std::size_t steps, std::size_t batch_size,
           double lr, sim::Rng& rng);

  /// Pre-activation interval bounds per layer for input box [lo, hi]
  /// (interval bound propagation; used by the safety verifier). Returns
  /// the output probability interval.
  std::pair<double, double> output_bounds(const Vec& lo, const Vec& hi) const;

  /// Gradient of the per-example loss w.r.t. the INPUT (adversarial
  /// example generation; backprop all the way to x).
  Vec input_gradient(const Example& e) const;

 private:
  /// Weight W[l] is (layers[l+1] x layers[l]), bias b[l] is layers[l+1];
  /// all views into flat_.
  double weight(std::size_t l, std::size_t out, std::size_t in) const {
    return flat_[w_offsets_[l] + out * layers_[l] + in];
  }
  double bias(std::size_t l, std::size_t out) const {
    return flat_[b_offsets_[l] + out];
  }
  double& weight_ref(std::size_t l, std::size_t out, std::size_t in) {
    return flat_[w_offsets_[l] + out * layers_[l] + in];
  }
  double& bias_ref(std::size_t l, std::size_t out) { return flat_[b_offsets_[l] + out]; }

  /// Forward pass keeping activations (for backprop).
  std::vector<Vec> forward(const Vec& x) const;

  std::vector<std::size_t> layers_;
  std::vector<std::size_t> w_offsets_;
  std::vector<std::size_t> b_offsets_;
  Vec flat_;
};

}  // namespace iobt::learn
