#include "learn/adversarial.h"

namespace iobt::learn {

Vec input_gradient(const MlpModel& model, const Example& e) {
  return model.input_gradient(e);
}

Vec input_gradient(const LogisticModel& model, const Example& e) {
  return model.input_gradient(e);
}

void adversarial_train(MlpModel& model, const Dataset& train,
                       const AdversarialTrainConfig& cfg, sim::Rng& rng) {
  if (train.empty()) return;
  for (std::size_t s = 0; s < cfg.steps; ++s) {
    Dataset batch;
    batch.reserve(cfg.batch_size);
    for (std::size_t b = 0; b < cfg.batch_size; ++b) {
      Example e = train[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(train.size()) - 1))];
      if (rng.bernoulli(cfg.adversarial_fraction)) {
        e.x = pgd(model, e, cfg.attack);  // label unchanged: robust target
      }
      batch.push_back(std::move(e));
    }
    const Vec g = model.gradient(batch);
    Vec w = model.params();
    axpy(-cfg.lr, g, w);
    model.set_params(std::move(w));
  }
}

}  // namespace iobt::learn
