#pragma once
// Distributed training loops: parameter-server federated averaging with
// Byzantine workers, and fully decentralized gossip averaging over a
// (possibly time-varying) topology (§V-B: "what is the impact of
// time-varying topology ... on the correctness and convergence of
// distributed learning algorithms?").
//
// Both trainers are algorithm-level simulations: communication is counted
// in bytes (for the cost-of-learning experiments) but not pushed through
// the packet network — E6/E8 sweep hundreds of configurations and need
// the speed. The end-to-end mission bench (E12) exercises learning over
// the real simulated network.

#include <functional>
#include <vector>

#include "learn/aggregation.h"
#include "learn/data.h"
#include "learn/model.h"
#include "net/topology.h"
#include "sim/rng.h"

namespace iobt::learn {

/// How a Byzantine worker corrupts its update.
enum class ByzantineMode {
  kNone,
  kSignFlip,    // sends -k * honest update
  kRandom,      // sends Gaussian noise of matched magnitude
  kShift,       // adds a large constant bias vector
};

struct FederatedConfig {
  std::size_t workers = 10;
  std::size_t rounds = 30;
  std::size_t local_steps = 10;
  std::size_t batch_size = 16;
  double lr = 0.1;
  AggregationRule rule = AggregationRule::kMean;
  /// Assumed Byzantine bound handed to the aggregator.
  std::size_t assumed_f = 0;
  /// Actual Byzantine workers: the first `byzantine_count` workers.
  std::size_t byzantine_count = 0;
  ByzantineMode byzantine_mode = ByzantineMode::kSignFlip;
  double label_skew = 0.0;  // non-IID sharding
};

struct TrainResult {
  Vec final_params;
  std::vector<double> accuracy_per_round;  // on the held-out test set
  double final_accuracy = 0.0;
  std::uint64_t bytes_communicated = 0;
};

/// Parameter-server training of a logistic model.
TrainResult federated_train(const Dataset& train, const Dataset& test,
                            std::size_t dim, const FederatedConfig& cfg,
                            sim::Rng& rng);

struct GossipConfig {
  std::size_t rounds = 40;
  std::size_t local_steps = 5;
  std::size_t batch_size = 16;
  double lr = 0.1;
  /// Each round, every edge of the topology is usable independently with
  /// this probability (models link churn / jamming).
  double link_up_probability = 1.0;
  double label_skew = 0.0;
  AggregationRule rule = AggregationRule::kMean;  // applied over neighborhood
  std::size_t assumed_f = 0;
  std::size_t byzantine_count = 0;
  ByzantineMode byzantine_mode = ByzantineMode::kSignFlip;
};

/// Decentralized training over `topo`: each node runs local SGD then
/// averages parameters with its currently-reachable neighbors. Returns
/// the *mean node accuracy* trajectory and total bytes (per-edge per-round
/// model exchanges).
TrainResult gossip_train(const net::Topology& topo, const Dataset& train,
                         const Dataset& test, std::size_t dim,
                         const GossipConfig& cfg, sim::Rng& rng);

/// Mean pairwise parameter distance at the end of training — the
/// consensus quality measure for the topology experiments.
double parameter_disagreement(const std::vector<Vec>& params);

}  // namespace iobt::learn
