#include "learn/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace iobt::learn {

MlpModel::MlpModel(std::vector<std::size_t> layers) : layers_(std::move(layers)) {
  assert(layers_.size() >= 2);
  assert(layers_.back() == 1 && "binary classifier output");
  std::size_t offset = 0;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    w_offsets_.push_back(offset);
    offset += layers_[l + 1] * layers_[l];
    b_offsets_.push_back(offset);
    offset += layers_[l + 1];
  }
  flat_.assign(offset, 0.0);
}

void MlpModel::set_params(Vec p) {
  assert(p.size() == flat_.size());
  flat_ = std::move(p);
}

void MlpModel::randomize(sim::Rng& rng, double scale) {
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    // He-style scaling keeps deep activations sane.
    const double s = scale / std::sqrt(static_cast<double>(layers_[l]));
    for (std::size_t o = 0; o < layers_[l + 1]; ++o) {
      for (std::size_t i = 0; i < layers_[l]; ++i) weight_ref(l, o, i) = s * rng.normal();
      bias_ref(l, o) = 0.0;
    }
  }
}

std::vector<Vec> MlpModel::forward(const Vec& x) const {
  assert(x.size() == layers_[0]);
  std::vector<Vec> acts;
  acts.push_back(x);
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    Vec z(layers_[l + 1], 0.0);
    for (std::size_t o = 0; o < layers_[l + 1]; ++o) {
      double s = bias(l, o);
      for (std::size_t i = 0; i < layers_[l]; ++i) s += weight(l, o, i) * acts[l][i];
      z[o] = s;
    }
    const bool last = (l + 2 == layers_.size());
    if (!last) {
      for (double& v : z) v = std::max(0.0, v);  // ReLU
    }
    acts.push_back(std::move(z));
  }
  return acts;
}

double MlpModel::predict(const Vec& x) const {
  const auto acts = forward(x);
  return sigmoid(acts.back()[0]);
}

Vec MlpModel::gradient(const Dataset& batch) const {
  Vec g(flat_.size(), 0.0);
  if (batch.empty()) return g;
  const std::size_t L = layers_.size() - 1;  // number of weight layers

  for (const Example& e : batch) {
    const auto acts = forward(e.x);
    // delta at output: dL/dz = sigmoid(z) - y  (cross-entropy + sigmoid).
    std::vector<Vec> delta(L);
    delta[L - 1] = {sigmoid(acts[L][0]) - e.y};
    // Backprop through hidden layers (ReLU mask on the *pre-activation*,
    // equivalently the post-activation > 0 test since ReLU(z) > 0 <=> z > 0).
    for (std::size_t l = L - 1; l-- > 0;) {
      delta[l].assign(layers_[l + 1], 0.0);
      for (std::size_t i = 0; i < layers_[l + 1]; ++i) {
        if (acts[l + 1][i] <= 0.0) continue;  // ReLU gradient is 0
        double s = 0.0;
        for (std::size_t o = 0; o < layers_[l + 2]; ++o) {
          s += weight(l + 1, o, i) * delta[l + 1][o];
        }
        delta[l][i] = s;
      }
    }
    // Accumulate parameter gradients.
    for (std::size_t l = 0; l < L; ++l) {
      for (std::size_t o = 0; o < layers_[l + 1]; ++o) {
        const double d = delta[l][o];
        if (d == 0.0) continue;
        for (std::size_t i = 0; i < layers_[l]; ++i) {
          g[w_offsets_[l] + o * layers_[l] + i] += d * acts[l][i];
        }
        g[b_offsets_[l] + o] += d;
      }
    }
  }
  scale(g, 1.0 / static_cast<double>(batch.size()));
  return g;
}

double MlpModel::loss(const Dataset& batch) const {
  if (batch.empty()) return 0.0;
  double total = 0.0;
  for (const Example& e : batch) {
    const double p = std::clamp(predict(e.x), 1e-12, 1.0 - 1e-12);
    total += e.y > 0.5 ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(batch.size());
}

void MlpModel::sgd(const Dataset& data, std::size_t steps, std::size_t batch_size,
                   double lr, sim::Rng& rng) {
  if (data.empty()) return;
  for (std::size_t s = 0; s < steps; ++s) {
    Dataset batch;
    batch.reserve(batch_size);
    for (std::size_t b = 0; b < batch_size; ++b) {
      batch.push_back(data[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1))]);
    }
    const Vec g = gradient(batch);
    axpy(-lr, g, flat_);
  }
}

Vec MlpModel::input_gradient(const Example& e) const {
  const std::size_t L = layers_.size() - 1;
  const auto acts = forward(e.x);
  // Same delta recursion as gradient(), then one extra hop through W[0].
  std::vector<Vec> delta(L);
  delta[L - 1] = {sigmoid(acts[L][0]) - e.y};
  for (std::size_t l = L - 1; l-- > 0;) {
    delta[l].assign(layers_[l + 1], 0.0);
    for (std::size_t i = 0; i < layers_[l + 1]; ++i) {
      if (acts[l + 1][i] <= 0.0) continue;  // ReLU gradient is 0
      double s = 0.0;
      for (std::size_t o = 0; o < layers_[l + 2]; ++o) {
        s += weight(l + 1, o, i) * delta[l + 1][o];
      }
      delta[l][i] = s;
    }
  }
  Vec g(layers_[0], 0.0);
  for (std::size_t i = 0; i < layers_[0]; ++i) {
    for (std::size_t o = 0; o < layers_[1]; ++o) {
      g[i] += weight(0, o, i) * delta[0][o];
    }
  }
  return g;
}

std::pair<double, double> MlpModel::output_bounds(const Vec& lo, const Vec& hi) const {
  assert(lo.size() == layers_[0] && hi.size() == layers_[0]);
  Vec cur_lo = lo, cur_hi = hi;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    Vec next_lo(layers_[l + 1]), next_hi(layers_[l + 1]);
    for (std::size_t o = 0; o < layers_[l + 1]; ++o) {
      double zl = bias(l, o), zh = bias(l, o);
      for (std::size_t i = 0; i < layers_[l]; ++i) {
        const double w = weight(l, o, i);
        if (w >= 0.0) {
          zl += w * cur_lo[i];
          zh += w * cur_hi[i];
        } else {
          zl += w * cur_hi[i];
          zh += w * cur_lo[i];
        }
      }
      const bool last = (l + 2 == layers_.size());
      if (!last) {
        zl = std::max(0.0, zl);
        zh = std::max(0.0, zh);
      }
      next_lo[o] = zl;
      next_hi[o] = zh;
    }
    cur_lo = std::move(next_lo);
    cur_hi = std::move(next_hi);
  }
  return {sigmoid(cur_lo[0]), sigmoid(cur_hi[0])};
}

}  // namespace iobt::learn
