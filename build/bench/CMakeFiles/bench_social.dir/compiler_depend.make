# Empty compiler generated dependencies file for bench_social.
# This may be replaced when dependencies are built.
