file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_learning.dir/bench_cost_learning.cpp.o"
  "CMakeFiles/bench_cost_learning.dir/bench_cost_learning.cpp.o.d"
  "bench_cost_learning"
  "bench_cost_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
