# Empty compiler generated dependencies file for bench_cost_learning.
# This may be replaced when dependencies are built.
