# Empty dependencies file for bench_intent.
# This may be replaced when dependencies are built.
