file(REMOVE_RECURSE
  "CMakeFiles/bench_intent.dir/bench_intent.cpp.o"
  "CMakeFiles/bench_intent.dir/bench_intent.cpp.o.d"
  "bench_intent"
  "bench_intent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
