
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tracking.cpp" "bench/CMakeFiles/bench_tracking.dir/bench_tracking.cpp.o" "gcc" "bench/CMakeFiles/bench_tracking.dir/bench_tracking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/iobt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/iobt_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/iobt_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/social/CMakeFiles/iobt_social.dir/DependInfo.cmake"
  "/root/repo/build/src/synthesis/CMakeFiles/iobt_synthesis.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/iobt_security.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/iobt_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/intent/CMakeFiles/iobt_intent.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/iobt_learn.dir/DependInfo.cmake"
  "/root/repo/build/src/diag/CMakeFiles/iobt_diag.dir/DependInfo.cmake"
  "/root/repo/build/src/things/CMakeFiles/iobt_things.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iobt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/iobt_track.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iobt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
