file(REMOVE_RECURSE
  "CMakeFiles/bench_tomography.dir/bench_tomography.cpp.o"
  "CMakeFiles/bench_tomography.dir/bench_tomography.cpp.o.d"
  "bench_tomography"
  "bench_tomography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tomography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
