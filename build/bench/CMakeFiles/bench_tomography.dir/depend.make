# Empty dependencies file for bench_tomography.
# This may be replaced when dependencies are built.
