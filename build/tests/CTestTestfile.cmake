# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_things[1]_include.cmake")
include("/root/repo/build/tests/test_security[1]_include.cmake")
include("/root/repo/build/tests/test_social[1]_include.cmake")
include("/root/repo/build/tests/test_discovery[1]_include.cmake")
include("/root/repo/build/tests/test_synthesis[1]_include.cmake")
include("/root/repo/build/tests/test_intent[1]_include.cmake")
include("/root/repo/build/tests/test_adapt[1]_include.cmake")
include("/root/repo/build/tests/test_learn[1]_include.cmake")
include("/root/repo/build/tests/test_diag[1]_include.cmake")
include("/root/repo/build/tests/test_track[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
