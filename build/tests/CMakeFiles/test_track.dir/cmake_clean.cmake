file(REMOVE_RECURSE
  "CMakeFiles/test_track.dir/track_test.cpp.o"
  "CMakeFiles/test_track.dir/track_test.cpp.o.d"
  "test_track"
  "test_track.pdb"
  "test_track[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
