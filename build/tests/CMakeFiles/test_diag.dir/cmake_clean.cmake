file(REMOVE_RECURSE
  "CMakeFiles/test_diag.dir/diag_test.cpp.o"
  "CMakeFiles/test_diag.dir/diag_test.cpp.o.d"
  "test_diag"
  "test_diag.pdb"
  "test_diag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
