file(REMOVE_RECURSE
  "CMakeFiles/test_things.dir/things_test.cpp.o"
  "CMakeFiles/test_things.dir/things_test.cpp.o.d"
  "test_things"
  "test_things.pdb"
  "test_things[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_things.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
