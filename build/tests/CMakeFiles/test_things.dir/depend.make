# Empty dependencies file for test_things.
# This may be replaced when dependencies are built.
