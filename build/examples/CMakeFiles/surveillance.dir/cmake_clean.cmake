file(REMOVE_RECURSE
  "CMakeFiles/surveillance.dir/surveillance.cpp.o"
  "CMakeFiles/surveillance.dir/surveillance.cpp.o.d"
  "surveillance"
  "surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
