file(REMOVE_RECURSE
  "CMakeFiles/distributed_learning.dir/distributed_learning.cpp.o"
  "CMakeFiles/distributed_learning.dir/distributed_learning.cpp.o.d"
  "distributed_learning"
  "distributed_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
