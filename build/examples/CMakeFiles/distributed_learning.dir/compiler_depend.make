# Empty compiler generated dependencies file for distributed_learning.
# This may be replaced when dependencies are built.
