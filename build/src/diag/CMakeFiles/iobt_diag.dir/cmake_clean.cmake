file(REMOVE_RECURSE
  "CMakeFiles/iobt_diag.dir/health.cpp.o"
  "CMakeFiles/iobt_diag.dir/health.cpp.o.d"
  "CMakeFiles/iobt_diag.dir/tomography.cpp.o"
  "CMakeFiles/iobt_diag.dir/tomography.cpp.o.d"
  "libiobt_diag.a"
  "libiobt_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
