# Empty dependencies file for iobt_diag.
# This may be replaced when dependencies are built.
