file(REMOVE_RECURSE
  "libiobt_diag.a"
)
