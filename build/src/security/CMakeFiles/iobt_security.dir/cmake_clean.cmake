file(REMOVE_RECURSE
  "CMakeFiles/iobt_security.dir/attacks.cpp.o"
  "CMakeFiles/iobt_security.dir/attacks.cpp.o.d"
  "libiobt_security.a"
  "libiobt_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
