# Empty compiler generated dependencies file for iobt_security.
# This may be replaced when dependencies are built.
