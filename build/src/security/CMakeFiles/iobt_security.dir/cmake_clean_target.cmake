file(REMOVE_RECURSE
  "libiobt_security.a"
)
