# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("net")
subdirs("things")
subdirs("discovery")
subdirs("social")
subdirs("synthesis")
subdirs("adapt")
subdirs("intent")
subdirs("learn")
subdirs("diag")
subdirs("track")
subdirs("flow")
subdirs("security")
subdirs("core")
