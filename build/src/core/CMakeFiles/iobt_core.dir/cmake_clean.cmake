file(REMOVE_RECURSE
  "CMakeFiles/iobt_core.dir/runtime.cpp.o"
  "CMakeFiles/iobt_core.dir/runtime.cpp.o.d"
  "libiobt_core.a"
  "libiobt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
