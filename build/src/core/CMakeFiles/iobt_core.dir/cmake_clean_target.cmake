file(REMOVE_RECURSE
  "libiobt_core.a"
)
