# Empty compiler generated dependencies file for iobt_core.
# This may be replaced when dependencies are built.
