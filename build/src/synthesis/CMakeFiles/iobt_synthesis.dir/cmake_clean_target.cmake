file(REMOVE_RECURSE
  "libiobt_synthesis.a"
)
