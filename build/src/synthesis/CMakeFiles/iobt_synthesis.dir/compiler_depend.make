# Empty compiler generated dependencies file for iobt_synthesis.
# This may be replaced when dependencies are built.
