file(REMOVE_RECURSE
  "CMakeFiles/iobt_synthesis.dir/composer.cpp.o"
  "CMakeFiles/iobt_synthesis.dir/composer.cpp.o.d"
  "CMakeFiles/iobt_synthesis.dir/decompose.cpp.o"
  "CMakeFiles/iobt_synthesis.dir/decompose.cpp.o.d"
  "CMakeFiles/iobt_synthesis.dir/mission.cpp.o"
  "CMakeFiles/iobt_synthesis.dir/mission.cpp.o.d"
  "libiobt_synthesis.a"
  "libiobt_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
