file(REMOVE_RECURSE
  "CMakeFiles/iobt_learn.dir/adversarial.cpp.o"
  "CMakeFiles/iobt_learn.dir/adversarial.cpp.o.d"
  "CMakeFiles/iobt_learn.dir/aggregation.cpp.o"
  "CMakeFiles/iobt_learn.dir/aggregation.cpp.o.d"
  "CMakeFiles/iobt_learn.dir/continual.cpp.o"
  "CMakeFiles/iobt_learn.dir/continual.cpp.o.d"
  "CMakeFiles/iobt_learn.dir/cost.cpp.o"
  "CMakeFiles/iobt_learn.dir/cost.cpp.o.d"
  "CMakeFiles/iobt_learn.dir/data.cpp.o"
  "CMakeFiles/iobt_learn.dir/data.cpp.o.d"
  "CMakeFiles/iobt_learn.dir/federated.cpp.o"
  "CMakeFiles/iobt_learn.dir/federated.cpp.o.d"
  "CMakeFiles/iobt_learn.dir/model.cpp.o"
  "CMakeFiles/iobt_learn.dir/model.cpp.o.d"
  "CMakeFiles/iobt_learn.dir/safety.cpp.o"
  "CMakeFiles/iobt_learn.dir/safety.cpp.o.d"
  "libiobt_learn.a"
  "libiobt_learn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
