
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learn/adversarial.cpp" "src/learn/CMakeFiles/iobt_learn.dir/adversarial.cpp.o" "gcc" "src/learn/CMakeFiles/iobt_learn.dir/adversarial.cpp.o.d"
  "/root/repo/src/learn/aggregation.cpp" "src/learn/CMakeFiles/iobt_learn.dir/aggregation.cpp.o" "gcc" "src/learn/CMakeFiles/iobt_learn.dir/aggregation.cpp.o.d"
  "/root/repo/src/learn/continual.cpp" "src/learn/CMakeFiles/iobt_learn.dir/continual.cpp.o" "gcc" "src/learn/CMakeFiles/iobt_learn.dir/continual.cpp.o.d"
  "/root/repo/src/learn/cost.cpp" "src/learn/CMakeFiles/iobt_learn.dir/cost.cpp.o" "gcc" "src/learn/CMakeFiles/iobt_learn.dir/cost.cpp.o.d"
  "/root/repo/src/learn/data.cpp" "src/learn/CMakeFiles/iobt_learn.dir/data.cpp.o" "gcc" "src/learn/CMakeFiles/iobt_learn.dir/data.cpp.o.d"
  "/root/repo/src/learn/federated.cpp" "src/learn/CMakeFiles/iobt_learn.dir/federated.cpp.o" "gcc" "src/learn/CMakeFiles/iobt_learn.dir/federated.cpp.o.d"
  "/root/repo/src/learn/model.cpp" "src/learn/CMakeFiles/iobt_learn.dir/model.cpp.o" "gcc" "src/learn/CMakeFiles/iobt_learn.dir/model.cpp.o.d"
  "/root/repo/src/learn/safety.cpp" "src/learn/CMakeFiles/iobt_learn.dir/safety.cpp.o" "gcc" "src/learn/CMakeFiles/iobt_learn.dir/safety.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/iobt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iobt_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
