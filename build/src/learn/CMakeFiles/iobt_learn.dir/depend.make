# Empty dependencies file for iobt_learn.
# This may be replaced when dependencies are built.
