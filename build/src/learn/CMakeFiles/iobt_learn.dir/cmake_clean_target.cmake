file(REMOVE_RECURSE
  "libiobt_learn.a"
)
