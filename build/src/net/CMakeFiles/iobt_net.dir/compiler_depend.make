# Empty compiler generated dependencies file for iobt_net.
# This may be replaced when dependencies are built.
