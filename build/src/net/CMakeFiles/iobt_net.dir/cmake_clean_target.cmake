file(REMOVE_RECURSE
  "libiobt_net.a"
)
