file(REMOVE_RECURSE
  "CMakeFiles/iobt_net.dir/channel.cpp.o"
  "CMakeFiles/iobt_net.dir/channel.cpp.o.d"
  "CMakeFiles/iobt_net.dir/network.cpp.o"
  "CMakeFiles/iobt_net.dir/network.cpp.o.d"
  "CMakeFiles/iobt_net.dir/reliable.cpp.o"
  "CMakeFiles/iobt_net.dir/reliable.cpp.o.d"
  "CMakeFiles/iobt_net.dir/topology.cpp.o"
  "CMakeFiles/iobt_net.dir/topology.cpp.o.d"
  "libiobt_net.a"
  "libiobt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
