# Empty dependencies file for iobt_adapt.
# This may be replaced when dependencies are built.
