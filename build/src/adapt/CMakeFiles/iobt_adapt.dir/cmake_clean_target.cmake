file(REMOVE_RECURSE
  "libiobt_adapt.a"
)
