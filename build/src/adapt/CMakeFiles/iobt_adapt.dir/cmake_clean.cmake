file(REMOVE_RECURSE
  "CMakeFiles/iobt_adapt.dir/allocation.cpp.o"
  "CMakeFiles/iobt_adapt.dir/allocation.cpp.o.d"
  "CMakeFiles/iobt_adapt.dir/monitor.cpp.o"
  "CMakeFiles/iobt_adapt.dir/monitor.cpp.o.d"
  "CMakeFiles/iobt_adapt.dir/reflex.cpp.o"
  "CMakeFiles/iobt_adapt.dir/reflex.cpp.o.d"
  "CMakeFiles/iobt_adapt.dir/selfstab.cpp.o"
  "CMakeFiles/iobt_adapt.dir/selfstab.cpp.o.d"
  "libiobt_adapt.a"
  "libiobt_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
