
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapt/allocation.cpp" "src/adapt/CMakeFiles/iobt_adapt.dir/allocation.cpp.o" "gcc" "src/adapt/CMakeFiles/iobt_adapt.dir/allocation.cpp.o.d"
  "/root/repo/src/adapt/monitor.cpp" "src/adapt/CMakeFiles/iobt_adapt.dir/monitor.cpp.o" "gcc" "src/adapt/CMakeFiles/iobt_adapt.dir/monitor.cpp.o.d"
  "/root/repo/src/adapt/reflex.cpp" "src/adapt/CMakeFiles/iobt_adapt.dir/reflex.cpp.o" "gcc" "src/adapt/CMakeFiles/iobt_adapt.dir/reflex.cpp.o.d"
  "/root/repo/src/adapt/selfstab.cpp" "src/adapt/CMakeFiles/iobt_adapt.dir/selfstab.cpp.o" "gcc" "src/adapt/CMakeFiles/iobt_adapt.dir/selfstab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/iobt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iobt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/things/CMakeFiles/iobt_things.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
