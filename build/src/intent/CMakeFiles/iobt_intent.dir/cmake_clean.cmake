file(REMOVE_RECURSE
  "CMakeFiles/iobt_intent.dir/games.cpp.o"
  "CMakeFiles/iobt_intent.dir/games.cpp.o.d"
  "CMakeFiles/iobt_intent.dir/security_game.cpp.o"
  "CMakeFiles/iobt_intent.dir/security_game.cpp.o.d"
  "libiobt_intent.a"
  "libiobt_intent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_intent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
