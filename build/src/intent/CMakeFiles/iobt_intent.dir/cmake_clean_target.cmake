file(REMOVE_RECURSE
  "libiobt_intent.a"
)
