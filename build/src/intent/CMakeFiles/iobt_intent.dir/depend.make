# Empty dependencies file for iobt_intent.
# This may be replaced when dependencies are built.
