
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/track/behavior.cpp" "src/track/CMakeFiles/iobt_track.dir/behavior.cpp.o" "gcc" "src/track/CMakeFiles/iobt_track.dir/behavior.cpp.o.d"
  "/root/repo/src/track/kalman.cpp" "src/track/CMakeFiles/iobt_track.dir/kalman.cpp.o" "gcc" "src/track/CMakeFiles/iobt_track.dir/kalman.cpp.o.d"
  "/root/repo/src/track/tracker.cpp" "src/track/CMakeFiles/iobt_track.dir/tracker.cpp.o" "gcc" "src/track/CMakeFiles/iobt_track.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/iobt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
