file(REMOVE_RECURSE
  "libiobt_track.a"
)
