file(REMOVE_RECURSE
  "CMakeFiles/iobt_track.dir/behavior.cpp.o"
  "CMakeFiles/iobt_track.dir/behavior.cpp.o.d"
  "CMakeFiles/iobt_track.dir/kalman.cpp.o"
  "CMakeFiles/iobt_track.dir/kalman.cpp.o.d"
  "CMakeFiles/iobt_track.dir/tracker.cpp.o"
  "CMakeFiles/iobt_track.dir/tracker.cpp.o.d"
  "libiobt_track.a"
  "libiobt_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
