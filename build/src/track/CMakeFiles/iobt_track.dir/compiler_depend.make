# Empty compiler generated dependencies file for iobt_track.
# This may be replaced when dependencies are built.
