# Empty dependencies file for iobt_sim.
# This may be replaced when dependencies are built.
