file(REMOVE_RECURSE
  "libiobt_sim.a"
)
