file(REMOVE_RECURSE
  "CMakeFiles/iobt_sim.dir/metrics.cpp.o"
  "CMakeFiles/iobt_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/iobt_sim.dir/rng.cpp.o"
  "CMakeFiles/iobt_sim.dir/rng.cpp.o.d"
  "CMakeFiles/iobt_sim.dir/simulator.cpp.o"
  "CMakeFiles/iobt_sim.dir/simulator.cpp.o.d"
  "libiobt_sim.a"
  "libiobt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
