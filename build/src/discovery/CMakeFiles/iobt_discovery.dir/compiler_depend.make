# Empty compiler generated dependencies file for iobt_discovery.
# This may be replaced when dependencies are built.
