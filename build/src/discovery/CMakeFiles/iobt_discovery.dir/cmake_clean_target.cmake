file(REMOVE_RECURSE
  "libiobt_discovery.a"
)
