file(REMOVE_RECURSE
  "CMakeFiles/iobt_discovery.dir/characterize.cpp.o"
  "CMakeFiles/iobt_discovery.dir/characterize.cpp.o.d"
  "CMakeFiles/iobt_discovery.dir/service.cpp.o"
  "CMakeFiles/iobt_discovery.dir/service.cpp.o.d"
  "libiobt_discovery.a"
  "libiobt_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
