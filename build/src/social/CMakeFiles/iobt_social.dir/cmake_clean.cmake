file(REMOVE_RECURSE
  "CMakeFiles/iobt_social.dir/service.cpp.o"
  "CMakeFiles/iobt_social.dir/service.cpp.o.d"
  "CMakeFiles/iobt_social.dir/truth_discovery.cpp.o"
  "CMakeFiles/iobt_social.dir/truth_discovery.cpp.o.d"
  "libiobt_social.a"
  "libiobt_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
