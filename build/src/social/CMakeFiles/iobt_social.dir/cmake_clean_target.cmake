file(REMOVE_RECURSE
  "libiobt_social.a"
)
