# Empty compiler generated dependencies file for iobt_social.
# This may be replaced when dependencies are built.
