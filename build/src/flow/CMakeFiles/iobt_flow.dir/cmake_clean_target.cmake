file(REMOVE_RECURSE
  "libiobt_flow.a"
)
