file(REMOVE_RECURSE
  "CMakeFiles/iobt_flow.dir/graph.cpp.o"
  "CMakeFiles/iobt_flow.dir/graph.cpp.o.d"
  "CMakeFiles/iobt_flow.dir/placement.cpp.o"
  "CMakeFiles/iobt_flow.dir/placement.cpp.o.d"
  "libiobt_flow.a"
  "libiobt_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
