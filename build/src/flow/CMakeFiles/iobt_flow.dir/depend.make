# Empty dependencies file for iobt_flow.
# This may be replaced when dependencies are built.
