file(REMOVE_RECURSE
  "libiobt_things.a"
)
