
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/things/capability.cpp" "src/things/CMakeFiles/iobt_things.dir/capability.cpp.o" "gcc" "src/things/CMakeFiles/iobt_things.dir/capability.cpp.o.d"
  "/root/repo/src/things/mobility.cpp" "src/things/CMakeFiles/iobt_things.dir/mobility.cpp.o" "gcc" "src/things/CMakeFiles/iobt_things.dir/mobility.cpp.o.d"
  "/root/repo/src/things/population.cpp" "src/things/CMakeFiles/iobt_things.dir/population.cpp.o" "gcc" "src/things/CMakeFiles/iobt_things.dir/population.cpp.o.d"
  "/root/repo/src/things/sensors.cpp" "src/things/CMakeFiles/iobt_things.dir/sensors.cpp.o" "gcc" "src/things/CMakeFiles/iobt_things.dir/sensors.cpp.o.d"
  "/root/repo/src/things/world.cpp" "src/things/CMakeFiles/iobt_things.dir/world.cpp.o" "gcc" "src/things/CMakeFiles/iobt_things.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/iobt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iobt_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
