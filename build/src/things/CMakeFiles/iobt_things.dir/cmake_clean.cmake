file(REMOVE_RECURSE
  "CMakeFiles/iobt_things.dir/capability.cpp.o"
  "CMakeFiles/iobt_things.dir/capability.cpp.o.d"
  "CMakeFiles/iobt_things.dir/mobility.cpp.o"
  "CMakeFiles/iobt_things.dir/mobility.cpp.o.d"
  "CMakeFiles/iobt_things.dir/population.cpp.o"
  "CMakeFiles/iobt_things.dir/population.cpp.o.d"
  "CMakeFiles/iobt_things.dir/sensors.cpp.o"
  "CMakeFiles/iobt_things.dir/sensors.cpp.o.d"
  "CMakeFiles/iobt_things.dir/world.cpp.o"
  "CMakeFiles/iobt_things.dir/world.cpp.o.d"
  "libiobt_things.a"
  "libiobt_things.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobt_things.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
