# Empty compiler generated dependencies file for iobt_things.
# This may be replaced when dependencies are built.
