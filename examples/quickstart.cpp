// Quickstart: the smallest useful iobt program.
//
// Builds a small mixed population, runs discovery for a minute of virtual
// time, synthesizes a surveillance mission from a one-line goal, and
// prints the composite's quantified assurance — the whole Figure-1 loop
// in ~50 lines.

#include <cstdio>

#include "core/runtime.h"

int main() {
  using namespace iobt;

  // 1. A 1.2 km x 1.2 km operating area, deterministic seed.
  core::RuntimeConfig cfg;
  cfg.area = {{0, 0}, {1200, 1200}};
  cfg.seed = 42;
  core::Runtime rt(cfg);

  // 2. Populate: a company-sized mixed force plus ambient civilian devices.
  things::PopulationConfig pop;
  pop.sensor_motes = 30;
  pop.smartphones = 20;
  pop.drones = 6;
  pop.vehicles = 3;
  pop.edge_servers = 1;
  pop.humans = 8;
  pop.red_fraction = 0.08;  // some of the ambient devices are hostile
  rt.populate(pop);

  // 3. Something to watch: a few targets wandering the area.
  for (int i = 0; i < 4; ++i) {
    rt.world().add_target(
        {300.0 + 150 * i, 600.0},
        std::make_shared<things::RandomWaypoint>(cfg.area, 2.0, 10.0, sim::Rng(100 + i)),
        "hostile");
  }

  // 4. Let discovery populate the directory.
  rt.start();
  rt.run_for(sim::Duration::seconds(120));
  // "suspect" = emits RF but never cooperates with discovery: hostiles,
  // plus cooperative devices outside two-way protocol reach.
  std::printf("discovered %zu devices (%zu suspect: hiding or unreachable)\n",
              rt.discovery()->directory().size(),
              rt.discovery()->directory().count_standing(discovery::Standing::kSuspect));

  // 5. Commander's intent, one line. derive_spec + composition happen
  //    inside launch_mission.
  synthesis::Goal goal{synthesis::GoalKind::kPersistentSurveillance,
                       {{100, 100}, {1100, 1100}}, 0.5};
  const auto mission = rt.launch_mission(goal);
  if (!mission) {
    std::printf("no assets available\n");
    return 1;
  }

  // 6. Execute for ten minutes of virtual time; print the assurance.
  rt.run_for(sim::Duration::seconds(600));
  const auto s = rt.mission_status(*mission);
  std::printf("mission '%s': feasible=%s members=%zu quality=%.2f\n", s.name.c_str(),
              s.feasible ? "yes" : "no", s.member_count, s.quality);
  std::printf("  coverage:");
  for (double c : s.assurance.sensing_coverage) std::printf(" %.0f%%", 100 * c);
  std::printf("\n  residual risk=%.2f (infiltration=%.2f structural=%.2f)\n",
              s.assurance.risk.residual_risk, s.assurance.risk.infiltration_risk,
              s.assurance.risk.structural_risk);
  std::printf("  active modality=%s switches=%zu repairs=%zu\n",
              things::to_string(s.active_modality).c_str(), s.modality_switches,
              s.repairs);
  std::printf("  analytics service: placed=%s critical_path=%.2fs\n",
              s.service_placed ? "yes" : "no", s.service_latency_s);
  return 0;
}
