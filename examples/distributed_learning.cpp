// Distributed learning at the tactical edge (§V-B).
//
// A battalion trains a shared classifier (e.g. "does this acoustic
// signature mean vehicle movement?") across 20 heterogeneous nodes whose
// data is spatially clustered (non-IID). Mid-program, the adversary
// compromises a quarter of the workers. This example shows:
//   1. naive federated averaging collapsing under the compromise,
//   2. Krum riding through it,
//   3. fully decentralized gossip with a cost-aware topology schedule
//      (start cheap on a ring, escalate when accuracy stalls).

#include <cstdio>

#include "learn/cost.h"
#include "learn/federated.h"

int main() {
  using namespace iobt;

  sim::Rng data_rng(2027);
  const auto train = learn::make_blobs(2400, 6, 3.0, 0.03, data_rng);
  const auto test = learn::make_blobs(600, 6, 3.0, 0.03, data_rng);

  std::printf("=== federated training, 20 workers, non-IID shards ===\n");
  std::printf("%-22s %-12s %-12s\n", "configuration", "clean_acc", "attacked_acc");
  for (auto rule : {learn::AggregationRule::kMean, learn::AggregationRule::kKrum,
                    learn::AggregationRule::kMedian}) {
    learn::FederatedConfig cfg;
    cfg.workers = 20;
    cfg.rounds = 30;
    cfg.label_skew = 0.6;
    cfg.rule = rule;

    sim::Rng r1(1);
    const double clean = learn::federated_train(train, test, 6, cfg, r1).final_accuracy;

    cfg.byzantine_count = 5;  // 25% of the fleet compromised
    cfg.assumed_f = 5;
    cfg.byzantine_mode = learn::ByzantineMode::kSignFlip;
    sim::Rng r2(1);
    const double attacked =
        learn::federated_train(train, test, 6, cfg, r2).final_accuracy;
    std::printf("%-22s %-12.3f %-12.3f\n", learn::to_string(rule).c_str(), clean,
                attacked);
  }

  std::printf("\n=== decentralized gossip with cost-aware topology ===\n");
  const std::size_t n = 12;
  net::Topology full(n);
  for (net::NodeId a = 0; a < n; ++a) {
    for (net::NodeId b = a + 1; b < n; ++b) full.add_edge(a, b);
  }
  std::vector<learn::NamedTopology> menu = {
      {"ring", net::Topology::ring(n), 1.0},
      {"full", full, 1.0},
  };
  sim::Rng arng(7);
  const auto adaptive = learn::cost_aware_train(menu, train, test, 6, 30, 2, 8, 0.05,
                                                1.0, 3, 0.005, arng);
  sim::Rng srng(7);
  const auto static_full = learn::evaluate_topology(menu[1], train, test, 6, 30, 2, 8,
                                                    0.05, 1.0, srng);
  std::printf("adaptive:    final_acc=%.3f bytes=%llu\n", adaptive.final_accuracy,
              static_cast<unsigned long long>(adaptive.total_bytes));
  std::printf("static full: final_acc=%.3f bytes=%llu\n",
              static_full.points.back().accuracy,
              static_cast<unsigned long long>(static_full.points.back().cumulative_bytes));
  std::printf("topology per round (0=ring 1=full): ");
  for (auto a : adaptive.active_topology_per_round) std::printf("%zu", a);
  std::printf("\n");
  return 0;
}
