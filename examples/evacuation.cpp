// Non-combatant evacuation (the paper's §I motivating scenario).
//
// Civilians move toward a rally point along a corridor. An evacuation-
// support mission is synthesized to sense the corridor and mark routes.
// Mid-mission the adversary jams the corridor (blinding camera-bearing
// assets' comms) and destroys part of the sensor field; the reflex layer
// switches modalities and re-synthesizes, and the run prints a timeline
// of mission quality so the recovery is visible.

#include <cstdio>
#include <memory>

#include "core/runtime.h"

int main() {
  using namespace iobt;

  core::RuntimeConfig cfg;
  cfg.area = {{0, 0}, {2000, 800}};
  cfg.seed = 2024;
  core::Runtime rt(cfg);

  // Force package: dense unattended sensors along the corridor, robots
  // for signage, drones for overwatch, one edge server as the TOC.
  things::PopulationConfig pop;
  pop.sensor_motes = 50;
  pop.tags = 30;
  pop.ground_robots = 6;
  pop.drones = 8;
  pop.vehicles = 4;
  pop.edge_servers = 1;
  pop.smartphones = 20;
  pop.humans = 10;
  pop.red_fraction = 0.05;
  pop.mobile_fraction = 0.2;
  rt.populate(pop);

  // Civilians: 12 clusters walking to the rally point at the east end.
  const sim::Vec2 rally{1900, 400};
  for (int i = 0; i < 12; ++i) {
    rt.world().add_target(
        {150.0 + 40.0 * i, 200.0 + 40.0 * (i % 5)},
        std::make_shared<things::SeekPoint>(rally, 2.2), "civilian");
  }

  rt.start();
  rt.run_for(sim::Duration::seconds(90));

  synthesis::Goal goal{synthesis::GoalKind::kEvacuationSupport, cfg.area, 1.0};
  core::Runtime::MissionOptions opts;
  opts.use_directory = false;  // TOC has the full force layout
  opts.solver = synthesis::Solver::kLocalSearch;
  const auto mission = rt.launch_mission(goal, opts);
  if (!mission) return 1;
  {
    const auto s = rt.mission_status(*mission);
    std::printf("[t=%6.0fs] mission up: members=%zu feasible=%s occupancy=%.0f%% camera=%.0f%%\n",
                rt.simulator().now().to_seconds(), s.member_count,
                s.feasible ? "yes" : "no",
                100 * s.assurance.sensing_coverage[0],
                100 * s.assurance.sensing_coverage[1]);
  }

  // The adversary's plan: jam the mid-corridor at t=300 for 200 s, then
  // strike a third of the sensor field at t=380.
  rt.attacks().schedule_jamming({1000, 400}, 450, sim::SimTime::seconds(300),
                                sim::SimTime::seconds(500), 0.97);
  rt.attacks().schedule_mass_kill(
      0.33, sim::SimTime::seconds(380),
      [](const things::Asset& a) {
        return a.device_class == things::DeviceClass::kSensorMote ||
               a.device_class == things::DeviceClass::kTag;
      },
      sim::Rng(7));

  // Timeline: sample quality every 60 s of virtual time.
  for (int minute = 2; minute <= 16; ++minute) {
    rt.run_until(sim::SimTime::seconds(60.0 * minute + 90.0));
    const auto s = rt.mission_status(*mission);
    std::size_t arrived = 0;
    for (const auto& t : rt.world().targets()) {
      if (sim::distance(t.position, rally) < 50.0) ++arrived;
    }
    std::printf(
        "[t=%6.0fs] quality=%.2f modality=%-9s switches=%zu repairs=%zu "
        "members=%zu civilians_at_rally=%zu/12\n",
        rt.simulator().now().to_seconds(), s.quality,
        things::to_string(s.active_modality).c_str(), s.modality_switches, s.repairs,
        s.member_count, arrived);
  }

  const auto s = rt.mission_status(*mission);
  std::printf("final: repairs=%zu modality_switches=%zu attacks_logged=%zu\n",
              s.repairs, s.modality_switches, rt.attacks().log().size());
  return 0;
}
