// "Track a collection of insurgents and report on their activities and
// rendezvous points within a certain geographic area" — the paper's own
// goal example (§III-B), run end to end on the operational path:
// recruitment strictly from the discovery directory, trust earned through
// challenge-response characterization, and a Sybil infiltration attempt
// that the trust layer must reject from future recruitment.

#include <cstdio>
#include <memory>

#include "core/runtime.h"

int main() {
  using namespace iobt;

  core::RuntimeConfig cfg;
  cfg.area = {{0, 0}, {1500, 1500}};
  cfg.seed = 77;
  core::Runtime rt(cfg);

  things::PopulationConfig pop;
  pop.sensor_motes = 40;
  pop.smartphones = 30;
  pop.drones = 10;
  pop.vehicles = 4;
  pop.edge_servers = 2;
  pop.humans = 10;
  pop.red_fraction = 0.1;
  pop.gray_fraction = 0.3;
  pop.mobile_fraction = 0.4;
  rt.populate(pop);

  // A dispersed group moving through the city grid.
  for (int i = 0; i < 6; ++i) {
    rt.world().add_target(
        {400.0 + 100 * i, 700.0},
        std::make_shared<things::GridPatrol>(cfg.area, 120.0, 1.5, sim::Rng(500 + i)),
        "insurgent");
  }

  // Sybil infiltration early on: fake motes that answer probes with
  // forged capability claims.
  rt.attacks().schedule_sybil(8, sim::SimTime::seconds(30), sim::Rng(9));

  rt.start();

  // Give discovery AND characterization time: challenges need many rounds
  // to separate honest sensors from liars.
  rt.run_for(sim::Duration::seconds(400));
  const auto& dir = rt.discovery()->directory();
  std::printf("directory: %zu entries, %zu cooperative, %zu suspect\n", dir.size(),
              dir.count_standing(discovery::Standing::kCooperative),
              dir.count_standing(discovery::Standing::kSuspect));

  double sybil_trust = 0.0, honest_trust = 0.0;
  std::size_t honest_n = 0;
  for (const auto id : rt.attacks().sybil_ids()) sybil_trust += rt.trust().score(id);
  if (!rt.attacks().sybil_ids().empty()) {
    sybil_trust /= static_cast<double>(rt.attacks().sybil_ids().size());
  }
  for (const auto& a : rt.world().assets()) {
    if (a.affiliation == things::Affiliation::kBlue &&
        a.device_class == things::DeviceClass::kSensorMote) {
      honest_trust += rt.trust().score(a.id);
      ++honest_n;
    }
  }
  if (honest_n) honest_trust /= static_cast<double>(honest_n);
  std::printf("trust after characterization: honest motes=%.2f sybils=%.2f\n",
              honest_trust, sybil_trust);

  // Launch the tracking mission from the directory (operational path).
  synthesis::Goal goal{synthesis::GoalKind::kTrackDispersedGroup,
                       {{200, 400}, {1300, 1100}}, 1.0};
  core::Runtime::MissionOptions opts;
  opts.use_directory = true;
  opts.sense_period = sim::Duration::seconds(4.0);
  const auto mission = rt.launch_mission(goal, opts);
  if (!mission) return 1;

  std::size_t sybils_recruited = 0;
  {
    const auto s = rt.mission_status(*mission);
    std::printf("mission: members=%zu feasible=%s risk=%.2f\n", s.member_count,
                s.feasible ? "yes" : "no", s.assurance.risk.residual_risk);
  }

  for (int minute = 1; minute <= 10; ++minute) {
    rt.run_for(sim::Duration::seconds(60));
    const auto s = rt.mission_status(*mission);
    std::printf(
        "[t=%6.0fs] detect quality=%.2f tracks=%zu track_err=%.0fm modality=%s "
        "repairs=%zu\n",
        rt.simulator().now().to_seconds(), s.quality, s.confirmed_tracks,
        s.tracking_error_m, things::to_string(s.active_modality).c_str(), s.repairs);
  }
  (void)sybils_recruited;
  return 0;
}
