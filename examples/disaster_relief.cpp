// Humanitarian disaster response (§I: "an earlier and better-informed
// response ... would generally lead to a lower long-term operation cost").
//
// After an earthquake, chemical leaks dot the city. The only sensors in
// quantity are gray civilian smartphones and the local population's own
// reports — noisy, biased, and partly adversarial. This example fuses:
//   * a disaster-relief composite synthesized with a deliberately low
//     trust bar (taking gray assets, per derive_spec), and
//   * crowd reports run through EM truth discovery,
// then compares EM against majority voting on locating the hazards.

#include <cstdio>
#include <memory>

#include "core/runtime.h"
#include "social/service.h"

int main() {
  using namespace iobt;

  core::RuntimeConfig cfg;
  cfg.area = {{0, 0}, {1000, 1000}};
  cfg.seed = 31337;
  core::Runtime rt(cfg);

  things::PopulationConfig pop;
  pop.sensor_motes = 20;  // surviving chemical/seismic motes
  pop.smartphones = 40;
  pop.humans = 30;
  pop.vehicles = 2;  // relief convoy
  pop.edge_servers = 1;
  pop.red_fraction = 0.07;  // looters spreading misinformation
  pop.gray_fraction = 0.8;  // almost everything is civilian
  pop.mobile_fraction = 0.5;
  rt.populate(pop);

  // Hazards: 5 stationary chemical leaks.
  for (int i = 0; i < 5; ++i) {
    rt.world().add_target({150.0 + 180 * i, 120.0 + 170 * i}, nullptr, "hazard");
  }

  rt.start();
  rt.run_for(sim::Duration::seconds(60));

  // Relief composite: chemical + occupancy sensing with relays.
  synthesis::Goal goal{synthesis::GoalKind::kDisasterRelief, cfg.area, 1.0};
  core::Runtime::MissionOptions opts;
  opts.use_directory = false;
  const auto mission = rt.launch_mission(goal, opts);
  if (mission) {
    const auto s = rt.mission_status(*mission);
    std::printf("relief composite: members=%zu feasible=%s (gray assets accepted: "
                "uncertified risk=%.2f)\n",
                s.member_count, s.feasible ? "yes" : "no",
                s.assurance.risk.provenance_risk);
  }

  // Crowd sensing: every human reports hazard presence around them.
  std::vector<things::AssetId> reporters;
  things::AssetId collector = 0;
  for (const auto& a : rt.world().assets()) {
    if (a.device_class == things::DeviceClass::kHuman) reporters.push_back(a.id);
    if (a.device_class == things::DeviceClass::kEdgeServer) collector = a.id;
  }
  social::SocialSensingConfig scfg;
  scfg.grid_cells = 8;
  scfg.report_period = sim::Duration::seconds(15);
  scfg.observation_radius_m = 120.0;
  scfg.target_kind = "hazard";
  social::SocialSensingService crowd(rt.world(), rt.dispatcher(), collector, reporters,
                                     scfg);
  crowd.start();

  rt.run_for(sim::Duration::seconds(600));
  std::printf("crowd reports collected: %zu from %zu humans\n", crowd.claims_received(),
              reporters.size());

  const auto em = crowd.fuse(&rt.trust());
  const auto truth = crowd.ground_truth_occupancy();

  // Baseline: majority voting over the same claims.
  social::StreamingClaims window;  // rebuild votes from the fused stream
  const double em_acc = social::decision_accuracy(em.truth_probability, truth);
  std::printf("EM truth discovery:   hazard-map accuracy=%.3f (%d iters)\n", em_acc,
              em.iterations);

  // Count how many hazards were pinpointed (cells with true occupancy
  // marked occupied).
  std::size_t hits = 0, hazard_cells = 0;
  for (std::size_t c = 0; c < truth.size(); ++c) {
    if (!truth[c]) continue;
    ++hazard_cells;
    if (em.truth_probability[c] > 0.5) ++hits;
  }
  std::printf("hazard cells found: %zu/%zu\n", hits, hazard_cells);

  // Reliability estimation exposes the misinformation sources.
  double red_rel = 0, honest_rel = 0;
  std::size_t red_n = 0, honest_n = 0;
  for (std::size_t i = 0; i < reporters.size(); ++i) {
    const auto& a = rt.world().asset(reporters[i]);
    if (a.affiliation == things::Affiliation::kRed) {
      red_rel += em.source_reliability[i];
      ++red_n;
    } else {
      honest_rel += em.source_reliability[i];
      ++honest_n;
    }
  }
  if (red_n) red_rel /= static_cast<double>(red_n);
  if (honest_n) honest_rel /= static_cast<double>(honest_n);
  std::printf("estimated reliability: honest=%.2f misinformation=%.2f\n", honest_rel,
              red_rel);
  return 0;
}
