// Tests for the dissemination module: epidemic spread over layered
// networks, gateway bridging, attack campaigns, the reconfiguration
// controller, and the gateway-killed-mid-broadcast regression (ASan-
// verified: the CI sanitizer matrix runs this binary).

#include <gtest/gtest.h>

#include <set>

#include "dissem/dissemination.h"
#include "dissem/scenario.h"
#include "net/layer.h"

namespace iobt {
namespace {

dissem::DissemSpec base_spec() {
  dissem::DissemSpec spec;
  spec.name = "test";
  spec.layers = dissem::ground_aerial_layers();
  spec.mobility = dissem::MobilityKind::kStationary;
  spec.attack = dissem::AttackCampaign::kNone;
  spec.horizon_s = 90.0;
  return spec;
}

std::size_t informed_in_layer(const dissem::DissemScenario& s, net::LayerId layer) {
  std::size_t n = 0;
  for (net::NodeId id = 0; id < s.net.node_count(); ++id) {
    if (s.net.layer(id) == layer && s.dissem.informed(id)) ++n;
  }
  return n;
}

TEST(Dissemination, AlertPercolatesAcrossLayersViaGateways) {
  dissem::DissemScenario s(base_spec(), 41);
  s.run_to_horizon();
  const dissem::DissemOutcome o = s.outcome();
  // The unattacked epidemic should blanket the theater: ground saturates
  // by multi-round gossip, and the aerial layer is reached through the
  // gateway bridges.
  EXPECT_GT(o.reach, 0.9) << "epidemic failed to percolate";
  EXPECT_GT(informed_in_layer(s, net::kLayerAerial), 0u);
  EXPECT_GE(o.t50_s, 0.0);
  EXPECT_GT(o.informed, 0u);
  EXPECT_EQ(o.nodes, 74u);
}

TEST(Dissemination, NoGatewaysIsolatesLayers) {
  dissem::DissemSpec spec = base_spec();
  for (auto& l : spec.layers) l.gateways = 0;
  dissem::DissemScenario s(spec, 41);
  s.run_to_horizon();
  // The alert starts on the ground layer; with no bridges the aerial
  // stratum must stay dark however long the gossip runs.
  EXPECT_GT(informed_in_layer(s, net::kLayerGround), 0u);
  EXPECT_EQ(informed_in_layer(s, net::kLayerAerial), 0u);
}

TEST(Dissemination, SameSpecAndSeedIsBitIdentical) {
  dissem::DissemSpec spec = base_spec();
  spec.attack = dissem::AttackCampaign::kCombined;
  spec.intensity = 0.6;
  spec.mobility = dissem::MobilityKind::kWaypoint;
  const dissem::DissemOutcome a = dissem::run_dissemination(spec, 1234);
  const dissem::DissemOutcome b = dissem::run_dissemination(spec, 1234);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.informed, b.informed);
  EXPECT_EQ(a.promotions, b.promotions);
  // A different seed must not collide (distinct placements + loss draws).
  const dissem::DissemOutcome c = dissem::run_dissemination(spec, 1235);
  EXPECT_NE(a.digest, c.digest);
}

TEST(Dissemination, JammingReducesReach) {
  dissem::DissemSpec spec = base_spec();
  const double baseline = dissem::run_dissemination(spec, 77).reach;
  spec.attack = dissem::AttackCampaign::kJamming;
  spec.intensity = 1.0;
  const double jammed = dissem::run_dissemination(spec, 77).reach;
  EXPECT_LT(jammed, baseline);
}

TEST(Dissemination, GatewayHuntTriggersPromotions) {
  dissem::DissemSpec spec = base_spec();
  spec.attack = dissem::AttackCampaign::kGatewayHunt;
  spec.intensity = 1.0;  // every initial gateway is hunted down
  dissem::DissemScenario s(spec, 99);
  s.run_to_horizon();
  const dissem::DissemOutcome o = s.outcome();
  // Every kill of a standing gateway must have promoted a replacement.
  EXPECT_GT(o.promotions, 0u);
  // The reconfigured topology keeps the bridge alive: with all original
  // gateways dead, aerial nodes can only have heard the alert through a
  // promoted replacement (or before their bridge fell).
  EXPECT_GT(informed_in_layer(s, net::kLayerAerial), 0u);
}

TEST(Dissemination, TimeToFractionIsMonotoneInFraction) {
  dissem::DissemScenario s(base_spec(), 7);
  s.run_to_horizon();
  const double t25 = s.dissem.time_to_fraction(0.25);
  const double t50 = s.dissem.time_to_fraction(0.5);
  const double t90 = s.dissem.time_to_fraction(0.9);
  ASSERT_GE(t25, 0.0);
  ASSERT_GE(t50, t25);
  ASSERT_GE(t90, t50);
}

// Regression (ISSUE 7 satellite): a gateway node destroyed while its own
// broadcast frames — and frames addressed to it — are still on the air
// must neither use-after-free (frame slab slots referencing a dead
// endpoint) nor strand the epidemic. Node 0 (the seed origin) is a
// gateway by construction; it is killed 1 ms after its first rebroadcast
// puts frames on the air, i.e. mid-flight.
TEST(DissemRegression, GatewayKilledMidBroadcastDoesNotStrandEpidemic) {
  dissem::DissemSpec spec = base_spec();
  dissem::DissemScenario s(spec, 5);
  ASSERT_FALSE(s.initial_gateways().empty());
  ASSERT_EQ(s.initial_gateways().front(), 0u);
  ASSERT_TRUE(s.net.is_gateway(0));
  // Seed fires at 5 s; the origin's first rebroadcast goes on the air at
  // 5 s + forward_delay (2 s). Kill lands at +1 ms: transmissions are
  // in flight, deliveries have not happened yet.
  const things::AssetId origin_asset = s.world.asset_of_node(0);
  s.attacks.schedule_node_kill(origin_asset, sim::SimTime::seconds(7.001));
  s.run_to_horizon();
  // The origin died as a gateway: the controller must have promoted a
  // replacement at kill time.
  ASSERT_FALSE(s.reconfig.promotions().empty());
  EXPECT_EQ(s.reconfig.promotions().front().lost, 0u);
  // The epidemic survived the decapitation: theater-wide reach through
  // the remaining/promoted bridges.
  const dissem::DissemOutcome o = s.outcome();
  EXPECT_GT(o.reach, 0.5);
  EXPECT_GT(informed_in_layer(s, net::kLayerAerial), 0u);
}

TEST(DissemMatrix, CellSpecsRoundTripAndCoverAxes) {
  const sim::ScenarioMatrix m = dissem::dissem_matrix(2026);
  EXPECT_EQ(m.cell_count(), 2u * 3u * 5u * 4u);
  std::set<std::string> attacks_seen;
  std::set<std::uint64_t> seeds;
  for (const sim::ScenarioCell& c : m.all_cells()) {
    const dissem::DissemSpec spec = dissem::spec_for_cell(c);
    EXPECT_EQ(spec.name, c.name);
    EXPECT_FALSE(spec.layers.empty());
    attacks_seen.insert(to_string(spec.attack));
    seeds.insert(c.seed);
  }
  EXPECT_EQ(attacks_seen.size(), 5u);
  // Per-cell seeds are unique across the whole matrix.
  EXPECT_EQ(seeds.size(), m.cell_count());
}

TEST(DissemMatrix, FuzzSliceCellRunsClean) {
  // One representative fuzz cell end-to-end (the CI slice runs 24 of
  // these under sanitizers via bench_dissemination --fuzz).
  const sim::ScenarioMatrix m = dissem::dissem_matrix(2026);
  const auto slice = m.slice(1, /*salt=*/3);
  ASSERT_EQ(slice.size(), 1u);
  dissem::DissemSpec spec = dissem::spec_for_cell(slice[0]);
  spec.horizon_s = 60.0;  // keep the unit test quick
  const dissem::DissemOutcome o = dissem::run_dissemination(spec, slice[0].seed);
  EXPECT_GT(o.nodes, 0u);
  EXPECT_NE(o.digest, 0u);
}

}  // namespace
}  // namespace iobt
