// Tests for game-theoretic command by intent: potential-game structure,
// convergence of best-response dynamics, welfare vs the centralized
// baseline, and hierarchical decomposition.

#include <gtest/gtest.h>

#include "intent/games.h"
#include "intent/security_game.h"

namespace iobt::intent {
namespace {

using sim::Rng;

TaskAllocationGame tiny_game() {
  // 2 agents, 2 tasks. Agent 0 is great at task 0, agent 1 at task 1.
  return TaskAllocationGame({{0.9, 0.1}, {0.1, 0.9}}, {1.0, 1.0});
}

TEST(Game, WelfareOfEmptyAssignmentIsZero) {
  const auto g = tiny_game();
  JointAction idle(2, g.idle_action());
  EXPECT_DOUBLE_EQ(g.welfare(idle), 0.0);
}

TEST(Game, WelfareMatchesClosedForm) {
  const auto g = tiny_game();
  // Both agents on task 0: P(success) = 1 - 0.1 * 0.9 = 0.91.
  JointAction joint = {0, 0};
  EXPECT_NEAR(g.welfare(joint), 1.0 - (1.0 - 0.9) * (1.0 - 0.1), 1e-12);
  // Split: 0.9 + 0.9.
  joint = {0, 1};
  EXPECT_NEAR(g.welfare(joint), 1.8, 1e-12);
}

TEST(Game, UtilityIsMarginalContribution) {
  const auto g = tiny_game();
  JointAction joint = {0, 0};
  // Welfare with both on task 0 = 0.91; with agent 1 idle = 0.9.
  EXPECT_NEAR(g.utility(1, joint), 0.91 - 0.9, 1e-12);
  // WLU property: utility change equals welfare change for a unilateral
  // move (exact potential game).
  JointAction moved = {0, 1};
  const double du = g.utility(1, moved) - g.utility(1, joint);
  const double dw = g.welfare(moved) - g.welfare(joint);
  EXPECT_NEAR(du, dw, 1e-12);
}

TEST(Game, IdleUtilityIsZero) {
  const auto g = tiny_game();
  JointAction joint = {g.idle_action(), 0};
  EXPECT_DOUBLE_EQ(g.utility(0, joint), 0.0);
}

TEST(BestResponse, PicksSpecializedTask) {
  const auto g = tiny_game();
  JointAction joint(2, g.idle_action());
  EXPECT_EQ(g.best_response(0, joint), 0u);
  EXPECT_EQ(g.best_response(1, joint), 1u);
}

TEST(BestResponse, TieKeepsCurrentAction) {
  // Symmetric game: both tasks identical; agent already on task 1 stays.
  TaskAllocationGame g({{0.5, 0.5}}, {1.0, 1.0});
  JointAction joint = {1};
  EXPECT_EQ(g.best_response(0, joint), 1u);
}

TEST(Dynamics, ConvergesToEfficientSplitOnTinyGame) {
  const auto g = tiny_game();
  const auto r = best_response_dynamics(g);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.final_welfare, 1.8, 1e-12);
  EXPECT_EQ(r.final_action, (JointAction{0, 1}));
}

TEST(Dynamics, AlwaysConvergesOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const auto g = TaskAllocationGame::random_instance(20, 8, rng);
    const auto r = best_response_dynamics(g);
    EXPECT_TRUE(r.converged) << "seed=" << seed;
    // At equilibrium, no agent can improve: spot-check every agent.
    for (std::size_t i = 0; i < g.num_agents(); ++i) {
      EXPECT_EQ(g.best_response(i, r.final_action), r.final_action[i]);
    }
  }
}

TEST(Dynamics, WelfareMonotoneAcrossRounds) {
  // Potential-game property: each accepted unilateral move raises welfare,
  // so the final welfare is at least the start welfare.
  Rng rng(3);
  const auto g = TaskAllocationGame::random_instance(15, 6, rng);
  JointAction start(g.num_agents(), 0);  // everyone piled on task 0
  const double w0 = g.welfare(start);
  const auto r = best_response_dynamics(g, start);
  EXPECT_GE(r.final_welfare, w0 - 1e-12);
}

TEST(Dynamics, NearCentralizedWelfare) {
  // Price of anarchy for submodular welfare with marginal-contribution
  // utilities is bounded; empirically BR reaches >= 60% of greedy.
  double worst_ratio = 1.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7);
    const auto g = TaskAllocationGame::random_instance(25, 10, rng);
    const auto br = best_response_dynamics(g);
    const auto ct = centralized_greedy(g);
    ASSERT_GT(ct.final_welfare, 0.0);
    worst_ratio = std::min(worst_ratio, br.final_welfare / ct.final_welfare);
  }
  EXPECT_GE(worst_ratio, 0.6);
}

TEST(Dynamics, LogLinearApproachesBestResponseWelfare) {
  Rng grng(5);
  const auto g = TaskAllocationGame::random_instance(12, 5, grng);
  const auto br = best_response_dynamics(g);
  Rng rng(6);
  const auto ll = log_linear_dynamics(g, rng, 0.02, 30000);
  EXPECT_GE(ll.final_welfare, 0.9 * br.final_welfare);
}

TEST(Hierarchical, StitchedActionIsValidAndReasonable) {
  Rng rng(9);
  const auto g = TaskAllocationGame::random_instance(30, 12, rng);
  const auto flat = best_response_dynamics(g);
  const auto hier = hierarchical_decomposition(g, 3);
  ASSERT_EQ(hier.final_action.size(), g.num_agents());
  for (std::size_t a : hier.final_action) EXPECT_LE(a, g.idle_action());
  EXPECT_TRUE(hier.converged);
  // Decomposition trades welfare for locality but should stay in the same
  // ballpark.
  EXPECT_GE(hier.final_welfare, 0.5 * flat.final_welfare);
}

TEST(Hierarchical, SingleClusterEqualsFlatDynamics) {
  Rng rng(10);
  const auto g = TaskAllocationGame::random_instance(10, 4, rng);
  const auto flat = best_response_dynamics(g);
  const auto one = hierarchical_decomposition(g, 1);
  EXPECT_NEAR(one.final_welfare, flat.final_welfare, 1e-9);
}

TEST(CentralizedGreedy, AssignsEveryUsefulAgentOnce) {
  const auto g = tiny_game();
  const auto r = centralized_greedy(g);
  EXPECT_NEAR(r.final_welfare, 1.8, 1e-12);
  EXPECT_EQ(r.moves, 2u);
}


// --------------------------------------------------------- Security game ----

TEST(SecurityGame, MatchingPenniesValueIsHalf) {
  // Classic: payoff 1 on match, 0 on mismatch; value = 0.5, both mix 50/50.
  MatrixGame g{{{1, 0}, {0, 1}}};
  const auto eq = solve_fictitious_play(g, 50000);
  EXPECT_NEAR(eq.value, 0.5, 0.01);
  EXPECT_NEAR(eq.row_strategy[0], 0.5, 0.05);
  EXPECT_NEAR(eq.col_strategy[0], 0.5, 0.05);
  EXPECT_LE(eq.value_lower, eq.value_upper + 1e-9);
}

TEST(SecurityGame, DominantStrategyIsFound) {
  // Row 0 dominates row 1 everywhere: play it with probability ~1.
  MatrixGame g{{{3, 2}, {1, 0}}};
  const auto eq = solve_fictitious_play(g, 20000);
  EXPECT_GT(eq.row_strategy[0], 0.99);
  EXPECT_NEAR(eq.value, 2.0, 0.01);  // attacker picks column 1
}

TEST(SecurityGame, ValueBoundsBracketTrueValue) {
  // Random-ish 3x3 game: bounds must bracket and be tight-ish.
  MatrixGame g{{{0.2, 0.8, 0.4}, {0.9, 0.1, 0.5}, {0.6, 0.6, 0.3}}};
  const auto eq = solve_fictitious_play(g, 100000);
  EXPECT_LE(eq.value_lower, eq.value_upper + 1e-9);
  EXPECT_LT(eq.value_upper - eq.value_lower, 0.05);
}

TEST(SecurityGame, RoutingGamePayoffMatrix) {
  // Two routes, two jammable nodes; route 0 passes node 5, route 1 none.
  const auto g = make_routing_game({{1, 5, 9}, {1, 6, 9}}, {5, 7}, 0.1);
  EXPECT_DOUBLE_EQ(g.payoff[0][0], 0.1);  // route 0 jammed at 5
  EXPECT_DOUBLE_EQ(g.payoff[0][1], 1.0);
  EXPECT_DOUBLE_EQ(g.payoff[1][0], 1.0);
  EXPECT_DOUBLE_EQ(g.payoff[1][1], 1.0);
  // Defender should pure-play route 1 (never jammed).
  const auto eq = solve_fictitious_play(g, 10000);
  EXPECT_GT(eq.row_strategy[1], 0.99);
  EXPECT_NEAR(eq.value, 1.0, 0.01);
}

TEST(SecurityGame, DiverseRoutesAvoidSharedInteriors) {
  // 4x4 grid: corner-to-corner admits at least 2 interior-disjoint routes.
  const auto topo = net::Topology::grid(4, 4);
  const auto routes = diverse_routes(topo, 0, 15, 3);
  ASSERT_GE(routes.size(), 2u);
  // Interior vertices of route 0 and route 1 are disjoint.
  for (std::size_t i = 1; i + 1 < routes[0].size(); ++i) {
    for (std::size_t j = 1; j + 1 < routes[1].size(); ++j) {
      EXPECT_NE(routes[0][i], routes[1][j]);
    }
  }
}

TEST(SecurityGame, MixedRoutingBeatsPureUnderJamming) {
  // Grid corner-to-corner, jammer can hit any interior vertex. The mixed
  // defense's guaranteed value must beat committing to the single best
  // pure route (which the jammer then targets).
  const auto topo = net::Topology::grid(4, 4);
  const auto routes = diverse_routes(topo, 0, 15, 3);
  ASSERT_GE(routes.size(), 2u);
  std::vector<net::NodeId> jammable;
  for (net::NodeId v = 1; v < 15; ++v) jammable.push_back(v);
  const auto g = make_routing_game(routes, jammable, 0.1);
  const auto eq = solve_fictitious_play(g, 50000);

  // Pure-route guarantee: the jammer knows the route and jams it.
  double best_pure = 0.0;
  for (std::size_t r = 0; r < routes.size(); ++r) {
    double worst = 1e9;
    for (std::size_t a = 0; a < jammable.size(); ++a) {
      worst = std::min(worst, g.payoff[r][a]);
    }
    best_pure = std::max(best_pure, worst);
  }
  EXPECT_GT(eq.value_lower, best_pure + 0.2);  // mixing pays
}

// Scale sweep: convergence rounds grow slowly with the number of agents
// (the paper's scalability claim: agents optimize "without explicit
// coordination ... minimizing overhead").
class ScaleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScaleSweep, ConvergesWithinRoundBudget) {
  Rng rng(GetParam());
  const auto g = TaskAllocationGame::random_instance(GetParam(), GetParam() / 3 + 2, rng);
  const auto r = best_response_dynamics(g, {}, 200);
  EXPECT_TRUE(r.converged) << "agents=" << GetParam();
  EXPECT_LE(r.rounds, 50u) << "agents=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Agents, ScaleSweep, ::testing::Values(5, 20, 50, 100));

}  // namespace
}  // namespace iobt::intent
