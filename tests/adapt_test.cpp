// Tests for adaptive reflexes: invariant monitoring, reflex chains with
// escalation, self-stabilizing spanning tree, adaptive controllers, and
// modality switching.

#include <gtest/gtest.h>

#include "adapt/allocation.h"
#include "adapt/control.h"
#include "adapt/duty.h"
#include "adapt/monitor.h"
#include "adapt/perception.h"
#include "adapt/reflex.h"
#include "adapt/selfstab.h"
#include "things/population.h"

namespace iobt::adapt {
namespace {

using sim::Duration;
using sim::Rng;
using sim::Simulator;
using sim::SimTime;

// -------------------------------------------------------------- Monitor ----

TEST(Monitor, DetectsViolationEdgeOnce) {
  Simulator sim;
  InvariantMonitor mon(sim, Duration::seconds(1.0));
  bool healthy = true;
  int fired = 0;
  mon.watch("inv", [&] { return healthy; }, [&] { ++fired; });
  mon.start();
  sim.schedule_at(SimTime::seconds(5), [&] { healthy = false; });
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(fired, 1);  // edge, not level
  EXPECT_FALSE(mon.holding("inv"));
  EXPECT_EQ(mon.violation_count("inv"), 1u);
}

TEST(Monitor, RecordsRepairTime) {
  Simulator sim;
  InvariantMonitor mon(sim, Duration::seconds(1.0));
  bool healthy = true;
  mon.watch("inv", [&] { return healthy; });
  mon.start();
  sim.schedule_at(SimTime::seconds(5), [&] { healthy = false; });
  sim.schedule_at(SimTime::seconds(9), [&] { healthy = true; });
  sim.run_until(SimTime::seconds(15));
  EXPECT_TRUE(mon.holding("inv"));
  ASSERT_EQ(mon.history().size(), 1u);
  EXPECT_FALSE(mon.history()[0].ongoing());
  EXPECT_NEAR(mon.mean_repair_time("inv").to_seconds(), 4.0, 1.01);
}

TEST(Monitor, MultipleViolationsCounted) {
  Simulator sim;
  InvariantMonitor mon(sim, Duration::seconds(1.0));
  bool healthy = true;
  mon.watch("inv", [&] { return healthy; });
  mon.start();
  for (int k = 0; k < 3; ++k) {
    sim.schedule_at(SimTime::seconds(5 + 10 * k), [&] { healthy = false; });
    sim.schedule_at(SimTime::seconds(8 + 10 * k), [&] { healthy = true; });
  }
  sim.run_until(SimTime::seconds(40));
  EXPECT_EQ(mon.violation_count("inv"), 3u);
}

TEST(Monitor, CheckNowWorksWithoutStart) {
  Simulator sim;
  InvariantMonitor mon(sim, Duration::seconds(1.0));
  bool healthy = false;
  mon.watch("inv", [&] { return healthy; });
  mon.check_now();
  EXPECT_FALSE(mon.holding("inv"));
  healthy = true;
  mon.check_now();
  EXPECT_TRUE(mon.holding("inv"));
}

// --------------------------------------------------------------- Reflex ----

TEST(Reflex, FiresActionAndRepairs) {
  Simulator sim;
  InvariantMonitor mon(sim, Duration::seconds(1.0));
  bool healthy = true;
  mon.watch("link", [&] { return healthy; });

  ReflexEngine engine(sim, mon);
  engine.bind("link", {{"restore", [&] { healthy = true; }}}, Duration::seconds(2.0));
  engine.arm();
  mon.start();

  sim.schedule_at(SimTime::seconds(5), [&] { healthy = false; });
  sim.run_until(SimTime::seconds(12));
  EXPECT_TRUE(healthy);
  EXPECT_GE(engine.fired_count(), 1u);
  EXPECT_EQ(engine.log()[0].action, "restore");
}

TEST(Reflex, EscalatesWhenFirstActionIneffective) {
  Simulator sim;
  InvariantMonitor mon(sim, Duration::seconds(1.0));
  bool healthy = true;
  int weak_fires = 0;
  mon.watch("svc", [&] { return healthy; });

  ReflexEngine engine(sim, mon);
  engine.bind("svc",
              {{"weak", [&] { ++weak_fires; }},       // never fixes it
               {"strong", [&] { healthy = true; }}},  // fixes it
              Duration::seconds(1.0), /*escalate_after=*/2);
  engine.arm();
  mon.start();

  sim.schedule_at(SimTime::seconds(3), [&] { healthy = false; });
  sim.run_until(SimTime::seconds(20));
  EXPECT_TRUE(healthy);
  EXPECT_GE(weak_fires, 2);
  bool strong_fired = false;
  for (const auto& f : engine.log()) strong_fired |= (f.action == "strong");
  EXPECT_TRUE(strong_fired);
}

TEST(Reflex, CooldownLimitsFireRate) {
  Simulator sim;
  InvariantMonitor mon(sim, Duration::seconds(1.0));
  mon.watch("always_bad", [] { return false; });

  ReflexEngine engine(sim, mon);
  int fires = 0;
  engine.bind("always_bad", {{"noop", [&] { ++fires; }}}, Duration::seconds(5.0));
  engine.arm();
  mon.start();
  sim.run_until(SimTime::seconds(21));
  // ~21 s / 5 s cooldown => at most 5 fires.
  EXPECT_LE(fires, 5);
  EXPECT_GE(fires, 3);
}

// ------------------------------------------------------ Spanning tree ----

struct TreeFixture : ::testing::Test {
  Simulator sim;
  net::Network net{sim, net::ChannelModel(2.0, 0.0), Rng(5)};
  things::World world{sim, net, {{0, 0}, {1000, 200}}, Rng(6)};
  net::Dispatcher disp{net};
  std::vector<things::AssetId> members;

  void chain(std::size_t n, double spacing = 150.0) {
    Rng r(1);
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(world.add_asset(
          things::make_asset_template(things::DeviceClass::kSensorMote,
                                      things::Affiliation::kBlue, r),
          {100.0 + spacing * static_cast<double>(i), 100.0},
          {.range_m = spacing * 1.4, .data_rate_bps = 1e6, .base_loss = 0.0}));
    }
  }
};

TEST_F(TreeFixture, ConvergesToSingleRootOnChain) {
  chain(6);
  SpanningTreeProtocol tree(world, disp, members);
  tree.start();
  sim.run_until(SimTime::seconds(60));
  EXPECT_EQ(tree.believed_root_count(), 1u);
  EXPECT_TRUE(tree.tree_legal());
  // Root is the minimum id.
  for (const auto id : members) EXPECT_EQ(tree.state(id).root, members.front());
  // Distances grow along the chain.
  EXPECT_EQ(tree.state(members[0]).dist, 0);
  EXPECT_GT(tree.state(members[5]).dist, 0);
}

TEST_F(TreeFixture, RecoversAfterRootDeath) {
  chain(6);
  SpanningTreeProtocol tree(world, disp, members);
  tree.start();
  sim.run_until(SimTime::seconds(60));
  ASSERT_TRUE(tree.tree_legal());

  world.destroy_asset(members.front());  // kill the root
  sim.run_until(SimTime::seconds(200));
  EXPECT_TRUE(tree.tree_legal());
  // New root is the next-smallest live id.
  for (std::size_t i = 1; i < members.size(); ++i) {
    EXPECT_EQ(tree.state(members[i]).root, members[1]);
  }
}

TEST_F(TreeFixture, PartitionYieldsTwoLegalTrees) {
  chain(6);
  SpanningTreeProtocol tree(world, disp, members);
  tree.start();
  sim.run_until(SimTime::seconds(60));

  // Sever the middle by killing node 2 (chain 0-1 | 3-4-5).
  world.destroy_asset(members[2]);
  sim.run_until(SimTime::seconds(250));
  EXPECT_TRUE(tree.tree_legal());
  EXPECT_EQ(tree.believed_root_count(), 2u);
}

// ------------------------------------------------------------ Lifetime ----
// Periodic loops must not outlive their owners: every schedule_every
// lambda that captures a service's `this` holds a weak lifetime token and
// unschedules itself once the service is destroyed. These tests tear the
// service down mid-run and keep the simulator going — the sanitizer CI
// build turns any dangling-`this` regression into a hard failure, and the
// pending_count assertions prove the loop actually unscheduled itself.

TEST(Monitor, PeriodicCheckStopsAfterMonitorDestruction) {
  Simulator sim;
  {
    InvariantMonitor mon(sim, Duration::seconds(1.0));
    mon.watch("inv", [] { return true; });
    mon.start();
    sim.run_until(SimTime::seconds(3.5));
    EXPECT_GT(sim.pending_count(), 0u);
  }
  // The next tick notices the expired token and stops rescheduling.
  sim.run_until(SimTime::seconds(20));
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Reflex, EscalationPollStopsAfterEngineDestruction) {
  Simulator sim;
  {
    InvariantMonitor mon(sim, Duration::seconds(1.0));
    ReflexEngine engine(sim, mon);
    engine.bind("inv", {{"noop", [] {}}});
    engine.arm();
    mon.start();
    sim.run_until(SimTime::seconds(2.5));
    EXPECT_GT(sim.pending_count(), 0u);
  }
  // Both the monitor tick and the engine's 1 s escalation poll must die
  // with their owners.
  sim.run_until(SimTime::seconds(20));
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST_F(TreeFixture, HelloLoopsStopAfterProtocolDestruction) {
  chain(4);
  {
    SpanningTreeProtocol tree(world, disp, members);
    tree.start();
    // Stop between hello ticks (period 2 s) so no frames are in flight
    // toward the protocol's dispatcher handlers when it dies.
    sim.run_until(SimTime::seconds(9.5));
  }
  // All members are still live, so without the lifetime token every
  // per-member hello loop would keep ticking into freed state.
  sim.run_until(SimTime::seconds(60));
  EXPECT_EQ(sim.pending_count(), 0u);
}

// ------------------------------------------------------------- Control ----

TEST(Aimd, IncreasesAdditivelyDecreasesMultiplicatively) {
  AimdController c(10.0, 1.0, 100.0, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(c.update(false), 12.0);
  EXPECT_DOUBLE_EQ(c.update(false), 14.0);
  EXPECT_DOUBLE_EQ(c.update(true), 7.0);
  // Clamped at bounds.
  for (int i = 0; i < 100; ++i) c.update(false);
  EXPECT_DOUBLE_EQ(c.rate(), 100.0);
  for (int i = 0; i < 100; ++i) c.update(true);
  EXPECT_DOUBLE_EQ(c.rate(), 1.0);
}

TEST(Pi, DrivesFirstOrderPlantToSetpoint) {
  PiController pi(0.8, 0.5, 0.0, 10.0);
  double plant = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double u = pi.update(5.0, plant, 0.1);
    plant += 0.1 * (u - 0.5 * plant);  // leaky integrator plant
  }
  EXPECT_NEAR(plant, 5.0, 0.3);
}

TEST(Imitation, ConvergesTowardBestPerformer) {
  // Performance = -(p - 3)^2: optimum at parameter 3.
  std::vector<std::vector<double>> params = {{0.0}, {1.0}, {5.0}, {3.0}};
  ImitationPopulation pop(params);
  std::vector<std::vector<std::size_t>> neighbors = {
      {1, 3}, {0, 2}, {1, 3}, {0, 2}};
  for (int round = 0; round < 50; ++round) {
    std::vector<double> perf;
    for (std::size_t i = 0; i < pop.size(); ++i) {
      const double p = pop.params(i)[0];
      perf.push_back(-(p - 3.0) * (p - 3.0));
    }
    pop.imitate(perf, neighbors, 0.5);
  }
  for (std::size_t i = 0; i < pop.size(); ++i) {
    EXPECT_NEAR(pop.params(i)[0], 3.0, 0.3) << "agent " << i;
  }
  EXPECT_LT(pop.diversity(), 0.1);
}

TEST(Imitation, DiversityMetric) {
  ImitationPopulation uniform({{1.0}, {1.0}, {1.0}});
  EXPECT_DOUBLE_EQ(uniform.diversity(), 0.0);
  ImitationPopulation spread({{0.0}, {2.0}});
  EXPECT_DOUBLE_EQ(spread.diversity(), 1.0);
}



// ----------------------------------------------------------- Duty cycle ----

TEST(DutyCycle, FullDutyWhenEnergyIsPlentiful) {
  DutyInputs in;
  in.remaining_j = 1e6;
  in.idle_cost_per_s = 1e-4;
  in.cost_per_sweep_j = 1e-3;
  in.full_duty_rate_hz = 1.0;
  in.required_lifetime_s = 3600;
  const auto plan = plan_duty_cycle(in);
  EXPECT_DOUBLE_EQ(plan.duty, 1.0);
  EXPECT_TRUE(plan.meets_lifetime);
}

TEST(DutyCycle, BacksOffToMeetLifetime) {
  DutyInputs in;
  in.remaining_j = 10.0;
  in.idle_cost_per_s = 1e-4;
  in.cost_per_sweep_j = 1e-2;  // 1000 sweeps total on a full battery
  in.full_duty_rate_hz = 1.0;
  in.required_lifetime_s = 3600;  // needs 3600 sweeps at full duty
  const auto plan = plan_duty_cycle(in);
  EXPECT_LT(plan.duty, 0.3);
  EXPECT_GT(plan.duty, 0.1);
  EXPECT_TRUE(plan.meets_lifetime);
  EXPECT_GE(plan.projected_lifetime_s, 3600.0 - 1.0);
}

TEST(DutyCycle, ImpossibleLifetimeIsFlagged) {
  DutyInputs in;
  in.remaining_j = 0.1;
  in.idle_cost_per_s = 1e-3;  // idle alone burns it in 100 s
  in.required_lifetime_s = 3600;
  const auto plan = plan_duty_cycle(in);
  EXPECT_FALSE(plan.meets_lifetime);
  EXPECT_DOUBLE_EQ(plan.duty, 0.0);
}

TEST(DutyCycle, ControllerRationsSweepsDeterministically) {
  DutyInputs in;
  in.remaining_j = 10.0;
  in.idle_cost_per_s = 0.0;
  in.cost_per_sweep_j = 1e-2;
  in.full_duty_rate_hz = 1.0;
  in.required_lifetime_s = 2000;  // affords 1000 sweeps -> duty 0.5
  DutyCycleController ctl(in, 2000);
  EXPECT_NEAR(ctl.plan().duty, 0.5, 1e-9);
  int ran = 0;
  for (int i = 0; i < 100; ++i) ran += ctl.should_sweep() ? 1 : 0;
  EXPECT_EQ(ran, 50);  // exactly rationed, no dice
}

TEST(DutyCycle, ReplanBacksOffWhenBatteryDrainsFast) {
  DutyInputs in;
  in.remaining_j = 10.0;
  in.idle_cost_per_s = 0.0;
  in.cost_per_sweep_j = 1e-2;
  in.full_duty_rate_hz = 1.0;
  in.required_lifetime_s = 1000;
  DutyCycleController ctl(in, 1000);
  const double duty_before = ctl.plan().duty;
  // Halfway through, the battery is unexpectedly at 20% (jamming-era
  // retransmissions): the controller must throttle.
  ctl.replan(500, 2.0);
  EXPECT_LT(ctl.plan().duty, duty_before);
  EXPECT_TRUE(ctl.plan().meets_lifetime);
}

// ------------------------------------------------------------ Allocation ----

TEST(ComputePool, PlacesWithinCapacityAndHops) {
  ComputePool pool;
  const auto near = pool.add_node(1e9, 1);
  const auto far = pool.add_node(1e12, 10);
  // Tight hop bound: must land on the near node despite less capacity.
  const auto n1 = pool.submit({1, 1, 5e8, 2});
  ASSERT_TRUE(n1.has_value());
  EXPECT_EQ(*n1, near);
  // Loose bound: worst-fit picks the big far node.
  const auto n2 = pool.submit({2, 1, 5e8, 20});
  ASSERT_TRUE(n2.has_value());
  EXPECT_EQ(*n2, far);
}

TEST(ComputePool, RejectsWhenNoCapacity) {
  ComputePool pool({.per_principal_capacity_cap = 1.0});  // quota off
  pool.add_node(1e9, 1);
  EXPECT_TRUE(pool.submit({1, 1, 9e8, 8}).has_value());
  EXPECT_FALSE(pool.submit({2, 1, 5e8, 8}).has_value());  // would overflow
  pool.finish(1);
  EXPECT_TRUE(pool.submit({3, 1, 5e8, 8}).has_value());  // freed
}

TEST(ComputePool, QuotaStopsSaturatingPrincipal) {
  ComputePool pool({.per_principal_capacity_cap = 0.3});
  pool.add_node(1e10, 1);
  // Principal 7 tries to grab everything; capped at 30% = 3e9.
  int accepted = 0;
  for (TaskId t = 1; t <= 10; ++t) {
    if (pool.submit({t, 7, 1e9, 8})) ++accepted;
  }
  EXPECT_LE(accepted, 3);
  EXPECT_GE(pool.rejected_for_quota(), 7u);
  // Another principal still gets service.
  EXPECT_TRUE(pool.submit({100, 8, 1e9, 8}).has_value());
}

TEST(ComputePool, RebalanceMovesTasksOffDeadNode) {
  ComputePool pool;
  const auto a = pool.add_node(1e10, 1);
  const auto b = pool.add_node(1e10, 2);
  // Fill node a (worst-fit alternates, so force with hops).
  ASSERT_TRUE(pool.submit({1, 1, 2e9, 1}).has_value());  // only a within 1 hop
  ASSERT_TRUE(pool.submit({2, 2, 2e9, 1}).has_value());
  EXPECT_GT(pool.node_load(a), 0.0);

  pool.set_node_alive(a, false);
  const std::size_t dropped = pool.rebalance();
  EXPECT_EQ(dropped, 2u);  // hop bound 1 cannot reach node b? b is 2 hops
  // Loosen: resubmit with generous bounds.
  EXPECT_TRUE(pool.submit({3, 1, 2e9, 4}).has_value());
  EXPECT_EQ(*pool.location(3), b);
}

TEST(ComputePool, RebalancePreservesTasksWhenRoomExists) {
  ComputePool pool;
  const auto a = pool.add_node(1e10, 1);
  const auto b = pool.add_node(1e10, 1);
  ASSERT_TRUE(pool.submit({1, 1, 2e9, 4}).has_value());
  ASSERT_TRUE(pool.submit({2, 2, 2e9, 4}).has_value());
  // Kill whichever node holds task 1.
  const auto loc = *pool.location(1);
  pool.set_node_alive(loc, false);
  EXPECT_EQ(pool.rebalance(), 0u);
  const auto other = loc == a ? b : a;
  EXPECT_EQ(*pool.location(1), other);
  EXPECT_EQ(pool.running_tasks(), 2u);
}

TEST(ComputePool, AccountingConsistency) {
  ComputePool pool({.per_principal_capacity_cap = 1.0});  // quota off
  pool.add_node(1e10, 1);
  pool.submit({1, 5, 3e9, 4});
  pool.submit({2, 5, 1e9, 4});
  EXPECT_DOUBLE_EQ(pool.used_capacity(), 4e9);
  EXPECT_DOUBLE_EQ(pool.principal_usage(5), 4e9);
  pool.finish(1);
  EXPECT_DOUBLE_EQ(pool.used_capacity(), 1e9);
  EXPECT_DOUBLE_EQ(pool.principal_usage(5), 1e9);
  pool.finish(999);  // unknown id: no-op
  EXPECT_EQ(pool.running_tasks(), 1u);
}

// ----------------------------------------------------------- Perception ----

TEST(ModalitySwitcher, SwitchesOnYieldCollapse) {
  ModalitySwitcher sw({things::Modality::kCamera, things::Modality::kSeismic});
  // Healthy camera phase.
  for (int i = 0; i < 10; ++i) sw.feed(things::Modality::kCamera, 10.0);
  EXPECT_EQ(sw.current(), things::Modality::kCamera);
  // Jamming: camera yield collapses; seismic keeps producing (fed by the
  // redundant sensors' sweeps).
  bool switched = false;
  for (int i = 0; i < 20 && !switched; ++i) {
    sw.feed(things::Modality::kSeismic, 6.0);
    switched = sw.feed(things::Modality::kCamera, 0.0);
  }
  EXPECT_TRUE(switched);
  EXPECT_EQ(sw.current(), things::Modality::kSeismic);
  EXPECT_EQ(sw.switch_count(), 1u);
}

TEST(ModalitySwitcher, NoSpuriousSwitchDuringWarmup) {
  ModalitySwitcher sw({things::Modality::kCamera, things::Modality::kSeismic});
  // Low yield from the start: no baseline yet, must not switch.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(sw.feed(things::Modality::kCamera, 0.0));
  }
  EXPECT_EQ(sw.current(), things::Modality::kCamera);
}

TEST(ModalitySwitcher, ForceOverride) {
  ModalitySwitcher sw({things::Modality::kCamera, things::Modality::kRadar});
  sw.force(things::Modality::kRadar);
  EXPECT_EQ(sw.current(), things::Modality::kRadar);
}

}  // namespace
}  // namespace iobt::adapt
