// Unit and property tests for the simulation kernel: time arithmetic, RNG
// determinism and distribution sanity, event ordering, metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "sim/geometry.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace iobt::sim {
namespace {

// ---------------------------------------------------------------- Time ----

TEST(SimTime, ArithmeticRoundTrips) {
  const SimTime t = SimTime::seconds(1.5);
  EXPECT_EQ(t.nanos(), 1'500'000'000);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.5);
  const SimTime t2 = t + Duration::millis(250);
  EXPECT_DOUBLE_EQ(t2.to_seconds(), 1.75);
  EXPECT_EQ((t2 - t).nanos(), Duration::millis(250).nanos());
}

TEST(SimTime, ComparisonIsTotalOrder) {
  EXPECT_LT(SimTime::seconds(1.0), SimTime::seconds(2.0));
  EXPECT_EQ(SimTime::millis(1000), SimTime::seconds(1.0));
  // ~292 years of nanoseconds fit in int64; 10^9 s is comfortably inside.
  EXPECT_GT(SimTime::max(), SimTime::seconds(1e9));
}

TEST(Duration, ScalingOperators) {
  EXPECT_EQ((Duration::millis(10) * 3).nanos(), Duration::millis(30).nanos());
  EXPECT_EQ((Duration::seconds(1.0) * 0.5).nanos(), Duration::millis(500).nanos());
}

// ----------------------------------------------------------------- Rng ----

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ChildStreamsIndependentOfSiblingOrder) {
  Rng parent(7);
  Rng c1 = parent.child(1);
  Rng c2 = parent.child(2);
  // Recreating children in the other order yields identical streams.
  Rng parent2(7);
  Rng d2 = parent2.child(2);
  Rng d1 = parent2.child(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(c1.next_u64(), d1.next_u64());
    EXPECT_EQ(c2.next_u64(), d2.next_u64());
  }
}

TEST(Rng, ChildByNameIsStable) {
  Rng parent(7);
  Rng a = parent.child("alpha");
  Rng b = parent.child("alpha");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
}

TEST(Rng, UniformIntSingleton) {
  Rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(4, 4), 4);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng r(17);
  for (double mean : {0.5, 3.0, 50.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, BernoulliProbability) {
  Rng r(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng r(23);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng r(29);
  EXPECT_THROW(r.categorical({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, ZipfRankOneMostFrequent) {
  Rng r(31);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 20000; ++i) ++counts[static_cast<std::size_t>(r.zipf(10, 1.2))];
  for (int k = 2; k <= 10; ++k) EXPECT_GT(counts[1], counts[static_cast<std::size_t>(k)]);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng r(37);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = r.sample_indices(50, 10);
    ASSERT_EQ(s.size(), 10u);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (auto i : s) EXPECT_LT(i, 50u);
  }
}

TEST(Rng, SampleIndicesAllWhenKTooLarge) {
  Rng r(41);
  auto s = r.sample_indices(5, 10);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ------------------------------------------------------------ Simulator ----

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::seconds(3.0), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::seconds(1.0), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::seconds(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::seconds(3.0));
}

TEST(Simulator, EqualTimestampsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::seconds(1.0), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule_at(SimTime::seconds(5.0), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::seconds(1.0), [] {}), std::logic_error);
  EXPECT_THROW(sim.schedule_in(Duration::seconds(-1.0), [] {}), std::logic_error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(SimTime::seconds(1.0), [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed_count(), 0u);
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  Simulator sim;
  sim.cancel(12345);  // must not crash
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CancelAlreadyFiredIdIsNoop) {
  Simulator sim;
  int ran = 0;
  const EventId id = sim.schedule_at(SimTime::seconds(1.0), [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
  sim.cancel(id);  // already executed: harmless
  // The freed slot can be reused; the stale cancel must not affect it.
  sim.schedule_at(SimTime::seconds(2.0), [&] { ++ran; });
  sim.cancel(id);  // still a no-op even though the slot is reoccupied
  sim.run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.executed_count(), 2u);
}

TEST(Simulator, CancelFromInsideRunningHandler) {
  Simulator sim;
  bool later_ran = false;
  EventId self_id = 0;
  const EventId later = sim.schedule_at(SimTime::seconds(2.0),
                                        [&] { later_ran = true; });
  self_id = sim.schedule_at(SimTime::seconds(1.0), [&] {
    sim.cancel(later);    // cancel a pending event from a handler
    sim.cancel(self_id);  // cancelling the currently-running id: no-op
  });
  sim.run();
  EXPECT_FALSE(later_ran);
  EXPECT_EQ(sim.executed_count(), 1u);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulator, StaleIdDoesNotCancelSlotReuse) {
  Simulator sim;
  bool victim_ran = false;
  // Schedule + cancel churn so the next schedule reuses a freed slot.
  const EventId a = sim.schedule_at(SimTime::seconds(1.0), [] {});
  sim.cancel(a);
  const EventId b = sim.schedule_at(SimTime::seconds(1.0),
                                    [&] { victim_ran = true; });
  EXPECT_NE(a, b);  // generation stamp differs even if the slot is shared
  sim.cancel(a);    // stale id must not kill the new occupant
  sim.run();
  EXPECT_TRUE(victim_ran);
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(SimTime::seconds(1.0), [] {});
  sim.schedule_at(SimTime::seconds(2.0), [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.cancel(a);  // double-cancel does not underflow
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.executed_count(), 1u);
}

TEST(Simulator, RunUntilWithCancelledFrontEventsAdvancesClock) {
  Simulator sim;
  int ran = 0;
  const EventId a = sim.schedule_at(SimTime::seconds(1.0), [&] { ++ran; });
  sim.schedule_at(SimTime::seconds(10.0), [&] { ++ran; });
  sim.cancel(a);
  sim.run_until(SimTime::seconds(5.0));  // front of the heap is stale
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(sim.now(), SimTime::seconds(5.0));
  EXPECT_EQ(sim.pending_count(), 1u);  // post-deadline event stays queued
  sim.run();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, HeavyCancelChurnStaysConsistent) {
  // Exercises slot reuse and heap compaction: far more cancels than
  // survivors, interleaved with execution.
  Simulator sim;
  std::uint64_t fired = 0;
  std::vector<EventId> armed;
  for (int round = 0; round < 20; ++round) {
    for (const EventId id : armed) sim.cancel(id);
    armed.clear();
    for (int i = 0; i < 500; ++i) {
      armed.push_back(sim.schedule_at(
          SimTime::seconds(100.0 + round), [&] { ++fired; }));
    }
  }
  EXPECT_EQ(sim.pending_count(), 500u);  // only the last round survives
  sim.run();
  EXPECT_EQ(fired, 500u);
  EXPECT_EQ(sim.executed_count(), 500u);
  EXPECT_EQ(sim.pending_count(), 0u);
}

// ------------------------------------------------- Tags and profiling ----

TEST(TagTable, InternIsIdempotentAndDense) {
  TagTable t;
  EXPECT_EQ(t.intern(""), kUntagged);
  const TagId a = t.intern("net.deliver");
  const TagId b = t.intern("rel.rto");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.intern("net.deliver"), a);
  EXPECT_EQ(t.name(a), "net.deliver");
  EXPECT_EQ(t.size(), 3u);  // "", net.deliver, rel.rto
}

TEST(Simulator, ProfileCountsPerTag) {
  Simulator sim;
  const TagId rto = sim.intern("rel.rto");
  const EventId cancelled =
      sim.schedule_at(SimTime::seconds(1.0), [] {}, rto);
  sim.schedule_at(SimTime::seconds(2.0), [] {}, rto);
  sim.schedule_at(SimTime::seconds(3.0), [] {}, rto);
  sim.schedule_at(SimTime::seconds(1.0), [] {}, "other.tag");
  sim.cancel(cancelled);
  sim.run();
  bool found_rto = false, found_other = false;
  for (const auto& row : sim.profile()) {
    if (row.tag == "rel.rto") {
      found_rto = true;
      EXPECT_EQ(row.scheduled, 3u);
      EXPECT_EQ(row.executed, 2u);
      EXPECT_EQ(row.cancelled, 1u);
    } else if (row.tag == "other.tag") {
      found_other = true;
      EXPECT_EQ(row.scheduled, 1u);
      EXPECT_EQ(row.executed, 1u);
      EXPECT_EQ(row.cancelled, 0u);
    }
  }
  EXPECT_TRUE(found_rto);
  EXPECT_TRUE(found_other);
  EXPECT_NE(sim.profile_table().find("rel.rto"), std::string::npos);
}

TEST(Simulator, ProfilingAccumulatesBusyTimeWhenEnabled) {
  Simulator sim;
  sim.set_profiling(true);
  sim.schedule_at(SimTime::seconds(1.0), [] {
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x = x + static_cast<double>(i);
  }, "work");
  sim.run();
  for (const auto& row : sim.profile()) {
    if (row.tag == "work") {
      EXPECT_GT(row.busy_ms, 0.0);
    }
  }
}

TEST(Simulator, ProfilingSurvivesNewTagsInternedByHandler) {
  // Regression: step() used to hold a TagStats& across the handler call;
  // a handler that interns fresh tags resizes stats_ and the post-handler
  // busy-time write landed in freed memory (caught by ASan).
  Simulator sim;
  sim.set_profiling(true);
  sim.schedule_at(SimTime::seconds(1.0), [&] {
    for (int i = 0; i < 64; ++i) {
      sim.schedule_in(Duration::seconds(1.0), [] {},
                      "fresh.tag." + std::to_string(i));
    }
  }, "spawner");
  sim.run();
  bool found = false;
  for (const auto& row : sim.profile()) {
    if (row.tag == "spawner") {
      found = true;
      EXPECT_EQ(row.executed, 1u);
      EXPECT_GE(row.busy_ms, 0.0);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(sim.executed_count(), 65u);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_in(Duration::seconds(1.0), chain);
  };
  sim.schedule_in(Duration::seconds(1.0), chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), SimTime::seconds(5.0));
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(SimTime::seconds(1.0), [&] { ++ran; });
  sim.schedule_at(SimTime::seconds(10.0), [&] { ++ran; });
  sim.run_until(SimTime::seconds(5.0));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(5.0));
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, PeriodicStopsWhenCallbackReturnsFalse) {
  Simulator sim;
  int ticks = 0;
  sim.schedule_every(Duration::seconds(1.0), [&] { return ++ticks < 4; });
  sim.run();
  EXPECT_EQ(ticks, 4);
  EXPECT_EQ(sim.now(), SimTime::seconds(4.0));
}

TEST(Simulator, PeriodicStateFreedWhenSimulatorDestroyedWhileArmed) {
  // Regression: the periodic loop's shared state used to hold itself alive
  // through a state->tick->state shared_ptr cycle, leaking every loop still
  // armed at Simulator teardown.
  auto sentinel = std::make_shared<int>(0);
  std::weak_ptr<int> observer = sentinel;
  {
    Simulator sim;
    sim.schedule_every(Duration::seconds(1.0), [s = std::move(sentinel)] {
      ++*s;
      return true;  // never stops on its own
    });
    sim.run_for(Duration::seconds(3.0));
    EXPECT_FALSE(observer.expired());
    EXPECT_EQ(*observer.lock(), 3);
  }
  EXPECT_TRUE(observer.expired());
}

TEST(Simulator, PeriodicRejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_every(Duration::zero(), [] { return true; }),
               std::logic_error);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
}

// -------------------------------------------------------------- Metrics ----

TEST(Summary, MeanVarianceMinMax) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Summary, QuantilesOnUniformStream) {
  Summary s;
  for (int i = 0; i < 1000; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.quantile(0.5), 500.0, 1.0);
  EXPECT_NEAR(s.quantile(0.99), 990.0, 1.5);
}

TEST(Summary, ReservoirKeepsQuantilesApproximateBeyondCapacity) {
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(static_cast<double>(i % 1000));
  EXPECT_NEAR(s.quantile(0.5), 500.0, 50.0);
  EXPECT_EQ(s.count(), 100000u);
}

TEST(MetricsRegistry, CountersGaugesSummaries) {
  MetricsRegistry m;
  m.count("drops");
  m.count("drops", 2.0);
  m.gauge("load", 0.7);
  m.observe("lat", 1.0);
  m.observe("lat", 3.0);
  EXPECT_DOUBLE_EQ(m.counter("drops"), 3.0);
  EXPECT_DOUBLE_EQ(m.gauge_value("load"), 0.7);
  ASSERT_NE(m.summary("lat"), nullptr);
  EXPECT_DOUBLE_EQ(m.summary("lat")->mean(), 2.0);
  EXPECT_EQ(m.summary("missing"), nullptr);
  EXPECT_DOUBLE_EQ(m.counter("missing"), 0.0);
}

// ------------------------------------------------------------- Geometry ----

TEST(Geometry, VectorOps) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  const Vec2 u = a.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Vec2{}.normalized().norm(), 0.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
}

TEST(Geometry, RectContainsAndClamps) {
  const Rect r{{0, 0}, {10, 20}};
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_FALSE(r.contains({11, 5}));
  EXPECT_EQ(r.clamp({-5, 25}), (Vec2{0, 20}));
  EXPECT_DOUBLE_EQ(r.area(), 200.0);
  EXPECT_EQ(r.center(), (Vec2{5, 10}));
}

// Property sweep: simulator determinism under random workloads.
class SimDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimDeterminism, IdenticalSeedsProduceIdenticalTraces) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    Rng rng(seed);
    std::vector<std::int64_t> trace;
    std::vector<EventId> ids;
    for (int i = 0; i < 200; ++i) {
      ids.push_back(
          sim.schedule_at(SimTime::micros(rng.uniform_int(0, 1'000'000)),
                          [&trace, &sim] { trace.push_back(sim.now().nanos()); }));
    }
    // Random cancellations must be part of the deterministic trace too.
    for (const EventId id : ids) {
      if (rng.bernoulli(0.3)) sim.cancel(id);
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(run_once(GetParam()), run_once(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDeterminism,
                         ::testing::Values(1ULL, 42ULL, 9999ULL, 0xDEADBEEFULL));

}  // namespace
}  // namespace iobt::sim
