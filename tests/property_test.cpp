// Cross-module property tests: invariants that must hold over randomized
// inputs, parameterized by seed. These complement the per-module unit
// tests with the "for all" style checks the guides call for.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "checkpoint_scenario.h"
#include "intent/games.h"
#include "learn/aggregation.h"
#include "net/network.h"
#include "sim/checkpoint.h"
#include "sim/runner.h"
#include "social/claims.h"
#include "synthesis/composer.h"
#include "track/kalman.h"

namespace iobt {
namespace {

using sim::Rng;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

// ------------------------------------------------------------- Composer ----

TEST_P(SeedSweep, ComposerCoverageMonotoneInMembers) {
  Rng rng(GetParam());
  std::vector<synthesis::Candidate> cands;
  for (std::uint32_t i = 0; i < 25; ++i) {
    synthesis::Candidate c;
    c.asset = i;
    c.position = {rng.uniform(0, 1000), rng.uniform(0, 1000)};
    c.sensors = {{things::Modality::kCamera, rng.uniform(100, 400), 0.9, 0.01}};
    cands.push_back(std::move(c));
  }
  synthesis::MissionSpec spec;
  spec.sensing.push_back({things::Modality::kCamera, {{0, 0}, {1000, 1000}}, 0.5,
                          0.5, 6});
  synthesis::Composer comp(spec, cands, [](std::size_t) { return 1; });

  // Coverage of a growing prefix of members never decreases.
  std::vector<std::size_t> members;
  double prev = -1.0;
  for (std::size_t i = 0; i < cands.size(); i += 3) {
    members.push_back(i);
    const auto a = comp.evaluate(members);
    EXPECT_GE(a.sensing_coverage[0], prev - 1e-12);
    EXPECT_GE(a.sensing_coverage[0], 0.0);
    EXPECT_LE(a.sensing_coverage[0], 1.0);
    prev = a.sensing_coverage[0];
  }
}

TEST_P(SeedSweep, ComposerOutputIsSortedUniqueAndAdmissible) {
  Rng rng(GetParam() * 13 + 1);
  std::vector<synthesis::Candidate> cands;
  for (std::uint32_t i = 0; i < 30; ++i) {
    synthesis::Candidate c;
    c.asset = i;
    c.position = {rng.uniform(0, 800), rng.uniform(0, 800)};
    c.sensors = {{things::Modality::kCamera, rng.uniform(100, 300), 0.8, 0.01}};
    c.trust = rng.uniform(0.2, 1.0);
    cands.push_back(std::move(c));
  }
  synthesis::MissionSpec spec;
  spec.sensing.push_back({things::Modality::kCamera, {{0, 0}, {800, 800}}, 0.6, 0.5, 5});
  spec.min_member_trust = 0.5;
  synthesis::Composer comp(spec, cands, [](std::size_t) { return 1; });
  const auto c = comp.compose(synthesis::Solver::kGreedy);

  EXPECT_TRUE(std::is_sorted(c.member_indices.begin(), c.member_indices.end()));
  std::set<std::size_t> uniq(c.member_indices.begin(), c.member_indices.end());
  EXPECT_EQ(uniq.size(), c.member_indices.size());
  for (std::size_t m : c.member_indices) {
    EXPECT_GE(cands[m].trust, 0.5);  // admission gate respected
  }
}

// ------------------------------------------------------------- Potential ----

TEST_P(SeedSweep, WluIsExactPotential) {
  // For every unilateral deviation, utility delta == welfare delta.
  Rng rng(GetParam() * 7 + 3);
  const auto g = intent::TaskAllocationGame::random_instance(8, 4, rng);
  intent::JointAction joint(8, 0);
  for (std::size_t i = 0; i < 8; ++i) {
    joint[i] = static_cast<std::size_t>(rng.uniform_int(0, 4));  // incl. idle
  }
  for (std::size_t agent = 0; agent < 8; ++agent) {
    for (std::size_t action = 0; action <= 4; ++action) {
      intent::JointAction moved = joint;
      moved[agent] = action;
      const double du = g.utility(agent, moved) - g.utility(agent, joint);
      const double dw = g.welfare(moved) - g.welfare(joint);
      EXPECT_NEAR(du, dw, 1e-10);
    }
  }
}

// ----------------------------------------------------------- Aggregation ----

TEST_P(SeedSweep, AggregatorsArePermutationInvariant) {
  Rng rng(GetParam() * 31 + 5);
  std::vector<learn::Vec> updates;
  for (int i = 0; i < 9; ++i) {
    learn::Vec v(4);
    for (double& x : v) x = rng.normal(0, 2);
    updates.push_back(std::move(v));
  }
  auto shuffled = updates;
  rng.shuffle(shuffled);
  for (auto rule : {learn::AggregationRule::kMean, learn::AggregationRule::kMedian,
                    learn::AggregationRule::kTrimmedMean,
                    learn::AggregationRule::kGeometricMedian}) {
    const auto a = learn::aggregate(rule, updates, 2);
    const auto b = learn::aggregate(rule, shuffled, 2);
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_NEAR(a[k], b[k], 1e-9) << learn::to_string(rule) << " coord " << k;
    }
  }
}

TEST_P(SeedSweep, RobustAggregatesStayInCoordinateRange) {
  // Median/trimmed-mean outputs lie within the per-coordinate min/max of
  // the inputs (mean does too, trivially).
  Rng rng(GetParam() * 17 + 11);
  std::vector<learn::Vec> updates;
  for (int i = 0; i < 7; ++i) {
    learn::Vec v(3);
    for (double& x : v) x = rng.uniform(-10, 10);
    updates.push_back(std::move(v));
  }
  for (auto rule : {learn::AggregationRule::kMedian,
                    learn::AggregationRule::kTrimmedMean}) {
    const auto a = learn::aggregate(rule, updates, 2);
    for (std::size_t k = 0; k < a.size(); ++k) {
      double lo = 1e18, hi = -1e18;
      for (const auto& u : updates) {
        lo = std::min(lo, u[k]);
        hi = std::max(hi, u[k]);
      }
      EXPECT_GE(a[k], lo - 1e-12);
      EXPECT_LE(a[k], hi + 1e-12);
    }
  }
}

// ------------------------------------------------------ Truth discovery ----

TEST_P(SeedSweep, EmIsClaimOrderInvariant) {
  Rng rng(GetParam() * 41 + 2);
  social::ClaimGenConfig cfg;
  cfg.num_sources = 20;
  cfg.num_variables = 50;
  cfg.adversary_fraction = 0.2;
  auto g = social::generate_claims(cfg, rng);
  auto shuffled = g.claims;
  rng.shuffle(shuffled);
  const auto a = social::em_truth_discovery(g.claims, 20, 50);
  const auto b = social::em_truth_discovery(shuffled, 20, 50);
  for (std::size_t j = 0; j < 50; ++j) {
    EXPECT_NEAR(a.truth_probability[j], b.truth_probability[j], 1e-9);
  }
}

// --------------------------------------------------------------- Kalman ----

TEST_P(SeedSweep, KalmanSigmaStaysPositiveAndBounded) {
  Rng rng(GetParam() * 3 + 7);
  track::Kalman2D kf({0, 0}, 20.0, rng.uniform(0.01, 2.0), rng.uniform(1.0, 10.0));
  for (int i = 0; i < 200; ++i) {
    kf.predict(rng.uniform(0.1, 2.0));
    if (rng.bernoulli(0.7)) {
      kf.update({rng.uniform(-100, 100), rng.uniform(-100, 100)});
    }
    const auto e = kf.estimate();
    EXPECT_GT(e.position_sigma, 0.0);
    EXPECT_LT(e.position_sigma, 1e4);  // never blows up
    EXPECT_TRUE(std::isfinite(e.position.x));
    EXPECT_TRUE(std::isfinite(e.position.y));
  }
}

// -------------------------------------------------------------- Network ----

TEST_P(SeedSweep, MultiHopHopCountMatchesShortestPath) {
  sim::Simulator sim;
  net::Network net(sim, net::ChannelModel(2.0, 0.0), Rng(GetParam()));
  Rng layout(GetParam() * 19 + 23);
  std::vector<net::NodeId> ids;
  for (int i = 0; i < 25; ++i) {
    ids.push_back(net.add_node({layout.uniform(0, 600), layout.uniform(0, 600)},
                               {.range_m = 220, .base_loss = 0.0}));
  }
  const auto topo = net.connectivity();
  const auto bfs_hops = topo.hop_distances(ids[0]);
  // The network routes along DISTANCE-weighted shortest paths, so the hop
  // count must equal that path's length and can never beat the BFS bound.
  const auto sp = topo.shortest_paths(ids[0]);

  for (int trial = 0; trial < 5; ++trial) {
    const auto dst =
        ids[static_cast<std::size_t>(layout.uniform_int(1, 24))];
    if (bfs_hops[dst] < 0) {
      EXPECT_FALSE(net.route_exists(ids[0], dst));
      continue;
    }
    const int expected =
        static_cast<int>(sp.path_to(dst).size()) - 1;
    int got_hops = -1;
    net.set_handler(dst, [&](const net::Message& m) { got_hops = m.hops; });
    ASSERT_TRUE(net.route_and_send(ids[0], dst, {.kind = "p", .size_bytes = 8}));
    sim.run();
    EXPECT_EQ(got_hops, expected);
    EXPECT_GE(got_hops, bfs_hops[dst]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 5ULL, 8ULL, 13ULL));

// ------------------------------------------- Determinism under parallelism ----
//
// The ParallelRunner promises that worker count is unobservable: for a fixed
// seed set, the aggregated metrics and payloads are bit-identical across
// {1, 2, 8} workers, identical to a hand-rolled serial loop, and identical
// run-to-run. The replication body below is deliberately nontrivial — its own
// Simulator with tagged schedule/cancel churn plus its own Rng substreams —
// so any cross-replication sharing or ordering leak would perturb the bits.

namespace det {

std::uint64_t bits_of(double x) {
  std::uint64_t b = 0;
  std::memcpy(&b, &x, sizeof b);
  return b;
}

double replication_body(sim::ReplicationContext& ctx) {
  sim::Simulator s;
  sim::Rng rng = ctx.make_rng();
  const sim::TagId tick = s.intern("det.tick");
  const sim::TagId rto = s.intern("det.rto");
  std::vector<sim::EventId> pending;
  double acc = 0;
  for (int i = 0; i < 200; ++i) {
    const auto id = s.schedule_in(
        sim::Duration::micros(rng.uniform_int(1, 500'000)),
        [&acc, &rng] { acc += rng.uniform(); }, i % 2 == 0 ? tick : rto);
    pending.push_back(id);
  }
  for (const auto id : pending) {
    if (rng.bernoulli(0.25)) s.cancel(id);
  }
  s.run();
  ctx.metrics.count("executed", static_cast<double>(s.executed_count()));
  ctx.metrics.observe("acc", acc);
  ctx.metrics.observe("final_time_s", s.now().to_seconds());
  ctx.capture_profile(s);
  return acc + static_cast<double>(s.executed_count());
}

}  // namespace det

TEST(ParallelDeterminism, WorkerCountIsUnobservableAndRunsAreRepeatable) {
  const auto seeds = sim::ParallelRunner::seed_range(100, 12);

  // Reference: a hand-rolled serial loop, no runner involved.
  sim::MetricsRegistry expected_merged;
  std::vector<std::uint64_t> expected_bits;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    sim::ReplicationContext ctx;
    ctx.seed = seeds[i];
    ctx.index = i;
    expected_bits.push_back(det::bits_of(det::replication_body(ctx)));
    expected_merged.merge_from(ctx.metrics);
  }
  const std::uint64_t expected_digest = expected_merged.digest();

  for (std::size_t workers : {1u, 2u, 8u}) {
    // Run each configuration twice to catch run-to-run nondeterminism.
    for (int repeat = 0; repeat < 2; ++repeat) {
      const sim::ParallelRunner runner(workers);
      const auto outcome = runner.run<double>(seeds, det::replication_body);
      EXPECT_EQ(outcome.failures, 0u);
      ASSERT_EQ(outcome.replications.size(), seeds.size());
      EXPECT_EQ(outcome.merged.digest(), expected_digest)
          << "workers=" << workers << " repeat=" << repeat;
      for (std::size_t i = 0; i < seeds.size(); ++i) {
        EXPECT_EQ(det::bits_of(outcome.replications[i].payload),
                  expected_bits[i])
            << "workers=" << workers << " repeat=" << repeat << " rep=" << i;
      }
    }
  }
}

// ------------------------------------------ Spatial index equivalence ----
//
// The wireless substrate promises that the spatial grid changes wall time
// only: for a fixed seed, a broadcast-heavy mobile scenario must produce
// bit-identical metrics digests with the index on or off, under any worker
// count, with per-replication payloads to match. This is the end-to-end
// guarantee the bench (bench_network) enforces at scale.

namespace spatial {

double substrate_body(sim::ReplicationContext& ctx, bool use_grid) {
  sim::Simulator s;
  net::Network network(s, net::ChannelModel(), ctx.make_rng());
  network.set_spatial_index_enabled(use_grid);
  sim::Rng layout(ctx.seed ^ 0xD15C0ULL);
  std::vector<net::NodeId> ids;
  for (int i = 0; i < 60; ++i) {
    ids.push_back(network.add_node({layout.uniform(0, 1000), layout.uniform(0, 1000)},
                                   {.range_m = 250, .base_loss = 0.1}));
  }
  std::uint64_t delivered = 0;
  for (const auto id : ids) {
    network.set_handler(id, [&](const net::Message&) { ++delivered; });
  }
  double edges = 0;
  for (int round = 0; round < 5; ++round) {
    for (const auto id : ids) {
      network.set_position(id, {layout.uniform(0, 1000), layout.uniform(0, 1000)});
    }
    for (const auto id : ids) {
      network.broadcast(id, net::Message{.kind = "hello", .size_bytes = 16});
      network.route_and_send(ids[0], id, net::Message{.kind = "data", .size_bytes = 64});
    }
    s.run();
    edges += static_cast<double>(network.connectivity().edge_count());
  }
  ctx.metrics.merge_from(network.metrics());
  ctx.metrics.count("delivered", static_cast<double>(delivered));
  ctx.metrics.count("edges", edges);
  return static_cast<double>(delivered) + edges;
}

}  // namespace spatial

class SpatialIndexEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpatialIndexEquivalence, GridAndBruteDigestsIdenticalUnderWorkers) {
  const std::size_t workers = GetParam();
  const auto seeds = sim::ParallelRunner::seed_range(4242, 8);

  // Reference: brute-force enumeration, hand-rolled serial loop.
  sim::MetricsRegistry ref_merged;
  std::vector<double> ref_payloads;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    sim::ReplicationContext ctx;
    ctx.seed = seeds[i];
    ctx.index = i;
    ref_payloads.push_back(spatial::substrate_body(ctx, /*use_grid=*/false));
    ref_merged.merge_from(ctx.metrics);
  }
  const std::uint64_t ref_digest = ref_merged.digest();

  for (const bool use_grid : {true, false}) {
    const sim::ParallelRunner runner(workers);
    const auto outcome = runner.run<double>(seeds, [use_grid](sim::ReplicationContext& ctx) {
      return spatial::substrate_body(ctx, use_grid);
    });
    EXPECT_EQ(outcome.failures, 0u);
    ASSERT_EQ(outcome.replications.size(), seeds.size());
    EXPECT_EQ(outcome.merged.digest(), ref_digest)
        << "workers=" << workers << " grid=" << use_grid;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      EXPECT_EQ(outcome.replications[i].payload, ref_payloads[i])
          << "workers=" << workers << " grid=" << use_grid << " rep=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, SpatialIndexEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}));

// ----------------------------- Connectivity maintenance equivalence ----
//
// The incremental edge store promises the same contract the grid does:
// wall time only. A churn-heavy scenario — liveness flips and mobility
// interleaved into a broadcast storm, multi-hop sends over the shifting
// topology — must produce bit-identical digests, payloads, and epochs
// across {grid, brute} x {incremental, full-rebuild}, under any worker
// count, against a hand-rolled serial brute+rebuild reference.

namespace churn {

double substrate_body(sim::ReplicationContext& ctx, bool use_grid,
                      bool use_incremental, bool layered = false) {
  sim::Simulator s;
  net::Network network(s, net::ChannelModel(), ctx.make_rng());
  network.set_spatial_index_enabled(use_grid);
  network.set_incremental_connectivity_enabled(use_incremental);
  sim::Rng layout(ctx.seed ^ 0xC4012ULL);
  std::vector<net::NodeId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(network.add_node({layout.uniform(0, 900), layout.uniform(0, 900)},
                                   {.range_m = 250, .base_loss = 0.1}));
  }
  std::uint64_t delivered = 0;
  for (const auto id : ids) {
    network.set_handler(id, [&](const net::Message&) { ++delivered; });
  }
  double edges = 0;
  sim::Rng mutate(ctx.seed ^ 0x5EED5ULL);
  for (int round = 0; round < 6; ++round) {
    // Churn mid-broadcast-storm: liveness flips and moves interleave with
    // the traffic, so routes are computed over a topology that changes
    // between — and because of — the sends. Down senders/receivers and
    // self-sends to down nodes are all exercised deterministically.
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const net::NodeId id = ids[k];
      const double roll = mutate.uniform(0.0, 1.0);
      if (roll < 0.25) {
        network.set_node_up(id, !network.node_up(id));
      } else if (roll < 0.75) {
        network.set_position(id, {mutate.uniform(0, 900), mutate.uniform(0, 900)});
      }
      if (layered && k % 7 == 0) {
        // Single-layer gateway churn: with no second layer to bridge, the
        // flips must change no link, bump no epoch, and draw no RNG —
        // i.e. be entirely unobservable next to the flat run.
        network.set_gateway(id, !network.is_gateway(id));
      }
      if (k % 5 == 0) {
        network.broadcast(id, net::Message{.kind = "hello", .size_bytes = 16});
      }
      const net::NodeId dst = ids[(k * 7 + static_cast<std::size_t>(round)) % ids.size()];
      network.route_and_send(id, dst, net::Message{.kind = "data", .size_bytes = 48});
    }
    s.run();
    edges += static_cast<double>(network.connectivity().edge_count());
  }
  ctx.metrics.merge_from(network.metrics());
  ctx.metrics.count("delivered", static_cast<double>(delivered));
  ctx.metrics.count("edges", edges);
  ctx.metrics.count("epoch", static_cast<double>(network.topology_epoch()));
  return static_cast<double>(delivered) + edges +
         static_cast<double>(network.topology_epoch());
}

}  // namespace churn

class ConnectivityMaintenanceEquivalence
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConnectivityMaintenanceEquivalence, AllModesDigestsIdenticalUnderChurn) {
  const std::size_t workers = GetParam();
  const auto seeds = sim::ParallelRunner::seed_range(31337, 8);

  // Reference: brute-force enumeration + full rebuilds, hand-rolled serial
  // loop.
  sim::MetricsRegistry ref_merged;
  std::vector<double> ref_payloads;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    sim::ReplicationContext ctx;
    ctx.seed = seeds[i];
    ctx.index = i;
    ref_payloads.push_back(
        churn::substrate_body(ctx, /*use_grid=*/false, /*use_incremental=*/false));
    ref_merged.merge_from(ctx.metrics);
  }
  const std::uint64_t ref_digest = ref_merged.digest();

  for (const bool use_grid : {true, false}) {
    for (const bool use_incremental : {true, false}) {
      const sim::ParallelRunner runner(workers);
      const auto outcome = runner.run<double>(
          seeds, [use_grid, use_incremental](sim::ReplicationContext& ctx) {
            return churn::substrate_body(ctx, use_grid, use_incremental);
          });
      EXPECT_EQ(outcome.failures, 0u);
      ASSERT_EQ(outcome.replications.size(), seeds.size());
      EXPECT_EQ(outcome.merged.digest(), ref_digest)
          << "workers=" << workers << " grid=" << use_grid
          << " incremental=" << use_incremental;
      for (std::size_t i = 0; i < seeds.size(); ++i) {
        EXPECT_EQ(outcome.replications[i].payload, ref_payloads[i])
            << "workers=" << workers << " grid=" << use_grid
            << " incremental=" << use_incremental << " rep=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ConnectivityMaintenanceEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}));

// ---------------------------------------------- Layered equivalence ----
//
// A one-layer layered network IS a flat network: the per-node layer slab,
// the link_allowed gate, and gateway flips with nothing to bridge must all
// be unobservable. The layered churn body (same substrate churn plus
// gateway flips on every 7th node per round) is swept across {grid, brute}
// x {incremental, rebuild} x workers {1, 2, 8} and compared digest- and
// payload-identical to the flat serial brute+rebuild reference.

class LayeredEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LayeredEquivalence, OneLayerNetworkIsDigestIdenticalToFlat) {
  const std::size_t workers = GetParam();
  const auto seeds = sim::ParallelRunner::seed_range(42424, 8);

  // Reference: the FLAT body (no gateway calls at all), serial, brute,
  // full-rebuild.
  sim::MetricsRegistry ref_merged;
  std::vector<double> ref_payloads;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    sim::ReplicationContext ctx;
    ctx.seed = seeds[i];
    ctx.index = i;
    ref_payloads.push_back(churn::substrate_body(
        ctx, /*use_grid=*/false, /*use_incremental=*/false, /*layered=*/false));
    ref_merged.merge_from(ctx.metrics);
  }
  const std::uint64_t ref_digest = ref_merged.digest();

  for (const bool use_grid : {true, false}) {
    for (const bool use_incremental : {true, false}) {
      const sim::ParallelRunner runner(workers);
      const auto outcome = runner.run<double>(
          seeds, [use_grid, use_incremental](sim::ReplicationContext& ctx) {
            return churn::substrate_body(ctx, use_grid, use_incremental,
                                         /*layered=*/true);
          });
      EXPECT_EQ(outcome.failures, 0u);
      ASSERT_EQ(outcome.replications.size(), seeds.size());
      EXPECT_EQ(outcome.merged.digest(), ref_digest)
          << "workers=" << workers << " grid=" << use_grid
          << " incremental=" << use_incremental;
      for (std::size_t i = 0; i < seeds.size(); ++i) {
        EXPECT_EQ(outcome.replications[i].payload, ref_payloads[i])
            << "workers=" << workers << " grid=" << use_grid
            << " incremental=" << use_incremental << " rep=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, LayeredEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}));

// ------------------------------------------ Checkpoint equivalence ----
//
// The checkpoint layer promises digest identity: saving an adversarial
// scenario mid-jamming-window and mid-sybil-wave (t = 55 s: jamming is on,
// the first Sybil wave has landed, the second wave / both kills / the
// jamming-off edge are still pending), then restoring — into a FRESH stack
// built by the same scenario code, or rewinding the SAME stack in place —
// and running to the horizon must reproduce the uninterrupted run's digest
// bit-for-bit. Swept over 8 seeds, worker counts {1, 2, 8}, and the spatial
// index on/off, with the merged-metrics digest compared across all of them.

namespace ckpt {

/// One replication: uninterrupted vs fresh-stack branch vs in-place rewind.
/// Returns the number of digest mismatches (0 == the promise holds).
std::uint64_t equivalence_body(sim::ReplicationContext& ctx, bool use_grid) {
  using iobt::testing::CheckpointScenario;
  const sim::SimTime snap_at = sim::SimTime::seconds(55);
  const sim::SimTime horizon = sim::SimTime::seconds(120);

  // save() is non-destructive, so the source stack doubles as the
  // uninterrupted reference.
  CheckpointScenario source(ctx.seed, use_grid);
  source.sim.run_until(snap_at);
  const sim::Snapshot snap = source.sim.checkpoint().save();
  source.sim.run_until(horizon);
  const std::uint64_t uninterrupted = source.digest();

  CheckpointScenario branch(ctx.seed, use_grid);
  branch.sim.checkpoint().restore(snap);
  branch.sim.run_until(horizon);
  const std::uint64_t fresh_stack = branch.digest();

  source.sim.checkpoint().restore(snap);  // rewind 120 s -> 55 s
  source.sim.run_until(horizon);
  const std::uint64_t rewound = source.digest();

  std::uint64_t mismatches = 0;
  if (fresh_stack != uninterrupted) ++mismatches;
  if (rewound != uninterrupted) ++mismatches;
  // Fold the digest into the merged metrics so the cross-worker /
  // cross-grid comparison below also proves the scenario itself is
  // deterministic (not merely self-consistent per process).
  ctx.metrics.count("ckpt.digest_lo",
                    static_cast<double>(uninterrupted & 0xffffffffu));
  ctx.metrics.count("ckpt.digest_hi",
                    static_cast<double>(uninterrupted >> 32));
  ctx.metrics.count("ckpt.mismatches", static_cast<double>(mismatches));
  return mismatches;
}

}  // namespace ckpt

class CheckpointEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CheckpointEquivalence, RestoreDigestsIdenticalUnderWorkersAndGrid) {
  const std::size_t workers = GetParam();
  const auto seeds = sim::ParallelRunner::seed_range(777, 8);

  // Reference: hand-rolled serial loop, spatial index off.
  sim::MetricsRegistry ref_merged;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    sim::ReplicationContext ctx;
    ctx.seed = seeds[i];
    ctx.index = i;
    EXPECT_EQ(ckpt::equivalence_body(ctx, /*use_grid=*/false), 0u)
        << "seed " << seeds[i];
    ref_merged.merge_from(ctx.metrics);
  }
  const std::uint64_t ref_digest = ref_merged.digest();

  for (const bool use_grid : {true, false}) {
    const sim::ParallelRunner runner(workers);
    const auto outcome = runner.run<std::uint64_t>(
        seeds, [use_grid](sim::ReplicationContext& ctx) {
          return ckpt::equivalence_body(ctx, use_grid);
        });
    EXPECT_EQ(outcome.failures, 0u);
    ASSERT_EQ(outcome.replications.size(), seeds.size());
    EXPECT_EQ(outcome.merged.digest(), ref_digest)
        << "workers=" << workers << " grid=" << use_grid;
    for (const auto& r : outcome.replications) {
      EXPECT_EQ(r.payload, 0u)
          << "workers=" << workers << " grid=" << use_grid << " seed=" << r.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, CheckpointEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}));

// The cross-module invariants above sweep 6 seeds serially via TEST_P; the
// runner lets the same style of sweep go wide. These run 24 seeds on the
// pool and assert the invariant on the aggregated outcome.

TEST(RunnerSweep, AggregatorsPermutationInvariantAcrossManySeeds) {
  const sim::ParallelRunner runner(4);
  const auto outcome = runner.run<double>(
      sim::ParallelRunner::seed_range(1, 24), [](sim::ReplicationContext& ctx) {
        Rng rng(ctx.seed * 31 + 5);
        std::vector<learn::Vec> updates;
        for (int i = 0; i < 9; ++i) {
          learn::Vec v(4);
          for (double& x : v) x = rng.normal(0, 2);
          updates.push_back(std::move(v));
        }
        auto shuffled = updates;
        rng.shuffle(shuffled);
        double max_diff = 0;
        for (auto rule :
             {learn::AggregationRule::kMean, learn::AggregationRule::kMedian,
              learn::AggregationRule::kTrimmedMean,
              learn::AggregationRule::kGeometricMedian}) {
          const auto a = learn::aggregate(rule, updates, 2);
          const auto b = learn::aggregate(rule, shuffled, 2);
          for (std::size_t k = 0; k < a.size(); ++k) {
            max_diff = std::max(max_diff, std::abs(a[k] - b[k]));
          }
        }
        return max_diff;
      });
  EXPECT_EQ(outcome.failures, 0u);
  for (const auto& r : outcome.replications) {
    EXPECT_LT(r.payload, 1e-9) << "seed " << r.seed;
  }
}

TEST(RunnerSweep, ComposerAdmissionGateHoldsAcrossManySeeds) {
  const sim::ParallelRunner runner(4);
  const auto outcome = runner.run<std::size_t>(
      sim::ParallelRunner::seed_range(1, 24), [](sim::ReplicationContext& ctx) {
        Rng rng(ctx.seed * 13 + 1);
        std::vector<synthesis::Candidate> cands;
        for (std::uint32_t i = 0; i < 30; ++i) {
          synthesis::Candidate c;
          c.asset = i;
          c.position = {rng.uniform(0, 800), rng.uniform(0, 800)};
          c.sensors = {
              {things::Modality::kCamera, rng.uniform(100, 300), 0.8, 0.01}};
          c.trust = rng.uniform(0.2, 1.0);
          cands.push_back(std::move(c));
        }
        synthesis::MissionSpec spec;
        spec.sensing.push_back(
            {things::Modality::kCamera, {{0, 0}, {800, 800}}, 0.6, 0.5, 5});
        spec.min_member_trust = 0.5;
        synthesis::Composer comp(spec, cands, [](std::size_t) { return 1; });
        const auto c = comp.compose(synthesis::Solver::kGreedy);
        std::size_t violations = 0;
        if (!std::is_sorted(c.member_indices.begin(), c.member_indices.end())) {
          ++violations;
        }
        std::set<std::size_t> uniq(c.member_indices.begin(),
                                   c.member_indices.end());
        if (uniq.size() != c.member_indices.size()) ++violations;
        for (std::size_t m : c.member_indices) {
          if (cands[m].trust < 0.5) ++violations;
        }
        return violations;
      });
  EXPECT_EQ(outcome.failures, 0u);
  for (const auto& r : outcome.replications) {
    EXPECT_EQ(r.payload, 0u) << "seed " << r.seed;
  }
}

}  // namespace
}  // namespace iobt
