// Tests for target tracking: Kalman filtering, multi-target association,
// track management, clutter rejection, and trust-weighted fusion.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"
#include "track/behavior.h"
#include "track/tracker.h"

namespace iobt::track {
namespace {

using sim::Rng;
using sim::Vec2;

// --------------------------------------------------------------- Kalman ----

TEST(Kalman, ConvergesOnStationaryTarget) {
  Kalman2D kf({0, 0}, 20.0, 0.1, 5.0);
  Rng rng(1);
  const Vec2 truth{50, -30};
  for (int i = 0; i < 100; ++i) {
    kf.predict(1.0);
    kf.update({truth.x + rng.normal(0, 5.0), truth.y + rng.normal(0, 5.0)});
  }
  const auto e = kf.estimate();
  EXPECT_NEAR(e.position.x, truth.x, 3.0);
  EXPECT_NEAR(e.position.y, truth.y, 3.0);
  EXPECT_LT(e.velocity.norm(), 1.0);
  EXPECT_LT(e.position_sigma, 5.0);  // tighter than the raw measurement
}

TEST(Kalman, EstimatesVelocityOfMovingTarget) {
  Kalman2D kf({0, 0}, 10.0, 0.5, 3.0);
  Rng rng(2);
  for (int i = 1; i <= 80; ++i) {
    kf.predict(1.0);
    const double t = static_cast<double>(i);
    kf.update({2.0 * t + rng.normal(0, 3.0), -1.0 * t + rng.normal(0, 3.0)});
  }
  const auto e = kf.estimate();
  EXPECT_NEAR(e.velocity.x, 2.0, 0.4);
  EXPECT_NEAR(e.velocity.y, -1.0, 0.4);
}

TEST(Kalman, PredictionCoastsAlongVelocity) {
  Kalman2D kf({0, 0}, 5.0, 0.1, 2.0);
  // Feed a clean constant-velocity target, then coast without updates.
  for (int i = 1; i <= 30; ++i) {
    kf.predict(1.0);
    kf.update({3.0 * i, 0.0});
  }
  const double x_before = kf.estimate().position.x;
  const double sigma_before = kf.estimate().position_sigma;
  for (int i = 0; i < 5; ++i) kf.predict(1.0);
  EXPECT_NEAR(kf.estimate().position.x, x_before + 15.0, 1.5);
  EXPECT_GT(kf.estimate().position_sigma, sigma_before);  // uncertainty grows
}

TEST(Kalman, GateDistanceScalesWithUncertainty) {
  Kalman2D fresh({0, 0}, 50.0, 1.0, 5.0);
  Kalman2D settled({0, 0}, 50.0, 0.1, 5.0);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    settled.predict(1.0);
    settled.update({rng.normal(0, 5.0), rng.normal(0, 5.0)});
  }
  // A 30 m displaced measurement is a mild surprise for the fresh filter,
  // a big one for the settled filter.
  EXPECT_LT(fresh.gate_distance({30, 0}), settled.gate_distance({30, 0}));
}

// -------------------------------------------------------------- Tracker ----

/// Simulates `targets` moving with constant velocities and feeds the
/// tracker noisy detections with probability p_detect, plus clutter.
struct Scenario {
  MultiTargetTracker tracker;
  std::vector<Vec2> positions;
  std::vector<Vec2> velocities;
  Rng rng{7};

  explicit Scenario(TrackerConfig cfg = {}) : tracker(cfg) {}

  void add_target(Vec2 p, Vec2 v) {
    positions.push_back(p);
    velocities.push_back(v);
  }

  void run(int scans, double p_detect, int clutter_per_scan = 0,
           double clutter_trust = 1.0) {
    for (int s = 0; s < scans; ++s) {
      std::vector<Detection> dets;
      for (std::size_t i = 0; i < positions.size(); ++i) {
        positions[i] = positions[i] + velocities[i];
        if (rng.bernoulli(p_detect)) {
          dets.push_back({{positions[i].x + rng.normal(0, 4.0),
                           positions[i].y + rng.normal(0, 4.0)},
                          4.0,
                          1.0});
        }
      }
      for (int c = 0; c < clutter_per_scan; ++c) {
        dets.push_back({{rng.uniform(-500, 500), rng.uniform(-500, 500)},
                        4.0,
                        clutter_trust});
      }
      tracker.step(1.0, dets);
    }
  }
};

TEST(Tracker, ConfirmsAndFollowsSingleTarget) {
  Scenario sc;
  sc.add_target({0, 0}, {2, 1});
  sc.run(30, 0.95);
  ASSERT_EQ(sc.tracker.confirmed_count(), 1u);
  EXPECT_LT(sc.tracker.tracking_error(sc.positions), 10.0);
}

TEST(Tracker, TracksMultipleSeparatedTargets) {
  Scenario sc;
  sc.add_target({-200, 0}, {2, 0});
  sc.add_target({200, 0}, {-2, 0});
  sc.add_target({0, 250}, {0, -1});
  sc.run(40, 0.9);
  EXPECT_EQ(sc.tracker.confirmed_count(), 3u);
  EXPECT_LT(sc.tracker.tracking_error(sc.positions), 15.0);
}

TEST(Tracker, SurvivesDetectionGaps) {
  TrackerConfig cfg;
  cfg.max_misses = 6;
  Scenario sc(cfg);
  sc.add_target({0, 0}, {3, 0});
  sc.run(20, 1.0);
  ASSERT_EQ(sc.tracker.confirmed_count(), 1u);
  // 4 blind scans (within max_misses), then detections resume.
  sc.run(4, 0.0);
  EXPECT_EQ(sc.tracker.confirmed_count(), 1u);  // coasting, not dropped
  sc.run(10, 1.0);
  EXPECT_EQ(sc.tracker.confirmed_count(), 1u);
  EXPECT_LT(sc.tracker.tracking_error(sc.positions), 12.0);
}

TEST(Tracker, DropsTrackAfterSustainedSilence) {
  TrackerConfig cfg;
  cfg.max_misses = 3;
  Scenario sc(cfg);
  sc.add_target({0, 0}, {1, 0});
  sc.run(15, 1.0);
  ASSERT_EQ(sc.tracker.confirmed_count(), 1u);
  sc.run(6, 0.0);  // silence beyond max_misses
  EXPECT_EQ(sc.tracker.confirmed_count(), 0u);
}

TEST(Tracker, ClutterDoesNotConfirmTracks) {
  // Uniform clutter rarely repeats in the same gate, so tentative clutter
  // tracks never reach confirm_hits. The confirmation threshold is the
  // tuning knob against clutter density: at 5 false alarms/scan over a
  // 1 km^2 box, 4 hits in a 3-sigma gate suppresses confirmation.
  TrackerConfig cfg;
  cfg.confirm_hits = 4;
  cfg.gate_sigmas = 3.0;
  Scenario sc(cfg);
  sc.run(40, 0.0, /*clutter_per_scan=*/5);
  EXPECT_EQ(sc.tracker.confirmed_count(), 0u);
}

TEST(Tracker, LowTrustSourcesCannotSeedTracks) {
  TrackerConfig cfg;
  cfg.min_spawn_trust = 0.5;
  Scenario sc(cfg);
  // Persistent fabricated detections from an untrusted source at a fixed
  // spot — the classic false-target injection.
  for (int s = 0; s < 30; ++s) {
    sc.tracker.step(1.0, {{{100, 100}, 4.0, /*trust=*/0.1}});
  }
  EXPECT_EQ(sc.tracker.confirmed_count(), 0u);
  EXPECT_TRUE(sc.tracker.tracks().empty());
}

TEST(Tracker, TrustedSourceSeedsSamePointTrack) {
  Scenario sc;
  for (int s = 0; s < 10; ++s) {
    sc.tracker.step(1.0, {{{100, 100}, 4.0, 1.0}});
  }
  EXPECT_EQ(sc.tracker.confirmed_count(), 1u);
}

TEST(Tracker, TrackingErrorPenalizesSpuriousTracks) {
  Scenario sc;
  sc.add_target({0, 0}, {0, 0});
  sc.run(20, 1.0);
  const double clean = sc.tracker.tracking_error(sc.positions, 100.0);
  // Inject a persistent trusted false target to mint a spurious track.
  for (int s = 0; s < 10; ++s) {
    std::vector<Detection> dets = {{{sc.positions[0].x, sc.positions[0].y}, 4.0, 1.0},
                                   {{400, 400}, 4.0, 1.0}};
    sc.tracker.step(1.0, dets);
  }
  EXPECT_GT(sc.tracker.tracking_error(sc.positions, 100.0), clean + 50.0);
}

TEST(Tracker, CrossingTargetsKeepTwoTracks) {
  Scenario sc;
  sc.add_target({-100, -3}, {5, 0});
  sc.add_target({100, 3}, {-5, 0});
  sc.run(40, 1.0);
  // After crossing, both tracks should still exist (identity may swap —
  // GNN association does not guarantee identity through a crossing).
  EXPECT_EQ(sc.tracker.confirmed_count(), 2u);
  EXPECT_LT(sc.tracker.tracking_error(sc.positions), 20.0);
}


// ------------------------------------------------------------- Behavior ----

TEST(Markov, LearnsCorridorPattern) {
  // Targets habitually move east along a corridor: the model should
  // predict east-neighbor cells.
  MarkovMotionModel m({{0, 0}, {1000, 1000}}, 10);
  for (int rep = 0; rep < 20; ++rep) {
    for (double x = 50; x < 900; x += 100) {
      m.observe({x, 450}, {x + 100, 450});
    }
  }
  const std::size_t from = m.cell_of({350, 450});
  const std::size_t predicted = m.predict_next_cell({350, 450});
  EXPECT_EQ(predicted, from + 1);  // east neighbor on the row
  EXPECT_GT(m.transition_probability(from, from + 1), 0.9);
}

TEST(Markov, UnseenCellFallsBackToStayPut) {
  MarkovMotionModel m({{0, 0}, {100, 100}}, 4);
  const std::size_t c = m.cell_of({10, 10});
  EXPECT_EQ(m.predict_next_cell({10, 10}), c);
  EXPECT_DOUBLE_EQ(m.transition_probability(c, c), 1.0);
}

TEST(Markov, Top1AccuracyOnHabitualMotion) {
  MarkovMotionModel m({{0, 0}, {1000, 1000}}, 8);
  Rng rng(5);
  std::vector<std::pair<Vec2, Vec2>> train, test;
  // Two habitual flows: eastbound along y=300, northbound along x=700.
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(0, 800);
    train.push_back({{x, 300}, {x + 125, 300}});
    const double y = rng.uniform(0, 800);
    train.push_back({{700, y}, {700, y + 125}});
  }
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(100, 700);
    test.push_back({{x, 300}, {x + 125, 300}});
  }
  for (const auto& [f, t] : train) m.observe(f, t);
  EXPECT_GT(m.top1_accuracy(test), 0.8);
}

/// Builds a tracker with confirmed tracks moving at given velocities.
MultiTargetTracker tracker_with_tracks(
    const std::vector<std::pair<Vec2, Vec2>>& pos_vel) {
  MultiTargetTracker t;
  for (int scan = 0; scan < 10; ++scan) {
    std::vector<Detection> dets;
    for (const auto& [p, v] : pos_vel) {
      dets.push_back({{p.x + v.x * scan, p.y + v.y * scan}, 2.0, 1.0});
    }
    t.step(1.0, dets);
  }
  return t;
}

TEST(Rendezvous, DetectsConvergingTracks) {
  // Three tracks heading for (500, 500) from different directions,
  // arriving around t=100.
  const auto t = tracker_with_tracks({
      {{0, 500}, {5, 0}},     // east-bound
      {{500, 0}, {0, 5}},     // north-bound
      {{1000, 500}, {-5, 0}}, // west-bound
  });
  ASSERT_EQ(t.confirmed_count(), 3u);
  RendezvousConfig cfg;
  cfg.horizon_s = 200;
  cfg.min_participants = 3;
  const auto r = predict_rendezvous(t, cfg);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->participants.size(), 3u);
  EXPECT_NEAR(r->point.x, 500, 60);
  EXPECT_NEAR(r->point.y, 500, 60);
  EXPECT_NEAR(r->eta_s, 90, 40);  // tracks formed over ~10 scans already
}

TEST(Rendezvous, IgnoresDivergingTracks) {
  const auto t = tracker_with_tracks({
      {{500, 500}, {5, 0}},
      {{500, 500}, {-5, 0}},
      {{500, 500}, {0, 5}},
  });
  RendezvousConfig cfg;
  cfg.min_participants = 2;
  const auto r = predict_rendezvous(t, cfg);
  EXPECT_FALSE(r.has_value());  // they only ever separate
}

TEST(Rendezvous, RequiresMinimumParticipants) {
  const auto t = tracker_with_tracks({
      {{0, 500}, {5, 0}},
      {{1000, 500}, {-5, 0}},
  });
  RendezvousConfig cfg;
  cfg.min_participants = 3;
  EXPECT_FALSE(predict_rendezvous(t, cfg).has_value());
  cfg.min_participants = 2;
  EXPECT_TRUE(predict_rendezvous(t, cfg).has_value());
}

}  // namespace
}  // namespace iobt::track
