// Tests for the asset substrate: capabilities, energy, mobility, sensing,
// world lifecycle, population generation.

#include <gtest/gtest.h>

#include <map>

#include "things/population.h"
#include "things/sensors.h"
#include "things/world.h"

namespace iobt::things {
namespace {

using sim::Duration;
using sim::Rect;
using sim::Rng;
using sim::Simulator;
using sim::Vec2;

const Rect kArea{{0, 0}, {1000, 1000}};

struct WorldFixture : ::testing::Test {
  Simulator sim;
  net::ChannelModel channel{2.0, 0.0};
  net::Network net{sim, channel, Rng(5)};
  World world{sim, net, kArea, Rng(6)};
};

// --------------------------------------------------------------- Energy ----

TEST(Energy, UnlimitedNeverDepletes) {
  EnergyModel e(0.0);
  EXPECT_TRUE(e.unlimited());
  e.drain(1e9);
  EXPECT_FALSE(e.depleted());
  EXPECT_DOUBLE_EQ(e.fraction_remaining(), 1.0);
}

TEST(Energy, DrainsToDepletion) {
  EnergyModel e(10.0);
  e.drain(4.0);
  EXPECT_DOUBLE_EQ(e.remaining_j(), 6.0);
  EXPECT_DOUBLE_EQ(e.fraction_remaining(), 0.6);
  e.drain(100.0);
  EXPECT_TRUE(e.depleted());
  EXPECT_DOUBLE_EQ(e.remaining_j(), 0.0);
  e.recharge_full();
  EXPECT_FALSE(e.depleted());
}

TEST(Energy, CostKnobs) {
  EnergyModel e(1.0);
  e.tx_cost_per_byte = 0.001;
  e.drain_tx(100);
  EXPECT_NEAR(e.remaining_j(), 0.9, 1e-12);
}

// ------------------------------------------------------------- Mobility ----

TEST(Mobility, StationaryStaysPut) {
  Stationary s;
  EXPECT_EQ(s.step({5, 5}, 100.0), (Vec2{5, 5}));
}

TEST(Mobility, RandomWaypointStaysInAreaAndMoves) {
  RandomWaypoint m(kArea, 10.0, 0.0, Rng(1));
  Vec2 p{500, 500};
  double total_moved = 0.0;
  for (int i = 0; i < 200; ++i) {
    const Vec2 q = m.step(p, 1.0);
    EXPECT_TRUE(kArea.contains(q));
    total_moved += sim::distance(p, q);
    p = q;
  }
  EXPECT_GT(total_moved, 100.0);
  // Speed limit respected per step.
  RandomWaypoint m2(kArea, 10.0, 0.0, Rng(2));
  Vec2 a{500, 500};
  const Vec2 b = m2.step(a, 1.0);
  EXPECT_LE(sim::distance(a, b), 10.0 + 1e-9);
}

TEST(Mobility, RandomWaypointPauses) {
  RandomWaypoint m(kArea, 1000.0, 5.0, Rng(3));
  // With extreme speed the walker reaches its waypoint within the step and
  // then pauses; over a short horizon total displacement is bounded.
  Vec2 p{500, 500};
  p = m.step(p, 1.0);       // reaches first waypoint, starts pause
  const Vec2 paused = m.step(p, 1.0);  // inside the 5 s pause
  EXPECT_EQ(p, paused);
}

TEST(Mobility, GridPatrolMovesAlongAxes) {
  GridPatrol m(kArea, 100.0, 5.0, Rng(4));
  Vec2 p{500, 500};
  for (int i = 0; i < 50; ++i) {
    const Vec2 q = m.step(p, 1.0);
    EXPECT_TRUE(kArea.contains(q));
    // Axis-aligned motion: at most one coordinate changes per small step
    // (may corner exactly at an intersection, so allow both to move but
    // total displacement bounded by speed * dt).
    EXPECT_LE(sim::distance(p, q), 5.0 + 1e-9);
    p = q;
  }
}

TEST(Mobility, SeekPointArrivesAndStops) {
  SeekPoint m({10, 0}, 3.0);
  Vec2 p{0, 0};
  p = m.step(p, 1.0);
  EXPECT_NEAR(p.x, 3.0, 1e-9);
  for (int i = 0; i < 10; ++i) p = m.step(p, 1.0);
  EXPECT_EQ(p, (Vec2{10, 0}));
  EXPECT_TRUE(m.arrived(p));
}

// -------------------------------------------------------------- Sensors ----

TEST(Sensors, DetectionProbabilityDecaysWithDistance) {
  SenseCapability cap{Modality::kCamera, 100.0, 0.9, 0.0};
  EXPECT_DOUBLE_EQ(detection_probability(cap, 0.0), 0.9);
  EXPECT_GT(detection_probability(cap, 30.0), detection_probability(cap, 80.0));
  EXPECT_DOUBLE_EQ(detection_probability(cap, 150.0), 0.0);
}

TEST(Sensors, SenseTargetsFindsCloseTargets) {
  Rng rng(9);
  Asset a;
  a.id = 3;
  SenseCapability cap{Modality::kCamera, 100.0, 1.0, 0.0};
  std::vector<std::pair<TargetId, Vec2>> targets = {{0, {10, 0}}, {1, {500, 500}}};
  int hits = 0;
  for (int i = 0; i < 100; ++i) {
    const auto obs = sense_targets(a, cap, {0, 0}, targets, sim::SimTime::zero(),
                                   kArea, rng);
    for (const auto& o : obs) {
      ASSERT_TRUE(o.truth_target.has_value());
      EXPECT_EQ(*o.truth_target, 0u);  // far target never seen
      EXPECT_EQ(o.sensor, 3u);
      EXPECT_EQ(o.modality, Modality::kCamera);
      ++hits;
    }
  }
  EXPECT_GT(hits, 90);  // p(detect at 10 m of 100 m range) = 0.99
}

TEST(Sensors, FalsePositivesHaveNoTruthTarget) {
  Rng rng(10);
  Asset a;
  SenseCapability cap{Modality::kCamera, 100.0, 0.0, 1.0};  // only FPs
  int fps = 0;
  for (int i = 0; i < 50; ++i) {
    const auto obs = sense_targets(a, cap, {500, 500}, {}, sim::SimTime::zero(),
                                   kArea, rng);
    for (const auto& o : obs) {
      EXPECT_FALSE(o.truth_target.has_value());
      EXPECT_TRUE(kArea.contains(o.position));
      ++fps;
    }
  }
  EXPECT_EQ(fps, 50);
}

TEST(Sensors, PositionNoiseGrowsWithDistance) {
  SenseCapability cap{Modality::kRadar, 200.0, 0.9, 0.0};
  EXPECT_LT(position_noise_stddev(cap, 0.0), position_noise_stddev(cap, 190.0));
}

// ---------------------------------------------------------------- Asset ----

TEST(Asset, CapabilityLookup) {
  Rng rng(1);
  AssetSpec a = make_asset_template(DeviceClass::kDrone, Affiliation::kBlue, rng);
  EXPECT_TRUE(a.has_sensor(Modality::kCamera));
  EXPECT_TRUE(a.has_sensor(Modality::kRadar));
  EXPECT_FALSE(a.has_sensor(Modality::kChemical));
  EXPECT_NE(a.sensor(Modality::kLidar), nullptr);
  EXPECT_TRUE(a.has_actuator(ActuationKind::kRelay));
  EXPECT_FALSE(a.has_actuator(ActuationKind::kDemolition));
}

TEST(Asset, RedAssetsHideFromProbes) {
  Rng rng(1);
  AssetSpec red = make_asset_template(DeviceClass::kSmartphone, Affiliation::kRed, rng);
  AssetSpec blue = make_asset_template(DeviceClass::kSmartphone, Affiliation::kBlue, rng);
  EXPECT_FALSE(red.emissions.responds_to_probe);
  EXPECT_DOUBLE_EQ(red.emissions.beacon_period_s, 0.0);
  EXPECT_TRUE(blue.emissions.responds_to_probe);
  EXPECT_GT(red.emissions.side_channel_rate_hz, 0.0);  // still leaks
}

// ---------------------------------------------------------------- World ----

TEST_F(WorldFixture, AddAssetAssignsIdsAndNodes) {
  Rng r(1);
  const AssetId a = world.add_asset(
      make_asset_template(DeviceClass::kSensorMote, Affiliation::kBlue, r), {10, 10},
      radio_for_class(DeviceClass::kSensorMote));
  const AssetId b = world.add_asset(
      make_asset_template(DeviceClass::kDrone, Affiliation::kBlue, r), {20, 20},
      radio_for_class(DeviceClass::kDrone));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_NE(world.asset(a).node, world.asset(b).node);
  EXPECT_EQ(world.asset_position(a), (Vec2{10, 10}));
  EXPECT_EQ(world.live_asset_count(), 2u);
}

TEST_F(WorldFixture, DestroyAssetTakesNodeDownAndFiresHook) {
  Rng r(1);
  const AssetId a = world.add_asset(
      make_asset_template(DeviceClass::kSensorMote, Affiliation::kBlue, r), {10, 10},
      radio_for_class(DeviceClass::kSensorMote));
  AssetId hook_id = 999;
  world.on_asset_down([&](AssetId id) { hook_id = id; });
  world.destroy_asset(a);
  EXPECT_FALSE(world.asset_live(a));
  EXPECT_FALSE(net.node_up(world.asset(a).node));
  EXPECT_EQ(hook_id, a);
  // Destroying twice does not re-fire.
  hook_id = 999;
  world.destroy_asset(a);
  EXPECT_EQ(hook_id, 999u);
}

TEST_F(WorldFixture, TickMovesMobileAssetsAndTargets) {
  Rng r(1);
  AssetSpec drone = make_asset_template(DeviceClass::kDrone, Affiliation::kBlue, r);
  drone.mobility = std::make_shared<RandomWaypoint>(kArea, 20.0, 0.0, Rng(50));
  const AssetId a = world.add_asset(std::move(drone), {500, 500},
                                    radio_for_class(DeviceClass::kDrone));
  const TargetId t = world.add_target(
      {100, 100}, std::make_shared<RandomWaypoint>(kArea, 5.0, 0.0, Rng(51)), "civilian");
  world.start(Duration::seconds(1.0));
  sim.run_until(sim::SimTime::seconds(30));
  EXPECT_NE(world.asset_position(a), (Vec2{500, 500}));
  EXPECT_NE(world.target(t).position, (Vec2{100, 100}));
  EXPECT_TRUE(kArea.contains(world.asset_position(a)));
}

TEST_F(WorldFixture, EnergyDepletionKillsAsset) {
  Rng r(1);
  AssetSpec mote = make_asset_template(DeviceClass::kSensorMote, Affiliation::kBlue, r);
  mote.energy = EnergyModel(0.5);  // tiny battery
  mote.energy.idle_cost_per_s = 0.1;
  const AssetId a = world.add_asset(std::move(mote), {10, 10},
                                    radio_for_class(DeviceClass::kSensorMote));
  int downs = 0;
  world.on_asset_down([&](AssetId) { ++downs; });
  world.start(Duration::seconds(1.0));
  sim.run_until(sim::SimTime::seconds(10));
  EXPECT_FALSE(world.asset_live(a));
  EXPECT_EQ(downs, 1);
}

TEST_F(WorldFixture, LateRecruitedAssetPaysTransmitEnergy) {
  // Regression: the transmit-energy hook used to capture a node->asset
  // snapshot at start(), so assets recruited mid-run transmitted for free.
  Rng r(1);
  const AssetId early = world.add_asset(
      make_asset_template(DeviceClass::kSensorMote, Affiliation::kBlue, r), {10, 10},
      radio_for_class(DeviceClass::kSensorMote));
  world.start(Duration::seconds(1.0));

  AssetSpec late_asset = make_asset_template(DeviceClass::kSensorMote, Affiliation::kBlue, r);
  late_asset.energy = EnergyModel(100.0);
  late_asset.energy.tx_cost_per_byte = 0.001;
  late_asset.energy.idle_cost_per_s = 0.0;
  const AssetId late = world.add_asset(std::move(late_asset), {20, 10},
                                       radio_for_class(DeviceClass::kSensorMote));
  const double before = world.energy(late).remaining_j();
  ASSERT_TRUE(net.send(world.asset(late).node, world.asset(early).node,
                       net::Message{.kind = "report", .size_bytes = 500}));
  EXPECT_NEAR(world.energy(late).remaining_j(), before - 0.5, 1e-9);
}

TEST_F(WorldFixture, DownHookMayRecruitReplacementDuringTick) {
  // Regression: World::tick held a reference across destroy_asset, whose
  // down-hooks may add_asset (recruit a replacement) and reallocate the
  // asset vector — a use-after-free under ASan. Deplete many assets in one
  // tick while the hook recruits, forcing reallocation mid-loop.
  Rng r(1);
  for (int i = 0; i < 8; ++i) {
    AssetSpec mote = make_asset_template(DeviceClass::kSensorMote, Affiliation::kBlue, r);
    mote.energy = EnergyModel(0.05);  // depletes on the first tick
    mote.energy.idle_cost_per_s = 1.0;
    mote.mobility = std::make_shared<RandomWaypoint>(kArea, 5.0, 0.0, Rng(70 + i));
    world.add_asset(std::move(mote), {100.0 * i, 100},
                    radio_for_class(DeviceClass::kSensorMote));
  }
  int recruited = 0;
  world.on_asset_down([&](AssetId) {
    Rng rr(200 + recruited);
    AssetSpec fresh = make_asset_template(DeviceClass::kSensorMote, Affiliation::kBlue, rr);
    fresh.energy = EnergyModel(0.0);  // unlimited
    world.add_asset(std::move(fresh), {500, 500},
                    radio_for_class(DeviceClass::kSensorMote));
    ++recruited;
  });
  world.start(Duration::seconds(1.0));
  sim.run_until(sim::SimTime::seconds(5));
  EXPECT_EQ(recruited, 8);
  EXPECT_EQ(world.asset_count(), 16u);
  EXPECT_EQ(world.live_asset_count(), 8u);  // every replacement is alive
}

TEST(Mobility, GridPatrolEscapesCornersAndLargeStepsTerminate) {
  // Regression: when the clamp pinned a patrol at the area boundary, the
  // step loop used to credit the full leg while standing still (burning
  // whole blocks), and an inexact distance debit left ~1e-13 residues that
  // turned big steps into effectively infinite femtometer-leg grinds. A
  // corner start plus a huge dt covers both: the call must return promptly
  // and the patrol must actually leave the corner.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    GridPatrol m(kArea, 100.0, 5.0, Rng(seed));
    Vec2 p{0, 0};  // corner of kArea
    double total = 0.0;
    for (int i = 0; i < 100; ++i) {
      const Vec2 q = m.step(p, 1.0);
      EXPECT_TRUE(kArea.contains(q));
      total += sim::distance(p, q);
      p = q;
    }
    // 100 s at 5 m/s: a non-pinned patrol covers most of that budget.
    EXPECT_GT(total, 250.0) << "seed " << seed << " stayed pinned near the corner";

    // One huge step from the corner: terminates and lands in-area.
    GridPatrol big(kArea, 100.0, 5.0, Rng(100 + seed));
    const Vec2 q = big.step({0, 0}, 3600.0);
    EXPECT_TRUE(kArea.contains(q));
  }
}

TEST_F(WorldFixture, SenseRequiresModalityAndLife) {
  Rng r(1);
  AssetSpec mote = make_asset_template(DeviceClass::kSensorMote, Affiliation::kBlue, r);
  mote.sensors = {{Modality::kSeismic, 200.0, 1.0, 0.0}};
  const AssetId a = world.add_asset(std::move(mote), {100, 100},
                                    radio_for_class(DeviceClass::kSensorMote));
  // Point-blank target: detection probability ~1 even on a single draw.
  world.add_target({100.5, 100}, nullptr, "vehicle");
  EXPECT_FALSE(world.sense(a, Modality::kSeismic).empty());
  EXPECT_TRUE(world.sense(a, Modality::kCamera).empty());  // no such sensor
  world.destroy_asset(a);
  EXPECT_TRUE(world.sense(a, Modality::kSeismic).empty());
}

TEST_F(WorldFixture, SenseAllOnlyUsesBlueAssets) {
  Rng r(1);
  AssetSpec blue = make_asset_template(DeviceClass::kSensorMote, Affiliation::kBlue, r);
  blue.sensors = {{Modality::kSeismic, 500.0, 1.0, 0.0}};
  AssetSpec red = make_asset_template(DeviceClass::kSensorMote, Affiliation::kRed, r);
  red.sensors = {{Modality::kSeismic, 500.0, 1.0, 0.0}};
  const AssetId b = world.add_asset(std::move(blue), {100, 100},
                                    radio_for_class(DeviceClass::kSensorMote));
  world.add_asset(std::move(red), {100, 100}, radio_for_class(DeviceClass::kSensorMote));
  world.add_target({120, 100}, nullptr, "vehicle");
  const auto obs = world.sense_all(Modality::kSeismic);
  for (const auto& o : obs) EXPECT_EQ(o.sensor, b);
}

// ----------------------------------------------------------- Population ----

TEST_F(WorldFixture, BuildPopulationCreatesConfiguredCounts) {
  PopulationConfig cfg = small_team_config();
  Rng r(77);
  const auto ids = build_population(world, cfg, r);
  EXPECT_EQ(ids.size(), cfg.total());
  EXPECT_EQ(world.asset_count(), cfg.total());

  std::map<DeviceClass, int> by_class;
  for (const auto& a : world.assets()) ++by_class[a.device_class];
  EXPECT_EQ(by_class[DeviceClass::kDrone], 3);
  EXPECT_EQ(by_class[DeviceClass::kEdgeServer], 1);
  EXPECT_EQ(by_class[DeviceClass::kHuman], 4);
}

TEST_F(WorldFixture, PopulationAffiliationMixRoughlyMatchesConfig) {
  PopulationConfig cfg;
  cfg.smartphones = 600;
  cfg.red_fraction = 0.1;
  cfg.gray_fraction = 0.3;
  Rng r(78);
  build_population(world, cfg, r);
  int red = 0, gray = 0, blue = 0;
  for (const auto& a : world.assets()) {
    switch (a.affiliation) {
      case Affiliation::kRed: ++red; break;
      case Affiliation::kGray: ++gray; break;
      case Affiliation::kBlue: ++blue; break;
    }
  }
  EXPECT_NEAR(red / 600.0, 0.1, 0.05);
  EXPECT_NEAR(gray / 600.0, 0.3, 0.07);
  EXPECT_GT(blue, 0);
}

TEST_F(WorldFixture, PopulationIsDeterministicPerSeed) {
  PopulationConfig cfg = small_team_config();
  Rng r1(99);
  build_population(world, cfg, r1);
  std::vector<Vec2> pos1;
  for (const auto& a : world.assets()) pos1.push_back(world.asset_position(a.id));

  Simulator sim2;
  net::Network net2{sim2, net::ChannelModel(2.0, 0.0), Rng(5)};
  World world2{sim2, net2, kArea, Rng(6)};
  Rng r2(99);
  build_population(world2, cfg, r2);
  std::vector<Vec2> pos2;
  for (const auto& a : world2.assets()) pos2.push_back(world2.asset_position(a.id));
  EXPECT_EQ(pos1, pos2);
}

TEST_F(WorldFixture, HumansHaveReliabilityInConfiguredRange) {
  PopulationConfig cfg;
  cfg.humans = 200;
  cfg.red_fraction = 0.0;
  cfg.gray_fraction = 0.0;
  cfg.human_reliability_min = 0.6;
  cfg.human_reliability_max = 0.95;
  Rng r(100);
  build_population(world, cfg, r);
  for (const auto& a : world.assets()) {
    EXPECT_GE(a.report_reliability, 0.6);
    EXPECT_LE(a.report_reliability, 0.95);
  }
}

TEST(PopulationConfigs, ScalesAreOrdered) {
  EXPECT_LT(small_team_config().total(), company_config().total());
  EXPECT_LT(urban_scenario_config(1).total(), urban_scenario_config(4).total());
  EXPECT_EQ(urban_scenario_config(2).total(), 2 * urban_scenario_config(1).total());
}

// Property: every device class template has a radio and some capability.
class ClassTemplates : public ::testing::TestWithParam<DeviceClass> {};

TEST_P(ClassTemplates, TemplatesAreWellFormed) {
  Rng r(7);
  const Asset a = make_asset_template(GetParam(), Affiliation::kBlue, r);
  const auto radio = radio_for_class(GetParam());
  EXPECT_GT(radio.range_m, 0.0);
  EXPECT_GT(radio.data_rate_bps, 0.0);
  EXPECT_FALSE(a.sensors.empty() && a.actuators.empty());
  EXPECT_GT(a.compute.flops, 0.0);
  for (const auto& s : a.sensors) {
    EXPECT_GT(s.range_m, 0.0);
    EXPECT_GT(s.quality, 0.0);
    EXPECT_LE(s.quality, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, ClassTemplates,
    ::testing::Values(DeviceClass::kTag, DeviceClass::kSensorMote,
                      DeviceClass::kWearable, DeviceClass::kSmartphone,
                      DeviceClass::kDrone, DeviceClass::kGroundRobot,
                      DeviceClass::kVehicle, DeviceClass::kEdgeServer,
                      DeviceClass::kHuman));

}  // namespace
}  // namespace iobt::things
