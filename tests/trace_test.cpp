// iobt::trace — span nesting, ring wraparound, counter tracks, the
// zero-allocation disabled path, tracer attachment/swap, ambient scoping,
// and a JSON round trip through a minimal parser (the exported file must
// be loadable by Perfetto, so the test actually parses what we emit).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "trace/trace.h"

// ------------------------------------------------- allocation counting ----
// Global operator new replacement for this test binary: lets the disabled-
// and enabled-path tests assert the record hot paths never allocate.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace iobt {
namespace {

// ------------------------------------------------ minimal JSON parser ----
// Just enough JSON to round-trip the Chrome trace-event format: objects,
// arrays, strings with escapes, numbers, booleans, null.

struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected ") + c);
    ++pos_;
  }

  Json value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  Json object() {
    Json v;
    v.kind = Json::kObject;
    expect('{');
    ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      ws();
      Json key = string_value();
      ws();
      expect(':');
      v.obj[key.str] = value();
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.kind = Json::kArray;
    expect('[');
    ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json string_value() {
    Json v;
    v.kind = Json::kString;
    expect('"');
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return v;
      if (c != '\\') {
        v.str.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': v.str.push_back('"'); break;
        case '\\': v.str.push_back('\\'); break;
        case '/': v.str.push_back('/'); break;
        case 'n': v.str.push_back('\n'); break;
        case 'r': v.str.push_back('\r'); break;
        case 't': v.str.push_back('\t'); break;
        case 'b': v.str.push_back('\b'); break;
        case 'f': v.str.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
          const unsigned code = static_cast<unsigned>(
              std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          if (code > 0x7f) throw std::runtime_error("non-ascii \\u");
          v.str.push_back(static_cast<char>(code));
          break;
        }
        default: throw std::runtime_error("bad escape");
      }
    }
  }

  Json boolean() {
    Json v;
    v.kind = Json::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  Json null() {
    if (s_.compare(pos_, 4, "null") != 0) throw std::runtime_error("bad null");
    pos_ += 4;
    Json v;
    v.kind = Json::kNull;
    return v;
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    Json v;
    v.kind = Json::kNumber;
    v.number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------- core paths ----

TEST(TracerTest, InternIsStableAndKeepsFirstCategory) {
  trace::Tracer t;
  const trace::NameId a = t.intern("net.frame", "net");
  const trace::NameId b = t.intern("net.frame", "other");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.name(a), "net.frame");
  EXPECT_EQ(t.category(a), "net");  // first category sticks
  EXPECT_NE(a, 0u);                 // 0 is reserved
  EXPECT_EQ(t.name(9999), "(unknown)");
}

TEST(TracerTest, SpanNestingRecordsDepthsAndDurations) {
  trace::Tracer t;
  const trace::NameId outer = t.intern("outer", "test");
  const trace::NameId inner = t.intern("inner", "test");
  t.enable(64);
  {
    trace::Span so(t, outer);
    EXPECT_EQ(t.span_depth(), 1u);
    {
      trace::Span si(t, inner);
      EXPECT_EQ(t.span_depth(), 2u);
    }
  }
  EXPECT_EQ(t.span_depth(), 0u);
  const auto records = t.snapshot();
  ASSERT_EQ(records.size(), 2u);
  // Inner closes first.
  EXPECT_EQ(records[0].name, inner);
  EXPECT_EQ(records[0].depth, 1u);
  EXPECT_EQ(records[1].name, outer);
  EXPECT_EQ(records[1].depth, 0u);
  EXPECT_GE(records[0].wall_dur_ns, 0);
  // The outer span began no later than, and ended no earlier than, the
  // inner one.
  EXPECT_LE(records[1].wall_ns, records[0].wall_ns);
  EXPECT_GE(records[1].wall_ns + records[1].wall_dur_ns,
            records[0].wall_ns + records[0].wall_dur_ns);
}

TEST(TracerTest, RingWrapsOverwritingOldest) {
  trace::Tracer t;
  const trace::NameId n = t.intern("w", "test");
  t.enable(8);
  for (int i = 0; i < 20; ++i) t.counter(n, static_cast<double>(i));
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  EXPECT_EQ(t.total_recorded(), 20u);
  const auto records = t.snapshot();
  ASSERT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    // Oldest-first: seqs 12..19, values 12..19, monotone.
    EXPECT_EQ(records[i].seq, 12 + i);
    EXPECT_DOUBLE_EQ(records[i].value, static_cast<double>(12 + i));
  }
}

TEST(TracerTest, ReenableClearsTheRing) {
  trace::Tracer t;
  const trace::NameId n = t.intern("x", "test");
  t.enable(8);
  t.instant(n);
  EXPECT_EQ(t.size(), 1u);
  t.enable(8);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(TracerTest, DisableMidSpanStillRecordsTheClose) {
  trace::Tracer t;
  const trace::NameId n = t.intern("x", "test");
  t.enable(16);
  {
    trace::Span s(t, n);
    t.disable();
  }
  // The span began while enabled; its close is still wanted.
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.snapshot()[0].phase, trace::Phase::kComplete);
  // But brand-new records are not.
  t.instant(n);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TracerTest, AsyncSpansCarryTheirId) {
  trace::Tracer t;
  const trace::NameId n = t.intern("net.xfer", "net");
  t.enable(16);
  t.async_begin(n, 0xabcULL);
  t.async_end(n, 0xabcULL);
  const auto records = t.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].phase, trace::Phase::kAsyncBegin);
  EXPECT_EQ(records[1].phase, trace::Phase::kAsyncEnd);
  EXPECT_EQ(records[0].async_id, 0xabcULL);
  EXPECT_EQ(records[1].async_id, 0xabcULL);
}

// ------------------------------------------------------- overhead model ----

TEST(TracerTest, DisabledPathsRecordNothingAndNeverAllocate) {
  trace::Tracer t;
  const trace::NameId n = t.intern("hot", "test");
  const std::uint64_t before = g_allocs.load();
  for (int i = 0; i < 1000; ++i) {
    t.instant(n);
    t.counter(n, 1.0);
    t.async_begin(n, 7);
    t.async_end(n, 7);
    trace::Span s(t, n);
  }
  EXPECT_EQ(g_allocs.load(), before);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(TracerTest, EnabledRecordPathIsAllocationFree) {
  trace::Tracer t;
  const trace::NameId n = t.intern("hot", "test");
  t.enable(1024);  // ring allocated here, never after
  const std::uint64_t before = g_allocs.load();
  for (int i = 0; i < 4096; ++i) {  // wraps: overwrite path covered too
    t.instant(n);
    t.counter(n, static_cast<double>(i));
    trace::Span s(t, n);
  }
  EXPECT_EQ(g_allocs.load(), before);
  EXPECT_EQ(t.size(), 1024u);
}

// --------------------------------------------------- ambient + renaming ----

TEST(TracerTest, AmbientScopeInstallsAndRestores) {
  EXPECT_EQ(trace::current(), nullptr);
  trace::Tracer t;
  t.enable(64);
  {
    trace::ScopedUse use(&t);
    EXPECT_EQ(trace::current(), &t);
    trace::instant_here("amb.instant", "test");
    trace::counter_here("amb.counter", 2.5, "test");
    { IOBT_TRACE_SCOPE("amb.span", "test"); }
    {
      trace::ScopedUse inner(nullptr);  // nested override
      EXPECT_EQ(trace::current(), nullptr);
      trace::instant_here("dropped", "test");
    }
    EXPECT_EQ(trace::current(), &t);
  }
  EXPECT_EQ(trace::current(), nullptr);
  trace::instant_here("dropped.too", "test");
  const auto records = t.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(t.name(records[0].name), "amb.instant");
  EXPECT_DOUBLE_EQ(records[1].value, 2.5);
  EXPECT_EQ(t.name(records[2].name), "amb.span");
}

TEST(TracerTest, NameReinternsAcrossTracerSwaps) {
  trace::Tracer a;
  trace::Tracer b;
  a.intern("padding", "test");  // skew the id spaces apart
  trace::Name label("svc.op", "test");
  const trace::NameId ia = label.id(a);
  EXPECT_EQ(label.id(a), ia);  // cached: same tracer, same id
  const trace::NameId ib = label.id(b);
  EXPECT_EQ(a.name(ia), "svc.op");
  EXPECT_EQ(b.name(ib), "svc.op");
  EXPECT_EQ(b.category(ib), "test");
  EXPECT_NE(ia, ib);  // id spaces are per-tracer
}

// ------------------------------------------------- simulator integration ----

TEST(SimulatorTraceTest, DispatchEmitsTaggedSpansWithNesting) {
  sim::Simulator sim;
  sim.tracer().enable(256);
  const sim::TagId tag = sim.intern("unit.handler");
  int ran = 0;
  sim.schedule_in(sim::Duration::seconds(1.0), [&]() {
    ++ran;
    IOBT_TRACE_SCOPE("unit.inner", "test");  // ambient: installed by step()
  }, tag);
  sim.run();
  EXPECT_EQ(ran, 1);
  const auto records = sim.tracer().snapshot();
  ASSERT_EQ(records.size(), 2u);
  // Inner scope closes before the dispatch span.
  EXPECT_EQ(sim.tracer().name(records[0].name), "unit.inner");
  EXPECT_EQ(records[0].depth, 1u);
  EXPECT_EQ(sim.tracer().name(records[1].name), "unit.handler");
  EXPECT_EQ(sim.tracer().category(records[1].name), "sim");
  EXPECT_EQ(records[1].depth, 0u);
  // Handlers run at frozen sim time: the sim timestamp matches the event.
  EXPECT_EQ(records[1].sim_ns, sim::Duration::seconds(1.0).nanos());
  EXPECT_EQ(records[1].sim_dur_ns, 0);
}

TEST(SimulatorTraceTest, AttachExternalTracerRedirectsRecording) {
  sim::Simulator sim;
  trace::Tracer external;
  external.enable(128);
  sim.attach_tracer(&external);
  EXPECT_EQ(&sim.tracer(), &external);
  const sim::TagId tag = sim.intern("ext.handler");
  sim.schedule_in(sim::Duration::seconds(2.0), []() {}, tag);
  sim.run();
  {
    const auto records = external.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(external.name(records[0].name), "ext.handler");
    EXPECT_EQ(records[0].sim_ns, sim::Duration::seconds(2.0).nanos());
  }
  // Detach: recording returns to the (disabled) built-in tracer.
  sim.attach_tracer(nullptr);
  EXPECT_NE(&sim.tracer(), &external);
  sim.schedule_in(sim::Duration::seconds(1.0), []() {}, tag);
  sim.run();
  EXPECT_EQ(external.snapshot().size(), 1u);
  EXPECT_EQ(sim.tracer().size(), 0u);
}

// The external tracer must keep working after its Simulator dies (that is
// the whole point of ReplicationContext owning it).
TEST(SimulatorTraceTest, ExternalTracerSurvivesSimulatorDestruction) {
  trace::Tracer external;
  external.enable(64);
  {
    sim::Simulator sim;
    sim.attach_tracer(&external);
    sim.schedule_in(sim::Duration::seconds(1.0), []() {}, sim.intern("t"));
    sim.run();
  }
  // Sim clock unbound by ~Simulator: new records read sim_ns = 0.
  const trace::NameId n = external.intern("after", "test");
  external.instant(n);
  const auto records = external.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].sim_ns, 0);
  EXPECT_NE(external.to_json().size(), 0u);
}

// ---------------------------------------------------------- JSON export ----

TEST(TraceJsonTest, RoundTripsThroughAParser) {
  trace::Tracer t;
  t.set_track(3, 7);
  const trace::NameId weird = t.intern("a\"b\\c\nd", "cat\t1");
  const trace::NameId span = t.intern("span.one", "test");
  const trace::NameId ctr = t.intern("ctr", "test");
  const trace::NameId async_n = t.intern("async.op", "test");
  t.enable(64);
  t.instant(weird);
  {
    trace::Span s(t, span);
    t.counter(ctr, 3.5);
  }
  t.async_begin(async_n, 0xabcULL);
  t.async_end(async_n, 0xabcULL);
  t.disable();

  const Json root = JsonParser(t.to_json()).parse();
  ASSERT_EQ(root.kind, Json::kObject);
  EXPECT_EQ(root.at("displayTimeUnit").str, "ms");
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, Json::kArray);
  // Metadata + 5 records.
  ASSERT_EQ(events.arr.size(), 6u);
  EXPECT_EQ(events.arr[0].at("ph").str, "M");

  const Json& instant = events.arr[1];
  EXPECT_EQ(instant.at("name").str, "a\"b\\c\nd");  // escapes survived
  EXPECT_EQ(instant.at("cat").str, "cat\t1");
  EXPECT_EQ(instant.at("ph").str, "i");
  EXPECT_EQ(instant.at("s").str, "t");
  EXPECT_EQ(instant.at("pid").number, 3.0);
  EXPECT_EQ(instant.at("tid").number, 7.0);

  const Json& counter = events.arr[2];
  EXPECT_EQ(counter.at("ph").str, "C");
  EXPECT_DOUBLE_EQ(counter.at("args").at("value").number, 3.5);

  const Json& complete = events.arr[3];
  EXPECT_EQ(complete.at("ph").str, "X");
  EXPECT_GE(complete.at("dur").number, 0.0);
  EXPECT_EQ(complete.at("args").at("depth").number, 0.0);

  EXPECT_EQ(events.arr[4].at("ph").str, "b");
  EXPECT_EQ(events.arr[4].at("id").str, "0xabc");
  EXPECT_EQ(events.arr[5].at("ph").str, "e");
  EXPECT_EQ(events.arr[5].at("id").str, "0xabc");

  // Every event sits on the wall-clock axis (complete spans are stamped
  // with their *begin* time, so the stream is not globally ts-sorted —
  // Perfetto sorts on load).
  for (std::size_t i = 1; i < events.arr.size(); ++i) {
    EXPECT_GE(events.arr[i].at("ts").number, 0.0);
  }
}

TEST(TraceJsonTest, EmptyTracerStillEmitsValidJson) {
  trace::Tracer t;
  const Json root = JsonParser(t.to_json()).parse();
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, Json::kArray);
  EXPECT_EQ(events.arr.size(), 1u);  // just the metadata event
}

}  // namespace
}  // namespace iobt
