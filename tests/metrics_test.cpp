// MetricsRegistry and Summary: accumulation semantics, key creation on
// first touch, quantiles, and the snapshot/merge/digest path that
// ParallelRunner's seed-ordered aggregation depends on.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "sim/metrics.h"

namespace iobt::sim {
namespace {

// -------------------------------------------------------------- Summary ----

TEST(SummaryTest, WelfordMatchesDirectComputation) {
  Summary s;
  const std::vector<double> xs = {1.5, -2.0, 4.25, 0.0, 3.5, -1.25};
  double sum = 0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), m2 / static_cast<double>(xs.size() - 1), 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(s.variance()), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.25);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(SummaryTest, EmptySummaryReportsZeros) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(SummaryTest, QuantilesExactUnderReservoirCap) {
  Summary s;
  for (int i = 100; i >= 1; --i) s.add(static_cast<double>(i));  // 1..100
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.p99(), 99.01, 1e-9);
}

TEST(SummaryTest, MergeMatchesConcatenatedStream) {
  Summary a, b, direct;
  for (int i = 0; i < 40; ++i) {
    const double x = 0.37 * i - 3.0;
    a.add(x);
    direct.add(x);
  }
  for (int i = 0; i < 25; ++i) {
    const double x = -0.11 * i + 8.0;
    b.add(x);
    direct.add(x);
  }
  Summary merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_NEAR(merged.mean(), direct.mean(), 1e-10);
  EXPECT_NEAR(merged.variance(), direct.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), direct.min());
  EXPECT_DOUBLE_EQ(merged.max(), direct.max());
  // Under the reservoir cap the merged reservoir replays b's samples in
  // order, so quantiles are exactly the concatenated-stream quantiles.
  EXPECT_DOUBLE_EQ(merged.median(), direct.median());
  EXPECT_DOUBLE_EQ(merged.quantile(0.25), direct.quantile(0.25));
}

TEST(SummaryTest, MergeWithEmptySides) {
  Summary a;
  a.add(2.0);
  a.add(4.0);
  Summary empty;
  Summary m1 = a;
  m1.merge(empty);  // no-op
  EXPECT_EQ(m1.count(), 2u);
  EXPECT_DOUBLE_EQ(m1.mean(), 3.0);
  Summary m2 = empty;
  m2.merge(a);  // adopt
  EXPECT_EQ(m2.count(), 2u);
  EXPECT_DOUBLE_EQ(m2.mean(), 3.0);
  EXPECT_DOUBLE_EQ(m2.min(), 2.0);
  EXPECT_DOUBLE_EQ(m2.max(), 4.0);
}

TEST(SummaryTest, MergeIsDeterministicGivenOrder) {
  auto build = [](std::uint64_t lo, std::uint64_t n) {
    Summary s;
    for (std::uint64_t i = 0; i < n; ++i) {
      s.add(static_cast<double>(lo + i) * 1.7);
    }
    return s;
  };
  Summary m1 = build(0, 30);
  m1.merge(build(100, 20));
  Summary m2 = build(0, 30);
  m2.merge(build(100, 20));
  std::uint64_t h1 = 0, h2 = 0;
  m1.hash_into(h1);
  m2.hash_into(h2);
  EXPECT_EQ(h1, h2);
}

// ------------------------------------------------------ MetricsRegistry ----

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry m;
  m.count("events");
  m.count("events", 2.5);
  EXPECT_DOUBLE_EQ(m.counter("events"), 3.5);
}

TEST(MetricsRegistryTest, LookupOfMissingKeysReturnsZeroWithoutCreating) {
  MetricsRegistry m;
  EXPECT_DOUBLE_EQ(m.counter("never"), 0.0);
  EXPECT_DOUBLE_EQ(m.gauge_value("never"), 0.0);
  EXPECT_EQ(m.summary("never"), nullptr);
  EXPECT_TRUE(m.counters().empty());
  EXPECT_TRUE(m.gauges().empty());
  EXPECT_TRUE(m.summaries().empty());
}

TEST(MetricsRegistryTest, KeysCreatedOnFirstTouch) {
  MetricsRegistry m;
  m.count("c");
  m.gauge("g", 1.25);
  m.observe("s", 9.0);
  EXPECT_EQ(m.counters().size(), 1u);
  EXPECT_EQ(m.gauges().size(), 1u);
  ASSERT_NE(m.summary("s"), nullptr);
  EXPECT_EQ(m.summary("s")->count(), 1u);
}

TEST(MetricsRegistryTest, GaugeKeepsLatestValue) {
  MetricsRegistry m;
  m.gauge("battery", 0.9);
  m.gauge("battery", 0.4);
  EXPECT_DOUBLE_EQ(m.gauge_value("battery"), 0.4);
}

TEST(MetricsRegistryTest, DurationObserveConvertsToSeconds) {
  MetricsRegistry m;
  m.observe("latency", Duration::millis(250));
  ASSERT_NE(m.summary("latency"), nullptr);
  EXPECT_NEAR(m.summary("latency")->mean(), 0.25, 1e-12);
}

TEST(MetricsRegistryTest, ClearResetsEverything) {
  MetricsRegistry m;
  m.count("c");
  m.gauge("g", 1);
  m.observe("s", 1);
  m.clear();
  EXPECT_TRUE(m.counters().empty());
  EXPECT_TRUE(m.gauges().empty());
  EXPECT_TRUE(m.summaries().empty());
}

TEST(MetricsRegistryTest, MergeFromCombinesAllThreeKinds) {
  MetricsRegistry a, b;
  a.count("shared", 2);
  a.count("only_a", 1);
  a.gauge("g", 1.0);
  a.observe("lat", 1.0);
  b.count("shared", 3);
  b.count("only_b", 4);
  b.gauge("g", 7.0);
  b.observe("lat", 3.0);
  b.observe("other", 5.0);

  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.counter("shared"), 5.0);
  EXPECT_DOUBLE_EQ(a.counter("only_a"), 1.0);
  EXPECT_DOUBLE_EQ(a.counter("only_b"), 4.0);
  EXPECT_DOUBLE_EQ(a.gauge_value("g"), 7.0);  // last merge wins
  ASSERT_NE(a.summary("lat"), nullptr);
  EXPECT_EQ(a.summary("lat")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.summary("lat")->mean(), 2.0);
  ASSERT_NE(a.summary("other"), nullptr);
  EXPECT_EQ(a.summary("other")->count(), 1u);
}

TEST(MetricsRegistryTest, MergeFromEmptyIsIdentity) {
  MetricsRegistry a;
  a.count("c", 2);
  a.observe("s", 1.5);
  const std::uint64_t before = a.digest();
  a.merge_from(MetricsRegistry{});
  EXPECT_EQ(a.digest(), before);
}

TEST(MetricsRegistryTest, DigestDistinguishesContent) {
  MetricsRegistry a, b;
  EXPECT_EQ(a.digest(), b.digest());  // both empty
  a.count("c");
  EXPECT_NE(a.digest(), b.digest());
  b.count("c");
  EXPECT_EQ(a.digest(), b.digest());
  a.observe("s", 1.0);
  b.observe("s", 1.0 + 1e-15);  // different bits -> different digest
  EXPECT_NE(a.digest(), b.digest());
}

TEST(MetricsRegistryTest, DigestCoversKeyNames) {
  MetricsRegistry a, b;
  a.count("x", 1.0);
  b.count("y", 1.0);
  EXPECT_NE(a.digest(), b.digest());
}

// -------------------------------------------------------- Serialization ----

TEST(MetricsRegistryTest, SerializeRoundTripIsBitExact) {
  MetricsRegistry m;
  m.count("frames.delivered", 12345);
  m.count("tiny", 1e-300);
  m.count("neg.zero", -0.0);
  m.gauge("battery.v", 3.3000000000000003);
  m.gauge("nan.gauge", std::nan(""));
  m.gauge("inf.gauge", std::numeric_limits<double>::infinity());
  m.observe("lat", 0.25);
  m.observe("lat", -1e308);
  m.observe("lat", std::numeric_limits<double>::denorm_min());
  // Overflow the reservoir so the replacement stream state round-trips too.
  for (std::size_t i = 0; i < Summary::kReservoirCap + 500; ++i) {
    m.observe("big", static_cast<double>(i) * 1.0000001);
  }
  const std::string image = m.serialize();
  auto back = MetricsRegistry::deserialize(image);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->digest(), m.digest());
  // Re-serializing before any further mutation is byte-stable.
  EXPECT_EQ(back->serialize(), image);
  // The round trip also continues identically: observing the same sample
  // on both sides keeps the reservoir streams in lockstep.
  m.observe("big", 9.75);
  back->observe("big", 9.75);
  EXPECT_EQ(back->digest(), m.digest());
}

TEST(MetricsRegistryTest, SerializeEmptyRegistryRoundTrips) {
  MetricsRegistry m;
  auto back = MetricsRegistry::deserialize(m.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->digest(), m.digest());
}

TEST(MetricsRegistryTest, DeserializeRejectsMalformedInput) {
  EXPECT_FALSE(MetricsRegistry::deserialize("").has_value());
  EXPECT_FALSE(MetricsRegistry::deserialize("bogus").has_value());
  EXPECT_FALSE(MetricsRegistry::deserialize("m2\n").has_value());  // version
  MetricsRegistry m;
  m.count("c", 2);
  m.observe("s", 1.0);
  const std::string image = m.serialize();
  // Truncation anywhere must be caught, not silently accepted.
  for (const std::size_t cut : {image.size() / 4, image.size() / 2, image.size() - 1}) {
    EXPECT_FALSE(MetricsRegistry::deserialize(image.substr(0, cut)).has_value())
        << "cut at " << cut;
  }
  // Trailing garbage as well.
  EXPECT_FALSE(MetricsRegistry::deserialize(image + "extra").has_value());
}

TEST(MetricsRegistryTest, SerializeRejectsUnescapableKeys) {
  MetricsRegistry with_ws;
  with_ws.count("bad key");
  EXPECT_THROW(with_ws.serialize(), std::logic_error);
  MetricsRegistry with_semi;
  with_semi.gauge("bad;key", 1.0);
  EXPECT_THROW(with_semi.serialize(), std::logic_error);
}

}  // namespace
}  // namespace iobt::sim
