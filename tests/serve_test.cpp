// Campaign service (serve/serve.h): canonical prefix/query hashing, the
// bounded LRU checkpoint cache, digest identity between served and
// serially re-simulated answers across worker counts, admission control,
// and per-query failure isolation with serial repro lines.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "dissem/scenario.h"
#include "serve/serve.h"

namespace iobt {
namespace {

using serve::CampaignService;
using serve::Query;

/// A small, fully pinned scenario: every field a literal so the golden
/// cross-process hash below is meaningful, and cheap enough that identity
/// tests re-simulate it many times.
dissem::DissemSpec tiny_spec() {
  dissem::DissemSpec spec;
  spec.name = "tiny";
  dissem::LayerSpec l;
  l.layer = net::kLayerGround;
  l.nodes = 12;
  l.gateways = 2;
  l.radio.range_m = 150.0;
  l.radio.data_rate_bps = 1e6;
  l.radio.base_loss = 0.01;
  l.device = things::DeviceClass::kSensorMote;
  l.speed_mps = 3.0;
  spec.layers = {l};
  spec.mobility = dissem::MobilityKind::kWaypoint;
  spec.attack = dissem::AttackCampaign::kNone;
  spec.intensity = 0.0;
  spec.area = sim::Rect{{0, 0}, {300, 300}};
  spec.horizon_s = 20.0;
  spec.seed_time_s = 2.0;
  return spec;
}

Query tiny_query(std::uint64_t seed = 42,
                 dissem::AttackCampaign attack = dissem::AttackCampaign::kNone,
                 double intensity = 0.0) {
  Query q;
  q.spec = tiny_spec();
  q.seed = seed;
  q.branch_time_s = 15.0;
  q.delta.attack = attack;
  q.delta.intensity = intensity;
  return q;
}

// ------------------------------------------------ Prefix canonicalization ----

TEST(PrefixHash, IgnoresDisplayName) {
  Query a = tiny_query();
  Query b = tiny_query();
  b.spec.name = "a completely different label";
  EXPECT_EQ(serve::prefix_hash(a), serve::prefix_hash(b));
  EXPECT_EQ(serve::query_hash(a), serve::query_hash(b));
}

TEST(PrefixHash, EverySemanticFieldIsDistinguishing) {
  const std::uint64_t base = serve::prefix_hash(tiny_query());
  std::set<std::uint64_t> seen{base};
  const auto expect_distinct = [&](const Query& q, const char* what) {
    const std::uint64_t h = serve::prefix_hash(q);
    EXPECT_NE(h, base) << what;
    EXPECT_TRUE(seen.insert(h).second) << what << " collided with another variant";
  };

  { Query q = tiny_query(); q.seed = 43; expect_distinct(q, "seed"); }
  { Query q = tiny_query(); q.branch_time_s = 14.0; expect_distinct(q, "branch point"); }
  { Query q = tiny_query(); q.spec.horizon_s = 21.0; expect_distinct(q, "horizon"); }
  { Query q = tiny_query(); q.spec.seed_time_s = 3.0; expect_distinct(q, "seed time"); }
  { Query q = tiny_query(); q.spec.mobility = dissem::MobilityKind::kPatrol;
    expect_distinct(q, "mobility"); }
  { Query q = tiny_query(); q.spec.attack = dissem::AttackCampaign::kJamming;
    expect_distinct(q, "declared attack"); }
  { Query q = tiny_query(); q.spec.intensity = 0.5; expect_distinct(q, "intensity"); }
  { Query q = tiny_query(); q.spec.area.max.x = 400; expect_distinct(q, "area"); }
  { Query q = tiny_query(); q.spec.gossip.regossip_rounds = 4;
    expect_distinct(q, "gossip rounds"); }
  { Query q = tiny_query(); q.spec.gossip.alert_bytes = 64;
    expect_distinct(q, "alert bytes"); }
  { Query q = tiny_query(); q.spec.gossip.kind = "dissem.other";
    expect_distinct(q, "gossip kind"); }
  { Query q = tiny_query();
    q.spec.gossip.forward_delay = sim::Duration::seconds(1.5);
    expect_distinct(q, "forward delay"); }
  { Query q = tiny_query(); q.spec.layers[0].nodes = 13; expect_distinct(q, "nodes"); }
  { Query q = tiny_query(); q.spec.layers[0].gateways = 3;
    expect_distinct(q, "gateways"); }
  { Query q = tiny_query(); q.spec.layers[0].radio.range_m = 175.0;
    expect_distinct(q, "radio range"); }
  { Query q = tiny_query(); q.spec.layers[0].radio.base_loss = 0.05;
    expect_distinct(q, "base loss"); }
  { Query q = tiny_query(); q.spec.layers[0].speed_mps = 4.0;
    expect_distinct(q, "speed"); }
  { Query q = tiny_query();
    q.spec.layers[0].device = things::DeviceClass::kVehicle;
    expect_distinct(q, "device class"); }
  { Query q = tiny_query(); q.spec.layers.push_back(q.spec.layers[0]);
    expect_distinct(q, "layer count"); }
}

TEST(PrefixHash, DeltaChangesQueryKeyButNotPrefixKey) {
  const Query base = tiny_query();
  std::set<std::uint64_t> query_keys{serve::query_hash(base)};
  const auto variant = [&](const char* what, auto&& mutate) {
    Query q = base;
    mutate(q.delta);
    EXPECT_EQ(serve::prefix_hash(q), serve::prefix_hash(base)) << what;
    EXPECT_TRUE(query_keys.insert(serve::query_hash(q)).second)
        << what << " did not change the query key";
  };
  variant("attack", [](serve::WhatIfDelta& d) {
    d.attack = dissem::AttackCampaign::kJamming;
  });
  variant("intensity", [](serve::WhatIfDelta& d) { d.intensity = 0.4; });
  variant("delay", [](serve::WhatIfDelta& d) { d.delay_s = 0.75; });
  variant("salt", [](serve::WhatIfDelta& d) { d.salt = 9; });
}

TEST(PrefixHash, CanonicalDoublesFoldNegativeZero) {
  Query a = tiny_query();
  Query b = tiny_query();
  a.spec.area.min.x = 0.0;
  b.spec.area.min.x = -0.0;
  EXPECT_EQ(serve::prefix_hash(a), serve::prefix_hash(b));
}

TEST(PrefixHash, StableAcrossProcessRuns) {
  // Golden value: pinned so a rebuild, a different machine, or a different
  // process instance (std::hash is deliberately NOT used) cannot silently
  // re-key every persisted cache. If an INTENTIONAL canonicalization change
  // lands, update the constant in the same commit.
  EXPECT_EQ(serve::prefix_hash(tiny_spec(), 42, 15.0),
            0xdc07df8d7d4e4cd7ULL);
}

// ------------------------------------------------------- Service paths ----

TEST(CampaignService, ServedAnswersMatchUncachedAcrossWorkerCounts) {
  const std::vector<Query> batch = {
      tiny_query(42, dissem::AttackCampaign::kNone, 0.0),
      tiny_query(42, dissem::AttackCampaign::kJamming, 0.6),
      tiny_query(43, dissem::AttackCampaign::kGatewayHunt, 0.8),
      tiny_query(43, dissem::AttackCampaign::kCombined, 0.5),
  };
  std::vector<std::uint64_t> reference;
  for (const Query& q : batch) {
    reference.push_back(CampaignService::run_uncached(q).digest);
  }
  // Distinct what-ifs must actually be distinct futures, or the identity
  // check below proves nothing.
  EXPECT_EQ(std::set<std::uint64_t>(reference.begin(), reference.end()).size(),
            reference.size());

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    CampaignService::Options opts;
    opts.workers = workers;
    CampaignService svc(opts);
    const serve::BatchResult first = svc.submit(batch);
    ASSERT_EQ(first.results.size(), batch.size());
    EXPECT_EQ(first.failures, 0u);
    EXPECT_EQ(first.prefix_sims, 2u);  // two distinct (spec, seed, branch)
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_TRUE(first.results[i].ok);
      EXPECT_EQ(first.results[i].outcome.digest, reference[i])
          << "workers=" << workers << " query=" << i;
    }
    // Resubmit: everything is a cache hit and the answers do not move.
    const serve::BatchResult second = svc.submit(batch);
    EXPECT_EQ(second.prefix_sims, 0u);
    EXPECT_EQ(second.cache_hits, batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_TRUE(second.results[i].cache_hit);
      EXPECT_EQ(second.results[i].outcome.digest, reference[i]);
    }
    EXPECT_EQ(svc.branches_completed(), 2 * batch.size());
  }
}

TEST(CampaignService, BoundedCacheEvictsAndClearCacheEmpties) {
  CampaignService::Options opts;
  opts.workers = 0;  // inline serial: cheap and deterministic
  opts.cache_capacity = 2;
  CampaignService svc(opts);
  const auto one = [&](std::uint64_t seed) {
    return svc.submit({tiny_query(seed)});
  };
  (void)one(1);  // cache: {1}
  (void)one(2);  // cache: {2, 1}
  EXPECT_EQ(svc.cache_stats().evictions, 0u);
  (void)one(1);  // hit refreshes 1
  EXPECT_EQ(svc.cache_stats().hits, 1u);
  (void)one(3);  // over capacity: one of the residents is evicted
  EXPECT_EQ(svc.cache_stats().evictions, 1u);
  EXPECT_EQ(svc.cache_stats().entries, 2u);
  EXPECT_EQ(svc.cache_stats().misses, 3u);

  svc.clear_cache();
  EXPECT_EQ(svc.cache_stats().entries, 0u);
  EXPECT_EQ(one(1).prefix_sims, 1u);
}

TEST(CampaignService, EvictionIsCostAwareNotPureLru) {
  CampaignService::Options opts;
  opts.workers = 0;
  opts.cache_capacity = 2;
  CampaignService svc(opts);
  // One prefix is ~the whole horizon to rebuild, the others nearly free:
  // under cost-aware eviction the expensive snapshot survives pressure
  // that plain LRU would evict it under (it IS the least recently used
  // entry when the second cheap prefix arrives).
  Query expensive = tiny_query(1);
  expensive.branch_time_s = 19.5;
  Query cheap1 = tiny_query(2);
  cheap1.branch_time_s = 0.1;
  Query cheap2 = tiny_query(3);
  cheap2.branch_time_s = 0.1;

  (void)svc.submit({expensive});  // cache: {expensive}
  (void)svc.submit({cheap1});     // cache: {cheap1, expensive}
  (void)svc.submit({cheap2});     // pressure: a CHEAP entry must go
  EXPECT_EQ(svc.cache_stats().evictions, 1u);
  const serve::BatchResult res = svc.submit({expensive});
  EXPECT_EQ(res.prefix_sims, 0u) << "cost-aware eviction dropped the "
                                    "most-expensive-to-rebuild snapshot";
  EXPECT_TRUE(res.results[0].cache_hit);
}

TEST(CampaignService, BatchDedupIsDistinguishedFromCacheHits) {
  CampaignService::Options opts;
  opts.workers = 2;
  CampaignService svc(opts);
  const std::vector<Query> batch = {
      tiny_query(80, dissem::AttackCampaign::kNone, 0.0),
      tiny_query(80, dissem::AttackCampaign::kJamming, 0.5),
      tiny_query(80, dissem::AttackCampaign::kCombined, 0.5)};
  const serve::BatchResult first = svc.submit(batch);
  // One cold prefix sim; the two riders are batch-dedup, NOT cache hits —
  // nothing was in any cache when this batch arrived.
  EXPECT_EQ(first.failures, 0u);
  EXPECT_EQ(first.prefix_sims, 1u);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(first.batch_dedup, 2u);
  EXPECT_FALSE(first.results[0].cache_hit);
  EXPECT_FALSE(first.results[0].batch_dedup);
  for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
    EXPECT_TRUE(first.results[i].batch_dedup);
    EXPECT_FALSE(first.results[i].cache_hit);
  }
  // Resubmit: now the prefix IS cached, so all three are genuine hits.
  const serve::BatchResult second = svc.submit(batch);
  EXPECT_EQ(second.cache_hits, 3u);
  EXPECT_EQ(second.batch_dedup, 0u);
  EXPECT_EQ(svc.cache_stats().hits, 3u);
  EXPECT_EQ(svc.cache_stats().batch_dedup, 2u);
  EXPECT_EQ(svc.cache_stats().misses, 1u);
}

TEST(CampaignService, FailingSharedPrefixCountsNoHitsAndNoDedup) {
  // Three queries share one prefix whose simulation THROWS. The old
  // accounting marked the two riders as cache hits before the prefix sim
  // ever ran; they must report neither cache_hit nor batch_dedup.
  CampaignService::Options opts;
  opts.workers = 2;
  CampaignService svc(opts);
  Query bad = tiny_query(90);
  bad.spec.gossip.regossip_rounds = 0;  // DissemScenario rejects this
  const serve::BatchResult res = svc.submit({bad, bad, bad});
  EXPECT_EQ(res.failures, 3u);
  EXPECT_EQ(res.cache_hits, 0u);
  EXPECT_EQ(res.batch_dedup, 0u);
  for (const serve::QueryResult& r : res.results) {
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.cache_hit);
    EXPECT_FALSE(r.batch_dedup);
    EXPECT_NE(r.error.find("regossip_rounds"), std::string::npos);
  }
  EXPECT_EQ(svc.cache_stats().hits, 0u);
  EXPECT_EQ(svc.cache_stats().batch_dedup, 0u);
}

TEST(CampaignService, AdmissionGateShedsQueriesPastTheBudget) {
  CampaignService::Options opts;
  opts.workers = 2;
  opts.max_batch_queries = 2;
  CampaignService svc(opts);
  const std::vector<Query> batch = {tiny_query(50), tiny_query(50),
                                    tiny_query(51), tiny_query(52)};
  const serve::BatchResult res = svc.submit(batch);
  EXPECT_EQ(res.rejected, 2u);
  EXPECT_EQ(res.failures, 0u);
  EXPECT_TRUE(res.results[0].ok);
  EXPECT_TRUE(res.results[1].ok);
  for (std::size_t i : {std::size_t{2}, std::size_t{3}}) {
    EXPECT_TRUE(res.results[i].rejected);
    EXPECT_FALSE(res.results[i].ok);
    EXPECT_NE(res.results[i].error.find("admission"), std::string::npos);
  }
  // Rejected queries never simulate: their prefixes stay out of the cache
  // and the branch counter only saw the admitted two.
  EXPECT_EQ(res.prefix_sims, 1u);
  EXPECT_EQ(svc.branches_completed(), 2u);
}

TEST(CampaignService, FailingQueryIsIsolatedAndCarriesSerialRepro) {
  CampaignService::Options opts;
  opts.workers = 2;
  opts.repro_program = "bench_serve";
  CampaignService svc(opts);
  Query bad = tiny_query(60);
  bad.spec.gossip.regossip_rounds = 0;  // DissemScenario rejects this
  const std::vector<Query> batch = {tiny_query(61), bad, tiny_query(62)};
  const serve::BatchResult res = svc.submit(batch);
  EXPECT_EQ(res.failures, 1u);
  EXPECT_TRUE(res.results[0].ok);
  EXPECT_TRUE(res.results[2].ok);
  const serve::QueryResult& r = res.results[1];
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("regossip_rounds"), std::string::npos);
  EXPECT_NE(r.repro.find("bench_serve --uncached"), std::string::npos);
  EXPECT_NE(r.repro.find("seed=60"), std::string::npos);
}

TEST(CampaignService, ReproLineRoundTripsAtFullPrecision) {
  // Doubles chosen so 6-significant-digit formatting (%g) would print a
  // DIFFERENT query: re-hashing a %g repro yields the wrong prefix, and
  // the serial repro silently reproduces the wrong what-if. %.17g must
  // round-trip each of them exactly.
  CampaignService::Options opts;
  opts.workers = 1;
  opts.repro_program = "bench_serve";
  CampaignService svc(opts);
  Query bad = tiny_query(77, dissem::AttackCampaign::kJamming, 0.1 + 0.2);
  bad.branch_time_s = 14.000000123456789;
  bad.delta.delay_s = 1.0 / 3.0;
  bad.delta.salt = 5;
  bad.spec.gossip.regossip_rounds = 0;  // force a failure to get a repro
  const serve::BatchResult res = svc.submit({bad});
  ASSERT_EQ(res.failures, 1u);
  const std::string& repro = res.results[0].repro;
  ASSERT_FALSE(repro.empty());

  const auto parse_after = [&](const std::string& tag) {
    const auto pos = repro.find(tag);
    EXPECT_NE(pos, std::string::npos) << tag << " missing from: " << repro;
    return std::strtod(repro.c_str() + pos + tag.size(), nullptr);
  };
  Query rebuilt = bad;  // the repro assumes the spec; doubles come from it
  rebuilt.branch_time_s = parse_after("branch=");
  rebuilt.delta.delay_s = parse_after("delay=");
  const auto colon = repro.find(':', repro.find("delta="));
  ASSERT_NE(colon, std::string::npos);
  rebuilt.delta.intensity = std::strtod(repro.c_str() + colon + 1, nullptr);

  EXPECT_EQ(rebuilt.branch_time_s, bad.branch_time_s);
  EXPECT_EQ(rebuilt.delta.delay_s, bad.delta.delay_s);
  EXPECT_EQ(rebuilt.delta.intensity, bad.delta.intensity);
  EXPECT_EQ(serve::prefix_hash(rebuilt), res.results[0].prefix);
  EXPECT_EQ(serve::query_hash(rebuilt), serve::query_hash(bad));

  // The printed "# prefix" stamp names the same prefix the rebuilt query
  // re-hashes to — the repro line is internally consistent.
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "%016llx",
                static_cast<unsigned long long>(serve::prefix_hash(rebuilt)));
  EXPECT_NE(repro.find(stamp), std::string::npos) << repro;
}

TEST(CampaignService, TraceExportIsPerQueryOptIn) {
  CampaignService::Options opts;
  opts.workers = 1;
  opts.trace_capacity = 1u << 14;
  CampaignService svc(opts);
  Query traced = tiny_query(70, dissem::AttackCampaign::kJamming, 0.5);
  traced.want_trace = true;
  const Query quiet = tiny_query(70);
  const serve::BatchResult res = svc.submit({traced, quiet});
  ASSERT_EQ(res.failures, 0u);
  EXPECT_FALSE(res.results[0].trace_json.empty());
  EXPECT_NE(res.results[0].trace_json.find("traceEvents"), std::string::npos);
  EXPECT_TRUE(res.results[1].trace_json.empty());
}

}  // namespace
}  // namespace iobt
