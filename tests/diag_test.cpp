// Tests for diagnostics: tomography identifiability and estimation,
// failure localization, monitor placement, anomaly detection, attention.

#include <gtest/gtest.h>

#include "diag/anomaly.h"
#include "diag/health.h"
#include "diag/tomography.h"
#include "net/dispatcher.h"
#include "things/population.h"

namespace iobt::diag {
namespace {

using net::Topology;
using sim::Rng;

// ------------------------------------------------------------ Tomography ----

TEST(Tomography, LineWithEndMonitorsMeasuresWholePath) {
  // 0-1-2-3 line; monitors at both ends: one path covering all 3 links.
  Topology t(4);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  t.add_edge(2, 3);
  TomographySystem sys(t, {0, 3});
  ASSERT_EQ(sys.paths().size(), 1u);
  EXPECT_EQ(sys.paths()[0].link_indices.size(), 3u);
  // A single sum cannot identify individual links.
  EXPECT_DOUBLE_EQ(sys.identifiability(), 0.0);
}

TEST(Tomography, AllNodesAsMonitorsIdentifyEverything) {
  Topology t(4);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  t.add_edge(2, 3);
  TomographySystem sys(t, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(sys.identifiability(), 1.0);

  const std::vector<double> truth = {1.5, 2.5, 0.5};
  const auto meas = sys.measure(truth);
  const auto est = sys.estimate(meas);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(est[i], truth[i], 1e-5) << "link " << i;
  }
}

TEST(Tomography, EstimateDegradesGracefullyWithNoise) {
  Rng rng(1);
  std::vector<sim::Vec2> pos;
  const auto t = Topology::random_geometric(20, {{0, 0}, {500, 500}}, 220, rng, &pos);
  if (!t.connected()) GTEST_SKIP() << "disconnected sample";
  std::vector<net::NodeId> monitors;
  for (net::NodeId v = 0; v < 20; v += 2) monitors.push_back(v);
  TomographySystem sys(t, monitors);

  std::vector<double> truth(sys.link_count());
  Rng mrng(2);
  for (double& x : truth) x = mrng.uniform(1.0, 5.0);
  Rng noise_rng(3);
  const auto noisy = sys.measure(truth, 0.01, &noise_rng);
  const auto est = sys.estimate(noisy);
  // Identifiable links should be close to truth.
  const auto ident = sys.identifiable_links();
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (ident[i]) {
      EXPECT_NEAR(est[i], truth[i], 0.5) << "link " << i;
    }
  }
}

TEST(Tomography, MoreMonitorsNeverReduceIdentifiability) {
  Topology t = Topology::grid(4, 4);
  TomographySystem few(t, {0, 15});
  TomographySystem some(t, {0, 3, 12, 15});
  TomographySystem many(t, {0, 3, 5, 10, 12, 15});
  EXPECT_LE(few.identifiability(), some.identifiability() + 1e-12);
  EXPECT_LE(some.identifiability(), many.identifiability() + 1e-12);
}

TEST(Tomography, FailureLocalizationFindsTheBrokenLink) {
  // Line 0-1-2-3 with monitors everywhere; break link 1-2.
  Topology t(4);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  t.add_edge(2, 3);
  TomographySystem sys(t, {0, 1, 2, 3});

  // Identify which edge index is 1-2.
  std::size_t broken = SIZE_MAX;
  for (std::size_t i = 0; i < sys.links().size(); ++i) {
    if (sys.links()[i].a == 1 && sys.links()[i].b == 2) broken = i;
  }
  ASSERT_NE(broken, SIZE_MAX);

  std::vector<bool> path_ok;
  for (const auto& p : sys.paths()) {
    bool ok = true;
    for (std::size_t li : p.link_indices) ok &= (li != broken);
    path_ok.push_back(ok);
  }
  const auto d = sys.localize_failures(path_ok);
  ASSERT_EQ(d.minimal_explanation.size(), 1u);
  EXPECT_EQ(d.minimal_explanation[0], broken);
  EXPECT_TRUE(d.suspect[broken]);
  EXPECT_FALSE(d.known_good[broken]);
}

TEST(Tomography, LocalizationWithTwoFailures) {
  Topology t = Topology::grid(3, 3);
  std::vector<net::NodeId> all;
  for (net::NodeId v = 0; v < 9; ++v) all.push_back(v);
  TomographySystem sys(t, all);

  const std::size_t f1 = 0, f2 = 5;
  std::vector<bool> path_ok;
  for (const auto& p : sys.paths()) {
    bool ok = true;
    for (std::size_t li : p.link_indices) ok &= (li != f1 && li != f2);
    path_ok.push_back(ok);
  }
  const auto d = sys.localize_failures(path_ok);
  EXPECT_TRUE(d.suspect[f1]);
  EXPECT_TRUE(d.suspect[f2]);
  // The explanation covers every failed path.
  EXPECT_LE(d.minimal_explanation.size(), 4u);
}

TEST(Tomography, AllPathsOkMeansNoSuspects) {
  Topology t = Topology::grid(3, 3);
  TomographySystem sys(t, {0, 8});
  std::vector<bool> ok(sys.paths().size(), true);
  const auto d = sys.localize_failures(ok);
  EXPECT_TRUE(d.minimal_explanation.empty());
  for (bool s : d.suspect) EXPECT_FALSE(s);
}

TEST(MonitorPlacement, GreedyImprovesOverPairAndRespectsBudget) {
  Topology t = Topology::grid(4, 4);
  const auto placed = greedy_monitor_placement(t, 5);
  EXPECT_LE(placed.size(), 5u);
  EXPECT_GE(placed.size(), 2u);
  TomographySystem chosen(t, placed);
  TomographySystem corners(t, {0, 15});
  EXPECT_GE(chosen.identifiability() + 1e-12, corners.identifiability());
}

// -------------------------------------------------------------- Anomaly ----

TEST(Ewma, FlagsJumpAfterWarmup) {
  EwmaDetector det(0.1, 10);
  double max_score_healthy = 0.0;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    max_score_healthy = std::max(max_score_healthy, det.update(5.0 + rng.normal() * 0.2));
  }
  const double spike = det.update(15.0);
  EXPECT_GT(spike, max_score_healthy * 2);
  EXPECT_GT(spike, 3.0);
}

TEST(Ewma, WarmupEmitsZero) {
  EwmaDetector det(0.1, 5);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(det.update(100.0 * i), 0.0);
}

TEST(Ewma, AdaptsToSlowDrift) {
  EwmaDetector det(0.2, 10);
  double value = 5.0;
  double max_score = 0.0;
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    value += 0.01;  // slow drift
    const double s = det.update(value + rng.normal() * 0.1);
    if (i > 50) max_score = std::max(max_score, s);
  }
  EXPECT_LT(max_score, 5.0);  // drift tracked, not alarmed
}

TEST(AnomalyTracker, TracksStreamsIndependently) {
  AnomalyTracker tr(0.1, 5);
  for (int i = 0; i < 50; ++i) {
    tr.update("calm", 1.0);
    tr.update("wild", i % 2 == 0 ? 0.0 : 10.0);
  }
  EXPECT_EQ(tr.stream_count(), 2u);
  const double calm_spike = tr.update("calm", 50.0);
  EXPECT_GT(calm_spike, 5.0);
}

// ------------------------------------------------------------ Attention ----

TEST(Attention, PriorityOrdersByProduct) {
  std::vector<AttentionItem> items = {
      {"noisy_adversary", 9.0, 0.1, 1.0},  // high anomaly, zero trust
      {"real_event", 4.0, 0.9, 1.0},
      {"background", 0.5, 0.9, 1.0},
  };
  const auto top = AttentionAllocator::allocate(items, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].stream, "real_event");      // 3.6 beats 0.9
  EXPECT_EQ(top[1].stream, "noisy_adversary");
}

TEST(Attention, MissionWeightBoostsStream) {
  std::vector<AttentionItem> items = {
      {"a", 2.0, 0.5, 1.0},
      {"b", 2.0, 0.5, 5.0},
  };
  const auto top = AttentionAllocator::allocate(items, 1);
  EXPECT_EQ(top[0].stream, "b");
}

TEST(Attention, DeterministicTieBreakByName) {
  std::vector<AttentionItem> items = {
      {"zeta", 1.0, 0.5, 1.0},
      {"alpha", 1.0, 0.5, 1.0},
  };
  const auto top = AttentionAllocator::allocate(items, 1);
  EXPECT_EQ(top[0].stream, "alpha");
}

TEST(Attention, BudgetLargerThanItems) {
  std::vector<AttentionItem> items = {{"only", 1.0, 1.0, 1.0}};
  EXPECT_EQ(AttentionAllocator::allocate(items, 10).size(), 1u);
}


// --------------------------------------------------------------- Health ----

struct HealthFixture : ::testing::Test {
  sim::Simulator sim;
  net::Network net{sim, net::ChannelModel(2.0, 0.05), Rng(5)};
  iobt::things::World world{sim, net, {{0, 0}, {900, 300}}, Rng(6)};
  net::Dispatcher disp{net};
  iobt::things::AssetId monitor = 0;
  std::vector<iobt::things::AssetId> peers;

  void SetUp() override {
    Rng r(1);
    monitor = world.add_asset(
        iobt::things::make_asset_template(iobt::things::DeviceClass::kEdgeServer,
                                          iobt::things::Affiliation::kBlue, r),
        {450, 150},
        iobt::things::radio_for_class(iobt::things::DeviceClass::kEdgeServer));
    for (int i = 0; i < 6; ++i) {
      peers.push_back(world.add_asset(
          iobt::things::make_asset_template(iobt::things::DeviceClass::kSensorMote,
                                            iobt::things::Affiliation::kBlue, r),
          {150.0 + 120 * i, 150.0},
          iobt::things::radio_for_class(iobt::things::DeviceClass::kSensorMote)));
    }
  }
};

TEST_F(HealthFixture, HealthyPeersStayHealthy) {
  HealthService svc(world, disp, monitor, peers);
  svc.start();
  sim.run_until(sim::SimTime::seconds(120));
  for (const auto p : peers) {
    EXPECT_EQ(svc.health(p), PeerHealth::kHealthy) << p;
    EXPECT_GT(svc.mean_rtt_s(p), 0.0);
  }
  EXPECT_GT(svc.replies_received(), 30u);
}

TEST_F(HealthFixture, DeadPeerDetectedAsUnreachable) {
  HealthConfig cfg;
  cfg.probe_period = sim::Duration::seconds(5);
  cfg.silence_threshold = 4;
  HealthService svc(world, disp, monitor, peers, cfg);
  svc.start();
  sim.run_until(sim::SimTime::seconds(60));
  // Kill the END of the chain so no live peer is partitioned with it.
  world.destroy_asset(peers[5]);
  sim.run_until(sim::SimTime::seconds(150));
  EXPECT_EQ(svc.health(peers[5]), PeerHealth::kUnreachable);
  EXPECT_DOUBLE_EQ(svc.detection_recall(), 1.0);
  EXPECT_DOUBLE_EQ(svc.detection_precision(), 1.0);
  const auto bad = svc.unreachable_peers();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], peers[5]);
}

TEST_F(HealthFixture, TransientLossDoesNotFlagPeer) {
  // Isolated lost probes (below the threshold) must not mark unreachable.
  HealthConfig cfg;
  cfg.probe_period = sim::Duration::seconds(5);
  cfg.silence_threshold = 4;
  HealthService svc(world, disp, monitor, peers, cfg);
  svc.start();
  sim.run_until(sim::SimTime::seconds(200));
  // Some probes drop on the lossy chain, but never 4 in a row here.
  for (const auto p : peers) EXPECT_NE(svc.health(p), PeerHealth::kUnreachable);
}

TEST_F(HealthFixture, RecoversAfterPeerComesBack) {
  HealthConfig cfg;
  cfg.probe_period = sim::Duration::seconds(5);
  HealthService svc(world, disp, monitor, peers, cfg);
  svc.start();
  sim.run_until(sim::SimTime::seconds(60));
  // Take the node's radio down without killing the asset, then restore.
  net.set_node_up(world.asset(peers[0]).node, false);
  sim.run_until(sim::SimTime::seconds(120));
  EXPECT_EQ(svc.health(peers[0]), PeerHealth::kUnreachable);
  net.set_node_up(world.asset(peers[0]).node, true);
  sim.run_until(sim::SimTime::seconds(180));
  EXPECT_EQ(svc.health(peers[0]), PeerHealth::kHealthy);
}

TEST_F(HealthFixture, ProbeLoopStopsAfterServiceDestruction) {
  {
    HealthService svc(world, disp, monitor, peers);
    svc.start();
    // Stop between probe rounds (period 10 s) so no pings or pongs are in
    // flight toward the service's handlers when it dies.
    sim.run_until(sim::SimTime::seconds(25));
    EXPECT_GT(svc.probes_sent(), 0u);
    EXPECT_GT(sim.pending_count(), 0u);
  }
  // The tick lambda's lifetime token expired: the loop unschedules itself
  // instead of probing through a dangling `this` (the sanitizer CI build
  // turns a regression here into a hard failure).
  sim.run_until(sim::SimTime::seconds(120));
  EXPECT_EQ(sim.pending_count(), 0u);
}

}  // namespace
}  // namespace iobt::diag
