// Tests for dataflow service composition: graph validation, rate
// analysis, and operator placement.

#include <gtest/gtest.h>

#include "flow/graph.h"
#include "flow/placement.h"

namespace iobt::flow {
namespace {

// ---------------------------------------------------------------- Graph ----

FlowGraph linear_graph() {
  // source(10/s) -> filter(sel 0.2) -> sink
  FlowGraph g;
  const auto s = g.add({.kind = OpKind::kSource, .name = "s", .source_rate_hz = 10});
  const auto f = g.add({.kind = OpKind::kFilter,
                        .name = "f",
                        .flops_per_item = 1e6,
                        .selectivity = 0.2,
                        .out_bytes_per_item = 100});
  const auto k = g.add({.kind = OpKind::kSink, .name = "k"});
  g.connect(s, f);
  g.connect(f, k);
  return g;
}

TEST(FlowGraph, ValidLinearGraph) {
  const auto g = linear_graph();
  EXPECT_FALSE(g.validate().has_value());
  EXPECT_EQ(g.topological_order(), (std::vector<OperatorId>{0, 1, 2}));
}

TEST(FlowGraph, RejectsCycle) {
  FlowGraph g;
  const auto a = g.add({.kind = OpKind::kFilter, .name = "a"});
  const auto b = g.add({.kind = OpKind::kFilter, .name = "b"});
  g.connect(a, b);
  g.connect(b, a);
  ASSERT_TRUE(g.validate().has_value());
  EXPECT_NE(g.validate()->find("cycle"), std::string::npos);
}

TEST(FlowGraph, RejectsSourceWithInputsAndOrphans) {
  FlowGraph g;
  const auto s = g.add({.kind = OpKind::kSource, .name = "s"});
  const auto f = g.add({.kind = OpKind::kFilter, .name = "orphan"});
  (void)f;
  EXPECT_TRUE(g.validate().has_value());  // orphan filter has no inputs
  FlowGraph g2;
  const auto s2 = g2.add({.kind = OpKind::kSource, .name = "s2"});
  const auto s3 = g2.add({.kind = OpKind::kSource, .name = "s3"});
  g2.connect(s2, s3);
  EXPECT_TRUE(g2.validate().has_value());  // source with inputs
  (void)s;
}

TEST(FlowGraph, RateAnalysisPropagatesSelectivity) {
  const auto g = linear_graph();
  const auto r = g.analyze_rates();
  EXPECT_DOUBLE_EQ(r[0].output_rate_hz, 10.0);
  EXPECT_DOUBLE_EQ(r[1].input_rate_hz, 10.0);
  EXPECT_DOUBLE_EQ(r[1].output_rate_hz, 2.0);
  EXPECT_DOUBLE_EQ(r[1].flops_rate, 10.0 * 1e6);
  EXPECT_DOUBLE_EQ(r[1].out_bandwidth_bps, 2.0 * 100 * 8);
  EXPECT_DOUBLE_EQ(r[2].input_rate_hz, 2.0);
}

TEST(FlowGraph, FuseSumsInputRates) {
  const auto g = make_tracking_service(4, 2.0);
  ASSERT_FALSE(g.validate().has_value());
  const auto r = g.analyze_rates();
  // detect sees 4 cameras x 2 Hz = 8 items/s.
  const auto& detect = g.operators()[4];
  EXPECT_EQ(detect.name, "detect");
  EXPECT_DOUBLE_EQ(r[detect.id].input_rate_hz, 8.0);
  EXPECT_DOUBLE_EQ(r[detect.id].output_rate_hz, 0.8);
  EXPECT_GT(g.total_flops_rate(), 4e9);  // detector dominates
}

// ------------------------------------------------------------ Placement ----

PlacementProblem two_host_problem() {
  PlacementProblem p;
  p.graph = linear_graph();
  p.hosts = {{0, 1e7}, {1, 1e12}};  // tiny mote, big edge server
  p.hops = {{0, 3}, {3, 0}};
  p.pinned = {{0, 0}};  // source runs on the mote (that's where the sensor is)
  return p;
}

TEST(Placement, RespectsPinningAndCapacity) {
  const auto p = two_host_problem();
  const auto pl = place(p);
  ASSERT_TRUE(pl.feasible) << pl.infeasible_reason;
  EXPECT_EQ(pl.host[0], 0u);  // pinned
  // The filter needs 1e7 FLOPS sustained (10/s x 1e6); the mote has
  // exactly 1e7 capacity but already hosts the source; the big host must
  // take the filter.
  EXPECT_EQ(pl.host[1], 1u);
  for (double load : pl.host_load) EXPECT_LE(load, 1.0 + 1e-9);
}

TEST(Placement, ColocatesToSaveBandwidthWhenCapacityAllows) {
  PlacementProblem p;
  p.graph = linear_graph();
  p.hosts = {{0, 1e12}, {1, 1e12}};  // both huge
  p.hops = {{0, 5}, {5, 0}};
  p.pinned = {{0, 0}};
  const auto pl = place(p);
  ASSERT_TRUE(pl.feasible);
  // Everything fits on host 0; moving anything to host 1 costs hops.
  EXPECT_EQ(pl.host[1], 0u);
  EXPECT_EQ(pl.host[2], 0u);
  EXPECT_DOUBLE_EQ(pl.network_cost_bps_hops, 0.0);
}

TEST(Placement, InfeasibleWhenNothingFits) {
  PlacementProblem p;
  p.graph = linear_graph();
  p.hosts = {{0, 1e3}};  // hopeless
  p.hops = {{0}};
  const auto pl = place(p);
  EXPECT_FALSE(pl.feasible);
  EXPECT_FALSE(pl.infeasible_reason.empty());
}

TEST(Placement, EvaluateFlagsMovedPin) {
  const auto p = two_host_problem();
  const auto pl = evaluate_placement(p, {1, 1, 1});  // pin violated
  EXPECT_FALSE(pl.feasible);
  EXPECT_NE(pl.infeasible_reason.find("pinned"), std::string::npos);
}

TEST(Placement, LatencyGrowsWithHops) {
  PlacementProblem p = two_host_problem();
  const auto near = evaluate_placement(p, {0, 1, 1});
  PlacementProblem far = p;
  far.hops = {{0, 30}, {30, 0}};
  const auto far_pl = evaluate_placement(far, {0, 1, 1});
  EXPECT_GT(far_pl.critical_path_latency_s, near.critical_path_latency_s);
}

TEST(Placement, TrackingServicePlacesOnHeterogeneousFleet) {
  PlacementProblem p;
  p.graph = make_tracking_service(4, 2.0);
  // 4 camera motes (tiny), 1 vehicle (medium), 1 edge server (big).
  p.hosts = {{0, 2e6}, {1, 2e6}, {2, 2e6}, {3, 2e6}, {4, 5e9}, {5, 1e12}};
  p.hops.assign(6, std::vector<int>(6, 2));
  for (int i = 0; i < 6; ++i) p.hops[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;
  // Cameras pinned to their motes; sink pinned to the edge server.
  p.pinned = {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {7, 5}};  // sink -> edge server
  const auto pl = place(p);
  ASSERT_TRUE(pl.feasible) << pl.infeasible_reason;
  // The heavy detector (4e9 FLOPS sustained) only fits on the edge server.
  EXPECT_EQ(pl.host[4], 5u);
  EXPECT_LT(pl.critical_path_latency_s, 5.0);
}

TEST(Placement, HostHopsFromTopology) {
  const auto topo = net::Topology::ring(6);
  const auto hops = host_hops_from_topology(topo, {0, 3, 5});
  EXPECT_EQ(hops[0][0], 0);
  EXPECT_EQ(hops[0][1], 3);  // 0 -> 3 on a 6-ring
  EXPECT_EQ(hops[0][2], 1);  // 0 -> 5
  EXPECT_EQ(hops[1][2], 2);  // 3 -> 5
}

TEST(Placement, UnreachableHostsGetSentinelHops) {
  net::Topology t(4);
  t.add_edge(0, 1);  // 2,3 isolated
  const auto hops = host_hops_from_topology(t, {0, 2});
  EXPECT_EQ(hops[0][1], 1000);
}

}  // namespace
}  // namespace iobt::flow
